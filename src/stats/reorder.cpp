#include "stats/reorder.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace tcppr::stats {

ReorderMonitor::ReorderMonitor(std::size_t histogram_buckets)
    : histogram_(histogram_buckets, 0) {
  TCPPR_CHECK(histogram_buckets >= 2);
}

void ReorderMonitor::on_arrival(net::SeqNo seq) {
  ++total_;
  if (seq > max_seen_) {
    max_seen_ = seq;
  } else {
    // RFC 4737 Type-P-Reordered: arrived after a higher sequence number.
    ++reordered_;
    const net::SeqNo extent = max_seen_ - seq;
    max_extent_ = std::max(max_extent_, extent);
    extent_sum_ += static_cast<double>(extent);
    const std::size_t bucket = std::min(
        static_cast<std::size_t>(extent), histogram_.size() - 1);
    ++histogram_[bucket];
  }

  // In-order restoration buffer: duplicates and old segments don't grow it.
  if (seq >= next_expected_ && !buffer_.contains(seq)) {
    if (seq == next_expected_) {
      ++next_expected_;
      while (!buffer_.empty() && *buffer_.begin() == next_expected_) {
        buffer_.erase(buffer_.begin());
        ++next_expected_;
      }
    } else {
      buffer_.insert(seq);
      max_buffer_ = std::max(max_buffer_, buffer_.size());
    }
  }
  const std::size_t occ_bucket = std::min(
      static_cast<std::size_t>(
          std::bit_width(static_cast<std::uint64_t>(buffer_.size()))),
      kOccupancyBuckets - 1);
  ++occupancy_hist_[occ_bucket];
}

void ReorderMonitor::reset() {
  total_ = 0;
  reordered_ = 0;
  max_seen_ = -1;
  max_extent_ = 0;
  extent_sum_ = 0;
  std::fill(histogram_.begin(), histogram_.end(), 0);
  next_expected_ = 0;
  buffer_.clear();
  max_buffer_ = 0;
  occupancy_hist_.fill(0);
}

void ReorderMonitor::merge_into(ReorderMonitor& agg) const {
  agg.total_ += total_;
  agg.reordered_ += reordered_;
  agg.max_extent_ = std::max(agg.max_extent_, max_extent_);
  agg.extent_sum_ += extent_sum_;
  const std::size_t n = std::min(histogram_.size(), agg.histogram_.size());
  for (std::size_t i = 0; i < n; ++i) agg.histogram_[i] += histogram_[i];
  // Tail buckets beyond the aggregate's sizing land in its last bucket.
  for (std::size_t i = n; i < histogram_.size(); ++i) {
    agg.histogram_.back() += histogram_[i];
  }
  agg.max_buffer_ = std::max(agg.max_buffer_, max_buffer_);
  for (std::size_t i = 0; i < kOccupancyBuckets; ++i) {
    agg.occupancy_hist_[i] += occupancy_hist_[i];
  }
}

double ReorderMonitor::reordered_fraction() const {
  if (total_ == 0) return 0;
  return static_cast<double>(reordered_) / static_cast<double>(total_);
}

double ReorderMonitor::mean_extent() const {
  if (reordered_ == 0) return 0;
  return extent_sum_ / static_cast<double>(reordered_);
}

}  // namespace tcppr::stats
