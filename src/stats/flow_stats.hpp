// Time-series sampling utilities for experiments: periodic sampling of an
// arbitrary gauge (cwnd, cumulative acked bytes, queue length) and rate
// computation over a trailing window.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tcppr::stats {

// Samples `gauge` every `interval` while the simulation runs; stores
// (time, value) pairs.
class GaugeSampler {
 public:
  struct Sample {
    sim::TimePoint time;
    double value;
  };

  GaugeSampler(sim::Scheduler& sched, sim::Duration interval,
               std::function<double()> gauge);

  void start();
  void stop();
  const std::vector<Sample>& samples() const { return samples_; }

  // Value change per second between the first sample at/after t0 and the
  // last sample at/before t1 (e.g. bytes -> bytes/s). Returns 0 when fewer
  // than two samples fall in the window.
  double rate_over(sim::TimePoint t0, sim::TimePoint t1) const;

 private:
  void tick();

  sim::Scheduler& sched_;
  sim::Duration interval_;
  std::function<double()> gauge_;
  sim::Timer timer_;
  std::vector<Sample> samples_;
};

// Counts arrivals (e.g. bytes acked) and reports the total between two
// explicit marks; simpler than GaugeSampler when only one window matters.
class WindowCounter {
 public:
  void mark_start(double current_total) { start_total_ = current_total; }
  double delta(double current_total) const { return current_total - start_total_; }

 private:
  double start_total_ = 0;
};

}  // namespace tcppr::stats
