// Fairness and dispersion metrics used by the paper's evaluation
// (Section 4): per-flow normalized throughput, mean normalized throughput
// per protocol, coefficient of variation, plus Jain's fairness index as a
// cross-check.
#pragma once

#include <cstddef>
#include <vector>

namespace tcppr::stats {

// T_i = x_i / ((1/n) * sum_j x_j). An empty input yields an empty result.
std::vector<double> normalized_throughput(const std::vector<double>& x);

// Mean of the values selected by `members` (indices into `values`).
double mean_of(const std::vector<double>& values,
               const std::vector<std::size_t>& members);

// Population coefficient of variation: std / mean. Zero-mean inputs
// return 0.
double coefficient_of_variation(const std::vector<double>& values);

// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
double jain_index(const std::vector<double>& x);

double mean(const std::vector<double>& x);
double variance(const std::vector<double>& x);  // population variance

}  // namespace tcppr::stats
