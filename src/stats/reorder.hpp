// Reordering metrics in the spirit of RFC 4737 (packet reordering
// metrics): reordered fraction, reorder extent distribution, and the
// receiver buffer occupancy needed to restore order. Feed it the arrival
// stream of sequence numbers (e.g. via Receiver::set_data_tap).
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "net/packet.hpp"

namespace tcppr::stats {

class ReorderMonitor {
 public:
  // Log2 buckets for the buffer-occupancy distribution (RFC 5236 flavour):
  // bucket 0 counts arrivals that found the restoration buffer empty,
  // bucket b >= 1 counts arrivals that left it holding [2^(b-1), 2^b)
  // segments, last bucket absorbs the tail.
  static constexpr std::size_t kOccupancyBuckets = 16;

  // Extents >= histogram size land in the last bucket.
  explicit ReorderMonitor(std::size_t histogram_buckets = 64);

  void on_arrival(net::SeqNo seq);

  // Returns the monitor to its freshly-constructed state (histogram sizing
  // kept). Call on flow departure before the monitor observes a restarted
  // flow or a recycled flow-id: without it the stale max_seen_ /
  // next_expected_ high-water marks make every early segment of the new
  // sequence space count as a massive reordering (the new flow starts at
  // seq 0, below the old flow's maximum), corrupting fraction and extent.
  void reset();

  // Folds this monitor's counters into another (aggregate-only
  // observability under churn: per-flow monitors fold into one engine-wide
  // monitor at departure, so live stats stay O(1) in flows ever seen).
  // Buffer-occupancy and extent maxima merge as maxima; the restoration
  // buffer model itself is per-flow and does not transfer.
  void merge_into(ReorderMonitor& agg) const;

  std::uint64_t total() const { return total_; }
  std::uint64_t reordered() const { return reordered_; }
  // Fraction of arrivals with seq below an already-seen higher seq.
  double reordered_fraction() const;
  // Reorder extent (next-expected distance) of reordered arrivals.
  net::SeqNo max_extent() const { return max_extent_; }
  double mean_extent() const;
  double extent_sum() const { return extent_sum_; }
  // Highest sequence number observed so far (-1 before any arrival).
  net::SeqNo max_seen() const { return max_seen_; }
  const std::vector<std::uint64_t>& extent_histogram() const {
    return histogram_;
  }
  // Largest number of out-of-order segments an in-order-delivery buffer
  // had to hold simultaneously.
  std::size_t max_buffer_occupancy() const { return max_buffer_; }
  // Segments currently parked in the restoration buffer (gaps open now).
  std::size_t buffered_now() const { return buffer_.size(); }
  // True when every observed segment has been released in order — i.e. the
  // arrival stream seen so far contains no unfilled gap. For a flow that
  // delivered a dense prefix 0..k this implies max_buffer_occupancy() <=
  // max_extent(): each buffered segment was a distinct integer in
  // (blocking_seq, max_seen], an interval of width max_extent.
  bool complete() const { return buffer_.empty(); }
  // Per-arrival occupancy distribution (see kOccupancyBuckets).
  const std::array<std::uint64_t, kOccupancyBuckets>& occupancy_histogram()
      const {
    return occupancy_hist_;
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t reordered_ = 0;
  net::SeqNo max_seen_ = -1;
  net::SeqNo max_extent_ = 0;
  double extent_sum_ = 0;
  std::vector<std::uint64_t> histogram_;

  // In-order restoration buffer model.
  net::SeqNo next_expected_ = 0;
  std::set<net::SeqNo> buffer_;
  std::size_t max_buffer_ = 0;
  std::array<std::uint64_t, kOccupancyBuckets> occupancy_hist_{};
};

}  // namespace tcppr::stats
