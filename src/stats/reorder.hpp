// Reordering metrics in the spirit of RFC 4737 (packet reordering
// metrics): reordered fraction, reorder extent distribution, and the
// receiver buffer occupancy needed to restore order. Feed it the arrival
// stream of sequence numbers (e.g. via Receiver::set_data_tap).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "net/packet.hpp"

namespace tcppr::stats {

class ReorderMonitor {
 public:
  // Extents >= histogram size land in the last bucket.
  explicit ReorderMonitor(std::size_t histogram_buckets = 64);

  void on_arrival(net::SeqNo seq);

  // Returns the monitor to its freshly-constructed state (histogram sizing
  // kept). Call on flow departure before the monitor observes a restarted
  // flow or a recycled flow-id: without it the stale max_seen_ /
  // next_expected_ high-water marks make every early segment of the new
  // sequence space count as a massive reordering (the new flow starts at
  // seq 0, below the old flow's maximum), corrupting fraction and extent.
  void reset();

  // Folds this monitor's counters into another (aggregate-only
  // observability under churn: per-flow monitors fold into one engine-wide
  // monitor at departure, so live stats stay O(1) in flows ever seen).
  // Buffer-occupancy and extent maxima merge as maxima; the restoration
  // buffer model itself is per-flow and does not transfer.
  void merge_into(ReorderMonitor& agg) const;

  std::uint64_t total() const { return total_; }
  std::uint64_t reordered() const { return reordered_; }
  // Fraction of arrivals with seq below an already-seen higher seq.
  double reordered_fraction() const;
  // Reorder extent (next-expected distance) of reordered arrivals.
  net::SeqNo max_extent() const { return max_extent_; }
  double mean_extent() const;
  const std::vector<std::uint64_t>& extent_histogram() const {
    return histogram_;
  }
  // Largest number of out-of-order segments an in-order-delivery buffer
  // had to hold simultaneously.
  std::size_t max_buffer_occupancy() const { return max_buffer_; }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t reordered_ = 0;
  net::SeqNo max_seen_ = -1;
  net::SeqNo max_extent_ = 0;
  double extent_sum_ = 0;
  std::vector<std::uint64_t> histogram_;

  // In-order restoration buffer model.
  net::SeqNo next_expected_ = 0;
  std::set<net::SeqNo> buffer_;
  std::size_t max_buffer_ = 0;
};

}  // namespace tcppr::stats
