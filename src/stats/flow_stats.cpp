#include "stats/flow_stats.hpp"

#include <utility>

#include "util/check.hpp"

namespace tcppr::stats {

GaugeSampler::GaugeSampler(sim::Scheduler& sched, sim::Duration interval,
                           std::function<double()> gauge)
    : sched_(sched),
      interval_(interval),
      gauge_(std::move(gauge)),
      timer_(sched) {
  TCPPR_CHECK(interval_ > sim::Duration::zero());
  TCPPR_CHECK(gauge_ != nullptr);
}

void GaugeSampler::start() { tick(); }

void GaugeSampler::stop() { timer_.cancel(); }

void GaugeSampler::tick() {
  samples_.push_back(Sample{sched_.now(), gauge_()});
  timer_.schedule_in(interval_, [this] { tick(); });
}

double GaugeSampler::rate_over(sim::TimePoint t0, sim::TimePoint t1) const {
  const Sample* first = nullptr;
  const Sample* last = nullptr;
  for (const Sample& s : samples_) {
    if (s.time >= t0 && first == nullptr) first = &s;
    if (s.time <= t1) last = &s;
  }
  if (first == nullptr || last == nullptr || last->time <= first->time) {
    return 0;
  }
  return (last->value - first->value) /
         (last->time - first->time).as_seconds();
}

}  // namespace tcppr::stats
