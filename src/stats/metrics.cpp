#include "stats/metrics.hpp"

#include <cmath>

#include "util/check.hpp"

namespace tcppr::stats {

double mean(const std::vector<double>& x) {
  if (x.empty()) return 0;
  double s = 0;
  for (const double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(const std::vector<double>& x) {
  if (x.empty()) return 0;
  const double m = mean(x);
  double s = 0;
  for (const double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

std::vector<double> normalized_throughput(const std::vector<double>& x) {
  std::vector<double> out;
  out.reserve(x.size());
  const double m = mean(x);
  if (m <= 0) {
    out.assign(x.size(), 0.0);
    return out;
  }
  for (const double v : x) out.push_back(v / m);
  return out;
}

double mean_of(const std::vector<double>& values,
               const std::vector<std::size_t>& members) {
  if (members.empty()) return 0;
  double s = 0;
  for (const std::size_t i : members) {
    TCPPR_CHECK(i < values.size());
    s += values[i];
  }
  return s / static_cast<double>(members.size());
}

double coefficient_of_variation(const std::vector<double>& values) {
  const double m = mean(values);
  if (m == 0) return 0;
  return std::sqrt(variance(values)) / m;
}

double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 0;
  double s = 0;
  double s2 = 0;
  for (const double v : x) {
    s += v;
    s2 += v * v;
  }
  if (s2 == 0) return 0;
  return s * s / (static_cast<double>(x.size()) * s2);
}

}  // namespace tcppr::stats
