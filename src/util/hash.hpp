// Small deterministic hashing primitives shared by the validation layer
// (src/validate) and the endpoints it instruments.
//
// Fnv1a is the 64-bit FNV-1a fold used for the determinism oracle (hash of
// the delivered-packet event stream) and the end-to-end payload checksum.
// payload_word derives the synthetic payload of one TCP segment from its
// (flow, seq) identity, so sender and receiver can agree on the byte
// content of a transfer without the simulator carrying payload bytes.
#pragma once

#include <cstdint>

namespace tcppr::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Folds the 8 bytes of `word` (little-endian order) into an FNV-1a state.
constexpr std::uint64_t fnv1a_u64(std::uint64_t state, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    state ^= (word >> (8 * i)) & 0xffu;
    state *= kFnvPrime;
  }
  return state;
}

// splitmix64 finalizer: a cheap, well-mixed 64 -> 64 bijection.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// The synthetic payload of segment `seq` of flow `flow`: a deterministic
// function both endpoints can compute independently. The receiver folds
// these words in delivery order; a skipped, duplicated, or mis-ordered
// in-order delivery produces a checksum mismatch.
constexpr std::uint64_t payload_word(int flow, std::int64_t seq) {
  return mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(flow))
                << 32) ^
               static_cast<std::uint64_t>(seq));
}

}  // namespace tcppr::util
