#include "util/logging.hpp"

#include <cstdio>

namespace tcppr {
namespace {

LogLevel g_level = LogLevel::kOff;
double g_sim_time = 0.0;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kOff:
      break;
  }
  return "?";
}

}  // namespace

void Logger::set_level(LogLevel level) { g_level = level; }
LogLevel Logger::level() { return g_level; }
void Logger::set_sim_time_seconds(double t) { g_sim_time = t; }

bool Logger::enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(g_level);
}

void Logger::logf(LogLevel level, const char* component, const char* fmt,
                  ...) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "[%10.6f] %-5s %-10s ", g_sim_time, level_name(level),
               component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace tcppr
