// Minimal leveled logging with simulation-time prefixes.
//
// Off by default (simulations are hot loops); enable per-run via
// Logger::set_level. Printf-style because the hot path must not allocate
// when the level is filtered out.
#pragma once

#include <cstdarg>

namespace tcppr {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

class Logger {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  // Simulation time shown in log prefixes; harness updates it.
  static void set_sim_time_seconds(double t);

  static bool enabled(LogLevel level);
  static void logf(LogLevel level, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
};

}  // namespace tcppr

#define TCPPR_LOG(level, component, ...)                         \
  do {                                                           \
    if (::tcppr::Logger::enabled(level)) {                       \
      ::tcppr::Logger::logf(level, component, __VA_ARGS__);      \
    }                                                            \
  } while (false)

#define TCPPR_LOG_DEBUG(component, ...) \
  TCPPR_LOG(::tcppr::LogLevel::kDebug, component, __VA_ARGS__)
#define TCPPR_LOG_INFO(component, ...) \
  TCPPR_LOG(::tcppr::LogLevel::kInfo, component, __VA_ARGS__)
#define TCPPR_LOG_WARN(component, ...) \
  TCPPR_LOG(::tcppr::LogLevel::kWarn, component, __VA_ARGS__)
