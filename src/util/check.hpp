// Lightweight invariant checking used throughout the library.
//
// TCPPR_CHECK is always on (simulation correctness beats the tiny cost);
// TCPPR_DCHECK compiles away in release builds without assertions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tcppr::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "TCPPR_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace tcppr::detail

#define TCPPR_CHECK(expr)                                    \
  do {                                                       \
    if (!(expr)) {                                           \
      ::tcppr::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                        \
  } while (false)

#ifdef NDEBUG
#define TCPPR_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define TCPPR_DCHECK(expr) TCPPR_CHECK(expr)
#endif
