// Byte-stream component-state serializer behind checkpoint/rollback
// (bounded-optimism speculation) and mid-run shard migration (adaptive
// repartitioning).
//
// One visitor method per component — `void state(util::StateIO& io)` —
// lists every member that defines the component's simulation trajectory;
// the same method both saves and restores, so the two directions cannot
// drift apart. Values are appended to / consumed from a flat byte buffer
// in declaration order with no framing: the buffer is a same-build,
// same-process artifact that never leaves memory, and the restorer's
// final done() check (every byte consumed) is the tripwire for a visitor
// that serialized more than it restored or vice versa.
#pragma once

#include <cstdint>
#include <cstring>
#include <list>
#include <map>
#include <set>
#include <type_traits>
#include <vector>

#include "util/check.hpp"
#include "util/inline_vec.hpp"

namespace tcppr::util {

class StateIO {
 public:
  // The same buffer serves one save and any number of restores (rollback
  // replays restore the identical bytes).
  StateIO(std::vector<unsigned char>& buf, bool saving)
      : buf_(buf), saving_(saving) {
    if (saving_) buf_.clear();
  }
  bool saving() const { return saving_; }
  std::size_t bytes() const { return saving_ ? buf_.size() : cursor_; }
  // Restore completeness check: every saved byte was consumed.
  bool done() const { return saving_ || cursor_ == buf_.size(); }

  void raw(void* p, std::size_t n) {
    if (saving_) {
      const auto* b = static_cast<const unsigned char*>(p);
      buf_.insert(buf_.end(), b, b + n);
    } else {
      TCPPR_CHECK(cursor_ + n <= buf_.size());
      std::memcpy(p, buf_.data() + cursor_, n);
      cursor_ += n;
    }
  }

  template <typename T>
  void pod(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof(T));
  }

  // Save: records the container size. Restore: returns the recorded size
  // (the passed value is ignored).
  std::uint64_t size_token(std::uint64_t n) {
    pod(n);
    return n;
  }

  // Object with its own state() visitor.
  template <typename T>
  void obj(T& v) {
    v.state(*this);
  }

  template <typename T, std::size_t N>
  void ivec(InlineVec<T, N>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = size_token(v.size());
    if (saving_) {
      for (std::size_t i = 0; i < v.size(); ++i) pod(v[i]);
    } else {
      v.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        T e{};
        pod(e);
        v.push_back(e);
      }
    }
  }

  template <typename T>
  void pod_vector(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = size_token(v.size());
    if (saving_) {
      if (!v.empty()) raw(v.data(), v.size() * sizeof(T));
    } else {
      v.resize(n);
      if (n != 0) raw(v.data(), n * sizeof(T));
    }
  }

  // std::set / std::list / any container of trivially copyable values with
  // clear() + insert(end, value). Sets restore via the end hint, which is
  // O(1) for the sorted order they were saved in.
  template <typename C>
  void pod_sequence(C& c) {
    using T = typename C::value_type;
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = size_token(c.size());
    if (saving_) {
      for (const T& e : c) {
        T tmp = e;
        pod(tmp);
      }
    } else {
      c.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        T e{};
        pod(e);
        c.insert(c.end(), e);
      }
    }
  }

  // util::RingDeque (or any front-indexed container with size()/clear()/
  // push_back()) of objects with their own state() visitor.
  template <typename Ring>
  void obj_ring(Ring& r) {
    using T = std::remove_reference_t<decltype(r.front())>;
    std::uint64_t n = size_token(r.size());
    if (saving_) {
      for (std::size_t i = 0; i < r.size(); ++i) obj(r[i]);
    } else {
      r.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        T e{};
        obj(e);
        r.push_back(std::move(e));
      }
    }
  }

  // std::map / std::multimap with trivially copyable key and value.
  template <typename M>
  void pod_map(M& m) {
    using K = typename M::key_type;
    using V = typename M::mapped_type;
    static_assert(std::is_trivially_copyable_v<K> &&
                  std::is_trivially_copyable_v<V>);
    std::uint64_t n = size_token(m.size());
    if (saving_) {
      for (const auto& [k, v] : m) {
        K key = k;
        V value = v;
        pod(key);
        pod(value);
      }
    } else {
      m.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        K key{};
        V value{};
        pod(key);
        pod(value);
        m.emplace_hint(m.end(), key, value);
      }
    }
  }

 private:
  std::vector<unsigned char>& buf_;
  std::size_t cursor_ = 0;
  bool saving_;
};

}  // namespace tcppr::util
