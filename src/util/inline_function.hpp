// Move-only callable wrapper with small-buffer optimization.
//
// std::function heap-allocates once a capture exceeds ~16 bytes (libstdc++),
// which puts an allocation on every scheduled event that captures more than
// a pointer. InlineFunction keeps captures up to InlineBytes in-place and
// only falls back to the heap for oversized ones, so the scheduler's event
// slots can store callbacks with zero allocation in the common case.
//
// Differences from std::function: move-only (no copy, so captures may own
// resources like pooled packets), no target_type/target introspection, and
// invoking an empty InlineFunction is undefined (checked in debug builds by
// the caller).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tcppr::util {

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  // Destroys the current callable (if any) and constructs the new one
  // directly in this object — no temporary InlineFunction, no relocate.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  // True when the held callable lives in the inline buffer (for tests).
  bool is_inline() const { return vtable_ != nullptr && !vtable_->heap; }

  static constexpr std::size_t inline_capacity() { return InlineBytes; }

 private:
  static_assert(InlineBytes >= sizeof(void*));

  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Relocates the callable from src storage into dst storage and leaves
    // src empty (trivial pointer copy in the heap case).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    bool heap;
  };

  // Inline storage is pointer-aligned (not max_align_t) so the whole
  // wrapper stays at vtable + buffer with no padding — a 48-byte buffer
  // makes sizeof(InlineFunction) == 56 and an arena slot fits one cache
  // line. Over-aligned callables take the heap path.
  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= InlineBytes && alignof(D) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr VTable inline_vtable = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
      /*heap=*/false,
  };

  template <typename D>
  static constexpr VTable heap_vtable = {
      [](void* s, Args&&... args) -> R {
        return (*static_cast<D*>(*reinterpret_cast<void**>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* s) { delete static_cast<D*>(*reinterpret_cast<void**>(s)); },
      /*heap=*/true,
  };

  template <typename F, typename D = std::decay_t<F>>
  void construct(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &inline_vtable<D>;
    } else {
      *reinterpret_cast<void**>(storage_) = new D(std::forward<F>(f));
      vtable_ = &heap_vtable<D>;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(other.storage_, storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(void*) unsigned char storage_[InlineBytes];
};

}  // namespace tcppr::util
