// Small vector with inline storage for trivially copyable element types.
//
// Packet headers carry short variable-length lists (SACK blocks capped at
// 3-4 by RFC 2018, source routes a handful of hops) that std::vector puts
// on the heap; at millions of packets per simulated second those
// allocations dominate the forwarding cost. InlineVec keeps up to N
// elements in the object itself and only touches the heap beyond that.
// clear() keeps any heap capacity, so pooled packets that once overflowed
// stay allocation-free on reuse.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <type_traits>

#include "util/check.hpp"

namespace tcppr::util {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is restricted to trivially copyable types");
  static_assert(N > 0);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  InlineVec(const InlineVec& other) { assign(other.begin(), other.end()); }

  InlineVec(InlineVec&& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      std::copy(other.inline_, other.inline_ + other.size_, inline_);
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this == &other) return *this;
    if (other.heap_ != nullptr) {
      delete[] heap_;
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      size_ = 0;  // keep our heap block (if any) for reuse
      std::copy(other.inline_, other.inline_ + other.size_, data());
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }

  InlineVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~InlineVec() { delete[] heap_; }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  static constexpr std::size_t inline_capacity() { return N; }

  T& operator[](std::size_t i) {
    TCPPR_DCHECK(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    TCPPR_DCHECK(i < size_);
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  // Drops the elements but keeps heap capacity for reuse.
  void clear() { size_ = 0; }

  void push_back(const T& value) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data()[size_++] = value;
  }

  void pop_back() {
    TCPPR_DCHECK(size_ > 0);
    --size_;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  void grow(std::size_t new_capacity) {
    T* block = new T[new_capacity];
    std::copy(data(), data() + size_, block);
    delete[] heap_;
    heap_ = block;
    capacity_ = new_capacity;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace tcppr::util
