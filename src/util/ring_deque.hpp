// Growable ring buffer with deque semantics (push_back / pop_front).
//
// std::deque allocates and frees a ~512-byte segment every couple of
// pushes once the element is packet-sized, which keeps a steady-state
// router queue churning the allocator. RingDeque stores elements in one
// circular buffer that only grows (doubling, elements relocated by move),
// so a queue that has reached its working depth never allocates again.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "util/check.hpp"

namespace tcppr::util {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;
  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;

  ~RingDeque() {
    clear();
    ::operator delete(storage_, std::align_val_t{alignof(T)});
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& front() {
    TCPPR_DCHECK(size_ > 0);
    return slot(head_);
  }
  const T& front() const {
    TCPPR_DCHECK(size_ > 0);
    return slot(head_);
  }

  // Element i positions from the front (0 == front).
  T& operator[](std::size_t i) {
    TCPPR_DCHECK(i < size_);
    return slot(index(head_ + i));
  }
  const T& operator[](std::size_t i) const {
    TCPPR_DCHECK(i < size_);
    return slot(index(head_ + i));
  }

  void push_back(T&& value) {
    if (size_ == capacity_) grow();
    ::new (static_cast<void*>(&slot(index(head_ + size_))))
        T(std::move(value));
    ++size_;
  }

  T pop_front() {
    TCPPR_DCHECK(size_ > 0);
    T& s = slot(head_);
    T value = std::move(s);
    s.~T();
    head_ = index(head_ + 1);
    --size_;
    return value;
  }

  // Destroys the front element without returning it. Pairs with front():
  // move out of the reference, then drop — one move where pop_front's
  // return would cost two for a large T.
  void drop_front() {
    TCPPR_DCHECK(size_ > 0);
    slot(head_).~T();
    head_ = index(head_ + 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) {
      slot(head_).~T();
      head_ = index(head_ + 1);
      --size_;
    }
    head_ = 0;
  }

 private:
  std::size_t index(std::size_t i) const {
    return i & (capacity_ - 1);  // capacity is a power of two
  }
  T& slot(std::size_t i) { return storage_[i]; }
  const T& slot(std::size_t i) const { return storage_[i]; }

  void grow() {
    const std::size_t new_capacity = capacity_ == 0 ? 8 : capacity_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_capacity * sizeof(T),
                                              std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      T& s = slot(index(head_ + i));
      ::new (static_cast<void*>(&fresh[i])) T(std::move(s));
      s.~T();
    }
    ::operator delete(storage_, std::align_val_t{alignof(T)});
    storage_ = fresh;
    capacity_ = new_capacity;
    head_ = 0;
  }

  T* storage_ = nullptr;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace tcppr::util
