// Determinism oracle: a TraceSink that folds the delivered-packet event
// stream into one 64-bit FNV-1a hash. Two runs of the same scenario are
// behaviourally identical iff every delivery happened at the same time, to
// the same node, with the same flow/seq/size — exactly what the hash
// witnesses. Replaces the manual "byte-identical output" comparison: equal
// hashes across reruns and across --jobs counts prove the sweep runners
// did not perturb per-cell simulation behaviour.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/hash.hpp"

namespace tcppr::validate {

class DeliveryHasher final : public trace::TraceSink {
 public:
  void record(const trace::Record& r) override {
    if (r.type != trace::EventType::kDeliver) return;
    ++delivered_;
    std::uint64_t h = hash_;
    h = util::fnv1a_u64(h, static_cast<std::uint64_t>(r.time.as_nanos()));
    h = util::fnv1a_u64(
        h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.flow))
            << 32) |
               static_cast<std::uint32_t>(r.to));
    h = util::fnv1a_u64(h, static_cast<std::uint64_t>(r.seq));
    h = util::fnv1a_u64(h, (static_cast<std::uint64_t>(r.size_bytes) << 1) |
                               (r.is_ack ? 1u : 0u));
    hash_ = h;
  }

  std::uint64_t hash() const { return hash_; }
  std::uint64_t delivered() const { return delivered_; }
  void reset() {
    hash_ = util::kFnvOffsetBasis;
    delivered_ = 0;
  }

 private:
  std::uint64_t hash_ = util::kFnvOffsetBasis;
  std::uint64_t delivered_ = 0;
};

}  // namespace tcppr::validate
