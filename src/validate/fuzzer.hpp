// ScenarioFuzzer: randomized scenario generation driven by a single seed,
// executed under the InvariantChecker.
//
// One seed deterministically selects a topology (the paper's dumbbell /
// parking-lot / multi-path plus a small random graph), a variant mix over
// all twelve senders, a run length, and a set of fault processes
// (Bernoulli loss, delivery jitter, LinkFlapper outages, a mid-run
// bandwidth/delay reconfiguration). The space of adversarial reorder/loss
// interleavings is far larger than the hand-built figure scenarios cover;
// the fuzzer samples it.
//
// On failure the campaign prints a one-line reproducer
// (`tcppr_sim --fuzz-seed N` plus the sampled config) and a greedily
// minimized variant of the case that still fails.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenarios.hpp"

namespace tcppr::validate {

struct FuzzCase {
  enum class Topology { kDumbbell, kParkingLot, kMultipath, kRandomGraph };

  std::uint64_t seed = 1;
  Topology topology = Topology::kDumbbell;
  int flows = 1;  // measured flows (always 1 on the multipath mesh)
  std::vector<harness::TcpVariant> variants;  // size == flows
  double duration_s = 5.0;
  bool cross_traffic = false;  // parking-lot only
  // Fault processes (0 / false = disabled).
  double loss_rate = 0;
  double jitter_ms = 0;
  bool flap = false;
  double flap_mean_up_s = 1.0;
  double flap_mean_down_s = 0.2;
  bool reconfigure_mid_run = false;  // halve bw / double delay at T/2
  // Topology knobs.
  double epsilon = 0;   // multipath randomization (paper sweep values)
  int graph_nodes = 6;  // random graph only (ring + chords)
  // Background flow churn: a small WorkloadEngine (src/workload) spraying
  // short dynamic transfers between the scenario's src/dst hosts while the
  // measured flows run. 0 = disabled. Sampled AFTER every other knob so
  // adding the dimension did not re-shuffle the cases seeds 1..N produced
  // before it existed. churn_kind indexes workload::WorkloadKind
  // (0=poisson, 1=web, 2=onoff; kept as int so this header does not pull
  // in the workload layer).
  double churn_rate = 0;  // mean dynamic-flow arrivals per second
  int churn_kind = 0;
  // Link-tap reordering telemetry (src/telemetry) with the exact per-flow
  // baseline enabled, checked against the sketches every sweep. Sampled
  // AFTER churn (the seed-prefix rule above: seeds 1..N still expand to
  // the cases they produced before this dimension existed).
  bool telemetry = false;
  // Parallel engine mode (0 = conservative barriers, 1 = adaptive
  // repartitioning, 2 = bounded-optimism speculation). Sampled AFTER
  // telemetry — the newest dimension, drawn last so the seed-prefix rule
  // keeps every older seed expanding to the case it always produced. The
  // mode only matters when par_lps >= 1 (sequential runs have no engine);
  // all three modes must produce the identical delivery hash, so the
  // fuzzer sweeping them is a free differential oracle. Mode 3
  // (adaptive+optimistic combined) is never sampled but can be forced by
  // the campaign override / --engine.
  int engine_mode = 0;
  // Scheduler backend the scenario runs on. Never sampled (every backend
  // must produce identical trajectories, so sampling it would add nothing);
  // set explicitly by the backend-equivalence tests and --queue.
  sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap;
  // Logical processes for the parallel engine. 0 = legacy sequential run
  // on the build scheduler; 1 = canonical stamped run on a single shard;
  // >= 2 = threaded. Never sampled (like `backend`: any LP count >= 1
  // must produce the identical trajectory); set explicitly by the
  // parallel-equivalence tests and --par. The realized LP count may be
  // lower when the partitioner finds no positive-lookahead cut.
  int par_lps = 0;
  // Batched hot path (net::set_hot_path_batching), sampled at Network
  // construction. Never sampled (like `backend`: the batched and
  // unbatched engines must produce the identical trajectory); set
  // explicitly by the batch-equivalence tests and --no-batch.
  bool batching = true;

  // Mutation knobs for the checker's self-test. Never sampled by the
  // fuzzer; set explicitly by tests/validate_selftest.cpp.
  bool corrupt_transit_for_test = false;
  bool corrupt_delivery_for_test = false;
  bool corrupt_telemetry_for_test = false;  // requires telemetry = true
  // Flips one validating receiver's delivery hash on restore from the
  // first optimistic rollback (ParallelRunConfig::corrupt_snapshot_for_test);
  // requires engine_mode = 2 and par_lps >= 2 plus a case that actually
  // speculates and rolls back.
  bool corrupt_snapshot_for_test = false;
};

const char* to_string(FuzzCase::Topology topology);

// Deterministically expands a seed into a case (sample_fuzz_case(n) is a
// pure function of n).
FuzzCase sample_fuzz_case(std::uint64_t seed);

struct FuzzResult {
  bool ok = false;
  std::uint64_t violations = 0;
  std::string first_violation;
  std::uint64_t delivered = 0;      // packets delivered to agents
  std::uint64_t delivery_hash = 0;  // determinism oracle over the run
};

// Builds the scenario described by `c`, runs it under an InvariantChecker
// for c.duration_s of simulated time, and reports the outcome.
FuzzResult run_fuzz_case(const FuzzCase& c);

// One-line reproducer configuration (appended to "--fuzz-seed N").
std::string describe(const FuzzCase& c);

// Greedy config minimizer: tries removing fault processes, shrinking the
// flow set and duration, and simplifying the topology while the case
// still fails; at most `max_runs` re-executions.
FuzzCase minimize_fuzz_case(const FuzzCase& failing, int max_runs = 40);

// Runs seeds [first_seed, first_seed + count) across `jobs` threads.
// Prints one reproducer line per failing seed (plus its minimized form)
// through std::fprintf(stderr, ...) and returns the number of failures.
// When `artifact_dir` is non-empty it is created if needed and every
// failing seed writes `fuzz-fail-<seed>.txt` there: the reproducer
// command, the sampled config, the first violation, and (unless quiet)
// the minimized config. CI uploads the directory so a red fuzz job
// carries its own repro.
// Every sampled case runs on `backend` and `par_lps` logical processes
// (the sampler itself never varies either — see the FuzzCase fields).
// `engine_mode` = -1 keeps each case's sampled mode; 0/1/2 force
// conservative/adaptive/optimistic for the whole campaign (nightly runs
// one campaign per forced mode).
int run_fuzz_campaign(
    std::uint64_t first_seed, int count, int jobs, bool quiet = false,
    const std::string& artifact_dir = "",
    sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap,
    int par_lps = 0, int engine_mode = -1);

}  // namespace tcppr::validate
