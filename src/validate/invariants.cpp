#include "validate/invariants.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "core/tcp_pr.hpp"
#include "telemetry/telemetry.hpp"
#include "util/hash.hpp"

namespace tcppr::validate {

namespace {

// Tolerance for floating-point window arithmetic (cwnd grows by 1/cwnd).
constexpr double kEps = 1e-9;

__attribute__((format(printf, 1, 2))) std::string format(const char* fmt,
                                                         ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

InvariantChecker::InvariantChecker(harness::Scenario& scenario, Config config)
    : scenario_(scenario), config_(config), timer_(scenario.sched) {
  for (const auto& s : scenario_.senders) register_sender(s.get());
  for (const auto& s : scenario_.cross_senders) register_sender(s.get());
  for (const auto& r : scenario_.receivers) register_receiver(r.get());
  for (const auto& r : scenario_.cross_receivers) register_receiver(r.get());
}

void InvariantChecker::register_sender(const tcp::SenderBase* sender) {
  SenderState st;
  st.sender = sender;
  st.pr = dynamic_cast<const core::TcpPrSender*>(sender);
  st.flow = sender->flow();
  if (st.pr != nullptr) {
    // Arm the in-algorithm deadline oracle.
    const_cast<core::TcpPrSender*>(st.pr)->enable_validation();
  }
  senders_.push_back(st);
}

void InvariantChecker::register_receiver(tcp::Receiver* receiver) {
  receiver->enable_delivery_validation();
  ReceiverState st;
  st.receiver = receiver;
  st.flow = receiver->flow();
  // Validate deliveries from this point on: take the receiver's current
  // fold as the baseline and extend it independently.
  st.last_rcv_next = receiver->rcv_next();
  st.hashed_to = receiver->rcv_next();
  st.expected_hash = receiver->delivered_hash();
  receivers_.push_back(st);
}

void InvariantChecker::start() { sweep(); }

void InvariantChecker::check_now() {
  check_conservation();
  for (const SenderState& s : senders_) check_sender(s);
  for (ReceiverState& r : receivers_) check_receiver(r);
  check_telemetry();
  ++sweeps_;
}

void InvariantChecker::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  tap_prev_.assign(telemetry != nullptr ? telemetry->tap_count() : 0,
                   TapSnapshot{});
}

void InvariantChecker::check_telemetry() {
  if (telemetry_ == nullptr) return;
  for (std::size_t i = 0; i < telemetry_->tap_count(); ++i) {
    const telemetry::ReorderTap& tap = telemetry_->tap(i);
    const telemetry::ReorderTap::Totals t = tap.totals();

    // Monotone counters: totals() must never lose counts across sweeps —
    // folding moves them into the aggregate, it doesn't drop them.
    TapSnapshot& prev = tap_prev_[i];
    if (t.data_packets < prev.data_packets || t.reordered < prev.reordered ||
        t.displacement_sum < prev.displacement_sum ||
        t.folded_flows < prev.folded_flows) {
      add_violation(format(
          "telemetry tap %zu: totals moved backwards (data %llu->%llu "
          "reordered %llu->%llu disp %llu->%llu folds %llu->%llu)",
          i, static_cast<unsigned long long>(prev.data_packets),
          static_cast<unsigned long long>(t.data_packets),
          static_cast<unsigned long long>(prev.reordered),
          static_cast<unsigned long long>(t.reordered),
          static_cast<unsigned long long>(prev.displacement_sum),
          static_cast<unsigned long long>(t.displacement_sum),
          static_cast<unsigned long long>(prev.folded_flows),
          static_cast<unsigned long long>(t.folded_flows)));
    }
    prev = {t.data_packets, t.reordered, t.displacement_sum, t.folded_flows};

    // Exactly-once folding arithmetic.
    if (t.folded_flows != t.evictions + t.retired_folds) {
      add_violation(format(
          "telemetry tap %zu: folded_flows %llu != evictions %llu + "
          "retired %llu",
          i, static_cast<unsigned long long>(t.folded_flows),
          static_cast<unsigned long long>(t.evictions),
          static_cast<unsigned long long>(t.retired_folds)));
    }

    // Count-min bracket: each heavy-hitter estimate can over-count a flow
    // but never exceeds the tap-wide detected total.
    for (const auto& h : tap.heavy_reorderers()) {
      if (h.estimate > t.reordered) {
        add_violation(format(
            "telemetry tap %zu: count-min estimate %llu for flow %d above "
            "tap total %llu",
            i, static_cast<unsigned long long>(h.estimate), h.flow,
            static_cast<unsigned long long>(t.reordered)));
      }
    }

    if (!tap.exact_baseline_enabled()) continue;
    const telemetry::ReorderTap::ExactTotals ex = tap.exact_totals();
    // Data packets are counted before the slot table can reject them, so
    // sketch and exact agree exactly.
    if (t.data_packets != ex.total) {
      add_violation(format(
          "telemetry tap %zu: sketch data_packets %llu != exact %llu", i,
          static_cast<unsigned long long>(t.data_packets),
          static_cast<unsigned long long>(ex.total)));
    }
    // One-sided bounds: a slot's running max is a lower bound on the
    // flow's true running max, so the sketch never over-reports.
    if (t.reordered > ex.reordered) {
      add_violation(format(
          "telemetry tap %zu: sketch reordered %llu above exact %llu", i,
          static_cast<unsigned long long>(t.reordered),
          static_cast<unsigned long long>(ex.reordered)));
    }
    if (static_cast<double>(t.displacement_sum) > ex.extent_sum + 1e-6) {
      add_violation(format(
          "telemetry tap %zu: sketch displacement sum %llu above exact %.1f",
          i, static_cast<unsigned long long>(t.displacement_sum),
          ex.extent_sum));
    }
    if (t.max_displacement > ex.max_extent) {
      add_violation(format(
          "telemetry tap %zu: sketch max displacement %lld above exact %lld",
          i, static_cast<long long>(t.max_displacement),
          static_cast<long long>(ex.max_extent)));
    }
    // Collision-free taps tracked every flow from its first packet: the
    // sketch IS the exact answer.
    if (t.collisions == 0 &&
        (t.reordered != ex.reordered ||
         static_cast<double>(t.displacement_sum) != ex.extent_sum ||
         t.max_displacement != ex.max_extent)) {
      add_violation(format(
          "telemetry tap %zu: collision-free sketch disagrees with exact "
          "(reordered %llu vs %llu, disp %llu vs %.1f, max %lld vs %lld)",
          i, static_cast<unsigned long long>(t.reordered),
          static_cast<unsigned long long>(ex.reordered),
          static_cast<unsigned long long>(t.displacement_sum), ex.extent_sum,
          static_cast<long long>(t.max_displacement),
          static_cast<long long>(ex.max_extent)));
    }
    // RFC 5236 flavour occupancy invariant on the exact side: a flow whose
    // arrival stream has no open gap never buffered more segments than its
    // largest reorder extent (each buffered segment is a distinct integer
    // in an interval of width max_extent).
    for (const auto& [flow, mon] : tap.exact_flows()) {
      if (mon.complete() &&
          mon.max_buffer_occupancy() >
              static_cast<std::size_t>(mon.max_extent())) {
        add_violation(format(
            "telemetry tap %zu flow %d: complete stream buffered %zu > "
            "max extent %lld",
            i, flow, mon.max_buffer_occupancy(),
            static_cast<long long>(mon.max_extent())));
      }
    }
  }
}

void InvariantChecker::sweep() {
  check_now();
  timer_.schedule_in(config_.sweep_interval, [this] { sweep(); });
}

void InvariantChecker::finalize() {
  if (finalized_) return;
  finalized_ = true;
  timer_.cancel();
  check_now();
}

void InvariantChecker::add_violation(std::string what) {
  ++total_violations_;
  if (violations_.size() < config_.max_violations) {
    violations_.push_back({scenario_.sched.now(), std::move(what)});
  }
}

std::string InvariantChecker::report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += format("t=%.6f %s\n", v.time.as_seconds(), v.what.c_str());
  }
  if (total_violations_ > violations_.size()) {
    out += format("(+%llu more violations)\n",
                  static_cast<unsigned long long>(total_violations_ -
                                                  violations_.size()));
  }
  return out;
}

void InvariantChecker::check_conservation() {
  auto snap = scenario_.network.conservation();
  if (external_in_flight_) snap.in_transit += external_in_flight_();
  if (!snap.balanced()) {
    add_violation(format(
        "conservation: originated=%llu != accounted=%llu (delivered=%llu "
        "unroutable=%llu link_lost=%llu queue_dropped=%llu in_queues=%llu "
        "in_transit=%llu)",
        static_cast<unsigned long long>(snap.originated),
        static_cast<unsigned long long>(snap.accounted()),
        static_cast<unsigned long long>(snap.delivered_to_agent),
        static_cast<unsigned long long>(snap.unroutable),
        static_cast<unsigned long long>(snap.link_lost),
        static_cast<unsigned long long>(snap.queue_dropped),
        static_cast<unsigned long long>(snap.in_queues),
        static_cast<unsigned long long>(snap.in_transit)));
  }
}

void InvariantChecker::check_sender(const SenderState& s) {
  const tcp::SenderInvariantView v = s.sender->invariant_view();
  if (!v.valid) return;
  const char* algo = s.sender->algorithm();
  if (v.cwnd < 1.0 - kEps) {
    add_violation(
        format("flow %d (%s): cwnd %.9f < 1", s.flow, algo, v.cwnd));
  }
  if (v.ssthresh < v.ssthresh_floor - kEps) {
    add_violation(format("flow %d (%s): ssthresh %.9f below floor %.1f",
                         s.flow, algo, v.ssthresh, v.ssthresh_floor));
  }
  if (v.snd_una > v.snd_nxt) {
    add_violation(format("flow %d (%s): snd_una %lld > snd_nxt %lld", s.flow,
                         algo, static_cast<long long>(v.snd_una),
                         static_cast<long long>(v.snd_nxt)));
  }
  if (v.window_bookkeeping &&
      v.tracked_in_window != v.snd_nxt - v.snd_una) {
    add_violation(format(
        "flow %d (%s): outstanding bookkeeping %lld != snd_nxt-snd_una %lld",
        s.flow, algo, static_cast<long long>(v.tracked_in_window),
        static_cast<long long>(v.snd_nxt - v.snd_una)));
  }
  if (v.has_rto && (v.rto < v.min_rto || v.rto > v.max_rto)) {
    add_violation(format("flow %d (%s): RTO %.6f outside [%.6f, %.6f]",
                         s.flow, algo, v.rto.as_seconds(),
                         v.min_rto.as_seconds(), v.max_rto.as_seconds()));
  }
  if (v.rtx_timer_needed && !v.rtx_timer_armed) {
    add_violation(format(
        "flow %d (%s): data outstanding but retransmit timer not armed",
        s.flow, algo));
  }
  if (v.rtx_timer_strict && v.rtx_timer_armed && !v.rtx_timer_needed) {
    add_violation(format(
        "flow %d (%s): retransmit timer armed with nothing outstanding",
        s.flow, algo));
  }
  if (!v.scoreboard_ok) {
    add_violation(
        format("flow %d (%s): scoreboard inconsistent", s.flow, algo));
  }
  if (s.pr != nullptr) {
    const auto p = s.pr->pr_invariant_view();
    if (p.mxrtt_s + 1e-12 < p.ewrtt_s) {
      add_violation(format(
          "flow %d (tcp-pr): mxrtt %.9f < ewrtt %.9f (backoff=%d)", s.flow,
          p.mxrtt_s, p.ewrtt_s, p.in_backoff ? 1 : 0));
    }
    if (p.early_drop_declarations != 0) {
      add_violation(format(
          "flow %d (tcp-pr): %llu drop(s) declared before the mxrtt deadline",
          s.flow,
          static_cast<unsigned long long>(p.early_drop_declarations)));
    }
  }
}

void InvariantChecker::check_receiver(ReceiverState& r) {
  const tcp::Receiver& rx = *r.receiver;
  if (rx.rcv_next() < r.last_rcv_next) {
    add_violation(format(
        "flow %d receiver: cumulative ACK moved backwards (%lld -> %lld)",
        r.flow, static_cast<long long>(r.last_rcv_next),
        static_cast<long long>(rx.rcv_next())));
  }
  r.last_rcv_next = rx.rcv_next();

  // SACK block structure: every block non-empty and above the cumulative
  // ACK point; blocks pairwise disjoint.
  std::vector<net::SackBlock> blocks(rx.sack_blocks().begin(),
                                     rx.sack_blocks().end());
  std::sort(blocks.begin(), blocks.end(),
            [](const net::SackBlock& a, const net::SackBlock& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].begin >= blocks[i].end) {
      add_violation(format("flow %d receiver: empty SACK block [%lld, %lld)",
                           r.flow, static_cast<long long>(blocks[i].begin),
                           static_cast<long long>(blocks[i].end)));
    }
    if (blocks[i].begin < rx.rcv_next()) {
      add_violation(format(
          "flow %d receiver: SACK block [%lld, %lld) below cumack %lld",
          r.flow, static_cast<long long>(blocks[i].begin),
          static_cast<long long>(blocks[i].end),
          static_cast<long long>(rx.rcv_next())));
    }
    if (i > 0 && blocks[i - 1].end > blocks[i].begin) {
      add_violation(format(
          "flow %d receiver: overlapping SACK blocks [%lld, %lld) and "
          "[%lld, %lld)",
          r.flow, static_cast<long long>(blocks[i - 1].begin),
          static_cast<long long>(blocks[i - 1].end),
          static_cast<long long>(blocks[i].begin),
          static_cast<long long>(blocks[i].end)));
    }
  }

  // End-to-end payload checksum: extend the independent expectation to the
  // current in-order point and compare folds.
  while (r.hashed_to < rx.rcv_next()) {
    r.expected_hash = util::fnv1a_u64(r.expected_hash,
                                      util::payload_word(r.flow, r.hashed_to));
    ++r.hashed_to;
  }
  if (r.expected_hash != rx.delivered_hash()) {
    add_violation(format(
        "flow %d receiver: payload checksum mismatch at rcv_next %lld "
        "(expected %016llx, got %016llx)",
        r.flow, static_cast<long long>(rx.rcv_next()),
        static_cast<unsigned long long>(r.expected_hash),
        static_cast<unsigned long long>(rx.delivered_hash())));
  }
}

}  // namespace tcppr::validate
