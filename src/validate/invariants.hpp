// InvariantChecker: continuous whole-simulation correctness monitor.
//
// Attached to a built harness::Scenario, the checker sweeps the simulation
// state on a scheduler timer and asserts, between events:
//
//   network    packet conservation — every packet ever originated is
//              delivered, dropped (queue / loss model / unroutable), or
//              still in flight (queued or in a transmitter), at all times
//              and at teardown;
//   senders    the per-variant state-machine invariants exported through
//              tcp::SenderInvariantView (cwnd >= 1, ssthresh above the
//              variant's floor, snd_una <= snd_nxt, window bookkeeping
//              complete, RTO inside [min_rto, max_rto], retransmit timer
//              armed when data is outstanding, scoreboard consistency);
//   receivers  cumulative ACK monotonicity, SACK block structure (disjoint
//              and above the cumulative ACK point), and the end-to-end
//              payload checksum: the bytes entering the in-order stream
//              are exactly the deterministic payload of segments 0..n in
//              order (tcp::Receiver's FNV-1a fold vs an independently
//              computed expectation);
//   TCP-PR     mxrtt >= ewrtt (the detection envelope never dips below the
//              estimate it multiplies) and the drop-declaration deadline
//              oracle (no drop declared before sent_at + mxrtt).
//
// Checking is opt-in. Nothing here is constructed in an unvalidated run,
// and the hooks the checker relies on (receiver delivery hash, TCP-PR
// deadline oracle) cost one predictable branch each when disabled — the
// same contract as src/obs, verified against BENCH_engine.json.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/scenarios.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::core {
class TcpPrSender;
}

namespace tcppr::telemetry {
class Telemetry;
}

namespace tcppr::validate {

struct Violation {
  sim::TimePoint time;
  std::string what;
};

class InvariantChecker {
 public:
  struct Config {
    sim::Duration sweep_interval = sim::Duration::millis(50);
    // Violations kept verbatim; past the cap only the count grows.
    std::size_t max_violations = 32;
  };

  // Registers every endpoint of `scenario` (measured and cross-traffic)
  // and arms their validation hooks. Construct after the scenario is
  // built (flows added) and before the simulation runs; the checker must
  // outlive the run.
  InvariantChecker(harness::Scenario& scenario, Config config);
  explicit InvariantChecker(harness::Scenario& scenario)
      : InvariantChecker(scenario, Config()) {}

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Begins periodic sweeps (immediately, then every sweep_interval).
  void start();
  // Cancels the sweep timer and runs the teardown sweep. Call after the
  // simulation has finished; ok()/report() are complete afterwards.
  void finalize();
  // One immediate sweep without touching the periodic schedule. Safe to
  // call between events at any time. This is the parallel-mode entry
  // point: do not start() there (the periodic timer lives on the idle
  // build-time scheduler); ParallelSim calls check_now() at every
  // barrier, where all shards are parked and state is coherent.
  void check_now();

  // Parallel mode: packets riding a cut-link mailbox, or injected into
  // the destination shard but not yet executed, are invisible to the
  // network's conservation snapshot. The provider reports that count so
  // conservation balances at barriers (ParallelSim::external_in_flight).
  void set_external_in_flight(std::function<std::uint64_t()> provider) {
    external_in_flight_ = std::move(provider);
  }

  // Telemetry surface: every sweep asserts, per tap, the sketches' declared
  // error bounds against the exact baseline (sketch never over-reports
  // reordering; exact when collision-free; count-min estimates bracketed),
  // monotone tap counters across sweeps, exactly-once folding arithmetic,
  // and — when the exact baseline is on — data_packets agreement and the
  // completeness implication max_buffer_occupancy <= max_extent. Attach
  // before the run; the telemetry must outlive the checker's last sweep.
  void set_telemetry(telemetry::Telemetry* telemetry);

  bool ok() const { return total_violations_ == 0; }
  std::uint64_t total_violations() const { return total_violations_; }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t sweeps() const { return sweeps_; }
  // One line per recorded violation ("t=<seconds> <what>").
  std::string report() const;

 private:
  struct SenderState {
    const tcp::SenderBase* sender = nullptr;
    const core::TcpPrSender* pr = nullptr;  // non-null for TCP-PR flows
    net::FlowId flow = net::kInvalidFlow;
  };
  struct ReceiverState {
    tcp::Receiver* receiver = nullptr;
    net::FlowId flow = net::kInvalidFlow;
    tcp::SeqNo last_rcv_next = 0;
    // Incremental expectation for the receiver's delivery hash: segments
    // [0, hashed_to) folded so far, starting from the receiver's state at
    // attach time.
    tcp::SeqNo hashed_to = 0;
    std::uint64_t expected_hash = 0;
  };

  void register_sender(const tcp::SenderBase* sender);
  void register_receiver(tcp::Receiver* receiver);
  void sweep();
  void check_conservation();
  void check_sender(const SenderState& s);
  void check_receiver(ReceiverState& r);
  void check_telemetry();
  void add_violation(std::string what);

  harness::Scenario& scenario_;
  Config config_;
  std::vector<SenderState> senders_;
  std::vector<ReceiverState> receivers_;
  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t sweeps_ = 0;
  bool finalized_ = false;
  std::function<std::uint64_t()> external_in_flight_;
  telemetry::Telemetry* telemetry_ = nullptr;
  // Per-tap monotonicity snapshots from the previous sweep:
  // {data_packets, reordered, displacement_sum, folded_flows}.
  struct TapSnapshot {
    std::uint64_t data_packets = 0;
    std::uint64_t reordered = 0;
    std::uint64_t displacement_sum = 0;
    std::uint64_t folded_flows = 0;
  };
  std::vector<TapSnapshot> tap_prev_;
  sim::Timer timer_;
};

}  // namespace tcppr::validate
