#include "validate/fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <system_error>
#include <utility>

#include "harness/parallel.hpp"
#include "harness/parallel_run.hpp"
#include "net/link_flapper.hpp"
#include "net/link_pump.hpp"
#include "sim/random.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "validate/determinism.hpp"
#include "validate/invariants.hpp"
#include "workload/workload.hpp"

namespace tcppr::validate {

const char* to_string(FuzzCase::Topology topology) {
  switch (topology) {
    case FuzzCase::Topology::kDumbbell:
      return "dumbbell";
    case FuzzCase::Topology::kParkingLot:
      return "parking-lot";
    case FuzzCase::Topology::kMultipath:
      return "multipath";
    case FuzzCase::Topology::kRandomGraph:
      return "random-graph";
  }
  return "?";
}

FuzzCase sample_fuzz_case(std::uint64_t seed) {
  sim::Rng rng = sim::Rng(seed).fork(0xFA55);
  FuzzCase c;
  c.seed = seed;

  const double topo_weights[] = {0.35, 0.2, 0.2, 0.25};
  c.topology = static_cast<FuzzCase::Topology>(rng.categorical(topo_weights, 4));

  const auto& variants = harness::all_variants();
  c.flows = c.topology == FuzzCase::Topology::kMultipath
                ? 1
                : 1 + static_cast<int>(rng.uniform_int(4));
  c.variants.clear();
  for (int i = 0; i < c.flows; ++i) {
    c.variants.push_back(variants[rng.uniform_int(variants.size())]);
  }

  c.duration_s = rng.uniform(3.0, 8.0);
  c.cross_traffic =
      c.topology == FuzzCase::Topology::kParkingLot && rng.bernoulli(0.5);
  c.loss_rate = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.05) : 0.0;
  c.jitter_ms = rng.bernoulli(0.5) ? rng.uniform(0.0, 20.0) : 0.0;
  c.flap = rng.bernoulli(0.3);
  c.flap_mean_up_s = rng.uniform(0.5, 2.0);
  c.flap_mean_down_s = rng.uniform(0.05, 0.4);
  c.reconfigure_mid_run = rng.bernoulli(0.3);
  const double eps_values[] = {0, 1, 4, 10, 500};
  c.epsilon = eps_values[rng.uniform_int(5)];
  c.graph_nodes = 4 + static_cast<int>(rng.uniform_int(5));
  // Churn draws come last (see the header): the prefix of the stream is
  // exactly what the pre-churn sampler consumed, so seeds keep producing
  // the same topology/fault mix they always did.
  c.churn_rate = rng.bernoulli(0.3) ? rng.uniform(100.0, 800.0) : 0.0;
  c.churn_kind = static_cast<int>(rng.uniform_int(3));
  // Telemetry draws after churn: same seed-prefix rule, next dimension.
  c.telemetry = rng.bernoulli(0.35);
  // Engine mode draws after telemetry: same seed-prefix rule, newest
  // dimension last. Only observable when the case runs with par_lps >= 1.
  c.engine_mode = static_cast<int>(rng.uniform_int(3));
  return c;
}

const char* engine_mode_name(int mode) {
  switch (mode) {
    case 1:
      return "adaptive";
    case 2:
      return "optimistic";
    case 3:  // never sampled; forced by --engine adaptive+optimistic
      return "adaptive+optimistic";
    default:
      return "conservative";
  }
}

std::string describe(const FuzzCase& c) {
  char buf[384];
  std::string variants;
  for (const auto v : c.variants) {
    if (!variants.empty()) variants += ",";
    variants += harness::to_string(v);
  }
  const char* queue = c.backend == sim::SchedulerBackend::kCalendarQueue
                          ? "calendar"
                      : c.backend == sim::SchedulerBackend::kTimingWheel
                          ? "wheel"
                          : "heap";
  const char* churn_kinds[] = {"poisson", "web", "onoff"};
  char churn[48];
  if (c.churn_rate > 0) {
    std::snprintf(churn, sizeof(churn), "%s@%.0f/s",
                  churn_kinds[c.churn_kind % 3], c.churn_rate);
  } else {
    std::snprintf(churn, sizeof(churn), "off");
  }
  std::snprintf(
      buf, sizeof(buf),
      "topology=%s flows=%d variants=[%s] dur=%.2fs cross=%d loss=%.4f "
      "jitter=%.1fms flap=%d(up=%.2fs,down=%.2fs) reconf=%d eps=%g nodes=%d "
      "batch=%d "
      "queue=%s par=%d churn=%s telemetry=%d engine=%s",
      to_string(c.topology), c.flows, variants.c_str(), c.duration_s,
      c.cross_traffic ? 1 : 0, c.loss_rate, c.jitter_ms, c.flap ? 1 : 0,
      c.flap_mean_up_s, c.flap_mean_down_s, c.reconfigure_mid_run ? 1 : 0,
      c.epsilon, c.graph_nodes, c.batching ? 1 : 0, queue, c.par_lps, churn,
      c.telemetry ? 1 : 0, engine_mode_name(c.engine_mode));
  return buf;
}

namespace {

std::unique_ptr<harness::Scenario> build_random_graph(const FuzzCase& c,
                                                      sim::Rng& rng) {
  auto s = std::make_unique<harness::Scenario>(c.backend);
  net::Network& nw = s->network;
  const int n = std::max(4, c.graph_nodes);
  for (int i = 0; i < n; ++i) nw.add_node();

  net::LinkConfig link;
  link.bandwidth_bps = 10e6;
  link.delay = sim::Duration::millis(5);
  link.queue_limit_packets = 50;
  // Ring plus two chords: every pair of nodes has at least two
  // edge-disjoint routes, so flapped or reconfigured links reroute rather
  // than partition.
  for (int i = 0; i < n; ++i) {
    auto [fwd, rev] = nw.add_duplex_link(i, (i + 1) % n, link);
    s->bottlenecks.push_back(fwd);
    (void)rev;
  }
  auto [c1, c1r] = nw.add_duplex_link(0, n / 2, link);
  s->bottlenecks.push_back(c1);
  (void)c1r;
  if (n >= 6) {
    auto [c2, c2r] = nw.add_duplex_link(1, 1 + n / 2, link);
    s->bottlenecks.push_back(c2);
    (void)c2r;
  }
  nw.compute_static_routes();
  s->src_host = 0;
  s->dst_host = n / 2;

  tcp::TcpConfig tcp;
  core::TcpPrConfig pr;
  for (int i = 0; i < c.flows; ++i) {
    const net::NodeId src = static_cast<net::NodeId>(rng.uniform_int(n));
    net::NodeId dst = static_cast<net::NodeId>(rng.uniform_int(n));
    if (dst == src) dst = (dst + 1 + static_cast<net::NodeId>(n) / 2) % n;
    const auto start = sim::TimePoint::from_seconds(rng.uniform(0.0, 1.0));
    s->add_flow(c.variants[static_cast<std::size_t>(i)], src, dst,
                /*flow=*/i + 1, tcp, pr, start);
  }
  return s;
}

std::unique_ptr<harness::Scenario> build_scenario(const FuzzCase& c,
                                                  sim::Rng& rng) {
  switch (c.topology) {
    case FuzzCase::Topology::kDumbbell: {
      harness::DumbbellConfig cfg;
      cfg.pr_flows = 0;
      cfg.sack_flows = 0;
      cfg.seed = c.seed;
      cfg.backend = c.backend;
      auto s = harness::make_dumbbell(cfg);
      for (int i = 0; i < c.flows; ++i) {
        const auto start = sim::TimePoint::from_seconds(rng.uniform(0.0, 1.0));
        s->add_flow(c.variants[static_cast<std::size_t>(i)], s->src_host,
                    s->dst_host, /*flow=*/i + 1, cfg.tcp, cfg.pr, start);
      }
      return s;
    }
    case FuzzCase::Topology::kParkingLot: {
      harness::ParkingLotConfig cfg;
      cfg.pr_flows = 0;
      cfg.sack_flows = 0;
      cfg.with_cross_traffic = c.cross_traffic;
      cfg.seed = c.seed;
      cfg.backend = c.backend;
      auto s = harness::make_parking_lot(cfg);
      for (int i = 0; i < c.flows; ++i) {
        const auto start = sim::TimePoint::from_seconds(rng.uniform(0.0, 1.0));
        s->add_flow(c.variants[static_cast<std::size_t>(i)], s->src_host,
                    s->dst_host, /*flow=*/100 + i, cfg.tcp, cfg.pr, start);
      }
      return s;
    }
    case FuzzCase::Topology::kMultipath: {
      harness::MultipathConfig cfg;
      cfg.variant = c.variants.empty() ? harness::TcpVariant::kTcpPr
                                       : c.variants.front();
      cfg.epsilon = c.epsilon;
      cfg.seed = c.seed;
      cfg.backend = c.backend;
      return harness::make_multipath(cfg);
    }
    case FuzzCase::Topology::kRandomGraph:
      return build_random_graph(c, rng);
  }
  TCPPR_CHECK(false);
  return nullptr;
}

}  // namespace

FuzzResult run_fuzz_case(const FuzzCase& c) {
  sim::Rng rng = sim::Rng(c.seed).fork(0xB01D);
  std::unique_ptr<harness::Scenario> scenario;
  {
    // The batching flag is process-global and sampled once, at Network
    // construction; serialize the set-and-construct window so concurrent
    // fuzz cells with different `batching` values cannot leak into each
    // other's networks, and restore the default before releasing it.
    static std::mutex batching_mu;
    std::lock_guard<std::mutex> lock(batching_mu);
    net::set_hot_path_batching(c.batching);
    scenario = build_scenario(c, rng);
    net::set_hot_path_batching(true);
  }
  harness::Scenario& s = *scenario;

  // Fault processes over the scenario's bottleneck set.
  if (c.loss_rate > 0) {
    int applied = 0;
    for (net::Link* link : s.bottlenecks) {
      link->set_loss_model(c.loss_rate, rng.fork(1000 + applied));
      if (++applied >= 2) break;
    }
  }
  if (c.jitter_ms > 0) {
    int applied = 0;
    for (net::Link* link : s.bottlenecks) {
      link->set_jitter(sim::Duration::millis(c.jitter_ms),
                       rng.fork(2000 + applied));
      if (++applied >= 2) break;
    }
  }
  // Mid-run reconfiguration and mutation knobs go through
  // Scenario::schedule_action (identical to a plain schedule_at in
  // sequential runs) so parallel adoption can move them onto the shard
  // owning the touched object.
  if (c.reconfigure_mid_run && !s.bottlenecks.empty()) {
    net::Link* link = s.bottlenecks.front();
    s.schedule_action(sim::TimePoint::from_seconds(c.duration_s / 2),
                      link->from(), [link] {
                        link->set_bandwidth(link->bandwidth_bps() / 2);
                        link->set_prop_delay(link->prop_delay() * 2.0);
                      });
  }
  if (c.corrupt_transit_for_test && !s.bottlenecks.empty()) {
    s.bottlenecks.front()->corrupt_transit_accounting_for_test();
  }
  if (c.corrupt_delivery_for_test && !s.receivers.empty()) {
    tcp::Receiver* rx = s.receivers.front().get();
    s.schedule_action(sim::TimePoint::from_seconds(c.duration_s / 2),
                      rx->local_node(),
                      [rx] { rx->corrupt_delivered_hash_for_test(); });
  }

  // Link-tap telemetry attaches before the run so every delivery is
  // observed; the exact baseline is on (fuzz cases are small), making each
  // sweep a sketch-vs-ground-truth differential check.
  std::unique_ptr<telemetry::Telemetry> telemetry;
  if (c.telemetry) {
    telemetry::TelemetryConfig tc;
    tc.tap.exact_baseline = true;
    telemetry = std::make_unique<telemetry::Telemetry>(s.network, tc);
    if (c.corrupt_telemetry_for_test) {
      telemetry::Telemetry* t = telemetry.get();
      s.schedule_action(sim::TimePoint::from_seconds(c.duration_s / 2),
                        /*affinity=*/0, [t] { t->corrupt_sketch_for_test(); });
    }
  }

  DeliveryHasher hasher;
  s.network.add_trace_sink(&hasher);
  InvariantChecker checker(s);
  checker.set_telemetry(telemetry.get());

  // Parallel mode: shards, mailboxes and adoption happen here, after all
  // build-time scheduling above (the ParallelSim CHECKs the build
  // scheduler drained). The checker sweeps at barriers instead of on its
  // own timer.
  std::unique_ptr<harness::ParallelSim> psim;
  if (c.par_lps >= 1) {
    harness::ParallelRunConfig pc;
    pc.lps = c.par_lps;
    pc.adaptive = c.engine_mode == 1 || c.engine_mode == 3;
    pc.optimistic = c.engine_mode == 2 || c.engine_mode == 3;
    pc.corrupt_snapshot_for_test = c.corrupt_snapshot_for_test;
    psim = std::make_unique<harness::ParallelSim>(s, pc);
    psim->set_checker(&checker);
  }

  // The flapper is created directly on the shard owning the flapped link
  // (its toggle events and the link's queue events must share an LP).
  std::unique_ptr<net::LinkFlapper> flapper;
  if (c.flap && !s.bottlenecks.empty()) {
    net::LinkFlapper::Config fc;
    fc.mean_up = sim::Duration::seconds(c.flap_mean_up_s);
    fc.mean_down = sim::Duration::seconds(c.flap_mean_down_s);
    fc.seed = c.seed ^ 0x5Au;
    net::Link* link = s.bottlenecks.front();
    sim::Scheduler& flap_sched =
        psim != nullptr ? psim->shard_for(link->from()) : s.sched;
    flapper = std::make_unique<net::LinkFlapper>(
        flap_sched, std::vector<net::Link*>{link}, fc);
    flapper->start();
  }

  // Background churn: a small workload engine sprays short dynamic
  // transfers between the scenario's src/dst hosts alongside the measured
  // flows — dynamic sender/receiver lifecycles, slot quarantine and idle
  // reaping now run under the checker and the delivery-hash oracle. Like
  // the flapper it is created after the ParallelSim so its arrival and
  // teardown events land on the shards owning the hosts, and (borrowing
  // both) it is destroyed before them.
  std::unique_ptr<workload::WorkloadEngine> engine;
  if (c.churn_rate > 0) {
    workload::WorkloadConfig wc;
    const workload::WorkloadKind kinds[] = {workload::WorkloadKind::kPoisson,
                                            workload::WorkloadKind::kWeb,
                                            workload::WorkloadKind::kOnOff};
    wc.kind = kinds[c.churn_kind % 3];
    wc.arrival_rate = c.churn_rate;
    wc.onoff_sources = 16;
    wc.max_segments = 64;  // short transfers: real churn inside duration_s
    wc.max_concurrent = 64;
    wc.id_slots = 256;
    wc.quarantine = sim::Duration::seconds(1);
    wc.reap_idle = sim::Duration::millis(400);
    wc.reap_sweep = sim::Duration::millis(100);
    wc.seed = c.seed ^ 0xC4u;
    engine = std::make_unique<workload::WorkloadEngine>(s, wc, psim.get());
    // Departed dynamic flows fold out of the link taps as they die —
    // sequential runs only (taps belong to shard threads under --par; there
    // the slot-tenure pressure displaces dead flows instead).
    if (telemetry != nullptr && psim == nullptr) {
      engine->set_telemetry(telemetry.get());
    }
    engine->start();
  }

  const auto end = sim::TimePoint::from_seconds(c.duration_s);
  if (psim != nullptr) {
    psim->run_until(end);
  } else {
    checker.start();
    s.sched.run_until(end);
  }
  if (engine) engine->stop();
  if (flapper) flapper->stop();
  checker.finalize();

  FuzzResult result;
  result.ok = checker.ok();
  result.violations = checker.total_violations();
  if (!checker.violations().empty()) {
    result.first_violation = checker.violations().front().what;
  }
  result.delivered = s.network.conservation().delivered_to_agent;
  result.delivery_hash = hasher.hash();
  return result;
}

FuzzCase minimize_fuzz_case(const FuzzCase& failing, int max_runs) {
  FuzzCase best = failing;
  int runs = 0;
  const auto still_fails = [&](const FuzzCase& candidate) {
    if (runs >= max_runs) return false;
    ++runs;
    return !run_fuzz_case(candidate).ok;
  };

  // One simplification per pass, greedily accepted; repeat until a full
  // pass changes nothing or the run budget is spent.
  bool changed = true;
  while (changed && runs < max_runs) {
    changed = false;
    // Engine mode first: dropping back to conservative barriers removes
    // speculation and migration from the picture entirely, so a failure
    // that survives was never an optimism/repartition bug and every later
    // simplification runs under the simplest engine.
    FuzzCase e = best;
    if (best.engine_mode != 0) {
      e.engine_mode = 0;
      e.corrupt_snapshot_for_test = false;
      if (still_fails(e)) { best = e; changed = true; continue; }
    }
    // Telemetry next: it is pure observation, so a failure that survives
    // without it was never a telemetry bug and every later simplification
    // runs cheaper.
    FuzzCase t = best;
    if (best.telemetry) {
      t.telemetry = false;
      t.corrupt_telemetry_for_test = false;
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.churn_rate > 0) {
      t.churn_rate = 0;
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.reconfigure_mid_run) {
      t.reconfigure_mid_run = false;
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.flap) {
      t.flap = false;
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.jitter_ms > 0) {
      t.jitter_ms = 0;
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.loss_rate > 0) {
      t.loss_rate = 0;
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.cross_traffic) {
      t.cross_traffic = false;
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.flows > 1) {
      t.flows = 1;
      t.variants.resize(1);
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.duration_s > 1.5) {
      t.duration_s = std::max(1.0, best.duration_s / 2);
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
    t = best;
    if (best.topology != FuzzCase::Topology::kDumbbell) {
      t.topology = FuzzCase::Topology::kDumbbell;
      if (still_fails(t)) { best = t; changed = true; continue; }
    }
  }
  return best;
}

int run_fuzz_campaign(std::uint64_t first_seed, int count, int jobs,
                      bool quiet, const std::string& artifact_dir,
                      sim::SchedulerBackend backend, int par_lps,
                      int engine_mode) {
  struct CellResult {
    bool ok = true;
    std::string failure;
  };
  std::vector<CellResult> results(static_cast<std::size_t>(count));
  harness::parallel_for(jobs, count, [&](int i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    FuzzCase c = sample_fuzz_case(seed);
    c.backend = backend;
    c.par_lps = par_lps;
    if (engine_mode >= 0) c.engine_mode = engine_mode;
    const FuzzResult r = run_fuzz_case(c);
    if (!r.ok) {
      results[static_cast<std::size_t>(i)].ok = false;
      results[static_cast<std::size_t>(i)].failure = r.first_violation;
    }
  });

  int failures = 0;
  bool artifact_dir_ready = false;
  for (int i = 0; i < count; ++i) {
    if (results[static_cast<std::size_t>(i)].ok) continue;
    ++failures;
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    FuzzCase c = sample_fuzz_case(seed);
    c.backend = backend;
    c.par_lps = par_lps;
    if (engine_mode >= 0) c.engine_mode = engine_mode;
    std::fprintf(stderr, "FUZZ FAIL: tcppr_sim --fuzz-seed %llu  # %s\n",
                 static_cast<unsigned long long>(seed), describe(c).c_str());
    std::fprintf(stderr, "  first violation: %s\n",
                 results[static_cast<std::size_t>(i)].failure.c_str());
    std::string minimized;
    if (!quiet) {
      const FuzzCase min = minimize_fuzz_case(c);
      minimized = describe(min);
      std::fprintf(stderr, "  minimized: %s\n", minimized.c_str());
    }
    if (!artifact_dir.empty()) {
      if (!artifact_dir_ready) {
        std::error_code ec;
        std::filesystem::create_directories(artifact_dir, ec);
        artifact_dir_ready = !ec;
        if (ec) {
          std::fprintf(stderr, "fuzz: cannot create artifact dir %s: %s\n",
                       artifact_dir.c_str(), ec.message().c_str());
        }
      }
      if (artifact_dir_ready) {
        const std::string path = artifact_dir + "/fuzz-fail-" +
                                 std::to_string(seed) + ".txt";
        if (std::FILE* f = std::fopen(path.c_str(), "w")) {
          std::fprintf(f, "reproduce: tcppr_sim --fuzz-seed %llu\n",
                       static_cast<unsigned long long>(seed));
          std::fprintf(f, "config: %s\n", describe(c).c_str());
          std::fprintf(f, "first violation: %s\n",
                       results[static_cast<std::size_t>(i)].failure.c_str());
          if (!minimized.empty()) {
            std::fprintf(f, "minimized: %s\n", minimized.c_str());
          }
          std::fclose(f);
        } else {
          std::fprintf(stderr, "fuzz: cannot write %s\n", path.c_str());
        }
      }
    }
  }
  return failures;
}

}  // namespace tcppr::validate
