// Packet-event tracing, the ns-2 trace-file analogue.
//
// A Tracer fans packet events (enqueue, dequeue, queue drop, loss-model
// drop, delivery, origination) out to any number of sinks. MemoryTrace
// keeps records for programmatic inspection (tests, examples); FileTrace
// writes an ns-2-style text trace. Tracing is off unless a Tracer is
// attached to the Network, and costs one branch per event otherwise.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tcppr::trace {

enum class EventType : std::uint8_t {
  kOriginate,  // handed to the network by an agent
  kEnqueue,    // entered a link queue
  kDequeue,    // began transmission
  kQueueDrop,  // rejected by a full queue
  kLossDrop,   // taken by a loss model / drop filter
  kDeliver,    // handed to the destination agent
};

const char* to_string(EventType type);

struct Record {
  sim::TimePoint time;
  EventType type = EventType::kOriginate;
  net::NodeId from = net::kInvalidNode;  // link endpoint / acting node
  net::NodeId to = net::kInvalidNode;
  std::uint64_t uid = 0;
  net::FlowId flow = net::kInvalidFlow;
  net::SeqNo seq = 0;
  bool is_ack = false;
  std::uint32_t size_bytes = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const Record& record) = 0;
};

class Tracer {
 public:
  void add_sink(TraceSink* sink);
  bool active() const { return !sinks_.empty(); }

  void emit(sim::TimePoint time, EventType type, const net::Packet& pkt,
            net::NodeId from, net::NodeId to);

  // Hands an already-built record to every sink. The parallel engine's
  // barrier merge replays per-shard buffered records through this, in the
  // order the sequential run would have emitted them.
  void dispatch(const Record& record) {
    for (TraceSink* sink : sinks_) sink->record(record);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

// Keeps every record in memory; query helpers for tests and examples.
class MemoryTrace final : public TraceSink {
 public:
  void record(const Record& record) override { records_.push_back(record); }

  const std::vector<Record>& records() const { return records_; }
  std::size_t count(EventType type) const;
  std::size_t count(EventType type, net::FlowId flow) const;
  // Records matching a predicate.
  std::vector<Record> select(
      const std::function<bool(const Record&)>& pred) const;
  void clear() { records_.clear(); }

 private:
  std::vector<Record> records_;
};

// ns-2-style single-line-per-event text trace:
//   <op> <time> <from> <to> <tcp|ack> <bytes> <flow> <seq> <uid>
// where op is one of o + - d l r (originate, enqueue, dequeue, queue drop,
// loss drop, receive).
class FileTrace final : public TraceSink {
 public:
  explicit FileTrace(const std::string& path);
  ~FileTrace() override;

  FileTrace(const FileTrace&) = delete;
  FileTrace& operator=(const FileTrace&) = delete;

  void record(const Record& record) override;
  void flush();
  bool ok() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace tcppr::trace
