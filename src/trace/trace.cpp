#include "trace/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace tcppr::trace {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kOriginate:
      return "originate";
    case EventType::kEnqueue:
      return "enqueue";
    case EventType::kDequeue:
      return "dequeue";
    case EventType::kQueueDrop:
      return "queue-drop";
    case EventType::kLossDrop:
      return "loss-drop";
    case EventType::kDeliver:
      return "deliver";
  }
  return "?";
}

namespace {

char op_char(EventType type) {
  switch (type) {
    case EventType::kOriginate:
      return 'o';
    case EventType::kEnqueue:
      return '+';
    case EventType::kDequeue:
      return '-';
    case EventType::kQueueDrop:
      return 'd';
    case EventType::kLossDrop:
      return 'l';
    case EventType::kDeliver:
      return 'r';
  }
  return '?';
}

}  // namespace

void Tracer::add_sink(TraceSink* sink) {
  TCPPR_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

void Tracer::emit(sim::TimePoint time, EventType type, const net::Packet& pkt,
                  net::NodeId from, net::NodeId to) {
  if (sinks_.empty()) return;
  Record record;
  record.time = time;
  record.type = type;
  record.from = from;
  record.to = to;
  record.uid = pkt.uid;
  record.flow = pkt.tcp.flow;
  record.seq = pkt.is_ack() ? pkt.tcp.ack : pkt.tcp.seq;
  record.is_ack = pkt.is_ack();
  record.size_bytes = pkt.size_bytes;
  for (TraceSink* sink : sinks_) sink->record(record);
}

std::size_t MemoryTrace::count(EventType type) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const Record& r) { return r.type == type; }));
}

std::size_t MemoryTrace::count(EventType type, net::FlowId flow) const {
  return static_cast<std::size_t>(std::count_if(
      records_.begin(), records_.end(), [&](const Record& r) {
        return r.type == type && r.flow == flow;
      }));
}

std::vector<Record> MemoryTrace::select(
    const std::function<bool(const Record&)>& pred) const {
  std::vector<Record> out;
  std::copy_if(records_.begin(), records_.end(), std::back_inserter(out),
               pred);
  return out;
}

FileTrace::FileTrace(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

FileTrace::~FileTrace() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileTrace::record(const Record& record) {
  if (file_ == nullptr) return;
  std::fprintf(file_, "%c %.9f %d %d %s %u %d %lld %llu\n",
               op_char(record.type), record.time.as_seconds(), record.from,
               record.to, record.is_ack ? "ack" : "tcp", record.size_bytes,
               record.flow, static_cast<long long>(record.seq),
               static_cast<unsigned long long>(record.uid));
}

void FileTrace::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace tcppr::trace
