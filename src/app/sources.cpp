#include "app/sources.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace tcppr::app {

PacketSink::PacketSink(net::Network& network, net::NodeId local,
                       net::FlowId flow)
    : network_(network), local_(local), flow_(flow) {
  network_.node(local_).attach_agent(flow_, this);
}

PacketSink::~PacketSink() { network_.node(local_).detach_agent(flow_); }

void PacketSink::deliver(net::Packet&& pkt) {
  ++packets_;
  bytes_ += pkt.size_bytes;
  last_arrival_ = network_.scheduler().now();
}

CbrSource::CbrSource(net::Network& network, net::NodeId local,
                     net::NodeId remote, net::FlowId flow, Config config)
    : network_(network),
      local_(local),
      remote_(remote),
      flow_(flow),
      config_(config),
      rng_(config.seed),
      timer_(network.scheduler()) {
  TCPPR_CHECK(config_.rate_bps > 0);
  TCPPR_CHECK(config_.packet_bytes > 0);
}

sim::Duration CbrSource::interval() const {
  return sim::Duration::seconds(static_cast<double>(config_.packet_bytes) *
                                8.0 / config_.rate_bps);
}

void CbrSource::start() {
  TCPPR_CHECK(!running_);
  running_ = true;
  in_on_period_ = true;
  if (config_.mean_on > sim::Duration::zero()) {
    period_ends_ = network_.scheduler().now() +
                   sim::Duration::seconds(
                       rng_.exponential(config_.mean_on.as_seconds()));
  } else {
    period_ends_ = sim::TimePoint::max();
  }
  emit();
}

void CbrSource::stop() {
  running_ = false;
  timer_.cancel();
}

void CbrSource::emit() {
  if (!running_) return;
  const sim::TimePoint t = network_.scheduler().now();
  if (t >= period_ends_ && config_.mean_on > sim::Duration::zero()) {
    // Toggle on/off period.
    in_on_period_ = !in_on_period_;
    const sim::Duration mean =
        in_on_period_ ? config_.mean_on : config_.mean_off;
    period_ends_ =
        t + sim::Duration::seconds(rng_.exponential(
                std::max(mean.as_seconds(), 1e-9)));
  }
  if (in_on_period_) {
    net::Packet pkt;
    pkt.uid = network_.allocate_uid();
    pkt.dst = remote_;
    pkt.size_bytes = config_.packet_bytes;
    pkt.type = net::PacketType::kCbr;
    pkt.tcp.flow = flow_;
    pkt.sent_at = t;
    network_.node(local_).originate(std::move(pkt));
    ++sent_;
  }
  timer_.schedule_in(interval(), [this] { emit(); });
}

}  // namespace tcppr::app
