// Non-TCP traffic: constant-bit-rate source (optionally on/off) and a
// counting sink. Used as UDP-style cross traffic and in substrate tests.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::app {

class PacketSink final : public net::Agent {
 public:
  PacketSink(net::Network& network, net::NodeId local, net::FlowId flow);
  ~PacketSink() override;

  void deliver(net::Packet&& pkt) override;

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }
  sim::TimePoint last_arrival() const { return last_arrival_; }

 private:
  net::Network& network_;
  net::NodeId local_;
  net::FlowId flow_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  sim::TimePoint last_arrival_;
};

class CbrSource {
 public:
  struct Config {
    double rate_bps = 1e6;
    std::uint32_t packet_bytes = 1000;
    // Exponential on/off periods; zero mean durations = always on.
    sim::Duration mean_on = sim::Duration::zero();
    sim::Duration mean_off = sim::Duration::zero();
    std::uint64_t seed = 1;
  };

  CbrSource(net::Network& network, net::NodeId local, net::NodeId remote,
            net::FlowId flow, Config config);

  void start();
  void stop();
  std::uint64_t packets_sent() const { return sent_; }

 private:
  void emit();
  sim::Duration interval() const;

  net::Network& network_;
  net::NodeId local_;
  net::NodeId remote_;
  net::FlowId flow_;
  Config config_;
  sim::Rng rng_;
  sim::Timer timer_;
  bool running_ = false;
  bool in_on_period_ = true;
  sim::TimePoint period_ends_;
  std::uint64_t sent_ = 0;
};

}  // namespace tcppr::app
