#include "workload/slot_table.hpp"

#include "util/check.hpp"

namespace tcppr::workload {

SlotTable::SlotTable(std::int32_t capacity, std::int64_t quarantine_ns)
    : capacity_(capacity), quarantine_ns_(quarantine_ns) {
  TCPPR_CHECK(capacity_ > 0);
  TCPPR_CHECK(quarantine_ns_ >= 0);
}

std::int32_t SlotTable::allocate(std::int64_t now_ns) {
  // Lazily graduate cooled slots: only the FIFO front can be the coolest,
  // so the loop does O(1) amortized work regardless of the table size.
  while (!cooling_.empty()) {
    const std::uint32_t slot = cooling_.front();
    if (now_ns - freed_at_ns_[slot] < quarantine_ns_) break;
    cooling_.pop_front();
    state_[slot] = kReady;
    ready_.push_back(slot);
  }
  std::int32_t slot = -1;
  if (!ready_.empty()) {
    slot = static_cast<std::int32_t>(ready_.back());
    ready_.pop_back();
  } else if (state_.size() < static_cast<std::size_t>(capacity_)) {
    slot = static_cast<std::int32_t>(state_.size());
    state_.push_back(kReady);
    generation_.push_back(0);
    freed_at_ns_.push_back(0);
  } else {
    return -1;  // exhausted: every slot active or still cooling
  }
  const auto uslot = static_cast<std::uint32_t>(slot);
  state_[uslot] = kActive;
  ++generation_[uslot];
  ++active_count_;
  return slot;
}

void SlotTable::release(std::uint32_t slot, std::int64_t now_ns) {
  TCPPR_DCHECK(slot < state_.size() && state_[slot] == kActive);
  state_[slot] = kCooling;
  freed_at_ns_[slot] = now_ns;
  cooling_.push_back(slot);
  TCPPR_DCHECK(active_count_ > 0);
  --active_count_;
}

std::size_t SlotTable::slab_bytes() const {
  return state_.capacity() * sizeof(std::uint8_t) +
         generation_.capacity() * sizeof(std::uint32_t) +
         freed_at_ns_.capacity() * sizeof(std::int64_t) +
         cooling_.size() * sizeof(std::uint32_t) +
         ready_.capacity() * sizeof(std::uint32_t);
}

}  // namespace tcppr::workload
