// Flow lifecycle engine: dynamic arrivals and genuine departures.
//
// Every scenario before this layer built its flows before t=0 and kept
// them alive forever. The WorkloadEngine instead runs an arrival process
// (Poisson, a heavy-tailed web mice/elephants mix, or a fixed population
// of on/off sources with log-normal think times) that creates a sender at
// arrival time and *tears the flow down* when the transfer completes:
// the sender detaches from its node and dies, a kTcpClose packet tells the
// receiver side to reclaim its state, the flow-id slot enters a 2MSL-style
// quarantine and is recycled for a later arrival, and any per-flow
// observability entries are retired from the MetricRegistry.
//
// Determinism: every random draw happens inside events owned by the source
// host's node (the arrival timer and per-source restart events), and each
// flow's characteristics come from an Rng forked on the flow's monotone
// arrival index — never on the recycled flow id. Under the stamped
// parallel engine all of the engine's scheduling goes through the
// *_for(entity) API, so a churning run is byte-identical across
// --par {1,2,4} and the batched/unbatched hot paths.
//
// Receiver side: senders are created on the source host's LP, so the
// engine cannot construct the Receiver (it lives on another LP's node).
// Instead a FlowServer is installed as the destination node's default
// agent; the first data segment of an unknown flow — which executes on the
// destination LP — creates the Receiver on the spot. kTcpClose (or an
// idle-lease reaper, for closes lost to queue drops) reclaims it.
//
// Per-flow engine state lives in struct-of-arrays slabs with an asserted
// byte budget (kSlabBytesPerSlot below; the live transport objects
// themselves are transport state, not bookkeeping, and are counted
// separately) so the slot table scales to ~1M flow ids.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "harness/scenarios.hpp"
#include "stats/reorder.hpp"
#include "workload/slot_table.hpp"

namespace tcppr::harness {
class ParallelSim;
}

namespace tcppr::telemetry {
class Telemetry;
}

namespace tcppr::workload {

enum class WorkloadKind { kPoisson, kWeb, kOnOff };

const char* to_string(WorkloadKind kind);
// Parses "poisson" / "web" / "onoff"; false on anything else.
bool parse_workload_kind(std::string_view name, WorkloadKind* out);

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kPoisson;
  // Poisson/web: mean flow arrivals per second. On/off: ignored (the
  // population and think times set the offered load).
  double arrival_rate = 100.0;

  // Pareto flow sizes in segments, truncated to [min, max].
  double pareto_shape = 1.3;
  net::SeqNo min_segments = 2;
  net::SeqNo max_segments = 4096;

  // Web mix: arrivals are mice (log-uniform RPC-sized transfers) except
  // for an elephant_fraction of Pareto-sized bulk transfers.
  double elephant_fraction = 0.05;
  net::SeqNo mouse_min_segments = 2;
  net::SeqNo mouse_max_segments = 16;

  // On/off sources: each member of a fixed population alternates one
  // transfer (Pareto size) with a log-normal think time
  // exp(think_mu + think_sigma * N(0,1)) seconds.
  int onoff_sources = 32;
  double think_mu = -0.7;
  double think_sigma = 1.0;

  // Per-arrival variant mix: TCP-PR with probability pr_fraction, SACK
  // otherwise (the paper's competition pairing).
  double pr_fraction = 0.5;

  // Flow-id slot table. Flow ids are first_flow_id + slot; a slot freed at
  // teardown is quarantined for `quarantine` before reuse so stale
  // in-flight packets of the dead incarnation cannot alias the new flow's
  // sequence space (the 2MSL problem).
  int max_concurrent = 4096;
  int id_slots = 8192;
  net::FlowId first_flow_id = 1 << 20;
  sim::Duration quarantine = sim::Duration::seconds(2);

  // Receiver-side idle lease: a receiver whose kTcpClose was lost (queue
  // drop) is reaped after reap_idle without traffic. The reaper is a
  // clock-hand sweep that visits a bounded chunk of the slot table every
  // reap_sweep, completing a full pass within reap_idle/2 — so a reap
  // happens at most 1.5 * reap_idle + reap_sweep after the last packet,
  // and no single event scans the whole table at 2^20 slots. Keep that
  // worst case below quarantine or a recycled slot could find the old
  // incarnation's receiver still attached.
  sim::Duration reap_idle = sim::Duration::seconds(1);
  sim::Duration reap_sweep = sim::Duration::millis(250);

  tcp::TcpConfig tcp;
  core::TcpPrConfig pr;
  std::uint64_t seed = 1;
};

// The million-flow preset (ISSUE 9 / ROADMAP top-end row): a fixed on/off
// population of `concurrent` sources — each holding a long Pareto transfer
// with a ~1 s log-normal think between transfers — so steady-state
// concurrency pins at the population size while the mice in the Pareto
// tail still complete, recycle their id slots through the quarantine FIFO
// and restart. Pair with harness::million_fan_config(concurrent) so the
// per-flow bandwidth share keeps each flow near cwnd 1-2.
WorkloadConfig million_workload_config(int concurrent);

struct WorkloadStats {
  std::uint64_t arrivals = 0;   // senders created
  std::uint64_t completed = 0;  // transfers fully acknowledged + torn down
  std::uint64_t rejected = 0;   // arrivals dropped: capacity or no cool slot
  std::uint64_t receivers_created = 0;
  std::uint64_t receivers_closed = 0;  // reclaimed via kTcpClose
  std::uint64_t receivers_reaped = 0;  // reclaimed by the idle lease
  // Receivers re-created mid-stream at a reaped incarnation's high-water
  // mark (sender retried after its receiver was idle-reaped).
  std::uint64_t receivers_resumed = 0;
  std::uint64_t stray_packets = 0;     // data for out-of-range flow ids
  std::size_t active = 0;              // live senders now
  std::size_t peak_active = 0;
  double sum_completion_s = 0;  // over completed flows
  double mean_completion_s() const {
    return completed == 0 ? 0.0
                          : sum_completion_s / static_cast<double>(completed);
  }
};

// Receiver-side demultiplexer: the destination node's default agent.
// Creates a Receiver (plus a pooled ReorderMonitor tap) for the first data
// segment of an unknown workload flow, reclaims it on kTcpClose or idle
// lease, and folds departed flows' reorder stats into one aggregate
// monitor — constant-memory reordering telemetry at churn scale.
class FlowServer final : public net::Agent {
 public:
  FlowServer(net::Network& network, net::NodeId local, net::NodeId remote,
             const WorkloadConfig& config);
  ~FlowServer() override;

  FlowServer(const FlowServer&) = delete;
  FlowServer& operator=(const FlowServer&) = delete;

  // Re-points the server's scheduling (reap timer, deferred closes) at the
  // LP shard owning the destination node; parallel mode only, before the
  // run starts. Sequential runs stay on the network's scheduler.
  void bind_shard(sim::Scheduler& shard);
  void set_metric_registry(obs::MetricRegistry* registry) {
    registry_ = registry;
  }
  // Link-tap telemetry retirement: close_slot reports the departed flow so
  // every tap folds its slot/exact entry (idempotent — the engine's sender
  // teardown reports the same departure). Sequential mode only, like the
  // metric registry above.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }
  void start();
  void stop();

  void deliver(net::Packet&& pkt) override;
  void deliver_batch(net::PacketBatch& batch, std::size_t begin,
                     std::size_t end) override;

  std::uint64_t receivers_created() const { return created_; }
  std::uint64_t receivers_closed() const { return closed_; }
  std::uint64_t receivers_reaped() const { return reaped_; }
  std::uint64_t receivers_resumed() const { return resumed_; }
  std::uint64_t stray_packets() const { return stray_; }
  std::size_t live_receivers() const { return live_; }
  // Folded reorder stats of departed flows plus the live flows' monitors.
  void fold_reorder_stats(stats::ReorderMonitor& into) const;
  // Receiver-side slab bytes (per-slot arrays; excludes live Receiver /
  // monitor objects, which scale with concurrency, not slot space).
  std::size_t slab_bytes() const;
  static constexpr std::size_t kSlabBytesPerSlot =
      sizeof(std::unique_ptr<tcp::Receiver>) +
      sizeof(std::unique_ptr<stats::ReorderMonitor>) +
      sizeof(std::int64_t) + sizeof(std::uint32_t);

 private:
  void open_slot(std::uint32_t slot, net::SeqNo first_seq);
  void close_slot(std::uint32_t slot, bool reaped);
  void schedule_close(std::uint32_t slot);
  void reap_sweep();
  // Slots visited per sweep: the clock hand completes a full pass within
  // reap_idle/2, so per-sweep work is bounded by the table size divided by
  // the sweeps in half a lease (and a reap happens at most
  // 1.5 * reap_idle + reap_sweep after the last packet).
  std::size_t reap_chunk() const;
  void touch(std::uint32_t slot);
  // Slot for a workload flow id, or -1 when the packet is not ours.
  std::int32_t slot_of(net::FlowId flow) const;

  net::Network& network_;
  net::NodeId local_;
  net::NodeId remote_;
  const WorkloadConfig& config_;
  sim::Scheduler* sched_;  // dst shard in parallel mode
  // Liveness sentinel for deferred close events (same pattern as
  // harness::ShortFlowPool): a server destroyed with closes pending must
  // not be fired into.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  sim::Timer reap_timer_;
  bool running_ = false;
  std::size_t reap_cursor_ = 0;  // clock hand over the slot arrays

  // Struct-of-arrays receiver slab, indexed by flow-id slot; grows to the
  // high-water slot index actually delivered to.
  std::vector<std::unique_ptr<tcp::Receiver>> rx_;
  std::vector<std::unique_ptr<stats::ReorderMonitor>> mon_;
  std::vector<std::int64_t> last_activity_ns_;
  // rcv_next high-water mark of an idle-reaped receiver, kept so a later
  // mid-stream segment from the same still-retrying sender resumes there
  // (quarantine guarantees the flow id was not reused in between). Cleared
  // when a flow starts over at sequence zero or departs via kTcpClose.
  std::vector<std::uint32_t> resume_next_;

  // Reset monitors waiting for the next flow (bounded by peak concurrency).
  std::vector<std::unique_ptr<stats::ReorderMonitor>> mon_pool_;
  stats::ReorderMonitor departed_agg_;

  obs::MetricRegistry* registry_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::uint64_t created_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t reaped_ = 0;
  std::uint64_t resumed_ = 0;
  std::uint64_t stray_ = 0;
  std::size_t live_ = 0;
};

class WorkloadEngine {
 public:
  // `scenario` must be fully built (topology + routes + src/dst hosts).
  // In parallel mode pass the ParallelSim — the engine is created after it
  // (like the fuzzer's LinkFlapper) and schedules directly on the shards
  // owning the source and destination hosts. The engine borrows both and
  // must be destroyed before them.
  WorkloadEngine(harness::Scenario& scenario, WorkloadConfig config,
                 harness::ParallelSim* psim = nullptr);
  ~WorkloadEngine();

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  // Observability, sequential mode only (parallel mode does not support
  // obs probes): per-flow probes attach to every dynamic sender/receiver,
  // and teardown retires the flow's registry entries. Pair with
  // registry.set_aggregate_only(true) at churn scale.
  void set_metric_registry(obs::MetricRegistry& registry);
  // Link-tap telemetry retirement on flow teardown (sequential mode only;
  // in parallel mode taps belong to shard threads and departed flows are
  // displaced by slot-tenure pressure instead).
  void set_telemetry(telemetry::Telemetry* telemetry);

  void start();
  // Stops new arrivals; in-flight flows keep draining until destruction.
  void stop();

  WorkloadStats stats() const;
  std::size_t live_receivers() const { return server_->live_receivers(); }
  // Aggregate reordering telemetry over departed + live flows.
  stats::ReorderMonitor reorder_stats() const;

  // Engine + server slab bytes currently reserved (capacity, not size —
  // what the process actually holds), and the asserted per-slot budget.
  std::size_t slab_bytes() const;
  std::size_t slots_in_use() const { return slots_.size(); }
  static constexpr std::size_t kSlabBytesPerSlot =
      sizeof(std::uint8_t) + sizeof(std::int64_t) + sizeof(std::int32_t) +
      sizeof(std::unique_ptr<tcp::SenderBase>);
  static_assert(kSlabBytesPerSlot + SlotTable::kSlabBytesPerSlot +
                        FlowServer::kSlabBytesPerSlot <=
                    64,
                "per-flow slab budget: engine + slot-table + receiver-side "
                "bookkeeping must fit 64 bytes per flow-id slot");

 private:
  void schedule_next_arrival();
  void schedule_source_restart(int source);
  void spawn_flow(int source);  // -1: Poisson/web arrival
  void on_complete(std::uint32_t slot, std::uint32_t gen);
  void teardown(std::uint32_t slot, std::uint32_t gen);
  void send_close(net::FlowId flow);
  net::SeqNo sample_size(sim::Rng& rng) const;

  harness::Scenario& scenario_;
  WorkloadConfig config_;
  sim::Scheduler* src_sched_;
  sim::Scheduler* dst_sched_;
  bool parallel_ = false;
  net::NodeId src_;
  net::NodeId dst_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);

  sim::Rng rng_;          // per-flow fork source, keyed by arrival index
  sim::Rng arrival_rng_;  // interarrival / think-time draws
  sim::Timer arrival_timer_;
  std::vector<sim::EventId> source_restarts_;  // on/off, per source
  bool running_ = false;
  std::uint64_t arrival_seq_ = 0;  // monotone; never recycled

  // O(1) slot lifecycle (quarantine FIFO, generations) — see
  // slot_table.hpp — plus lockstep struct-of-arrays flow slabs indexed by
  // slot, grown lazily to the high-water slot count, capped at
  // config.id_slots.
  SlotTable slots_;
  std::vector<std::uint8_t> variant_;
  std::vector<std::int64_t> started_ns_;
  std::vector<std::int32_t> source_;  // on/off source index, -1 otherwise
  std::vector<std::unique_ptr<tcp::SenderBase>> sender_;

  std::unique_ptr<FlowServer> server_;
  obs::MetricRegistry* registry_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
  WorkloadStats stats_;
};

}  // namespace tcppr::workload
