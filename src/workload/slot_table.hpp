// Flow-id slot table with 2MSL-style quarantine, extracted from the
// WorkloadEngine so the id-space machinery is provable at million-slot
// scale without building a million transport objects around it.
//
// A slot is the offset of a flow id inside the engine's contiguous id
// range. Its lifecycle is
//
//     fresh --allocate--> active --release--> cooling --(quarantine
//     elapsed, observed lazily at allocate time)--> ready --allocate-->
//     active ...
//
// and every transition is O(1): cooling slots sit in a FIFO deque ordered
// by release time (front = coolest), so only the front ever needs its
// cool-down checked, and ready slots are a LIFO vector. Nothing here scans
// the table — at id_slots = 2^20 the table costs exactly as much per
// operation as at 2^10. Each slot additionally carries a monotonically
// increasing generation, bumped on every allocation, so events captured
// against a dead incarnation (a completion callback, a deferred teardown)
// can be recognized as stale after the slot was recycled.
//
// Per-slot storage is struct-of-arrays and asserted against a byte budget
// (kSlabBytesPerSlot); the table grows lazily to the high-water slot count
// and never shrinks.
#pragma once

#include <cstdint>
#include <cstddef>
#include <deque>
#include <vector>

namespace tcppr::workload {

class SlotTable {
 public:
  // `capacity` is the id-space size (max slots ever); `quarantine_ns` the
  // cool-down between release and reuse.
  SlotTable(std::int32_t capacity, std::int64_t quarantine_ns);

  // Pops a cooled or fresh slot, marks it active, and bumps its
  // generation; -1 when every slot is active or still cooling. O(1)
  // amortized (the cooling FIFO pops at most as many entries as were
  // pushed).
  std::int32_t allocate(std::int64_t now_ns);

  // Returns an active slot to the quarantine FIFO. The generation is NOT
  // bumped here — the dead incarnation keeps its number so in-flight
  // events for it stay distinguishable from the next occupant's.
  void release(std::uint32_t slot, std::int64_t now_ns);

  // Current generation of `slot`. A (slot, generation) pair captured at
  // spawn time identifies one incarnation; compare before acting on a
  // deferred event.
  std::uint32_t generation(std::uint32_t slot) const {
    return generation_[slot];
  }
  bool active(std::uint32_t slot) const { return state_[slot] == kActive; }

  // High-water slot count actually materialized (<= capacity).
  std::size_t size() const { return state_.size(); }
  std::int32_t capacity() const { return capacity_; }
  std::size_t active_count() const { return active_count_; }
  std::size_t cooling_count() const { return cooling_.size(); }
  std::size_t ready_count() const { return ready_.size(); }

  // Bytes currently reserved by the per-slot arrays plus the recycling
  // queues (capacity, not size — what the process actually holds).
  std::size_t slab_bytes() const;

  // Per-slot budget over the struct-of-arrays members. The recycling
  // queues hold each non-active slot in exactly one of cooling_/ready_,
  // so one 4-byte entry rides on top of the arrays.
  static constexpr std::size_t kSlabBytesPerSlot =
      sizeof(std::uint8_t) +    // state_
      sizeof(std::uint32_t) +   // generation_
      sizeof(std::int64_t);     // freed_at_ns_

 private:
  enum SlotState : std::uint8_t { kActive = 1, kCooling = 2, kReady = 3 };

  const std::int32_t capacity_;
  const std::int64_t quarantine_ns_;
  std::size_t active_count_ = 0;

  // Struct-of-arrays, indexed by slot, grown lazily to the high-water
  // count.
  std::vector<std::uint8_t> state_;
  std::vector<std::uint32_t> generation_;
  std::vector<std::int64_t> freed_at_ns_;

  // Released slots in FIFO quarantine order (front = coolest); slots whose
  // cool-down elapsed move to ready_ at allocation time.
  std::deque<std::uint32_t> cooling_;
  std::vector<std::uint32_t> ready_;
};

}  // namespace tcppr::workload
