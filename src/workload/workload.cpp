#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "harness/parallel_run.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace tcppr::workload {

const char* to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kPoisson:
      return "poisson";
    case WorkloadKind::kWeb:
      return "web";
    case WorkloadKind::kOnOff:
      return "onoff";
  }
  return "?";
}

bool parse_workload_kind(std::string_view name, WorkloadKind* out) {
  if (name == "poisson") {
    *out = WorkloadKind::kPoisson;
  } else if (name == "web") {
    *out = WorkloadKind::kWeb;
  } else if (name == "onoff") {
    *out = WorkloadKind::kOnOff;
  } else {
    return false;
  }
  return true;
}

WorkloadConfig million_workload_config(int concurrent) {
  WorkloadConfig wc;
  wc.kind = WorkloadKind::kOnOff;
  // Population slightly above the concurrency cap: with ~1 s thinks
  // between ~20 s transfers each source is busy ~95% of the time, so the
  // extra 1/16 keeps the cap saturated — active pins at max_concurrent
  // instead of hovering just below the population size.
  wc.onoff_sources = concurrent + concurrent / 16;
  wc.max_concurrent = concurrent;
  // Slot head-room for the quarantine FIFO: at steady state roughly
  // quarantine / (transfer + think) of the population is cooling
  // (~5 s / ~20 s), so 1.5x the cap leaves every arrival a cool slot.
  wc.id_slots = concurrent + concurrent / 2;
  wc.think_mu = 0.0;  // log-normal think, median 1 s
  wc.think_sigma = 0.5;
  // Heavy-tailed transfer sizes whose mice (2-3 segments, a few RTTs)
  // still complete inside a nightly window while the mean (~22 segments,
  // ~20 s at a 1-2 packet/RTT share) keeps the population busy.
  wc.min_segments = 2;
  wc.max_segments = 4096;
  wc.pareto_shape = 1.1;
  // Idle lease generous enough to survive an RTO at a ~0.9 s RTT; the
  // quarantine stays above the 1.5 * reap_idle + reap_sweep worst-case
  // reap so a recycled slot never meets its predecessor's receiver.
  wc.reap_idle = sim::Duration::seconds(3);
  wc.reap_sweep = sim::Duration::millis(250);
  wc.quarantine = sim::Duration::seconds(5);
  return wc;
}

// ---------------------------------------------------------------------------
// FlowServer

FlowServer::FlowServer(net::Network& network, net::NodeId local,
                       net::NodeId remote, const WorkloadConfig& config)
    : network_(network),
      local_(local),
      remote_(remote),
      config_(config),
      sched_(&network.scheduler()),
      reap_timer_(network.scheduler()) {
  reap_timer_.set_stamp_entity(static_cast<std::uint32_t>(local_));
  network_.node(local_).set_default_agent(this);
}

FlowServer::~FlowServer() {
  stop();
  // Receivers detach themselves from the node; the default-agent hook must
  // not outlive the server.
  network_.node(local_).set_default_agent(nullptr);
}

void FlowServer::bind_shard(sim::Scheduler& shard) {
  sched_ = &shard;
  reap_timer_.rebind(shard);
  reap_timer_.set_stamp_entity(static_cast<std::uint32_t>(local_));
}

void FlowServer::start() {
  TCPPR_CHECK(!running_);
  running_ = true;
  reap_timer_.schedule_in(config_.reap_sweep, [this] { reap_sweep(); });
}

void FlowServer::stop() {
  running_ = false;
  reap_timer_.cancel();
}

std::int32_t FlowServer::slot_of(net::FlowId flow) const {
  const net::FlowId rel = flow - config_.first_flow_id;
  if (rel < 0 || rel >= config_.id_slots) return -1;
  return static_cast<std::int32_t>(rel);
}

void FlowServer::touch(std::uint32_t slot) {
  last_activity_ns_[slot] = sched_->now().as_nanos();
}

void FlowServer::open_slot(std::uint32_t slot, net::SeqNo first_seq) {
  if (rx_.size() <= slot) {
    rx_.resize(slot + 1);
    mon_.resize(slot + 1);
    last_activity_ns_.resize(slot + 1, 0);
    resume_next_.resize(slot + 1, 0);
  }
  const net::FlowId flow = config_.first_flow_id + static_cast<int>(slot);
  tcp::ReceiverConfig rc;
  rc.segment_bytes = config_.tcp.segment_bytes;
  rc.ack_bytes = config_.tcp.ack_bytes;
  auto rx = std::make_unique<tcp::Receiver>(network_, local_, remote_, flow,
                                            rc);
  if (sched_ != &network_.scheduler()) rx->rebind_scheduler(*sched_);
  if (first_seq == 0) {
    // A flow starting over at sequence zero is a fresh incarnation (or the
    // same sender retrying from the very beginning); either way the old
    // high-water mark must not leak into it.
    resume_next_[slot] = 0;
  } else if (resume_next_[slot] > 0) {
    // Mid-stream segment for a slot whose receiver was idle-reaped: the
    // quarantine guarantees the flow id was not recycled, so this is the
    // same transfer still in flight. Resume at the reaped incarnation's
    // cumulative-ACK point — a fresh receiver at zero would stale-ACK the
    // sender's retransmissions forever (ghost-receiver deadlock).
    rx->resume_at(static_cast<net::SeqNo>(resume_next_[slot]));
    ++resumed_;
  }
  // Monitor recycling is where ReorderMonitor::reset() earns its keep: a
  // pooled monitor that still carried the previous flow's max_seen_ /
  // next_expected_ would count every early segment of this flow as a
  // giant reordering.
  if (!mon_pool_.empty()) {
    mon_[slot] = std::move(mon_pool_.back());
    mon_pool_.pop_back();
  } else {
    mon_[slot] = std::make_unique<stats::ReorderMonitor>();
  }
  // The tap renews the idle lease: once the receiver registers itself as
  // the flow's agent, packets no longer pass through the server's deliver
  // path, so without this every receiver would look idle from the moment
  // it was created and the reaper would collect it mid-flow.
  rx->set_data_tap([this, slot, m = mon_[slot].get()](
                       const net::Packet& pkt) {
    m->on_arrival(pkt.tcp.seq);
    touch(slot);
  });
  rx->set_close_callback([this, slot] { schedule_close(slot); });
  if (registry_ != nullptr) rx->set_metric_registry(*registry_);
  rx_[slot] = std::move(rx);
  ++created_;
  ++live_;
  touch(slot);
}

void FlowServer::schedule_close(std::uint32_t slot) {
  // Runs inside the receiver's own deliver(); defer the destruction.
  sched_->schedule_in_for(
      sim::Duration::zero(), static_cast<std::uint32_t>(local_),
      [this, slot, alive = std::weak_ptr<int>(alive_)] {
        if (alive.expired()) return;
        if (slot < rx_.size() && rx_[slot] != nullptr) {
          close_slot(slot, /*reaped=*/false);
        }
      });
}

void FlowServer::close_slot(std::uint32_t slot, bool reaped) {
  TCPPR_DCHECK(rx_[slot] != nullptr);
  const net::FlowId flow = config_.first_flow_id + static_cast<int>(slot);
  // An idle-reaped flow may still have a live, retrying sender: remember
  // the cumulative-ACK point so a later retransmission resumes there. A
  // kTcpClose departure is final — clear the mark for the next incarnation.
  resume_next_[slot] =
      reaped ? static_cast<std::uint32_t>(rx_[slot]->rcv_next()) : 0;
  rx_[slot].reset();  // detaches from the node's agent table
  mon_[slot]->merge_into(departed_agg_);
  mon_[slot]->reset();
  mon_pool_.push_back(std::move(mon_[slot]));
  if (registry_ != nullptr) registry_->retire_flow(flow);
  if (telemetry_ != nullptr) telemetry_->retire_flow(flow);
  --live_;
  if (reaped) {
    ++reaped_;
  } else {
    ++closed_;
  }
}

std::size_t FlowServer::reap_chunk() const {
  // Full pass within reap_idle/2: with sweeps_per_cycle sweeps in half a
  // lease, visiting ceil(size / sweeps_per_cycle) slots per sweep bounds
  // the lag between "lease expired" and "clock hand arrives" by
  // reap_idle/2 + reap_sweep, keeping the worst-case reap at
  // 1.5 * reap_idle + reap_sweep after the last packet.
  const std::int64_t half_lease = config_.reap_idle.as_nanos() / 2;
  const std::int64_t sweep = std::max<std::int64_t>(
      config_.reap_sweep.as_nanos(), 1);
  const auto sweeps_per_cycle =
      static_cast<std::size_t>(std::max<std::int64_t>(half_lease / sweep, 1));
  return (rx_.size() + sweeps_per_cycle - 1) / sweeps_per_cycle;
}

void FlowServer::reap_sweep() {
  const std::int64_t now_ns = sched_->now().as_nanos();
  const std::int64_t lease_ns = config_.reap_idle.as_nanos();
  // Clock-hand sweep: visit a bounded chunk, wrapping at the high-water
  // slot count, so no single event scans the whole table at 2^20 slots.
  std::size_t budget = reap_chunk();
  while (budget > 0 && !rx_.empty()) {
    if (reap_cursor_ >= rx_.size()) reap_cursor_ = 0;
    const auto slot = static_cast<std::uint32_t>(reap_cursor_++);
    --budget;
    if (rx_[slot] == nullptr) continue;
    if (now_ns - last_activity_ns_[slot] >= lease_ns) {
      close_slot(slot, /*reaped=*/true);
    }
  }
  if (running_) {
    reap_timer_.schedule_in(config_.reap_sweep, [this] { reap_sweep(); });
  }
}

void FlowServer::deliver(net::Packet&& pkt) {
  const std::int32_t slot = slot_of(pkt.tcp.flow);
  if (slot < 0) {
    // Not a workload flow (e.g. a static flow torn down by its own test).
    ++stray_;
    return;
  }
  const auto uslot = static_cast<std::uint32_t>(slot);
  if (uslot >= rx_.size() || rx_[uslot] == nullptr) {
    // First segment of a new flow creates its receiver; anything else for
    // a closed slot (stale duplicate of a departed incarnation, a close
    // that raced the reaper) is dropped. A ghost receiver born from a
    // stale duplicate is harmless: it ACKs into the void and the idle
    // lease reclaims it.
    if (pkt.type != net::PacketType::kTcpData) return;
    open_slot(uslot, pkt.tcp.seq);
  } else {
    touch(uslot);
  }
  rx_[uslot]->deliver(std::move(pkt));
}

void FlowServer::deliver_batch(net::PacketBatch& batch, std::size_t begin,
                               std::size_t end) {
  // The node groups a run by flow, so one lookup covers the run; the
  // receiver's own batched path then folds the ACK train.
  const std::int32_t slot = slot_of(batch[begin].tcp.flow);
  if (slot < 0) {
    stray_ += end - begin;
    return;
  }
  const auto uslot = static_cast<std::uint32_t>(slot);
  if (uslot >= rx_.size() || rx_[uslot] == nullptr) {
    if (batch[begin].type != net::PacketType::kTcpData) {
      // Skip leading non-data (stale close/ACK); re-enter per-packet so a
      // data segment later in the run still opens the slot.
      for (std::size_t i = begin; i < end; ++i) deliver(std::move(batch[i]));
      return;
    }
    open_slot(uslot, batch[begin].tcp.seq);
  } else {
    touch(uslot);
  }
  rx_[uslot]->deliver_batch(batch, begin, end);
}

void FlowServer::fold_reorder_stats(stats::ReorderMonitor& into) const {
  departed_agg_.merge_into(into);
  for (const auto& m : mon_) {
    if (m != nullptr) m->merge_into(into);
  }
}

std::size_t FlowServer::slab_bytes() const {
  return rx_.capacity() * sizeof(rx_[0]) + mon_.capacity() * sizeof(mon_[0]) +
         last_activity_ns_.capacity() * sizeof(std::int64_t) +
         resume_next_.capacity() * sizeof(std::uint32_t);
}

// ---------------------------------------------------------------------------
// WorkloadEngine

WorkloadEngine::WorkloadEngine(harness::Scenario& scenario,
                               WorkloadConfig config,
                               harness::ParallelSim* psim)
    : scenario_(scenario),
      config_(config),
      src_sched_(&scenario.sched),
      dst_sched_(&scenario.sched),
      parallel_(psim != nullptr),
      src_(scenario.src_host),
      dst_(scenario.dst_host),
      rng_(sim::Rng(config.seed).fork(0xF10Au)),
      arrival_rng_(sim::Rng(config.seed).fork(0xA221u)),
      arrival_timer_(scenario.sched),
      slots_(config.id_slots, config.quarantine.as_nanos()) {
  TCPPR_CHECK(src_ != net::kInvalidNode && dst_ != net::kInvalidNode);
  TCPPR_CHECK(config_.id_slots > 0);
  TCPPR_CHECK(config_.max_concurrent > 0);
  TCPPR_CHECK(config_.min_segments >= 1);
  TCPPR_CHECK(config_.max_segments >= config_.min_segments);
  server_ = std::make_unique<FlowServer>(scenario.network, dst_, src_,
                                         config_);
  if (psim != nullptr) {
    src_sched_ = &psim->shard_for(src_);
    dst_sched_ = &psim->shard_for(dst_);
    arrival_timer_.rebind(*src_sched_);
    server_->bind_shard(*dst_sched_);
  }
  arrival_timer_.set_stamp_entity(static_cast<std::uint32_t>(src_));
}

WorkloadEngine::~WorkloadEngine() { stop(); }

void WorkloadEngine::set_metric_registry(obs::MetricRegistry& registry) {
  // Parallel mode buffers no obs samples (same restriction as scenario
  // probes); catching the misuse here beats silently divergent metrics.
  TCPPR_CHECK(!parallel_);
  registry_ = &registry;
  server_->set_metric_registry(&registry);
}

void WorkloadEngine::set_telemetry(telemetry::Telemetry* telemetry) {
  // Same restriction as the registry: parallel mode taps belong to shard
  // threads and must not see live retirements from the build thread.
  TCPPR_CHECK(telemetry == nullptr || !parallel_);
  telemetry_ = telemetry;
  server_->set_telemetry(telemetry);
}

void WorkloadEngine::start() {
  TCPPR_CHECK(!running_);
  running_ = true;
  server_->start();
  if (config_.kind == WorkloadKind::kOnOff) {
    TCPPR_CHECK(config_.onoff_sources > 0);
    source_restarts_.assign(static_cast<std::size_t>(config_.onoff_sources),
                            sim::EventId{});
    for (int s = 0; s < config_.onoff_sources; ++s) {
      schedule_source_restart(s);
    }
    return;
  }
  TCPPR_CHECK(config_.arrival_rate > 0);
  schedule_next_arrival();
}

void WorkloadEngine::stop() {
  running_ = false;
  arrival_timer_.cancel();
  for (sim::EventId& id : source_restarts_) {
    if (id.valid()) {
      src_sched_->cancel(id);
      id = sim::EventId{};
    }
  }
  if (server_ != nullptr) server_->stop();
}

void WorkloadEngine::schedule_next_arrival() {
  arrival_timer_.schedule_in(
      sim::Duration::seconds(
          arrival_rng_.exponential(1.0 / config_.arrival_rate)),
      [this] {
        if (!running_) return;
        spawn_flow(/*source=*/-1);
        schedule_next_arrival();
      });
}

void WorkloadEngine::schedule_source_restart(int source) {
  const double think =
      arrival_rng_.lognormal(config_.think_mu, config_.think_sigma);
  source_restarts_[static_cast<std::size_t>(source)] =
      src_sched_->schedule_in_for(
          sim::Duration::seconds(think), static_cast<std::uint32_t>(src_),
          [this, source, alive = std::weak_ptr<int>(alive_)] {
            if (alive.expired() || !running_) return;
            source_restarts_[static_cast<std::size_t>(source)] =
                sim::EventId{};
            spawn_flow(source);
          });
}

net::SeqNo WorkloadEngine::sample_size(sim::Rng& rng) const {
  if (config_.kind == WorkloadKind::kWeb &&
      !rng.bernoulli(config_.elephant_fraction)) {
    // Mouse: log-uniform RPC-sized transfer.
    const double lo = std::log(static_cast<double>(config_.mouse_min_segments));
    const double hi =
        std::log(static_cast<double>(config_.mouse_max_segments) + 1.0);
    return std::clamp<net::SeqNo>(
        static_cast<net::SeqNo>(std::exp(rng.uniform(lo, hi))),
        config_.mouse_min_segments, config_.mouse_max_segments);
  }
  const double raw = rng.pareto(config_.pareto_shape,
                                static_cast<double>(config_.min_segments));
  return std::clamp<net::SeqNo>(static_cast<net::SeqNo>(raw),
                                config_.min_segments, config_.max_segments);
}

void WorkloadEngine::spawn_flow(int source) {
  if (stats_.active >= static_cast<std::size_t>(config_.max_concurrent)) {
    ++stats_.rejected;
    if (source >= 0) schedule_source_restart(source);
    return;
  }
  const std::int32_t sslot = slots_.allocate(src_sched_->now().as_nanos());
  if (sslot < 0) {
    ++stats_.rejected;
    if (source >= 0) schedule_source_restart(source);
    return;
  }
  const auto slot = static_cast<std::uint32_t>(sslot);
  if (variant_.size() <= slot) {
    // Lockstep slabs grow with the table's high-water count.
    variant_.resize(slot + 1, 0);
    started_ns_.resize(slot + 1, 0);
    source_.resize(slot + 1, -1);
    sender_.resize(slot + 1);
  }

  // Flow characteristics fork off the monotone arrival index: recycling a
  // slot never replays or perturbs another flow's draws.
  sim::Rng frng = rng_.fork(++arrival_seq_);
  const harness::TcpVariant variant = frng.bernoulli(config_.pr_fraction)
                                          ? harness::TcpVariant::kTcpPr
                                          : harness::TcpVariant::kSack;
  const net::SeqNo segments = sample_size(frng);

  const net::FlowId flow = config_.first_flow_id + static_cast<int>(slot);
  auto sender = harness::make_sender(variant, scenario_.network, src_, dst_,
                                     flow, config_.tcp, config_.pr);
  if (parallel_) sender->rebind_scheduler(*src_sched_);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(segments));
  // allocate() already bumped the generation for this incarnation.
  const std::uint32_t gen = slots_.generation(slot);
  sender->set_completion_callback(
      [this, slot, gen] { on_complete(slot, gen); });
  if (registry_ != nullptr) sender->set_metric_registry(*registry_);

  variant_[slot] = static_cast<std::uint8_t>(variant);
  started_ns_[slot] = src_sched_->now().as_nanos();
  source_[slot] = source;
  sender_[slot] = std::move(sender);
  sender_[slot]->start();
  ++stats_.arrivals;
  ++stats_.active;
  stats_.peak_active = std::max(stats_.peak_active, stats_.active);
}

void WorkloadEngine::on_complete(std::uint32_t slot, std::uint32_t gen) {
  // Runs inside the sender's own ACK processing; defer the teardown one
  // zero-delay event (the ShortFlowPool pattern, sentinel-guarded so an
  // engine destroyed in the window is safe).
  src_sched_->schedule_in_for(
      sim::Duration::zero(), static_cast<std::uint32_t>(src_),
      [this, slot, gen, alive = std::weak_ptr<int>(alive_)] {
        if (alive.expired()) return;
        teardown(slot, gen);
      });
}

void WorkloadEngine::send_close(net::FlowId flow) {
  net::Packet close;
  close.uid = scenario_.network.allocate_uid();
  close.dst = dst_;
  close.size_bytes = 40;
  close.type = net::PacketType::kTcpClose;
  close.tcp.flow = flow;
  close.sent_at = src_sched_->now();
  scenario_.network.node(src_).originate(std::move(close));
}

void WorkloadEngine::teardown(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slots_.size() || !slots_.active(slot) ||
      slots_.generation(slot) != gen || sender_[slot] == nullptr) {
    return;  // stale event for a recycled incarnation
  }
  const net::FlowId flow = config_.first_flow_id + static_cast<int>(slot);
  const std::int64_t now_ns =
      src_sched_->now().as_nanos();
  ++stats_.completed;
  stats_.sum_completion_s +=
      static_cast<double>(now_ns - started_ns_[slot]) * 1e-9;
  TCPPR_DCHECK(stats_.active > 0);
  --stats_.active;

  const int source = source_[slot];
  // Destroy the sender first (detaches its agent — late ACKs are counted
  // unroutable, not delivered to a dead object), then tell the receiver
  // side, then quarantine the flow id.
  sender_[slot].reset();
  if (registry_ != nullptr) registry_->retire_flow(flow);
  if (telemetry_ != nullptr) telemetry_->retire_flow(flow);
  send_close(flow);
  slots_.release(slot, now_ns);

  if (source >= 0 && running_) schedule_source_restart(source);
}

WorkloadStats WorkloadEngine::stats() const {
  WorkloadStats s = stats_;
  s.receivers_created = server_->receivers_created();
  s.receivers_closed = server_->receivers_closed();
  s.receivers_reaped = server_->receivers_reaped();
  s.receivers_resumed = server_->receivers_resumed();
  s.stray_packets = server_->stray_packets();
  return s;
}

stats::ReorderMonitor WorkloadEngine::reorder_stats() const {
  stats::ReorderMonitor agg;
  server_->fold_reorder_stats(agg);
  return agg;
}

std::size_t WorkloadEngine::slab_bytes() const {
  return slots_.slab_bytes() + variant_.capacity() * sizeof(std::uint8_t) +
         started_ns_.capacity() * sizeof(std::int64_t) +
         source_.capacity() * sizeof(std::int32_t) +
         sender_.capacity() * sizeof(sender_[0]) + server_->slab_bytes();
}

}  // namespace tcppr::workload
