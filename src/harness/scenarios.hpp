// Scenario builders for the paper's three evaluation topologies:
//   - dumbbell (single bottleneck), Figures 2-4 left plots;
//   - parking-lot (Figure 1: chain of three bottlenecks with overlapping
//     TCP-SACK cross traffic), Figures 2-4 right plots;
//   - multi-path mesh (Figure 5: parallel node-disjoint paths of unequal
//     length, 10 Mbps links, 100-packet queues), Figure 6.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "app/sources.hpp"
#include "core/tcp_pr.hpp"
#include "net/network.hpp"
#include "obs/probe.hpp"
#include "obs/registry.hpp"
#include "routing/multipath.hpp"
#include "sim/scheduler.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender_base.hpp"

namespace tcppr::harness {

enum class TcpVariant {
  kTcpPr,
  kSack,
  kReno,
  kNewReno,
  kTahoe,
  kTdFr,
  kDsackNm,
  kIncByOne,
  kIncByN,
  kEwma,
  kEifel,
  kDoor,
};

const char* to_string(TcpVariant variant);
// All implemented variants, in presentation order.
const std::vector<TcpVariant>& all_variants();

std::unique_ptr<tcp::SenderBase> make_sender(
    TcpVariant variant, net::Network& network, net::NodeId local,
    net::NodeId remote, net::FlowId flow, const tcp::TcpConfig& tcp_config,
    const core::TcpPrConfig& pr_config);

// A built simulation: the scheduler, the network, and every endpoint.
// Heap-only (internal references make it unmovable).
struct Scenario {
  explicit Scenario(
      sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap)
      : backend(backend), sched(backend), network(sched) {}
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  sim::SchedulerBackend backend;
  sim::Scheduler sched;
  // Scheduler shards in parallel mode (populated by harness::ParallelSim;
  // empty in sequential runs). Owned by the Scenario and declared before
  // the network and the endpoints so senders/receivers — whose destructors
  // cancel timers rebound onto these shards — are destroyed first.
  std::vector<std::unique_ptr<sim::Scheduler>> lp_scheds;
  net::Network network;
  net::NodeId src_host = net::kInvalidNode;
  net::NodeId dst_host = net::kInvalidNode;

  // Index i of senders/receivers/variants describes measured flow i.
  std::vector<std::unique_ptr<tcp::SenderBase>> senders;
  std::vector<std::unique_ptr<tcp::Receiver>> receivers;
  std::vector<TcpVariant> variants;

  // Cross traffic and auxiliary objects (not measured).
  std::vector<std::unique_ptr<tcp::SenderBase>> cross_senders;
  std::vector<std::unique_ptr<tcp::Receiver>> cross_receivers;
  std::vector<std::unique_ptr<net::SourceRoutingPolicy>> policies;

  // Links whose queues define the loss rate of the experiment.
  std::vector<net::Link*> bottlenecks;

  // Periodic queue samplers created by attach_observability (src/obs).
  std::vector<std::unique_ptr<obs::QueueProbe>> queue_probes;

  // Build-time scheduled actions (flow starts, fault injections), recorded
  // so parallel-mode adoption can cancel them on the main scheduler and
  // re-schedule each into the shard owning `affinity`'s node. Sequential
  // runs just execute the already-scheduled events and ignore this list.
  struct DeferredAction {
    sim::EventId id;        // event on the main scheduler
    sim::TimePoint at;
    net::NodeId affinity = net::kInvalidNode;
    std::function<void()> fn;
  };
  std::vector<DeferredAction> deferred;

  // Schedules `fn` at `at` and records it for parallel adoption.
  // `affinity` names the node whose logical process must run the action
  // (the objects it touches must be owned by that node's LP).
  void schedule_action(sim::TimePoint at, net::NodeId affinity,
                       std::function<void()> fn);

  // Adds a measured flow and schedules its start.
  void add_flow(TcpVariant variant, net::NodeId src, net::NodeId dst,
                net::FlowId flow, const tcp::TcpConfig& tcp_config,
                const core::TcpPrConfig& pr_config, sim::TimePoint start);
  // Adds an unmeasured long-lived SACK cross-traffic flow.
  void add_cross_flow(net::NodeId src, net::NodeId dst, net::FlowId flow,
                      const tcp::TcpConfig& tcp_config, sim::TimePoint start);
  // Aggregate loss fraction over the bottleneck queues.
  double bottleneck_loss_rate() const;

  // Attaches the flow-state observability layer: every measured sender and
  // receiver samples into `registry`, and each bottleneck queue is polled
  // every `queue_interval`. Call after the scenario is built (flows added)
  // and before sched.run*(). Without this call the simulation pays only the
  // disabled-probe branch per event.
  void attach_observability(
      obs::MetricRegistry& registry,
      sim::Duration queue_interval = sim::Duration::millis(100));
};

struct DumbbellConfig {
  int pr_flows = 2;
  int sack_flows = 2;
  double bottleneck_bw_bps = 15e6;
  sim::Duration bottleneck_delay = sim::Duration::millis(20);
  std::size_t bottleneck_queue = 100;
  double access_bw_bps = 100e6;
  sim::Duration access_delay = sim::Duration::millis(1);
  std::size_t access_queue = 2000;
  tcp::TcpConfig tcp;
  core::TcpPrConfig pr;
  std::uint64_t seed = 1;
  sim::Duration max_start_stagger = sim::Duration::seconds(2);
  sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap;
};

std::unique_ptr<Scenario> make_dumbbell(const DumbbellConfig& config);

struct ParkingLotConfig {
  int pr_flows = 2;
  int sack_flows = 2;
  // Figure 1 bandwidths.
  double chain_bw_bps = 15e6;       // links 1-2, 2-3, 3-4 (bottlenecks)
  double other_bw_bps = 15e6;       // S-1, 4-D, CD attachment links
  double cs1_bw_bps = 5e6;
  double cs2_bw_bps = 1.66e6;
  double cs3_bw_bps = 2.5e6;
  sim::Duration chain_delay = sim::Duration::millis(10);
  sim::Duration access_delay = sim::Duration::millis(5);
  std::size_t queue_limit = 100;
  bool with_cross_traffic = true;
  tcp::TcpConfig tcp;
  core::TcpPrConfig pr;
  std::uint64_t seed = 1;
  sim::Duration max_start_stagger = sim::Duration::seconds(2);
  sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap;
};

std::unique_ptr<Scenario> make_parking_lot(const ParkingLotConfig& config);

struct MultipathConfig {
  TcpVariant variant = TcpVariant::kTcpPr;
  double epsilon = 0;     // paper sweeps {0, 1, 4, 10, 500}
  int path_count = 4;     // disjoint paths with 1..path_count relay nodes
  double link_bw_bps = 10e6;
  sim::Duration link_delay = sim::Duration::millis(10);
  std::size_t queue_limit = 100;
  bool multipath_acks = true;  // ACKs sample the reverse paths too
  tcp::TcpConfig tcp;
  core::TcpPrConfig pr;
  std::uint64_t seed = 1;
  sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap;
};

std::unique_ptr<Scenario> make_multipath(const MultipathConfig& config);

// The many-flow scale workload (ROADMAP: thousands of concurrent flows).
// Either a dumbbell whose bottleneck bandwidth and queue scale with the
// flow count (per-flow share stays constant, so the congestion regime does
// not change character as N grows), or a ring-plus-chords random graph with
// flows between random node pairs. Flow variants interleave TCP-PR and
// SACK at pr_fraction, matching the paper's competition experiments.
struct ManyFlowsConfig {
  static constexpr int kMaxFlows = 4096;

  enum class Topology { kDumbbell, kRandomGraph };
  Topology topology = Topology::kDumbbell;
  int flows = 256;          // 1 .. kMaxFlows
  double pr_fraction = 0.5; // fraction of flows running TCP-PR (rest SACK)

  // Dumbbell sizing (per flow, so N only scales the plant).
  double bottleneck_bw_per_flow_bps = 125e3;
  sim::Duration bottleneck_delay = sim::Duration::millis(20);
  double access_bw_headroom = 2.0;  // access bw = headroom * bottleneck bw
  sim::Duration access_delay = sim::Duration::millis(1);

  // Random graph sizing (ring + chords, cf. the fuzzer's topology).
  int graph_nodes = 32;
  int graph_chords = 8;
  double graph_bw_bps = 10e6;
  sim::Duration graph_delay = sim::Duration::millis(5);
  std::size_t graph_queue = 50;

  tcp::TcpConfig tcp;
  core::TcpPrConfig pr;
  std::uint64_t seed = 1;
  sim::Duration max_start_stagger = sim::Duration::seconds(2);
  sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap;
};

std::unique_ptr<Scenario> make_many_flows(const ManyFlowsConfig& config);

// The million-flow plant (ROADMAP top-end row): a fan-in/fan-out dumbbell
//
//   src ══ A_0..A_{w-1} ══ r1 ── bottleneck ── r2 ══ B_0..B_{w-1} ══ dst
//
// where src/r2 spray packets toward dst (and dst/r1 back toward src)
// uniformly across the w relay fans via per-packet ECMP. Relay access
// delays spread by access_delay_step, so the fan is both the capacity
// concentrator and a persistent-reordering plant in the paper's regime.
// The bottleneck carries flows * per_flow_bw_bps; every per-flow quantity
// (bandwidth share, queue headroom) is constant in `flows`, which only
// scales the plant — at flows = 2^20 the per-flow share keeps each flow
// near cwnd 1-2 so aggregate event rate stays ~flows/RTT.
//
// Builds the topology only: no static flows. Pair it with the
// WorkloadEngine (tcppr_sim --workload), which spawns senders on src_host
// and demuxes receivers on dst_host, or add flows by hand.
struct FanDumbbellConfig {
  static constexpr int kMaxFlows = 1 << 20;

  int flows = 1 << 16;  // sizes the plant; actual flows come from workload
  int fan_width = 8;    // relay nodes per side (>= 1)
  double per_flow_bw_bps = 12e3;  // ~1.4 segments/RTT at the default RTT
  sim::Duration bottleneck_delay = sim::Duration::millis(300);
  // Relay i's host-side link adds base + i * step one-way delay; the
  // relay-to-router hop adds another base.
  sim::Duration access_delay_base = sim::Duration::millis(2);
  sim::Duration access_delay_step = sim::Duration::millis(25);
  double access_bw_headroom = 2.0;  // per fan link, over its traffic share
  std::size_t bottleneck_queue_packets = 1 << 16;
  std::size_t access_queue_packets = 1 << 14;
  tcp::TcpConfig tcp;
  core::TcpPrConfig pr;
  std::uint64_t seed = 1;
  sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap;
};

std::unique_ptr<Scenario> make_fan_dumbbell(const FanDumbbellConfig& config);

// The tuned 2^20-concurrent-flow plant: RTT ~0.9-1.0 s across the fan
// spread (which minimizes the aggregate event rate floor of
// flows / RTT forced by cwnd >= 1), timing-wheel scheduler for the
// multi-million pending-event population. Pair with
// workload::million_workload_config(flows).
FanDumbbellConfig million_fan_config(int flows);

// A low-lookahead parallel plant: `clusters` local dumbbells
//
//   src_c ── r1_c ── r2_c ── dst_c        (short intra-cluster delays)
//        \____ local flows ____/
//
// joined into a ring by short cut links (r2_c — r1_{c+1}). Intra-cluster
// delays sit at or below min_cut_lookahead() so the partitioner contracts
// each cluster into one atom and the only cuttable links are the ring
// links — the safe horizon is their (deliberately small) delay, which is
// the regime where conservative windows are tiny and bounded-optimism
// speculation pays. Cross flows (SACK, one per adjacent cluster pair,
// round-robin) put real straggler traffic on the cuts; zero keeps them
// silent. hot_cluster_bw_scale skews one cluster's event rate without
// changing its host count — invisible to the static partition weights,
// visible to the measured ones (the adaptive repartitioning testbed).
struct ClusteredMeshConfig {
  static constexpr int kMaxFlows = 4096;

  int clusters = 4;
  int flows = 256;           // total, split evenly across clusters
  double pr_fraction = 0.5;  // of each cluster's local flows
  int cross_flows = 0;       // SACK flows src_c -> dst_{c+1 mod k}

  double bw_per_flow_bps = 125e3;  // sizes each local bottleneck
  sim::Duration access_delay = sim::Duration::micros(10);
  sim::Duration local_delay = sim::Duration::micros(50);
  sim::Duration cut_delay = sim::Duration::micros(100);  // the lookahead
  double cut_bw_bps = 100e6;
  double access_bw_headroom = 2.0;

  // One cluster's flows run at this multiple of bw_per_flow_bps.
  int hot_cluster = 0;
  double hot_cluster_bw_scale = 1.0;

  tcp::TcpConfig tcp;
  core::TcpPrConfig pr;
  std::uint64_t seed = 1;
  sim::Duration max_start_stagger = sim::Duration::seconds(1);
  sim::SchedulerBackend backend = sim::SchedulerBackend::kBinaryHeap;

  // Pass to ParallelRunConfig::min_cut_lookahead so contraction keeps
  // clusters atomic and only the ring links are cut.
  sim::Duration min_cut_lookahead() const { return local_delay; }
};

std::unique_ptr<Scenario> make_clustered_mesh(const ClusteredMeshConfig& config);

}  // namespace tcppr::harness
