#include "harness/scenarios.hpp"

#include <algorithm>
#include <utility>

#include "tcp/door.hpp"
#include "tcp/eifel.hpp"
#include "tcp/mitigation.hpp"
#include "tcp/reno.hpp"
#include "tcp/sack.hpp"
#include "tcp/tahoe.hpp"
#include "tcp/tdfr.hpp"
#include "util/check.hpp"

namespace tcppr::harness {

const char* to_string(TcpVariant variant) {
  switch (variant) {
    case TcpVariant::kTcpPr:
      return "tcp-pr";
    case TcpVariant::kSack:
      return "sack";
    case TcpVariant::kReno:
      return "reno";
    case TcpVariant::kNewReno:
      return "newreno";
    case TcpVariant::kTahoe:
      return "tahoe";
    case TcpVariant::kTdFr:
      return "td-fr";
    case TcpVariant::kDsackNm:
      return "dsack-nm";
    case TcpVariant::kIncByOne:
      return "inc-by-1";
    case TcpVariant::kIncByN:
      return "inc-by-n";
    case TcpVariant::kEwma:
      return "ewma";
    case TcpVariant::kEifel:
      return "eifel";
    case TcpVariant::kDoor:
      return "tcp-door";
  }
  return "?";
}

const std::vector<TcpVariant>& all_variants() {
  static const std::vector<TcpVariant> kAll = {
      TcpVariant::kTcpPr,    TcpVariant::kSack,   TcpVariant::kReno,
      TcpVariant::kNewReno,  TcpVariant::kTahoe,  TcpVariant::kTdFr,
      TcpVariant::kDsackNm,  TcpVariant::kIncByOne, TcpVariant::kIncByN,
      TcpVariant::kEwma,     TcpVariant::kEifel,  TcpVariant::kDoor};
  return kAll;
}

std::unique_ptr<tcp::SenderBase> make_sender(
    TcpVariant variant, net::Network& network, net::NodeId local,
    net::NodeId remote, net::FlowId flow, const tcp::TcpConfig& tcp_config,
    const core::TcpPrConfig& pr_config) {
  switch (variant) {
    case TcpVariant::kTcpPr:
      return std::make_unique<core::TcpPrSender>(network, local, remote, flow,
                                                 tcp_config, pr_config);
    case TcpVariant::kSack:
      return std::make_unique<tcp::SackSender>(network, local, remote, flow,
                                               tcp_config);
    case TcpVariant::kReno:
      return std::make_unique<tcp::RenoSender>(network, local, remote, flow,
                                               tcp_config);
    case TcpVariant::kNewReno:
      return std::make_unique<tcp::NewRenoSender>(network, local, remote,
                                                  flow, tcp_config);
    case TcpVariant::kTahoe:
      return std::make_unique<tcp::TahoeSender>(network, local, remote, flow,
                                                tcp_config);
    case TcpVariant::kDoor:
      return std::make_unique<tcp::DoorSender>(network, local, remote, flow,
                                               tcp_config);
    case TcpVariant::kTdFr:
      return std::make_unique<tcp::TdFrSender>(network, local, remote, flow,
                                               tcp_config);
    case TcpVariant::kDsackNm:
      return std::make_unique<tcp::MitigationSender>(
          network, local, remote, flow,
          tcp::DupthreshPolicy::kDsackNoMitigation, tcp_config);
    case TcpVariant::kIncByOne:
      return std::make_unique<tcp::MitigationSender>(
          network, local, remote, flow, tcp::DupthreshPolicy::kIncByOne,
          tcp_config);
    case TcpVariant::kIncByN:
      return std::make_unique<tcp::MitigationSender>(
          network, local, remote, flow, tcp::DupthreshPolicy::kIncByN,
          tcp_config);
    case TcpVariant::kEwma:
      return std::make_unique<tcp::MitigationSender>(
          network, local, remote, flow, tcp::DupthreshPolicy::kEwma,
          tcp_config);
    case TcpVariant::kEifel:
      return std::make_unique<tcp::EifelSender>(network, local, remote, flow,
                                                tcp_config);
  }
  TCPPR_CHECK(false);
  return nullptr;
}

void Scenario::schedule_action(sim::TimePoint at, net::NodeId affinity,
                               std::function<void()> fn) {
  const sim::EventId id = sched.schedule_at(at, fn);
  deferred.push_back(DeferredAction{id, at, affinity, std::move(fn)});
}

void Scenario::add_flow(TcpVariant variant, net::NodeId src, net::NodeId dst,
                        net::FlowId flow, const tcp::TcpConfig& tcp_config,
                        const core::TcpPrConfig& pr_config,
                        sim::TimePoint start) {
  tcp::ReceiverConfig rc;
  rc.segment_bytes = tcp_config.segment_bytes;
  rc.ack_bytes = tcp_config.ack_bytes;
  receivers.push_back(
      std::make_unique<tcp::Receiver>(network, dst, src, flow, rc));
  senders.push_back(make_sender(variant, network, src, dst, flow, tcp_config,
                                pr_config));
  variants.push_back(variant);
  tcp::SenderBase* sender = senders.back().get();
  schedule_action(start, src, [sender] { sender->start(); });
}

void Scenario::add_cross_flow(net::NodeId src, net::NodeId dst,
                              net::FlowId flow,
                              const tcp::TcpConfig& tcp_config,
                              sim::TimePoint start) {
  tcp::ReceiverConfig rc;
  rc.segment_bytes = tcp_config.segment_bytes;
  rc.ack_bytes = tcp_config.ack_bytes;
  cross_receivers.push_back(
      std::make_unique<tcp::Receiver>(network, dst, src, flow, rc));
  cross_senders.push_back(std::make_unique<tcp::SackSender>(
      network, src, dst, flow, tcp_config));
  tcp::SenderBase* sender = cross_senders.back().get();
  schedule_action(start, src, [sender] { sender->start(); });
}

void Scenario::attach_observability(obs::MetricRegistry& registry,
                                    sim::Duration queue_interval) {
  for (auto& sender : senders) sender->set_metric_registry(registry);
  for (auto& receiver : receivers) receiver->set_metric_registry(registry);
  for (net::Link* link : bottlenecks) {
    queue_probes.push_back(std::make_unique<obs::QueueProbe>(
        sched, registry, *link, queue_interval));
    queue_probes.back()->start();
  }
}

double Scenario::bottleneck_loss_rate() const {
  std::uint64_t dropped = 0;
  std::uint64_t offered = 0;
  for (const net::Link* link : bottlenecks) {
    dropped += link->queue().stats().dropped;
    offered += link->queue().stats().enqueued + link->queue().stats().dropped;
  }
  if (offered == 0) return 0;
  return static_cast<double>(dropped) / static_cast<double>(offered);
}

std::unique_ptr<Scenario> make_dumbbell(const DumbbellConfig& config) {
  auto s = std::make_unique<Scenario>(config.backend);
  net::Network& nw = s->network;

  const net::NodeId src = nw.add_node();
  const net::NodeId r1 = nw.add_node();
  const net::NodeId r2 = nw.add_node();
  const net::NodeId dst = nw.add_node();
  s->src_host = src;
  s->dst_host = dst;

  net::LinkConfig access;
  access.bandwidth_bps = config.access_bw_bps;
  access.delay = config.access_delay;
  access.queue_limit_packets = config.access_queue;
  nw.add_duplex_link(src, r1, access);
  nw.add_duplex_link(r2, dst, access);

  net::LinkConfig bottleneck;
  bottleneck.bandwidth_bps = config.bottleneck_bw_bps;
  bottleneck.delay = config.bottleneck_delay;
  bottleneck.queue_limit_packets = config.bottleneck_queue;
  auto [fwd, rev] = nw.add_duplex_link(r1, r2, bottleneck);
  s->bottlenecks.push_back(fwd);
  (void)rev;

  nw.compute_static_routes();

  sim::Rng rng(config.seed);
  net::FlowId next_flow = 1;
  const double stagger_s = config.max_start_stagger.as_seconds();
  // Interleave PR and SACK flows so start order is variant-neutral.
  int pr_left = config.pr_flows;
  int sack_left = config.sack_flows;
  for (int i = 0; pr_left + sack_left > 0; ++i) {
    TcpVariant variant;
    if (pr_left > 0 && (sack_left == 0 || i % 2 == 0)) {
      variant = TcpVariant::kTcpPr;
      --pr_left;
    } else {
      variant = TcpVariant::kSack;
      --sack_left;
    }
    const auto start =
        sim::TimePoint::from_seconds(rng.uniform(0.0, stagger_s));
    s->add_flow(variant, src, dst, next_flow++, config.tcp, config.pr, start);
  }
  return s;
}

std::unique_ptr<Scenario> make_parking_lot(const ParkingLotConfig& config) {
  auto s = std::make_unique<Scenario>(config.backend);
  net::Network& nw = s->network;

  const net::NodeId src = nw.add_node();   // S
  const net::NodeId n1 = nw.add_node();
  const net::NodeId n2 = nw.add_node();
  const net::NodeId n3 = nw.add_node();
  const net::NodeId n4 = nw.add_node();
  const net::NodeId dst = nw.add_node();   // D
  const net::NodeId cs1 = nw.add_node();
  const net::NodeId cs2 = nw.add_node();
  const net::NodeId cs3 = nw.add_node();
  const net::NodeId cd1 = nw.add_node();
  const net::NodeId cd2 = nw.add_node();
  const net::NodeId cd3 = nw.add_node();
  s->src_host = src;
  s->dst_host = dst;

  const auto link = [&](double bw, sim::Duration d) {
    net::LinkConfig cfg;
    cfg.bandwidth_bps = bw;
    cfg.delay = d;
    cfg.queue_limit_packets = config.queue_limit;
    return cfg;
  };

  nw.add_duplex_link(src, n1, link(config.other_bw_bps, config.access_delay));
  auto [l12, l21] =
      nw.add_duplex_link(n1, n2, link(config.chain_bw_bps, config.chain_delay));
  auto [l23, l32] =
      nw.add_duplex_link(n2, n3, link(config.chain_bw_bps, config.chain_delay));
  auto [l34, l43] =
      nw.add_duplex_link(n3, n4, link(config.chain_bw_bps, config.chain_delay));
  (void)l21;
  (void)l32;
  (void)l43;
  nw.add_duplex_link(n4, dst, link(config.other_bw_bps, config.access_delay));
  s->bottlenecks = {l12, l23, l34};

  // Cross-traffic attachment points per Figure 1: sources enter at nodes
  // 1..3 through rate-limited access links; sinks hang off nodes 2..4.
  nw.add_duplex_link(cs1, n1, link(config.cs1_bw_bps, config.access_delay));
  nw.add_duplex_link(cs2, n2, link(config.cs2_bw_bps, config.access_delay));
  nw.add_duplex_link(cs3, n3, link(config.cs3_bw_bps, config.access_delay));
  nw.add_duplex_link(n2, cd1, link(config.other_bw_bps, config.access_delay));
  nw.add_duplex_link(n3, cd2, link(config.other_bw_bps, config.access_delay));
  nw.add_duplex_link(n4, cd3, link(config.other_bw_bps, config.access_delay));

  nw.compute_static_routes();

  sim::Rng rng(config.seed);
  const double stagger_s = config.max_start_stagger.as_seconds();
  net::FlowId next_flow = 1;

  if (config.with_cross_traffic) {
    const std::pair<net::NodeId, net::NodeId> cross[] = {
        {cs1, cd1}, {cs1, cd2}, {cs1, cd3},
        {cs2, cd2}, {cs2, cd3}, {cs3, cd3}};
    for (const auto& [a, b] : cross) {
      const auto start =
          sim::TimePoint::from_seconds(rng.uniform(0.0, stagger_s));
      s->add_cross_flow(a, b, next_flow++, config.tcp, start);
    }
  }

  int pr_left = config.pr_flows;
  int sack_left = config.sack_flows;
  for (int i = 0; pr_left + sack_left > 0; ++i) {
    TcpVariant variant;
    if (pr_left > 0 && (sack_left == 0 || i % 2 == 0)) {
      variant = TcpVariant::kTcpPr;
      --pr_left;
    } else {
      variant = TcpVariant::kSack;
      --sack_left;
    }
    const auto start =
        sim::TimePoint::from_seconds(rng.uniform(0.0, stagger_s));
    s->add_flow(variant, src, dst, next_flow++, config.tcp, config.pr, start);
  }
  return s;
}

std::unique_ptr<Scenario> make_multipath(const MultipathConfig& config) {
  TCPPR_CHECK(config.path_count >= 1);
  auto s = std::make_unique<Scenario>(config.backend);
  net::Network& nw = s->network;

  const net::NodeId src = nw.add_node();
  const net::NodeId dst = nw.add_node();
  s->src_host = src;
  s->dst_host = dst;

  net::LinkConfig link;
  link.bandwidth_bps = config.link_bw_bps;
  link.delay = config.link_delay;
  link.queue_limit_packets = config.queue_limit;

  // Path i (1-based) has i relay nodes: i+1 hops, so path RTTs spread by a
  // factor of (path_count+1)/2 — the source of persistent reordering.
  routing::PathSet fwd_paths;
  fwd_paths.src = src;
  fwd_paths.dst = dst;
  routing::PathSet rev_paths;
  rev_paths.src = dst;
  rev_paths.dst = src;
  for (int i = 1; i <= config.path_count; ++i) {
    std::vector<net::NodeId> fwd{src};
    net::NodeId prev = src;
    for (int k = 0; k < i; ++k) {
      const net::NodeId relay = nw.add_node();
      nw.add_duplex_link(prev, relay, link);
      fwd.push_back(relay);
      prev = relay;
    }
    nw.add_duplex_link(prev, dst, link);
    fwd.push_back(dst);
    std::vector<net::NodeId> rev(fwd.rbegin(), fwd.rend());
    const double cost = static_cast<double>(i + 1);  // hops as cost
    fwd_paths.paths.push_back(std::move(fwd));
    fwd_paths.costs.push_back(cost);
    rev_paths.paths.push_back(std::move(rev));
    rev_paths.costs.push_back(cost);
  }

  nw.compute_static_routes();
  for (const auto& l : nw.links()) s->bottlenecks.push_back(l.get());

  sim::Rng rng(config.seed);
  auto fwd_policy = std::make_unique<routing::MultipathSelector>(
      std::move(fwd_paths), config.epsilon, rng.fork(101));
  nw.node(src).set_source_routing_policy(fwd_policy.get());
  s->policies.push_back(std::move(fwd_policy));
  if (config.multipath_acks) {
    auto rev_policy = std::make_unique<routing::MultipathSelector>(
        std::move(rev_paths), config.epsilon, rng.fork(202));
    nw.node(dst).set_source_routing_policy(rev_policy.get());
    s->policies.push_back(std::move(rev_policy));
  }

  s->add_flow(config.variant, src, dst, /*flow=*/1, config.tcp, config.pr,
              sim::TimePoint::origin());
  return s;
}

namespace {

// Deterministic PR/SACK interleaving at `fraction`: flow i is TCP-PR when
// assigning it keeps the running PR share at or below the target, which
// spreads the minority variant evenly instead of front-loading it.
TcpVariant variant_for(int index, double fraction, int& pr_assigned) {
  const double share =
      static_cast<double>(pr_assigned + 1) / static_cast<double>(index + 1);
  if (share <= fraction + 1e-12) {
    ++pr_assigned;
    return TcpVariant::kTcpPr;
  }
  return TcpVariant::kSack;
}

}  // namespace

std::unique_ptr<Scenario> make_many_flows(const ManyFlowsConfig& config) {
  TCPPR_CHECK(config.flows >= 1 &&
              config.flows <= ManyFlowsConfig::kMaxFlows);
  TCPPR_CHECK(config.pr_fraction >= 0 && config.pr_fraction <= 1);
  auto s = std::make_unique<Scenario>(config.backend);
  net::Network& nw = s->network;
  sim::Rng rng(config.seed);
  const double stagger_s = config.max_start_stagger.as_seconds();
  int pr_assigned = 0;

  if (config.topology == ManyFlowsConfig::Topology::kDumbbell) {
    const net::NodeId src = nw.add_node();
    const net::NodeId r1 = nw.add_node();
    const net::NodeId r2 = nw.add_node();
    const net::NodeId dst = nw.add_node();
    s->src_host = src;
    s->dst_host = dst;

    const double bottleneck_bw =
        config.bottleneck_bw_per_flow_bps * config.flows;

    net::LinkConfig access;
    access.bandwidth_bps = config.access_bw_headroom * bottleneck_bw;
    access.delay = config.access_delay;
    // Access queues must absorb a synchronized window burst from every
    // flow without becoming the experiment's bottleneck.
    access.queue_limit_packets =
        static_cast<std::size_t>(config.flows) * 8 + 2000;
    nw.add_duplex_link(src, r1, access);
    nw.add_duplex_link(r2, dst, access);

    net::LinkConfig bottleneck;
    bottleneck.bandwidth_bps = bottleneck_bw;
    bottleneck.delay = config.bottleneck_delay;
    // Queue ~ one bandwidth-delay product (1 kB segments, RTT dominated by
    // 2 * bottleneck_delay), floored at the figure scenarios' 100.
    const double rtt_s = 2.0 * (config.bottleneck_delay.as_seconds() +
                                config.access_delay.as_seconds());
    const double bdp_packets =
        bottleneck_bw * rtt_s / (8.0 * config.tcp.segment_bytes);
    bottleneck.queue_limit_packets =
        std::max<std::size_t>(100, static_cast<std::size_t>(bdp_packets));
    auto [fwd, rev] = nw.add_duplex_link(r1, r2, bottleneck);
    s->bottlenecks.push_back(fwd);
    (void)rev;

    nw.compute_static_routes();

    for (int i = 0; i < config.flows; ++i) {
      const TcpVariant variant =
          variant_for(i, config.pr_fraction, pr_assigned);
      const auto start =
          sim::TimePoint::from_seconds(rng.uniform(0.0, stagger_s));
      s->add_flow(variant, src, dst, /*flow=*/i + 1, config.tcp, config.pr,
                  start);
    }
    return s;
  }

  // Random graph: a ring with random chords (the fuzzer's shape, scaled
  // up), flows between random distinct node pairs.
  const int n = std::max(4, config.graph_nodes);
  for (int i = 0; i < n; ++i) nw.add_node();

  net::LinkConfig link;
  link.bandwidth_bps = config.graph_bw_bps;
  link.delay = config.graph_delay;
  link.queue_limit_packets = config.graph_queue;
  for (int i = 0; i < n; ++i) {
    auto [fwd, rev] = nw.add_duplex_link(i, (i + 1) % n, link);
    s->bottlenecks.push_back(fwd);
    (void)rev;
  }
  for (int c = 0; c < config.graph_chords; ++c) {
    const auto a = static_cast<net::NodeId>(rng.uniform_int(n));
    net::NodeId b = static_cast<net::NodeId>(rng.uniform_int(n));
    // Chords must span at least two ring hops to add a distinct route.
    if (b == a || b == (a + 1) % n || a == (b + 1) % n) {
      b = (a + static_cast<net::NodeId>(n) / 2) % n;
    }
    auto [fwd, rev] = nw.add_duplex_link(a, b, link);
    s->bottlenecks.push_back(fwd);
    (void)rev;
  }
  nw.compute_static_routes();
  s->src_host = 0;
  s->dst_host = n / 2;

  for (int i = 0; i < config.flows; ++i) {
    const net::NodeId src = static_cast<net::NodeId>(rng.uniform_int(n));
    net::NodeId dst = static_cast<net::NodeId>(rng.uniform_int(n));
    if (dst == src) dst = (dst + 1 + static_cast<net::NodeId>(n) / 2) % n;
    const TcpVariant variant =
        variant_for(i, config.pr_fraction, pr_assigned);
    const auto start =
        sim::TimePoint::from_seconds(rng.uniform(0.0, stagger_s));
    s->add_flow(variant, src, dst, /*flow=*/i + 1, config.tcp, config.pr,
                start);
  }
  return s;
}

std::unique_ptr<Scenario> make_fan_dumbbell(const FanDumbbellConfig& config) {
  TCPPR_CHECK(config.flows >= 1 &&
              config.flows <= FanDumbbellConfig::kMaxFlows);
  TCPPR_CHECK(config.fan_width >= 1);
  auto s = std::make_unique<Scenario>(config.backend);
  net::Network& nw = s->network;
  sim::Rng rng(config.seed);

  const net::NodeId src = nw.add_node();
  const net::NodeId r1 = nw.add_node();
  const net::NodeId r2 = nw.add_node();
  const net::NodeId dst = nw.add_node();
  s->src_host = src;
  s->dst_host = dst;

  const double bottleneck_bw = config.per_flow_bw_bps * config.flows;
  // Each fan link carries ~1/fan_width of the aggregate; headroom keeps
  // the fans out of the bottleneck's business.
  const double fan_bw = config.access_bw_headroom * bottleneck_bw /
                        static_cast<double>(config.fan_width);

  const auto fan_link = [&](sim::Duration delay) {
    net::LinkConfig cfg;
    cfg.bandwidth_bps = fan_bw;
    cfg.delay = delay;
    cfg.queue_limit_packets = config.access_queue_packets;
    return cfg;
  };

  // Relay fans: src == A_i == r1 and r2 == B_i == dst, relay i's host-side
  // hop carrying the i * step delay spread.
  std::vector<net::NodeId> a_relays;
  std::vector<net::NodeId> b_relays;
  for (int i = 0; i < config.fan_width; ++i) {
    const sim::Duration spread = sim::Duration::nanos(
        config.access_delay_base.as_nanos() +
        static_cast<std::int64_t>(i) * config.access_delay_step.as_nanos());
    const net::NodeId a = nw.add_node();
    nw.add_duplex_link(src, a, fan_link(spread));
    nw.add_duplex_link(a, r1, fan_link(config.access_delay_base));
    a_relays.push_back(a);
    const net::NodeId b = nw.add_node();
    nw.add_duplex_link(r2, b, fan_link(config.access_delay_base));
    nw.add_duplex_link(b, dst, fan_link(spread));
    b_relays.push_back(b);
  }

  net::LinkConfig bottleneck;
  bottleneck.bandwidth_bps = bottleneck_bw;
  bottleneck.delay = config.bottleneck_delay;
  bottleneck.queue_limit_packets = config.bottleneck_queue_packets;
  auto [fwd, rev] = nw.add_duplex_link(r1, r2, bottleneck);
  s->bottlenecks.push_back(fwd);
  (void)rev;

  nw.compute_static_routes();

  // Per-packet ECMP across the fans, both directions: data sprays over the
  // A relays at src and the B relays at r2; ACKs over the B relays at dst
  // and the A relays at r1. With the delay spread above this is the
  // persistent-reordering plant — consecutive segments race each other by
  // up to 2 * (fan_width - 1) * access_delay_step per direction.
  nw.node(src).set_ecmp_next_hops(dst, a_relays, rng.fork(11));
  nw.node(r2).set_ecmp_next_hops(dst, b_relays, rng.fork(12));
  nw.node(dst).set_ecmp_next_hops(src, b_relays, rng.fork(13));
  nw.node(r1).set_ecmp_next_hops(src, a_relays, rng.fork(14));
  return s;
}

FanDumbbellConfig million_fan_config(int flows) {
  FanDumbbellConfig fc;
  fc.flows = flows;
  fc.fan_width = 8;
  // Event-rate floor is flows / RTT (cwnd cannot go below 1 segment), so
  // the top-end row buys wall-clock with a long pipe: ~0.9-1.0 s RTT
  // means ~1.2 M deliveries per simulated second at 2^20 flows instead of
  // the ~50 M a datacenter RTT would force.
  fc.bottleneck_delay = sim::Duration::millis(300);
  fc.access_delay_base = sim::Duration::millis(2);
  fc.access_delay_step = sim::Duration::millis(25);
  // ~1.4 segments per RTT per flow: enough for progress at cwnd 1-2,
  // little enough that the aggregate stays at the floor.
  fc.per_flow_bw_bps = 12e3;
  fc.bottleneck_queue_packets = 1 << 16;  // far under one BDP: underbuffered
  fc.access_queue_packets = 1 << 14;
  // Millions of pending deadline timers: the hierarchical wheel's O(1)
  // schedule/cancel beats the heap's log2(~4M) comparisons per op.
  fc.backend = sim::SchedulerBackend::kTimingWheel;
  return fc;
}

std::unique_ptr<Scenario> make_clustered_mesh(
    const ClusteredMeshConfig& config) {
  TCPPR_CHECK(config.clusters >= 2);
  TCPPR_CHECK(config.flows >= config.clusters &&
              config.flows <= ClusteredMeshConfig::kMaxFlows);
  TCPPR_CHECK(config.cut_delay > config.min_cut_lookahead());
  TCPPR_CHECK(config.access_delay <= config.min_cut_lookahead());
  auto s = std::make_unique<Scenario>(config.backend);
  net::Network& nw = s->network;
  const int k = config.clusters;
  const int local_flows = config.flows / k;

  struct Cluster {
    net::NodeId src, r1, r2, dst;
  };
  std::vector<Cluster> cl(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    cl[c].src = nw.add_node();
    cl[c].r1 = nw.add_node();
    cl[c].r2 = nw.add_node();
    cl[c].dst = nw.add_node();

    const double scale =
        c == config.hot_cluster ? config.hot_cluster_bw_scale : 1.0;
    const double local_bw = config.bw_per_flow_bps * scale * local_flows;

    net::LinkConfig access;
    access.bandwidth_bps = config.access_bw_headroom * local_bw;
    access.delay = config.access_delay;
    access.queue_limit_packets =
        static_cast<std::size_t>(local_flows) * 8 + 500;
    nw.add_duplex_link(cl[c].src, cl[c].r1, access);
    nw.add_duplex_link(cl[c].r2, cl[c].dst, access);

    net::LinkConfig local;
    local.bandwidth_bps = local_bw;
    local.delay = config.local_delay;
    // Sub-millisecond RTTs make the queue the whole pipe; a fixed small
    // queue keeps the local loops in the usual congestion regime.
    local.queue_limit_packets = 100;
    auto [fwd, rev] = nw.add_duplex_link(cl[c].r1, cl[c].r2, local);
    s->bottlenecks.push_back(fwd);
    (void)rev;
  }
  // Ring of cut links between neighboring clusters' routers.
  net::LinkConfig cut;
  cut.bandwidth_bps = config.cut_bw_bps;
  cut.delay = config.cut_delay;
  cut.queue_limit_packets = 200;
  for (int c = 0; c < k; ++c) {
    nw.add_duplex_link(cl[c].r2, cl[(c + 1) % k].r1, cut);
  }
  nw.compute_static_routes();
  s->src_host = cl[0].src;
  s->dst_host = cl[0].dst;

  sim::Rng rng(config.seed);
  const double stagger_s = config.max_start_stagger.as_seconds();
  net::FlowId next_flow = 1;
  // Local flows cluster-by-cluster, PR/SACK interleaved within each.
  for (int c = 0; c < k; ++c) {
    int pr_assigned = 0;
    for (int i = 0; i < local_flows; ++i) {
      const TcpVariant variant =
          variant_for(i, config.pr_fraction, pr_assigned);
      const auto start =
          sim::TimePoint::from_seconds(rng.uniform(0.0, stagger_s));
      s->add_flow(variant, cl[c].src, cl[c].dst, next_flow++, config.tcp,
                  config.pr, start);
    }
  }
  for (int x = 0; x < config.cross_flows; ++x) {
    const int c = x % k;
    const auto start =
        sim::TimePoint::from_seconds(rng.uniform(0.0, stagger_s));
    s->add_cross_flow(cl[c].src, cl[(c + 1) % k].dst, 100000 + next_flow++,
                      config.tcp, start);
  }
  return s;
}

}  // namespace tcppr::harness
