#include "harness/experiment.hpp"

#include <algorithm>

#include "harness/parallel_run.hpp"
#include "util/check.hpp"

namespace tcppr::harness {

std::vector<double> RunResult::throughputs() const {
  std::vector<double> out;
  out.reserve(flows.size());
  for (const FlowResult& f : flows) out.push_back(f.throughput_bps);
  return out;
}

std::vector<double> RunResult::normalized() const {
  return stats::normalized_throughput(throughputs());
}

double RunResult::mean_normalized(TcpVariant variant) const {
  const std::vector<double> norm = normalized();
  double sum = 0;
  int n = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].variant == variant) {
      sum += norm[i];
      ++n;
    }
  }
  return n == 0 ? 0 : sum / n;
}

double RunResult::cov(TcpVariant variant) const {
  std::vector<double> vals;
  const std::vector<double> norm = normalized();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].variant == variant) vals.push_back(norm[i]);
  }
  return stats::coefficient_of_variation(vals);
}

int RunResult::count(TcpVariant variant) const {
  int n = 0;
  for (const FlowResult& f : flows) {
    if (f.variant == variant) ++n;
  }
  return n;
}

RunResult run_scenario(Scenario& scenario, const MeasurementWindow& window,
                       ParallelSim* psim) {
  TCPPR_CHECK(window.measured <= window.total);
  const sim::TimePoint t_end =
      sim::TimePoint::origin() + window.total;
  const sim::TimePoint t_mark = t_end - window.measured;

  const auto run_to = [&](sim::TimePoint t) {
    if (psim != nullptr) {
      psim->run_until(t);  // all shards stop at the barrier: reads are safe
    } else {
      scenario.sched.run_until(t);
    }
  };
  run_to(t_mark);
  std::vector<std::uint64_t> acked_at_mark;
  std::vector<std::uint64_t> goodput_at_mark;
  for (std::size_t i = 0; i < scenario.senders.size(); ++i) {
    acked_at_mark.push_back(scenario.senders[i]->stats().bytes_newly_acked);
    goodput_at_mark.push_back(scenario.receivers[i]->stats().goodput_bytes);
  }
  run_to(t_end);

  RunResult result;
  result.measure_seconds = window.measured.as_seconds();
  result.loss_rate = scenario.bottleneck_loss_rate();
  result.events = psim != nullptr ? psim->events_processed()
                                  : scenario.sched.processed_count();
  for (std::size_t i = 0; i < scenario.senders.size(); ++i) {
    FlowResult fr;
    fr.variant = scenario.variants[i];
    fr.flow = scenario.senders[i]->flow();
    fr.sender = scenario.senders[i]->stats();
    fr.receiver = scenario.receivers[i]->stats();
    const double dt = result.measure_seconds;
    fr.throughput_bps =
        static_cast<double>(fr.sender.bytes_newly_acked - acked_at_mark[i]) *
        8.0 / dt;
    fr.goodput_bps =
        static_cast<double>(fr.receiver.goodput_bytes - goodput_at_mark[i]) *
        8.0 / dt;
    result.flows.push_back(fr);
  }
  return result;
}

MultipathCell run_multipath_cell(
    const MultipathConfig& config, const MeasurementWindow& window,
    const std::function<void(Scenario&)>& on_built) {
  auto scenario = make_multipath(config);
  if (on_built) on_built(*scenario);
  const RunResult run = run_scenario(*scenario, window);
  TCPPR_CHECK(run.flows.size() == 1);
  MultipathCell cell;
  cell.variant = config.variant;
  cell.epsilon = config.epsilon;
  cell.goodput_bps = run.flows[0].goodput_bps;
  cell.throughput_bps = run.flows[0].throughput_bps;
  cell.retransmissions = run.flows[0].sender.retransmissions;
  cell.timeouts = run.flows[0].sender.timeouts;
  cell.spurious = run.flows[0].sender.spurious_retransmits_detected;
  cell.loss_rate = run.loss_rate;
  return cell;
}

}  // namespace tcppr::harness
