// Thread-pool runner for embarrassingly parallel sweep cells.
//
// Each figure harness evaluates a grid of independent simulation cells
// (topology x parameter x seed); every cell owns its Scheduler, Network
// and Rng, so cells share no mutable state and can run on worker threads.
// Determinism: workers only *compute* — each cell writes its result into a
// caller-provided slot indexed by cell number and all printing happens
// afterwards on the caller's thread in cell order, so the output is
// byte-identical for any worker count (checked by the --jobs smoke test).
#pragma once

#include <functional>

namespace tcppr::harness {

// Invokes fn(i) for i in [0, count) using up to `jobs` worker threads
// (clamped to count; jobs <= 1 runs inline). fn must not touch shared
// mutable state; it should write results into pre-sized storage at index
// i. Blocks until every cell has completed.
void parallel_for(int jobs, int count, const std::function<void(int)>& fn);

}  // namespace tcppr::harness
