// Parallel execution harness: binds a built Scenario to the conservative
// parallel engine (sim/parallel_engine.hpp) so one simulation runs across
// several scheduler shards and produces byte-identical results.
//
// Responsibilities, in construction order:
//
//   1. Partition the topology into LPs (harness/partition.hpp). When no
//      positive-lookahead cut exists (lp_count() == 1) the scenario still
//      runs — on a single stamped shard, sequentially.
//   2. Create one Scheduler shard per LP (same backend as the scenario,
//      seq-stamping enabled: event ties break in the canonical
//      (schedule-time, owner node, op index) order, which is independent
//      of the partition — any LP count, 1 included, executes the identical
//      trajectory) and one PacketPool per LP (pools are not thread-safe;
//      packets never share a pool across shards).
//   3. Re-point every node, link, sender and receiver at its LP's shard,
//      pool and buffering tracer; cut links get a mailbox channel.
//   4. Adopt the scenario's build-time events (flow starts, fault
//      injections — Scenario::deferred): cancel on the build scheduler,
//      re-schedule into the owning shard. Afterwards the build scheduler
//      must be empty — a non-empty remainder means the scenario uses a
//      feature the parallel mode does not support (observability probes,
//      app-layer sources, short-flow generators) and the CHECK names the
//      misuse instead of silently diverging.
//
// During the run the exchange hook drains each mailbox in deterministic
// order into the destination shard via schedule_at_stamped (the stamp was
// minted on the source shard at exactly the op position the sequential
// delivery-schedule call occupies), merges per-LP buffered trace records
// in (time, stamp, emission) order into the scenario's real tracer, and
// advances the build scheduler's clock to the barrier time so wall-clock
// readers (violation timestamps) stay meaningful.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "harness/partition.hpp"
#include "harness/scenarios.hpp"
#include "net/link_pump.hpp"
#include "net/packet_pool.hpp"
#include "sim/parallel_engine.hpp"
#include "trace/trace.hpp"

namespace tcppr::validate {
class InvariantChecker;
}

namespace tcppr::harness {

struct ParallelRunConfig {
  int lps = 2;
  // Forwarded to the partitioner: links at or below this propagation
  // delay are never cut (zero-delay links never are, regardless).
  sim::Duration min_cut_lookahead = sim::Duration::zero();
};

class ParallelSim {
 public:
  // `scenario` must be fully built (flows added) and not yet run. The
  // ParallelSim borrows it and must be destroyed before it; destruction
  // restores the tracer/mailbox pointers it re-wired (shards stay, owned
  // by the scenario, so rebound timers remain valid through teardown).
  ParallelSim(Scenario& scenario, const ParallelRunConfig& config);
  ~ParallelSim();

  ParallelSim(const ParallelSim&) = delete;
  ParallelSim& operator=(const ParallelSim&) = delete;

  // Runs the simulation to `end` (inclusive). Threaded when the partition
  // yielded more than one LP; a single LP runs sequentially on its shard.
  void run_until(sim::TimePoint end);

  int lp_count() const { return partition_.lp_count(); }
  bool parallel() const { return lp_count() > 1; }
  const Partition& partition() const { return partition_; }
  int lp_of(net::NodeId node) const { return partition_.lp_of(node); }
  // The shard owning `node`. Use for rebinding auxiliary timers
  // (LinkFlapper) before run_until.
  sim::Scheduler& shard_for(net::NodeId node);

  // Sweeps at every barrier (do not start() the checker's own timer in
  // parallel mode); also wires the external in-flight provider so packet
  // conservation balances while packets ride the mailboxes.
  void set_checker(validate::InvariantChecker* checker);

  // Cross-shard packets pushed but whose delivery has not yet executed.
  std::uint64_t external_in_flight() const;
  std::uint64_t windows() const { return windows_; }
  std::uint64_t exchanged() const { return exchanged_; }
  // Events fired across all shards (the parallel counterpart of the build
  // scheduler's processed_count()).
  std::uint64_t events_processed() const;
  // Aggregate batch-pump counters across the per-LP pumps (all zeros when
  // the scenario's network was built with hot-path batching off).
  net::LinkPump::Stats pump_stats() const;
  net::LinkPump::RunHistogram pump_histogram() const;

 private:
  // Buffers one LP's trace records with the merge key: the record, the
  // stamp of the event that emitted it, and a per-LP emission counter
  // ordering records within one event.
  class BufferSink final : public trace::TraceSink {
   public:
    struct Keyed {
      trace::Record rec;
      std::uint64_t stamp = 0;
      std::uint64_t idx = 0;
    };
    explicit BufferSink(sim::Scheduler& shard) : shard_(shard) {}
    void record(const trace::Record& record) override {
      buf_.push_back(Keyed{record, shard_.current_event_seq(), next_idx_++});
    }
    std::vector<Keyed>& buffer() { return buf_; }

   private:
    sim::Scheduler& shard_;
    std::vector<Keyed> buf_;
    std::uint64_t next_idx_ = 0;
  };

  struct Mailbox {
    net::CrossLinkChannel channel;
    net::Link* link = nullptr;
    net::Node* dst_node = nullptr;
    int dst_lp = 0;
  };

  std::uint64_t exchange();
  void at_barrier(sim::TimePoint h);
  void flush_traces();

  Scenario& scenario_;
  Partition partition_;
  std::vector<sim::Scheduler*> shards_;  // borrowed from scenario_.lp_scheds
  std::vector<std::shared_ptr<net::PacketPool>> pools_;
  // One batch pump per LP when the scenario's network was built batched
  // (empty otherwise). Links are re-pointed here from the network's own
  // pump and detached again in the destructor, before these die.
  std::vector<std::unique_ptr<net::LinkPump>> pumps_;
  std::vector<net::PacketPool::Ref> ref_scratch_;  // exchange() bulk alloc
  std::vector<std::unique_ptr<trace::Tracer>> lp_tracers_;
  std::vector<std::unique_ptr<BufferSink>> sinks_;  // empty when not tracing
  std::deque<Mailbox> mailboxes_;  // deque: links hold channel pointers
  std::vector<sim::ParallelEngine::CutEdge> cut_edges_;
  std::vector<BufferSink::Keyed> merge_;  // flush scratch
  validate::InvariantChecker* checker_ = nullptr;
  std::uint64_t windows_ = 0;
  std::uint64_t exchanged_ = 0;
  bool tracing_ = false;
};

}  // namespace tcppr::harness
