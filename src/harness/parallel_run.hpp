// Parallel execution harness: binds a built Scenario to the parallel
// engine (sim/parallel_engine.hpp) so one simulation runs across several
// scheduler shards and produces byte-identical results — conservatively,
// with bounded-optimism speculation, with adaptive mid-run repartitioning,
// or any combination.
//
// Responsibilities, in construction order:
//
//   1. Partition the topology into LPs (harness/partition.hpp). When no
//      positive-lookahead cut exists (lp_count() == 1) the scenario still
//      runs — on a single stamped shard, sequentially.
//   2. Create one Scheduler shard per LP (same backend as the scenario,
//      seq-stamping enabled: event ties break in the canonical
//      (schedule-time, owner node, op index) order, which is independent
//      of the partition — any LP count, 1 included, executes the identical
//      trajectory) and one PacketPool per LP (pools are not thread-safe;
//      packets never share a pool across shards).
//   3. Re-point every node, link, sender and receiver at its LP's shard,
//      pool and buffering tracer; cut links get a mailbox channel.
//   4. Adopt the scenario's build-time events (flow starts, fault
//      injections — Scenario::deferred): cancel on the build scheduler,
//      re-schedule into the owning shard. Afterwards the build scheduler
//      must be empty — a non-empty remainder means the scenario uses a
//      feature the parallel mode does not support (observability probes,
//      app-layer sources, short-flow generators) and the CHECK names the
//      misuse instead of silently diverging.
//
// During the run the exchange hook drains each mailbox — in deterministic
// order — into the destination link's injected-arrivals ring, which arms
// one replay-safe event per entry on the destination shard at the stamp
// minted on the source shard (exactly the op position the sequential
// delivery-schedule call occupies). Buffered trace records merge in
// (time, stamp, emission) order into the scenario's real tracer; only
// records below the barrier flush (later ones may still be speculative).
//
// Optimistic mode (DESIGN.md §4.10): when every shard's pending set is
// replay-safe, each barrier snapshots all LPs (scheduler checkpoint +
// StateIO byte-image of the LP's components) and runs a speculative
// window W past the safe horizon. settle() then finds straggler-hit LPs
// by a monotone fixpoint over commit keys and cut lookaheads, restores
// exactly those from snapshot (events regenerate from component state),
// retracts their unsent messages and delivers the rest. Commits are
// final; delivery stamps are partition- and speculation-independent, so
// the delivery hash cannot change.
//
// Adaptive mode: per-entity fired-event counts (stamp owner bits) are
// sampled at barriers; on sustained skew the greedy partitioner re-runs
// with the measured weights and the harness migrates shard contents —
// serialize everything in a partition-independent order, wipe the pending
// sets (clocks and stamp mints survive), rewire, deserialize so events
// regenerate into their new shards.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "harness/partition.hpp"
#include "harness/scenarios.hpp"
#include "net/link_pump.hpp"
#include "net/packet_pool.hpp"
#include "sim/parallel_engine.hpp"
#include "trace/trace.hpp"
#include "util/state_io.hpp"

namespace tcppr::validate {
class InvariantChecker;
}

namespace tcppr::obs {
class MetricRegistry;
}

namespace tcppr::harness {

struct ParallelRunConfig {
  int lps = 2;
  // Forwarded to the partitioner: links at or below this propagation
  // delay are never cut (zero-delay links never are, regardless).
  sim::Duration min_cut_lookahead = sim::Duration::zero();
  // Mid-run repartitioning against measured per-node event rates.
  bool adaptive = false;
  // Bounded-optimism speculation past the safe horizon.
  bool optimistic = false;
  // Speculation-depth policy (w_init/w_min/w_max/w_step); the optimistic
  // flag above is what actually arms it.
  sim::ParallelEngine::EngineConfig engine;
  // Adaptive policy: consider repartitioning at most once per `cooldown`
  // barriers, only after `min_events` measured fires, and only when the
  // busiest LP carries more than `skew` times the mean load (the
  // hysteresis band — balanced runs never migrate).
  double repartition_skew = 1.5;
  std::uint64_t repartition_cooldown = 64;
  std::uint64_t repartition_min_events = 20000;
  // Mutation self-test: force one speculative rollback and flip a bit of
  // a receiver's delivery checksum during the snapshot restore, proving
  // the validation layer sees through rollbacks.
  bool corrupt_snapshot_for_test = false;
};

class ParallelSim {
 public:
  // `scenario` must be fully built (flows added) and not yet run. The
  // ParallelSim borrows it and must be destroyed before it; destruction
  // restores the tracer/mailbox pointers it re-wired (shards stay, owned
  // by the scenario, so rebound timers remain valid through teardown).
  ParallelSim(Scenario& scenario, const ParallelRunConfig& config);
  ~ParallelSim();

  ParallelSim(const ParallelSim&) = delete;
  ParallelSim& operator=(const ParallelSim&) = delete;

  // Runs the simulation to `end` (inclusive). Threaded when the partition
  // yielded more than one LP; a single LP runs sequentially on its shard.
  void run_until(sim::TimePoint end);

  int lp_count() const { return partition_.lp_count(); }
  bool parallel() const { return lp_count() > 1; }
  const Partition& partition() const { return partition_; }
  int lp_of(net::NodeId node) const { return partition_.lp_of(node); }
  // The shard owning `node`. Use for rebinding auxiliary timers
  // (LinkFlapper) before run_until.
  sim::Scheduler& shard_for(net::NodeId node);

  // Sweeps at every barrier (do not start() the checker's own timer in
  // parallel mode); also wires the external in-flight provider so packet
  // conservation balances while packets ride the mailboxes and rings.
  void set_checker(validate::InvariantChecker* checker);

  // Cross-shard packets pushed but whose delivery has not yet executed:
  // mailbox residency plus injected-ring residency.
  std::uint64_t external_in_flight() const;
  std::uint64_t windows() const { return windows_; }
  std::uint64_t exchanged() const { return exchanged_; }
  // Optimism / adaptivity telemetry (aggregated over run_until calls).
  std::uint64_t spec_windows() const { return spec_windows_; }
  std::uint64_t rollback_windows() const { return rollback_windows_; }
  std::uint64_t rollbacks() const { return rollbacks_; }
  std::uint64_t repartitions() const { return repartitions_; }
  // Speculation depth after the last window (zero when never engaged).
  sim::Duration speculation_w() const { return last_w_; }

  // Per-LP barrier report (tcppr_sim --par prints this; the obs gauges
  // mirror it). `utilization` is the LP's executed-event share of the
  // busiest LP over the whole run — the window-utilization model of
  // DESIGN.md §4.10.
  struct LpReport {
    std::uint64_t events = 0;
    double utilization = 0.0;
    std::uint64_t cross_pushed = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t snapshot_bytes = 0;  // most recent snapshot, serialized
  };
  std::vector<LpReport> lp_reports() const;

  // Publishes the per-LP report as obs gauges (par.lp.* keyed by LP index
  // in the flow label, engine totals under par.*) at time `t`. One-shot:
  // call after run_until, with a sink attached to the registry.
  void publish_metrics(obs::MetricRegistry& registry, sim::TimePoint t) const;

  // Events fired across all shards (the parallel counterpart of the build
  // scheduler's processed_count()).
  std::uint64_t events_processed() const;
  // Aggregate batch-pump counters across the per-LP pumps (all zeros when
  // the scenario's network was built with hot-path batching off).
  net::LinkPump::Stats pump_stats() const;
  net::LinkPump::RunHistogram pump_histogram() const;

 private:
  // Buffers one LP's trace records with the merge key: the record, the
  // stamp of the event that emitted it, and a per-LP emission counter
  // ordering records within one event. Record times are nondecreasing per
  // sink (the shard clock is), so the barrier flush peels the prefix
  // below the horizon and a rollback truncates back to the snapshot mark.
  class BufferSink final : public trace::TraceSink {
   public:
    struct Keyed {
      trace::Record rec;
      std::uint64_t stamp = 0;
      std::uint64_t idx = 0;
    };
    explicit BufferSink(sim::Scheduler& shard) : shard_(shard) {}
    void record(const trace::Record& record) override {
      buf_.push_back(Keyed{record, shard_.current_event_seq(), next_idx_++});
    }
    std::vector<Keyed>& buffer() { return buf_; }
    std::uint64_t next_idx() const { return next_idx_; }
    void truncate(std::size_t len, std::uint64_t next_idx) {
      TCPPR_CHECK(len <= buf_.size());
      buf_.resize(len);
      next_idx_ = next_idx;
    }

   private:
    sim::Scheduler& shard_;
    std::vector<Keyed> buf_;
    std::uint64_t next_idx_ = 0;
  };

  struct Mailbox {
    net::CrossLinkChannel channel;
    net::Link* link = nullptr;
    net::Node* dst_node = nullptr;
    int src_lp = 0;
    int dst_lp = 0;
    // The cut's lookahead, captured at freeze time (prop delay may only
    // grow afterwards): the settle fixpoint's earliest-future-arrival
    // bound.
    sim::Duration lookahead = sim::Duration::zero();
  };

  // Everything a rollback needs to put one LP back to the barrier.
  struct LpSnapshot {
    sim::Scheduler::Checkpoint cp;
    std::vector<std::pair<std::int64_t, std::uint32_t>> stamp_slots;
    std::vector<unsigned char> bytes;
    std::size_t sink_len = 0;
    std::uint64_t sink_next_idx = 0;
  };

  std::uint64_t exchange();
  void at_barrier(sim::TimePoint h);
  // Flushes buffered records strictly below `below` (TimePoint::max() at
  // the end of the run flushes everything).
  void flush_traces(sim::TimePoint below);
  void build_mailboxes();
  void wire_partition();

  // --- bounded optimism --------------------------------------------------
  bool can_speculate() const;
  void snapshot_lp(int lp);
  void restore_lp(int lp);
  // One visitor drives both snapshot directions: every component whose
  // trajectory lives on LP `lp`, in a fixed order.
  void serialize_lp(int lp, util::StateIO& io);
  int settle(sim::TimePoint h, sim::TimePoint bound,
             const std::vector<sim::Scheduler::SpecResult>& res);

  // --- adaptive repartitioning -------------------------------------------
  bool maybe_repartition(std::vector<sim::ParallelEngine::CutEdge>& cuts);
  void migrate_to(Partition next);
  // Partition-independent whole-world visitor (migration transport).
  void serialize_world(util::StateIO& io);

  Scenario& scenario_;
  const ParallelRunConfig config_;
  Partition partition_;
  std::vector<sim::Scheduler*> shards_;  // borrowed from scenario_.lp_scheds
  std::vector<std::shared_ptr<net::PacketPool>> pools_;
  // One batch pump per LP when the scenario's network was built batched
  // (empty otherwise). Links are re-pointed here from the network's own
  // pump and detached again in the destructor, before these die.
  std::vector<std::unique_ptr<net::LinkPump>> pumps_;
  std::vector<std::unique_ptr<trace::Tracer>> lp_tracers_;
  std::vector<std::unique_ptr<BufferSink>> sinks_;  // empty when not tracing
  std::deque<Mailbox> mailboxes_;  // deque: links hold channel pointers
  std::vector<sim::ParallelEngine::CutEdge> cut_edges_;
  std::vector<BufferSink::Keyed> merge_;  // flush scratch
  validate::InvariantChecker* checker_ = nullptr;

  std::vector<LpSnapshot> snaps_;
  std::vector<char> rolled_;  // settle scratch
  std::vector<unsigned char> migrate_buf_;
  // Counters retired pumps hand over across a migration.
  net::LinkPump::Stats pump_stats_carry_{};
  net::LinkPump::RunHistogram pump_hist_carry_{};

  // Per-LP report counters.
  std::vector<std::uint64_t> lp_events_;
  std::vector<std::uint64_t> lp_prev_processed_;
  std::vector<std::uint64_t> lp_rollbacks_;
  std::vector<std::uint64_t> lp_snapshot_bytes_;
  // Cross-LP pushes retired mailboxes hand over across a migration.
  std::vector<std::uint64_t> lp_cross_carry_;

  sim::TimePoint last_barrier_;
  std::uint64_t windows_since_repart_ = 0;
  bool corruption_done_ = false;  // corrupt_snapshot_for_test fired once

  std::uint64_t windows_ = 0;
  std::uint64_t exchanged_ = 0;
  std::uint64_t spec_windows_ = 0;
  std::uint64_t rollback_windows_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t repartitions_ = 0;
  sim::Duration last_w_ = sim::Duration::zero();
  bool tracing_ = false;
};

}  // namespace tcppr::harness
