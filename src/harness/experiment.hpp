// Experiment runner: executes a Scenario for a warm-up plus measurement
// window and extracts per-flow throughput and summary metrics, exactly the
// quantities the paper plots (throughput over the last 60 s, normalized
// throughput, mean normalized throughput per protocol, CoV).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/scenarios.hpp"
#include "stats/metrics.hpp"

namespace tcppr::harness {

class ParallelSim;

struct MeasurementWindow {
  sim::Duration total = sim::Duration::seconds(160);
  sim::Duration measured = sim::Duration::seconds(60);  // trailing window
};

struct FlowResult {
  TcpVariant variant;
  net::FlowId flow = net::kInvalidFlow;
  double throughput_bps = 0;  // new data acked in the measurement window
  double goodput_bps = 0;     // receiver in-order delivery, same window
  tcp::SenderStats sender;    // cumulative over the whole run
  tcp::ReceiverStats receiver;
};

struct RunResult {
  std::vector<FlowResult> flows;
  double measure_seconds = 0;
  double loss_rate = 0;        // bottleneck queues, whole run
  std::uint64_t events = 0;    // scheduler events processed

  std::vector<double> throughputs() const;
  // Per-flow normalized throughput T_i (Section 4).
  std::vector<double> normalized() const;
  // Mean normalized throughput of flows with the given variant.
  double mean_normalized(TcpVariant variant) const;
  // Coefficient of variation of T_i over flows of the given variant.
  double cov(TcpVariant variant) const;
  int count(TcpVariant variant) const;
};

// Runs the scenario to window.total, measuring the trailing
// window.measured seconds. When `psim` is non-null the simulation runs
// through the parallel harness (which must wrap this very scenario);
// results are byte-identical either way.
RunResult run_scenario(Scenario& scenario, const MeasurementWindow& window,
                       ParallelSim* psim = nullptr);

// One Figure 6 cell: single flow over the multi-path mesh; returns the
// measured goodput in bps.
struct MultipathCell {
  TcpVariant variant;
  double epsilon = 0;
  double goodput_bps = 0;
  double throughput_bps = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t spurious = 0;
  double loss_rate = 0;
};
// `on_built` (optional) runs after the scenario is constructed and before
// the simulation starts — the hook for attach_observability and trace
// sinks, which must outlive the run.
MultipathCell run_multipath_cell(
    const MultipathConfig& config, const MeasurementWindow& window,
    const std::function<void(Scenario&)>& on_built = nullptr);

}  // namespace tcppr::harness
