#include "harness/short_flows.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace tcppr::harness {

ShortFlowPool::ShortFlowPool(net::Network& network, net::NodeId src,
                             net::NodeId dst, Config config)
    : network_(network),
      src_(src),
      dst_(dst),
      config_(config),
      rng_(config.seed),
      arrival_timer_(network.scheduler()),
      next_flow_(config.first_flow_id) {
  TCPPR_CHECK(config_.mean_interarrival_s > 0);
  TCPPR_CHECK(config_.min_segments >= 1);
  TCPPR_CHECK(config_.max_segments >= config_.min_segments);
  TCPPR_CHECK(config_.max_concurrent > 0);
}

ShortFlowPool::~ShortFlowPool() { stop(); }

void ShortFlowPool::start() {
  TCPPR_CHECK(!running_);
  running_ = true;
  arrival_timer_.schedule_in(
      sim::Duration::seconds(rng_.exponential(config_.mean_interarrival_s)),
      [this] { spawn(); });
}

void ShortFlowPool::stop() {
  running_ = false;
  arrival_timer_.cancel();
  active_.clear();
}

double ShortFlowPool::mean_completion_time() const {
  if (durations_.empty()) return 0;
  double sum = 0;
  for (const double d : durations_) sum += d;
  return sum / static_cast<double>(durations_.size());
}

void ShortFlowPool::spawn() {
  if (!running_) return;
  if (static_cast<int>(active_.size()) < config_.max_concurrent) {
    const net::FlowId flow = next_flow_++;
    // Log-uniform size in [min, max]: many mice, occasional bigger fish.
    const double log_min =
        std::log(static_cast<double>(config_.min_segments));
    const double log_max =
        std::log(static_cast<double>(config_.max_segments) + 1.0);
    const auto segments = static_cast<net::SeqNo>(
        std::exp(rng_.uniform(log_min, log_max)));

    ActiveFlow entry;
    tcp::ReceiverConfig rc;
    rc.segment_bytes = config_.tcp.segment_bytes;
    entry.receiver = std::make_unique<tcp::Receiver>(network_, dst_, src_,
                                                     flow, rc);
    entry.sender = make_sender(config_.variant, network_, src_, dst_, flow,
                               config_.tcp, config_.pr);
    entry.sender->set_data_source(
        std::make_unique<tcp::FixedDataSource>(segments));
    entry.sender->set_completion_callback([this, flow] {
      // Defer teardown: we are inside the sender's own ACK processing. The
      // sentinel keeps a pool destroyed before the event fires safe.
      network_.scheduler().schedule_in(
          sim::Duration::zero(),
          [this, flow, alive = std::weak_ptr<int>(alive_)] {
            if (alive.expired()) return;
            finish(flow);
          });
    });
    entry.started_at = network_.scheduler().now();
    entry.sender->start();
    active_.emplace(flow, std::move(entry));
    ++started_;
  }
  arrival_timer_.schedule_in(
      sim::Duration::seconds(rng_.exponential(config_.mean_interarrival_s)),
      [this] { spawn(); });
}

void ShortFlowPool::finish(net::FlowId flow) {
  const auto it = active_.find(flow);
  if (it == active_.end()) return;
  durations_.push_back(
      (network_.scheduler().now() - it->second.started_at).as_seconds());
  ++completed_;
  active_.erase(it);
}

}  // namespace tcppr::harness
