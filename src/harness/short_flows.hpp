// Short-flow ("web mice") workload generator: a Poisson stream of
// fixed-or-sampled-size TCP transfers between two hosts. Used as
// background traffic and to measure flow completion times, the metric
// short transfers care about (a reordering-robust sender matters even for
// mice — a spurious retransmission can double a short flow's lifetime).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "harness/scenarios.hpp"

namespace tcppr::harness {

class ShortFlowPool {
 public:
  struct Config {
    TcpVariant variant = TcpVariant::kSack;
    double mean_interarrival_s = 0.5;
    net::SeqNo min_segments = 5;
    net::SeqNo max_segments = 50;  // sampled log-uniform in [min, max]
    net::FlowId first_flow_id = 1000;
    int max_concurrent = 256;
    tcp::TcpConfig tcp;
    core::TcpPrConfig pr;
    std::uint64_t seed = 1;
  };

  ShortFlowPool(net::Network& network, net::NodeId src, net::NodeId dst,
                Config config);
  ~ShortFlowPool();

  void start();
  void stop();

  std::uint64_t flows_started() const { return started_; }
  std::uint64_t flows_completed() const { return completed_; }
  std::size_t flows_active() const { return active_.size(); }
  // Completion times (seconds) of finished flows.
  const std::vector<double>& completion_times() const { return durations_; }
  double mean_completion_time() const;

 private:
  struct ActiveFlow {
    std::unique_ptr<tcp::Receiver> receiver;
    std::unique_ptr<tcp::SenderBase> sender;
    sim::TimePoint started_at;
  };

  void spawn();
  void finish(net::FlowId flow);

  net::Network& network_;
  net::NodeId src_;
  net::NodeId dst_;
  Config config_;
  // Liveness sentinel for the deferred per-flow teardown events: a
  // completion callback schedules finish() through a zero-delay event, and
  // a pool destroyed in that window must not have the scheduler fire into
  // freed memory. The event captures a weak_ptr to this token and bails
  // once it has expired (cheaper and simpler than tracking + cancelling
  // every pending teardown id).
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  sim::Rng rng_;
  sim::Timer arrival_timer_;
  bool running_ = false;
  net::FlowId next_flow_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::map<net::FlowId, ActiveFlow> active_;
  std::vector<double> durations_;
};

}  // namespace tcppr::harness
