#include "harness/parallel.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace tcppr::harness {

void parallel_for(int jobs, int count, const std::function<void(int)>& fn) {
  TCPPR_CHECK(count >= 0);
  TCPPR_CHECK(fn != nullptr);
  if (count == 0) return;
  const int workers = std::min(jobs, count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  // Dynamic dispatch over an atomic cursor: cells vary wildly in cost
  // (long-delay multipath cells simulate 200 s, quick cells 60 s), so a
  // static partition would leave workers idle at the tail.
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace tcppr::harness
