#include "harness/parallel_run.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "net/node.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"
#include "validate/invariants.hpp"

namespace tcppr::harness {

namespace {

PartitionConfig make_partition_config(const Scenario& scenario,
                                      const ParallelRunConfig& config) {
  PartitionConfig pc;
  pc.target_lps = config.lps;
  pc.min_cut_lookahead = config.min_cut_lookahead;
  // Flow endpoints dominate the event rate (per-packet sender/receiver
  // work plus their access-link hops); weight them well above relays so
  // LPT packs hosts apart before balancing routers.
  pc.node_extra_weight.assign(
      static_cast<std::size_t>(scenario.network.node_count()), 0.0);
  const auto add = [&pc](net::NodeId v) {
    pc.node_extra_weight[static_cast<std::size_t>(v)] += 8.0;
  };
  for (const auto& s : scenario.senders) add(s->local_node());
  for (const auto& s : scenario.cross_senders) add(s->local_node());
  for (const auto& r : scenario.receivers) add(r->local_node());
  for (const auto& r : scenario.cross_receivers) add(r->local_node());
  return pc;
}

}  // namespace

ParallelSim::ParallelSim(Scenario& scenario, const ParallelRunConfig& config)
    : scenario_(scenario),
      config_(config),
      partition_(scenario.network, make_partition_config(scenario, config)) {
  // Even when the partition degenerates to one LP the scenario still runs
  // on a stamped shard: stamp order is partition-independent, so digests
  // from any requested LP count (including 1) are directly comparable.
  const int k = lp_count();
  TCPPR_CHECK(scenario_.lp_scheds.empty());
  net::Network& nw = scenario_.network;
  TCPPR_CHECK(nw.node_count() <=
              (1 << sim::Scheduler::kStampEntityBits));
  tracing_ = nw.tracer().active();
  for (int lp = 0; lp < k; ++lp) {
    scenario_.lp_scheds.push_back(
        std::make_unique<sim::Scheduler>(scenario_.backend));
    sim::Scheduler* shard = scenario_.lp_scheds.back().get();
    shard->enable_seq_stamping();
    if (config_.adaptive) shard->enable_entity_fire_counts();
    shards_.push_back(shard);
    pools_.push_back(net::PacketPool::create());
    if (nw.pump() != nullptr) {
      pumps_.push_back(std::make_unique<net::LinkPump>(*shard));
    }
    lp_tracers_.push_back(std::make_unique<trace::Tracer>());
    if (tracing_) {
      sinks_.push_back(std::make_unique<BufferSink>(*shard));
      lp_tracers_.back()->add_sink(sinks_.back().get());
    }
  }
  snaps_.resize(static_cast<std::size_t>(k));
  rolled_.assign(static_cast<std::size_t>(k), 0);
  lp_events_.assign(static_cast<std::size_t>(k), 0);
  lp_prev_processed_.assign(static_cast<std::size_t>(k), 0);
  lp_rollbacks_.assign(static_cast<std::size_t>(k), 0);
  lp_snapshot_bytes_.assign(static_cast<std::size_t>(k), 0);
  lp_cross_carry_.assign(static_cast<std::size_t>(k), 0);

  wire_partition();

  for (const auto& s : scenario_.senders) {
    s->rebind_scheduler(shard_for(s->local_node()));
  }
  for (const auto& s : scenario_.cross_senders) {
    s->rebind_scheduler(shard_for(s->local_node()));
  }
  for (const auto& r : scenario_.receivers) {
    r->rebind_scheduler(shard_for(r->local_node()));
  }
  for (const auto& r : scenario_.cross_receivers) {
    r->rebind_scheduler(shard_for(r->local_node()));
  }

  // Adopt the build-time events. Their stamps are a plain build-order
  // counter in the reserved pre-run range below every runtime stamp (the
  // scheduler's +1 time shift — see enable_seq_stamping), so same-time
  // ties against runtime events resolve exactly as the sequential
  // scheduler's insertion order did: build-time events first, in build
  // order — identically on every LP count.
  std::uint64_t adopt_seq = 0;
  for (const auto& d : scenario_.deferred) {
    scenario_.sched.cancel(d.id);
    shard_for(d.affinity).schedule_at_stamped(d.at, adopt_seq++, d.fn);
  }
  TCPPR_CHECK(adopt_seq < (std::uint64_t{1}
                           << (sim::Scheduler::kStampOpBits +
                               sim::Scheduler::kStampEntityBits)));
  // Anything left on the build scheduler was scheduled outside
  // Scenario::schedule_action and would silently never run: the scenario
  // uses a feature the parallel mode does not support (observability
  // probes, app-layer sources, short-flow generators).
  TCPPR_CHECK(scenario_.sched.pending_count() == 0);
}

ParallelSim::~ParallelSim() {
  net::Network& nw = scenario_.network;
  for (Mailbox& mb : mailboxes_) mb.link->set_remote_channel(nullptr);
  for (int v = 0; v < nw.node_count(); ++v) {
    nw.node(static_cast<net::NodeId>(v))
        .set_tracer(&nw.tracer(), &scenario_.sched);
  }
  for (const auto& link : nw.links()) {
    link->set_tracer(&nw.tracer());
    // Drop any batched in-flight state before the per-LP pumps die; the
    // links keep their shard schedulers (like the timers), so re-pointing
    // them at the network's build-scheduler pump would be wrong.
    if (!pumps_.empty()) link->detach_pump();
  }
}

void ParallelSim::wire_partition() {
  // Construction-time wiring: links are idle, so the checked setters
  // apply. (Migration re-wiring uses the rebind_for_migration variants —
  // state restore puts the in-flight traffic back afterwards.)
  net::Network& nw = scenario_.network;
  for (int v = 0; v < nw.node_count(); ++v) {
    const int lp = lp_of(static_cast<net::NodeId>(v));
    nw.node(static_cast<net::NodeId>(v))
        .set_tracer(lp_tracers_[static_cast<std::size_t>(lp)].get(),
                    shards_[static_cast<std::size_t>(lp)]);
  }
  // A link's queue/transmit/propagation events all run on its *source*
  // LP; only the final delivery may cross (mailbox + injected ring armed
  // on the destination shard, with the destination LP's pool).
  for (const auto& link : nw.links()) {
    const int lp = lp_of(link->from());
    const int dst = lp_of(link->to());
    link->set_scheduler(*shards_[static_cast<std::size_t>(lp)]);
    link->set_packet_pool(pools_[static_cast<std::size_t>(lp)]);
    link->set_tracer(lp_tracers_[static_cast<std::size_t>(lp)].get());
    link->set_injection_scheduler(shards_[static_cast<std::size_t>(dst)],
                                  pools_[static_cast<std::size_t>(dst)]);
    if (!pumps_.empty()) {
      link->set_pump(pumps_[static_cast<std::size_t>(lp)].get());
    }
  }
  build_mailboxes();
}

void ParallelSim::build_mailboxes() {
  for (net::Link* cut : partition_.cut_links()) {
    mailboxes_.emplace_back();
    Mailbox& mb = mailboxes_.back();
    mb.link = cut;
    mb.dst_node = &scenario_.network.node(cut->to());
    mb.src_lp = lp_of(cut->from());
    mb.dst_lp = lp_of(cut->to());
    mb.lookahead = cut->prop_delay();
    cut->set_remote_channel(&mb.channel);
    cut_edges_.push_back(
        sim::ParallelEngine::CutEdge{mb.src_lp, mb.lookahead});
  }
}

sim::Scheduler& ParallelSim::shard_for(net::NodeId node) {
  return *shards_[static_cast<std::size_t>(lp_of(node))];
}

void ParallelSim::set_checker(validate::InvariantChecker* checker) {
  checker_ = checker;
  if (checker_ != nullptr) {
    checker_->set_external_in_flight([this] { return external_in_flight(); });
  }
}

net::LinkPump::Stats ParallelSim::pump_stats() const {
  net::LinkPump::Stats total = pump_stats_carry_;
  for (const auto& pump : pumps_) {
    const net::LinkPump::Stats& s = pump->stats();
    total.events += s.events;
    total.ops += s.ops;
    total.delivery_runs += s.delivery_runs;
    total.delivered_in_runs += s.delivered_in_runs;
  }
  return total;
}

net::LinkPump::RunHistogram ParallelSim::pump_histogram() const {
  net::LinkPump::RunHistogram total = pump_hist_carry_;
  for (const auto& pump : pumps_) {
    const net::LinkPump::RunHistogram h = pump->aggregate_histogram();
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += h[i];
  }
  return total;
}

std::uint64_t ParallelSim::events_processed() const {
  std::uint64_t total = 0;
  for (const sim::Scheduler* s : shards_) total += s->processed_count();
  return total;
}

std::uint64_t ParallelSim::external_in_flight() const {
  std::uint64_t total = 0;
  for (const Mailbox& mb : mailboxes_) {
    total += mb.channel.pushed - mb.channel.executed;
  }
  for (const auto& link : scenario_.network.links()) {
    total += link->injected_pending();
  }
  return total;
}

std::vector<ParallelSim::LpReport> ParallelSim::lp_reports() const {
  std::vector<LpReport> out(shards_.size());
  std::uint64_t busiest = 0;
  for (const std::uint64_t e : lp_events_) busiest = std::max(busiest, e);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].events = lp_events_[i];
    out[i].utilization =
        busiest > 0 ? static_cast<double>(lp_events_[i]) /
                          static_cast<double>(busiest)
                    : 0.0;
    out[i].cross_pushed = lp_cross_carry_[i];
    out[i].rollbacks = lp_rollbacks_[i];
    out[i].snapshot_bytes = lp_snapshot_bytes_[i];
  }
  for (const Mailbox& mb : mailboxes_) {
    out[static_cast<std::size_t>(mb.src_lp)].cross_pushed +=
        mb.channel.pushed;
  }
  return out;
}

void ParallelSim::publish_metrics(obs::MetricRegistry& registry,
                                  sim::TimePoint t) const {
  const auto gauge = [&](const char* name) {
    return registry.intern(name, obs::MetricKind::kGauge);
  };
  const obs::MetricId lp_events = gauge("par.lp.events");
  const obs::MetricId lp_util = gauge("par.lp.utilization");
  const obs::MetricId lp_cross = gauge("par.lp.cross_pushed");
  const obs::MetricId lp_rb = gauge("par.lp.rollbacks");
  const obs::MetricId lp_snap = gauge("par.lp.snapshot_bytes");
  const auto reports = lp_reports();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    // The flow label carries the LP index: one labeled series per LP, the
    // same trick the per-flow probes use.
    const auto lp = static_cast<net::FlowId>(i);
    registry.set(t, lp_events, lp, static_cast<double>(reports[i].events));
    registry.set(t, lp_util, lp, reports[i].utilization);
    registry.set(t, lp_cross, lp,
                 static_cast<double>(reports[i].cross_pushed));
    registry.set(t, lp_rb, lp, static_cast<double>(reports[i].rollbacks));
    registry.set(t, lp_snap, lp,
                 static_cast<double>(reports[i].snapshot_bytes));
  }
  registry.set(t, gauge("par.windows"), net::kInvalidFlow,
               static_cast<double>(windows_));
  registry.set(t, gauge("par.spec_windows"), net::kInvalidFlow,
               static_cast<double>(spec_windows_));
  registry.set(t, gauge("par.rollback_windows"), net::kInvalidFlow,
               static_cast<double>(rollback_windows_));
  registry.set(t, gauge("par.rollbacks"), net::kInvalidFlow,
               static_cast<double>(rollbacks_));
  registry.set(t, gauge("par.repartitions"), net::kInvalidFlow,
               static_cast<double>(repartitions_));
  registry.set(t, gauge("par.speculation_w_us"), net::kInvalidFlow,
               static_cast<double>(last_w_.as_nanos()) / 1e3);
}

void ParallelSim::run_until(sim::TimePoint end) {
  sim::ParallelEngine::EngineConfig ec = config_.engine;
  ec.optimistic = config_.optimistic;
  sim::ParallelEngine::Hooks hooks;
  hooks.exchange = [this] { return exchange(); };
  hooks.external_backlog = [this] { return external_in_flight(); };
  hooks.at_barrier = [this](sim::TimePoint h) { at_barrier(h); };
  if (config_.adaptive) {
    hooks.maybe_repartition =
        [this](std::vector<sim::ParallelEngine::CutEdge>& cuts) {
          return maybe_repartition(cuts);
        };
  }
  if (config_.optimistic) {
    hooks.can_speculate = [this] { return can_speculate(); };
    hooks.snapshot = [this](int lp) { snapshot_lp(lp); };
    hooks.settle = [this](sim::TimePoint h, sim::TimePoint bound,
                          const std::vector<sim::Scheduler::SpecResult>& res) {
      return settle(h, bound, res);
    };
  }
  sim::ParallelEngine engine(shards_, cut_edges_, std::move(hooks), ec);
  engine.run_until(end);
  windows_ += engine.windows();
  exchanged_ += engine.exchanged();
  spec_windows_ += engine.spec_windows();
  rollback_windows_ += engine.rollback_windows();
  rollbacks_ += engine.rollbacks();
  repartitions_ += engine.repartitions();
  if (config_.optimistic) last_w_ = engine.current_w();
  if (tracing_) flush_traces(sim::TimePoint::max());
}

std::uint64_t ParallelSim::exchange() {
  std::uint64_t injected = 0;
  // Deterministic drain order (mailbox creation order, push order within
  // one mailbox); final ordering comes from the stamps, not this loop.
  for (Mailbox& mb : mailboxes_) {
    auto& buf = mb.channel.buf;
    if (buf.empty()) continue;
    for (net::CrossLinkMsg& msg : buf) {
      // The ring entry arms one replay-safe event on the destination
      // shard at the stamp minted on the source shard — exactly the op
      // position the sequential delivery-schedule call occupies.
      mb.link->queue_injected(msg.at, msg.stamp, std::move(msg.pkt));
      ++mb.channel.executed;
      ++injected;
    }
    buf.clear();
  }
  return injected;
}

void ParallelSim::at_barrier(sim::TimePoint h) {
  last_barrier_ = h;
  // Committed per-LP event deltas (speculative events only show up once
  // committed — a rolled-back leg restores processed_count below the next
  // sample, never below the previous one).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t p = shards_[i]->processed_count();
    lp_events_[i] += p - lp_prev_processed_[i];
    lp_prev_processed_[i] = p;
  }
  if (tracing_) flush_traces(h);
  // Advance the (empty) build scheduler's clock so wall-clock readers —
  // violation timestamps, stats printed mid-run — see the barrier time.
  scenario_.sched.run_until(h);
  if (checker_ != nullptr) checker_->check_now();
}

void ParallelSim::flush_traces(sim::TimePoint below) {
  merge_.clear();
  for (auto& sink : sinks_) {
    auto& buf = sink->buffer();
    // Record times are nondecreasing per sink, so the committed region is
    // a prefix: everything below the barrier is final (every shard has
    // executed past it), everything at or after may still roll back.
    const auto split = std::partition_point(
        buf.begin(), buf.end(), [below](const BufferSink::Keyed& k) {
          return k.rec.time < below;
        });
    if (split == buf.begin()) continue;
    merge_.insert(merge_.end(), std::make_move_iterator(buf.begin()),
                  std::make_move_iterator(split));
    buf.erase(buf.begin(), split);
  }
  std::sort(merge_.begin(), merge_.end(),
            [](const BufferSink::Keyed& a, const BufferSink::Keyed& b) {
              if (a.rec.time < b.rec.time) return true;
              if (b.rec.time < a.rec.time) return false;
              if (a.stamp != b.stamp) return a.stamp < b.stamp;
              return a.idx < b.idx;
            });
  trace::Tracer& root = scenario_.network.tracer();
  for (const BufferSink::Keyed& k : merge_) root.dispatch(k.rec);
}

// --- bounded optimism ------------------------------------------------------

bool ParallelSim::can_speculate() const {
  // Telemetry taps observe deliveries as they execute and keep windowed
  // aggregates that cannot be rolled back; sit speculation out entirely
  // when any link carries one.
  for (const auto& link : scenario_.network.links()) {
    if (link->has_telemetry_tap()) return false;
  }
  for (const sim::Scheduler* s : shards_) {
    if (!s->all_pending_replay_safe()) return false;
  }
  return true;
}

void ParallelSim::serialize_lp(int lp, util::StateIO& io) {
  // One fixed visitation order drives both directions. Everything whose
  // trajectory executes on LP `lp`: its nodes, the links it sources, the
  // injected rings it receives, its endpoint agents, its pump, and the
  // push counters of the mailboxes it feeds.
  net::Network& nw = scenario_.network;
  for (int v = 0; v < nw.node_count(); ++v) {
    if (lp_of(static_cast<net::NodeId>(v)) != lp) continue;
    nw.node(static_cast<net::NodeId>(v)).state(io);
  }
  for (const auto& link : nw.links()) {
    if (lp_of(link->from()) == lp) link->state(io);
  }
  for (const auto& link : nw.links()) {
    if (lp_of(link->to()) == lp) link->injected_state(io);
  }
  for (const auto& s : scenario_.senders) {
    if (lp_of(s->local_node()) == lp) s->state(io);
  }
  for (const auto& s : scenario_.cross_senders) {
    if (lp_of(s->local_node()) == lp) s->state(io);
  }
  for (const auto& r : scenario_.receivers) {
    if (lp_of(r->local_node()) == lp) r->state(io);
  }
  for (const auto& r : scenario_.cross_receivers) {
    if (lp_of(r->local_node()) == lp) r->state(io);
  }
  if (!pumps_.empty()) pumps_[static_cast<std::size_t>(lp)]->state(io);
  for (Mailbox& mb : mailboxes_) {
    // Only `pushed` travels: `executed` is a barrier-only counter (the
    // snapshot is taken right after an exchange, when the two agree), and
    // a retraction clears the buffer rather than rewinding it.
    if (mb.src_lp == lp) io.pod(mb.channel.pushed);
  }
}

void ParallelSim::snapshot_lp(int lp) {
  LpSnapshot& s = snaps_[static_cast<std::size_t>(lp)];
  shards_[static_cast<std::size_t>(lp)]->checkpoint(s.cp, s.stamp_slots);
  util::StateIO io(s.bytes, /*saving=*/true);
  serialize_lp(lp, io);
  if (tracing_) {
    s.sink_len = sinks_[static_cast<std::size_t>(lp)]->buffer().size();
    s.sink_next_idx = sinks_[static_cast<std::size_t>(lp)]->next_idx();
  }
  lp_snapshot_bytes_[static_cast<std::size_t>(lp)] = s.bytes.size();
}

void ParallelSim::restore_lp(int lp) {
  LpSnapshot& s = snaps_[static_cast<std::size_t>(lp)];
  // Scheduler first: every pending event dies and the stamp mints rewind,
  // then the component restore re-seats the regenerable events (timer
  // shots, pump carrier, ring pops) against the restored clock.
  shards_[static_cast<std::size_t>(lp)]->restore(s.cp, s.stamp_slots);
  util::StateIO io(s.bytes, /*saving=*/false);
  serialize_lp(lp, io);
  TCPPR_CHECK(io.done());
  if (!pumps_.empty()) {
    pumps_[static_cast<std::size_t>(lp)]->reseed_after_restore();
  }
  if (tracing_) {
    sinks_[static_cast<std::size_t>(lp)]->truncate(s.sink_len,
                                                   s.sink_next_idx);
  }
  ++lp_rollbacks_[static_cast<std::size_t>(lp)];
  if (config_.corrupt_snapshot_for_test && !corruption_done_) {
    for (const auto& r : scenario_.receivers) {
      if (lp_of(r->local_node()) == lp && r->delivery_validation_enabled()) {
        r->corrupt_delivered_hash_for_test();
        corruption_done_ = true;
        break;
      }
    }
  }
}

int ParallelSim::settle(sim::TimePoint h, sim::TimePoint bound,
                        const std::vector<sim::Scheduler::SpecResult>& res) {
  (void)bound;
  const std::size_t n = shards_.size();
  // Commit key per LP: the furthest event it executed speculatively, or
  // (h, 0) when it had nothing past the horizon. An (h, 0) LP can never
  // be straggler-hit — every cross arrival lands at >= h + lookahead.
  struct Key {
    sim::TimePoint t;
    std::uint64_t seq = 0;
  };
  std::vector<Key> commit(n);
  for (std::size_t i = 0; i < n; ++i) {
    commit[i] =
        res[i].events > 0 ? Key{res[i].last_time, res[i].last_seq} : Key{h, 0};
  }
  rolled_.assign(n, 0);
  if (config_.corrupt_snapshot_for_test && !corruption_done_) {
    // Mutation self-test: claim the LP hosting the first validating
    // receiver as straggler-hit. Restoring an unrolled snapshot is a
    // semantic no-op — except for the checksum bit restore_lp flips,
    // which the validation layer must catch.
    for (const auto& r : scenario_.receivers) {
      if (r->delivery_validation_enabled()) {
        rolled_[static_cast<std::size_t>(lp_of(r->local_node()))] = 1;
        break;
      }
    }
  }
  // Earliest possible future activity per LP. An unrolled LP executed
  // everything below the bound, so only a message delivered at this
  // settle can re-activate it earlier; any buffered message lowers its
  // destination's bound (even one whose source ends up rolled — the
  // over-approximation can only roll more LPs, which is sound, never
  // fewer). A rolled LP replays from h.
  std::vector<sim::TimePoint> earliest(n, bound);
  for (const Mailbox& mb : mailboxes_) {
    for (const net::CrossLinkMsg& m : mb.channel.buf) {
      const auto dst = static_cast<std::size_t>(mb.dst_lp);
      if (m.at < earliest[dst]) earliest[dst] = m.at;
    }
  }
  // Monotone fixpoint: once an LP rolls it stays rolled, so each pass can
  // only add members and the loop terminates after at most n sweeps.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Mailbox& mb : mailboxes_) {
      const auto src = static_cast<std::size_t>(mb.src_lp);
      const auto dst = static_cast<std::size_t>(mb.dst_lp);
      if (rolled_[dst] != 0) continue;
      // Anything the source may still send arrives at or after its
      // earliest future activity plus the cut's lookahead; roll the
      // destination if it committed into that reachable future.
      const sim::TimePoint src_from =
          rolled_[src] != 0 ? h : earliest[src];
      bool hit = commit[dst].t >= src_from + mb.lookahead;
      if (rolled_[src] == 0) {
        // A message the source already sent may have landed in the
        // destination's committed past (a straggler).
        for (const net::CrossLinkMsg& m : mb.channel.buf) {
          if (hit) break;
          hit = m.at < commit[dst].t ||
                (m.at == commit[dst].t && m.stamp <= commit[dst].seq);
        }
      }
      if (hit) {
        rolled_[dst] = 1;
        changed = true;
      }
    }
  }
  int n_rolled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rolled_[i] != 0) {
      restore_lp(static_cast<int>(i));
      ++n_rolled;
    }
  }
  // Mailbox resolution: retract everything a rolled source sent (its
  // pushed counter rewound with its snapshot; the replay re-mints
  // byte-identical messages at the same stamps), deliver the rest. A
  // rolled destination sits at its snapshot clock <= h <= arrival; an
  // unrolled one at its commit time, below every surviving key.
  for (Mailbox& mb : mailboxes_) {
    auto& buf = mb.channel.buf;
    if (buf.empty()) continue;
    if (rolled_[static_cast<std::size_t>(mb.src_lp)] != 0) {
      buf.clear();
      continue;
    }
    for (net::CrossLinkMsg& m : buf) {
      mb.link->queue_injected(m.at, m.stamp, std::move(m.pkt));
      ++mb.channel.executed;
    }
    buf.clear();
  }
  return n_rolled;
}

// --- adaptive repartitioning -----------------------------------------------

bool ParallelSim::maybe_repartition(
    std::vector<sim::ParallelEngine::CutEdge>& cuts) {
  ++windows_since_repart_;
  if (windows_since_repart_ < config_.repartition_cooldown) return false;
  for (const sim::Scheduler* s : shards_) {
    // Migration re-seats every pending event from component state, so all
    // of them must be regenerable; and no shard clock may sit past the
    // barrier (committed speculation parks clocks ahead — re-homing a
    // component into such a shard's past would be illegal).
    if (!s->all_pending_replay_safe()) return false;
    if (s->now() > last_barrier_) return false;
  }
  net::Network& nw = scenario_.network;
  std::vector<double> weights(static_cast<std::size_t>(nw.node_count()), 0.0);
  double total = 0.0;
  for (const sim::Scheduler* s : shards_) {
    const std::vector<std::uint64_t>& fires = s->entity_fires();
    const std::size_t lim = std::min(fires.size(), weights.size());
    for (std::size_t v = 0; v < lim; ++v) {
      weights[v] += static_cast<double>(fires[v]);
      total += static_cast<double>(fires[v]);
    }
  }
  if (total < static_cast<double>(config_.repartition_min_events)) {
    return false;
  }
  const auto reset = [this] {
    for (sim::Scheduler* s : shards_) s->reset_entity_fires();
    windows_since_repart_ = 0;
  };
  std::vector<double> lp_load(shards_.size(), 0.0);
  for (int v = 0; v < nw.node_count(); ++v) {
    lp_load[static_cast<std::size_t>(lp_of(static_cast<net::NodeId>(v)))] +=
        weights[static_cast<std::size_t>(v)];
  }
  const double mean = total / static_cast<double>(shards_.size());
  const double busiest = *std::max_element(lp_load.begin(), lp_load.end());
  if (busiest <= config_.repartition_skew * mean) {
    // Inside the hysteresis band: balanced enough, keep the assignment
    // and restart the measurement window.
    reset();
    return false;
  }
  PartitionConfig pc;
  // Never ask for more LPs than we allocated shards for: a re-run of the
  // partitioner can only reuse the existing shard set.
  pc.target_lps = static_cast<int>(shards_.size());
  pc.min_cut_lookahead = config_.min_cut_lookahead;
  pc.node_extra_weight = std::move(weights);
  Partition next(nw, pc);
  bool same = next.lp_count() == partition_.lp_count();
  for (int v = 0; same && v < nw.node_count(); ++v) {
    same = next.lp_of(static_cast<net::NodeId>(v)) ==
           lp_of(static_cast<net::NodeId>(v));
  }
  if (same) {
    reset();
    return false;
  }
  migrate_to(std::move(next));
  cuts = cut_edges_;
  reset();
  return true;
}

void ParallelSim::serialize_world(util::StateIO& io) {
  // Partition-independent order (node id, network link order, scenario
  // agent order): the byte image written under the old assignment reads
  // back identically under the new one.
  net::Network& nw = scenario_.network;
  for (int v = 0; v < nw.node_count(); ++v) {
    nw.node(static_cast<net::NodeId>(v)).state(io);
  }
  for (const auto& link : nw.links()) link->state(io);
  for (const auto& link : nw.links()) link->injected_state(io);
  for (const auto& s : scenario_.senders) s->state(io);
  for (const auto& s : scenario_.cross_senders) s->state(io);
  for (const auto& r : scenario_.receivers) r->state(io);
  for (const auto& r : scenario_.cross_receivers) r->state(io);
}

void ParallelSim::migrate_to(Partition next) {
  net::Network& nw = scenario_.network;
  // 1. Whole-world byte image. Pumps and mailbox counters stay out: pump
  // counters carry over explicitly below, and mailboxes are rebuilt at
  // zero (pushed == executed and empty buffers at a barrier).
  {
    util::StateIO io(migrate_buf_, /*saving=*/true);
    serialize_world(io);
  }
  // 2. Wipe every shard's pending set. Checkpoint-then-restore of the
  // same state destroys the events but keeps clocks, counters and stamp
  // mints; the component restore in step 5 regenerates the events — each
  // into its new shard.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    LpSnapshot& scratch = snaps_[i];
    shards_[i]->checkpoint(scratch.cp, scratch.stamp_slots);
    shards_[i]->restore(scratch.cp, scratch.stamp_slots);
  }
  // 3. Old wiring down.
  if (!pumps_.empty()) {
    for (const auto& link : nw.links()) link->detach_pump();
    pump_stats_carry_ = pump_stats();
    pump_hist_carry_ = pump_histogram();
    for (std::size_t i = 0; i < pumps_.size(); ++i) {
      pumps_[i] = std::make_unique<net::LinkPump>(*shards_[i]);
    }
  }
  for (Mailbox& mb : mailboxes_) {
    lp_cross_carry_[static_cast<std::size_t>(mb.src_lp)] += mb.channel.pushed;
    mb.link->set_remote_channel(nullptr);
  }
  mailboxes_.clear();
  cut_edges_.clear();
  // 4. Adopt the new assignment and rewire.
  partition_ = std::move(next);
  for (int v = 0; v < nw.node_count(); ++v) {
    const int lp = lp_of(static_cast<net::NodeId>(v));
    nw.node(static_cast<net::NodeId>(v))
        .set_tracer(lp_tracers_[static_cast<std::size_t>(lp)].get(),
                    shards_[static_cast<std::size_t>(lp)]);
  }
  for (const auto& link : nw.links()) {
    const int lp = lp_of(link->from());
    const int dst = lp_of(link->to());
    link->rebind_for_migration(*shards_[static_cast<std::size_t>(lp)]);
    link->set_packet_pool(pools_[static_cast<std::size_t>(lp)]);
    link->set_tracer(lp_tracers_[static_cast<std::size_t>(lp)].get());
    link->set_injection_scheduler(shards_[static_cast<std::size_t>(dst)],
                                  pools_[static_cast<std::size_t>(dst)]);
    if (!pumps_.empty()) {
      link->attach_pump_for_migration(
          pumps_[static_cast<std::size_t>(lp)].get());
    }
  }
  build_mailboxes();
  for (const auto& s : scenario_.senders) {
    s->migrate_to_shard(shard_for(s->local_node()));
  }
  for (const auto& s : scenario_.cross_senders) {
    s->migrate_to_shard(shard_for(s->local_node()));
  }
  for (const auto& r : scenario_.receivers) {
    r->migrate_to_shard(shard_for(r->local_node()));
  }
  for (const auto& r : scenario_.cross_receivers) {
    r->migrate_to_shard(shard_for(r->local_node()));
  }
  // 5. Restore: every regenerable event re-seats against its new shard
  // (all pending keys are at or past the barrier, which every shard clock
  // sits at or before — checked by the migration gate).
  {
    util::StateIO io(migrate_buf_, /*saving=*/false);
    serialize_world(io);
    TCPPR_CHECK(io.done());
  }
  if (!pumps_.empty()) {
    for (const auto& pump : pumps_) pump->reseed_after_restore();
  }
}

}  // namespace tcppr::harness
