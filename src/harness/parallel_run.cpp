#include "harness/parallel_run.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/check.hpp"
#include "validate/invariants.hpp"

namespace tcppr::harness {

namespace {

PartitionConfig make_partition_config(const Scenario& scenario,
                                      const ParallelRunConfig& config) {
  PartitionConfig pc;
  pc.target_lps = config.lps;
  pc.min_cut_lookahead = config.min_cut_lookahead;
  // Flow endpoints dominate the event rate (per-packet sender/receiver
  // work plus their access-link hops); weight them well above relays so
  // LPT packs hosts apart before balancing routers.
  pc.node_extra_weight.assign(
      static_cast<std::size_t>(scenario.network.node_count()), 0.0);
  const auto add = [&pc](net::NodeId v) {
    pc.node_extra_weight[static_cast<std::size_t>(v)] += 8.0;
  };
  for (const auto& s : scenario.senders) add(s->local_node());
  for (const auto& s : scenario.cross_senders) add(s->local_node());
  for (const auto& r : scenario.receivers) add(r->local_node());
  for (const auto& r : scenario.cross_receivers) add(r->local_node());
  return pc;
}

}  // namespace

ParallelSim::ParallelSim(Scenario& scenario, const ParallelRunConfig& config)
    : scenario_(scenario),
      partition_(scenario.network, make_partition_config(scenario, config)) {
  // Even when the partition degenerates to one LP the scenario still runs
  // on a stamped shard: stamp order is partition-independent, so digests
  // from any requested LP count (including 1) are directly comparable.
  const int k = lp_count();
  TCPPR_CHECK(scenario_.lp_scheds.empty());
  net::Network& nw = scenario_.network;
  TCPPR_CHECK(nw.node_count() <=
              (1 << sim::Scheduler::kStampEntityBits));
  tracing_ = nw.tracer().active();
  for (int lp = 0; lp < k; ++lp) {
    scenario_.lp_scheds.push_back(
        std::make_unique<sim::Scheduler>(scenario_.backend));
    sim::Scheduler* shard = scenario_.lp_scheds.back().get();
    shard->enable_seq_stamping();
    shards_.push_back(shard);
    pools_.push_back(net::PacketPool::create());
    if (nw.pump() != nullptr) {
      pumps_.push_back(std::make_unique<net::LinkPump>(*shard));
    }
    lp_tracers_.push_back(std::make_unique<trace::Tracer>());
    if (tracing_) {
      sinks_.push_back(std::make_unique<BufferSink>(*shard));
      lp_tracers_.back()->add_sink(sinks_.back().get());
    }
  }

  for (int v = 0; v < nw.node_count(); ++v) {
    const int lp = lp_of(static_cast<net::NodeId>(v));
    nw.node(static_cast<net::NodeId>(v))
        .set_tracer(lp_tracers_[static_cast<std::size_t>(lp)].get(),
                    shards_[static_cast<std::size_t>(lp)]);
  }
  // A link's queue/transmit/propagation events all run on its *source*
  // LP; only the final delivery may cross (mailbox below).
  for (const auto& link : nw.links()) {
    const int lp = lp_of(link->from());
    link->set_scheduler(*shards_[static_cast<std::size_t>(lp)]);
    link->set_packet_pool(pools_[static_cast<std::size_t>(lp)]);
    link->set_tracer(lp_tracers_[static_cast<std::size_t>(lp)].get());
    if (!pumps_.empty()) {
      link->set_pump(pumps_[static_cast<std::size_t>(lp)].get());
    }
  }
  for (net::Link* cut : partition_.cut_links()) {
    mailboxes_.emplace_back();
    Mailbox& mb = mailboxes_.back();
    mb.link = cut;
    mb.dst_node = &nw.node(cut->to());
    mb.dst_lp = lp_of(cut->to());
    cut->set_remote_channel(&mb.channel);
    cut_edges_.push_back(
        sim::ParallelEngine::CutEdge{lp_of(cut->from()), cut->prop_delay()});
  }

  for (const auto& s : scenario_.senders) {
    s->rebind_scheduler(shard_for(s->local_node()));
  }
  for (const auto& s : scenario_.cross_senders) {
    s->rebind_scheduler(shard_for(s->local_node()));
  }
  for (const auto& r : scenario_.receivers) {
    r->rebind_scheduler(shard_for(r->local_node()));
  }
  for (const auto& r : scenario_.cross_receivers) {
    r->rebind_scheduler(shard_for(r->local_node()));
  }

  // Adopt the build-time events. Their stamps are a plain build-order
  // counter in the reserved pre-run range below every runtime stamp (the
  // scheduler's +1 time shift — see enable_seq_stamping), so same-time
  // ties against runtime events resolve exactly as the sequential
  // scheduler's insertion order did: build-time events first, in build
  // order — identically on every LP count.
  std::uint64_t adopt_seq = 0;
  for (const auto& d : scenario_.deferred) {
    scenario_.sched.cancel(d.id);
    shard_for(d.affinity).schedule_at_stamped(d.at, adopt_seq++, d.fn);
  }
  TCPPR_CHECK(adopt_seq < (std::uint64_t{1}
                           << (sim::Scheduler::kStampOpBits +
                               sim::Scheduler::kStampEntityBits)));
  // Anything left on the build scheduler was scheduled outside
  // Scenario::schedule_action and would silently never run: the scenario
  // uses a feature the parallel mode does not support (queue probes /
  // FlowStats pollers, app-layer sources, short-flow generators).
  TCPPR_CHECK(scenario_.sched.pending_count() == 0);
}

ParallelSim::~ParallelSim() {
  net::Network& nw = scenario_.network;
  for (Mailbox& mb : mailboxes_) mb.link->set_remote_channel(nullptr);
  for (int v = 0; v < nw.node_count(); ++v) {
    nw.node(static_cast<net::NodeId>(v))
        .set_tracer(&nw.tracer(), &scenario_.sched);
  }
  for (const auto& link : nw.links()) {
    link->set_tracer(&nw.tracer());
    // Drop any batched in-flight state before the per-LP pumps die; the
    // links keep their shard schedulers (like the timers), so re-pointing
    // them at the network's build-scheduler pump would be wrong.
    if (!pumps_.empty()) link->detach_pump();
  }
}

sim::Scheduler& ParallelSim::shard_for(net::NodeId node) {
  return *shards_[static_cast<std::size_t>(lp_of(node))];
}

void ParallelSim::set_checker(validate::InvariantChecker* checker) {
  checker_ = checker;
  if (checker_ != nullptr) {
    checker_->set_external_in_flight([this] { return external_in_flight(); });
  }
}

net::LinkPump::Stats ParallelSim::pump_stats() const {
  net::LinkPump::Stats total;
  for (const auto& pump : pumps_) {
    const net::LinkPump::Stats& s = pump->stats();
    total.events += s.events;
    total.ops += s.ops;
    total.delivery_runs += s.delivery_runs;
    total.delivered_in_runs += s.delivered_in_runs;
  }
  return total;
}

net::LinkPump::RunHistogram ParallelSim::pump_histogram() const {
  net::LinkPump::RunHistogram total{};
  for (const auto& pump : pumps_) {
    const net::LinkPump::RunHistogram h = pump->aggregate_histogram();
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += h[i];
  }
  return total;
}

std::uint64_t ParallelSim::events_processed() const {
  std::uint64_t total = 0;
  for (const sim::Scheduler* s : shards_) total += s->processed_count();
  return total;
}

std::uint64_t ParallelSim::external_in_flight() const {
  std::uint64_t total = 0;
  for (const Mailbox& mb : mailboxes_) {
    total += mb.channel.pushed - mb.channel.executed;
  }
  return total;
}

void ParallelSim::run_until(sim::TimePoint end) {
  sim::ParallelEngine::Hooks hooks;
  hooks.exchange = [this] { return exchange(); };
  hooks.external_backlog = [this] { return external_in_flight(); };
  hooks.at_barrier = [this](sim::TimePoint h) { at_barrier(h); };
  sim::ParallelEngine engine(shards_, cut_edges_, std::move(hooks));
  engine.run_until(end);
  windows_ += engine.windows();
  exchanged_ += engine.exchanged();
}

std::uint64_t ParallelSim::exchange() {
  std::uint64_t injected = 0;
  // Deterministic drain order (mailbox creation order, push order within
  // one mailbox); final ordering comes from the stamps, not this loop.
  for (Mailbox& mb : mailboxes_) {
    auto& buf = mb.channel.buf;
    if (buf.empty()) continue;
    sim::Scheduler& dst = *shards_[static_cast<std::size_t>(mb.dst_lp)];
    auto& pool = pools_[static_cast<std::size_t>(mb.dst_lp)];
    // One free-list splice covers the whole drain instead of a pool
    // round-trip per message.
    ref_scratch_.resize(buf.size());
    pool->alloc_n(buf.size(), ref_scratch_.data());
    std::size_t ri = 0;
    for (net::CrossLinkMsg& msg : buf) {
      // {link, pooled packet} is 40 bytes: the injected event stays inside
      // the scheduler's inline callback buffer. Routing through the link
      // keeps delivery observation (telemetry taps) at one layer for every
      // engine mode.
      dst.schedule_at_stamped(
          msg.at, msg.stamp,
          [link = mb.link,
           p = pool->adopt(ref_scratch_[ri++], std::move(msg.pkt))]() mutable {
            link->deliver_injected(std::move(p));
          });
      ++injected;
    }
    buf.clear();
  }
  return injected;
}

void ParallelSim::at_barrier(sim::TimePoint h) {
  if (tracing_) flush_traces();
  // Advance the (empty) build scheduler's clock so wall-clock readers —
  // violation timestamps, stats printed mid-run — see the barrier time.
  scenario_.sched.run_until(h);
  if (checker_ != nullptr) checker_->check_now();
}

void ParallelSim::flush_traces() {
  merge_.clear();
  for (auto& sink : sinks_) {
    auto& buf = sink->buffer();
    merge_.insert(merge_.end(), std::make_move_iterator(buf.begin()),
                  std::make_move_iterator(buf.end()));
    buf.clear();
  }
  std::sort(merge_.begin(), merge_.end(),
            [](const BufferSink::Keyed& a, const BufferSink::Keyed& b) {
              if (a.rec.time < b.rec.time) return true;
              if (b.rec.time < a.rec.time) return false;
              if (a.stamp != b.stamp) return a.stamp < b.stamp;
              return a.idx < b.idx;
            });
  trace::Tracer& root = scenario_.network.tracer();
  for (const BufferSink::Keyed& k : merge_) root.dispatch(k.rec);
}

}  // namespace tcppr::harness
