// Graph partitioner for the parallel execution mode (DESIGN.md §4.5).
//
// Nodes are grouped into k logical processes (LPs). A link whose endpoints
// land in different LPs becomes a *cut link*; its propagation delay is the
// conservative lookahead that bounds how far the two LPs may diverge. The
// partitioner therefore never cuts a link with zero propagation delay:
// such links are contracted first (union-find), forcing both endpoints
// into the same LP. The caller may contract additional links the same way
// (e.g. host access links, so endpoints stay with their first router and
// the mailbox protocol only runs on the high-latency core links).
//
// The merged components are then bin-packed into k LPs by weight using
// longest-processing-time-first — deterministic (stable tie-break on
// component id), no randomness — where a component's weight approximates
// its event rate: the number of incident link endpoints plus a caller-
// supplied per-node extra (flow endpoints are far hotter than relays).
//
// If every link contracts into one component the result is a single LP
// (`lp_count() == 1`) and the caller should fall back to sequential
// execution — there is no positive-lookahead cut to parallelize across.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace tcppr::harness {

struct PartitionConfig {
  int target_lps = 2;
  // Treat links faster than this propagation delay as uncuttable, on top
  // of the always-uncuttable zero-delay links. Raising it steers the cut
  // toward the high-latency core where the safe window is widest.
  sim::Duration min_cut_lookahead = sim::Duration::zero();
  // Extra weight per node (indexed by NodeId) added to the incident-link
  // weight; callers load flow endpoints here. May be empty.
  std::vector<double> node_extra_weight;
};

class Partition {
 public:
  // Never produces more LPs than nodes or than `config.target_lps`;
  // the result may have fewer LPs when contraction merges components.
  Partition(const net::Network& network, const PartitionConfig& config);

  int lp_count() const { return lp_count_; }
  int lp_of(net::NodeId node) const { return lp_of_[node]; }
  // Links with lp_of(from) != lp_of(to). Invariant: every cut link has
  // prop_delay > max(0, min_cut_lookahead). Pointers are non-const so the
  // parallel harness can attach mailbox channels.
  const std::vector<net::Link*>& cut_links() const { return cuts_; }
  // Per-LP total weight (diagnostics / balance reporting).
  const std::vector<double>& lp_weights() const { return weights_; }

 private:
  int lp_count_ = 1;
  std::vector<int> lp_of_;
  std::vector<net::Link*> cuts_;
  std::vector<double> weights_;
};

}  // namespace tcppr::harness
