#include "harness/partition.hpp"

#include <algorithm>
#include <numeric>

#include "net/link.hpp"
#include "util/check.hpp"

namespace tcppr::harness {

namespace {

int find_root(std::vector<int>& parent, int x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

}  // namespace

Partition::Partition(const net::Network& network,
                     const PartitionConfig& config) {
  const int n = network.node_count();
  TCPPR_CHECK(n >= 1);
  lp_of_.assign(static_cast<std::size_t>(n), 0);

  // 1. Contract uncuttable links: zero (or below-threshold) propagation
  // delay gives no lookahead, so both endpoints must share an LP.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  for (const auto& link : network.links()) {
    if (link->prop_delay() > config.min_cut_lookahead) continue;
    const int a = find_root(parent, static_cast<int>(link->from()));
    const int b = find_root(parent, static_cast<int>(link->to()));
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }

  // 2. Component weights ~ event rate: one unit per incident link
  // endpoint plus the caller's per-node extra (flow endpoints).
  std::vector<double> comp_weight(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    double w = 1.0;  // every node costs something even when isolated
    if (static_cast<std::size_t>(v) < config.node_extra_weight.size()) {
      w += config.node_extra_weight[static_cast<std::size_t>(v)];
    }
    comp_weight[static_cast<std::size_t>(find_root(parent, v))] += w;
  }
  for (const auto& link : network.links()) {
    comp_weight[static_cast<std::size_t>(
        find_root(parent, static_cast<int>(link->from())))] += 1.0;
    comp_weight[static_cast<std::size_t>(
        find_root(parent, static_cast<int>(link->to())))] += 1.0;
  }

  std::vector<int> roots;
  for (int v = 0; v < n; ++v) {
    if (find_root(parent, v) == v) roots.push_back(v);
  }

  // 3. LPT bin-packing into k bins: heaviest component first, always into
  // the lightest bin, ties broken by lowest bin index / lowest root id —
  // fully deterministic for a given topology.
  const int k = std::clamp(config.target_lps, 1,
                           static_cast<int>(roots.size()));
  std::stable_sort(roots.begin(), roots.end(), [&](int a, int b) {
    return comp_weight[static_cast<std::size_t>(a)] >
           comp_weight[static_cast<std::size_t>(b)];
  });
  weights_.assign(static_cast<std::size_t>(k), 0.0);
  std::vector<int> lp_of_root(static_cast<std::size_t>(n), 0);
  for (const int root : roots) {
    const int bin = static_cast<int>(std::min_element(weights_.begin(),
                                                      weights_.end()) -
                                     weights_.begin());
    lp_of_root[static_cast<std::size_t>(root)] = bin;
    weights_[static_cast<std::size_t>(bin)] +=
        comp_weight[static_cast<std::size_t>(root)];
  }
  for (int v = 0; v < n; ++v) {
    lp_of_[static_cast<std::size_t>(v)] =
        lp_of_root[static_cast<std::size_t>(find_root(parent, v))];
  }

  // 4. Collect cut links and the realized LP count. Bins can end up empty
  // (more bins than components never happens because of the clamp, but a
  // degenerate weight distribution can starve one); compact the labels so
  // lp ids are dense.
  std::vector<int> remap(static_cast<std::size_t>(k), -1);
  int next = 0;
  for (int v = 0; v < n; ++v) {
    int& label = remap[static_cast<std::size_t>(lp_of_[v])];
    if (label < 0) label = next++;
    lp_of_[static_cast<std::size_t>(v)] = label;
  }
  lp_count_ = next;
  {
    std::vector<double> compact(static_cast<std::size_t>(lp_count_), 0.0);
    for (int bin = 0; bin < k; ++bin) {
      if (remap[static_cast<std::size_t>(bin)] >= 0) {
        compact[static_cast<std::size_t>(remap[static_cast<std::size_t>(
            bin)])] = weights_[static_cast<std::size_t>(bin)];
      }
    }
    weights_ = std::move(compact);
  }

  for (const auto& link : network.links()) {
    if (lp_of_[link->from()] != lp_of_[link->to()]) {
      TCPPR_CHECK(link->prop_delay() > sim::Duration::zero());
      cuts_.push_back(link.get());
    }
  }
  TCPPR_CHECK(lp_count_ > 1 || cuts_.empty());
}

}  // namespace tcppr::harness
