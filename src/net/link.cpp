#include "net/link.hpp"

#include <utility>

#include "net/node.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::net {

Link::Link(sim::Scheduler& sched, NodeId from, NodeId to, double bandwidth_bps,
           sim::Duration prop_delay, std::unique_ptr<Queue> queue)
    : sched_(&sched),
      from_(from),
      to_(to),
      bandwidth_bps_(bandwidth_bps),
      prop_delay_(prop_delay),
      queue_(std::move(queue)),
      loss_rng_(0),
      jitter_rng_(0) {
  TCPPR_CHECK(bandwidth_bps_ > 0);
  TCPPR_CHECK(prop_delay_ >= sim::Duration::zero());
  TCPPR_CHECK(queue_ != nullptr);
  queue_->set_time_source(sched_, bandwidth_bps_);
}

void Link::set_scheduler(sim::Scheduler& sched) {
  TCPPR_CHECK(!busy_ && in_transit_ == 0);
  sched_ = &sched;
  queue_->set_time_source(sched_, bandwidth_bps_);
}

void Link::set_remote_channel(CrossLinkChannel* channel) {
  remote_ = channel;
  if (channel != nullptr) {
    TCPPR_CHECK(prop_delay_ > sim::Duration::zero());
    lookahead_frozen_ = true;
    frozen_lookahead_ = prop_delay_;
  } else {
    lookahead_frozen_ = false;
  }
}

void Link::set_loss_model(double loss_rate, sim::Rng rng) {
  TCPPR_CHECK(loss_rate >= 0 && loss_rate < 1);
  loss_rate_ = loss_rate;
  loss_rng_ = rng;
}

void Link::set_bandwidth(double bandwidth_bps) {
  TCPPR_CHECK(bandwidth_bps > 0);
  bandwidth_bps_ = bandwidth_bps;
  // In-progress transmissions keep their already-scheduled completion
  // time; only future dequeues see the new rate.
  queue_->set_time_source(sched_, bandwidth_bps_);
}

void Link::set_jitter(sim::Duration max_jitter, sim::Rng rng) {
  TCPPR_CHECK(max_jitter >= sim::Duration::zero());
  max_jitter_ = max_jitter;
  jitter_rng_ = rng;
}

void Link::send(Packet&& pkt) {
  if (down_ || (drop_filter_ && drop_filter_(pkt))) {
    ++stats_.lost;
    if (tracer_) {
      tracer_->emit(sched_->now(), trace::EventType::kLossDrop, pkt, from_,
                    to_);
    }
    return;
  }
  pkt.enqueued_at = sched_->now();
  if (tracer_ != nullptr && tracer_->active()) {
    // The queue consumes the packet either way; keep a copy so a rejection
    // can still be traced.
    Packet copy = pkt;
    const bool accepted = queue_->enqueue(std::move(pkt));
    tracer_->emit(sched_->now(),
                  accepted ? trace::EventType::kEnqueue
                           : trace::EventType::kQueueDrop,
                  copy, from_, to_);
    if (!accepted) {
      TCPPR_LOG_DEBUG("link", "queue drop on %d->%d", from_, to_);
      return;
    }
  } else if (!queue_->enqueue(std::move(pkt))) {
    TCPPR_LOG_DEBUG("link", "queue drop on %d->%d", from_, to_);
    return;
  }
  if (!busy_) start_transmission();
}

PacketPool& Link::pool() {
  if (pool_ == nullptr) pool_ = PacketPool::create();
  return *pool_;
}

void Link::start_transmission() {
  auto pkt = queue_->dequeue();
  if (!pkt) {
    busy_ = false;
    return;
  }
  busy_ = true;
  ++in_transit_;
  if (tracer_ != nullptr) {
    tracer_->emit(sched_->now(), trace::EventType::kDequeue, *pkt, from_, to_);
  }
  const double tx_seconds =
      static_cast<double>(pkt->size_bytes) * 8.0 / bandwidth_bps_;
  // Check the packet out of the pool for its trip through the scheduler:
  // the {this, pooled pointer} capture fits the event slot's inline
  // callback buffer, so the completion event allocates nothing.
  sched_->schedule_in_for(
      sim::Duration::seconds(tx_seconds), static_cast<std::uint32_t>(from_),
      [this, p = pool().make(std::move(*pkt))]() mutable {
        on_tx_complete(std::move(p));
      });
}

void Link::on_tx_complete(PooledPacket pkt) {
  // Transmitter is free: begin the next packet (if any) before modelling
  // this packet's propagation.
  start_transmission();

  if (loss_rate_ > 0 && loss_rng_.bernoulli(loss_rate_)) {
    ++stats_.lost;
    ++stats_.loss_model_lost;
    --in_transit_;
    if (tracer_ != nullptr) {
      tracer_->emit(sched_->now(), trace::EventType::kLossDrop, *pkt, from_,
                    to_);
    }
    TCPPR_LOG_DEBUG("link", "loss-model drop on %d->%d", from_, to_);
    return;  // pkt returns to the pool
  }
  ++pkt->hops;
  sim::Duration delivery_delay = prop_delay_;
  if (max_jitter_ > sim::Duration::zero()) {
    delivery_delay +=
        max_jitter_ * jitter_rng_.uniform();  // may reorder deliveries
  }
  if (remote_ != nullptr) {
    // Cut link: the destination node lives on another shard. Source-side
    // bookkeeping happens now (delivery is certain once the loss lottery
    // above passed), the packet rides the mailbox, and the stamp minted
    // here occupies exactly the op position the delivery-schedule call
    // below holds in the sequential run — so the injected event ties
    // against local events the same way the sequential scheduler would
    // have broken them.
    ++stats_.delivered;
    stats_.bytes_delivered += pkt->size_bytes;
    if (!skip_transit_decrement_) --in_transit_;
    ++remote_->pushed;
    remote_->buf.push_back(
        CrossLinkMsg{sched_->now() + delivery_delay,
                     sched_->make_stamp(static_cast<std::uint32_t>(from_)),
                     std::move(*pkt)});
    return;  // the pooled shell returns to this shard's pool
  }
  sched_->schedule_in_for(delivery_delay, static_cast<std::uint32_t>(from_),
                          [this, p = std::move(pkt)]() mutable {
    ++stats_.delivered;
    stats_.bytes_delivered += p->size_bytes;
    if (!skip_transit_decrement_) --in_transit_;
    TCPPR_DCHECK(dst_node_ != nullptr);
    dst_node_->receive(std::move(*p));
    // p's release into the pool recycles the packet for the next hop.
  });
}

}  // namespace tcppr::net
