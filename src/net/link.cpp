#include "net/link.hpp"

#include <utility>

#include "net/node.hpp"
#include "telemetry/reorder_tap.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::net {

Link::Link(sim::Scheduler& sched, NodeId from, NodeId to, double bandwidth_bps,
           sim::Duration prop_delay, std::unique_ptr<Queue> queue)
    : sched_(&sched),
      from_(from),
      to_(to),
      bandwidth_bps_(bandwidth_bps),
      prop_delay_(prop_delay),
      queue_(std::move(queue)),
      loss_rng_(0),
      jitter_rng_(0) {
  TCPPR_CHECK(bandwidth_bps_ > 0);
  TCPPR_CHECK(prop_delay_ >= sim::Duration::zero());
  TCPPR_CHECK(queue_ != nullptr);
  queue_->set_time_source(sched_, bandwidth_bps_);
}

void Link::set_scheduler(sim::Scheduler& sched) {
  TCPPR_CHECK(!busy_ && in_transit_ == 0);
  sched_ = &sched;
  queue_->set_time_source(sched_, bandwidth_bps_);
}

void Link::set_remote_channel(CrossLinkChannel* channel) {
  remote_ = channel;
  if (channel != nullptr) {
    TCPPR_CHECK(prop_delay_ > sim::Duration::zero());
    lookahead_frozen_ = true;
    frozen_lookahead_ = prop_delay_;
  } else {
    lookahead_frozen_ = false;
  }
}

void Link::set_loss_model(double loss_rate, sim::Rng rng) {
  TCPPR_CHECK(loss_rate >= 0 && loss_rate < 1);
  loss_rate_ = loss_rate;
  loss_rng_ = rng;
}

void Link::set_bandwidth(double bandwidth_bps) {
  TCPPR_CHECK(bandwidth_bps > 0);
  bandwidth_bps_ = bandwidth_bps;
  // In-progress transmissions keep their already-scheduled completion
  // time; only future dequeues see the new rate.
  queue_->set_time_source(sched_, bandwidth_bps_);
}

void Link::set_jitter(sim::Duration max_jitter, sim::Rng rng) {
  TCPPR_CHECK(max_jitter >= sim::Duration::zero());
  max_jitter_ = max_jitter;
  jitter_rng_ = rng;
}

void Link::set_pump(LinkPump* pump) {
  TCPPR_CHECK(!busy_ && in_transit_ == 0);
  TCPPR_CHECK(pump == nullptr || &pump->scheduler() == sched_);
  pump_ = pump;
  if (pump_ != nullptr) pump_id_ = pump_->add_link(this);
}

void Link::detach_pump() {
  pump_ = nullptr;
  tx_pending_ = false;
  tx_pkt_.reset();
  ring_.clear();
}

void Link::send(Packet&& pkt) {
  if (down_ || (drop_filter_ && drop_filter_(pkt))) {
    ++stats_.lost;
    if (tracer_) {
      tracer_->emit(sched_->now(), trace::EventType::kLossDrop, pkt, from_,
                    to_);
    }
    return;
  }
  pkt.enqueued_at = sched_->now();
  if (tracer_ != nullptr && tracer_->active()) {
    // The queue consumes the packet either way; keep a copy so a rejection
    // can still be traced.
    Packet copy = pkt;
    const bool accepted = queue_->enqueue(std::move(pkt));
    tracer_->emit(sched_->now(),
                  accepted ? trace::EventType::kEnqueue
                           : trace::EventType::kQueueDrop,
                  copy, from_, to_);
    if (!accepted) {
      TCPPR_LOG_DEBUG("link", "queue drop on %d->%d", from_, to_);
      return;
    }
  } else if (!queue_->enqueue(std::move(pkt))) {
    TCPPR_LOG_DEBUG("link", "queue drop on %d->%d", from_, to_);
    return;
  }
  if (!busy_) start_transmission();
}

PacketPool& Link::pool() {
  if (pool_ == nullptr) pool_ = PacketPool::create();
  return *pool_;
}

void Link::start_transmission() {
  if (queue_->length_packets() == 0) {
    busy_ = false;
    return;
  }
  // Dequeue straight into a recycled pool slot: dequeue_into overwrites
  // the slot wholesale, so the ~300-byte Packet moves once instead of
  // bouncing through an optional and a second pool move.
  PooledPacket pkt = pool().checkout();
  const bool dequeued = queue_->dequeue_into(*pkt);
  TCPPR_DCHECK(dequeued);
  (void)dequeued;
  busy_ = true;
  ++in_transit_;
  if (tracer_ != nullptr && tracer_->active()) {
    tracer_->emit(sched_->now(), trace::EventType::kDequeue, *pkt, from_, to_);
  }
  const double tx_seconds =
      static_cast<double>(pkt->size_bytes) * 8.0 / bandwidth_bps_;
  const sim::TimePoint at =
      sched_->now() + sim::Duration::seconds(tx_seconds);
  const std::uint64_t seq =
      sched_->mint_seq(static_cast<std::uint32_t>(from_));
  last_tx_mint_valid_ = true;
  last_tx_mint_ = PumpKey{sched_->now(), seq};
  if (pump_ != nullptr) {
    tx_pending_ = true;
    tx_key_ = PumpKey{at, seq};
    tx_pkt_ = std::move(pkt);
    pump_->push_op(tx_key_, pump_id_, PumpOp::kTxComplete);
    return;
  }
  // The packet rides the scheduler in its pool slot: the {this, pooled
  // pointer} capture fits the event slot's inline callback buffer, so the
  // completion event allocates nothing.
  sched_->schedule_at_stamped(at, seq, [this, p = std::move(pkt)]() mutable {
    on_tx_complete(std::move(p));
  });
}

void Link::on_tx_complete(PooledPacket pkt) {
  // Transmitter is free: begin the next packet (if any) before modelling
  // this packet's propagation.
  start_transmission();
  complete_packet(std::move(pkt));
}

void Link::pump_run_tx() {
  TCPPR_DCHECK(tx_pending_);
  tx_pending_ = false;
  PooledPacket p = std::move(tx_pkt_);
  start_transmission();
  complete_packet(std::move(p));
}

void Link::complete_packet(PooledPacket pkt) {
  if (loss_rate_ > 0 && loss_rng_.bernoulli(loss_rate_)) {
    ++stats_.lost;
    ++stats_.loss_model_lost;
    --in_transit_;
    if (tracer_ != nullptr) {
      tracer_->emit(sched_->now(), trace::EventType::kLossDrop, *pkt, from_,
                    to_);
    }
    TCPPR_LOG_DEBUG("link", "loss-model drop on %d->%d", from_, to_);
    return;  // pkt returns to the pool
  }
  ++pkt->hops;
  sim::Duration delivery_delay = prop_delay_;
  if (max_jitter_ > sim::Duration::zero()) {
    delivery_delay +=
        max_jitter_ * jitter_rng_.uniform();  // may reorder deliveries
  }
  if (remote_ != nullptr) {
    // Cut link: the destination node lives on another shard. Source-side
    // bookkeeping happens now (delivery is certain once the loss lottery
    // above passed), the packet rides the mailbox, and the stamp minted
    // here occupies exactly the op position the delivery-schedule call
    // below holds in the sequential run — so the injected event ties
    // against local events the same way the sequential scheduler would
    // have broken them.
    ++stats_.delivered;
    stats_.bytes_delivered += pkt->size_bytes;
    if (!skip_transit_decrement_) --in_transit_;
    ++remote_->pushed;
    remote_->buf.push_back(
        CrossLinkMsg{sched_->now() + delivery_delay,
                     sched_->make_stamp(static_cast<std::uint32_t>(from_)),
                     std::move(*pkt)});
    return;  // the pooled shell returns to this shard's pool
  }
  const sim::TimePoint at = sched_->now() + delivery_delay;
  const std::uint64_t seq =
      sched_->mint_seq(static_cast<std::uint32_t>(from_));
  // Op-order invariant (the schedule batching preserves): the delivery op
  // minted after this packet's loss lottery sorts after the next-packet
  // transmission op minted before it. Stamps embed the mint instant and a
  // per-(node, instant) counter, the legacy counter is globally monotone —
  // either way later mints sort later; assert it rather than assume it.
  TCPPR_DCHECK(!last_tx_mint_valid_ || last_tx_mint_.at != sched_->now() ||
               seq > last_tx_mint_.seq);
  if (pump_ != nullptr) {
    insert_delivery(at, seq, std::move(pkt));
    return;
  }
  sched_->schedule_at_stamped(at, seq, [this, p = std::move(pkt)]() mutable {
    deliver_one(std::move(p));
  });
}

void Link::deliver_one(PooledPacket p) {
  ++stats_.delivered;
  stats_.bytes_delivered += p->size_bytes;
  if (!skip_transit_decrement_) --in_transit_;
  if (tap_ != nullptr) tap_->on_deliver(*p);
  TCPPR_DCHECK(dst_node_ != nullptr);
  dst_node_->receive(std::move(*p));
  // p's release into the pool recycles the packet for the next hop.
}

void Link::queue_injected(sim::TimePoint at, std::uint64_t seq,
                          Packet&& pkt) {
  injected_.push_back(InjectedEntry{at, seq, std::move(pkt)});
  // Same sorted-merge discipline as insert_delivery: barrier drains push
  // in mailbox order, delivery order comes from the (at, seq) keys.
  std::size_t i = injected_.size() - 1;
  while (i > 0 && (at < injected_[i - 1].at ||
                   (at == injected_[i - 1].at && seq < injected_[i - 1].seq))) {
    std::swap(injected_[i], injected_[i - 1]);
    --i;
  }
  arm_injected(at, seq);
}

void Link::arm_injected(sim::TimePoint at, std::uint64_t seq) {
  TCPPR_DCHECK(injection_sched_ != nullptr);
  // One event per entry, each at its own key: events fire in key order, so
  // when this one fires its entry is exactly the ring head. The {this}
  // capture is regenerable from the serialized ring — replay-safe.
  injection_sched_->mark_replay_safe(injection_sched_->schedule_at_stamped(
      at, seq, [this] { pop_injected(); }));
}

void Link::pop_injected() {
  TCPPR_DCHECK(!injected_.empty());
  InjectedEntry e = injected_.pop_front();
  TCPPR_DCHECK(injection_pool_ != nullptr);
  PooledPacket p = injection_pool_->checkout();
  *p = std::move(e.pkt);
  if (tap_ != nullptr) tap_->on_deliver(*p);
  TCPPR_DCHECK(dst_node_ != nullptr);
  dst_node_->receive(std::move(*p));
}

void Link::injected_state(util::StateIO& io) {
  const std::uint64_t n = io.size_token(injected_.size());
  if (io.saving()) {
    for (std::size_t i = 0; i < injected_.size(); ++i) {
      io.pod(injected_[i].at);
      io.pod(injected_[i].seq);
      io.obj(injected_[i].pkt);
    }
  } else {
    injected_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      InjectedEntry e{};
      io.pod(e.at);
      io.pod(e.seq);
      io.obj(e.pkt);
      arm_injected(e.at, e.seq);
      injected_.push_back(std::move(e));
    }
    // Deliveries re-homed by the state() restore pass (a migration cut
    // this link mid-flight): sorted-merge them in under their original
    // keys now that the saved ring is back.
    for (InjectedEntry& re : rehomed_) {
      queue_injected(re.at, re.seq, std::move(re.pkt));
    }
    rehomed_.clear();
  }
}

void Link::state(util::StateIO& io) {
  io.pod(busy_);
  io.pod(down_);
  io.pod(in_transit_);
  io.pod(loss_rate_);
  io.pod(loss_rng_);
  io.pod(max_jitter_);
  io.pod(jitter_rng_);
  io.pod(stats_);
  io.pod(last_tx_mint_valid_);
  io.pod(last_tx_mint_);
  queue_->state(io);
  io.pod(tx_pending_);
  io.pod(tx_key_);
  if (tx_pending_) {
    if (!io.saving()) tx_pkt_ = pool().checkout();
    io.obj(*tx_pkt_);
  } else if (!io.saving()) {
    tx_pkt_.reset();
  }
  const std::uint64_t n = io.size_token(ring_.size());
  if (io.saving()) {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      io.pod(ring_[i].at);
      io.pod(ring_[i].seq);
      io.obj(*ring_[i].pkt);
    }
  } else {
    ring_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      DeliveryEntry e{};
      io.pod(e.at);
      io.pod(e.seq);
      if (remote_ != nullptr) {
        // A migration just cut this link with deliveries in flight: the
        // destination node now lives on another shard, so the entry must
        // not re-arm here. Re-home it into the destination-side injected
        // ring under its original (at, seq) key — stamps are partition-
        // independent, so delivery order is unchanged — and perform the
        // source-side accounting the cut path does at lottery time.
        // Buffered, not queued: injected_state() restore runs after this
        // and clears the ring; it drains the buffer once the saved
        // entries are back.
        InjectedEntry re{};
        re.at = e.at;
        re.seq = e.seq;
        io.obj(re.pkt);
        ++stats_.delivered;
        stats_.bytes_delivered += re.pkt.size_bytes;
        if (!skip_transit_decrement_) --in_transit_;
        rehomed_.push_back(std::move(re));
        continue;
      }
      e.pkt = pool().checkout();
      io.obj(*e.pkt);
      ring_.push_back(std::move(e));
    }
  }
}

void Link::insert_delivery(sim::TimePoint at, std::uint64_t seq,
                           PooledPacket pkt) {
  ring_.push_back(DeliveryEntry{at, seq, std::move(pkt)});
  // Merge position: in-order deliveries (the common case — jitter-free
  // links mint nondecreasing keys) append in O(1); a jittered early
  // arrival swaps backward to its slot, keeping the ring the sorted merge
  // of the link's delivery stream.
  std::size_t i = ring_.size() - 1;
  while (i > 0 && (at < ring_[i - 1].at ||
                   (at == ring_[i - 1].at && seq < ring_[i - 1].seq))) {
    std::swap(ring_[i], ring_[i - 1]);
    --i;
  }
  if (i == 0) {
    // New head (first entry, or an early arrival that overtook the old
    // head — whose index entry in the pump goes stale).
    pump_->push_op(PumpKey{at, seq}, pump_id_, PumpOp::kDeliver);
  }
}

void Link::pump_run_deliveries() {
  TCPPR_DCHECK(!ring_.empty());
  DeliveryEntry first = ring_.pop_front();
  const sim::TimePoint at = first.at;
  // Fast path: no same-time successor can ride this event — deliver
  // without touching a batch.
  if (ring_.empty() || ring_.front().at != at ||
      !pump_->try_extend(PumpKey{ring_.front().at, ring_.front().seq})) {
    pump_->note_delivery_run(pump_id_, 1);
    deliver_one(std::move(first.pkt));
    if (!ring_.empty()) {
      pump_->push_op(PumpKey{ring_.front().at, ring_.front().seq}, pump_id_,
                     PumpOp::kDeliver);
    }
    return;
  }
  // The pump accepted the successor: collect the run into one batch. Each
  // entry carries the sequence its own delivery event would have had, so
  // the node can advance the clock per packet and keep trace records keyed
  // exactly as the unbatched engine keys them.
  PacketBatch batch;
  auto account = [this](DeliveryEntry& e, PacketBatch& b) {
    ++stats_.delivered;
    stats_.bytes_delivered += e.pkt->size_bytes;
    if (!skip_transit_decrement_) --in_transit_;
    if (tap_ != nullptr) tap_->on_deliver(*e.pkt);
    b.push(std::move(*e.pkt), e.seq);
    // The pooled shell releases here; the packet payload rides the batch.
  };
  account(first, batch);
  DeliveryEntry next = ring_.pop_front();  // the entry try_extend accepted
  account(next, batch);
  while (!ring_.empty() && ring_.front().at == at &&
         pump_->try_extend(PumpKey{ring_.front().at, ring_.front().seq})) {
    DeliveryEntry e = ring_.pop_front();
    account(e, batch);
  }
  pump_->note_delivery_run(pump_id_, batch.size());
  TCPPR_DCHECK(dst_node_ != nullptr);
  dst_node_->receive_batch(std::move(batch));
  if (!ring_.empty()) {
    pump_->push_op(PumpKey{ring_.front().at, ring_.front().seq}, pump_id_,
                   PumpOp::kDeliver);
  }
}

void Link::send_batch(PacketBatch& batch, std::size_t begin, std::size_t end) {
  std::size_t i = begin;
  for (; i < end && !busy_; ++i) send(std::move(batch[i]));
  if (i >= end) return;
  if (down_ || drop_filter_ || (tracer_ != nullptr && tracer_->active())) {
    // Entry drops and per-packet trace records need the full per-packet
    // path; these are cold configurations (fault injection, tracing runs).
    for (; i < end; ++i) send(std::move(batch[i]));
    return;
  }
  // Transmitter busy and nothing can drop at entry: no dequeue can
  // interleave with these admissions, so the queue takes the whole
  // remainder in one batched call (identical per-packet decisions).
  for (std::size_t k = i; k < end; ++k) batch[k].enqueued_at = sched_->now();
  queue_->enqueue_batch(batch, i, end);
}

}  // namespace tcppr::net
