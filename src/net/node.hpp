// Network node: forwards packets and hosts transport agents.
//
// Forwarding uses the packet's source route when present (multi-path
// experiments) and the node's static next-hop table otherwise. Agents
// (TCP senders/receivers, CBR sinks) register per flow id.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace tcppr::trace {
class Tracer;
}

namespace tcppr::net {

// A transport endpoint attached to a node.
class Agent {
 public:
  virtual ~Agent() = default;
  virtual void deliver(Packet&& pkt) = 0;
};

// Decides a full route for packets originated at a node; used to implement
// per-packet multi-path routing. Returning nullopt falls back to the
// node's next-hop table.
class SourceRoutingPolicy {
 public:
  struct Choice {
    RouteVec route;  // nodes after this one, ending at dst
    int path_id = -1;
  };
  virtual ~SourceRoutingPolicy() = default;
  virtual std::optional<Choice> choose_route(NodeId dst) = 0;
};

struct NodeStats {
  std::uint64_t originated = 0;  // packets injected by local agents
  std::uint64_t forwarded = 0;
  std::uint64_t delivered_to_agent = 0;
  std::uint64_t unroutable = 0;  // no next hop / no agent: dropped
};

class Node {
 public:
  explicit Node(NodeId id) : id_(id) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  void add_out_link(Link* link);
  void set_next_hop(NodeId dst, NodeId next_hop);
  void attach_agent(FlowId flow, Agent* agent);
  void detach_agent(FlowId flow);
  // Policy applies to packets originated here (not transit traffic).
  void set_source_routing_policy(SourceRoutingPolicy* policy) {
    routing_policy_ = policy;
  }
  void set_tracer(trace::Tracer* tracer, sim::Scheduler* sched) {
    tracer_ = tracer;
    sched_ = sched;
  }
  // ECMP-style equal-cost spreading for transit/originated traffic toward
  // dst: each packet picks uniformly among the given neighbors. Overrides
  // the single next-hop entry.
  void set_ecmp_next_hops(NodeId dst, std::vector<NodeId> next_hops,
                          sim::Rng rng);

  // Entry point for packets arriving from a link.
  void receive(Packet&& pkt);
  // Entry point for locally generated packets.
  void originate(Packet&& pkt);

  Link* link_to(NodeId neighbor) const;
  std::optional<NodeId> next_hop(NodeId dst) const;
  const NodeStats& stats() const { return stats_; }

 private:
  void forward(Packet&& pkt);

  NodeId id_;
  std::unordered_map<NodeId, Link*> out_links_;       // by neighbor id
  std::unordered_map<NodeId, NodeId> next_hop_table_;  // dst -> neighbor
  std::unordered_map<FlowId, Agent*> agents_;
  std::unordered_map<NodeId, std::vector<NodeId>> ecmp_table_;
  SourceRoutingPolicy* routing_policy_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  sim::Scheduler* sched_ = nullptr;
  sim::Rng ecmp_rng_{0};
  NodeStats stats_;
};

}  // namespace tcppr::net
