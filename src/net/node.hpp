// Network node: forwards packets and hosts transport agents.
//
// Forwarding uses the packet's source route when present (multi-path
// experiments) and the node's static next-hop table otherwise. Agents
// (TCP senders/receivers, CBR sinks) register per flow id.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"

namespace tcppr::trace {
class Tracer;
}

namespace tcppr::net {

// A transport endpoint attached to a node.
class Agent {
 public:
  virtual ~Agent() = default;
  virtual void deliver(Packet&& pkt) = 0;
  // Batched delivery: entries [begin, end) of the batch all belong to this
  // agent and arrived in one scheduler event. The default preserves
  // per-packet semantics exactly (senders keep it: their per-ACK
  // congestion updates are order-sensitive); the Receiver overrides it to
  // fold the batch into one ACK train.
  virtual void deliver_batch(PacketBatch& batch, std::size_t begin,
                             std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) deliver(std::move(batch[i]));
  }
};

// Decides a full route for packets originated at a node; used to implement
// per-packet multi-path routing. Returning nullopt falls back to the
// node's next-hop table.
class SourceRoutingPolicy {
 public:
  struct Choice {
    RouteVec route;  // nodes after this one, ending at dst
    int path_id = -1;
  };
  virtual ~SourceRoutingPolicy() = default;
  virtual std::optional<Choice> choose_route(NodeId dst) = 0;
  // Checkpoint visitor for policies with trajectory state (per-packet RNG
  // draws, pick counters); stateless policies keep the empty default.
  virtual void state(util::StateIO& io) { (void)io; }
};

struct NodeStats {
  std::uint64_t originated = 0;  // packets injected by local agents
  std::uint64_t forwarded = 0;
  std::uint64_t delivered_to_agent = 0;
  std::uint64_t unroutable = 0;  // no next hop / no agent: dropped
};

class Node {
 public:
  explicit Node(NodeId id) : id_(id) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  void add_out_link(Link* link);
  void set_next_hop(NodeId dst, NodeId next_hop);
  void attach_agent(FlowId flow, Agent* agent);
  void detach_agent(FlowId flow);
  // Fallback agent for flows with no per-flow registration: packets whose
  // flow id misses the agent table deliver here instead of counting as
  // unroutable. This is how the workload layer demultiplexes dynamically
  // arriving flows — one server agent accepts the first segment of a flow
  // that does not exist yet and creates its receiver on the spot (the
  // creation then registers per-flow, so the fallback is off the hot path
  // after the first packet). nullptr clears it. The fallback is never
  // stored in the one-entry lookup cache: the cache must keep pointing at
  // per-flow agents that register later under the same flow id.
  void set_default_agent(Agent* agent) { default_agent_ = agent; }
  Agent* default_agent() const { return default_agent_; }
  // Registered per-flow agents (does not count the default agent). The
  // lifecycle-leak tests assert this returns to baseline after churn.
  std::size_t agent_count() const { return agents_.size(); }
  // Policy applies to packets originated here (not transit traffic).
  void set_source_routing_policy(SourceRoutingPolicy* policy) {
    routing_policy_ = policy;
  }
  void set_tracer(trace::Tracer* tracer, sim::Scheduler* sched) {
    tracer_ = tracer;
    sched_ = sched;
  }
  // ECMP-style equal-cost spreading for transit/originated traffic toward
  // dst: each packet picks uniformly among the given neighbors. Overrides
  // the single next-hop entry.
  void set_ecmp_next_hops(NodeId dst, std::vector<NodeId> next_hops,
                          sim::Rng rng);

  // Entry point for packets arriving from a link.
  void receive(Packet&& pkt);
  // Batched entry point: a delivery run coalesced by the link pump. Each
  // entry carries the tie-break sequence of the delivery event it replaces
  // so the clock's current-event sequence advances per packet (buffered
  // trace records stay keyed exactly as in the unbatched engine).
  // Consecutive packets for the same agent hand off as one deliver_batch.
  void receive_batch(PacketBatch&& batch);
  // Entry point for locally generated packets.
  void originate(Packet&& pkt);
  // Burst entry point: a sender window-burst or receiver ACK train. Runs
  // the per-packet originate prologue (stats, routing policy, trace) in
  // order, then hands consecutive same-link runs to Link::send_batch.
  void originate_burst(PacketBatch&& batch);

  Link* link_to(NodeId neighbor) const;
  std::optional<NodeId> next_hop(NodeId dst) const;
  const NodeStats& stats() const { return stats_; }

  // Checkpoint/rollback visitor: the node's trajectory state is its ECMP
  // stream position and counters — tables and agent wiring are topology.
  // The one-entry agent cache resets on restore (an agent attached during
  // a rolled-back leg could be cached; lookups repopulate it).
  void state(util::StateIO& io) {
    io.pod(ecmp_rng_);
    io.pod(no_agent_warnings_);
    io.pod(stats_);
    // The attached routing policy's draws are part of this node's
    // trajectory (policy attachment itself is build-static).
    if (routing_policy_ != nullptr) routing_policy_->state(io);
    if (!io.saving()) {
      cached_flow_ = kInvalidFlow;
      cached_agent_ = nullptr;
    }
  }

 private:
  // Next-hop entry: the neighbor id plus the resolved link, so forwarding
  // pays one table lookup instead of two (dst -> neighbor -> link).
  struct Hop {
    NodeId via = kInvalidNode;
    Link* link = nullptr;
  };

  void forward(Packet&& pkt);
  // Forwarding decision only (source route / ECMP / next-hop table, with
  // the same stats and route_pos mutations as forward()); nullptr when
  // unroutable.
  Link* pick_link(Packet& pkt);
  // The originate() prologue shared with originate_burst().
  void originate_prologue(Packet& pkt);
  // Agent lookup with a one-entry cache: delivery streams are bursty per
  // flow, so consecutive lookups usually hit the same agent.
  Agent* find_agent(FlowId flow) {
    if (cached_agent_ != nullptr && cached_flow_ == flow) {
      return cached_agent_;
    }
    const auto it = agents_.find(flow);
    if (it == agents_.end()) return default_agent_;
    cached_flow_ = flow;
    cached_agent_ = it->second;
    return cached_agent_;
  }
  // Unroutable-delivery diagnostics are rate-limited per node: under a
  // churning workload every departed flow's in-flight ACKs arrive with no
  // agent (expected, they are counted and dropped), and a warning per
  // packet would drown the log.
  void warn_no_agent(FlowId flow);

  NodeId id_;
  std::unordered_map<NodeId, Link*> out_links_;     // by neighbor id
  std::unordered_map<NodeId, Hop> next_hop_table_;  // dst -> (neighbor, link)
  std::unordered_map<FlowId, Agent*> agents_;
  Agent* default_agent_ = nullptr;
  FlowId cached_flow_ = kInvalidFlow;
  Agent* cached_agent_ = nullptr;
  std::uint32_t no_agent_warnings_ = 0;
  std::unordered_map<NodeId, std::vector<NodeId>> ecmp_table_;
  SourceRoutingPolicy* routing_policy_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  sim::Scheduler* sched_ = nullptr;
  sim::Rng ecmp_rng_{0};
  NodeStats stats_;
};

}  // namespace tcppr::net
