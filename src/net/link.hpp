// Unidirectional point-to-point link: output queue + transmitter.
//
// Store-and-forward: a packet occupies the transmitter for
// size * 8 / bandwidth seconds, then arrives at the far node one
// propagation delay later. An optional Bernoulli loss model drops packets
// at the receiving end (models corruption, used by robustness tests).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/link_pump.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "util/ring_deque.hpp"

namespace tcppr::trace {
class Tracer;
}

namespace tcppr::telemetry {
class ReorderTap;
}

namespace tcppr::net {

class Node;

struct LinkStats {
  std::uint64_t delivered = 0;
  std::uint64_t bytes_delivered = 0;
  // All link-level drops: entry drops (down link / drop filter) plus
  // loss-model drops. Queue drops live in QueueStats.
  std::uint64_t lost = 0;
  std::uint64_t loss_model_lost = 0;  // subset of `lost`: Bernoulli model only
};

// Mailbox of one cut link in parallel mode: packets that finished their
// loss lottery on the source shard and are travelling toward a node owned
// by another shard. The source shard's thread appends during safe windows;
// the coordinator drains at the barrier (the window/barrier phase
// alternation is the synchronization — no locking). `stamp` is the
// tie-break sequence minted on the source shard at push time, i.e. the
// position the delivery-schedule op holds in the sequential run.
struct CrossLinkMsg {
  sim::TimePoint at;
  std::uint64_t stamp = 0;
  Packet pkt;
};
struct CrossLinkChannel {
  std::vector<CrossLinkMsg> buf;   // written by the source shard's thread
  std::uint64_t pushed = 0;        // source-thread counter
  std::uint64_t executed = 0;      // destination-thread counter
};

class Link {
 public:
  Link(sim::Scheduler& sched, NodeId from, NodeId to, double bandwidth_bps,
       sim::Duration prop_delay, std::unique_ptr<Queue> queue);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Wired once by Network after nodes exist.
  void set_destination(Node* node) { dst_node_ = node; }
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  // Telemetry tap observing this link's delivery stream (one-branch-when-
  // off, same discipline as the tracer). The tap is invoked from every
  // delivery call site — unbatched, batched, and cross-shard injected — so
  // it sees the full stream in delivery order regardless of engine mode.
  void set_telemetry_tap(telemetry::ReorderTap* tap) { tap_ = tap; }
  // Shares the network-wide recycling pool for in-flight packets. A link
  // constructed standalone (tests) lazily creates its own.
  void set_packet_pool(std::shared_ptr<PacketPool> pool) {
    pool_ = std::move(pool);
  }
  // Changes the propagation delay for future transmissions (mobility /
  // route-change models). Once the lookahead is frozen (parallel mode cut
  // link) the delay may only grow: the safe-horizon computation baked the
  // old delay in as this link's lookahead, and lowering it could let a
  // packet arrive inside an already-executed window.
  void set_prop_delay(sim::Duration delay) {
    TCPPR_CHECK(!lookahead_frozen_ || delay >= frozen_lookahead_);
    prop_delay_ = delay;
  }
  // --- Parallel-execution hooks (LP shard adoption) ----------------------
  // Re-points the link at the scheduler shard that owns its source node.
  // Only legal while idle (nothing transmitting or propagating).
  void set_scheduler(sim::Scheduler& sched);
  // Marks this link as a cut link: completed transmissions are pushed into
  // `channel` instead of being scheduled locally, and the current
  // propagation delay becomes the immutable lookahead floor.
  void set_remote_channel(CrossLinkChannel* channel);
  sim::Scheduler& scheduler() { return *sched_; }
  // Changes the drain rate for future transmissions (mid-run capacity
  // change; the fuzzer uses this to model route/handover bandwidth shifts).
  void set_bandwidth(double bandwidth_bps);
  // Random corruption loss applied on delivery.
  void set_loss_model(double loss_rate, sim::Rng rng);
  // Per-packet uniform extra delivery delay in [0, max_jitter] (wireless
  // MAC / scheduling variation). Jittered deliveries may arrive out of
  // order — an in-path reordering source independent of routing.
  void set_jitter(sim::Duration max_jitter, sim::Rng rng);
  // Deterministic drop hook (tests, failure injection): return true to
  // drop the packet at link entry.
  void set_drop_filter(std::function<bool(const Packet&)> filter) {
    drop_filter_ = std::move(filter);
  }
  // Administrative state: a down link drops everything offered to it
  // (mobility / outage models).
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  // --- Injected-arrivals ring (parallel mode cut links) ------------------
  // Cross-shard packets drained from the mailbox at a barrier park here
  // until their delivery time. Each entry gets one scheduler event on the
  // *destination* shard at the entry's exact (time, stamp) key, capturing
  // only `this` — so after a rollback the whole pending set is regenerated
  // from the serialized ring (injected_state), unlike a packet-consuming
  // lambda. Source-side stats and in-transit accounting already happened
  // at push time in complete_packet; delivery observation (telemetry tap,
  // node hand-off) happens on pop, at the same layer as local deliveries.
  // The pool is the destination LP's: pops run on the destination shard's
  // thread, and pools are not thread-safe.
  void set_injection_scheduler(sim::Scheduler* sched,
                               std::shared_ptr<PacketPool> pool) {
    injection_sched_ = sched;
    injection_pool_ = std::move(pool);
  }
  bool has_telemetry_tap() const { return tap_ != nullptr; }
  void queue_injected(sim::TimePoint at, std::uint64_t seq, Packet&& pkt);
  // Entries parked in the ring (counted into the conservation sweep's
  // external in-flight term alongside the mailbox residency).
  std::uint64_t injected_pending() const { return injected_.size(); }
  // Checkpoint visitor for the ring: destination-LP state (the pop events
  // live on the destination shard), serialized separately from the
  // source-LP state() below. Restore re-arms one pop event per entry.
  void injected_state(util::StateIO& io);

  // Hands a packet to this link; may drop it immediately if the queue is
  // full.
  void send(Packet&& pkt);
  // Hands batch entries [begin, end) to this link in order. Packets are
  // fed one at a time while the transmitter is idle (each may start a
  // transmission, which the next admission must observe); once the
  // transmitter is busy the rest takes the bulk-enqueue path, whose
  // per-packet admission decisions are identical.
  void send_batch(PacketBatch& batch, std::size_t begin, std::size_t end);

  // --- Batched hot path (LinkPump) ---------------------------------------
  // Routes this link's packet ops (tx completions, deliveries) through the
  // pump instead of dedicated scheduler events. The pump must be bound to
  // this link's scheduler; only legal while idle. nullptr restores the
  // unbatched per-event path.
  void set_pump(LinkPump* pump);
  // Teardown variant: drops the pump wiring and any batched in-flight
  // state even when the link is mid-transmission (parallel-run
  // destruction; pending packets return to the pool).
  void detach_pump();
  // Current head key of the given op stream, or nullopt when the stream is
  // empty. The pump validates its index entries against this on every heap
  // inspection — inline, it's a pair of loads on the hot path.
  std::optional<PumpKey> pump_op_key(PumpOp op) const {
    if (op == PumpOp::kTxComplete) {
      if (!tx_pending_) return std::nullopt;
      return tx_key_;
    }
    if (ring_.empty()) return std::nullopt;
    return PumpKey{ring_.front().at, ring_.front().seq};
  }
  // Executes the pending transmission-completion op (clock already at its
  // key): frees the transmitter, starts the next transmission, then runs
  // the completed packet's loss lottery / propagation setup.
  void pump_run_tx();
  // Executes the delivery at the ring head plus every same-time successor
  // the pump lets ride the current event, handing multi-packet runs to the
  // destination node as one PacketBatch.
  void pump_run_deliveries();

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  double bandwidth_bps() const { return bandwidth_bps_; }
  sim::Duration prop_delay() const { return prop_delay_; }
  const Queue& queue() const { return *queue_; }
  const LinkStats& stats() const { return stats_; }
  // Queue drops + loss-model drops.
  std::uint64_t total_drops() const {
    return queue_->stats().dropped + stats_.lost;
  }
  // Packets dequeued into the transmitter/propagation pipeline and not yet
  // delivered or loss-dropped. Together with queue lengths this lets the
  // validation layer account for every packet in flight.
  std::uint64_t in_transit() const { return in_transit_; }
  // Test-only mutation knob: stop decrementing the in-transit counter on
  // delivery, so the conservation invariant is violated on purpose. Used
  // by the checker's mutation self-test to prove it detects corruption.
  void corrupt_transit_accounting_for_test() {
    skip_transit_decrement_ = true;
  }

  // --- Checkpoint / migration --------------------------------------------
  // Source-LP trajectory state: queue contents, transmitter, propagation
  // ring, RNG positions, counters. In-flight pooled packets serialize by
  // value and re-checkout fresh pool slots on restore (slot identity is
  // not observable). The pump index is derived state — the caller reseeds
  // the pump after restoring every link on the shard.
  void state(util::StateIO& io);
  // Mid-run shard migration: re-points the link at its new owner shard
  // with traffic in flight (the state()/injected_state() restore pass that
  // follows regenerates every pending event there). Unlike set_scheduler
  // this does not require the link to be idle.
  void rebind_for_migration(sim::Scheduler& sched) {
    sched_ = &sched;
    queue_->set_time_source(sched_, bandwidth_bps_);
  }
  // Pump re-attachment across a migration: register with the new shard's
  // pump while mid-transmission (detach_pump first; restore then rebuilds
  // tx/ring state and the caller reseeds the pump).
  void attach_pump_for_migration(LinkPump* pump) {
    pump_ = pump;
    if (pump_ != nullptr) pump_id_ = pump_->add_link(this);
  }

 private:
  void start_transmission();
  void on_tx_complete(PooledPacket pkt);
  // Post-transmission half of a packet's journey: loss lottery, hop count,
  // jitter, then delivery scheduling (mailbox, pump ring, or dedicated
  // event). Mint order matches the unbatched engine exactly: the next
  // transmission's sequence first (start_transmission), then the loss
  // lottery draw, then this packet's delivery sequence.
  void complete_packet(PooledPacket pkt);
  // Delivery epilogue for one packet: stats, in-transit accounting, node
  // hand-off.
  void deliver_one(PooledPacket p);
  // Pops the injected-ring head (the entry whose event just fired) and
  // hands it to the destination node.
  void pop_injected();
  void arm_injected(sim::TimePoint at, std::uint64_t seq);
  // Sorted insert into the delivery ring (merge position by (at, seq);
  // append is O(1) for in-order deliveries, jittered ones swap backward).
  void insert_delivery(sim::TimePoint at, std::uint64_t seq,
                       PooledPacket pkt);
  PacketPool& pool();

  sim::Scheduler* sched_;
  NodeId from_;
  NodeId to_;
  double bandwidth_bps_;
  sim::Duration prop_delay_;
  CrossLinkChannel* remote_ = nullptr;
  bool lookahead_frozen_ = false;
  sim::Duration frozen_lookahead_ = sim::Duration::zero();
  std::unique_ptr<Queue> queue_;
  std::shared_ptr<PacketPool> pool_;
  Node* dst_node_ = nullptr;
  bool busy_ = false;
  bool down_ = false;
  bool skip_transit_decrement_ = false;  // mutation self-test only
  std::uint64_t in_transit_ = 0;
  double loss_rate_ = 0.0;
  sim::Rng loss_rng_;
  sim::Duration max_jitter_ = sim::Duration::zero();
  sim::Rng jitter_rng_;
  std::function<bool(const Packet&)> drop_filter_;
  trace::Tracer* tracer_ = nullptr;
  telemetry::ReorderTap* tap_ = nullptr;
  LinkStats stats_;

  // --- Batched hot path state --------------------------------------------
  LinkPump* pump_ = nullptr;
  std::uint32_t pump_id_ = 0;
  // Pending transmission-completion op (at most one; the transmitter is
  // serial).
  bool tx_pending_ = false;
  PumpKey tx_key_{};
  PooledPacket tx_pkt_{};
  // Pending deliveries in (at, seq) order.
  struct DeliveryEntry {
    sim::TimePoint at;
    std::uint64_t seq;
    PooledPacket pkt;
  };
  util::RingDeque<DeliveryEntry> ring_;
  // Cross-shard arrivals parked until their delivery time, in (at, seq)
  // order. Popped by per-entry events on injection_sched_ (the destination
  // node's shard; equals sched_ once a migration makes the link internal).
  struct InjectedEntry {
    sim::TimePoint at;
    std::uint64_t seq = 0;
    Packet pkt;
  };
  util::RingDeque<InjectedEntry> injected_;
  // In-flight deliveries displaced by a migration that cut this link:
  // parked by state() restore, drained into injected_ by the
  // injected_state() restore pass that follows (which clears the ring
  // before re-reading it). Empty outside a migration restore.
  std::vector<InjectedEntry> rehomed_;
  sim::Scheduler* injection_sched_ = nullptr;
  std::shared_ptr<PacketPool> injection_pool_;
  // Mint-order bookkeeping: the last transmission-schedule op minted, used
  // to assert that a delivery op minted in the same instant (i.e. after
  // the loss lottery that follows the mint) sorts after it — the op-order
  // invariant batching relies on.
  bool last_tx_mint_valid_ = false;
  PumpKey last_tx_mint_{};
};

}  // namespace tcppr::net
