#include "net/node.hpp"

#include <utility>

#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::net {

void Node::add_out_link(Link* link) {
  TCPPR_CHECK(link != nullptr);
  TCPPR_CHECK(link->from() == id_);
  const auto [it, inserted] = out_links_.emplace(link->to(), link);
  TCPPR_CHECK(inserted);  // one link per neighbor direction
  (void)it;
}

void Node::set_next_hop(NodeId dst, NodeId next_hop) {
  TCPPR_CHECK(out_links_.contains(next_hop));
  next_hop_table_[dst] = next_hop;
}

void Node::attach_agent(FlowId flow, Agent* agent) {
  TCPPR_CHECK(agent != nullptr);
  const auto [it, inserted] = agents_.emplace(flow, agent);
  TCPPR_CHECK(inserted);
  (void)it;
}

void Node::detach_agent(FlowId flow) { agents_.erase(flow); }

void Node::set_ecmp_next_hops(NodeId dst, std::vector<NodeId> next_hops,
                              sim::Rng rng) {
  TCPPR_CHECK(!next_hops.empty());
  for (const NodeId hop : next_hops) {
    TCPPR_CHECK(out_links_.contains(hop));
  }
  ecmp_table_[dst] = std::move(next_hops);
  ecmp_rng_ = rng;
}

Link* Node::link_to(NodeId neighbor) const {
  const auto it = out_links_.find(neighbor);
  return it == out_links_.end() ? nullptr : it->second;
}

std::optional<NodeId> Node::next_hop(NodeId dst) const {
  const auto it = next_hop_table_.find(dst);
  if (it == next_hop_table_.end()) return std::nullopt;
  return it->second;
}

void Node::receive(Packet&& pkt) {
  if (pkt.dst == id_) {
    const auto it = agents_.find(pkt.tcp.flow);
    if (it == agents_.end()) {
      ++stats_.unroutable;
      TCPPR_LOG_WARN("node", "node %d: no agent for flow %d", id_,
                     pkt.tcp.flow);
      return;
    }
    ++stats_.delivered_to_agent;
    if (tracer_ != nullptr) {
      tracer_->emit(sched_->now(), trace::EventType::kDeliver, pkt, id_, id_);
    }
    it->second->deliver(std::move(pkt));
    return;
  }
  forward(std::move(pkt));
}

void Node::originate(Packet&& pkt) {
  ++stats_.originated;
  pkt.src = id_;
  if (routing_policy_ != nullptr) {
    if (auto choice = routing_policy_->choose_route(pkt.dst)) {
      pkt.source_route = std::move(choice->route);
      pkt.route_pos = 0;
      pkt.path_id = choice->path_id;
    }
  }
  if (tracer_ != nullptr) {
    tracer_->emit(sched_->now(), trace::EventType::kOriginate, pkt, id_,
                  pkt.dst);
  }
  if (pkt.dst == id_) {  // loopback, mostly for tests
    receive(std::move(pkt));
    return;
  }
  forward(std::move(pkt));
}

void Node::forward(Packet&& pkt) {
  NodeId next = kInvalidNode;
  if (!pkt.source_route.empty() && pkt.route_pos < pkt.source_route.size()) {
    next = pkt.source_route[pkt.route_pos++];
  } else if (const auto ecmp = ecmp_table_.find(pkt.dst);
             ecmp != ecmp_table_.end()) {
    next = ecmp->second[ecmp_rng_.uniform_int(ecmp->second.size())];
  } else if (auto hop = next_hop(pkt.dst)) {
    next = *hop;
  }
  if (next == kInvalidNode) {
    ++stats_.unroutable;
    TCPPR_LOG_WARN("node", "node %d: no route to %d", id_, pkt.dst);
    return;
  }
  Link* link = link_to(next);
  if (link == nullptr) {
    ++stats_.unroutable;
    TCPPR_LOG_WARN("node", "node %d: no link to next hop %d", id_, next);
    return;
  }
  ++stats_.forwarded;
  link->send(std::move(pkt));
}

}  // namespace tcppr::net
