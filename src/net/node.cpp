#include "net/node.hpp"

#include <utility>

#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::net {

void Node::add_out_link(Link* link) {
  TCPPR_CHECK(link != nullptr);
  TCPPR_CHECK(link->from() == id_);
  const auto [it, inserted] = out_links_.emplace(link->to(), link);
  TCPPR_CHECK(inserted);  // one link per neighbor direction
  (void)it;
}

void Node::set_next_hop(NodeId dst, NodeId next_hop) {
  const auto link = out_links_.find(next_hop);
  TCPPR_CHECK(link != out_links_.end());
  next_hop_table_[dst] = Hop{next_hop, link->second};
}

void Node::attach_agent(FlowId flow, Agent* agent) {
  TCPPR_CHECK(agent != nullptr);
  const auto [it, inserted] = agents_.emplace(flow, agent);
  TCPPR_CHECK(inserted);
  (void)it;
}

void Node::detach_agent(FlowId flow) {
  agents_.erase(flow);
  if (cached_flow_ == flow) cached_agent_ = nullptr;
}

void Node::set_ecmp_next_hops(NodeId dst, std::vector<NodeId> next_hops,
                              sim::Rng rng) {
  TCPPR_CHECK(!next_hops.empty());
  for (const NodeId hop : next_hops) {
    TCPPR_CHECK(out_links_.contains(hop));
  }
  ecmp_table_[dst] = std::move(next_hops);
  ecmp_rng_ = rng;
}

Link* Node::link_to(NodeId neighbor) const {
  const auto it = out_links_.find(neighbor);
  return it == out_links_.end() ? nullptr : it->second;
}

std::optional<NodeId> Node::next_hop(NodeId dst) const {
  const auto it = next_hop_table_.find(dst);
  if (it == next_hop_table_.end()) return std::nullopt;
  return it->second.via;
}

void Node::warn_no_agent(FlowId flow) {
  static constexpr std::uint32_t kMaxWarnings = 8;
  if (no_agent_warnings_ >= kMaxWarnings) return;
  ++no_agent_warnings_;
  TCPPR_LOG_WARN("node", "node %d: no agent for flow %d%s", id_, flow,
                 no_agent_warnings_ == kMaxWarnings
                     ? " (suppressing further no-agent warnings)"
                     : "");
}

void Node::receive(Packet&& pkt) {
  if (pkt.dst == id_) {
    Agent* agent = find_agent(pkt.tcp.flow);
    if (agent == nullptr) {
      ++stats_.unroutable;
      warn_no_agent(pkt.tcp.flow);
      return;
    }
    ++stats_.delivered_to_agent;
    if (tracer_ != nullptr && tracer_->active()) {
      tracer_->emit(sched_->now(), trace::EventType::kDeliver, pkt, id_, id_);
    }
    agent->deliver(std::move(pkt));
    return;
  }
  forward(std::move(pkt));
}

void Node::receive_batch(PacketBatch&& batch) {
  const std::size_t n = batch.size();
  std::size_t i = 0;
  while (i < n) {
    // Each packet's processing runs under the sequence of the delivery
    // event it would have been, so anything it emits (trace records in
    // particular) is keyed identically to the unbatched run.
    if (sched_ != nullptr && batch.seq(i) != 0) {
      sched_->advance_batched_op(sched_->now(), batch.seq(i));
    }
    Packet& pkt = batch[i];
    if (pkt.dst != id_) {
      forward(std::move(pkt));
      ++i;
      continue;
    }
    Agent* agent = find_agent(pkt.tcp.flow);
    if (agent == nullptr) {
      ++stats_.unroutable;
      warn_no_agent(pkt.tcp.flow);
      ++i;
      continue;
    }
    // Extend the run over consecutive packets for the same agent; the
    // per-packet delivery epilogue (stats, kDeliver record under the
    // packet's own sequence) happens here, the agent sees one batch.
    const bool tracing = tracer_ != nullptr && tracer_->active();
    std::size_t j = i;
    for (;;) {
      if (j > i && sched_ != nullptr && batch.seq(j) != 0) {
        sched_->advance_batched_op(sched_->now(), batch.seq(j));
      }
      ++stats_.delivered_to_agent;
      if (tracing) {
        tracer_->emit(sched_->now(), trace::EventType::kDeliver, batch[j],
                      id_, id_);
      }
      ++j;
      if (j >= n || batch[j].dst != id_ ||
          batch[j].tcp.flow != pkt.tcp.flow) {
        break;
      }
    }
    agent->deliver_batch(batch, i, j);
    i = j;
  }
}

void Node::originate_prologue(Packet& pkt) {
  ++stats_.originated;
  pkt.src = id_;
  if (routing_policy_ != nullptr) {
    if (auto choice = routing_policy_->choose_route(pkt.dst)) {
      pkt.source_route = std::move(choice->route);
      pkt.route_pos = 0;
      pkt.path_id = choice->path_id;
    }
  }
  if (tracer_ != nullptr && tracer_->active()) {
    tracer_->emit(sched_->now(), trace::EventType::kOriginate, pkt, id_,
                  pkt.dst);
  }
}

void Node::originate(Packet&& pkt) {
  originate_prologue(pkt);
  if (pkt.dst == id_) {  // loopback, mostly for tests
    receive(std::move(pkt));
    return;
  }
  forward(std::move(pkt));
}

void Node::originate_burst(PacketBatch&& batch) {
  const std::size_t n = batch.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Loopback packets re-enter agent processing between routing
    // decisions; that interleaving only the per-packet path preserves.
    if (batch[i].dst == id_) {
      for (std::size_t k = 0; k < n; ++k) originate(std::move(batch[k]));
      return;
    }
  }
  // Per-packet prologue and routing decision run in order (policy and ECMP
  // RNG draws keep their sequence); consecutive packets choosing the same
  // link flush as one send_batch. Relative to the per-packet path this
  // only moves link admissions after later routing decisions — admissions
  // touch no RNG and no routing state, so every per-packet outcome is
  // unchanged.
  Link* run_link = nullptr;
  std::size_t run_begin = 0;
  auto flush = [&](std::size_t run_end) {
    if (run_link == nullptr || run_end == run_begin) return;
    if (run_end - run_begin == 1) {
      run_link->send(std::move(batch[run_begin]));
    } else {
      run_link->send_batch(batch, run_begin, run_end);
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    originate_prologue(batch[i]);
    Link* link = pick_link(batch[i]);
    if (link != run_link) {
      flush(i);
      run_link = link;
      run_begin = i;
    }
  }
  flush(n);
}

Link* Node::pick_link(Packet& pkt) {
  NodeId next = kInvalidNode;
  if (!pkt.source_route.empty() && pkt.route_pos < pkt.source_route.size()) {
    next = pkt.source_route[pkt.route_pos++];
  } else if (!ecmp_table_.empty()) {
    if (const auto ecmp = ecmp_table_.find(pkt.dst);
        ecmp != ecmp_table_.end()) {
      next = ecmp->second[ecmp_rng_.uniform_int(ecmp->second.size())];
    }
  }
  if (next == kInvalidNode) {
    // Static routing fast path: the table entry carries the resolved link,
    // so the common case is a single hash lookup.
    const auto it = next_hop_table_.find(pkt.dst);
    if (it != next_hop_table_.end()) {
      ++stats_.forwarded;
      return it->second.link;
    }
    ++stats_.unroutable;
    TCPPR_LOG_WARN("node", "node %d: no route to %d", id_, pkt.dst);
    return nullptr;
  }
  Link* link = link_to(next);
  if (link == nullptr) {
    ++stats_.unroutable;
    TCPPR_LOG_WARN("node", "node %d: no link to next hop %d", id_, next);
    return nullptr;
  }
  ++stats_.forwarded;
  return link;
}

void Node::forward(Packet&& pkt) {
  Link* link = pick_link(pkt);
  if (link != nullptr) link->send(std::move(pkt));
}

}  // namespace tcppr::net
