// Per-event packet batch: the carrier the batched hot path hands between
// layers (link delivery runs -> Node::receive_batch -> Agent::deliver_batch,
// sender send-bursts -> Node::originate_burst -> Link::send_batch).
//
// Small-buffer container in the spirit of util::InlineVec, which cannot
// hold Packet itself (InlineVec is restricted to trivially copyable
// element types): the first kInline entries live inline in the batch —
// enough for a typical delivery run or ACK train without touching the
// allocator — and larger bursts spill to one heap buffer. Each entry
// optionally carries the scheduler tie-break sequence of the event the
// packet's individual delivery would have been (0 when the batch was built
// outside the pump, e.g. a send-burst), so downstream layers can advance
// the clock's current-event sequence per packet and keep buffered trace
// records keyed exactly as the unbatched engine keys them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "net/packet.hpp"
#include "util/check.hpp"

namespace tcppr::net {

class PacketBatch {
 public:
  struct Entry {
    Packet pkt;
    std::uint64_t seq;
  };

  static constexpr std::size_t kInline = 8;

  PacketBatch() = default;
  PacketBatch(const PacketBatch&) = delete;
  PacketBatch& operator=(const PacketBatch&) = delete;
  PacketBatch(PacketBatch&& other) noexcept { steal(std::move(other)); }
  PacketBatch& operator=(PacketBatch&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(std::move(other));
    }
    return *this;
  }
  ~PacketBatch() { destroy(); }

  void push(Packet&& pkt, std::uint64_t seq = 0) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(data_ + size_)) Entry{std::move(pkt), seq};
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Packet& operator[](std::size_t i) {
    TCPPR_DCHECK(i < size_);
    return data_[i].pkt;
  }
  const Packet& operator[](std::size_t i) const {
    TCPPR_DCHECK(i < size_);
    return data_[i].pkt;
  }
  std::uint64_t seq(std::size_t i) const {
    TCPPR_DCHECK(i < size_);
    return data_[i].seq;
  }

  void clear() {
    destroy();
    data_ = inline_data();
    size_ = 0;
    cap_ = kInline;
  }

 private:
  Entry* inline_data() { return reinterpret_cast<Entry*>(inline_); }
  bool on_heap() const {
    return data_ != reinterpret_cast<const Entry*>(inline_);
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    Entry* fresh = static_cast<Entry*>(
        ::operator new(sizeof(Entry) * new_cap, std::align_val_t{alignof(Entry)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) Entry{std::move(data_[i])};
      data_[i].~Entry();
    }
    if (on_heap()) ::operator delete(data_, std::align_val_t{alignof(Entry)});
    data_ = fresh;
    cap_ = new_cap;
  }

  void destroy() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~Entry();
    if (on_heap()) ::operator delete(data_, std::align_val_t{alignof(Entry)});
  }

  void steal(PacketBatch&& other) {
    if (other.on_heap()) {
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
    } else {
      data_ = inline_data();
      size_ = other.size_;
      cap_ = kInline;
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) Entry{std::move(other.data_[i])};
        other.data_[i].~Entry();
      }
    }
    other.data_ = other.inline_data();
    other.size_ = 0;
    other.cap_ = kInline;
  }

  Entry* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t cap_ = kInline;
  alignas(Entry) std::byte inline_[sizeof(Entry) * kInline];
};

}  // namespace tcppr::net
