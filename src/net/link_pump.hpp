// LinkPump: per-scheduler carrier for batched packet ops.
//
// The unbatched engine schedules one event per packet op — a transmission
// completion, then a delivery — so events/packet >= 2 per hop. The pump
// inverts that: links register their op streams here, each op keyed with
// the exact (time, tie-break sequence) its dedicated event would have
// carried (the link mints the sequence at the same program point with
// Scheduler::mint_seq), and the pump keeps exactly ONE scheduler event
// parked at the earliest key. When it fires, the pump executes the popped
// op and then keeps going: as long as the earliest remaining op would be
// the very next thing the scheduler ran anyway (Scheduler::would_fire_next)
// it advances the clock to that op's key (advance_batched_op) and executes
// it inside the same event. Deliveries landing back to back on one link
// additionally coalesce into a PacketBatch handed to the node in one call
// (see Link::pump_run_deliveries). Every op still executes at exactly the
// (time, seq) position it holds in the unbatched schedule, so delivery
// order — and therefore the determinism oracle's kDeliver stream — is
// byte-identical; only the number of scheduler events shrinks.
//
// Index structure: a private heap holds one entry per op-stream *head*
// (plus stale entries left behind when an earlier op overtook a former
// head — the jitter reorder case). An entry is valid iff its key still
// matches the owning link's current head key; stale entries are skipped on
// pop, mirroring the scheduler's own lazy cancellation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::net {

class Link;

// Key of a pump op: the (time, tie-break sequence) of the scheduler event
// the op replaces.
struct PumpKey {
  sim::TimePoint at;
  std::uint64_t seq = 0;
};

enum class PumpOp : std::uint32_t { kTxComplete = 0, kDeliver = 1 };

// Process-wide toggle for the batched hot path, read by Network at
// construction (default on). Runs built with it off schedule one event per
// packet op, exactly the pre-batching engine — the comparison baseline the
// equivalence suite and benches use.
void set_hot_path_batching(bool on);
bool hot_path_batching();

class LinkPump {
 public:
  struct Stats {
    std::uint64_t events = 0;  // carrier events fired
    std::uint64_t ops = 0;     // packet ops executed (>= events)
    std::uint64_t delivery_runs = 0;
    std::uint64_t delivered_in_runs = 0;
  };
  // log2 histogram of delivery-run lengths: bucket i counts runs of length
  // in [2^i, 2^(i+1)); the last bucket is open-ended (>= 128).
  using RunHistogram = std::array<std::uint64_t, 8>;

  explicit LinkPump(sim::Scheduler& sched) : sched_(&sched) {}
  LinkPump(const LinkPump&) = delete;
  LinkPump& operator=(const LinkPump&) = delete;
  ~LinkPump();

  sim::Scheduler& scheduler() { return *sched_; }

  // Registers a link and returns the id it must pass to push_op. Links on
  // this pump must be bound to the same scheduler.
  std::uint32_t add_link(Link* link);

  // A new head appeared on `link_id`'s op stream. Outside a batch the
  // parked carrier event is moved earlier when the new head precedes it;
  // inside a batch the main loop re-parks after draining.
  void push_op(PumpKey k, std::uint32_t link_id, PumpOp op);

  // Called by a link mid-delivery-run: true when the op keyed `k` (the
  // link's next ring entry) may ride the current event — it precedes every
  // other pump op and every pending scheduler event. On success the clock
  // has been advanced to `k` and the caller must execute the op.
  bool try_extend(PumpKey k);

  // Per-link delivery-run length accounting (obs: batch-size histogram).
  void note_delivery_run(std::uint32_t link_id, std::size_t len);

  const Stats& stats() const { return stats_; }
  const RunHistogram& run_histogram(std::uint32_t link_id) const {
    return histograms_[link_id];
  }
  std::size_t link_count() const { return links_.size(); }
  // Sum of all per-link histograms.
  RunHistogram aggregate_histogram() const;

 private:
  void on_event();
  void park(PumpKey k);
  bool entry_valid(const sim::QueuedEvent& e) const;
  // Pops stale entries; returns the earliest valid one, or nullopt.
  std::optional<sim::QueuedEvent> pop_valid_min();
  // Like pop_valid_min but leaves the entry indexed.
  std::optional<sim::QueuedEvent> peek_valid_min();

  sim::Scheduler* sched_;
  std::vector<Link*> links_;
  std::vector<RunHistogram> histograms_;
  sim::HeapQueue heap_;  // entry id = (link_id << 1) | op
  sim::EventId parked_{};
  PumpKey parked_key_{};
  bool in_batch_ = false;
  Stats stats_;
};

}  // namespace tcppr::net
