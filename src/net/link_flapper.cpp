#include "net/link_flapper.hpp"

#include <utility>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace tcppr::net {

LinkFlapper::LinkFlapper(sim::Scheduler& sched, std::vector<Link*> links,
                         Config config)
    : sched_(&sched),
      links_(std::move(links)),
      config_(config),
      rng_(config.seed),
      timer_(sched) {
  TCPPR_CHECK(!links_.empty());
  TCPPR_CHECK(config_.mean_up > sim::Duration::zero());
  TCPPR_CHECK(config_.mean_down > sim::Duration::zero());
}

void LinkFlapper::set_metric_registry(obs::MetricRegistry* registry,
                                      const std::string& label) {
  reg_ = registry;
  if (reg_ == nullptr) return;
  m_transitions_ = reg_->intern("flap.transitions[" + label + "]",
                                obs::MetricKind::kGauge);
  m_down_ = reg_->intern("flap.down[" + label + "]", obs::MetricKind::kGauge);
  m_down_time_ =
      reg_->intern("flap.down_time_s[" + label + "]", obs::MetricKind::kGauge);
}

sim::Duration LinkFlapper::down_time() const {
  sim::Duration total = down_time_;
  if (down_) total = total + (sched_->now() - down_since_);
  return total;
}

void LinkFlapper::emit_metrics() {
  if (reg_ == nullptr || !reg_->active()) return;
  const sim::TimePoint now = sched_->now();
  reg_->set(now, m_transitions_, kInvalidFlow,
            static_cast<double>(transitions_));
  reg_->set(now, m_down_, kInvalidFlow, down_ ? 1.0 : 0.0);
  reg_->set(now, m_down_time_, kInvalidFlow, down_time().as_seconds());
}

void LinkFlapper::start() {
  TCPPR_CHECK(!running_);
  running_ = true;
  down_ = false;
  timer_.schedule_in(
      sim::Duration::seconds(rng_.exponential(config_.mean_up.as_seconds())),
      [this] { toggle(); });
}

void LinkFlapper::stop() {
  running_ = false;
  timer_.cancel();
  if (down_) {
    for (Link* link : links_) link->set_down(false);
    down_time_ = down_time_ + (sched_->now() - down_since_);
    down_ = false;
  }
  emit_metrics();
}

void LinkFlapper::toggle() {
  if (!running_) return;
  down_ = !down_;
  ++transitions_;
  if (down_) {
    down_since_ = sched_->now();
  } else {
    down_time_ = down_time_ + (sched_->now() - down_since_);
  }
  for (Link* link : links_) link->set_down(down_);
  emit_metrics();
  const sim::Duration mean = down_ ? config_.mean_down : config_.mean_up;
  timer_.schedule_in(
      sim::Duration::seconds(rng_.exponential(mean.as_seconds())),
      [this] { toggle(); });
}

}  // namespace tcppr::net
