#include "net/link_flapper.hpp"

#include <utility>

#include "util/check.hpp"

namespace tcppr::net {

LinkFlapper::LinkFlapper(sim::Scheduler& sched, std::vector<Link*> links,
                         Config config)
    : sched_(sched),
      links_(std::move(links)),
      config_(config),
      rng_(config.seed),
      timer_(sched) {
  TCPPR_CHECK(!links_.empty());
  TCPPR_CHECK(config_.mean_up > sim::Duration::zero());
  TCPPR_CHECK(config_.mean_down > sim::Duration::zero());
}

void LinkFlapper::start() {
  TCPPR_CHECK(!running_);
  running_ = true;
  down_ = false;
  timer_.schedule_in(
      sim::Duration::seconds(rng_.exponential(config_.mean_up.as_seconds())),
      [this] { toggle(); });
}

void LinkFlapper::stop() {
  running_ = false;
  timer_.cancel();
  if (down_) {
    for (Link* link : links_) link->set_down(false);
    down_ = false;
  }
}

void LinkFlapper::toggle() {
  if (!running_) return;
  down_ = !down_;
  ++transitions_;
  for (Link* link : links_) link->set_down(down_);
  const sim::Duration mean = down_ ? config_.mean_down : config_.mean_up;
  timer_.schedule_in(
      sim::Duration::seconds(rng_.exponential(mean.as_seconds())),
      [this] { toggle(); });
}

}  // namespace tcppr::net
