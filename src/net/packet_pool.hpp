// Free-list recycling pool for in-flight packets.
//
// The event hot path hands a packet to the scheduler twice per hop
// (transmission completion, then propagation); capturing the ~300-byte
// Packet by value in those callbacks would overflow the scheduler's inline
// callback buffer and put a heap allocation back on every event. Instead
// the link checks packets out of a pool and captures a PooledPacket — a
// unique_ptr whose 32 bytes fit the inline buffer with room for `this`.
//
// Slots are indexed and generation-tagged: the free list holds 32-bit slot
// indices, and each slot carries a generation that bumps every time the
// slot is released. A Ref{index, generation} taken by the bulk API
// (alloc_n/free_n — one free-list splice for a whole batch, no per-packet
// branch) is therefore safe across bulk cycles: a stale Ref whose slot was
// recycled fails the generation check instead of aliasing the new
// occupant.
//
// Ownership: the pool is held by shared_ptr. Each PooledPacket's deleter
// keeps a reference, so a callback that is destroyed without running (a
// scheduler torn down with pending deliveries after its network is gone —
// the teardown order of Scenario) still releases into live pool memory.
// The pool owns every Packet it ever allocated; packets released after the
// last external reference drops simply die with the pool.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "util/check.hpp"

namespace tcppr::net {

class PacketPool;

// Deleter that returns the packet's slot to its pool instead of freeing it.
struct PacketReturner {
  std::shared_ptr<PacketPool> pool;
  std::uint32_t index = 0;
  void operator()(Packet* pkt) const;
};

using PooledPacket = std::unique_ptr<Packet, PacketReturner>;

class PacketPool : public std::enable_shared_from_this<PacketPool> {
 public:
  // Handle to a bulk-reserved slot. Valid until the slot is released
  // (adopt + PooledPacket destruction, free_n, or release); any later use
  // trips the generation check.
  struct Ref {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;
  };

  static std::shared_ptr<PacketPool> create() {
    return std::make_shared<PacketPool>();
  }

  // Checks a packet out of the free list (allocating only when the pool is
  // empty) and moves src into it. InlineVec fields keep any heap capacity
  // the recycled packet had, so a warm pool allocates nothing.
  PooledPacket make(Packet&& src) {
    const std::uint32_t index = acquire();
    Packet* pkt = storage_[index].get();
    *pkt = std::move(src);
    return PooledPacket{pkt, PacketReturner{shared_from_this(), index}};
  }

  // Checks a slot out without touching its contents: the recycled packet's
  // stale fields are still there, so the caller must overwrite the slot
  // wholesale (e.g. Queue::dequeue_into) before the packet is read.
  PooledPacket checkout() {
    const std::uint32_t index = acquire();
    return PooledPacket{storage_[index].get(),
                        PacketReturner{shared_from_this(), index}};
  }

  // Reserves n slots in one free-list splice: after a (cold-pool-only)
  // growth loop tops the free list up, the refs are carved off its tail
  // with a single resize — no per-packet empty-check branch.
  void alloc_n(std::size_t n, Ref* out) {
    while (free_.size() < n) {
      storage_.push_back(std::make_unique<Packet>());
      gens_.push_back(1);
      free_.push_back(static_cast<std::uint32_t>(storage_.size() - 1));
    }
    const std::size_t base = free_.size() - n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t index = free_[base + i];
      out[i] = Ref{index, gens_[index]};
    }
    free_.resize(base);
  }

  // Returns n bulk-reserved slots in one splice; every ref dies here (the
  // generation bump invalidates copies).
  void free_n(const Ref* refs, std::size_t n) {
    const std::size_t base = free_.size();
    free_.resize(base + n);
    for (std::size_t i = 0; i < n; ++i) {
      TCPPR_DCHECK(current(refs[i]));
      bump_generation(refs[i].index);
      free_[base + i] = refs[i].index;
    }
  }

  // True while the ref's slot has not been recycled since it was reserved.
  bool current(Ref r) const {
    return r.index < gens_.size() && gens_[r.index] == r.generation;
  }

  // Moves src into a bulk-reserved slot and binds it to a PooledPacket,
  // which releases the slot on destruction exactly like make().
  PooledPacket adopt(Ref r, Packet&& src) {
    TCPPR_DCHECK(current(r));
    Packet* pkt = storage_[r.index].get();
    *pkt = std::move(src);
    return PooledPacket{pkt, PacketReturner{shared_from_this(), r.index}};
  }

  void release(std::uint32_t index) {
    bump_generation(index);
    free_.push_back(index);
  }

  std::size_t allocated() const { return storage_.size(); }
  std::size_t idle() const { return free_.size(); }

 private:
  std::uint32_t acquire() {
    if (free_.empty()) {
      storage_.push_back(std::make_unique<Packet>());
      gens_.push_back(1);
      return static_cast<std::uint32_t>(storage_.size() - 1);
    }
    const std::uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }

  void bump_generation(std::uint32_t index) {
    if (++gens_[index] == 0) gens_[index] = 1;
  }

  std::vector<std::unique_ptr<Packet>> storage_;
  std::vector<std::uint32_t> gens_;  // parallel to storage_
  std::vector<std::uint32_t> free_;  // slot indices, LIFO
};

inline void PacketReturner::operator()(Packet*) const { pool->release(index); }

}  // namespace tcppr::net
