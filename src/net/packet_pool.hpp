// Free-list recycling pool for in-flight packets.
//
// The event hot path hands a packet to the scheduler twice per hop
// (transmission completion, then propagation); capturing the ~300-byte
// Packet by value in those callbacks would overflow the scheduler's inline
// callback buffer and put a heap allocation back on every event. Instead
// the link checks packets out of a pool and captures a PooledPacket — a
// unique_ptr whose 24 bytes fit the inline buffer with room for `this`.
//
// Ownership: the pool is held by shared_ptr. Each PooledPacket's deleter
// keeps a reference, so a callback that is destroyed without running (a
// scheduler torn down with pending deliveries after its network is gone —
// the teardown order of Scenario) still releases into live pool memory.
// The pool owns every Packet it ever allocated; packets released after the
// last external reference drops simply die with the pool.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace tcppr::net {

class PacketPool;

// Deleter that returns the packet to its pool instead of freeing it.
struct PacketReturner {
  std::shared_ptr<PacketPool> pool;
  void operator()(Packet* pkt) const;
};

using PooledPacket = std::unique_ptr<Packet, PacketReturner>;

class PacketPool : public std::enable_shared_from_this<PacketPool> {
 public:
  static std::shared_ptr<PacketPool> create() {
    return std::make_shared<PacketPool>();
  }

  // Checks a packet out of the free list (allocating only when the pool is
  // empty) and moves src into it. InlineVec fields keep any heap capacity
  // the recycled packet had, so a warm pool allocates nothing.
  PooledPacket make(Packet&& src) {
    Packet* pkt;
    if (free_.empty()) {
      storage_.push_back(std::make_unique<Packet>());
      pkt = storage_.back().get();
    } else {
      pkt = free_.back();
      free_.pop_back();
    }
    *pkt = std::move(src);
    return PooledPacket{pkt, PacketReturner{shared_from_this()}};
  }

  void release(Packet* pkt) { free_.push_back(pkt); }

  std::size_t allocated() const { return storage_.size(); }
  std::size_t idle() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<Packet>> storage_;
  std::vector<Packet*> free_;
};

inline void PacketReturner::operator()(Packet* pkt) const {
  pool->release(pkt);
}

}  // namespace tcppr::net
