// Packet model.
//
// Sequence numbers are packet-granularity (one segment == one sequence
// unit), the convention ns-2 uses and the one under which the paper's
// results were produced. Payload size still matters for link serialization
// and queue byte accounting.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.hpp"
#include "util/inline_vec.hpp"
#include "util/state_io.hpp"

namespace tcppr::net {

using NodeId = int;
using FlowId = int;
using SeqNo = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr FlowId kInvalidFlow = -1;

// kTcpClose is the FIN analogue the flow lifecycle layer (src/workload)
// sends after a transfer is fully acknowledged: it tells the receiver-side
// demux that the flow departed so its state can be reclaimed. Transports
// that never close (the paper's long-lived FTP flows) never see one.
enum class PacketType : std::uint8_t { kTcpData, kTcpAck, kTcpClose, kCbr };

// Half-open SACK block [begin, end) in packet-granularity sequence space.
struct SackBlock {
  SeqNo begin = 0;
  SeqNo end = 0;
  friend constexpr bool operator==(const SackBlock&, const SackBlock&) = default;
};

// RFC 2018 caps a SACK option at 3 blocks (4 with the RFC 2883 D-SACK
// slot), so four inline slots cover every ACK without touching the heap.
using SackVec = util::InlineVec<SackBlock, 4>;
// Source routes in the paper's topologies are a handful of hops; eight
// inline slots cover the parking-lot and multipath configurations.
using RouteVec = util::InlineVec<NodeId, 8>;

// TCP header fields relevant at packet granularity. A real header is 40
// bytes; options (SACK blocks, timestamps) ride along for the variants that
// need them and are ignored by the ones that don't.
struct TcpHeader {
  FlowId flow = kInvalidFlow;
  SeqNo seq = 0;         // data: segment number
  SeqNo ack = 0;         // ack: next expected segment (cumulative)
  bool is_retransmission = false;
  // Transmission serial of the data segment (distinguishes original from
  // retransmission; stands in for the Eifel timestamp / retransmit count).
  std::uint32_t tx_serial = 0;
  // Echoed tx_serial on ACKs (timestamp-echo analogue used by Eifel).
  std::uint32_t echo_serial = 0;
  // Sender timestamp echoed by the receiver (seconds); Eifel option.
  double ts_value = 0.0;
  double ts_echo = 0.0;
  SackVec sack;                    // up to 3 blocks (RFC 2018), inline
  std::optional<SackBlock> dsack;  // first block duplicate (RFC 2883)

  void state(util::StateIO& io) {
    io.pod(flow);
    io.pod(seq);
    io.pod(ack);
    io.pod(is_retransmission);
    io.pod(tx_serial);
    io.pod(echo_serial);
    io.pod(ts_value);
    io.pod(ts_echo);
    io.ivec(sack);
    io.pod(dsack);
  }
};

struct Packet {
  std::uint64_t uid = 0;  // unique per transmission, assigned by Network
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size_bytes = 0;
  PacketType type = PacketType::kTcpData;
  TcpHeader tcp;

  // Source route (list of node ids, excluding src, ending at dst). When
  // non-empty, forwarding follows it instead of per-node routing tables —
  // this is how per-packet multi-path routing is realized.
  RouteVec source_route;
  std::uint32_t route_pos = 0;
  int path_id = -1;  // which multipath member was sampled (stats/debug)

  sim::TimePoint sent_at;          // time handed to the first link
  sim::TimePoint enqueued_at;      // last queue entry time (queue stats)
  int hops = 0;

  bool is_ack() const { return type == PacketType::kTcpAck; }

  // Checkpoint/rollback support: every field that defines the packet's
  // forward trajectory (uid included — it is the packet's identity in
  // delivery hashes and conservation accounting).
  void state(util::StateIO& io) {
    io.pod(uid);
    io.pod(src);
    io.pod(dst);
    io.pod(size_bytes);
    io.pod(type);
    io.obj(tcp);
    io.ivec(source_route);
    io.pod(route_pos);
    io.pod(path_id);
    io.pod(sent_at);
    io.pod(enqueued_at);
    io.pod(hops);
  }
};

}  // namespace tcppr::net
