#include "net/network.hpp"

#include <memory>
#include <utility>

#include "util/check.hpp"

namespace tcppr::net {

NodeId Network::add_node() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id));
  nodes_.back()->set_tracer(&tracer_, &sched_);
  return id;
}

Link& Network::add_link(NodeId from, NodeId to, const LinkConfig& cfg) {
  return add_link_with_queue(
      from, to, cfg.bandwidth_bps, cfg.delay,
      std::make_unique<DropTailQueue>(cfg.queue_limit_packets));
}

Link& Network::add_link_with_queue(NodeId from, NodeId to,
                                   double bandwidth_bps, sim::Duration delay,
                                   std::unique_ptr<Queue> queue) {
  TCPPR_CHECK(from >= 0 && from < node_count());
  TCPPR_CHECK(to >= 0 && to < node_count());
  TCPPR_CHECK(from != to);
  links_.push_back(std::make_unique<Link>(sched_, from, to, bandwidth_bps,
                                          delay, std::move(queue)));
  Link& link = *links_.back();
  link.set_destination(nodes_[static_cast<std::size_t>(to)].get());
  link.set_tracer(&tracer_);
  link.set_packet_pool(pool_);
  if (pump_ != nullptr) link.set_pump(pump_.get());
  nodes_[static_cast<std::size_t>(from)]->add_out_link(&link);
  return link;
}

std::pair<Link*, Link*> Network::add_duplex_link(NodeId a, NodeId b,
                                                 const LinkConfig& cfg) {
  Link& ab = add_link(a, b, cfg);
  Link& ba = add_link(b, a, cfg);
  return {&ab, &ba};
}

routing::Graph Network::build_graph() const {
  routing::Graph g(node_count());
  for (const auto& link : links_) {
    // Seconds of propagation delay + 1us per hop: prefers fewer hops among
    // equal-delay routes and keeps costs strictly positive.
    g.add_edge(link->from(), link->to(),
               link->prop_delay().as_seconds() + 1e-6);
  }
  return g;
}

void Network::compute_static_routes() {
  const routing::Graph g = build_graph();
  for (NodeId src = 0; src < node_count(); ++src) {
    const auto tree = g.shortest_paths(src);
    for (NodeId dst = 0; dst < node_count(); ++dst) {
      if (dst == src) continue;
      if (tree.pred[static_cast<std::size_t>(dst)] == kInvalidNode) continue;
      // Walk predecessors back from dst to find the first hop out of src.
      NodeId hop = dst;
      while (tree.pred[static_cast<std::size_t>(hop)] != src) {
        hop = tree.pred[static_cast<std::size_t>(hop)];
        TCPPR_CHECK(hop != kInvalidNode);
      }
      nodes_[static_cast<std::size_t>(src)]->set_next_hop(dst, hop);
    }
  }
}

Node& Network::node(NodeId id) {
  TCPPR_CHECK(id >= 0 && id < node_count());
  return *nodes_[static_cast<std::size_t>(id)];
}

const Node& Network::node(NodeId id) const {
  TCPPR_CHECK(id >= 0 && id < node_count());
  return *nodes_[static_cast<std::size_t>(id)];
}

Link* Network::find_link(NodeId from, NodeId to) {
  TCPPR_CHECK(from >= 0 && from < node_count());
  return nodes_[static_cast<std::size_t>(from)]->link_to(to);
}

std::uint64_t Network::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& link : links_) total += link->total_drops();
  return total;
}

Network::ConservationSnapshot Network::conservation() const {
  ConservationSnapshot snap;
  for (const auto& node : nodes_) {
    const NodeStats& ns = node->stats();
    snap.originated += ns.originated;
    snap.delivered_to_agent += ns.delivered_to_agent;
    snap.unroutable += ns.unroutable;
  }
  for (const auto& link : links_) {
    snap.link_lost += link->stats().lost;
    snap.queue_dropped += link->queue().stats().dropped;
    snap.in_queues += link->queue().length_packets();
    snap.in_transit += link->in_transit();
  }
  return snap;
}

}  // namespace tcppr::net
