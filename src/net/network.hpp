// Network: owns nodes and links, builds static routes, allocates packet
// uids. The harness builds topologies through this facade.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/link_pump.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "routing/graph.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"

namespace tcppr::net {

struct LinkConfig {
  double bandwidth_bps = 10e6;
  sim::Duration delay = sim::Duration::millis(10);
  std::size_t queue_limit_packets = 100;
};

class Network {
 public:
  // The batched hot path (net::set_hot_path_batching) is sampled here,
  // once: a network is born batched or unbatched and stays that way.
  explicit Network(sim::Scheduler& sched)
      : sched_(sched),
        pump_(hot_path_batching() ? std::make_unique<LinkPump>(sched)
                                  : nullptr) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node();
  // One direction.
  Link& add_link(NodeId from, NodeId to, const LinkConfig& cfg);
  // One direction with a custom queue discipline (RED, priority bands...).
  Link& add_link_with_queue(NodeId from, NodeId to, double bandwidth_bps,
                            sim::Duration delay, std::unique_ptr<Queue> queue);
  // Both directions with identical parameters (the common case).
  std::pair<Link*, Link*> add_duplex_link(NodeId a, NodeId b,
                                          const LinkConfig& cfg);

  // Fills every node's next-hop table with shortest paths
  // (cost = propagation delay, hop-count tiebreak). Call after topology
  // construction; may be called again after adding links.
  void compute_static_routes();

  // Graph view (cost = link propagation delay in seconds plus a small
  // per-hop epsilon so hop count breaks delay ties).
  routing::Graph build_graph() const;

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  int node_count() const { return static_cast<int>(nodes_.size()); }
  Link* find_link(NodeId from, NodeId to);
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  sim::Scheduler& scheduler() { return sched_; }
  // Relaxed atomic: shards allocate uids concurrently in parallel mode.
  // uids only label trace records (the determinism hash never folds them),
  // so allocation order across shards is allowed to vary run to run.
  std::uint64_t allocate_uid() {
    return next_uid_.fetch_add(1, std::memory_order_relaxed);
  }

  // Recycling pool shared by every link: packets in flight across the
  // whole network draw from one free list.
  const std::shared_ptr<PacketPool>& packet_pool() const { return pool_; }

  // Batch carrier for the sequential engine; null when the network was
  // built with hot-path batching off (parallel shards install their own
  // per-LP pumps instead — see harness/parallel_run).
  LinkPump* pump() { return pump_.get(); }
  const LinkPump* pump() const { return pump_.get(); }

  // Attaches a trace sink; all packet events at every node and link are
  // reported from then on.
  void add_trace_sink(trace::TraceSink* sink) { tracer_.add_sink(sink); }
  trace::Tracer& tracer() { return tracer_; }

  // Aggregate drop count over all links (queue + loss model).
  std::uint64_t total_drops() const;

  // Network-wide packet accounting, consistent at event boundaries. The
  // conservation invariant the validation layer checks is
  //   originated == delivered_to_agent + unroutable + link_lost
  //              + queue_dropped + in_queues + in_transit
  // which must hold at every instant the scheduler is between events.
  struct ConservationSnapshot {
    std::uint64_t originated = 0;
    std::uint64_t delivered_to_agent = 0;
    std::uint64_t unroutable = 0;
    std::uint64_t link_lost = 0;      // down/filter + loss-model drops
    std::uint64_t queue_dropped = 0;  // rejected at enqueue
    std::uint64_t in_queues = 0;      // sitting in link queues
    std::uint64_t in_transit = 0;     // in transmitters / propagating
    std::uint64_t accounted() const {
      return delivered_to_agent + unroutable + link_lost + queue_dropped +
             in_queues + in_transit;
    }
    bool balanced() const { return originated == accounted(); }
  };
  ConservationSnapshot conservation() const;

 private:
  sim::Scheduler& sched_;
  trace::Tracer tracer_;
  std::shared_ptr<PacketPool> pool_ = PacketPool::create();
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  // Declared after links_: destroyed first, so its parked carrier event is
  // cancelled while the links it serves are still alive.
  std::unique_ptr<LinkPump> pump_;
  std::atomic<std::uint64_t> next_uid_{1};
};

}  // namespace tcppr::net
