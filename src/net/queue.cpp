#include "net/queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/scheduler.hpp"
#include "util/check.hpp"

namespace tcppr::net {

DropTailQueue::DropTailQueue(std::size_t limit_packets,
                             std::uint64_t limit_bytes)
    : limit_(limit_packets), limit_bytes_(limit_bytes) {
  TCPPR_CHECK(limit_packets > 0);
}

bool DropTailQueue::enqueue(Packet&& pkt) {
  if (q_.size() >= limit_ ||
      (limit_bytes_ > 0 && bytes_ + pkt.size_bytes > limit_bytes_)) {
    ++stats_.dropped;
    stats_.bytes_dropped += pkt.size_bytes;
    return false;
  }
  ++stats_.enqueued;
  stats_.bytes_enqueued += pkt.size_bytes;
  bytes_ += pkt.size_bytes;
  q_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet pkt = q_.pop_front();
  bytes_ -= pkt.size_bytes;
  ++stats_.dequeued;
  stats_.bytes_dequeued += pkt.size_bytes;
  return pkt;
}

bool DropTailQueue::dequeue_into(Packet& out) {
  if (q_.empty()) return false;
  Packet& front = q_.front();
  bytes_ -= front.size_bytes;
  ++stats_.dequeued;
  stats_.bytes_dequeued += front.size_bytes;
  out = std::move(front);
  q_.drop_front();
  return true;
}

std::size_t DropTailQueue::enqueue_batch(PacketBatch& batch, std::size_t begin,
                                         std::size_t end) {
  // With the byte cap off, admission depends only on the packet count, so
  // the whole burst splits into an accepted prefix and a dropped suffix in
  // one limit check — same outcomes, stats folded per half.
  if (limit_bytes_ != 0) return Queue::enqueue_batch(batch, begin, end);
  const std::size_t room = limit_ > q_.size() ? limit_ - q_.size() : 0;
  const std::size_t n = end - begin;
  const std::size_t accepted = n < room ? n : room;
  for (std::size_t i = begin; i < begin + accepted; ++i) {
    bytes_ += batch[i].size_bytes;
    stats_.bytes_enqueued += batch[i].size_bytes;
    q_.push_back(std::move(batch[i]));
  }
  stats_.enqueued += accepted;
  for (std::size_t i = begin + accepted; i < end; ++i) {
    stats_.bytes_dropped += batch[i].size_bytes;
  }
  stats_.dropped += n - accepted;
  return accepted;
}

std::size_t DropTailQueue::dequeue_batch(std::size_t max_n, PacketBatch& out) {
  const std::size_t moved = max_n < q_.size() ? max_n : q_.size();
  for (std::size_t i = 0; i < moved; ++i) {
    Packet pkt = q_.pop_front();
    bytes_ -= pkt.size_bytes;
    stats_.bytes_dequeued += pkt.size_bytes;
    out.push(std::move(pkt));
  }
  stats_.dequeued += moved;
  return moved;
}

PriorityQueue::PriorityQueue(int bands, std::size_t limit_per_band,
                             Classifier classifier)
    : limit_per_band_(limit_per_band),
      classifier_(std::move(classifier)),
      bands_(static_cast<std::size_t>(bands)),
      band_stats_(static_cast<std::size_t>(bands)) {
  TCPPR_CHECK(bands > 0);
  TCPPR_CHECK(limit_per_band_ > 0);
  TCPPR_CHECK(classifier_ != nullptr);
}

bool PriorityQueue::enqueue(Packet&& pkt) {
  const int band = classifier_(pkt);
  TCPPR_CHECK(band >= 0 && band < static_cast<int>(bands_.size()));
  auto& q = bands_[static_cast<std::size_t>(band)];
  QueueStats& bs = band_stats_[static_cast<std::size_t>(band)];
  if (q.size() >= limit_per_band_) {
    ++stats_.dropped;
    stats_.bytes_dropped += pkt.size_bytes;
    ++bs.dropped;
    bs.bytes_dropped += pkt.size_bytes;
    return false;
  }
  ++stats_.enqueued;
  stats_.bytes_enqueued += pkt.size_bytes;
  ++bs.enqueued;
  bs.bytes_enqueued += pkt.size_bytes;
  bytes_ += pkt.size_bytes;
  q.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> PriorityQueue::dequeue() {
  for (std::size_t band = 0; band < bands_.size(); ++band) {
    auto& q = bands_[band];
    if (!q.empty()) {
      Packet pkt = q.pop_front();
      bytes_ -= pkt.size_bytes;
      ++stats_.dequeued;
      stats_.bytes_dequeued += pkt.size_bytes;
      QueueStats& bs = band_stats_[band];
      ++bs.dequeued;
      bs.bytes_dequeued += pkt.size_bytes;
      return pkt;
    }
  }
  return std::nullopt;
}

std::size_t PriorityQueue::length_packets() const {
  std::size_t total = 0;
  for (const auto& q : bands_) total += q.size();
  return total;
}

std::size_t PriorityQueue::band_length(int band) const {
  TCPPR_CHECK(band >= 0 && band < static_cast<int>(bands_.size()));
  return bands_[static_cast<std::size_t>(band)].size();
}

const QueueStats& PriorityQueue::band_stats(int band) const {
  TCPPR_CHECK(band >= 0 && band < static_cast<int>(band_stats_.size()));
  return band_stats_[static_cast<std::size_t>(band)];
}

RedQueue::RedQueue(Params params, sim::Rng rng)
    : params_(params), rng_(rng) {
  TCPPR_CHECK(params_.limit_packets > 0);
  TCPPR_CHECK(params_.min_thresh < params_.max_thresh);
  TCPPR_CHECK(params_.max_p > 0 && params_.max_p <= 1);
  TCPPR_CHECK(params_.weight > 0 && params_.weight <= 1);
}

void RedQueue::set_time_source(const sim::Scheduler* sched,
                               double bandwidth_bps) {
  sched_ = sched;
  bandwidth_bps_ = bandwidth_bps;
  if (sched_ != nullptr && q_.empty()) {
    idle_ = true;
    idle_since_ = sched_->now();
  }
}

bool RedQueue::enqueue(Packet&& pkt) {
  if (idle_ && sched_ != nullptr) {
    // Floyd/Jacobson idle adjustment: decay the average by (1-w)^m, where
    // m estimates how many (small) packets the link could have transmitted
    // while the queue sat empty. Without this the average frozen at the
    // end of the previous busy period early-drops the next burst.
    const double idle_s = (sched_->now() - idle_since_).as_seconds();
    const double pkt_s = params_.idle_pkt_bytes * 8.0 / bandwidth_bps_;
    if (idle_s > 0 && pkt_s > 0) {
      avg_ *= std::pow(1.0 - params_.weight, idle_s / pkt_s);
    }
    idle_ = false;
  }
  avg_ = (1 - params_.weight) * avg_ +
         params_.weight * static_cast<double>(q_.size());

  bool drop = false;
  if (q_.size() >= params_.limit_packets) {
    drop = true;
  } else if (avg_ >= params_.max_thresh) {
    // Gentle RED: probability ramps from max_p to 1 between max and 2*max.
    const double over =
        (avg_ - params_.max_thresh) / std::max(params_.max_thresh, 1.0);
    const double p = std::min(1.0, params_.max_p + (1 - params_.max_p) * over);
    drop = rng_.bernoulli(p);
  } else if (avg_ >= params_.min_thresh) {
    const double pb = params_.max_p * (avg_ - params_.min_thresh) /
                      (params_.max_thresh - params_.min_thresh);
    ++count_since_drop_;
    const double denom = 1.0 - static_cast<double>(count_since_drop_) * pb;
    const double pa = denom <= 0 ? 1.0 : std::min(1.0, pb / denom);
    drop = rng_.bernoulli(pa);
    if (drop) count_since_drop_ = 0;
  } else {
    count_since_drop_ = -1;
  }

  if (drop) {
    ++stats_.dropped;
    stats_.bytes_dropped += pkt.size_bytes;
    return false;
  }
  ++stats_.enqueued;
  stats_.bytes_enqueued += pkt.size_bytes;
  bytes_ += pkt.size_bytes;
  q_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> RedQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet pkt = q_.pop_front();
  bytes_ -= pkt.size_bytes;
  ++stats_.dequeued;
  stats_.bytes_dequeued += pkt.size_bytes;
  if (q_.empty() && sched_ != nullptr) {
    idle_ = true;
    idle_since_ = sched_->now();
  }
  return pkt;
}

}  // namespace tcppr::net
