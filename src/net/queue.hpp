// Router queue disciplines.
//
// DropTailQueue is the paper's configuration (FIFO, limit counted in
// packets, as in ns-2). RedQueue and PriorityQueue are extensions:
// PriorityQueue models the DiffServ-style differentiated forwarding that
// the paper's introduction names as a reordering source — packets of one
// flow marked into different bands leave the router out of order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_batch.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "util/ring_deque.hpp"
#include "util/state_io.hpp"

namespace tcppr::sim {
class Scheduler;
}

namespace tcppr::net {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes_enqueued = 0;
  std::uint64_t bytes_dequeued = 0;
  std::uint64_t bytes_dropped = 0;
};

class Queue {
 public:
  virtual ~Queue() = default;

  // Takes ownership of pkt; returns false (and drops) when full.
  virtual bool enqueue(Packet&& pkt) = 0;
  virtual std::optional<Packet> dequeue() = 0;
  // Dequeues directly into `out` (overwriting it wholesale); returns false
  // when nothing is queued. Decisions and stats are identical to dequeue();
  // the point is skipping the optional<Packet> round-trip — the link
  // dequeues straight into a recycled pool slot. The default wraps
  // dequeue(); disciplines with a FIFO fast path override.
  virtual bool dequeue_into(Packet& out) {
    auto pkt = dequeue();
    if (!pkt) return false;
    out = std::move(*pkt);
    return true;
  }

  // Batched variants for burst admission/service. Per-packet admission
  // decisions and stats are identical to calling enqueue()/dequeue() in a
  // loop — the default does exactly that — so disciplines whose decisions
  // are per-packet by nature (RED's drop lottery, Priority's classifier)
  // inherit it unchanged, while DropTail hoists its limit checks out of
  // the loop. enqueue_batch consumes entries [begin, end) of the batch and
  // returns how many were accepted; dequeue_batch appends up to max_n
  // packets to out and returns how many it moved.
  virtual std::size_t enqueue_batch(PacketBatch& batch, std::size_t begin,
                                    std::size_t end) {
    std::size_t accepted = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (enqueue(std::move(batch[i]))) ++accepted;
    }
    return accepted;
  }
  virtual std::size_t dequeue_batch(std::size_t max_n, PacketBatch& out) {
    std::size_t moved = 0;
    while (moved < max_n) {
      auto pkt = dequeue();
      if (!pkt) break;
      out.push(std::move(*pkt));
      ++moved;
    }
    return moved;
  }
  virtual std::size_t length_packets() const = 0;
  virtual std::uint64_t length_bytes() const = 0;

  // Wired by the owning Link: gives time-aware disciplines (RED's idle-
  // period decay) the simulation clock and the drain rate of the link they
  // serve. Standalone queues (tests) work without it.
  virtual void set_time_source(const sim::Scheduler* sched,
                               double bandwidth_bps) {
    (void)sched;
    (void)bandwidth_bps;
  }

  const QueueStats& stats() const { return stats_; }

  // Checkpoint/rollback visitor: every discipline serializes its queued
  // packets plus whatever per-discipline trajectory state it keeps (RED's
  // average, the RNG stream position). Time-source wiring is not state.
  virtual void state(util::StateIO& io) { io.pod(stats_); }

 protected:
  QueueStats stats_;
};

class DropTailQueue final : public Queue {
 public:
  // limit_bytes == 0 disables the byte cap (ns-2 counts packets; real
  // routers usually cap bytes — both supported).
  explicit DropTailQueue(std::size_t limit_packets,
                         std::uint64_t limit_bytes = 0);

  bool enqueue(Packet&& pkt) override;
  std::optional<Packet> dequeue() override;
  bool dequeue_into(Packet& out) override;
  std::size_t enqueue_batch(PacketBatch& batch, std::size_t begin,
                            std::size_t end) override;
  std::size_t dequeue_batch(std::size_t max_n, PacketBatch& out) override;
  std::size_t length_packets() const override { return q_.size(); }
  std::uint64_t length_bytes() const override { return bytes_; }
  std::size_t limit_packets() const { return limit_; }

  void state(util::StateIO& io) override {
    Queue::state(io);
    io.pod(bytes_);
    io.obj_ring(q_);
  }

 private:
  std::size_t limit_;
  std::uint64_t limit_bytes_;
  std::uint64_t bytes_ = 0;
  util::RingDeque<Packet> q_;
};

// Strict-priority bands (band 0 served first). The classifier maps each
// packet to a band; per-band limits apply. A flow whose packets land in
// different bands is reordered in the order DiffServ would reorder it.
class PriorityQueue final : public Queue {
 public:
  using Classifier = std::function<int(const Packet&)>;

  PriorityQueue(int bands, std::size_t limit_per_band, Classifier classifier);

  bool enqueue(Packet&& pkt) override;
  std::optional<Packet> dequeue() override;
  std::size_t length_packets() const override;
  std::uint64_t length_bytes() const override { return bytes_; }
  std::size_t band_length(int band) const;
  // Per-band attribution of the aggregate stats (drops in particular:
  // which band rejected the packet).
  const QueueStats& band_stats(int band) const;

  void state(util::StateIO& io) override {
    Queue::state(io);
    io.pod(bytes_);
    for (auto& band : bands_) io.obj_ring(band);
    io.pod_vector(band_stats_);
  }

 private:
  std::size_t limit_per_band_;
  Classifier classifier_;
  std::uint64_t bytes_ = 0;
  std::vector<util::RingDeque<Packet>> bands_;
  std::vector<QueueStats> band_stats_;
};

// Random Early Detection (Floyd & Jacobson 1993), gentle mode.
// Extension: not used by the paper's experiments, but useful for checking
// that TCP-PR's loss response is queue-discipline agnostic.
class RedQueue final : public Queue {
 public:
  struct Params {
    std::size_t limit_packets = 100;
    double min_thresh = 5;     // packets
    double max_thresh = 15;    // packets
    double max_p = 0.1;        // drop probability at max_thresh
    double weight = 0.002;     // EWMA weight for the average queue
    // Packet size assumed for the idle-period adjustment (the RED paper's
    // "typical transmission time" for a small packet).
    double idle_pkt_bytes = 500;
  };

  RedQueue(Params params, sim::Rng rng);

  bool enqueue(Packet&& pkt) override;
  std::optional<Packet> dequeue() override;
  std::size_t length_packets() const override { return q_.size(); }
  std::uint64_t length_bytes() const override { return bytes_; }
  void set_time_source(const sim::Scheduler* sched,
                       double bandwidth_bps) override;
  double average_queue() const { return avg_; }

  void state(util::StateIO& io) override {
    Queue::state(io);
    io.pod(rng_);
    io.pod(avg_);
    io.pod(count_since_drop_);
    io.pod(bytes_);
    io.pod(idle_);
    io.pod(idle_since_);
    io.obj_ring(q_);
  }

 private:
  Params params_;
  sim::Rng rng_;
  double avg_ = 0;
  int count_since_drop_ = -1;
  std::uint64_t bytes_ = 0;
  // Idle-period bookkeeping (Floyd & Jacobson §4 / ns-2 REDQueue): while
  // the queue sits empty the average must keep decaying as if empty
  // samples arrived at the link's drain rate, otherwise a stale average
  // early-drops the first burst after an idle spell. Requires a time
  // source; without one the (pre-fix) pure-EWMA behaviour is kept.
  const sim::Scheduler* sched_ = nullptr;
  double bandwidth_bps_ = 0;
  bool idle_ = false;
  sim::TimePoint idle_since_;
  util::RingDeque<Packet> q_;
};

}  // namespace tcppr::net
