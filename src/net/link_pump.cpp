#include "net/link_pump.hpp"

#include <atomic>

#include "net/link.hpp"
#include "util/check.hpp"

namespace tcppr::net {

namespace {
// Relaxed atomic: the fuzz campaign flips this from worker threads, each
// for its own single-threaded simulation; there is no cross-thread
// ordering to protect, only the data race to avoid.
std::atomic<bool> g_hot_path_batching{true};
}  // namespace

void set_hot_path_batching(bool on) {
  g_hot_path_batching.store(on, std::memory_order_relaxed);
}

bool hot_path_batching() {
  return g_hot_path_batching.load(std::memory_order_relaxed);
}

LinkPump::~LinkPump() {
  if (parked_.valid()) sched_->cancel(parked_);
}

std::uint32_t LinkPump::add_link(Link* link) {
  links_.push_back(link);
  histograms_.emplace_back();
  return static_cast<std::uint32_t>(links_.size() - 1);
}

bool LinkPump::entry_valid(const sim::QueuedEvent& e) const {
  const Link* link = links_[static_cast<std::size_t>(e.id >> 1)];
  const std::optional<PumpKey> head =
      link->pump_op_key(static_cast<PumpOp>(e.id & 1));
  return head && head->at == e.time && head->seq == e.seq;
}

std::optional<sim::QueuedEvent> LinkPump::pop_valid_min() {
  for (;;) {
    auto e = heap_.pop_min();
    if (!e || entry_valid(*e)) return e;
  }
}

std::optional<sim::QueuedEvent> LinkPump::peek_valid_min() {
  for (;;) {
    auto e = heap_.peek_min();
    if (!e) return std::nullopt;
    if (entry_valid(*e)) return e;
    heap_.pop_min();
  }
}

void LinkPump::park(PumpKey k) {
  // The carrier occupies the head op's exact schedule position: no new
  // sequence is minted, so the schedule the scheduler sees is a subset of
  // the unbatched one.
  parked_key_ = k;
  parked_ = sched_->schedule_at_stamped(k.at, k.seq, [this] { on_event(); });
  // The carrier is derived state: reseed_after_restore re-creates it from
  // the links' restored op streams, so it never blocks a checkpoint.
  sched_->mark_replay_safe(parked_);
}

void LinkPump::reseed_after_restore() {
  // The scheduler's pending set was destroyed wholesale, so the old parked
  // id is stale by construction — drop it without a cancel round.
  parked_ = sim::EventId{};
  in_batch_ = false;
  heap_.clear();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    for (const PumpOp op : {PumpOp::kTxComplete, PumpOp::kDeliver}) {
      const std::optional<PumpKey> k = links_[i]->pump_op_key(op);
      if (!k) continue;
      heap_.push(sim::QueuedEvent{
          k->at, k->seq,
          (static_cast<std::uint64_t>(i) << 1) |
              static_cast<std::uint64_t>(op)});
    }
  }
  const auto min = peek_valid_min();
  if (min) park(PumpKey{min->time, min->seq});
}

void LinkPump::push_op(PumpKey k, std::uint32_t link_id, PumpOp op) {
  heap_.push(sim::QueuedEvent{
      k.at, k.seq,
      (static_cast<std::uint64_t>(link_id) << 1) |
          static_cast<std::uint64_t>(op)});
  if (in_batch_) return;  // the batch loop re-parks when it drains
  if (!parked_.valid()) {
    park(k);
    return;
  }
  if (k.at < parked_key_.at ||
      (k.at == parked_key_.at && k.seq < parked_key_.seq)) {
    sched_->cancel(parked_);
    park(k);
  }
}

bool LinkPump::try_extend(PumpKey k) {
  TCPPR_DCHECK(in_batch_);
  const auto other = peek_valid_min();
  if (other && !(k.at < other->time ||
                 (k.at == other->time && k.seq < other->seq))) {
    return false;
  }
  if (!sched_->would_fire_next(k.at, k.seq)) return false;
  sched_->advance_batched_op(k.at, k.seq);
  ++stats_.ops;
  return true;
}

void LinkPump::on_event() {
  // Fired at parked_key_ == the earliest op's key; the scheduler has
  // already advanced now/current_event_seq to it.
  parked_ = sim::EventId{};
  in_batch_ = true;
  ++stats_.events;
  bool first = true;
  for (;;) {
    const auto e = pop_valid_min();
    if (!e) break;
    if (!first) sched_->advance_batched_op(e->time, e->seq);
    first = false;
    ++stats_.ops;
    Link* link = links_[static_cast<std::size_t>(e->id >> 1)];
    if (static_cast<PumpOp>(e->id & 1) == PumpOp::kTxComplete) {
      link->pump_run_tx();
    } else {
      link->pump_run_deliveries();
    }
    const auto next = peek_valid_min();
    if (!next) break;
    if (!sched_->would_fire_next(next->time, next->seq)) {
      in_batch_ = false;
      park(PumpKey{next->time, next->seq});
      return;
    }
    // Loop: the next iteration advances the clock to `next` and executes
    // it inside this same event.
  }
  in_batch_ = false;
}

void LinkPump::note_delivery_run(std::uint32_t link_id, std::size_t len) {
  ++stats_.delivery_runs;
  stats_.delivered_in_runs += len;
  std::size_t bucket = 0;
  while (bucket + 1 < histograms_[link_id].size() &&
         (std::size_t{1} << (bucket + 1)) <= len) {
    ++bucket;
  }
  ++histograms_[link_id][bucket];
}

LinkPump::RunHistogram LinkPump::aggregate_histogram() const {
  RunHistogram total{};
  for (const RunHistogram& h : histograms_) {
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += h[i];
  }
  return total;
}

}  // namespace tcppr::net
