// Link outage model for MANET-style topologies: a set of links toggles
// between up and down with exponentially distributed durations. Combined
// with multi-path or flap routing this produces the route-recomputation
// reordering the paper's introduction attributes to mobile ad-hoc networks.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::net {

class LinkFlapper {
 public:
  struct Config {
    sim::Duration mean_up = sim::Duration::seconds(5);
    sim::Duration mean_down = sim::Duration::millis(500);
    std::uint64_t seed = 1;
  };

  LinkFlapper(sim::Scheduler& sched, std::vector<Link*> links, Config config);

  void start();
  void stop();
  bool links_down() const { return down_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  void toggle();

  sim::Scheduler& sched_;
  std::vector<Link*> links_;
  Config config_;
  sim::Rng rng_;
  sim::Timer timer_;
  bool running_ = false;
  bool down_ = false;
  std::uint64_t transitions_ = 0;
};

}  // namespace tcppr::net
