// Link outage model for MANET-style topologies: a set of links toggles
// between up and down with exponentially distributed durations. Combined
// with multi-path or flap routing this produces the route-recomputation
// reordering the paper's introduction attributes to mobile ad-hoc networks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "obs/series.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::net {

class LinkFlapper {
 public:
  struct Config {
    sim::Duration mean_up = sim::Duration::seconds(5);
    sim::Duration mean_down = sim::Duration::millis(500);
    std::uint64_t seed = 1;
  };

  LinkFlapper(sim::Scheduler& sched, std::vector<Link*> links, Config config);

  // Emits "flap.transitions" / "flap.down" / "flap.down_time_s[label]"
  // samples on every toggle (and on stop()) when a registry with an active
  // sink is attached. Optional; without it the flapper only counts.
  void set_metric_registry(obs::MetricRegistry* registry,
                           const std::string& label = "flapper");

  void start();
  void stop();
  // Re-points the flapper at the scheduler shard owning its links
  // (parallel-mode adoption). Only legal before start().
  void rebind_scheduler(sim::Scheduler& shard) {
    timer_.rebind(shard);
    if (!links_.empty()) {
      timer_.set_stamp_entity(static_cast<std::uint32_t>(links_.front()->from()));
    }
    sched_ = &shard;
  }
  bool links_down() const { return down_; }
  std::uint64_t transitions() const { return transitions_; }
  // Cumulative time the link set has spent administratively down,
  // including the current outage when called while down.
  sim::Duration down_time() const;

 private:
  void toggle();
  void emit_metrics();

  sim::Scheduler* sched_;
  std::vector<Link*> links_;
  Config config_;
  sim::Rng rng_;
  sim::Timer timer_;
  bool running_ = false;
  bool down_ = false;
  std::uint64_t transitions_ = 0;
  sim::Duration down_time_ = sim::Duration::zero();
  sim::TimePoint down_since_{};
  obs::MetricRegistry* reg_ = nullptr;
  obs::MetricId m_transitions_ = 0;
  obs::MetricId m_down_ = 0;
  obs::MetricId m_down_time_ = 0;
};

}  // namespace tcppr::net
