#include "routing/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace tcppr::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Graph::Graph(int node_count) : adj_(static_cast<std::size_t>(node_count)) {
  TCPPR_CHECK(node_count >= 0);
}

void Graph::add_edge(NodeId from, NodeId to, double cost) {
  TCPPR_CHECK(from >= 0 && from < node_count());
  TCPPR_CHECK(to >= 0 && to < node_count());
  TCPPR_CHECK(cost >= 0);
  adj_[static_cast<std::size_t>(from)].push_back(Edge{to, cost});
}

const std::vector<Graph::Edge>& Graph::edges_from(NodeId n) const {
  TCPPR_CHECK(n >= 0 && n < node_count());
  return adj_[static_cast<std::size_t>(n)];
}

Graph::ShortestPathTree Graph::shortest_paths(NodeId src) const {
  TCPPR_CHECK(src >= 0 && src < node_count());
  const std::size_t n = adj_.size();
  ShortestPathTree tree;
  tree.dist.assign(n, kInf);
  tree.pred.assign(n, net::kInvalidNode);
  tree.dist[static_cast<std::size_t>(src)] = 0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > tree.dist[static_cast<std::size_t>(u)]) continue;
    for (const Edge& e : adj_[static_cast<std::size_t>(u)]) {
      const double nd = d + e.cost;
      if (nd < tree.dist[static_cast<std::size_t>(e.to)]) {
        tree.dist[static_cast<std::size_t>(e.to)] = nd;
        tree.pred[static_cast<std::size_t>(e.to)] = u;
        pq.emplace(nd, e.to);
      }
    }
  }
  return tree;
}

std::optional<std::vector<NodeId>> Graph::shortest_path(NodeId src,
                                                        NodeId dst) const {
  TCPPR_CHECK(dst >= 0 && dst < node_count());
  const ShortestPathTree tree = shortest_paths(src);
  if (tree.dist[static_cast<std::size_t>(dst)] == kInf) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId v = dst; v != net::kInvalidNode; v = tree.pred[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  TCPPR_CHECK(path.front() == src);
  return path;
}

std::vector<std::vector<NodeId>> Graph::node_disjoint_paths(
    NodeId src, NodeId dst) const {
  std::vector<std::vector<NodeId>> paths;
  std::vector<bool> removed(adj_.size(), false);

  for (;;) {
    // Dijkstra on the residual graph (removed interior nodes skipped).
    const std::size_t n = adj_.size();
    std::vector<double> dist(n, kInf);
    std::vector<NodeId> pred(n, net::kInvalidNode);
    dist[static_cast<std::size_t>(src)] = 0;
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, src);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;
      for (const Edge& e : adj_[static_cast<std::size_t>(u)]) {
        if (removed[static_cast<std::size_t>(e.to)] && e.to != dst) continue;
        const double nd = d + e.cost;
        if (nd < dist[static_cast<std::size_t>(e.to)]) {
          dist[static_cast<std::size_t>(e.to)] = nd;
          pred[static_cast<std::size_t>(e.to)] = u;
          pq.emplace(nd, e.to);
        }
      }
    }
    if (dist[static_cast<std::size_t>(dst)] == kInf) break;
    std::vector<NodeId> path;
    for (NodeId v = dst; v != net::kInvalidNode; v = pred[static_cast<std::size_t>(v)]) {
      path.push_back(v);
      if (v == src) break;
    }
    std::reverse(path.begin(), path.end());
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      removed[static_cast<std::size_t>(path[i])] = true;
    }
    paths.push_back(std::move(path));
    if (paths.back().size() == 2) {
      // Direct src->dst edge: cannot remove interior nodes, would loop.
      break;
    }
  }
  return paths;
}

double Graph::path_cost(const std::vector<NodeId>& path) const {
  double total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto& edges = adj_[static_cast<std::size_t>(path[i])];
    const auto it =
        std::find_if(edges.begin(), edges.end(),
                     [&](const Edge& e) { return e.to == path[i + 1]; });
    TCPPR_CHECK(it != edges.end());
    total += it->cost;
  }
  return total;
}

}  // namespace tcppr::routing
