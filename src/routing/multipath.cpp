#include "routing/multipath.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace tcppr::routing {

PathSet PathSet::disjoint_paths(const net::Network& network, NodeId src,
                                NodeId dst) {
  const Graph g = network.build_graph();
  PathSet set;
  set.src = src;
  set.dst = dst;
  set.paths = g.node_disjoint_paths(src, dst);
  set.costs.reserve(set.paths.size());
  for (const auto& p : set.paths) set.costs.push_back(g.path_cost(p));
  return set;
}

MultipathSelector::MultipathSelector(PathSet paths, double epsilon,
                                     sim::Rng rng)
    : paths_(std::move(paths)),
      picks_(paths_.paths.size(), 0),
      rng_(rng) {
  TCPPR_CHECK(!paths_.paths.empty());
  TCPPR_CHECK(paths_.costs.size() == paths_.paths.size());
  TCPPR_CHECK(epsilon >= 0);
  const double c_min =
      *std::min_element(paths_.costs.begin(), paths_.costs.end());
  TCPPR_CHECK(c_min > 0);
  weights_.reserve(paths_.costs.size());
  for (const double c : paths_.costs) {
    weights_.push_back(std::exp(-epsilon * (c - c_min) / c_min));
  }
}

std::optional<net::SourceRoutingPolicy::Choice>
MultipathSelector::choose_route(NodeId dst) {
  if (dst != paths_.dst) return std::nullopt;
  const int idx = rng_.categorical(weights_.data(),
                                   static_cast<int>(weights_.size()));
  ++picks_[static_cast<std::size_t>(idx)];
  const auto& full = paths_.paths[static_cast<std::size_t>(idx)];
  Choice choice;
  choice.route.assign(full.begin() + 1, full.end());  // skip src itself
  choice.path_id = idx;
  return choice;
}

RouteFlapPolicy::RouteFlapPolicy(sim::Scheduler& sched, PathSet paths,
                                 sim::Duration flap_interval)
    : sched_(sched),
      paths_(std::move(paths)),
      interval_(flap_interval),
      started_(sched.now()) {
  TCPPR_CHECK(!paths_.paths.empty());
  TCPPR_CHECK(interval_ > sim::Duration::zero());
}

std::optional<net::SourceRoutingPolicy::Choice>
RouteFlapPolicy::choose_route(NodeId dst) {
  if (dst != paths_.dst) return std::nullopt;
  const auto elapsed = sched_.now() - started_;
  current_ = static_cast<int>((elapsed.as_nanos() / interval_.as_nanos()) %
                              static_cast<std::int64_t>(paths_.paths.size()));
  const auto& full = paths_.paths[static_cast<std::size_t>(current_)];
  Choice choice;
  choice.route.assign(full.begin() + 1, full.end());
  choice.path_id = current_;
  return choice;
}

}  // namespace tcppr::routing
