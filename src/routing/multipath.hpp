// Multi-path routing policies.
//
// MultipathSelector implements the paper's ε-parameterized family
// (Section 5, from the authors' routing-games work): per-packet path
// sampling with probability  p_i ∝ exp(−ε · (c_i − c_min)/c_min)  over a
// set of (node-disjoint) paths. ε = 0 yields uniform use of all paths;
// large ε (the paper uses 500 as "∞") collapses to shortest-path routing.
//
// RouteFlapPolicy (extension) models route oscillation between paths with
// different RTTs — the "route flaps" cause of reordering cited in the
// introduction [Paxson 96].
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::routing {

struct PathSet {
  NodeId src = net::kInvalidNode;
  NodeId dst = net::kInvalidNode;
  std::vector<std::vector<NodeId>> paths;  // each includes src and dst
  std::vector<double> costs;               // same order as paths

  // Enumerates node-disjoint paths of the network graph.
  static PathSet disjoint_paths(const net::Network& network, NodeId src,
                                NodeId dst);
};

class MultipathSelector final : public net::SourceRoutingPolicy {
 public:
  MultipathSelector(PathSet paths, double epsilon, sim::Rng rng);

  std::optional<Choice> choose_route(NodeId dst) override;
  void state(util::StateIO& io) override {
    io.pod(rng_);
    io.pod_vector(picks_);
  }

  const std::vector<double>& weights() const { return weights_; }
  // Empirical per-path selection counts.
  const std::vector<std::uint64_t>& picks() const { return picks_; }
  int path_count() const { return static_cast<int>(paths_.paths.size()); }

 private:
  PathSet paths_;
  std::vector<double> weights_;
  std::vector<std::uint64_t> picks_;
  sim::Rng rng_;
};

class RouteFlapPolicy final : public net::SourceRoutingPolicy {
 public:
  // Switches round-robin among paths every flap_interval.
  RouteFlapPolicy(sim::Scheduler& sched, PathSet paths,
                  sim::Duration flap_interval);

  std::optional<Choice> choose_route(NodeId dst) override;
  void state(util::StateIO& io) override {
    io.pod(started_);
    io.pod(current_);
  }
  int current_path() const { return current_; }

 private:
  sim::Scheduler& sched_;
  PathSet paths_;
  sim::Duration interval_;
  sim::TimePoint started_;
  int current_ = 0;
};

}  // namespace tcppr::routing
