// Directed weighted graph utilities used for route computation.
#pragma once

#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace tcppr::routing {

using net::NodeId;

class Graph {
 public:
  explicit Graph(int node_count);

  void add_edge(NodeId from, NodeId to, double cost);
  int node_count() const { return static_cast<int>(adj_.size()); }

  struct Edge {
    NodeId to;
    double cost;
  };
  const std::vector<Edge>& edges_from(NodeId n) const;

  // Dijkstra from src; returns per-node (distance, predecessor). Unreachable
  // nodes get distance infinity and predecessor kInvalidNode.
  struct ShortestPathTree {
    std::vector<double> dist;
    std::vector<NodeId> pred;
  };
  ShortestPathTree shortest_paths(NodeId src) const;

  // Shortest src->dst path as a node list including both endpoints, or
  // nullopt when unreachable.
  std::optional<std::vector<NodeId>> shortest_path(NodeId src,
                                                   NodeId dst) const;

  // Greedy node-disjoint path enumeration: repeatedly extract the shortest
  // path and delete its interior nodes. Returns paths sorted by cost.
  // (Exact disjoint-path packing is NP-ish for >2 paths; greedy matches how
  // the paper's parallel-path topologies are constructed.)
  std::vector<std::vector<NodeId>> node_disjoint_paths(NodeId src,
                                                       NodeId dst) const;

  double path_cost(const std::vector<NodeId>& path) const;

 private:
  std::vector<std::vector<Edge>> adj_;
};

}  // namespace tcppr::routing
