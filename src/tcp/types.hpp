// Shared TCP configuration and statistics types.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tcppr::tcp {

using net::FlowId;
using net::SeqNo;

struct TcpConfig {
  std::uint32_t segment_bytes = 1000;  // payload per segment
  std::uint32_t header_bytes = 40;
  std::uint32_t ack_bytes = 40;
  double initial_cwnd = 1.0;    // packets
  double max_cwnd = 1.0e7;      // packets (stand-in for receiver window)
  int dupthresh = 3;            // initial duplicate-ACK threshold
  bool limited_transmit = false;  // RFC 3042, used by the [3] variants
  sim::Duration initial_rto = sim::Duration::seconds(3.0);
  sim::Duration min_rto = sim::Duration::seconds(1.0);  // RFC 2988
  sim::Duration max_rto = sim::Duration::seconds(64.0);
};

struct SenderStats {
  std::uint64_t data_packets_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t dupacks_received = 0;
  std::uint64_t spurious_retransmits_detected = 0;
  std::uint64_t cwnd_halvings = 0;
  std::uint64_t extreme_loss_events = 0;  // TCP-PR §3.2 resets
  SeqNo segments_acked = 0;               // == cumulative ACK point
  std::uint64_t bytes_newly_acked = 0;    // new data only (no rtx credit)
};

struct ReceiverStats {
  std::uint64_t data_packets_received = 0;
  std::uint64_t duplicates = 0;       // already-received segments
  std::uint64_t out_of_order = 0;     // arrivals above the expected seq
  std::uint64_t acks_sent = 0;
  SeqNo in_order_point = 0;           // next expected segment
  std::uint64_t goodput_bytes = 0;    // in-order delivered payload
  SeqNo max_reorder_extent = 0;       // max (arrived seq - expected seq)
};

}  // namespace tcppr::tcp
