#include "tcp/tdfr.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tcppr::tcp {

TdFrSender::TdFrSender(net::Network& network, net::NodeId local,
                       net::NodeId remote, FlowId flow, TcpConfig config)
    : NewRenoSender(network, local, remote, flow,
                    [](TcpConfig c) {
                      // The paper pairs TD-FR with the limited transmit
                      // algorithm to soften (not cure) its burstiness.
                      c.limited_transmit = true;
                      return c;
                    }(config)),
      fr_timer_(network.scheduler(), [this] { on_timer(); }) {}

sim::Duration TdFrSender::wait_threshold() const {
  // max(RTT/2, DT). Before an RTT sample exists, fall back to the initial
  // RTO's scale so the very first episode is not hair-triggered.
  const sim::Duration half_rtt = rto_.has_sample()
                                     ? rto_.srtt() / 2.0
                                     : config_.initial_rto / 2.0;
  sim::Duration dt = dt_;
  if (adaptive_wait_) dt = std::max(dt, dt_ewma_);
  return std::max(half_rtt, dt);
}

void TdFrSender::handle_dupack(const net::Packet&) {
  ++dupacks_;
  if (in_recovery_) {
    inflation_ += 1;  // standard recovery inflation
    return;
  }
  if (config_.limited_transmit) {
    inflation_ = std::min(dupacks_, 2);
  }
  if (dupacks_ == 1) {
    first_dupack_at_ = now();
    dt_ = sim::Duration::zero();
    episode_open_ = true;
    arm_timer();
  } else if (dupacks_ == 3) {
    dt_ = now() - first_dupack_at_;
    arm_timer();  // threshold may have grown; re-arm from the first dupack
  }
}

void TdFrSender::arm_timer() {
  const sim::TimePoint deadline = first_dupack_at_ + wait_threshold();
  if (deadline <= now()) {
    on_timer();
    return;
  }
  fr_timer_.arm(deadline);
}

void TdFrSender::on_timer() {
  // The wait only *delays* the standard trigger; fewer than dupthresh
  // duplicate ACKs never justified a fast retransmit in the first place.
  if (in_recovery_ || dupacks_ < config_.dupthresh || flight_size() <= 0) {
    return;
  }
  TCPPR_LOG_DEBUG("td-fr", "flow %d wait expired; entering recovery", flow());
  episode_open_ = false;
  enter_fast_recovery();
  send_new_data();
}

void TdFrSender::on_new_ack_hook() {
  // Progress: the dupack run ended; cancel any pending wait and learn how
  // long this (reordering) episode took to resolve on its own.
  if (episode_open_) {
    episode_open_ = false;
    const sim::Duration observed = now() - first_dupack_at_;
    const sim::Duration capped =
        std::min(observed, sim::Duration::seconds(2.0));
    dt_ewma_ = dt_ewma_ * (1.0 - kEwmaGain) + capped * kEwmaGain;
  }
  fr_timer_.cancel();
}

}  // namespace tcppr::tcp
