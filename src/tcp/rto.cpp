#include "tcp/rto.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace tcppr::tcp {

void RtoEstimator::add_sample(sim::Duration rtt) {
  TCPPR_CHECK(rtt >= sim::Duration::zero());
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2.0;
    has_sample_ = true;
    return;
  }
  const sim::Duration err =
      rtt > srtt_ ? (rtt - srtt_) : (srtt_ - rtt);  // |srtt - sample|
  rttvar_ = rttvar_ * (3.0 / 4.0) + err * (1.0 / 4.0);
  srtt_ = srtt_ * (7.0 / 8.0) + rtt * (1.0 / 8.0);
}

void RtoEstimator::back_off() { backoff_ = std::min(backoff_ * 2, 1 << 16); }

sim::Duration RtoEstimator::rto() const {
  // RFC 6298 ordering: the minimum applies to every computed RTO — the
  // pre-sample `initial` included, which may be configured (or rounded)
  // below it — and backoff scales the floored value, so the result can
  // never sit below `min` no matter the configuration.
  sim::Duration base = has_sample_ ? srtt_ + 4.0 * rttvar_ : params_.initial;
  base = std::max(base, params_.min);
  base = base * static_cast<double>(backoff_);
  return std::min(base, params_.max);
}

}  // namespace tcppr::tcp
