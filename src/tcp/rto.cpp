#include "tcp/rto.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace tcppr::tcp {

void RtoEstimator::add_sample(sim::Duration rtt) {
  TCPPR_CHECK(rtt >= sim::Duration::zero());
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2.0;
    has_sample_ = true;
    return;
  }
  const sim::Duration err =
      rtt > srtt_ ? (rtt - srtt_) : (srtt_ - rtt);  // |srtt - sample|
  rttvar_ = rttvar_ * (3.0 / 4.0) + err * (1.0 / 4.0);
  srtt_ = srtt_ * (7.0 / 8.0) + rtt * (1.0 / 8.0);
}

void RtoEstimator::back_off() { backoff_ = std::min(backoff_ * 2, 1 << 16); }

sim::Duration RtoEstimator::rto() const {
  sim::Duration base = params_.initial;
  if (has_sample_) {
    base = srtt_ + 4.0 * rttvar_;
    base = std::max(base, params_.min);
  }
  base = base * static_cast<double>(backoff_);
  return std::min(base, params_.max);
}

}  // namespace tcppr::tcp
