#include "tcp/sender_base.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::tcp {

SenderBase::SenderBase(net::Network& network, net::NodeId local,
                       net::NodeId remote, FlowId flow, TcpConfig config)
    : config_(config),
      network_(network),
      local_(local),
      remote_(remote),
      flow_(flow),
      source_(std::make_unique<BulkDataSource>()) {
  TCPPR_CHECK(config_.segment_bytes > 0);
  TCPPR_CHECK(config_.initial_cwnd >= 1);
  network_.node(local_).attach_agent(flow_, this);
}

SenderBase::~SenderBase() { network_.node(local_).detach_agent(flow_); }

void SenderBase::set_metric_registry(obs::MetricRegistry& registry) {
  probe_ = obs::FlowProbe(registry, flow_);
  if (probe_) probe_.cwnd(now(), cwnd());
}

void SenderBase::set_data_source(std::unique_ptr<DataSource> source) {
  TCPPR_CHECK(!started_);
  TCPPR_CHECK(source != nullptr);
  source_ = std::move(source);
}

void SenderBase::start() {
  TCPPR_CHECK(!started_);
  started_ = true;
  on_start();
  // A zero-length transfer is complete the moment it starts.
  if (!complete_ && source_->total_segments() == 0) {
    complete_ = true;
    if (completion_cb_) completion_cb_();
  }
}

void SenderBase::deliver(net::Packet&& pkt) {
  if (pkt.type != net::PacketType::kTcpAck) return;
  ++stats_.acks_received;
  on_ack_packet(pkt);
}

void SenderBase::transmit_segment(SeqNo seq, bool is_retransmission,
                                  std::uint32_t tx_serial) {
  net::Packet pkt;
  pkt.uid = network_.allocate_uid();
  pkt.src = local_;
  pkt.dst = remote_;
  pkt.size_bytes = config_.segment_bytes + config_.header_bytes;
  pkt.type = net::PacketType::kTcpData;
  pkt.tcp.flow = flow_;
  pkt.tcp.seq = seq;
  pkt.tcp.is_retransmission = is_retransmission;
  pkt.tcp.tx_serial = tx_serial;
  pkt.tcp.ts_value = now().as_seconds();
  pkt.sent_at = now();

  ++stats_.data_packets_sent;
  if (is_retransmission) {
    ++stats_.retransmissions;
    if (probe_) probe_.retransmission(now());
  }
  TCPPR_LOG(LogLevel::kTrace, "tcp", "flow %d send seq %lld rtx=%d", flow_,
            static_cast<long long>(seq), is_retransmission ? 1 : 0);
  if (burst_depth_ > 0) {
    burst_.push(std::move(pkt));
    return;
  }
  network_.node(local_).originate(std::move(pkt));
}

void SenderBase::flush_burst() {
  if (burst_.empty()) return;
  if (burst_.size() == 1) {
    net::Packet pkt = std::move(burst_[0]);
    burst_.clear();
    network_.node(local_).originate(std::move(pkt));
    return;
  }
  net::PacketBatch burst = std::move(burst_);
  network_.node(local_).originate_burst(std::move(burst));
}

void SenderBase::note_progress(SeqNo cum_ack) {
  if (cum_ack <= stats_.segments_acked) return;
  stats_.bytes_newly_acked += static_cast<std::uint64_t>(
                                  cum_ack - stats_.segments_acked) *
                              config_.segment_bytes;
  stats_.segments_acked = cum_ack;
  const SeqNo total = source_->total_segments();
  if (!complete_ && total >= 0 && cum_ack >= total) {
    complete_ = true;
    if (completion_cb_) completion_cb_();
  }
}

void SenderBase::notify_cwnd(double cwnd) {
  if (cwnd_listener_) cwnd_listener_(now(), cwnd);
  if (probe_) probe_.cwnd(now(), cwnd);
}

}  // namespace tcppr::tcp
