// TCP Reno sender: slow start, congestion avoidance, fast retransmit and
// fast recovery with window inflation (RFC 5681), go-back-N on timeout as
// in ns-2 (the substrate under which the paper's results were produced).
// NewRenoSender refines recovery behaviour on partial ACKs.
#pragma once

#include <cstdint>
#include <map>

#include "tcp/rto.hpp"
#include "tcp/sender_base.hpp"

namespace tcppr::tcp {

class RenoSender : public SenderBase {
 public:
  RenoSender(net::Network& network, net::NodeId local, net::NodeId remote,
             FlowId flow, TcpConfig config = {});

  double cwnd() const override { return cwnd_; }
  const char* algorithm() const override { return "reno"; }
  SenderInvariantView invariant_view() const override;

  double ssthresh() const { return ssthresh_; }
  bool in_fast_recovery() const { return in_recovery_; }
  SeqNo snd_una() const { return snd_una_; }
  SeqNo snd_nxt() const { return snd_nxt_; }
  sim::Duration current_rto() const { return rto_.rto(); }
  const RtoEstimator& rto_estimator() const { return rto_; }

  void rebind_scheduler(sim::Scheduler& shard) override {
    SenderBase::rebind_scheduler(shard);
    rto_timer_.rebind(shard);
    rto_timer_.set_stamp_entity(static_cast<std::uint32_t>(local_node()));
  }
  void migrate_to_shard(sim::Scheduler& shard) override {
    SenderBase::migrate_to_shard(shard);
    rto_timer_.rebind_for_migration(shard);
  }

  void state(util::StateIO& io) override {
    SenderBase::state(io);
    io.pod(cwnd_);
    io.pod(ssthresh_);
    io.pod(snd_una_);
    io.pod(snd_nxt_);
    io.pod(dupacks_);
    io.pod(partial_acks_);
    io.pod(in_recovery_);
    io.pod(recover_);
    io.pod(inflation_);
    io.pod(next_tx_serial_);
    io.pod_map(tx_info_);
    io.pod(rto_);
    io.obj(rto_timer_);
  }

 protected:
  void on_start() override;
  void on_ack_packet(const net::Packet& ack) override;

  // Hook points for NewReno and TD-FR.
  virtual void handle_new_ack_in_recovery(SeqNo ack);
  virtual void enter_fast_recovery();
  virtual void on_new_ack_hook() {}

  void handle_new_ack(SeqNo ack);
  virtual void handle_dupack(const net::Packet& ack);
  void exit_recovery();
  void open_window_on_ack();   // slow start / congestion avoidance growth
  void retransmit(SeqNo seq);
  void send_new_data();        // fill the usable window
  void on_timeout();
  void restart_rto_timer();
  void sample_rtt(SeqNo newly_acked_up_to);
  double usable_window() const;
  SeqNo flight_size() const { return snd_nxt_ - snd_una_; }

  double cwnd_ = 1;
  double ssthresh_;
  SeqNo snd_una_ = 0;
  SeqNo snd_nxt_ = 0;
  int dupacks_ = 0;
  int partial_acks_ = 0;  // partial ACKs in the current recovery episode
  bool in_recovery_ = false;
  SeqNo recover_ = 0;        // highest seq sent when recovery began
  double inflation_ = 0;     // dupack window inflation during recovery
  std::uint32_t next_tx_serial_ = 1;

  struct TxInfo {
    sim::TimePoint last_tx;
    int tx_count = 0;
  };
  std::map<SeqNo, TxInfo> tx_info_;  // [snd_una_, snd_nxt_)

  RtoEstimator rto_;
  sim::DeadlineTimer rto_timer_;
};

class NewRenoSender : public RenoSender {
 public:
  using RenoSender::RenoSender;
  const char* algorithm() const override { return "newreno"; }

 protected:
  // Partial ACKs retransmit the next hole and stay in recovery (RFC 6582).
  void handle_new_ack_in_recovery(SeqNo ack) override;
};

}  // namespace tcppr::tcp
