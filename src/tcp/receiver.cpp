#include "tcp/receiver.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::tcp {

Receiver::Receiver(net::Network& network, net::NodeId local,
                   net::NodeId remote, FlowId flow, ReceiverConfig config)
    : network_(network),
      local_(local),
      remote_(remote),
      flow_(flow),
      config_(config),
      delack_timer_(network.scheduler()) {
  network_.node(local_).attach_agent(flow_, this);
}

Receiver::~Receiver() { network_.node(local_).detach_agent(flow_); }

void Receiver::set_metric_registry(obs::MetricRegistry& registry) {
  probe_ = obs::FlowProbe(registry, flow_);
  if (probe_) {
    const sim::TimePoint t = sched().now();
    probe_.rcv_next(t, static_cast<double>(rcv_next_));
    probe_.ooo_buffered(t, static_cast<double>(above_.size()));
  }
}

void Receiver::deliver(net::Packet&& pkt) {
  if (pkt.type == net::PacketType::kTcpClose) {
    if (close_cb_) close_cb_();
    return;
  }
  if (pkt.type != net::PacketType::kTcpData) return;  // stray ACK etc.
  on_data(pkt);
}

void Receiver::deliver_batch(net::PacketBatch& batch, std::size_t begin,
                             std::size_t end) {
  // Delayed ACKs interleave timer arms with the originations, so the
  // train would reorder scheduler mints; keep the per-packet path.
  if (config_.delayed_ack) {
    for (std::size_t i = begin; i < end; ++i) deliver(std::move(batch[i]));
    return;
  }
  TCPPR_DCHECK(!train_active_);
  train_active_ = true;
  for (std::size_t i = begin; i < end; ++i) deliver(std::move(batch[i]));
  train_active_ = false;
  if (train_.empty()) return;
  if (train_.size() == 1) {
    net::Packet ack = std::move(train_[0]);
    train_.clear();
    network_.node(local_).originate(std::move(ack));
    return;
  }
  net::PacketBatch train = std::move(train_);
  network_.node(local_).originate_burst(std::move(train));
}

void Receiver::record_sack_block(SeqNo begin, SeqNo end) {
  // Extend/merge with existing blocks, then move to the front (RFC 2018
  // wants the block containing the most recently received segment first).
  for (auto it = sack_blocks_.begin(); it != sack_blocks_.end();) {
    if (begin <= it->end && it->begin <= end) {  // overlap/adjacent
      begin = std::min(begin, it->begin);
      end = std::max(end, it->end);
      it = sack_blocks_.erase(it);
    } else {
      ++it;
    }
  }
  sack_blocks_.push_front(net::SackBlock{begin, end});
}

void Receiver::on_data(const net::Packet& pkt) {
  ++stats_.data_packets_received;
  if (data_tap_) data_tap_(pkt);
  const SeqNo seq = pkt.tcp.seq;

  bool duplicate = false;
  if (seq < rcv_next_ || above_.contains(seq)) {
    duplicate = true;
    ++stats_.duplicates;
  } else if (seq == rcv_next_) {
    if (delivery_hash_enabled_) {
      delivered_hash_ =
          util::fnv1a_u64(delivered_hash_, util::payload_word(flow_, seq));
    }
    ++rcv_next_;
    // Pull buffered segments into the in-order stream.
    while (!above_.empty() && *above_.begin() == rcv_next_) {
      above_.erase(above_.begin());
      if (delivery_hash_enabled_) {
        delivered_hash_ = util::fnv1a_u64(delivered_hash_,
                                          util::payload_word(flow_, rcv_next_));
      }
      ++rcv_next_;
    }
    // Retire SACK blocks now covered by the cumulative ACK.
    for (auto it = sack_blocks_.begin(); it != sack_blocks_.end();) {
      if (it->end <= rcv_next_) {
        it = sack_blocks_.erase(it);
      } else {
        it->begin = std::max(it->begin, rcv_next_);
        ++it;
      }
    }
  } else {  // above rcv_next_: out of order
    ++stats_.out_of_order;
    stats_.max_reorder_extent =
        std::max(stats_.max_reorder_extent, seq - rcv_next_);
    above_.insert(seq);
    record_sack_block(seq, seq + 1);
    if (probe_) probe_.out_of_order(sched().now());
  }
  if (probe_) {
    const sim::TimePoint t = sched().now();
    probe_.rcv_next(t, static_cast<double>(rcv_next_));
    probe_.ooo_buffered(t, static_cast<double>(above_.size()));
  }
  stats_.in_order_point = rcv_next_;
  stats_.goodput_bytes =
      static_cast<std::uint64_t>(rcv_next_) * config_.segment_bytes;

  // Duplicate or out-of-order arrivals must be acknowledged immediately
  // (RFC 5681); delayed ACKs only apply to in-order arrivals.
  const bool immediate = duplicate || !above_.empty() || !config_.delayed_ack;
  if (immediate) {
    if (has_pending_cause_) {  // flush any pending delayed ACK state
      has_pending_cause_ = false;
      unacked_segments_ = 0;
      delack_timer_.cancel();
    }
    send_ack(pkt, duplicate);
    return;
  }

  // Delayed ACK: every second in-order segment, or after the timeout.
  pending_cause_ = pkt;
  has_pending_cause_ = true;
  if (++unacked_segments_ >= 2) {
    has_pending_cause_ = false;
    unacked_segments_ = 0;
    delack_timer_.cancel();
    send_ack(pkt, false);
    return;
  }
  delack_timer_.schedule_in(config_.delack_timeout, [this] {
    if (!has_pending_cause_) return;
    has_pending_cause_ = false;
    unacked_segments_ = 0;
    send_ack(pending_cause_, false);
  });
}

void Receiver::send_ack(const net::Packet& cause, bool is_duplicate_arrival) {
  net::Packet ack;
  ack.uid = network_.allocate_uid();
  ack.src = local_;
  ack.dst = remote_;
  ack.size_bytes = config_.ack_bytes;
  ack.type = net::PacketType::kTcpAck;
  ack.tcp.flow = flow_;
  ack.tcp.ack = rcv_next_;
  if (config_.echo_timestamps) {
    ack.tcp.echo_serial = cause.tcp.tx_serial;
    ack.tcp.ts_echo = cause.tcp.ts_value;
  }
  if (config_.generate_dsack && is_duplicate_arrival) {
    // RFC 2883: first block reports the duplicate segment.
    ack.tcp.dsack = net::SackBlock{cause.tcp.seq, cause.tcp.seq + 1};
  }
  if (config_.generate_sack) {
    int n = 0;
    for (const auto& block : sack_blocks_) {
      if (n >= config_.max_sack_blocks) break;
      ack.tcp.sack.push_back(block);
      ++n;
    }
  }
  emit_ack(std::move(ack));
}

void Receiver::emit_ack(net::Packet&& ack) {
  ++stats_.acks_sent;
  ack.sent_at = sched().now();
  if (ack_tap_) ack_tap_(ack);
  if (train_active_) {  // deliver_batch flushes the train as one burst
    train_.push(std::move(ack));
    return;
  }
  network_.node(local_).originate(std::move(ack));
}

}  // namespace tcppr::tcp
