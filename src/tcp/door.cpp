#include "tcp/door.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tcppr::tcp {

DoorSender::DoorSender(net::Network& network, net::NodeId local,
                       net::NodeId remote, FlowId flow, TcpConfig config,
                       DoorParams params)
    : NewRenoSender(network, local, remote, flow, config), params_(params) {}

bool DoorSender::response_disabled() const {
  return now() - last_ooo_at_ <= params_.t1;
}

void DoorSender::on_ack_packet(const net::Packet& ack) {
  // Out-of-order detection: the receiver echoes the transmission serial of
  // the segment that triggered each ACK; a serial below the highest one
  // already echoed means ACKs (or the data that produced them) crossed.
  if (ack.tcp.echo_serial != 0) {
    if (ack.tcp.echo_serial < highest_echo_serial_) {
      ++ooo_events_;
      last_ooo_at_ = now();
      TCPPR_LOG_DEBUG("tcp-door", "flow %d out-of-order event #%llu", flow(),
                      static_cast<unsigned long long>(ooo_events_));
      // Instant recovery: a congestion response in the recent past was
      // likely triggered by this reordering, not by loss.
      if (now() - last_reduction_at_ <= params_.t2 &&
          pre_reduction_cwnd_ > 0) {
        cwnd_ = std::max(cwnd_, pre_reduction_cwnd_);
        ssthresh_ = std::max(ssthresh_, pre_reduction_ssthresh_);
        in_recovery_ = false;
        inflation_ = 0;
        dupacks_ = 0;
        pre_reduction_cwnd_ = 0;
        notify_cwnd(cwnd_);
      }
    } else {
      highest_echo_serial_ = ack.tcp.echo_serial;
    }
  }
  NewRenoSender::on_ack_packet(ack);
}

void DoorSender::handle_dupack(const net::Packet& ack) {
  if (response_disabled() && !in_recovery_) {
    // Congestion control frozen for T1 after an out-of-order observation:
    // dupacks accumulate but trigger nothing.
    ++dupacks_;
    return;
  }
  NewRenoSender::handle_dupack(ack);
}

void DoorSender::enter_fast_recovery() {
  pre_reduction_cwnd_ = cwnd_;
  pre_reduction_ssthresh_ = ssthresh_;
  last_reduction_at_ = now();
  NewRenoSender::enter_fast_recovery();
}

}  // namespace tcppr::tcp
