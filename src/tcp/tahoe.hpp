// TCP Tahoe: fast retransmit but no fast recovery — every detected loss
// sends the sender back to slow start from cwnd = 1 (Jacobson 88).
// Era-appropriate floor baseline for the comparison suite.
#pragma once

#include "tcp/reno.hpp"

namespace tcppr::tcp {

class TahoeSender final : public RenoSender {
 public:
  using RenoSender::RenoSender;
  const char* algorithm() const override { return "tahoe"; }

 protected:
  void enter_fast_recovery() override;
};

}  // namespace tcppr::tcp
