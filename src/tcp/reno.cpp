#include "tcp/reno.hpp"

#include <algorithm>
#include <iterator>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::tcp {

RenoSender::RenoSender(net::Network& network, net::NodeId local,
                       net::NodeId remote, FlowId flow, TcpConfig config)
    : SenderBase(network, local, remote, flow, config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.max_cwnd),
      rto_(RtoEstimator::Params{config.initial_rto, config.min_rto,
                                config.max_rto}),
      rto_timer_(network.scheduler(), [this] { on_timeout(); }) {}

void RenoSender::on_start() {
  send_new_data();
  restart_rto_timer();
}

SenderInvariantView RenoSender::invariant_view() const {
  SenderInvariantView v;
  v.valid = true;
  v.cwnd = cwnd_;
  v.ssthresh = ssthresh_;
  v.ssthresh_floor = 2.0;
  v.snd_una = snd_una_;
  v.snd_nxt = snd_nxt_;
  v.window_bookkeeping = true;
  // Count only records inside the window: a go-back-N timeout rewinds
  // snd_nxt_ without erasing the entries above it.
  v.tracked_in_window = static_cast<std::int64_t>(std::distance(
      tx_info_.lower_bound(snd_una_), tx_info_.lower_bound(snd_nxt_)));
  v.has_rto = true;
  v.rto = rto_.rto();
  v.min_rto = rto_.params().min;
  v.max_rto = rto_.params().max;
  v.rtx_timer_armed = rto_timer_.armed();
  v.rtx_timer_needed = started() && flight_size() > 0;
  v.rtx_timer_strict = true;
  return v;
}

double RenoSender::usable_window() const {
  const double w = std::min(cwnd_ + inflation_, config_.max_cwnd);
  return w;
}

void RenoSender::send_new_data() {
  // The timer cannot disarm while we only transmit, so the per-iteration
  // "arm if unarmed" collapses to one check hoisted past the burst scope —
  // the re-arm's scheduler op then follows the burst's, as one event.
  const bool was_armed = rto_timer_.armed();
  bool sent = false;
  {
    SenderBase::BurstScope burst(*this);
    while (static_cast<double>(flight_size()) + 1.0 <= usable_window() &&
           source_has(snd_nxt_)) {
      auto& info = tx_info_[snd_nxt_];
      // After a go-back-N timeout, "new" sends below the old snd_nxt are
      // really retransmissions; tx_count distinguishes them.
      const bool rtx = info.tx_count > 0;
      info.last_tx = now();
      ++info.tx_count;
      transmit_segment(snd_nxt_, rtx, next_tx_serial_++);
      ++snd_nxt_;
      sent = true;
    }
  }
  if (sent && !was_armed) restart_rto_timer();
}

void RenoSender::retransmit(SeqNo seq) {
  auto& info = tx_info_[seq];
  info.last_tx = now();
  ++info.tx_count;
  transmit_segment(seq, /*is_retransmission=*/true, next_tx_serial_++);
}

void RenoSender::restart_rto_timer() {
  if (flight_size() <= 0) {
    rto_timer_.cancel();
    return;
  }
  rto_timer_.arm(now() + rto_.rto());
}

void RenoSender::sample_rtt(SeqNo newly_acked_up_to) {
  // Karn's rule: only sample segments transmitted exactly once; the
  // newest acknowledged segment gives the freshest estimate.
  const auto it = tx_info_.find(newly_acked_up_to - 1);
  if (it == tx_info_.end()) return;
  if (it->second.tx_count != 1) return;
  rto_.add_sample(now() - it->second.last_tx);
}

void RenoSender::on_ack_packet(const net::Packet& ack) {
  const SeqNo a = ack.tcp.ack;
  if (a > snd_una_) {
    handle_new_ack(a);
  } else if (flight_size() > 0) {
    ++stats_.dupacks_received;
    handle_dupack(ack);
  }
  send_new_data();
}

void RenoSender::handle_new_ack(SeqNo ack) {
  sample_rtt(ack);
  rto_.reset_backoff();
  on_new_ack_hook();
  if (in_recovery_) {
    handle_new_ack_in_recovery(ack);
  } else {
    dupacks_ = 0;
    snd_una_ = std::max(snd_una_, ack);
    open_window_on_ack();
  }
  tx_info_.erase(tx_info_.begin(), tx_info_.lower_bound(snd_una_));
  note_progress(snd_una_);
  // RFC 3782 "Impatient": during recovery only the first partial ACK may
  // reset the retransmission timer, so a window with many holes escapes to
  // an RTO instead of crawling for one hole per RTT. (Classic Reno exits
  // recovery on any new ACK, so this only affects NewReno and derivates,
  // which restart the timer themselves in the partial-ACK path.)
  if (!in_recovery_) restart_rto_timer();
}

void RenoSender::handle_new_ack_in_recovery(SeqNo ack) {
  // Classic Reno leaves recovery on the first new ACK, whether or not it
  // covers every segment outstanding at the loss (its known weakness with
  // multiple drops per window).
  snd_una_ = std::max(snd_una_, ack);
  dupacks_ = 0;
  exit_recovery();
}

void RenoSender::exit_recovery() {
  in_recovery_ = false;
  inflation_ = 0;
  cwnd_ = ssthresh_;  // deflate
  notify_cwnd(cwnd_);
}

void RenoSender::open_window_on_ack() {
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1;  // slow start
  } else {
    cwnd_ += 1.0 / cwnd_;  // congestion avoidance
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd);
  notify_cwnd(cwnd_);
}

void RenoSender::handle_dupack(const net::Packet&) {
  ++dupacks_;
  if (in_recovery_) {
    inflation_ += 1;  // window inflation per extra dupack
    return;
  }
  if (dupacks_ >= config_.dupthresh) {
    enter_fast_recovery();
  } else if (config_.limited_transmit) {
    // RFC 3042: the first two dupacks each release one new segment.
    inflation_ = std::min(dupacks_, 2);
  }
}

void RenoSender::enter_fast_recovery() {
  ++stats_.fast_retransmits;
  ++stats_.cwnd_halvings;
  in_recovery_ = true;
  partial_acks_ = 0;
  recover_ = snd_nxt_;
  ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0);
  cwnd_ = ssthresh_;
  inflation_ = static_cast<double>(dupacks_);
  retransmit(snd_una_);
  restart_rto_timer();
  notify_cwnd(cwnd_);
}

void RenoSender::on_timeout() {
  if (flight_size() <= 0) return;
  ++stats_.timeouts;
  TCPPR_LOG_DEBUG("reno", "flow %d timeout, snd_una=%lld", flow(),
                  static_cast<long long>(snd_una_));
  ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0);
  cwnd_ = 1;
  inflation_ = 0;
  dupacks_ = 0;
  in_recovery_ = false;
  rto_.back_off();
  // Go back N (ns-2 style): resend from the cumulative ACK point. The
  // window re-send happens through send_new_data(), whose tx_count check
  // marks these as retransmissions.
  snd_nxt_ = snd_una_;
  send_new_data();
  restart_rto_timer();
  notify_cwnd(cwnd_);
}

}  // namespace tcppr::tcp
