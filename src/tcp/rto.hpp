// Retransmission timeout estimation per RFC 2988 (Jacobson/Karels SRTT and
// RTTVAR, exponential backoff on timeout). Karn's rule — never sample a
// retransmitted segment — is the caller's responsibility.
#pragma once

#include "sim/time.hpp"

namespace tcppr::tcp {

class RtoEstimator {
 public:
  struct Params {
    sim::Duration initial = sim::Duration::seconds(3.0);
    sim::Duration min = sim::Duration::seconds(1.0);
    sim::Duration max = sim::Duration::seconds(64.0);
  };

  explicit RtoEstimator(Params params) : params_(params) {}
  RtoEstimator() : RtoEstimator(Params{}) {}

  void add_sample(sim::Duration rtt);
  // Doubles the backoff multiplier (called on timeout).
  void back_off();
  // Collapses the backoff (called when new data is acknowledged).
  void reset_backoff() { backoff_ = 1; }

  sim::Duration rto() const;
  const Params& params() const { return params_; }
  bool has_sample() const { return has_sample_; }
  sim::Duration srtt() const { return srtt_; }
  sim::Duration rttvar() const { return rttvar_; }
  int backoff_multiplier() const { return backoff_; }

 private:
  Params params_;
  bool has_sample_ = false;
  sim::Duration srtt_ = sim::Duration::zero();
  sim::Duration rttvar_ = sim::Duration::zero();
  int backoff_ = 1;
};

}  // namespace tcppr::tcp
