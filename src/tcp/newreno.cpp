#include "tcp/reno.hpp"

#include <algorithm>

namespace tcppr::tcp {

void NewRenoSender::handle_new_ack_in_recovery(SeqNo ack) {
  snd_una_ = std::max(snd_una_, ack);
  if (ack >= recover_) {
    dupacks_ = 0;
    exit_recovery();
    return;
  }
  // Partial ACK: retransmit the next hole, deflate by the segment acked,
  // remain in recovery (RFC 6582). Only the first partial ACK resets the
  // retransmit timer (the "Impatient" variant), so heavy-loss windows
  // escape to a timeout rather than repairing one hole per RTT forever.
  inflation_ = std::max(0.0, inflation_ - 1.0);
  retransmit(snd_una_);
  if (++partial_acks_ == 1) restart_rto_timer();
}

}  // namespace tcppr::tcp
