#include "tcp/mitigation.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tcppr::tcp {

const char* to_string(DupthreshPolicy policy) {
  switch (policy) {
    case DupthreshPolicy::kDsackNoMitigation:
      return "dsack-nm";
    case DupthreshPolicy::kIncByOne:
      return "inc-by-1";
    case DupthreshPolicy::kIncByN:
      return "inc-by-n";
    case DupthreshPolicy::kEwma:
      return "ewma";
  }
  return "?";
}

MitigationSender::MitigationSender(net::Network& network, net::NodeId local,
                                   net::NodeId remote, FlowId flow,
                                   DupthreshPolicy policy, TcpConfig config)
    : SackSender(network, local, remote, flow, config),
      policy_(policy),
      ewma_(config.dupthresh) {
  process_dsack_ = true;
}

void MitigationSender::on_spurious_retransmit(SeqNo seq, int reorder_extent) {
  TCPPR_LOG_DEBUG("mitigation", "flow %d spurious rtx of %lld extent=%d",
                  flow(), static_cast<long long>(seq), reorder_extent);
  // Undo the congestion response that the spurious retransmission caused
  // (all four variants do this; DSACK-NM does only this).
  undo_last_reduction(/*full_restore=*/false);

  switch (policy_) {
    case DupthreshPolicy::kDsackNoMitigation:
      break;
    case DupthreshPolicy::kIncByOne:
      dupthresh_ += 1;
      break;
    case DupthreshPolicy::kIncByN:
      dupthresh_ = (dupthresh_ + static_cast<double>(reorder_extent)) / 2.0;
      break;
    case DupthreshPolicy::kEwma:
      ewma_ = (1.0 - kEwmaGain) * ewma_ +
              kEwmaGain * static_cast<double>(reorder_extent);
      dupthresh_ = std::max(3.0, ewma_);
      break;
  }
}

}  // namespace tcppr::tcp
