// Common machinery for every TCP sender variant: node attachment, segment
// construction, application data source, completion, statistics, and the
// cwnd trace hook. Loss detection and window management live in the
// variants (tcp/reno.hpp, tcp/sack.hpp, core/tcp_pr.hpp, ...).
#pragma once

#include <functional>
#include <memory>

#include "net/network.hpp"
#include "net/node.hpp"
#include "obs/probe.hpp"
#include "sim/scheduler.hpp"
#include "tcp/types.hpp"

namespace tcppr::tcp {

// What the sender has to transmit. Bulk sources never run dry (FTP model
// used throughout the paper); fixed sources end after N segments.
class DataSource {
 public:
  virtual ~DataSource() = default;
  // True when segment `seq` exists to be sent.
  virtual bool has_segment(SeqNo seq) const = 0;
  // Total segments, or -1 for unbounded.
  virtual SeqNo total_segments() const = 0;
};

class BulkDataSource final : public DataSource {
 public:
  bool has_segment(SeqNo) const override { return true; }
  SeqNo total_segments() const override { return -1; }
};

class FixedDataSource final : public DataSource {
 public:
  explicit FixedDataSource(SeqNo segments) : segments_(segments) {}
  bool has_segment(SeqNo seq) const override { return seq < segments_; }
  SeqNo total_segments() const override { return segments_; }

 private:
  SeqNo segments_;
};

// Uniform snapshot of the sender-side state-machine invariants, exported
// by every variant for the validation layer (src/validate). Fields are a
// lowest-common-denominator view: family-specific structure (SACK
// scoreboard consistency, TCP-PR bookkeeping) is pre-checked by the
// variant and folded into `scoreboard_ok`.
struct SenderInvariantView {
  bool valid = false;  // false: variant exports no view (checker skips it)
  double cwnd = 0;
  double ssthresh = 0;
  // Variant-specific lower bound on ssthresh (2.0 for the RFC 5681
  // family; 1.0 for TCP-PR, whose halving floors at one segment).
  double ssthresh_floor = 0;
  SeqNo snd_una = 0;
  SeqNo snd_nxt = 0;
  // Per-segment records the variant tracks inside [snd_una, snd_nxt).
  // Checked against snd_nxt - snd_una only when window_bookkeeping is set
  // (the Reno/SACK families; TCP-PR splits its flight across two sets and
  // reports via scoreboard_ok instead).
  bool window_bookkeeping = false;
  std::int64_t tracked_in_window = 0;
  bool has_rto = false;  // RFC 2988 estimator present (not TCP-PR)
  sim::Duration rto = sim::Duration::zero();
  sim::Duration min_rto = sim::Duration::zero();
  sim::Duration max_rto = sim::Duration::zero();
  // Logical armed state of the loss-detection timer (DeadlineTimer::armed:
  // the callback will run, whether or not the physical scheduler event is
  // currently parked at an earlier deferred shot).
  bool rtx_timer_armed = false;
  bool rtx_timer_needed = false;  // data outstanding
  // true: armed <=> needed. false: only needed => armed is required
  // (TCP-PR's unblock timer may legitimately outlive its backoff).
  bool rtx_timer_strict = false;
  bool scoreboard_ok = true;  // family-specific structural consistency
};

class SenderBase : public net::Agent {
 public:
  SenderBase(net::Network& network, net::NodeId local, net::NodeId remote,
             FlowId flow, TcpConfig config);
  ~SenderBase() override;

  SenderBase(const SenderBase&) = delete;
  SenderBase& operator=(const SenderBase&) = delete;

  // Begins transmission (first window) immediately.
  void start();
  bool started() const { return started_; }

  // Default source is bulk; call before start().
  void set_data_source(std::unique_ptr<DataSource> source);
  // Invoked once when a fixed-size transfer is fully acknowledged.
  void set_completion_callback(std::function<void()> cb) {
    completion_cb_ = std::move(cb);
  }
  bool complete() const { return complete_; }

  // Observe (time, cwnd) after every change; for traces and examples.
  void set_cwnd_listener(std::function<void(sim::TimePoint, double)> fn) {
    cwnd_listener_ = std::move(fn);
  }

  // Attaches the flow-state observability layer: cwnd/ssthresh/estimator
  // samples flow into `registry` from now on (src/obs). Emits the current
  // cwnd immediately so every series starts with a sample.
  void set_metric_registry(obs::MetricRegistry& registry);

  void deliver(net::Packet&& pkt) final;

  const SenderStats& stats() const { return stats_; }
  const TcpConfig& config() const { return config_; }
  FlowId flow() const { return flow_; }
  net::NodeId local_node() const { return local_; }
  net::NodeId remote_node() const { return remote_; }

  // Re-points the sender (and every timer a variant owns) at the
  // scheduler shard owning its node. Parallel-mode adoption only; must
  // run before start(). Variants with timers override and chain up.
  virtual void rebind_scheduler(sim::Scheduler& shard) {
    TCPPR_CHECK(!started_);
    sched_override_ = &shard;
  }
  // Mid-run shard migration (adaptive repartitioning): re-points a RUNNING
  // sender at its new owner shard. Timers switch with armed flags intact
  // and stale ids dropped; the state() restore pass that follows re-seats
  // every physical shot into the new shard. Variants with timers override
  // and chain up.
  virtual void migrate_to_shard(sim::Scheduler& shard) {
    sched_override_ = &shard;
  }
  virtual double cwnd() const = 0;
  // Name of the variant, for experiment tables.
  virtual const char* algorithm() const = 0;

  // Checkpoint/rollback visitor (util/state_io.hpp): every member that
  // defines the sender's forward trajectory. Variants override and chain
  // up. The burst staging area is empty between events and the callbacks/
  // probes are wiring, not state.
  virtual void state(util::StateIO& io) {
    io.pod(stats_);
    io.pod(started_);
    io.pod(complete_);
  }
  // Invariant snapshot for src/validate; the default (valid == false)
  // means "nothing to check". Safe to call between scheduler events only.
  virtual SenderInvariantView invariant_view() const { return {}; }

 protected:
  virtual void on_start() = 0;
  virtual void on_ack_packet(const net::Packet& ack) = 0;

  // Builds and transmits one data segment. tx_serial distinguishes
  // (re)transmissions of the same seq. Inside a BurstScope the segment is
  // staged instead of originated immediately.
  void transmit_segment(SeqNo seq, bool is_retransmission,
                        std::uint32_t tx_serial);

  // RAII send-burst: transmit_segment calls within the scope stage their
  // segments, and scope exit hands the whole burst to the node as one
  // originate_burst (one routing/admission sweep, and under the batched
  // engine one coalesced delivery run downstream). Staging only defers the
  // link hand-off past the later segments' construction — construction
  // touches no shared state — so per-packet behavior is identical; scopes
  // nest (the outermost flushes).
  class BurstScope {
   public:
    explicit BurstScope(SenderBase& sender) : sender_(sender) {
      ++sender_.burst_depth_;
    }
    ~BurstScope() {
      if (--sender_.burst_depth_ == 0) sender_.flush_burst();
    }
    BurstScope(const BurstScope&) = delete;
    BurstScope& operator=(const BurstScope&) = delete;

   private:
    SenderBase& sender_;
  };

  bool source_has(SeqNo seq) const { return source_->has_segment(seq); }
  SeqNo source_total() const { return source_->total_segments(); }
  // Called by variants whenever the cumulative ACK point advances; handles
  // stats and completion detection.
  void note_progress(SeqNo cum_ack);
  void notify_cwnd(double cwnd);

  sim::Scheduler& sched() {
    return sched_override_ != nullptr ? *sched_override_
                                      : network_.scheduler();
  }
  sim::TimePoint now() const {
    return sched_override_ != nullptr ? sched_override_->now()
                                      : network_.scheduler().now();
  }
  net::Network& network() { return network_; }

  TcpConfig config_;
  SenderStats stats_;
  // Disabled until set_metric_registry; every emission is guarded by
  // `if (probe_)`, one predictable branch when observability is off.
  obs::FlowProbe probe_;

 private:
  friend class BurstScope;
  void flush_burst();

  net::Network& network_;
  sim::Scheduler* sched_override_ = nullptr;  // parallel mode: LP shard
  net::PacketBatch burst_;   // segments staged by the active BurstScope
  int burst_depth_ = 0;
  net::NodeId local_;
  net::NodeId remote_;
  FlowId flow_;
  std::unique_ptr<DataSource> source_;
  std::function<void()> completion_cb_;
  std::function<void(sim::TimePoint, double)> cwnd_listener_;
  bool started_ = false;
  bool complete_ = false;
};

}  // namespace tcppr::tcp
