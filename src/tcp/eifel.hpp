// The Eifel algorithm (Ludwig & Katz, CCR 2000): timestamp-based spurious
// retransmission detection. The receiver echoes the timestamp of the
// segment that triggered each ACK; if the ACK that covers a retransmitted
// segment echoes a timestamp older than the retransmission, the original
// got through and the congestion response is reversed (full restore of
// cwnd and ssthresh).
//
// Related-work extension: Eifel is discussed in Section 2 of the paper but
// not part of its Figure 6 comparison; it is included here for
// completeness and used in the ablation benches.
#pragma once

#include "tcp/sack.hpp"

namespace tcppr::tcp {

class EifelSender final : public SackSender {
 public:
  EifelSender(net::Network& network, net::NodeId local, net::NodeId remote,
              FlowId flow, TcpConfig config = {});

  const char* algorithm() const override { return "eifel"; }

 protected:
  void on_new_ack_hook(const net::Packet& ack) override;
};

}  // namespace tcppr::tcp
