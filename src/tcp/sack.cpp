#include "tcp/sack.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::tcp {

SackSender::SackSender(net::Network& network, net::NodeId local,
                       net::NodeId remote, FlowId flow, TcpConfig config)
    : SenderBase(network, local, remote, flow, config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.max_cwnd),
      dupthresh_(config.dupthresh),
      rto_(RtoEstimator::Params{config.initial_rto, config.min_rto,
                                config.max_rto}),
      rto_timer_(network.scheduler(), [this] { on_timeout(); }) {}

void SackSender::on_start() {
  send_more();
  restart_rto_timer();
}

SenderInvariantView SackSender::invariant_view() const {
  SenderInvariantView v;
  v.valid = true;
  v.cwnd = cwnd_;
  v.ssthresh = ssthresh_;
  v.ssthresh_floor = 2.0;
  v.snd_una = snd_una_;
  v.snd_nxt = snd_nxt_;
  v.window_bookkeeping = true;
  v.tracked_in_window = static_cast<std::int64_t>(std::distance(
      tx_info_.lower_bound(snd_una_), tx_info_.lower_bound(snd_nxt_)));
  v.has_rto = true;
  v.rto = rto_.rto();
  v.min_rto = rto_.params().min;
  v.max_rto = rto_.params().max;
  v.rtx_timer_armed = rto_timer_.armed();
  v.rtx_timer_needed = started() && snd_nxt_ > snd_una_;
  v.rtx_timer_strict = true;
  // Scoreboard structure (RFC 3517): every mark lives inside the window,
  // a segment is never both SACKed and lost, and only lost segments can
  // have retransmissions in flight.
  v.scoreboard_ok = true;
  for (const SeqNo s : sacked_) {
    if (s < snd_una_ || s >= snd_nxt_ || lost_.contains(s)) {
      v.scoreboard_ok = false;
    }
  }
  for (const SeqNo s : lost_) {
    if (s < snd_una_ || s >= snd_nxt_) v.scoreboard_ok = false;
  }
  for (const SeqNo s : rtx_in_flight_) {
    if (!lost_.contains(s)) v.scoreboard_ok = false;
  }
  return v;
}

int SackSender::effective_dupthresh() const {
  // Never below 3 (RFC 5681); never so high that the window cannot
  // generate enough dupacks, which would force an RTO ([3]'s cap).
  const double cap = std::max(3.0, cwnd_ - 1.0);
  return static_cast<int>(std::lround(
      std::clamp(dupthresh_, 3.0, cap)));
}

double SackSender::pipe() const {
  // RFC 3517 SetPipe via set cardinalities: segments in flight that are
  // neither SACKed nor marked lost, plus retransmissions in flight.
  // Against a receiver that never sends SACK blocks, each duplicate ACK
  // stands in for one delivered-but-unidentified segment (Linux's "reno
  // sack" emulation) — without it the pipe never drains during recovery
  // and the retransmission cannot be clocked out.
  const double range = static_cast<double>(snd_nxt_ - snd_una_);
  double pipe = range - static_cast<double>(sacked_.size()) -
                static_cast<double>(lost_.size()) +
                static_cast<double>(rtx_in_flight_.size());
  if (!peer_sends_sack_) {
    pipe -= static_cast<double>(dupacks_);
  }
  return std::max(pipe, 0.0);
}

void SackSender::update_scoreboard(const net::Packet& ack) {
  if (!ack.tcp.sack.empty()) peer_sends_sack_ = true;
  for (const auto& block : ack.tcp.sack) {
    const SeqNo lo = std::max(block.begin, snd_una_);
    const SeqNo hi = std::min(block.end, snd_nxt_);
    for (SeqNo s = lo; s < hi; ++s) {
      if (sacked_.insert(s).second) {
        lost_.erase(s);
        rtx_in_flight_.erase(s);
        highest_sacked_ = std::max(highest_sacked_, s);
      }
    }
  }
}

void SackSender::mark_lost_by_sack() {
  if (highest_sacked_ < snd_una_) return;
  if (!in_recovery_ && !mark_losses_outside_recovery()) return;
  const SeqNo gap = effective_dupthresh();
  for (SeqNo s = snd_una_; s + gap <= highest_sacked_; ++s) {
    if (!sacked_.contains(s)) lost_.insert(s);
  }
}

bool SackSender::loss_detected() const {
  return dupacks_ >= effective_dupthresh() || !lost_.empty();
}

void SackSender::on_ack_packet(const net::Packet& ack) {
  // Spurious-retransmit detection from the DSACK option (RFC 2883/3708).
  if (process_dsack_ && ack.tcp.dsack.has_value()) {
    const SeqNo s = ack.tcp.dsack->begin;
    const auto it = recent_rtx_.find(s);
    if (it != recent_rtx_.end()) {
      // The receiver saw the segment twice and we retransmitted it: the
      // retransmission was unnecessary. The reordering extent estimate is
      // the largest dupack run observed around the episode (the DSACK
      // usually lands after the episode has closed).
      const int extent = std::max({episode_dupacks_, last_episode_dupacks_,
                                   it->second.episode_dupacks});
      recent_rtx_.erase(it);
      ++stats_.spurious_retransmits_detected;
      on_spurious_retransmit(s, extent);
    }
  }

  update_scoreboard(ack);

  const SeqNo a = ack.tcp.ack;
  if (a > snd_una_) {
    // RTT sample (Karn's rule) before the tx records are erased.
    const auto it = tx_info_.find(a - 1);
    if (it != tx_info_.end() && it->second.tx_count == 1) {
      rto_.add_sample(now() - it->second.last_tx);
    }
    rto_.reset_backoff();
    if (probe_) probe_.rto(now(), rto_.rto().as_seconds());
    advance_una(a);
    on_new_ack_hook(ack);
    if (in_recovery_) {
      if (a >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        dupacks_ = 0;
        last_episode_dupacks_ = episode_dupacks_;
        episode_dupacks_ = 0;
        notify_cwnd(cwnd_);
      }
      // Partial ACK: scoreboard-driven retransmission continues below.
    } else {
      dupacks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1;
      } else {
        cwnd_ += 1.0 / cwnd_;
      }
      cwnd_ = std::min(cwnd_, config_.max_cwnd);
      notify_cwnd(cwnd_);
    }
    restart_rto_timer();
  } else if (snd_nxt_ > snd_una_) {
    ++stats_.dupacks_received;
    ++dupacks_;
    ++episode_dupacks_;
    on_dupack_hook(ack);
  }

  mark_lost_by_sack();
  if (!in_recovery_ && snd_nxt_ > snd_una_ && loss_detected()) {
    enter_recovery();
  }
  send_more();
  if (probe_) probe_.outstanding(now(), pipe());
}

void SackSender::advance_una(SeqNo ack) {
  snd_una_ = ack;
  sacked_.erase(sacked_.begin(), sacked_.lower_bound(snd_una_));
  lost_.erase(lost_.begin(), lost_.lower_bound(snd_una_));
  rtx_in_flight_.erase(rtx_in_flight_.begin(),
                       rtx_in_flight_.lower_bound(snd_una_));
  tx_info_.erase(tx_info_.begin(), tx_info_.lower_bound(snd_una_));
  // DSACKs for a retransmission typically arrive after the cumulative ACK
  // has passed it, so spurious-detection records outlive the window by a
  // margin before being pruned.
  constexpr SeqNo kRtxHistory = 4096;
  if (snd_una_ > kRtxHistory) {
    recent_rtx_.erase(recent_rtx_.begin(),
                      recent_rtx_.lower_bound(snd_una_ - kRtxHistory));
  }
  note_progress(snd_una_);
}

void SackSender::enter_recovery() {
  ++stats_.fast_retransmits;
  ++stats_.cwnd_halvings;
  saved_cwnd_ = cwnd_;
  saved_ssthresh_ = ssthresh_;
  in_recovery_ = true;
  recover_ = snd_nxt_;
  const double flight = std::max(pipe(), 1.0);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = ssthresh_;
  // The segment at the ACK point is the presumed loss.
  if (!sacked_.contains(snd_una_)) lost_.insert(snd_una_);
  if (probe_) {
    probe_.ssthresh(now(), ssthresh_);
    probe_.drop_declared(now());
  }
  notify_cwnd(cwnd_);
}

void SackSender::undo_last_reduction(bool full_restore) {
  // [3] (footnote 3): rather than jumping straight back, restore ssthresh
  // to the pre-reduction window so the sender slow-starts up to it. Eifel
  // restores both (full_restore).
  ssthresh_ = std::max(ssthresh_, saved_cwnd_);
  if (full_restore) cwnd_ = std::max(cwnd_, saved_cwnd_);
  if (in_recovery_) {
    in_recovery_ = false;
    dupacks_ = 0;
    last_episode_dupacks_ = episode_dupacks_;
    episode_dupacks_ = 0;
  }
  // The loss marks of this episode were wrong; forget them.
  lost_.clear();
  rtx_in_flight_.clear();
  if (probe_) probe_.ssthresh(now(), ssthresh_);
  notify_cwnd(cwnd_);
}

void SackSender::retransmit(SeqNo seq) {
  auto& info = tx_info_[seq];
  info.last_tx = now();
  if (info.tx_count <= 1) info.first_rtx = now();
  ++info.tx_count;
  recent_rtx_[seq] = RtxRecord{now(), episode_dupacks_};
  transmit_segment(seq, /*is_retransmission=*/true, next_tx_serial_++);
}

void SackSender::send_more() {
  // As in RenoSender::send_new_data: transmitting never disarms the
  // timer, so the per-iteration "arm if unarmed" hoists past the burst.
  const bool was_armed = rto_timer_.armed();
  bool sent = false;
  {
    SenderBase::BurstScope burst(*this);
    const double window = std::min(cwnd_, config_.max_cwnd);
    while (pipe() + 1.0 <= window) {
      // NextSeg (RFC 3517): lost-and-not-yet-retransmitted first, then new.
      std::optional<SeqNo> rtx;
      for (const SeqNo s : lost_) {
        if (!rtx_in_flight_.contains(s)) {
          rtx = s;
          break;
        }
      }
      if (rtx.has_value()) {
        rtx_in_flight_.insert(*rtx);
        retransmit(*rtx);
      } else if (source_has(snd_nxt_)) {
        auto& info = tx_info_[snd_nxt_];
        const bool is_rtx = info.tx_count > 0;  // go-back-N resend
        info.last_tx = now();
        if (is_rtx && info.tx_count == 1) info.first_rtx = now();
        ++info.tx_count;
        if (is_rtx) recent_rtx_[snd_nxt_] = RtxRecord{now(), episode_dupacks_};
        transmit_segment(snd_nxt_, is_rtx, next_tx_serial_++);
        ++snd_nxt_;
      } else {
        break;
      }
      sent = true;
    }
  }
  if (sent && !was_armed) restart_rto_timer();
}

void SackSender::restart_rto_timer() {
  if (snd_nxt_ <= snd_una_) {
    rto_timer_.cancel();
    return;
  }
  rto_timer_.arm(now() + rto_.rto());
}

void SackSender::on_timeout() {
  if (snd_nxt_ <= snd_una_) return;
  ++stats_.timeouts;
  TCPPR_LOG_DEBUG("sack", "flow %d timeout at una=%lld", flow(),
                  static_cast<long long>(snd_una_));
  ssthresh_ = std::max(pipe() / 2.0, 2.0);
  cwnd_ = 1;
  dupacks_ = 0;
  episode_dupacks_ = 0;
  in_recovery_ = false;
  // ns-2 sack1 clears the scoreboard on timeout; go-back-N from snd_una_.
  sacked_.clear();
  lost_.clear();
  rtx_in_flight_.clear();
  highest_sacked_ = -1;
  snd_nxt_ = snd_una_;
  rto_.back_off();
  if (probe_) {
    probe_.ssthresh(now(), ssthresh_);
    probe_.rto(now(), rto_.rto().as_seconds());
    probe_.drop_declared(now());
  }
  send_more();
  restart_rto_timer();
  notify_cwnd(cwnd_);
}

void SackSender::on_spurious_retransmit(SeqNo seq, int reorder_extent) {
  (void)seq;
  (void)reorder_extent;
  // Plain TCP-SACK takes no action; subclasses respond.
}

}  // namespace tcppr::tcp
