// The reordering mitigations of Blanton & Allman, "On Making TCP More
// Robust to Packet Reordering" (CCR 2002) — reference [3] of the paper and
// the comparison set of its Figure 6.
//
// All variants ride on the SACK sender with DSACK processing enabled. On a
// detected spurious retransmission each restores the pre-reduction window
// (via ssthresh, so the sender slow-starts back up — [3] footnote 3) and
// then adjusts dupthresh per its policy:
//   kDsackNoMitigation ("DSACK-NM"): dupthresh untouched.
//   kIncByOne          ("Inc by 1"): dupthresh += 1 per spurious event.
//   kIncByN            ("Inc by N"): dupthresh = avg(dupthresh, extent)
//                                    where extent = dupacks that caused it.
//   kEwma              ("EWMA")    : dupthresh tracks an EWMA of extents.
#pragma once

#include "tcp/sack.hpp"

namespace tcppr::tcp {

enum class DupthreshPolicy {
  kDsackNoMitigation,
  kIncByOne,
  kIncByN,
  kEwma,
};

const char* to_string(DupthreshPolicy policy);

class MitigationSender final : public SackSender {
 public:
  MitigationSender(net::Network& network, net::NodeId local,
                   net::NodeId remote, FlowId flow, DupthreshPolicy policy,
                   TcpConfig config = {});

  const char* algorithm() const override { return to_string(policy_); }
  DupthreshPolicy policy() const { return policy_; }
  double ewma_extent() const { return ewma_; }

  void state(util::StateIO& io) override {
    SackSender::state(io);
    io.pod(ewma_);
  }

 protected:
  void on_spurious_retransmit(SeqNo seq, int reorder_extent) override;

 private:
  DupthreshPolicy policy_;
  double ewma_;
  static constexpr double kEwmaGain = 0.25;
};

}  // namespace tcppr::tcp
