// TCP receiver (sink): cumulative ACKs, SACK (RFC 2018) and DSACK
// (RFC 2883) generation, optional delayed ACKs, timestamp echo.
//
// TCP-PR needs nothing beyond cumulative ACKs — one of its selling points —
// but the baseline senders and the [Blanton-Allman] mitigations consume the
// SACK/DSACK options, so one receiver serves every variant.
#pragma once

#include <functional>
#include <list>
#include <set>

#include "net/network.hpp"
#include "net/node.hpp"
#include "obs/probe.hpp"
#include "sim/scheduler.hpp"
#include "tcp/types.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace tcppr::tcp {

struct ReceiverConfig {
  bool generate_sack = true;
  bool generate_dsack = true;
  bool echo_timestamps = true;
  bool delayed_ack = false;  // ACK every 2nd segment or after 100 ms
  sim::Duration delack_timeout = sim::Duration::millis(100);
  std::uint32_t ack_bytes = 40;
  std::uint32_t segment_bytes = 1000;  // for goodput accounting
  int max_sack_blocks = 3;
};

class Receiver final : public net::Agent {
 public:
  Receiver(net::Network& network, net::NodeId local, net::NodeId remote,
           FlowId flow, ReceiverConfig config = {});
  ~Receiver() override;

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  void deliver(net::Packet&& pkt) override;
  // Batched delivery: processes the run per-packet (identical state
  // evolution), but stages the ACKs it provokes into one train handed to
  // the node as a single originate_burst — one scheduler op instead of
  // one per ACK. Falls back to the per-packet path under delayed ACKs,
  // whose timer arms would interleave with the staged originations.
  void deliver_batch(net::PacketBatch& batch, std::size_t begin,
                     std::size_t end) override;

  const ReceiverStats& stats() const { return stats_; }
  FlowId flow() const { return flow_; }
  net::NodeId local_node() const { return local_; }
  SeqNo rcv_next() const { return rcv_next_; }
  // Starts the cumulative-ACK point mid-stream. The workload layer uses
  // this when it re-creates a receiver for a flow whose previous receiver
  // was idle-reaped while the sender was still retrying: resuming at the
  // reaped incarnation's high-water mark lets the retransmission be ACKed
  // forward instead of stale-ACKed at zero forever. Only valid on a fresh
  // receiver, before any segment has been delivered.
  void resume_at(SeqNo next) {
    TCPPR_DCHECK(rcv_next_ == 0 && above_.empty());
    rcv_next_ = next;
  }

  // Re-points the receiver (and its delayed-ACK timer) at the scheduler
  // shard owning its node. Parallel-mode adoption only; call before the
  // simulation runs.
  void rebind_scheduler(sim::Scheduler& shard) {
    sched_override_ = &shard;
    delack_timer_.rebind(shard);
    delack_timer_.set_stamp_entity(static_cast<std::uint32_t>(local_));
  }
  // Mid-run shard migration: the delayed-ACK timer switches with its stale
  // id dropped (the migration gate guarantees it was not pending).
  void migrate_to_shard(sim::Scheduler& shard) {
    sched_override_ = &shard;
    delack_timer_.rebind_for_migration(shard);
  }
  // Count of segments buffered above the in-order point.
  std::size_t ooo_buffered() const { return above_.size(); }

  // Checkpoint/rollback visitor: the receiver's trajectory state,
  // including the delayed-ACK machinery (its pending cause is a full
  // packet) and the validation hash. The ACK train is empty between
  // events.
  void state(util::StateIO& io) {
    io.pod(rcv_next_);
    io.pod(delivered_hash_);
    io.pod_sequence(above_);
    io.pod_sequence(sack_blocks_);
    io.obj(delack_timer_);
    io.pod(unacked_segments_);
    io.obj(pending_cause_);
    io.pod(has_pending_cause_);
    io.pod(stats_);
  }
  // Current SACK blocks, recency-ordered (validation layer inspects their
  // structure: disjoint, above the cumulative ACK point).
  const std::list<net::SackBlock>& sack_blocks() const { return sack_blocks_; }

  // End-to-end payload checksum (src/validate): from now on, fold the
  // deterministic payload word of every segment entering the in-order
  // stream into an FNV-1a running hash. One predictable branch per
  // delivered segment when off (the src/obs discipline).
  void enable_delivery_validation() { delivery_hash_enabled_ = true; }
  bool delivery_validation_enabled() const { return delivery_hash_enabled_; }
  std::uint64_t delivered_hash() const { return delivered_hash_; }
  // Test-only mutation knob: perturb the running hash so the checker's
  // payload-checksum invariant trips (mutation self-test).
  void corrupt_delivered_hash_for_test() { delivered_hash_ ^= 1; }

  // Invoked when a kTcpClose packet for this flow arrives (the workload
  // layer's FIN analogue: the sender announces the transfer is complete and
  // departed). The callback runs inside packet delivery, so it must not
  // destroy the receiver synchronously — schedule a zero-delay teardown.
  void set_close_callback(std::function<void()> cb) {
    close_cb_ = std::move(cb);
  }

  // Test hook: observe every ACK as it is emitted.
  void set_ack_tap(std::function<void(const net::Packet&)> tap) {
    ack_tap_ = std::move(tap);
  }
  // Observe every arriving data segment (reorder metrics, traces).
  void set_data_tap(std::function<void(const net::Packet&)> tap) {
    data_tap_ = std::move(tap);
  }

  // Attaches the flow-state observability layer (src/obs): out-of-order
  // arrivals and receive-point/buffer gauges sample into `registry`.
  void set_metric_registry(obs::MetricRegistry& registry);

 private:
  void on_data(const net::Packet& pkt);
  void send_ack(const net::Packet& cause, bool force_dup_info);
  void emit_ack(net::Packet&& ack);
  void record_sack_block(SeqNo begin, SeqNo end);
  sim::Scheduler& sched() const {
    return sched_override_ != nullptr ? *sched_override_
                                      : network_.scheduler();
  }

  net::Network& network_;
  sim::Scheduler* sched_override_ = nullptr;  // parallel mode: LP shard
  net::NodeId local_;
  net::NodeId remote_;
  FlowId flow_;
  ReceiverConfig config_;

  SeqNo rcv_next_ = 0;
  bool delivery_hash_enabled_ = false;
  std::uint64_t delivered_hash_ = util::kFnvOffsetBasis;
  std::set<SeqNo> above_;  // received segments > rcv_next_
  // Recency-ordered SACK blocks (most recently updated first, RFC 2018).
  std::list<net::SackBlock> sack_blocks_;

  // Delayed-ACK state.
  sim::Timer delack_timer_;
  int unacked_segments_ = 0;
  net::Packet pending_cause_;
  bool has_pending_cause_ = false;

  // ACK-train staging (deliver_batch): emitted ACKs park here until the
  // whole run is processed, then leave as one burst.
  net::PacketBatch train_;
  bool train_active_ = false;

  ReceiverStats stats_;
  // Disabled until set_metric_registry; emissions cost one predictable
  // branch when observability is off (same discipline as SenderBase).
  obs::FlowProbe probe_;
  std::function<void()> close_cb_;
  std::function<void(const net::Packet&)> ack_tap_;
  std::function<void(const net::Packet&)> data_tap_;
};

}  // namespace tcppr::tcp
