// TCP-DOOR (Wang & Zhang, MOBIHOC 2002) — reference [20] of the paper.
//
// Detects out-of-order events through per-transmission sequence numbers
// (our tx_serial option, echoed by the receiver) and responds by
//   (1) temporarily disabling the congestion response for an interval T1
//       after an out-of-order observation, and
//   (2) "instant recovery": if a congestion response happened within T2
//       before the out-of-order event, the pre-response state is restored.
// Built on NewReno, as in the original (a MANET-oriented Reno derivative).
//
// Related-work extension: TCP-DOOR is discussed in Section 2 but not part
// of Figure 6; it completes the comparison suite.
#pragma once

#include "tcp/reno.hpp"

namespace tcppr::tcp {

class DoorSender final : public NewRenoSender {
 public:
  struct DoorParams {
    sim::Duration t1 = sim::Duration::millis(100);  // response-off window
    sim::Duration t2 = sim::Duration::millis(100);  // instant-recovery window
  };

  DoorSender(net::Network& network, net::NodeId local, net::NodeId remote,
             FlowId flow, TcpConfig config, DoorParams params);
  DoorSender(net::Network& network, net::NodeId local, net::NodeId remote,
             FlowId flow, TcpConfig config = {})
      : DoorSender(network, local, remote, flow, config, DoorParams{}) {}

  const char* algorithm() const override { return "tcp-door"; }
  std::uint64_t ooo_events() const { return ooo_events_; }

  void state(util::StateIO& io) override {
    NewRenoSender::state(io);
    io.pod(highest_echo_serial_);
    io.pod(last_ooo_at_);
    io.pod(last_reduction_at_);
    io.pod(pre_reduction_cwnd_);
    io.pod(pre_reduction_ssthresh_);
    io.pod(ooo_events_);
  }

 protected:
  void on_ack_packet(const net::Packet& ack) override;
  void handle_dupack(const net::Packet& ack) override;
  void enter_fast_recovery() override;

 private:
  bool response_disabled() const;

  DoorParams params_;
  std::uint32_t highest_echo_serial_ = 0;
  sim::TimePoint last_ooo_at_ = sim::TimePoint::origin() -
                                sim::Duration::seconds(1e6);
  sim::TimePoint last_reduction_at_ = sim::TimePoint::origin() -
                                      sim::Duration::seconds(1e6);
  double pre_reduction_cwnd_ = 0;
  double pre_reduction_ssthresh_ = 0;
  std::uint64_t ooo_events_ = 0;
};

}  // namespace tcppr::tcp
