#include "tcp/eifel.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tcppr::tcp {

EifelSender::EifelSender(net::Network& network, net::NodeId local,
                         net::NodeId remote, FlowId flow, TcpConfig config)
    : SackSender(network, local, remote, flow, config) {}

void EifelSender::on_new_ack_hook(const net::Packet& ack) {
  // advance_una() ran just before this hook, so recent_rtx_ still holds
  // records for the newly covered region (they are pruned with slack).
  // If the ACK covers a retransmitted segment but echoes a timestamp taken
  // before that retransmission, the original transmission produced it.
  auto it = recent_rtx_.lower_bound(0);
  bool spurious = false;
  int extent = 0;
  SeqNo seq = -1;
  for (; it != recent_rtx_.end() && it->first < ack.tcp.ack; ++it) {
    const double rtx_time_s = it->second.rtx_time.as_seconds();
    if (ack.tcp.ts_echo > 0 && ack.tcp.ts_echo < rtx_time_s) {
      spurious = true;
      seq = it->first;
      extent = std::max(extent, it->second.episode_dupacks);
    }
  }
  if (!spurious) return;
  recent_rtx_.erase(recent_rtx_.begin(),
                    recent_rtx_.lower_bound(ack.tcp.ack));
  ++stats_.spurious_retransmits_detected;
  TCPPR_LOG_DEBUG("eifel", "flow %d spurious rtx of %lld (ts echo)", flow(),
                  static_cast<long long>(seq));
  // Eifel restores the full pre-retransmission state.
  undo_last_reduction(/*full_restore=*/true);
  (void)extent;
}

}  // namespace tcppr::tcp
