// TCP-SACK sender: scoreboard + pipe loss recovery in the style of ns-2's
// sack1 / RFC 3517. This is the paper's "standard TCP" comparator and the
// base class for the reordering mitigations of Blanton & Allman [3]
// (tcp/mitigation.hpp), time-delayed fast recovery (tcp/tdfr.hpp), and
// Eifel (tcp/eifel.hpp).
//
// Loss is inferred two ways, both gated on dupthresh so the [3] mitigations
// work by raising it: (a) dupacks >= dupthresh, (b) a segment with at least
// dupthresh SACKed segments above it (FACK-style gap rule).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "tcp/rto.hpp"
#include "tcp/sender_base.hpp"

namespace tcppr::tcp {

class SackSender : public SenderBase {
 public:
  SackSender(net::Network& network, net::NodeId local, net::NodeId remote,
             FlowId flow, TcpConfig config = {});

  double cwnd() const override { return cwnd_; }
  const char* algorithm() const override { return "sack"; }
  SenderInvariantView invariant_view() const override;

  double ssthresh() const { return ssthresh_; }
  bool in_fast_recovery() const { return in_recovery_; }
  SeqNo snd_una() const { return snd_una_; }
  SeqNo snd_nxt() const { return snd_nxt_; }
  int effective_dupthresh() const;
  double raw_dupthresh() const { return dupthresh_; }
  double pipe() const;
  const RtoEstimator& rto_estimator() const { return rto_; }

  void rebind_scheduler(sim::Scheduler& shard) override {
    SenderBase::rebind_scheduler(shard);
    rto_timer_.rebind(shard);
    rto_timer_.set_stamp_entity(static_cast<std::uint32_t>(local_node()));
  }
  void migrate_to_shard(sim::Scheduler& shard) override {
    SenderBase::migrate_to_shard(shard);
    rto_timer_.rebind_for_migration(shard);
  }

  void state(util::StateIO& io) override {
    SenderBase::state(io);
    io.pod(cwnd_);
    io.pod(ssthresh_);
    io.pod(snd_una_);
    io.pod(snd_nxt_);
    io.pod(dupacks_);
    io.pod(dupthresh_);
    io.pod(episode_dupacks_);
    io.pod(last_episode_dupacks_);
    io.pod(in_recovery_);
    io.pod(recover_);
    io.pod(highest_sacked_);
    io.pod(peer_sends_sack_);
    io.pod_sequence(sacked_);
    io.pod_sequence(lost_);
    io.pod_sequence(rtx_in_flight_);
    io.pod(saved_cwnd_);
    io.pod(saved_ssthresh_);
    io.pod_map(tx_info_);
    io.pod_map(recent_rtx_);
    io.pod(next_tx_serial_);
    io.pod(rto_);
    io.obj(rto_timer_);
  }

 protected:
  void on_start() override;
  void on_ack_packet(const net::Packet& ack) override;

  // ---- hooks for subclasses -------------------------------------------
  // Recovery entry condition (TD-FR replaces dupack counting by a timer).
  virtual bool loss_detected() const;
  // Whether the SACK gap rule may mark losses before recovery is entered.
  virtual bool mark_losses_outside_recovery() const { return true; }
  // Extra per-dupack processing (TD-FR arms its timer here).
  virtual void on_dupack_hook(const net::Packet& ack) { (void)ack; }
  // Extra processing when the cumulative ACK advances.
  virtual void on_new_ack_hook(const net::Packet& ack) { (void)ack; }
  // Called when a retransmission is discovered to have been spurious.
  // reorder_extent = duplicate ACKs observed in the episode (the measure
  // the [3] dupthresh adjustments feed on).
  virtual void on_spurious_retransmit(SeqNo seq, int reorder_extent);

  // ---- shared machinery ------------------------------------------------
  void update_scoreboard(const net::Packet& ack);
  void mark_lost_by_sack();
  void enter_recovery();
  void undo_last_reduction(bool full_restore);
  void send_more();
  void retransmit(SeqNo seq);
  void on_timeout();
  void restart_rto_timer();
  void advance_una(SeqNo ack);

  bool process_dsack_ = false;  // mitigations switch this on

  double cwnd_ = 1;
  double ssthresh_;
  SeqNo snd_una_ = 0;
  SeqNo snd_nxt_ = 0;
  int dupacks_ = 0;
  double dupthresh_;       // adaptive in mitigation subclasses
  int episode_dupacks_ = 0;       // dupacks seen in the current loss episode
  int last_episode_dupacks_ = 0;  // final count of the previous episode
  bool in_recovery_ = false;
  SeqNo recover_ = 0;
  SeqNo highest_sacked_ = -1;

  bool peer_sends_sack_ = false;    // any SACK block seen from this peer
  std::set<SeqNo> sacked_;          // in (snd_una_, snd_nxt_)
  std::set<SeqNo> lost_;            // marked lost, not yet cum-acked
  std::set<SeqNo> rtx_in_flight_;   // lost segments we have retransmitted

  // Saved congestion state at the most recent window reduction (undo).
  double saved_cwnd_ = 0;
  double saved_ssthresh_ = 0;

  struct TxInfo {
    sim::TimePoint last_tx;
    sim::TimePoint first_rtx;  // valid when tx_count > 1
    int tx_count = 0;
  };
  std::map<SeqNo, TxInfo> tx_info_;
  // Retransmitted segments below snd_una_, kept for DSACK/Eifel spurious
  // detection; pruned as the window advances.
  struct RtxRecord {
    sim::TimePoint rtx_time;
    int episode_dupacks;
  };
  std::map<SeqNo, RtxRecord> recent_rtx_;

  std::uint32_t next_tx_serial_ = 1;
  RtoEstimator rto_;
  sim::DeadlineTimer rto_timer_;
};

}  // namespace tcppr::tcp
