#include "tcp/tahoe.hpp"

#include <algorithm>

namespace tcppr::tcp {

void TahoeSender::enter_fast_recovery() {
  // One reaction per window (ns-2 Tahoe's recover_ guard): dupack runs for
  // holes already being repaired must not re-trigger the cut.
  if (snd_una_ < recover_) {
    dupacks_ = 0;
    return;
  }
  recover_ = snd_nxt_;
  // Retransmit the hole, then slow-start from one segment: no inflation,
  // no recovery state.
  ++stats_.fast_retransmits;
  ++stats_.cwnd_halvings;
  ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0);
  cwnd_ = 1;
  inflation_ = 0;
  dupacks_ = 0;
  in_recovery_ = false;
  retransmit(snd_una_);
  restart_rto_timer();
  notify_cwnd(cwnd_);
}

}  // namespace tcppr::tcp
