// Time-delayed fast recovery (TD-FR), first proposed by Paxson (SIGCOMM 97)
// and analyzed in [3]: fast retransmit is deferred until duplicate ACKs
// have persisted for max(RTT/2, DT), where DT measures how long reordering
// episodes take.
//
// Built on NewReno with limited transmit (RFC 3042), matching the paper's
// description. DT interpretation: the original defines DT as the spacing
// between the first and third dupack — meaningful for modem-era traces
// where dupacks trickle, but degenerate (~one serialization time) under
// per-packet multi-path reordering. We therefore let DT track an EWMA of
// observed episode resolution times (first dupack -> cancelling new ACK),
// with the literal t3-t1 as a lower bound; `adaptive_wait = false`
// restores the literal rule. The adaptive wait is what gives TD-FR its
// paper-reported profile: tolerable at 10 ms link delays, collapsing at
// 60 ms, where each genuine loss costs a long stall followed by a burst.
#pragma once

#include "tcp/reno.hpp"

namespace tcppr::tcp {

class TdFrSender final : public NewRenoSender {
 public:
  TdFrSender(net::Network& network, net::NodeId local, net::NodeId remote,
             FlowId flow, TcpConfig config = {});

  const char* algorithm() const override { return "td-fr"; }
  bool wait_timer_armed() const { return fr_timer_.armed(); }
  sim::Duration current_dt() const { return dt_; }
  sim::Duration learned_episode_time() const { return dt_ewma_; }

  // Literal Paxson rule (DT = t3 - t1 only); for ablation.
  void set_adaptive_wait(bool adaptive) { adaptive_wait_ = adaptive; }

  void rebind_scheduler(sim::Scheduler& shard) override {
    NewRenoSender::rebind_scheduler(shard);
    fr_timer_.rebind(shard);
    fr_timer_.set_stamp_entity(static_cast<std::uint32_t>(local_node()));
  }
  void migrate_to_shard(sim::Scheduler& shard) override {
    NewRenoSender::migrate_to_shard(shard);
    fr_timer_.rebind_for_migration(shard);
  }

  void state(util::StateIO& io) override {
    NewRenoSender::state(io);
    io.obj(fr_timer_);
    io.pod(first_dupack_at_);
    io.pod(dt_);
    io.pod(dt_ewma_);
    io.pod(episode_open_);
  }

 protected:
  void handle_dupack(const net::Packet& ack) override;
  void on_new_ack_hook() override;

 private:
  void arm_timer();
  void on_timer();
  sim::Duration wait_threshold() const;

  sim::DeadlineTimer fr_timer_;
  sim::TimePoint first_dupack_at_;
  sim::Duration dt_ = sim::Duration::zero();  // t(3rd dupack) - t(1st)
  sim::Duration dt_ewma_ = sim::Duration::zero();  // learned episode time
  bool episode_open_ = false;
  bool adaptive_wait_ = true;
  static constexpr double kEwmaGain = 0.25;
};

}  // namespace tcppr::tcp
