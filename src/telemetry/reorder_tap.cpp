#include "telemetry/reorder_tap.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace tcppr::telemetry {

namespace {

// Extent histograms on the exact side stay small: the checker compares
// scalar totals, not bucket shapes, so 16 buckets keep the per-flow ground
// truth cheap when the baseline is enabled.
constexpr std::size_t kExactHistBuckets = 16;

std::size_t round_up_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(n, 2));
}

// splitmix64 finalizer: cheap, well-mixed, and deterministic across
// platforms — the slot/count-min indices must not depend on std::hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Displacement bucket: 0 -> 0, [2^(b-1), 2^b) -> b, tail capped.
std::size_t hist_bucket(net::SeqNo displacement) {
  const auto width = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(displacement)));
  return std::min(width, ReorderTap::kHistBuckets - 1);
}

}  // namespace

ReorderTap::ReorderTap(const TapConfig& config)
    : slots_(round_up_pow2(config.flow_slots)),
      slot_mask_(slots_.size() - 1),
      max_tenure_(std::max<std::uint32_t>(config.max_tenure, 1)),
      cms_(kCmsRows * round_up_pow2(config.cms_width), 0),
      cms_mask_(round_up_pow2(config.cms_width) - 1),
      exact_enabled_(config.exact_baseline),
      exact_folded_(kExactHistBuckets) {}

std::size_t ReorderTap::slot_index(net::FlowId flow) const {
  return static_cast<std::size_t>(
             mix64(static_cast<std::uint64_t>(flow))) &
         slot_mask_;
}

void ReorderTap::observe(net::FlowId flow, net::SeqNo seq) {
  ++data_packets_;
  if (exact_enabled_) {
    exact_.try_emplace(flow, kExactHistBuckets).first->second.on_arrival(seq);
  }
  Slot& s = slots_[slot_index(flow)];
  if (s.flow != flow) {
    if (s.flow == net::kInvalidFlow) {
      s.flow = flow;
      s.tenure = 1;
    } else {
      // Misra-Gries style contention: the newcomer spends one colliding
      // packet eroding the resident's tenure; only a resident worn down to
      // zero is folded out and replaced. Deterministic, and the resident's
      // counters survive in the aggregate — never lost, never doubled.
      ++collisions_;
      if (--s.tenure != 0) return;  // newcomer rejected, packet untracked
      fold_slot(s, /*retired=*/false);
      s.flow = flow;
      s.tenure = 1;
    }
  } else if (s.tenure < max_tenure_) {
    ++s.tenure;
  }
  ++s.packets;
  if (seq > s.max_seen) {
    s.max_seen = seq;
    return;
  }
  const net::SeqNo displacement = s.max_seen - seq;
  ++s.reordered;
  s.displacement_sum += static_cast<std::uint64_t>(displacement);
  s.max_displacement = std::max(s.max_displacement, displacement);
  ++hist_[hist_bucket(displacement)];
  note_reorder(flow);
}

void ReorderTap::fold_slot(Slot& slot, bool retired) {
  folded_packets_ += slot.packets;
  folded_reordered_ += slot.reordered;
  folded_displacement_sum_ += slot.displacement_sum;
  folded_max_displacement_ =
      std::max(folded_max_displacement_, slot.max_displacement);
  if (retired) {
    ++retired_folds_;
  } else {
    ++evictions_;
  }
  slot = Slot{};
}

void ReorderTap::retire_flow(net::FlowId flow) {
  Slot& s = slots_[slot_index(flow)];
  if (s.flow == flow) fold_slot(s, /*retired=*/true);
  if (exact_enabled_) {
    const auto it = exact_.find(flow);
    if (it != exact_.end()) {
      it->second.merge_into(exact_folded_);
      ++exact_retired_folds_;
      exact_.erase(it);
    }
  }
}

void ReorderTap::note_reorder(net::FlowId flow) {
  for (std::size_t row = 0; row < kCmsRows; ++row) {
    std::uint32_t& c =
        cms_[row * (cms_mask_ + 1) +
             (static_cast<std::size_t>(
                  mix64(static_cast<std::uint64_t>(flow) ^ (row + 1))) &
              cms_mask_)];
    if (c != UINT32_MAX) ++c;
  }
  // Heavy-reorderer list: update in place, else displace the lightest
  // entry when this flow's estimate strictly exceeds it (strict keeps the
  // list deterministic under ties).
  const std::uint64_t est = cms_estimate(flow);
  std::size_t lightest = 0;
  for (std::size_t i = 0; i < kHeavyFlows; ++i) {
    if (heavy_[i].flow == flow) {
      heavy_[i].estimate = est;
      return;
    }
    if (heavy_[i].estimate < heavy_[lightest].estimate) lightest = i;
  }
  if (est > heavy_[lightest].estimate) heavy_[lightest] = {flow, est};
}

std::uint64_t ReorderTap::cms_estimate(net::FlowId flow) const {
  std::uint32_t est = UINT32_MAX;
  for (std::size_t row = 0; row < kCmsRows; ++row) {
    est = std::min(
        est, cms_[row * (cms_mask_ + 1) +
                  (static_cast<std::size_t>(
                       mix64(static_cast<std::uint64_t>(flow) ^ (row + 1))) &
                   cms_mask_)]);
  }
  return est;
}

std::vector<ReorderTap::HeavyFlow> ReorderTap::heavy_reorderers() const {
  std::vector<HeavyFlow> out;
  for (const HeavyFlow& h : heavy_) {
    if (h.flow != net::kInvalidFlow && h.estimate > 0) out.push_back(h);
  }
  std::sort(out.begin(), out.end(), [](const HeavyFlow& a, const HeavyFlow& b) {
    return a.estimate != b.estimate ? a.estimate > b.estimate
                                    : a.flow < b.flow;
  });
  return out;
}

ReorderTap::Totals ReorderTap::totals() const {
  Totals t;
  t.data_packets = data_packets_;
  t.other_packets = other_packets_;
  t.reordered = folded_reordered_;
  t.displacement_sum = folded_displacement_sum_;
  t.max_displacement = folded_max_displacement_;
  t.collisions = collisions_;
  t.evictions = evictions_;
  t.retired_folds = retired_folds_;
  t.folded_flows = evictions_ + retired_folds_;
  for (const Slot& s : slots_) {
    if (s.flow == net::kInvalidFlow) continue;
    t.reordered += s.reordered;
    t.displacement_sum += s.displacement_sum;
    t.max_displacement = std::max(t.max_displacement, s.max_displacement);
  }
  return t;
}

ReorderTap::ExactTotals ReorderTap::exact_totals() const {
  TCPPR_CHECK(exact_enabled_);
  ExactTotals t;
  t.total = exact_folded_.total();
  t.reordered = exact_folded_.reordered();
  t.extent_sum = exact_folded_.extent_sum();
  t.max_extent = exact_folded_.max_extent();
  for (const auto& [flow, mon] : exact_) {
    (void)flow;
    t.total += mon.total();
    t.reordered += mon.reordered();
    t.extent_sum += mon.extent_sum();
    t.max_extent = std::max(t.max_extent, mon.max_extent());
  }
  return t;
}

std::size_t ReorderTap::sketch_bytes() const {
  return slots_.capacity() * sizeof(Slot) +
         cms_.capacity() * sizeof(std::uint32_t) + sizeof(hist_) +
         sizeof(heavy_);
}

}  // namespace tcppr::telemetry
