#include "telemetry/telemetry.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace tcppr::telemetry {

Telemetry::Telemetry(net::Network& network, TelemetryConfig config)
    : network_(network) {
  for (const auto& link : network_.links()) {
    taps_.emplace_back(config.tap);
    links_.push_back(link.get());
    link->set_telemetry_tap(&taps_.back());
  }
}

Telemetry::~Telemetry() {
  for (net::Link* link : links_) link->set_telemetry_tap(nullptr);
}

void Telemetry::retire_flow(net::FlowId flow) {
  ++retire_calls_;
  for (ReorderTap& tap : taps_) tap.retire_flow(flow);
}

ReorderTap::Totals Telemetry::aggregate() const {
  ReorderTap::Totals agg;
  for (const ReorderTap& tap : taps_) {
    const ReorderTap::Totals t = tap.totals();
    agg.data_packets += t.data_packets;
    agg.other_packets += t.other_packets;
    agg.reordered += t.reordered;
    agg.displacement_sum += t.displacement_sum;
    agg.max_displacement = std::max(agg.max_displacement, t.max_displacement);
    agg.collisions += t.collisions;
    agg.evictions += t.evictions;
    agg.retired_folds += t.retired_folds;
    agg.folded_flows += t.folded_flows;
  }
  return agg;
}

std::size_t Telemetry::sketch_bytes_per_tap() const {
  return taps_.empty() ? 0 : taps_.front().sketch_bytes();
}

void Telemetry::publish(obs::MetricRegistry& registry, sim::TimePoint t) const {
  if (!registry.active()) return;
  const ReorderTap::Totals agg = aggregate();
  const auto gauge = [&](const char* name, double value) {
    registry.set(t, registry.intern(name, obs::MetricKind::kGauge),
                 net::kInvalidFlow, value);
  };
  gauge("telemetry.data_packets", static_cast<double>(agg.data_packets));
  gauge("telemetry.reordered", static_cast<double>(agg.reordered));
  gauge("telemetry.reordered_fraction",
        agg.data_packets > 0 ? static_cast<double>(agg.reordered) /
                                   static_cast<double>(agg.data_packets)
                             : 0.0);
  gauge("telemetry.displacement_sum",
        static_cast<double>(agg.displacement_sum));
  gauge("telemetry.max_displacement",
        static_cast<double>(agg.max_displacement));
  gauge("telemetry.evictions", static_cast<double>(agg.evictions));
  gauge("telemetry.retired_folds", static_cast<double>(agg.retired_folds));
}

void Telemetry::print_summary(std::FILE* out) const {
  const ReorderTap::Totals agg = aggregate();
  const double frac =
      agg.data_packets > 0 ? static_cast<double>(agg.reordered) /
                                 static_cast<double>(agg.data_packets)
                           : 0.0;
  const double mean_disp =
      agg.reordered > 0 ? static_cast<double>(agg.displacement_sum) /
                              static_cast<double>(agg.reordered)
                        : 0.0;
  std::fprintf(out,
               "telemetry: %zu link taps (%zu sketch bytes each), "
               "%llu data pkts, %.2f%% reordered, displacement mean %.2f "
               "max %lld, folds %llu (%llu evicted, %llu retired)\n",
               taps_.size(), sketch_bytes_per_tap(),
               static_cast<unsigned long long>(agg.data_packets),
               100.0 * frac, mean_disp,
               static_cast<long long>(agg.max_displacement),
               static_cast<unsigned long long>(agg.folded_flows),
               static_cast<unsigned long long>(agg.evictions),
               static_cast<unsigned long long>(agg.retired_folds));
  // Busiest reordering links, worst first; quiet links stay out of the
  // report.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    if (taps_[i].totals().reordered > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return taps_[a].totals().reordered > taps_[b].totals().reordered;
  });
  if (order.size() > 8) order.resize(8);
  for (const std::size_t i : order) {
    const ReorderTap::Totals t = taps_[i].totals();
    std::fprintf(out,
                 "  link %d->%d: %llu/%llu reordered, displacement mean "
                 "%.2f max %lld",
                 links_[i]->from(), links_[i]->to(),
                 static_cast<unsigned long long>(t.reordered),
                 static_cast<unsigned long long>(t.data_packets),
                 t.reordered > 0 ? static_cast<double>(t.displacement_sum) /
                                       static_cast<double>(t.reordered)
                                 : 0.0,
                 static_cast<long long>(t.max_displacement));
    const auto heavy = taps_[i].heavy_reorderers();
    if (!heavy.empty()) {
      std::fprintf(out, ", heavy flows:");
      for (const auto& h : heavy) {
        std::fprintf(out, " %d(~%llu)", h.flow,
                     static_cast<unsigned long long>(h.estimate));
      }
    }
    std::fprintf(out, "\n");
  }
}

void Telemetry::corrupt_sketch_for_test() {
  TCPPR_CHECK(!taps_.empty());
  taps_.front().corrupt_sketch_for_test();
}

}  // namespace tcppr::telemetry
