// ReorderTap: constant-memory streaming reordering detector for one link.
//
// A tap observes the link's delivery stream — every packet the link hands
// to its destination node, in delivery order — and maintains data-plane
// style reordering sketches in the spirit of Zheng/Yu/Rexford ("Detecting
// TCP Packet Reordering in the Data Plane"): a fixed flow-slot table with
// deterministic tenure-based eviction, a log2 displacement-density
// histogram, and a count-min sketch over detected reorder events that
// feeds a small heavy-reorderer list. Memory is fixed at construction
// (sketch_bytes()) no matter how many flows ever cross the link.
//
// Detection predicate per tracked flow (matches stats::ReorderMonitor so
// the two are differentially testable): an arrival is reordered iff its
// sequence number is <= the highest sequence number already seen from that
// flow on this link, and its displacement is that maximum minus the
// arrival's sequence number (RFC 4737 reorder extent against the running
// maximum; 0 for a duplicate of the maximum itself).
//
// Declared error bounds (what validate::InvariantChecker asserts against
// the exact baseline, and what the differential tests rely on):
//   - data_packets is exact: every data packet is counted before the slot
//     table can reject it.
//   - Every slot-detected reorder event corresponds to an exact-monitor
//     reorder event of >= displacement (a slot's running max is a lower
//     bound on the flow's true running max), so reordered, displacement_sum
//     and max_displacement are all <= the exact values — the sketch never
//     over-reports.
//   - With zero slot collisions the slot table IS exact: every flow was
//     tracked from its first packet, so reordered / displacement_sum /
//     max_displacement equal the exact baseline's values.
//   - The count-min estimate for a flow is >= the slot table's detected
//     count for that flow and <= the tap-wide detected total (counters
//     only ever over-estimate a single flow, never under-estimate).
//
// Folding discipline: a flow leaves the slot table either by eviction
// (tenure exhausted by colliding flows) or by retirement (the workload
// layer reports the flow departed). Both fold the slot's counters into
// `folded()` exactly once — totals() is invariant under folding and
// monotone over time, which is the checker's merge-on-departure surface.
//
// Threading: a tap is written only from the link's delivery call sites,
// which all execute on the single shard thread that owns the link's
// deliveries (see net::Link); reads for checking/summary happen at
// barriers or after the run.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.hpp"
#include "stats/reorder.hpp"

namespace tcppr::telemetry {

struct TapConfig {
  // Flow-slot table size (rounded up to a power of two). Each slot tracks
  // one flow exactly; colliding flows contend for the slot Misra-Gries
  // style (see ReorderTap::observe).
  std::size_t flow_slots = 64;
  // Tenure cap: a resident flow's eviction resistance saturates here, so a
  // departed-but-unretired flow is displaced after at most max_tenure
  // colliding packets.
  std::uint32_t max_tenure = 16;
  // Count-min sketch geometry: kCmsRows rows of cms_width counters
  // (rounded up to a power of two).
  std::size_t cms_width = 512;
  // Exact per-flow ground truth (stats::ReorderMonitor per flow) for
  // differential testing. O(flows) memory — enable only at small N; the
  // sketches above stay O(1) either way.
  bool exact_baseline = false;
};

class ReorderTap {
 public:
  static constexpr std::size_t kCmsRows = 2;
  static constexpr std::size_t kHistBuckets = 16;
  static constexpr std::size_t kHeavyFlows = 4;

  struct Slot {
    net::FlowId flow = net::kInvalidFlow;
    net::SeqNo max_seen = -1;
    net::SeqNo max_displacement = 0;
    std::uint64_t packets = 0;
    std::uint64_t reordered = 0;
    std::uint64_t displacement_sum = 0;
    std::uint32_t tenure = 0;
  };

  // Resident slots + folded flows combined; every field is monotone
  // non-decreasing over the tap's lifetime (folding moves counts, it never
  // loses them).
  struct Totals {
    std::uint64_t data_packets = 0;   // exact, always
    std::uint64_t other_packets = 0;  // ACKs / closes / CBR: not tracked
    std::uint64_t reordered = 0;
    std::uint64_t displacement_sum = 0;
    net::SeqNo max_displacement = 0;
    std::uint64_t collisions = 0;  // packet hit a slot owned by another flow
    std::uint64_t evictions = 0;   // folds forced by tenure exhaustion
    std::uint64_t retired_folds = 0;  // folds requested via retire_flow
    std::uint64_t folded_flows = 0;   // evictions + retired_folds
  };

  struct ExactTotals {  // live monitors + retired aggregate (exact side)
    std::uint64_t total = 0;
    std::uint64_t reordered = 0;
    double extent_sum = 0;
    net::SeqNo max_extent = 0;
  };

  struct HeavyFlow {
    net::FlowId flow = net::kInvalidFlow;
    std::uint64_t estimate = 0;  // count-min estimate of reorder events
  };

  explicit ReorderTap(const TapConfig& config = TapConfig());

  ReorderTap(const ReorderTap&) = delete;
  ReorderTap& operator=(const ReorderTap&) = delete;

  // Hot-path entry, called by net::Link once per delivered packet when a
  // tap is attached. Data packets feed the sketches; everything else is
  // one counter bump.
  void on_deliver(const net::Packet& pkt) {
    if (pkt.type == net::PacketType::kTcpData) {
      observe(pkt.tcp.flow, pkt.tcp.seq);
    } else {
      ++other_packets_;
    }
  }
  // Sketch core, exposed directly so tests can drive hand-built sequences.
  void observe(net::FlowId flow, net::SeqNo seq);

  // Departure hook: folds the flow's resident slot (if any) into the
  // aggregate and retires its exact monitor (if any) the same way.
  // Idempotent — a second call for the same departed flow is a no-op, so
  // sender- and receiver-side teardown can both report the departure and
  // the flow still folds exactly once.
  void retire_flow(net::FlowId flow);

  Totals totals() const;
  const std::vector<Slot>& slots() const { return slots_; }
  // Displacement-density histogram over detected reorder events: bucket 0
  // holds zero displacements (duplicates of the running max), bucket b>=1
  // holds displacements in [2^(b-1), 2^b); the last bucket absorbs the
  // tail.
  const std::array<std::uint64_t, kHistBuckets>& displacement_histogram()
      const {
    return hist_;
  }
  // Count-min estimate of this flow's detected reorder events (>= the true
  // detected count, <= the tap-wide total).
  std::uint64_t cms_estimate(net::FlowId flow) const;
  // Top detected reorderers by count-min estimate, heaviest first.
  std::vector<HeavyFlow> heavy_reorderers() const;

  bool exact_baseline_enabled() const { return exact_enabled_; }
  ExactTotals exact_totals() const;
  const std::map<net::FlowId, stats::ReorderMonitor>& exact_flows() const {
    return exact_;
  }
  const stats::ReorderMonitor& exact_folded() const { return exact_folded_; }
  std::uint64_t exact_retired_folds() const { return exact_retired_folds_; }

  // Bytes held by the constant-memory sketches (slot table + count-min +
  // histogram + heavy list). Fixed at construction; the exact baseline is
  // deliberately excluded — it is the O(flows) ground truth, not the
  // detector.
  std::size_t sketch_bytes() const;

  // Mutation knob for the checker's self-test: inflates the folded
  // reorder count so the sketch claims more reordering than the exact
  // baseline ever saw — a corruption the bound checks must catch.
  void corrupt_sketch_for_test() {
    folded_reordered_ += 1000;
    folded_displacement_sum_ += 1000;
  }

 private:
  std::size_t slot_index(net::FlowId flow) const;
  void fold_slot(Slot& slot, bool retired);
  void note_reorder(net::FlowId flow);

  std::vector<Slot> slots_;
  std::size_t slot_mask_;
  std::uint32_t max_tenure_;

  std::uint64_t data_packets_ = 0;
  std::uint64_t other_packets_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t retired_folds_ = 0;

  // Folded (evicted + retired) flows' counters.
  std::uint64_t folded_packets_ = 0;
  std::uint64_t folded_reordered_ = 0;
  std::uint64_t folded_displacement_sum_ = 0;
  net::SeqNo folded_max_displacement_ = 0;

  std::array<std::uint64_t, kHistBuckets> hist_{};

  std::vector<std::uint32_t> cms_;  // kCmsRows x cms_width_, row-major
  std::size_t cms_mask_;
  std::array<HeavyFlow, kHeavyFlows> heavy_{};

  bool exact_enabled_;
  std::map<net::FlowId, stats::ReorderMonitor> exact_;
  stats::ReorderMonitor exact_folded_;
  std::uint64_t exact_retired_folds_ = 0;
};

}  // namespace tcppr::telemetry
