// Telemetry: attaches a ReorderTap to every link of a network and owns
// the taps for the run.
//
// Construction walks Network::links() and installs one tap per link
// through net::Link::set_telemetry_tap — the same one-branch-when-off
// discipline as trace::Tracer, so an untapped run pays a single
// well-predicted null test per delivery and a tapped run pays the sketch
// update. Taps observe the delivery stream only; they never touch packets
// or scheduling, so delivery hashes are byte-identical with telemetry on
// or off, on every backend, batched or not, at any LP count.
//
// The hub is also the departure fan-out: the workload layer reports each
// torn-down flow once per side through retire_flow, which folds the flow
// out of every tap's slot table (and exact baseline) exactly once.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/reorder_tap.hpp"

namespace tcppr::net {
class Link;
class Network;
}  // namespace tcppr::net

namespace tcppr::obs {
class MetricRegistry;
}

namespace tcppr::telemetry {

struct TelemetryConfig {
  TapConfig tap;
};

class Telemetry {
 public:
  // Attach after the topology is built (links constructed); links added
  // later are not tapped. Destroy before the network — the destructor
  // detaches every tap.
  explicit Telemetry(net::Network& network,
                     TelemetryConfig config = TelemetryConfig());
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  std::size_t tap_count() const { return taps_.size(); }
  ReorderTap& tap(std::size_t i) { return taps_[i]; }
  const ReorderTap& tap(std::size_t i) const { return taps_[i]; }
  const net::Link& link(std::size_t i) const { return *links_[i]; }

  // Departure fan-out (see ReorderTap::retire_flow). Sequential runs
  // only: taps belong to shard threads in parallel mode, where departed
  // flows are instead displaced by tenure pressure.
  void retire_flow(net::FlowId flow);
  std::uint64_t retire_calls() const { return retire_calls_; }

  // Sum of every tap's totals (max_displacement merges as a maximum).
  ReorderTap::Totals aggregate() const;
  // Fixed per-tap sketch footprint (identical across taps).
  std::size_t sketch_bytes_per_tap() const;

  // Publishes the aggregate as obs gauges (telemetry.* metric names).
  void publish(obs::MetricRegistry& registry, sim::TimePoint t) const;
  // Human-readable summary: aggregate line, busiest links, heavy
  // reorderers (tcppr_sim --telemetry).
  void print_summary(std::FILE* out) const;

  // Self-test corruption: inflates one tap's folded counters (see
  // ReorderTap::corrupt_sketch_for_test).
  void corrupt_sketch_for_test();

 private:
  net::Network& network_;
  std::deque<ReorderTap> taps_;  // deque: stable addresses for the links
  std::vector<net::Link*> links_;
  std::uint64_t retire_calls_ = 0;
};

}  // namespace tcppr::telemetry
