#include "core/tcp_pr.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace tcppr::core {

TcpPrSender::TcpPrSender(net::Network& network, net::NodeId local,
                         net::NodeId remote, FlowId flow,
                         tcp::TcpConfig config, TcpPrConfig pr_config)
    : SenderBase(network, local, remote, flow, config),
      pr_(pr_config),
      cwnd_(config.initial_cwnd),
      ssthr_(config.max_cwnd),
      drop_timer_(network.scheduler(), [this] { on_drop_timer(); }),
      unblock_timer_(network.scheduler(), [this] { flush_cwnd(); }) {
  TCPPR_CHECK(pr_.alpha > 0 && pr_.alpha < 1);
  TCPPR_CHECK(pr_.beta >= 1);
  TCPPR_CHECK(pr_.newton_iterations >= 1);
}

double TcpPrSender::newton_alpha_root(double alpha, double cwnd,
                                      int iterations) {
  // Footnote 5: solve x^cwnd = alpha starting from x = 1.
  if (cwnd <= 1.0) return alpha;
  double x = 1.0;
  for (int i = 0; i < iterations; ++i) {
    x = (cwnd - 1.0) / cwnd * x +
        alpha / (cwnd * std::pow(x, cwnd - 1.0));
  }
  return x;
}

sim::Duration TcpPrSender::mxrtt() const {
  if (in_backoff_) return sim::Duration::seconds(backoff_mxrtt_s_);
  if (ewrtt_s_ <= 0) return pr_.initial_timeout;
  return sim::Duration::seconds(pr_.beta * ewrtt_s_);
}

void TcpPrSender::update_ewrtt(sim::Duration sample) {
  const double s = sample.as_seconds();
  const double w = std::max(cwnd_, 1.0);
  if (pr_.ablate_mean_ewrtt) {
    // Ablation: EWMA of the mean with the same per-RTT memory. Vulnerable
    // to RTT spikes (the reason the paper tracks a decaying max instead).
    const double decay = newton_alpha_root(pr_.alpha, w, pr_.newton_iterations);
    ewrtt_s_ = ewrtt_s_ <= 0 ? s : decay * ewrtt_s_ + (1.0 - decay) * s;
    return;
  }
  const double decay = newton_alpha_root(pr_.alpha, w, pr_.newton_iterations);
  ewrtt_s_ = std::max(decay * ewrtt_s_, s);  // eq. (1)
}

void TcpPrSender::on_start() { flush_cwnd(); }

tcp::SenderInvariantView TcpPrSender::invariant_view() const {
  tcp::SenderInvariantView v;
  v.valid = true;
  v.cwnd = cwnd_;
  v.ssthresh = ssthr_;
  v.ssthresh_floor = 1.0;  // §3.1 halving floors at one segment
  v.snd_una = stats_.segments_acked;
  v.snd_nxt = next_new_;
  // TCP-PR splits its flight across to_be_ack_/to_be_sent_rtx_; the
  // cumulative window identity does not apply. Structural consistency is
  // checked here instead: both sets live inside [snd_una, snd_nxt), are
  // disjoint, and memorize flags a subset of the outstanding packets.
  v.window_bookkeeping = false;
  v.has_rto = false;  // loss detection is mxrtt-based, no RFC 2988 state
  v.rtx_timer_armed = drop_timer_.armed() || unblock_timer_.armed();
  v.rtx_timer_needed = !to_be_ack_.empty() || !to_be_sent_rtx_.empty();
  v.rtx_timer_strict = false;  // the unblock timer may outlive its backoff
  v.scoreboard_ok = true;
  for (const auto& [s, unused] : to_be_ack_) {
    if (s < stats_.segments_acked || s >= next_new_ ||
        to_be_sent_rtx_.contains(s)) {
      v.scoreboard_ok = false;
    }
  }
  for (const SeqNo s : to_be_sent_rtx_) {
    if (s < stats_.segments_acked || s >= next_new_) v.scoreboard_ok = false;
  }
  for (const SeqNo s : memorize_) {
    if (!to_be_ack_.contains(s)) v.scoreboard_ok = false;
  }
  return v;
}

void TcpPrSender::send_one(SeqNo seq) {
  const bool is_rtx = to_be_sent_rtx_.erase(seq) > 0;
  OutstandingInfo info;
  info.sent_at = now();
  info.transmitted_at = now();
  info.cwnd_at_send = cwnd_;
  info.is_retransmission = is_rtx;
  to_be_ack_[seq] = info;
  send_order_.emplace(info.sent_at, seq);
  transmit_segment(seq, is_rtx, next_tx_serial_++);
}

void TcpPrSender::flush_cwnd() {
  if (now() < send_blocked_until_) {
    // Extreme-loss pause (§3.2): resume exactly when the block lifts.
    unblock_timer_.arm(send_blocked_until_);
    return;
  }
  {
    // One burst per window flush: head repair and the window loop stage
    // their segments, the scope exit originates them as one burst, and the
    // single drop-timer re-arm below already follows the whole loop.
    SenderBase::BurstScope burst(*this);
    // Head repair runs outside the window check (like fast retransmit): the
    // lowest pending retransmission is the cumulative-ACK blocker, and the
    // stalled flight behind it must never be able to lock it out.
    if (!to_be_sent_rtx_.empty()) {
      const SeqNo head = *to_be_sent_rtx_.begin();
      if (to_be_ack_.empty() || head < to_be_ack_.begin()->first) {
        send_one(head);
      }
    }

    // Table 1: while cwnd > |to-be-ack|, send the smallest pending seq.
    // Dupack credits subtract segments known to have left the network (see
    // TcpPrConfig::dupack_window_credit).
    for (;;) {
      std::size_t outstanding = to_be_ack_.size();
      if (pr_.dupack_window_credit) {
        outstanding -= std::min<std::size_t>(
            outstanding, static_cast<std::size_t>(dup_credits_));
      }
      if (!(cwnd_ > static_cast<double>(outstanding))) break;
      if (!to_be_sent_rtx_.empty()) {
        send_one(*to_be_sent_rtx_.begin());
      } else if (source_has(next_new_)) {
        send_one(next_new_);
        ++next_new_;
      } else {
        break;
      }
    }
  }
  rearm_drop_timer();
}

void TcpPrSender::rearm_drop_timer() {
  // Drop stale send-order entries (acked packets, superseded transmissions).
  while (!send_order_.empty()) {
    const auto& [t, seq] = *send_order_.begin();
    const auto it = to_be_ack_.find(seq);
    if (it != to_be_ack_.end() && it->second.sent_at == t) break;
    send_order_.erase(send_order_.begin());
  }
  if (send_order_.empty()) {
    drop_timer_.cancel();
    return;
  }
  const sim::TimePoint deadline = send_order_.begin()->first + mxrtt();
  // Re-armed on every ack; the deadline normally only moves later (the
  // head-of-line send time advances), so this is DeadlineTimer's no-cancel
  // fast path. Only an mxrtt decay that outpaces the head's progress — or
  // leaving backoff — moves it earlier and pays a cancel.
  drop_timer_.arm(std::max(deadline, now()));
}

bool TcpPrSender::declaration_deferred(SeqNo seq) const {
  // While a congestion episode is being repaired (cumulative ACK below the
  // recovery point, NewReno-style), only the memorize snapshot and already
  // repaired-and-lost segments may be declared. Segments first sent after
  // the halving share the cumulative-ACK stall but carry no information
  // about it; declaring them would masquerade as a fresh congestion event.
  if (pr_.ablate_no_memorize) return false;  // ablation: react per drop
  return !in_backoff_ && stats_.segments_acked < recover_point_ &&
         !memorize_.contains(seq) && !drop_counts_.contains(seq);
}

void TcpPrSender::on_drop_timer() {
  // Declare drops for every packet whose deadline has passed.
  for (;;) {
    while (!send_order_.empty()) {
      const auto& [t, seq] = *send_order_.begin();
      const auto it = to_be_ack_.find(seq);
      if (it != to_be_ack_.end() && it->second.sent_at == t) break;
      send_order_.erase(send_order_.begin());
    }
    if (send_order_.empty()) break;
    const auto [t, seq] = *send_order_.begin();
    if (t + mxrtt() > now()) break;
    if (declaration_deferred(seq)) {
      // Push the deadline one round out; the episode normally resolves
      // (and acknowledges this packet) well before it expires again.
      auto& out = to_be_ack_[seq];
      out.sent_at = now();
      send_order_.emplace(out.sent_at, seq);
      continue;  // the stale front entry is cleaned on the next pass
    }
    handle_drop(seq);
  }
  flush_cwnd();  // also re-arms the timer
}

void TcpPrSender::handle_drop(SeqNo seq) {
  const auto it = to_be_ack_.find(seq);
  TCPPR_CHECK(it != to_be_ack_.end());
  const OutstandingInfo info = it->second;
  // Deadline oracle: a drop may only be declared once the packet has been
  // outstanding for the full mxrtt envelope (Table 1 drop-detected gate).
  if (validate_ && now() < info.sent_at + mxrtt()) {
    ++early_drop_declarations_;
  }
  to_be_ack_.erase(it);
  to_be_sent_rtx_.insert(seq);
  TCPPR_LOG_DEBUG("tcp-pr", "flow %d drop detected seq %lld", flow(),
                  static_cast<long long>(seq));
  if (probe_) probe_.drop_declared(now());

  if (in_backoff_) {
    // §3.2: while cwnd == 1 after an extreme-loss reset, further drops
    // double mxrtt instead of halving — the usual exponential backoff.
    memorize_.erase(seq);
    backoff_mxrtt_s_ =
        std::min(2.0 * backoff_mxrtt_s_, pr_.max_backoff.as_seconds());
    send_blocked_until_ = now() + mxrtt();
    if (memorize_.empty()) cburst_ = 0;
    return;
  }

  auto& drop_record = drop_counts_[seq];
  const int drops_of_seq = ++drop_record.drops;
  drop_record.last_transmit = info.transmitted_at;
  if (pr_.enable_extreme_loss_handling &&
      pr_.extreme_loss_on_lost_retransmission &&
      drops_of_seq >= pr_.extreme_loss_rtx_drops) {
    // Repeated repairs of the same segment were lost — the situation in
    // which NewReno/SACK fast recovery stalls into a coarse timeout (see
    // TcpPrConfig).
    memorize_.erase(seq);
    enter_extreme_loss(seq);
    return;
  }

  const bool was_memorized = memorize_.erase(seq) > 0;
  if (!was_memorized || pr_.ablate_no_memorize) {
    // First drop of a new congestion event: snapshot the outstanding
    // packets and halve from the cwnd in force when `seq` was sent.
    if (!pr_.ablate_no_memorize) {
      memorize_.clear();
      for (auto& [s, out] : to_be_ack_) {
        memorize_.insert(s);
        if (pr_.restamp_on_congestion_event) {
          // See TcpPrConfig::restamp_on_congestion_event.
          out.sent_at = now();
          send_order_.emplace(out.sent_at, s);
        }
      }
      burst_snapshot_size_ = memorize_.size();
    }
    recover_point_ = next_new_;
    episode_started_ = now();
    const double basis =
        pr_.ablate_halve_current_cwnd ? cwnd_ : info.cwnd_at_send;
    TCPPR_LOG_DEBUG("tcp-pr",
                    "flow %d halving on seq %lld (rtx=%d basis=%.1f)", flow(),
                    static_cast<long long>(seq),
                    info.is_retransmission ? 1 : 0, basis);
    // The snapshot rule reduces to cwnd(n)/2 — but a window that grew past
    // the snapshot during the detection delay must never be *raised* by a
    // "halving".
    cwnd_ = std::min(cwnd_, std::max(1.0, basis / 2.0));
    ssthr_ = cwnd_;
    mode_ = Mode::kCongestionAvoidance;
    ++stats_.cwnd_halvings;
    if (probe_) probe_.ssthresh(now(), ssthr_);
    notify_cwnd(cwnd_);
  } else {
    // Part of an already-handled burst: no further halving, but count it
    // toward the extreme-loss condition.
    ++cburst_;
    // §3.2 counter rule ("half or more packets lost within a window"),
    // measured against the burst snapshot; see
    // TcpPrConfig::extreme_loss_on_burst_count.
    // The episode-age gate mirrors the 1 s floor of the coarse timeout the
    // rule emulates: NewReno/SACK cannot reach an RTO faster than min_rto,
    // so neither may this counter (multi-hole repairs shorter than that
    // are routine fast-recovery business).
    if (pr_.enable_extreme_loss_handling && pr_.extreme_loss_on_burst_count &&
        now() - episode_started_ >= pr_.extreme_loss_floor &&
        static_cast<double>(cburst_) >
            static_cast<double>(burst_snapshot_size_) / 2.0 + 1.0) {
      enter_extreme_loss(seq);
      return;
    }
  }
  if (memorize_.empty()) cburst_ = 0;
}

void TcpPrSender::enter_extreme_loss(SeqNo seq) {
  (void)seq;
  ++stats_.extreme_loss_events;
  ++stats_.timeouts;  // comparable to a NewReno/SACK coarse timeout
  TCPPR_LOG_DEBUG("tcp-pr", "flow %d extreme loss (cburst=%d)", flow(),
                  cburst_);
  cwnd_ = 1.0;
  mode_ = Mode::kSlowStart;
  // ssthr_ keeps the value set at the start of the burst (half the
  // pre-burst window), mirroring NewReno's post-timeout ssthresh.
  //
  // Emulating the coarse timeout fully means forgetting the in-flight
  // window (go-back-N): everything outstanding returns to the to-be-sent
  // side; whatever the receiver already has is cleaned out by the
  // cumulative ACKs that follow the first repair.
  for (const auto& [s, unused] : to_be_ack_) to_be_sent_rtx_.insert(s);
  to_be_ack_.clear();
  send_order_.clear();
  memorize_.clear();
  // The reset forgets the loss episode wholesale, and the per-segment drop
  // counts with it: every outstanding segment goes back to the to-be-sent
  // side, so a drop of its *next* transmission is a fresh event, not
  // attempt N of this episode. Keeping the counts would let two separate
  // episodes accumulate toward extreme_loss_rtx_drops and spuriously
  // re-trigger the backoff right after recovery. Closing the recovery
  // window (recover_point_) matches: NewReno leaves fast recovery on a
  // coarse timeout, and a stale open episode would otherwise defer drop
  // declarations for segments whose counts were just erased.
  drop_counts_.clear();
  recover_point_ = stats_.segments_acked;
  cburst_ = 0;
  dup_credits_ = 0;
  in_backoff_ = true;
  backoff_mxrtt_s_ = std::max(pr_.extreme_loss_floor.as_seconds(),
                              pr_.beta * ewrtt_s_);
  send_blocked_until_ = now() + mxrtt();
  if (probe_) {
    probe_.extreme_loss(now());
    probe_.backoff(now(), true);
    probe_.mxrtt(now(), mxrtt().as_seconds());
  }
  notify_cwnd(cwnd_);
}

void TcpPrSender::on_ack_packet(const net::Packet& ack) {
  const SeqNo a = ack.tcp.ack;

  // Remove every newly acknowledged packet (cumulative ACK semantics).
  bool any = false;
  sim::TimePoint newest_send;
  auto it = to_be_ack_.begin();
  while (it != to_be_ack_.end() && it->first < a) {
    if (!any || it->second.transmitted_at > newest_send) {
      newest_send = it->second.transmitted_at;
    }
    any = true;
    memorize_.erase(it->first);
    it = to_be_ack_.erase(it);
  }
  // Queued retransmissions below the ACK point are no longer needed.
  to_be_sent_rtx_.erase(to_be_sent_rtx_.begin(),
                        to_be_sent_rtx_.lower_bound(a));

  // The ACK can advance the window even when every covered segment was
  // already declared dropped (their to-be-ack entries are gone) — e.g.
  // originals arriving after a spurious declaration. That progress still
  // counts, and its RTT sample is the only way the estimator can learn an
  // RTT above the current mxrtt.
  const bool progress = a > stats_.segments_acked;
  if (!any && !progress) {
    // Duplicate ACK: never a loss signal, but proof that one segment
    // reached the receiver — worth one window credit.
    if (pr_.dupack_window_credit && !to_be_ack_.empty()) {
      ++dup_credits_;
      if (probe_) probe_.dup_credits(now(), dup_credits_);
      flush_cwnd();
    }
    return;
  }
  dup_credits_ = 0;
  if (memorize_.empty()) cburst_ = 0;

  // Table 1 lines 13-14: sample from the packet whose ACK just arrived.
  if (any) {
    update_ewrtt(now() - newest_send);
  } else {
    const auto dropped = drop_counts_.find(a - 1);
    if (dropped != drop_counts_.end()) {
      update_ewrtt(now() - dropped->second.last_transmit);
    }
  }
  drop_counts_.erase(drop_counts_.begin(), drop_counts_.lower_bound(a));

  if (in_backoff_) {
    in_backoff_ = false;
    backoff_mxrtt_s_ = 0;
    send_blocked_until_ = now();
    if (probe_) probe_.backoff(now(), false);
  }

  note_progress(a);

  // Table 1 lines 17-20: window growth.
  if (mode_ == Mode::kSlowStart) {
    if (cwnd_ + 1.0 <= ssthr_) {
      cwnd_ += 1.0;
    } else {
      mode_ = Mode::kCongestionAvoidance;
      cwnd_ += 1.0 / cwnd_;
    }
  } else {
    cwnd_ += 1.0 / cwnd_;
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd);
  notify_cwnd(cwnd_);

  if (probe_) {
    // One estimator snapshot per ACK: the cwnd/ewrtt/mxrtt time series the
    // paper's figures are drawn from.
    probe_.ewrtt(now(), ewrtt_s_);
    probe_.mxrtt(now(), mxrtt().as_seconds());
    probe_.outstanding(now(), to_be_ack_.size());
    probe_.dup_credits(now(), dup_credits_);
  }

  flush_cwnd();
}

}  // namespace tcppr::core
