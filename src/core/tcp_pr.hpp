// TCP-PR — the paper's contribution (Section 3, Table 1).
//
// Loss detection uses no duplicate-ACK information at all. Every
// transmitted packet carries a timestamp and a snapshot of cwnd; a packet
// still unacknowledged after mxrtt = beta * ewrtt is declared dropped,
// where ewrtt is an exponentially *decaying maximum* of observed RTTs:
//
//    ewrtt = max(alpha^(1/cwnd) * ewrtt, sample_rtt)          (eq. 1)
//
// alpha^(1/cwnd) is computed with two Newton iterations exactly as the
// paper's Linux implementation does (footnote 5). On a detected drop the
// window is halved from the cwnd *snapshot taken when the dropped packet
// was sent*, and a `memorize` snapshot of the outstanding packets ensures
// one halving per loss burst (the NewReno/SACK-style "one reaction per
// congestion event"). Extreme losses (more than cwnd/2 + 1 drops in a
// burst, Section 3.2) reset cwnd to one, raise mxrtt to at least one
// second, pause sending for mxrtt, and double mxrtt on further drops —
// emulating the coarse-timeout exponential backoff of NewReno/SACK.
//
// Only the sender changes: the receiver is any cumulative-ACK TCP receiver
// (SACK options, if present, are ignored).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "tcp/sender_base.hpp"

namespace tcppr::core {

using tcp::FlowId;
using tcp::SeqNo;

struct TcpPrConfig {
  double alpha = 0.995;  // ewrtt memory factor, per-RTT units (0 < a < 1)
  double beta = 3.0;     // mxrtt = beta * ewrtt (> 1)
  int newton_iterations = 2;  // footnote 5: n = 2 in the reference code
  // Timeout for packets sent before any RTT estimate exists (the spec
  // leaves this open; 3 s matches the conventional initial RTO).
  sim::Duration initial_timeout = sim::Duration::seconds(3.0);
  bool enable_extreme_loss_handling = true;  // Section 3.2
  sim::Duration extreme_loss_floor = sim::Duration::seconds(1.0);
  sim::Duration max_backoff = sim::Duration::seconds(64.0);

  // Interpretation choice (documented in DESIGN.md §6): when the first drop
  // of a burst is detected, refresh the time-stamps of the packets captured
  // in the memorize snapshot. Without this, the cumulative-ACK stall behind
  // the lost packet pushes the *entire* flight past its deadline before the
  // recovery ACK returns, causing a window of spurious retransmissions and
  // misfiring the extreme-loss rule on ordinary single losses. Genuinely
  // lost packets are still detected one mxrtt after the refresh (they are
  // never acknowledged), so burst handling and §3.2 semantics survive.
  bool restamp_on_congestion_event = true;

  // Interpretation choice (DESIGN.md §6): how "extreme losses" (Section
  // 3.2) are recognized. The paper counts packets removed from memorize by
  // drops (cburst > cwnd/2+1), but with cumulative ACKs that counter also
  // absorbs received-but-stalled packets, so it overcounts enormously and
  // fires on ordinary losses. The condition §3.2 emulates — NewReno/SACK
  // stalling out of fast recovery into a coarse timeout — occurs precisely
  // when a *retransmission is itself lost*; that is the default trigger.
  // The literal counter rule remains available for ablation.
  bool extreme_loss_on_lost_retransmission = true;
  // Lost transmissions of one segment before the backoff engages: 3 means
  // original + first retransmission + second retransmission all timed out.
  // (The first retransmission regularly races a still-full queue because
  // of the detection latency, so reacting to attempt 2 would misfire on
  // every deep sawtooth; NewReno likewise only reaches exponential backoff
  // after an RTO, i.e. after its own repair failed.)
  int extreme_loss_rtx_drops = 3;
  // §3.2 counter rule, measured against the memorize snapshot ("half or
  // more packets lost within a window"): catches mass slow-start crashes
  // whose go-back-N repair would otherwise storm the queues. With
  // re-stamping and episode deferral in place, the counter only absorbs
  // stall artifacts when the repair itself has outlived mxrtt — the same
  // condition under which NewReno's Impatient variant escapes to an RTO.
  bool extreme_loss_on_burst_count = true;

  // Interpretation choice (DESIGN.md §6): count duplicate ACKs as window
  // credits. A duplicate ACK proves one segment left the network, and
  // Linux's in-flight accounting (packets_out - sacked_out, where
  // sacked_out counts dupacks on SACK-less connections) lets new data flow
  // during the cumulative-ACK stall behind a hole. Loss detection remains
  // purely timer-based; without this, the sender sits idle for
  // (mxrtt - RTT) after every drop, which starves it against SACK in the
  // many-flow regimes of the paper's fairness experiments.
  bool dupack_window_credit = true;

  // --- ablations (DESIGN.md §5); all off for the paper's algorithm ------
  bool ablate_halve_current_cwnd = false;  // halve cwnd, not cwnd(n)
  bool ablate_no_memorize = false;         // halve on every drop
  bool ablate_mean_ewrtt = false;          // EWMA mean instead of decaying max
};

class TcpPrSender final : public tcp::SenderBase {
 public:
  TcpPrSender(net::Network& network, net::NodeId local, net::NodeId remote,
              FlowId flow, tcp::TcpConfig config = {},
              TcpPrConfig pr_config = {});

  double cwnd() const override { return cwnd_; }
  const char* algorithm() const override { return "tcp-pr"; }
  tcp::SenderInvariantView invariant_view() const override;

  // TCP-PR-specific invariants for src/validate: the detection envelope
  // (mxrtt >= ewrtt) and the drop-declaration deadline oracle.
  struct PrInvariantView {
    double mxrtt_s = 0;
    double ewrtt_s = 0;
    bool in_backoff = false;
    // Declarations made before sent_at + mxrtt elapsed. Counted only when
    // validation is enabled; the checker asserts it stays zero.
    std::uint64_t early_drop_declarations = 0;
  };
  PrInvariantView pr_invariant_view() const {
    return {mxrtt().as_seconds(), ewrtt_s_, in_backoff_,
            early_drop_declarations_};
  }
  // Arms the in-algorithm deadline oracle (one predictable branch per
  // declared drop when off — the src/obs discipline).
  void enable_validation() { validate_ = true; }

  void rebind_scheduler(sim::Scheduler& shard) override {
    tcp::SenderBase::rebind_scheduler(shard);
    drop_timer_.rebind(shard);
    drop_timer_.set_stamp_entity(static_cast<std::uint32_t>(local_node()));
    unblock_timer_.rebind(shard);
    unblock_timer_.set_stamp_entity(static_cast<std::uint32_t>(local_node()));
  }
  void migrate_to_shard(sim::Scheduler& shard) override {
    tcp::SenderBase::migrate_to_shard(shard);
    drop_timer_.rebind_for_migration(shard);
    unblock_timer_.rebind_for_migration(shard);
  }

  enum class Mode { kSlowStart, kCongestionAvoidance };
  Mode mode() const { return mode_; }
  double ssthresh() const { return ssthr_; }
  // Current maximum-RTT estimate driving drop detection.
  sim::Duration mxrtt() const;
  double ewrtt_seconds() const { return ewrtt_s_; }
  std::size_t outstanding() const { return to_be_ack_.size(); }
  std::size_t memorize_size() const { return memorize_.size(); }
  std::size_t pending_retransmits() const { return to_be_sent_rtx_.size(); }
  bool in_backoff() const { return in_backoff_; }
  int burst_drop_count() const { return cburst_; }

  // alpha^(1/cwnd) via Newton's method (footnote 5); exposed for tests.
  static double newton_alpha_root(double alpha, double cwnd, int iterations);

  void state(util::StateIO& io) override {
    tcp::SenderBase::state(io);
    io.pod(mode_);
    io.pod(cwnd_);
    io.pod(ssthr_);
    io.pod(ewrtt_s_);
    io.pod(backoff_mxrtt_s_);
    io.pod(in_backoff_);
    io.pod(cburst_);
    io.pod(burst_snapshot_size_);
    io.pod(recover_point_);
    io.pod(episode_started_);
    io.pod(send_blocked_until_);
    io.pod(next_new_);
    io.pod(dup_credits_);
    io.pod_sequence(to_be_sent_rtx_);
    io.pod_map(drop_counts_);
    io.pod_map(to_be_ack_);
    io.pod_map(send_order_);
    io.pod_sequence(memorize_);
    io.pod(next_tx_serial_);
    io.pod(early_drop_declarations_);
    io.obj(drop_timer_);
    io.obj(unblock_timer_);
  }

 protected:
  void on_start() override;
  void on_ack_packet(const net::Packet& ack) override;

 private:
  struct OutstandingInfo {
    // Deadline timestamp: refreshed by re-stamping/deferral (see DESIGN.md
    // §6.1); drop detection compares against sent_at + mxrtt.
    sim::TimePoint sent_at;
    // True transmission time, never refreshed: the basis of eq. (1)'s
    // sample-rtt, so the estimator can learn RTTs above the current mxrtt.
    sim::TimePoint transmitted_at;
    double cwnd_at_send = 0;      // cwnd snapshot (halving basis, §3.1)
    bool is_retransmission = false;
  };

  void flush_cwnd();                // Table 1: flush-cwnd()
  void handle_drop(SeqNo seq);      // Table 1: drop-detected event
  bool declaration_deferred(SeqNo seq) const;
  void update_ewrtt(sim::Duration sample);
  void rearm_drop_timer();
  void on_drop_timer();
  void enter_extreme_loss(SeqNo seq);
  void send_one(SeqNo seq);

  TcpPrConfig pr_;
  Mode mode_ = Mode::kSlowStart;
  double cwnd_;
  double ssthr_;
  double ewrtt_s_ = 0;       // 0 = no estimate yet
  double backoff_mxrtt_s_ = 0;  // overrides beta*ewrtt while backing off
  bool in_backoff_ = false;
  int cburst_ = 0;
  std::size_t burst_snapshot_size_ = 0;  // |memorize| at the last snapshot
  SeqNo recover_point_ = -1;  // episode open while cum-ack below this
  sim::TimePoint episode_started_;
  sim::TimePoint send_blocked_until_;

  SeqNo next_new_ = 0;
  int dup_credits_ = 0;  // dupacks since the last cumulative-ACK advance
  std::set<SeqNo> to_be_sent_rtx_;  // pending retransmissions (smallest first)
  struct DropRecord {
    int drops = 0;                    // timer-declared drops of this segment
    sim::TimePoint last_transmit;     // for RTT samples of late ACKs
  };
  std::map<SeqNo, DropRecord> drop_counts_;
  std::map<SeqNo, OutstandingInfo> to_be_ack_;
  std::multimap<sim::TimePoint, SeqNo> send_order_;  // lazy index by send time
  std::set<SeqNo> memorize_;  // flagged subset of to_be_ack_ (see Remark 1)

  std::uint32_t next_tx_serial_ = 1;
  bool validate_ = false;
  std::uint64_t early_drop_declarations_ = 0;
  // Coalesced timers (one armed event per flow, not per packet): the drop
  // timer tracks the earliest outstanding deadline — which normally only
  // moves later as the head of send_order_ is acked — and the unblock
  // timer tracks send_blocked_until_, which backoff doubling only pushes
  // out. Both are exactly DeadlineTimer's lazy re-arm pattern, keeping the
  // pending-event population O(flows) instead of O(acks).
  sim::DeadlineTimer drop_timer_;
  sim::DeadlineTimer unblock_timer_;
};

}  // namespace tcppr::core
