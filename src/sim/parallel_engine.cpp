#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace tcppr::sim {

ParallelEngine::ParallelEngine(std::vector<Scheduler*> shards,
                               std::vector<CutEdge> cuts, Hooks hooks,
                               EngineConfig config)
    : shards_(std::move(shards)),
      cuts_(std::move(cuts)),
      hooks_(std::move(hooks)),
      config_(config),
      w_(config.w_init) {
  TCPPR_CHECK(!shards_.empty());
  for (const CutEdge& c : cuts_) {
    TCPPR_CHECK(c.src_lp >= 0 &&
                c.src_lp < static_cast<int>(shards_.size()));
    TCPPR_CHECK(c.lookahead > Duration::zero());
  }
  if (config_.optimistic) {
    TCPPR_CHECK(config_.w_min > Duration::zero());
    TCPPR_CHECK(config_.w_min <= config_.w_init);
    TCPPR_CHECK(config_.w_init <= config_.w_max);
  }
  spec_results_.resize(shards_.size());
}

ParallelEngine::ParallelEngine(std::vector<Scheduler*> shards,
                               std::vector<CutEdge> cuts, Hooks hooks)
    : ParallelEngine(std::move(shards), std::move(cuts), std::move(hooks),
                     EngineConfig{}) {}

TimePoint ParallelEngine::safe_horizon() {
  TimePoint h = TimePoint::max();
  for (const CutEdge& c : cuts_) {
    // An idle source shard imposes no bound: anything it ever sends is
    // caused by an arrival, which itself cannot land before the horizon
    // the other edges imply.
    const auto d = shards_[static_cast<std::size_t>(c.src_lp)]->next_deadline();
    if (!d) continue;
    const TimePoint bound = *d + c.lookahead;
    if (bound < h) h = bound;
  }
  return h;
}

void ParallelEngine::run_until(TimePoint end) {
  const std::size_t n = shards_.size();
  if (n == 1 || cuts_.empty()) {
    // Single LP (or no coupling at all): plain sequential execution on
    // each shard — the degenerate but still byte-identical mode.
    for (Scheduler* s : shards_) s->run_until(end);
    if (hooks_.exchange) exchanged_ += hooks_.exchange();
    if (hooks_.at_barrier) hooks_.at_barrier(end);
    return;
  }

  // Persistent worker pool: worker i runs shard i+1; the coordinator runs
  // shard 0 and all barrier-phase work. A generation-counted condition
  // barrier keeps workers parked (not spinning) between windows, which
  // also keeps the mode usable on machines with fewer cores than LPs.
  std::mutex m;
  std::condition_variable cv_start, cv_done;
  std::uint64_t gen = 0;
  std::size_t running = 0;
  bool quit = false;
  const std::function<void(std::size_t)>* job = nullptr;

  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    workers.emplace_back([&, i] {
      std::uint64_t seen = 0;
      for (;;) {
        const std::function<void(std::size_t)>* my_job = nullptr;
        {
          std::unique_lock<std::mutex> lk(m);
          cv_start.wait(lk, [&] { return quit || gen != seen; });
          if (quit) return;
          seen = gen;
          my_job = job;
        }
        (*my_job)(i);
        {
          std::lock_guard<std::mutex> lk(m);
          if (--running == 0) cv_done.notify_one();
        }
      }
    });
  }

  const auto run_window = [&](const std::function<void(std::size_t)>& fn) {
    {
      std::lock_guard<std::mutex> lk(m);
      job = &fn;
      running = n - 1;
      ++gen;
    }
    cv_start.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lk(m);
    cv_done.wait(lk, [&] { return running == 0; });
  };

  const bool optimism_wired = config_.optimistic && hooks_.can_speculate &&
                              hooks_.snapshot && hooks_.settle;

  // Safe windows strictly before the horizon, each optionally followed by
  // a bounded speculative leg past it.
  for (;;) {
    const TimePoint h = safe_horizon();
    if (h > end) break;
    ++windows_;
    const std::function<void(std::size_t)> window = [&, h](std::size_t i) {
      shards_[i]->run_until_before(h);
    };
    run_window(window);
    exchanged_ += hooks_.exchange();
    if (hooks_.at_barrier) hooks_.at_barrier(h);

    // Adaptive repartitioning happens at the committed barrier, before
    // any speculation, so migrated state is never speculative.
    if (hooks_.maybe_repartition && hooks_.maybe_repartition(cuts_)) {
      ++repartitions_;
    }

    if (!optimism_wired || !hooks_.can_speculate()) continue;
    // Bound is exclusive; end + 1ns lets the leg cover the end time
    // itself (final-stretch semantics are inclusive).
    const TimePoint bound = std::min(h + w_, end + Duration::nanos(1));
    if (bound <= h) continue;
    for (std::size_t lp = 0; lp < n; ++lp) {
      hooks_.snapshot(static_cast<int>(lp));
    }
    ++spec_windows_;
    const std::function<void(std::size_t)> spec = [&, bound](std::size_t i) {
      spec_results_[i] = shards_[i]->run_speculative_before(bound);
    };
    run_window(spec);
    const int rolled = hooks_.settle(h, bound, spec_results_);
    if (rolled > 0) {
      ++rollback_windows_;
      rollbacks_ += static_cast<std::uint64_t>(rolled);
      w_ = std::max(config_.w_min, Duration::nanos(w_.as_nanos() / 2));
    } else {
      w_ = std::min(config_.w_max, w_ + config_.w_step);
    }
  }

  // Final stretch: inclusive at `end`, repeated until no shard holds work
  // at or before `end` (a window can inject events that land exactly at
  // the end time; effects of same-time events cannot propagate past the
  // end, so multi-pass execution here cannot reorder anything observable —
  // the barrier merge still emits trace records in stamp order). No
  // speculation here: there is nothing past the end to speculate into.
  for (;;) {
    ++windows_;
    const std::function<void(std::size_t)> window = [&, end](std::size_t i) {
      shards_[i]->run_until(end);
    };
    run_window(window);
    exchanged_ += hooks_.exchange();
    if (hooks_.at_barrier) hooks_.at_barrier(end);
    bool more = false;
    for (Scheduler* s : shards_) {
      const auto d = s->next_deadline();
      if (d && *d <= end) {
        more = true;
        break;
      }
    }
    if (!more) break;
  }

  {
    std::lock_guard<std::mutex> lk(m);
    quit = true;
  }
  cv_start.notify_all();
  for (std::thread& t : workers) t.join();
}

}  // namespace tcppr::sim
