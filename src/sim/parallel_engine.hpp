// Conservative parallel execution of one simulation across scheduler
// shards (classic PDES with link-delay lookahead, barrier-synchronous).
//
// The engine owns nothing about the network; it coordinates a set of
// Scheduler shards (one per logical process) plus the cut-edge metadata
// that bounds how far each shard may safely run. Each iteration:
//
//   1. Safe horizon  H = min over cut edges (source shard's earliest
//      pending event + edge lookahead). Lookahead is the cut link's
//      propagation delay: a packet leaving the source shard at time u
//      cannot arrive before u + lookahead, so every shard may execute all
//      events strictly before H without missing a cross-shard arrival.
//   2. Window: every shard runs run_until_before(H) concurrently on a
//      persistent worker pool (the coordinator runs shard 0 itself).
//   3. Barrier: workers park; the coordinator drains the cross-shard
//      mailboxes and flushes buffered trace records through the caller's
//      exchange hook, then runs the at_barrier hook (invariant sweeps).
//
// Windows are exclusive (time < H) so all events at exactly H — local and
// freshly injected — execute together in the next window, ordered by their
// stamps; see Scheduler::enable_seq_stamping for why stamp order equals
// the sequential run's tie-break order. The final stretch at the end time
// runs inclusively and loops exchange until no work at or before the end
// remains anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tcppr::sim {

class ParallelEngine {
 public:
  struct CutEdge {
    int src_lp = 0;
    Duration lookahead = Duration::zero();  // must be > 0
  };

  struct Hooks {
    // Drains every cross-shard mailbox into the target shards and merges
    // buffered trace records downstream. Runs on the coordinator with all
    // workers parked. Returns the number of events injected.
    std::function<std::uint64_t()> exchange;
    // Cross-shard messages pushed but whose delivery event has not yet
    // executed; the final stretch loops until this reaches zero.
    std::function<std::uint64_t()> external_backlog;
    // Optional: runs after each exchange (invariant sweeps at barriers).
    std::function<void(TimePoint)> at_barrier;
  };

  // Shards are borrowed; they must outlive the engine. Every cut edge's
  // lookahead must be positive — a zero-lookahead cut cannot make
  // progress (the partitioner falls back to fewer LPs instead).
  ParallelEngine(std::vector<Scheduler*> shards, std::vector<CutEdge> cuts,
                 Hooks hooks);

  // Runs every shard to `end` (inclusive, like Scheduler::run_until).
  void run_until(TimePoint end);

  std::uint64_t windows() const { return windows_; }
  std::uint64_t exchanged() const { return exchanged_; }

 private:
  // Smallest safe horizon implied by the cut edges, or TimePoint::max()
  // when no shard can send anything (all source shards idle).
  TimePoint safe_horizon();
  // Runs `fn(shard)` for every shard concurrently and waits; fn must only
  // touch state owned by that shard.
  void run_window(const std::function<void(Scheduler&)>& fn);

  std::vector<Scheduler*> shards_;
  std::vector<CutEdge> cuts_;
  Hooks hooks_;
  std::uint64_t windows_ = 0;
  std::uint64_t exchanged_ = 0;
};

}  // namespace tcppr::sim
