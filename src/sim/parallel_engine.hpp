// Parallel execution of one simulation across scheduler shards: classic
// conservative PDES with link-delay lookahead, optionally extended with
// bounded-optimism speculation (Time-Warp-lite) and adaptive
// repartitioning.
//
// The engine owns nothing about the network; it coordinates a set of
// Scheduler shards (one per logical process) plus the cut-edge metadata
// that bounds how far each shard may safely run. Each iteration:
//
//   1. Safe horizon  H = min over cut edges (source shard's earliest
//      pending event + edge lookahead). Lookahead is the cut link's
//      propagation delay: a packet leaving the source shard at time u
//      cannot arrive before u + lookahead, so every shard may execute all
//      events strictly before H without missing a cross-shard arrival.
//   2. Window: every shard runs run_until_before(H) concurrently on a
//      persistent worker pool (the coordinator runs shard 0 itself).
//   3. Barrier: workers park; the coordinator drains the cross-shard
//      mailboxes and flushes buffered trace records through the caller's
//      exchange hook, then runs the at_barrier hook (invariant sweeps).
//   4. (adaptive) maybe_repartition may migrate shard contents and
//      rewrite the cut-edge set against measured load.
//   5. (optimistic) If every shard's pending set is replay-safe, the
//      coordinator snapshots all LPs and the pool runs a *speculative*
//      window to min(H + W, end]: each shard executes past the horizon
//      against its snapshot. The settle hook then computes, single-
//      threaded, which LPs saw a straggler (a cross-LP message at or
//      below their executed frontier), rolls exactly those back to the
//      snapshot, and commits the rest. W halves on any rollback and
//      creeps up additively on clean windows.
//
// Windows are exclusive (time < H) so all events at exactly H — local and
// freshly injected — execute together in the next window, ordered by their
// stamps; see Scheduler::enable_seq_stamping for why stamp order equals
// the sequential run's tie-break order. The final stretch at the end time
// runs inclusively (and without speculation) and loops exchange until no
// work at or before the end remains anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tcppr::sim {

class ParallelEngine {
 public:
  struct CutEdge {
    int src_lp = 0;
    Duration lookahead = Duration::zero();  // must be > 0
  };

  // Bounded-optimism policy. W is the speculation depth past the safe
  // horizon; it adapts multiplicative-decrease / additive-increase on the
  // rollback signal, clamped to [w_min, w_max].
  struct EngineConfig {
    bool optimistic = false;
    Duration w_init = Duration::micros(200);
    Duration w_min = Duration::micros(25);
    Duration w_max = Duration::millis(8);
    Duration w_step = Duration::micros(100);
  };

  struct Hooks {
    // Drains every cross-shard mailbox into the target shards and merges
    // buffered trace records downstream. Runs on the coordinator with all
    // workers parked. Returns the number of events injected.
    std::function<std::uint64_t()> exchange;
    // Cross-shard messages pushed but whose delivery event has not yet
    // executed; the final stretch loops until this reaches zero.
    std::function<std::uint64_t()> external_backlog;
    // Optional: runs after each exchange (invariant sweeps at barriers).
    std::function<void(TimePoint)> at_barrier;
    // Optional (adaptive mode): inspect measured load, possibly migrate
    // shard contents, and rewrite `cuts` in place. Returns true when a
    // repartition actually happened. Coordinator-only.
    std::function<bool(std::vector<CutEdge>&)> maybe_repartition;
    // Optimistic mode (all three required for speculation to engage):
    // gate — false when any shard holds a non-replay-safe pending event
    // or the harness has a reason to sit the window out.
    std::function<bool()> can_speculate;
    // Capture LP `lp`'s full rollback state. Coordinator-only, serial.
    std::function<void(int)> snapshot;
    // Resolve one speculative window: given the horizon, the bound and
    // each shard's speculative execution result, find the straggler-hit
    // LPs (transitively), restore them from snapshot, retract their
    // unsent messages and deliver the valid ones. Returns the number of
    // LPs rolled back. Coordinator-only.
    std::function<int(TimePoint h, TimePoint bound,
                      const std::vector<Scheduler::SpecResult>&)>
        settle;
  };

  // Shards are borrowed; they must outlive the engine. Every cut edge's
  // lookahead must be positive — a zero-lookahead cut cannot make
  // progress (the partitioner falls back to fewer LPs instead).
  ParallelEngine(std::vector<Scheduler*> shards, std::vector<CutEdge> cuts,
                 Hooks hooks, EngineConfig config);
  // Default (conservative) policy. A separate overload rather than a
  // defaulted argument: the nested config's member initializers are not
  // parsed yet at this point of the enclosing class.
  ParallelEngine(std::vector<Scheduler*> shards, std::vector<CutEdge> cuts,
                 Hooks hooks);

  // Runs every shard to `end` (inclusive, like Scheduler::run_until).
  void run_until(TimePoint end);

  std::uint64_t windows() const { return windows_; }
  std::uint64_t exchanged() const { return exchanged_; }
  // Optimism telemetry: speculative windows attempted, windows that saw
  // at least one rollback, total LP rollbacks, current speculation depth.
  std::uint64_t spec_windows() const { return spec_windows_; }
  std::uint64_t rollback_windows() const { return rollback_windows_; }
  std::uint64_t rollbacks() const { return rollbacks_; }
  std::uint64_t repartitions() const { return repartitions_; }
  Duration current_w() const { return w_; }

 private:
  // Smallest safe horizon implied by the cut edges, or TimePoint::max()
  // when no shard can send anything (all source shards idle).
  TimePoint safe_horizon();

  std::vector<Scheduler*> shards_;
  std::vector<CutEdge> cuts_;
  Hooks hooks_;
  EngineConfig config_;
  Duration w_ = Duration::zero();
  std::vector<Scheduler::SpecResult> spec_results_;
  std::uint64_t windows_ = 0;
  std::uint64_t exchanged_ = 0;
  std::uint64_t spec_windows_ = 0;
  std::uint64_t rollback_windows_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t repartitions_ = 0;
};

}  // namespace tcppr::sim
