#include "sim/event_queue.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace tcppr::sim {

std::optional<QueuedEvent> BinaryHeapQueue::pop_min() {
  if (heap_.empty()) return std::nullopt;
  QueuedEvent top = heap_.top();
  heap_.pop();
  return top;
}

CalendarQueue::CalendarQueue() : buckets_(16) {}

std::size_t CalendarQueue::bucket_index(TimePoint t) const {
  const std::int64_t ns = std::max<std::int64_t>(t.as_nanos(), 0);
  return static_cast<std::size_t>((ns / width_ns_) %
                                  static_cast<std::int64_t>(buckets_.size()));
}

void CalendarQueue::insert(const QueuedEvent& event) {
  auto& bucket = buckets_[bucket_index(event.time)];
  // Buckets are kept sorted descending so the earliest event is at the
  // back (cheap pop); insertion scans from the back where near-future
  // events cluster.
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), event,
      [](const QueuedEvent& a, const QueuedEvent& b) { return b < a; });
  bucket.insert(pos, event);
}

void CalendarQueue::push(const QueuedEvent& event) {
  insert(event);
  ++size_;
  if (event.time < last_popped_) {
    // A push behind the cursor (e.g. a peeked-too-far event returned by
    // run_until): re-seat the scan so the minimum stays reachable in
    // order.
    last_popped_ = std::max(event.time, TimePoint::origin());
    current_ = bucket_index(last_popped_);
    year_start_ns_ = (last_popped_.as_nanos() / width_ns_ -
                      static_cast<std::int64_t>(current_)) *
                     width_ns_;
  }
  if (size_ > 2 * buckets_.size() && buckets_.size() < (1u << 20)) {
    resize(buckets_.size() * 2);
  }
}

std::int64_t CalendarQueue::estimate_width() const {
  // Average inter-event spacing over the pending population, clamped to a
  // sane range: buckets should hold ~1 event of the current "year".
  TimePoint lo = TimePoint::max();
  TimePoint hi;
  for (const auto& bucket : buckets_) {
    for (const QueuedEvent& e : bucket) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
  }
  if (size_ < 2 || hi <= lo) return width_ns_;
  const std::int64_t span = (hi - lo).as_nanos();
  return std::clamp<std::int64_t>(span / static_cast<std::int64_t>(size_),
                                  1'000, 1'000'000'000);
}

void CalendarQueue::resize(std::size_t new_bucket_count) {
  std::vector<QueuedEvent> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  width_ns_ = estimate_width();
  buckets_.assign(new_bucket_count, {});
  for (const QueuedEvent& e : all) insert(e);
  // Reset the cursor to the bucket of the next event to pop.
  last_popped_ = std::max(last_popped_, TimePoint::origin());
  current_ = bucket_index(last_popped_);
  year_start_ns_ =
      (last_popped_.as_nanos() / width_ns_ -
       static_cast<std::int64_t>(current_)) *
      width_ns_;
}

std::optional<QueuedEvent> CalendarQueue::pop_min() {
  if (size_ == 0) return std::nullopt;

  // Scan buckets from the cursor; an event belongs to the current pass
  // when it falls inside this bucket's slice of the current year.
  const std::size_t n = buckets_.size();
  for (std::size_t scanned = 0; scanned < n; ++scanned) {
    auto& bucket = buckets_[current_];
    const std::int64_t slice_end =
        year_start_ns_ +
        (static_cast<std::int64_t>(current_) + 1) * width_ns_;
    if (!bucket.empty() && bucket.back().time.as_nanos() < slice_end) {
      QueuedEvent event = bucket.back();
      bucket.pop_back();
      --size_;
      last_popped_ = event.time;
      if (size_ < buckets_.size() / 4 && buckets_.size() > 16) {
        resize(buckets_.size() / 2);
      }
      return event;
    }
    ++current_;
    if (current_ == n) {
      current_ = 0;
      year_start_ns_ += static_cast<std::int64_t>(n) * width_ns_;
    }
  }

  // Nothing in the coming year: jump straight to the global minimum
  // (classic calendar-queue fallback for sparse horizons).
  const QueuedEvent* min_event = nullptr;
  for (const auto& bucket : buckets_) {
    if (bucket.empty()) continue;
    if (min_event == nullptr || bucket.back() < *min_event) {
      min_event = &bucket.back();
    }
  }
  TCPPR_CHECK(min_event != nullptr);
  QueuedEvent event = *min_event;
  // Remove it.
  auto& bucket = buckets_[bucket_index(event.time)];
  bucket.pop_back();
  --size_;
  last_popped_ = event.time;
  // Re-seat the cursor at the popped event's bucket/year.
  current_ = bucket_index(event.time);
  year_start_ns_ = (event.time.as_nanos() / width_ns_ -
                    static_cast<std::int64_t>(current_)) *
                   width_ns_;
  return event;
}

}  // namespace tcppr::sim
