#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <new>
#include <utility>

#include "util/check.hpp"

namespace tcppr::sim {

HeapQueue::~HeapQueue() {
  ::operator delete(keys_, std::align_val_t{64});
  ::operator delete(aux_, std::align_val_t{64});
}

void HeapQueue::grow() {
  const std::size_t new_capacity = capacity_ == 0 ? 1024 : capacity_ * 2;
  auto* new_keys = static_cast<std::int64_t*>(::operator new(
      (new_capacity + kPad) * sizeof(std::int64_t), std::align_val_t{64}));
  auto* new_aux = static_cast<Aux*>(::operator new(
      (new_capacity + kPad) * sizeof(Aux), std::align_val_t{64}));
  if (count_ > 0) {
    std::memcpy(new_keys + kPad, keys_ + head_ + kPad,
                count_ * sizeof(std::int64_t));
    std::memcpy(new_aux + kPad, aux_ + head_ + kPad, count_ * sizeof(Aux));
  }
  head_ = 0;
  ::operator delete(keys_, std::align_val_t{64});
  ::operator delete(aux_, std::align_val_t{64});
  keys_ = new_keys;
  aux_ = new_aux;
  capacity_ = new_capacity;
}

void HeapQueue::compact() {
  if (head_ == 0) return;
  std::memmove(keys_ + kPad, keys_ + head_ + kPad,
               count_ * sizeof(std::int64_t));
  std::memmove(aux_ + kPad, aux_ + head_ + kPad, count_ * sizeof(Aux));
  head_ = 0;
}

void HeapQueue::push(const QueuedEvent& event) {
  if (head_ + count_ == capacity_) {
    // Out of room at the tail: reclaim the popped prefix first, grow only
    // when the live range really fills the buffer.
    if (head_ > 0) {
      compact();
    } else {
      grow();
    }
  }
  const std::int64_t key = event.time.as_nanos();
  if (sorted_) {
    const std::size_t back = head_ + count_ - 1 + kPad;
    const bool in_order =
        count_ == 0 || key > keys_[back] ||
        (key == keys_[back] && event.seq >= aux_[back].seq);
    if (in_order) {
      const std::size_t tail = head_ + count_ + kPad;
      keys_[tail] = key;
      aux_[tail] = Aux{event.seq, event.id};
      ++count_;
      return;
    }
    // First out-of-order push: the live range is sorted ascending, which
    // is already a valid min-heap once re-rooted at logical 0.
    compact();
    sorted_ = false;
  }
  // Sift up with a hole: shift parents down, place the event once.
  std::size_t n = count_++;
  while (n > 0) {
    const std::size_t pp = (n - 1) / kArity + kPad;
    const bool below_parent =
        key < keys_[pp] || (key == keys_[pp] && event.seq < aux_[pp].seq);
    if (!below_parent) break;
    keys_[n + kPad] = keys_[pp];
    aux_[n + kPad] = aux_[pp];
    n = pp - kPad;
  }
  keys_[n + kPad] = key;
  aux_[n + kPad] = Aux{event.seq, event.id};
}

std::optional<QueuedEvent> HeapQueue::pop_min() {
  if (count_ == 0) return std::nullopt;
  if (sorted_) {
    const std::size_t root = head_ + kPad;
    const QueuedEvent top{TimePoint::from_nanos(keys_[root]), aux_[root].seq,
                          aux_[root].id};
    ++head_;
    if (--count_ == 0) head_ = 0;
    return top;
  }
  const QueuedEvent top{TimePoint::from_nanos(keys_[kPad]), aux_[kPad].seq,
                        aux_[kPad].id};
  const std::int64_t last_key = keys_[count_ - 1 + kPad];
  const Aux last_aux = aux_[count_ - 1 + kPad];
  --count_;
  if (count_ == 0) {
    sorted_ = true;  // drained: the next burst can run flat again
  } else {
    // Sift down with a hole: at each level pick the smallest of the (one
    // cache line of) children, move it up if it beats `last`, else stop.
    std::size_t n = 0;
    for (;;) {
      const std::size_t first = n * kArity + 1;
      if (first >= count_) break;
      if (first * kArity + 1 < count_) {
        // The grandchildren of n occupy 8 consecutive cache lines starting
        // at physical 8*(first+1); one of them is the next level's children
        // block. Prefetching the whole span overlaps the next level's miss
        // with this level's compare instead of serializing them.
        const std::size_t gstart = (first + 1) * kArity;
        for (std::size_t k = 0; k < kArity; ++k) {
          __builtin_prefetch(&keys_[gstart + k * kArity]);
        }
      }
      const std::size_t end = std::min(first + kArity, count_);
      std::size_t best = first + kPad;
      for (std::size_t c = first + 1 + kPad; c < end + kPad; ++c) {
        if (less(c, best)) best = c;
      }
      const bool below_last =
          keys_[best] < last_key ||
          (keys_[best] == last_key && aux_[best].seq < last_aux.seq);
      if (!below_last) break;
      keys_[n + kPad] = keys_[best];
      aux_[n + kPad] = aux_[best];
      n = best - kPad;
    }
    keys_[n + kPad] = last_key;
    aux_[n + kPad] = last_aux;
  }
  return top;
}

CalendarQueue::CalendarQueue() : buckets_(16) {}

std::size_t CalendarQueue::bucket_index(TimePoint t) const {
  const std::int64_t ns = std::max<std::int64_t>(t.as_nanos(), 0);
  return static_cast<std::size_t>((ns / width_ns_) %
                                  static_cast<std::int64_t>(buckets_.size()));
}

void CalendarQueue::seat_cursor(TimePoint t) {
  const TimePoint seat = std::max(t, TimePoint::origin());
  current_ = bucket_index(seat);
  year_start_ns_ = (seat.as_nanos() / width_ns_ -
                    static_cast<std::int64_t>(current_)) *
                   width_ns_;
}

void CalendarQueue::insert(const QueuedEvent& event) {
  auto& bucket = buckets_[bucket_index(event.time)];
  // Buckets are kept sorted descending so the earliest event is at the
  // back (cheap pop); insertion scans from the back where near-future
  // events cluster.
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), event,
      [](const QueuedEvent& a, const QueuedEvent& b) { return b < a; });
  bucket.insert(pos, event);
}

void CalendarQueue::push(const QueuedEvent& event) {
  insert(event);
  ++size_;
  if (event.time < last_popped_) {
    last_popped_ = std::max(event.time, TimePoint::origin());
  }
  // A push behind the scan cursor (peek_min advances the cursor without
  // popping, so this is not covered by the last_popped_ check above):
  // re-seat the scan so the minimum stays reachable in order.
  const std::int64_t cursor_ns =
      year_start_ns_ + static_cast<std::int64_t>(current_) * width_ns_;
  if (event.time.as_nanos() < cursor_ns) {
    seat_cursor(event.time);
  }
  if (size_ > 2 * buckets_.size() && buckets_.size() < (1u << 20)) {
    resize(buckets_.size() * 2);
  }
}

std::int64_t CalendarQueue::estimate_width() const {
  // Average inter-event spacing over the pending population, clamped to a
  // sane range: buckets should hold ~1 event of the current "year".
  TimePoint lo = TimePoint::max();
  TimePoint hi;
  for (const auto& bucket : buckets_) {
    for (const QueuedEvent& e : bucket) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
  }
  if (size_ < 2 || hi <= lo) return width_ns_;
  const std::int64_t span = (hi - lo).as_nanos();
  return std::clamp<std::int64_t>(span / static_cast<std::int64_t>(size_),
                                  1'000, 1'000'000'000);
}

void CalendarQueue::resize(std::size_t new_bucket_count) {
  std::vector<QueuedEvent> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  width_ns_ = estimate_width();
  buckets_.assign(new_bucket_count, {});
  for (const QueuedEvent& e : all) insert(e);
  // Reset the cursor to the bucket of the next event to pop.
  last_popped_ = std::max(last_popped_, TimePoint::origin());
  seat_cursor(last_popped_);
}

std::vector<QueuedEvent>* CalendarQueue::find_min_bucket() {
  if (size_ == 0) return nullptr;

  // Scan buckets from the cursor; an event belongs to the current pass
  // when it falls inside this bucket's slice of the current year.
  const std::size_t n = buckets_.size();
  for (std::size_t scanned = 0; scanned < n; ++scanned) {
    auto& bucket = buckets_[current_];
    const std::int64_t slice_end =
        year_start_ns_ +
        (static_cast<std::int64_t>(current_) + 1) * width_ns_;
    if (!bucket.empty() && bucket.back().time.as_nanos() < slice_end) {
      return &bucket;
    }
    ++current_;
    if (current_ == n) {
      current_ = 0;
      year_start_ns_ += static_cast<std::int64_t>(n) * width_ns_;
    }
  }

  // Nothing in the coming year: jump straight to the global minimum
  // (classic calendar-queue fallback for sparse horizons).
  const QueuedEvent* min_event = nullptr;
  for (const auto& bucket : buckets_) {
    if (bucket.empty()) continue;
    if (min_event == nullptr || bucket.back() < *min_event) {
      min_event = &bucket.back();
    }
  }
  TCPPR_CHECK(min_event != nullptr);
  // Re-seat the cursor at the minimum's bucket/year; its bucket's back()
  // is the minimum (buckets are sorted descending).
  seat_cursor(min_event->time);
  return &buckets_[bucket_index(min_event->time)];
}

std::optional<QueuedEvent> CalendarQueue::peek_min() {
  const auto* bucket = find_min_bucket();
  if (bucket == nullptr) return std::nullopt;
  return bucket->back();
}

void CalendarQueue::clear() {
  for (auto& bucket : buckets_) bucket.clear();
  size_ = 0;
}

std::optional<QueuedEvent> CalendarQueue::pop_min() {
  auto* bucket = find_min_bucket();
  if (bucket == nullptr) return std::nullopt;
  QueuedEvent event = bucket->back();
  bucket->pop_back();
  --size_;
  last_popped_ = event.time;
  if (size_ < buckets_.size() / 4 && buckets_.size() > 16) {
    resize(buckets_.size() / 2);
  }
  return event;
}

TimingWheelQueue::TimingWheelQueue() : buckets_(kLevels * kSlots) {}

std::size_t TimingWheelQueue::level_of(std::int64_t tick) const {
  const std::uint64_t diff = static_cast<std::uint64_t>(tick) ^
                             static_cast<std::uint64_t>(pos_);
  if (diff == 0) return 0;
  return static_cast<std::size_t>(std::bit_width(diff) - 1) / kLevelBits;
}

std::size_t TimingWheelQueue::first_occupied(std::size_t level) const {
  for (std::size_t w = 0; w < kSlots / 64; ++w) {
    const std::uint64_t word = occupied_[level][w];
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    }
  }
  return kSlots;
}

void TimingWheelQueue::insert(const QueuedEvent& event) {
  // Negative times (not produced by the scheduler, but legal for the
  // standalone structure) are bucketed as tick 0; ordering against other
  // sub-tick-0 events then degrades to insertion order, matching the
  // calendar queue's clamp.
  const std::int64_t tick =
      std::max<std::int64_t>(event.time.as_nanos(), pos_);
  const std::size_t level = level_of(tick);
  if (level >= kLevels) {
    // Beyond the horizon: keep a sorted-descending run so the minimum pops
    // from the back. Overflow events always sit in a later 2^48 block than
    // every wheel event (pos_'s high bytes only change when the wheel is
    // empty), so the run never has to interleave with wheel extraction.
    const auto pos = std::upper_bound(
        overflow_.begin(), overflow_.end(), event,
        [](const QueuedEvent& a, const QueuedEvent& b) { return b < a; });
    overflow_.insert(pos, event);
    return;
  }
  const std::size_t slot =
      static_cast<std::size_t>(tick >> (kLevelBits * level)) & (kSlots - 1);
  auto& events = bucket(level, slot).events;
  if (level == 0 && !events.empty() && event.seq < events.back().seq) {
    // A level-0 bucket holds only same-time events and pop_min/peek_min
    // take its front as the FIFO minimum, which relies on the vector being
    // in seq order. Pushes arrive in seq order from a single scheduler, so
    // this branch is cold; it only fires for the parallel engine's barrier
    // injection, where an event stamped on another shard can carry a
    // smaller seq than an already-filed local event at the same tick.
    const auto pos = std::upper_bound(
        events.begin(), events.end(), event,
        [](const QueuedEvent& a, const QueuedEvent& b) { return a.seq < b.seq; });
    events.insert(pos, event);
  } else {
    events.push_back(event);
  }
  mark(level, slot);
  ++wheel_size_;
}

void TimingWheelQueue::push(const QueuedEvent& event) {
  const std::int64_t tick = std::max<std::int64_t>(event.time.as_nanos(), 0);
  if (tick < pos_) reseat(tick);
  insert(event);
  ++size_;
}

void TimingWheelQueue::reseat(std::int64_t new_pos) {
  // A push landed behind the wheel position. Slot meaning depends on pos_
  // (a level-0 slot index only names a tick relative to pos_'s high
  // bytes), so lowering pos_ in place would silently reinterpret every
  // filed event; the only correct move is a full rebuild. The scheduler's
  // schedule_at(t >= now) discipline makes this a cold path: it can only
  // trigger after run_until popped a cancelled stale beyond its deadline.
  ++reseats_;
  scratch_.clear();
  scratch_.reserve(wheel_size_);
  for (std::size_t level = 0; level < kLevels; ++level) {
    for (std::size_t w = 0; w < kSlots / 64; ++w) {
      std::uint64_t word = occupied_[level][w];
      while (word != 0) {
        const std::size_t slot =
            w * 64 + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        auto& events = bucket(level, slot).events;
        scratch_.insert(scratch_.end(), events.begin(), events.end());
        events.clear();
      }
      occupied_[level][w] = 0;
    }
  }
  levels_mask_ = 0;
  wheel_size_ = 0;
  pos_ = new_pos;
  for (const QueuedEvent& e : scratch_) insert(e);
  scratch_.clear();
}

void TimingWheelQueue::migrate_overflow() {
  TCPPR_CHECK(!overflow_.empty());
  pos_ = overflow_.back().time.as_nanos();
  // The run is sorted descending, so popping from the back feeds the wheel
  // in ascending (time, seq) order — same-time events re-file in their
  // original FIFO order.
  while (!overflow_.empty()) {
    const QueuedEvent& e = overflow_.back();
    if (level_of(e.time.as_nanos()) >= kLevels) break;
    insert(e);
    overflow_.pop_back();
  }
}

bool TimingWheelQueue::find_min_bucket(std::size_t& level,
                                       std::size_t& slot) const {
  if (levels_mask_ == 0) return false;
  level = static_cast<std::size_t>(std::countr_zero(levels_mask_));
  slot = first_occupied(level);
  TCPPR_CHECK(slot < kSlots);
  return true;
}

std::optional<QueuedEvent> TimingWheelQueue::pop_min() {
  if (size_ == 0) return std::nullopt;
  if (wheel_size_ == 0) migrate_overflow();
  std::size_t level = 0;
  std::size_t slot = 0;
  const bool found = find_min_bucket(level, slot);
  TCPPR_CHECK(found);
  Bucket& b = bucket(level, slot);
  if (level == 0) {
    // A level-0 slot spans one tick: every event in it is simultaneous
    // and the vector is in insertion order, so front() is the FIFO min.
    const QueuedEvent event = b.events.front();
    b.events.erase(b.events.begin());
    if (b.events.empty()) unmark(0, slot);
    --wheel_size_;
    --size_;
    pos_ = std::max(pos_, event.time.as_nanos());
    return event;
  }
  // Extract-min cascade. The first occupied slot of the lowest occupied
  // level holds the global minimum: lower levels are empty, and earlier
  // slots of this level would lie behind pos_, which push() forbids. So
  // take the bucket minimum out directly and advance the position to its
  // time — not merely to the slot window start. Survivors then re-file
  // relative to the true front: a lone event cascades zero further times,
  // and clustered events drop straight to their final level instead of
  // stepping through every level in between. Same-tick survivors keep
  // their original vector order, so FIFO still holds when they land in a
  // level-0 bucket together.
  ++cascades_;
  std::size_t min_i = 0;
  for (std::size_t i = 1; i < b.events.size(); ++i) {
    if (b.events[i] < b.events[min_i]) min_i = i;
  }
  const QueuedEvent event = b.events[min_i];
  pos_ = event.time.as_nanos();
  scratch_.clear();
  scratch_.swap(b.events);
  unmark(level, slot);
  wheel_size_ -= scratch_.size();
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    // Every survivor shares byte `level` (the slot index) with the new
    // position, so it re-files at least one level down.
    if (i != min_i) insert(scratch_[i]);
  }
  scratch_.clear();
  --size_;
  return event;
}

std::optional<QueuedEvent> TimingWheelQueue::peek_min() {
  // Deliberately non-mutating (no cascade): run_until peeks past-deadline
  // minima and leaves them queued; advancing pos_ here would strand later
  // pushes between the deadline and that minimum behind the position.
  if (size_ == 0) return std::nullopt;
  if (wheel_size_ == 0) return overflow_.back();
  std::size_t level = 0;
  std::size_t slot = 0;
  const bool found = find_min_bucket(level, slot);
  TCPPR_CHECK(found);
  const Bucket& b = buckets_[level * kSlots + slot];
  if (level == 0) return b.events.front();
  const QueuedEvent* min_event = &b.events.front();
  for (const QueuedEvent& e : b.events) {
    if (e < *min_event) min_event = &e;
  }
  return *min_event;
}

void TimingWheelQueue::clear() {
  for (std::size_t level = 0; level < kLevels; ++level) {
    for (std::size_t w = 0; w < kSlots / 64; ++w) {
      std::uint64_t word = occupied_[level][w];
      while (word != 0) {
        const std::size_t slot =
            w * 64 + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        bucket(level, slot).events.clear();
      }
      occupied_[level][w] = 0;
    }
  }
  levels_mask_ = 0;
  overflow_.clear();
  wheel_size_ = 0;
  size_ = 0;
  // pos_ is kept: clear() discards stales mid-run, and the next push will
  // be at or after the scheduler's current time anyway.
}

}  // namespace tcppr::sim
