#include "sim/random.hpp"

#include <cmath>

#include "util/check.hpp"

namespace tcppr::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t salt) const {
  std::uint64_t mix = s_[0] ^ (salt * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull);
  return Rng(mix);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TCPPR_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  TCPPR_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::exponential(double mean) {
  TCPPR_DCHECK(mean > 0);
  double u = uniform();
  while (u == 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::normal() {
  // Box-Muller; u1 is kept away from 0 so the log stays finite.
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  TCPPR_DCHECK(sigma >= 0);
  return std::exp(mu + sigma * normal());
}

double Rng::pareto(double shape, double scale) {
  TCPPR_DCHECK(shape > 0);
  TCPPR_DCHECK(scale > 0);
  double u = uniform();
  while (u == 0.0) u = uniform();  // keep the tail finite
  return scale * std::pow(u, -1.0 / shape);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

int Rng::categorical(const double* weights, int n) {
  TCPPR_CHECK(n > 0);
  double total = 0;
  for (int i = 0; i < n; ++i) {
    TCPPR_DCHECK(weights[i] >= 0);
    total += weights[i];
  }
  TCPPR_CHECK(total > 0);
  double x = uniform() * total;
  for (int i = 0; i < n; ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return n - 1;  // Floating-point slack: land on the last bucket.
}

}  // namespace tcppr::sim
