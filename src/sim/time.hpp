// Simulation time.
//
// Time is kept as a signed 64-bit count of nanoseconds, which gives exact,
// platform-independent event ordering (a double-based clock, like ns-2's,
// accumulates rounding that can flip the order of near-simultaneous events
// between compilers). Duration and TimePoint are distinct types so that
// "add two timestamps" is a compile error.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace tcppr::sim {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(double u) {
    return Duration(static_cast<std::int64_t>(u * 1e3));
  }
  static constexpr Duration millis(double m) {
    return Duration(static_cast<std::int64_t>(m * 1e6));
  }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration infinite() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t as_nanos() const { return ns_; }
  constexpr double as_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double as_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.ns_ + b.ns_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.ns_ - b.ns_);
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(a.ns_) * k));
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, double k) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(a.ns_) / k));
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint from_seconds(double s) {
    return TimePoint(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr TimePoint from_nanos(std::int64_t ns) {
    return TimePoint(ns);
  }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t as_nanos() const { return ns_; }
  constexpr double as_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    // Saturate instead of overflowing when adding to/near the sentinel max.
    if (d.as_nanos() >= 0 &&
        t.ns_ > std::numeric_limits<std::int64_t>::max() - d.as_nanos()) {
      return TimePoint::max();
    }
    return TimePoint(t.ns_ + d.as_nanos());
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.ns_ - d.as_nanos());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace tcppr::sim
