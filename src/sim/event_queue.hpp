// Pending-event set implementations for the scheduler.
//
// BinaryHeapQueue is the default. CalendarQueue (R. Brown, CACM 1988) is
// the classic O(1)-amortized structure used by ns-2's scheduler; it wins
// when the event population is large and arrival times are roughly
// uniform, which is exactly a loaded packet simulation. Both order events
// by (time, insertion sequence) so simulations are backend-independent —
// a property the test suite checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace tcppr::sim {

struct QueuedEvent {
  TimePoint time;
  std::uint64_t seq = 0;  // insertion order; ties break FIFO
  std::uint64_t id = 0;

  friend bool operator<(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;
  virtual void push(const QueuedEvent& event) = 0;
  // Removes and returns the earliest event, or nullopt when empty.
  virtual std::optional<QueuedEvent> pop_min() = 0;
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }
};

class BinaryHeapQueue final : public EventQueue {
 public:
  void push(const QueuedEvent& event) override { heap_.push(event); }
  std::optional<QueuedEvent> pop_min() override;
  std::size_t size() const override { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      return b < a;
    }
  };
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later> heap_;
};

class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue();

  void push(const QueuedEvent& event) override;
  std::optional<QueuedEvent> pop_min() override;
  std::size_t size() const override { return size_; }

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  void insert(const QueuedEvent& event);
  std::size_t bucket_index(TimePoint t) const;
  void resize(std::size_t new_bucket_count);
  std::int64_t estimate_width() const;

  std::vector<std::vector<QueuedEvent>> buckets_;  // each kept sorted desc
  std::int64_t width_ns_ = 1'000'000;              // bucket width
  std::size_t current_ = 0;                        // cursor bucket
  std::int64_t year_start_ns_ = 0;  // time at bucket 0 of current round
  std::size_t size_ = 0;
  TimePoint last_popped_;
};

}  // namespace tcppr::sim
