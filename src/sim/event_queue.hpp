// Pending-event set implementations for the scheduler.
//
// HeapQueue (a cache-friendly 8-ary implicit heap) is the default.
// CalendarQueue (R. Brown, CACM 1988) is the classic O(1)-amortized
// structure used by ns-2's scheduler; it wins when the event population is
// large and arrival times are roughly uniform, which is exactly a loaded
// packet simulation. TimingWheelQueue (Varghese & Lauck, SOSP 1987) is the
// hierarchical timing wheel: O(1) insert at any horizon and O(levels)
// amortized extraction, the structure of choice when the timer population
// is dominated by per-flow deadline timers at many-flow scale. All three
// order events by (time, insertion sequence) so simulations are
// backend-independent — a property the test suite checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace tcppr::sim {

struct QueuedEvent {
  TimePoint time;
  std::uint64_t seq = 0;  // insertion order; ties break FIFO
  std::uint64_t id = 0;

  friend bool operator<(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;
  virtual void push(const QueuedEvent& event) = 0;
  // Removes and returns the earliest event, or nullopt when empty.
  virtual std::optional<QueuedEvent> pop_min() = 0;
  // Returns the earliest event without removing it, or nullopt when empty.
  // Non-const: the calendar queue advances its scan cursor while locating
  // the minimum (an immediately following pop_min is then O(1)).
  virtual std::optional<QueuedEvent> peek_min() = 0;
  // Discards all pending entries. The scheduler calls this when every
  // remaining entry is known to be a cancelled stale, so draining them one
  // pop at a time would be wasted sift work.
  virtual void clear() = 0;
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }
};

// Implicit d-ary min-heap (d = 8), stored as parallel key/payload arrays.
// The sift loops compare 8-byte time keys; the (seq, id) payload rides in a
// parallel array touched only on moves, and the FIFO tie-break consults seq
// only when two times are exactly equal (rare in a simulation where most
// events carry distinct transmission/propagation offsets). Logical node n
// lives at physical index n + 7 in a 64-byte-aligned buffer, so every
// 8-child sibling group occupies exactly one cache line: sift-down costs
// one cache-missing key line per level and the depth is log8 rather than
// log2 — the dominant cost at 10^5+ pending events.
//
// Monotone runs are recognized and kept flat: while pushes arrive in
// nondecreasing (time, seq) order — the shape of a bulk scheduling burst —
// the array simply stays sorted (O(1) append, no sifting) and pops stream
// from the front through a cursor with perfect locality. A sorted array is
// already a valid min-heap, so the first out-of-order push switches to heap
// mode for the cost of one compaction memmove; heap mode persists until the
// queue drains empty.
class HeapQueue final : public EventQueue {
 public:
  HeapQueue() = default;
  HeapQueue(const HeapQueue&) = delete;
  HeapQueue& operator=(const HeapQueue&) = delete;
  ~HeapQueue() override;

  void push(const QueuedEvent& event) override;
  std::optional<QueuedEvent> pop_min() override;
  std::optional<QueuedEvent> peek_min() override {
    if (count_ == 0) return std::nullopt;
    const std::size_t root = head_ + kPad;
    return QueuedEvent{TimePoint::from_nanos(keys_[root]), aux_[root].seq,
                       aux_[root].id};
  }
  void clear() override {
    count_ = 0;
    head_ = 0;
    sorted_ = true;
  }
  std::size_t size() const override { return count_; }

  // True while the queue is in the flat sorted-run representation (for
  // tests; callers cannot observe the mode through push/pop ordering).
  bool in_sorted_run() const { return sorted_; }

 private:
  static constexpr std::size_t kArity = 8;
  // Physical offset of the root: logical n maps to physical n + kPad, which
  // puts the children block {8n+1 .. 8n+8} at physical 8(n+1) — a cache
  // line boundary when the key buffer is 64-byte aligned.
  static constexpr std::size_t kPad = kArity - 1;

  struct Aux {
    std::uint64_t seq;
    std::uint64_t id;
  };

  // (time, seq) strict weak order over physical indices a, b.
  bool less(std::size_t a, std::size_t b) const {
    if (keys_[a] != keys_[b]) return keys_[a] < keys_[b];
    return aux_[a].seq < aux_[b].seq;
  }
  void grow();
  // Slides the live range back to logical 0 (heap root position).
  void compact();

  std::int64_t* keys_ = nullptr;  // time in ns; 64-byte aligned
  Aux* aux_ = nullptr;
  std::size_t count_ = 0;     // live entries
  std::size_t head_ = 0;      // logical index of the minimum; 0 in heap mode
  std::size_t capacity_ = 0;  // physical capacity beyond the pad
  bool sorted_ = true;        // flat sorted-run mode vs heap mode
};

class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue();

  void push(const QueuedEvent& event) override;
  std::optional<QueuedEvent> pop_min() override;
  std::optional<QueuedEvent> peek_min() override;
  void clear() override;
  std::size_t size() const override { return size_; }

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  void insert(const QueuedEvent& event);
  std::size_t bucket_index(TimePoint t) const;
  void resize(std::size_t new_bucket_count);
  std::int64_t estimate_width() const;
  // Advances the cursor to the bucket holding the global minimum and
  // returns that bucket (its back() is the minimum), or nullptr when
  // empty. Shared scan for pop_min/peek_min.
  std::vector<QueuedEvent>* find_min_bucket();
  // Re-seats the cursor at time t's bucket and year.
  void seat_cursor(TimePoint t);

  std::vector<std::vector<QueuedEvent>> buckets_;  // each kept sorted desc
  std::int64_t width_ns_ = 1'000'000;              // bucket width
  std::size_t current_ = 0;                        // cursor bucket
  std::int64_t year_start_ns_ = 0;  // time at bucket 0 of current round
  std::size_t size_ = 0;
  TimePoint last_popped_;
};

// Hierarchical timing wheel (Varghese & Lauck, SOSP 1987): kLevels wheels
// of 256 slots each, level L slots spanning 2^(8L) ns, for a total
// in-wheel horizon of 2^48 ns (~78 simulated hours) past the wheel's
// current position. An event lands at the level of the highest byte in
// which its time differs from the position, so insert is O(1): one bucket
// append plus one occupancy-bit set. Extraction scans the per-level
// 256-bit occupancy bitmaps for the lowest nonempty (level, slot); a hit
// above level 0 cascades — the bucket is redistributed one level down,
// amortizing to O(kLevels) bucket moves per event. Level-0 slots are one
// nanosecond wide, so a level-0 bucket holds only same-time events, and
// bucket order is insertion order: the (time, seq) FIFO contract falls out
// structurally instead of from comparisons.
//
// Events beyond the horizon overflow into a sorted run (descending, like a
// calendar bucket: the minimum pops from the back) and migrate into the
// wheel when it drains down to them. Pushes behind the wheel position —
// legal for the standalone structure after a stale entry beyond a
// run_until deadline was popped — trigger a full re-seat of the wheel at
// the earlier time; the scheduler's own schedule_at(t >= now) discipline
// makes this a cold path.
class TimingWheelQueue final : public EventQueue {
 public:
  static constexpr std::size_t kLevelBits = 8;
  static constexpr std::size_t kSlots = 1u << kLevelBits;  // 256
  static constexpr std::size_t kLevels = 6;
  // Ticks are nanoseconds; the wheel covers [pos, pos + kHorizonNs).
  static constexpr std::int64_t kHorizonNs =
      std::int64_t{1} << (kLevelBits * kLevels);
  static_assert(kSlots / 64 == 4, "unmark() unrolls four bitmap words");

  TimingWheelQueue();
  TimingWheelQueue(const TimingWheelQueue&) = delete;
  TimingWheelQueue& operator=(const TimingWheelQueue&) = delete;

  void push(const QueuedEvent& event) override;
  std::optional<QueuedEvent> pop_min() override;
  std::optional<QueuedEvent> peek_min() override;
  void clear() override;
  std::size_t size() const override { return size_; }

  // Introspection for tests.
  std::size_t overflow_size() const { return overflow_.size(); }
  std::uint64_t cascades() const { return cascades_; }
  std::uint64_t reseats() const { return reseats_; }

 private:
  struct Bucket {
    std::vector<QueuedEvent> events;
  };

  // Level of the highest byte in which tick differs from pos_ (0 when
  // equal); kLevels and above means "beyond the wheel horizon".
  std::size_t level_of(std::int64_t tick) const;
  Bucket& bucket(std::size_t level, std::size_t slot) {
    return buckets_[level * kSlots + slot];
  }
  void mark(std::size_t level, std::size_t slot) {
    occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
    levels_mask_ |= std::uint32_t{1} << level;
  }
  void unmark(std::size_t level, std::size_t slot) {
    occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    if ((occupied_[level][0] | occupied_[level][1] | occupied_[level][2] |
         occupied_[level][3]) == 0) {
      levels_mask_ &= ~(std::uint32_t{1} << level);
    }
  }
  // First occupied slot at `level`, or kSlots when the level is empty.
  std::size_t first_occupied(std::size_t level) const;
  // Files the event into its wheel bucket or the overflow run.
  void insert(const QueuedEvent& event);
  // Rebuilds the wheel around an earlier position (push behind pos_).
  void reseat(std::int64_t new_pos);
  // Re-seats the wheel at the overflow minimum and migrates every
  // overflow event now inside the horizon. Pre: wheel empty, overflow not.
  void migrate_overflow();
  // Lowest (level, slot) holding the wheel minimum; false when the wheel
  // part is empty.
  bool find_min_bucket(std::size_t& level, std::size_t& slot) const;

  std::vector<Bucket> buckets_;  // kLevels * kSlots, level-major
  std::uint64_t occupied_[kLevels][kSlots / 64] = {};
  std::uint32_t levels_mask_ = 0;  // bit L set <=> level L has a set bit
  std::int64_t pos_ = 0;  // wheel position: no pending event is earlier
  std::size_t wheel_size_ = 0;
  std::size_t size_ = 0;
  std::vector<QueuedEvent> overflow_;  // sorted descending; min at back
  std::vector<QueuedEvent> scratch_;   // cascade/reseat staging
  std::uint64_t cascades_ = 0;
  std::uint64_t reseats_ = 0;
};

}  // namespace tcppr::sim
