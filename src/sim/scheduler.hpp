// The discrete-event scheduler at the heart of the simulator.
//
// Events are callbacks ordered by (time, insertion sequence); ties break
// FIFO, which matches ns-2 semantics and keeps runs deterministic.
// Cancellation is lazy: cancel() removes the callback from the live map and
// stale queue entries are skipped on pop. The pending-event set is
// pluggable (binary heap by default, calendar queue like ns-2's scheduler
// for large event populations); see sim/event_queue.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace tcppr::sim {

// Opaque handle for a scheduled event; value 0 is "never scheduled".
struct EventId {
  std::uint64_t value = 0;
  constexpr bool valid() const { return value != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;
};

enum class SchedulerBackend { kBinaryHeap, kCalendarQueue };

class Scheduler {
 public:
  using Callback = std::function<void()>;

  explicit Scheduler(SchedulerBackend backend = SchedulerBackend::kBinaryHeap);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimePoint now() const { return now_; }

  // Schedules cb at absolute time t (>= now).
  EventId schedule_at(TimePoint t, Callback cb);
  // Schedules cb after delay d (>= 0).
  EventId schedule_in(Duration d, Callback cb);

  // Returns true if the event was pending and is now cancelled.
  bool cancel(EventId id);
  bool is_pending(EventId id) const;

  // Runs events until the queue drains or stop() is called.
  void run();
  // Runs events with time <= deadline; leaves later events queued and
  // advances now() to the deadline.
  void run_until(TimePoint deadline);
  // Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  std::size_t pending_count() const { return live_.size(); }
  std::uint64_t processed_count() const { return processed_; }

 private:
  // Pops the next live (non-cancelled) event, skipping stale entries.
  bool pop_next(QueuedEvent& out);

  TimePoint now_;
  bool stopped_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::unordered_map<std::uint64_t, Callback> live_;
};

// RAII one-shot timer bound to a scheduler: rescheduling cancels the
// previous shot; destruction cancels the pending shot.
class Timer {
 public:
  explicit Timer(Scheduler& sched) : sched_(sched), id_{} {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void schedule_at(TimePoint t, Scheduler::Callback cb) {
    cancel();
    id_ = sched_.schedule_at(t, std::move(cb));
  }
  void schedule_in(Duration d, Scheduler::Callback cb) {
    cancel();
    id_ = sched_.schedule_in(d, std::move(cb));
  }
  void cancel() {
    // GCC 12 reports a spurious -Wmaybe-uninitialized for id_ when this is
    // inlined into deeply nested test bodies; id_ is initialized in every
    // constructor path.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = EventId{};
    }
#pragma GCC diagnostic pop
  }
  bool pending() const { return id_.valid() && sched_.is_pending(id_); }

 private:
  Scheduler& sched_;
  EventId id_{};
};

}  // namespace tcppr::sim
