// The discrete-event scheduler at the heart of the simulator.
//
// Events are callbacks ordered by (time, insertion sequence); ties break
// FIFO, which matches ns-2 semantics and keeps runs deterministic.
//
// Storage is a generation-tagged slot arena: each event occupies a slot in
// a free-list vector, the callback lives in the slot with small-buffer
// optimization (no allocation for captures up to kCallbackInlineBytes), and
// EventId packs {slot index, generation}. schedule/cancel/is_pending and
// the liveness check on pop are all O(1) array indexing — no hashing, no
// node allocation. A slot's generation bumps on release, so a stale
// EventId held across slot reuse is rejected instead of hitting the new
// occupant. Cancellation is lazy: the slot is released immediately and the
// queue entry is skipped on pop. The pending-event set is pluggable
// (binary heap by default, calendar queue like ns-2's scheduler for large
// event populations, hierarchical timing wheel for many-flow timer
// workloads); see sim/event_queue.hpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"
#include "util/inline_function.hpp"
#include "util/state_io.hpp"

namespace tcppr::sim {

// Opaque handle for a scheduled event; value 0 is "never scheduled".
// Internally packs {generation (high 32 bits), slot index (low 32 bits)};
// generations start at 1 so a live id is never 0.
struct EventId {
  std::uint64_t value = 0;
  constexpr bool valid() const { return value != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;
};

enum class SchedulerBackend { kBinaryHeap, kCalendarQueue, kTimingWheel };

class Scheduler {
 public:
  // Captures up to this size are stored inside the event slot; larger ones
  // fall back to one heap allocation. 48 bytes covers `this` plus a pooled
  // packet handle plus a word to spare — every hot-path event in the
  // simulator fits.
  static constexpr std::size_t kCallbackInlineBytes = 48;
  using Callback = util::InlineFunction<void(), kCallbackInlineBytes>;

  explicit Scheduler(SchedulerBackend backend = SchedulerBackend::kBinaryHeap);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  TimePoint now() const { return now_; }

  // Schedules cb at absolute time t (>= now). Templated so the callable is
  // constructed directly inside the event slot (no temporary wrapper).
  // Illegal on a stamped shard (stamps need an owner — use *_for).
  template <typename F>
  EventId schedule_at(TimePoint t, F&& f) {
    TCPPR_CHECK(!stamping_);
    return schedule_with_seq(t, next_seq_++, std::forward<F>(f));
  }
  // Schedules cb after delay d (>= 0).
  template <typename F>
  EventId schedule_in(Duration d, F&& f) {
    return schedule_at(delay_to_time(d), std::forward<F>(f));
  }
  // Owner-attributed variants: identical to schedule_at/in on an
  // unstamped scheduler (the entity is ignored); on a stamped shard the
  // entity keys the tie-break stamp. The entity is the node the minting
  // component belongs to — a link's source node, a sender's host.
  template <typename F>
  EventId schedule_at_for(TimePoint t, std::uint32_t entity, F&& f) {
    return schedule_with_seq(t, stamping_ ? make_stamp(entity) : next_seq_++,
                             std::forward<F>(f));
  }
  template <typename F>
  EventId schedule_in_for(Duration d, std::uint32_t entity, F&& f) {
    return schedule_at_for(delay_to_time(d), entity, std::forward<F>(f));
  }
  // Schedules cb at t with a caller-provided tie-break sequence. The
  // parallel engine uses this to inject cross-shard events carrying the
  // stamp minted on the source shard, so same-time ties resolve in the
  // canonical (schedule-time, owner node, op) order regardless of which
  // shard the event lands on.
  template <typename F>
  EventId schedule_at_stamped(TimePoint t, std::uint64_t seq, F&& f) {
    return schedule_with_seq(t, seq, std::forward<F>(f));
  }

  // --- Parallel-execution support (LP shards) ---------------------------
  //
  // In stamped mode every scheduling operation mints a 64-bit stamp
  //   (current time ns + 1) << 24 | owner node << 10 | per-(node, time) idx
  // used as the event's tie-break sequence, giving same-target-time events
  // the canonical total order (target time, schedule time, owner node, op
  // index). Every component's ops execute on the shard owning its node, so
  // the per-node index needs no synchronization — and the order is
  // independent of how nodes are grouped into shards: the same simulation
  // stamped on 1, 2 or 8 shards executes byte-identically. The legacy
  // unstamped order (global insertion counter) coincides with stamp order
  // except when two different nodes schedule events for the same target
  // time within the same nanosecond; the canonical order breaks that tie
  // by node id, the legacy order by which op ran first.
  //
  // The +1 shift reserves the stamp range [0, 2^24) — "schedule time"
  // before the simulation's first nanosecond — for build-time events
  // adopted into shards before the run (harness/parallel_run.cpp stamps
  // them with a plain build-order counter via schedule_at_stamped). They
  // sort below every runtime stamp, exactly where the sequential
  // scheduler's insertion order put them, and a scenario may carry up to
  // 2^24 of them without touching the per-(node, ns) op budget.
  static constexpr std::uint32_t kStampOpBits = 10;      // 1024 ops/node/ns
  static constexpr std::uint32_t kStampEntityBits = 14;  // 16384 nodes
  static constexpr std::uint32_t kStampTimeBits =
      64 - kStampOpBits - kStampEntityBits;  // ~1100 s of simulated time

  void enable_seq_stamping() {
    stamping_ = true;
    stamp_slots_.clear();
  }
  bool stamping() const { return stamping_; }
  // Mints the next stamp for `entity` at the current time. Public because
  // the cross-LP link path consumes a stamp at push time (the op position
  // its sequential delivery-schedule op would have occupied).
  std::uint64_t make_stamp(std::uint32_t entity) {
    TCPPR_DCHECK(stamping_);
    TCPPR_CHECK(entity < (1u << kStampEntityBits));
    if (entity >= stamp_slots_.size()) {
      stamp_slots_.resize(entity + 1, StampSlot{-1, 0});
    }
    StampSlot& slot = stamp_slots_[entity];
    const std::int64_t u = now_.as_nanos() + 1;  // 0 = pre-run (see above)
    if (u != slot.time_ns) {
      slot.time_ns = u;
      slot.count = 0;
    }
    TCPPR_CHECK(u >= 1 && u < (std::int64_t{1} << kStampTimeBits));
    TCPPR_CHECK(slot.count < (1u << kStampOpBits));
    return (static_cast<std::uint64_t>(u)
            << (kStampOpBits + kStampEntityBits)) |
           (static_cast<std::uint64_t>(entity) << kStampOpBits) |
           slot.count++;
  }
  // Sequence of the event currently executing (0 outside fire). The
  // parallel engine keys buffered trace records on it so barrier merges
  // replay records in the same order the sequential run emitted them.
  std::uint64_t current_event_seq() const { return current_event_seq_; }

  // --- Batched hot-path support (net::LinkPump) -------------------------
  //
  // The link pump keys packet ops (transmission completions, deliveries)
  // with the exact (time, seq) their dedicated scheduler events would have
  // carried, parks ONE event at the earliest key, and on fire executes
  // every consecutive op the scheduler would have run back to back anyway.
  // These three hooks are what that requires: minting a sequence without
  // scheduling, asking whether an op may ride the current event, and
  // advancing the clock to an op's key mid-event.

  // Mints the tie-break sequence the next schedule_at_for(entity) call
  // would consume, without scheduling anything. An op keyed with it and
  // executed at that key is indistinguishable from the event it replaces.
  std::uint64_t mint_seq(std::uint32_t entity) {
    return stamping_ ? make_stamp(entity) : next_seq_++;
  }
  // True when an op keyed (t, seq) would execute next if the current event
  // returned: it precedes every pending live event and does not cross the
  // active run limit (run_until deadline / run_until_before horizon) or a
  // stop() request. Lazily pops cancelled entries at the queue front, like
  // next_deadline().
  bool would_fire_next(TimePoint t, std::uint64_t seq);
  // Moves the clock and current-event sequence to a batched op's key while
  // an event executes. Only legal when would_fire_next(t, seq) held for a
  // key at or after the current position; fire() still resets the
  // current-event sequence when the hosting event returns.
  void advance_batched_op(TimePoint t, std::uint64_t seq) {
    TCPPR_DCHECK(t >= now_);
    now_ = t;
    current_event_seq_ = seq;
    last_exec_seq_ = seq;
    if (count_entity_fires_) note_entity_fire(seq);
  }

  // --- Bounded-optimism support (speculative execution + rollback) ------
  //
  // An event is *replay-safe* when its callback can be regenerated purely
  // from component state: DeadlineTimer physical shots, link-pump parked
  // events and cross-LP injection pops re-arm themselves from serialized
  // state after a rollback, so a checkpoint taken while only such events
  // are pending can be restored exactly. Raw Timer shots capture arbitrary
  // (often consuming) lambdas and are not regenerable — an LP with one
  // pending simply skips speculation that window. The flag lives in the
  // slot's next_free field, which is unused while the slot is live.

  // Marks a pending event as regenerable-from-state. No-op on a stale id.
  void mark_replay_safe(EventId id) {
    if (!is_live(id.value)) return;
    Slot& s = slot(slot_of(id.value));
    if (s.next_free == 0) {
      s.next_free = 1;
      ++safe_count_;
    }
  }
  // True when every pending live event is replay-safe — the gate for
  // taking a checkpoint this window.
  bool all_pending_replay_safe() const { return safe_count_ == live_count_; }

  // Everything restore() needs besides the events themselves (which are
  // regenerated by the components): clock, sequence counters and the
  // per-entity stamp mint state, so replayed events re-mint byte-identical
  // stamps.
  struct Checkpoint {
    TimePoint now;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
    std::size_t stamp_slot_count = 0;
  };
  // Captures scalar state into `cp` and appends the live stamp slots to
  // `slots` (reused across windows to avoid per-checkpoint allocation).
  void checkpoint(Checkpoint& cp, std::vector<std::pair<std::int64_t,
                                                        std::uint32_t>>& slots) const {
    cp.now = now_;
    cp.next_seq = next_seq_;
    cp.processed = processed_;
    cp.stamp_slot_count = stamp_slots_.size();
    slots.clear();
    slots.reserve(stamp_slots_.size());
    for (const StampSlot& s : stamp_slots_) slots.emplace_back(s.time_ns, s.count);
  }
  // Rolls the scheduler back to `cp`: destroys EVERY pending event (live
  // and stale), invalidates all outstanding EventIds, and restores the
  // clock/counters/stamp mint state. The caller then re-creates the
  // pending set from restored component state.
  void restore(const Checkpoint& cp,
               const std::vector<std::pair<std::int64_t, std::uint32_t>>& slots);

  // Result of one speculative leg: events fired past the safe horizon and
  // the key of the furthest one (valid when `events > 0`).
  struct SpecResult {
    std::uint64_t events = 0;
    TimePoint last_time;
    std::uint64_t last_seq = 0;
  };
  // Runs events with key (time, seq) strictly below (bound, 0). Unlike
  // run_until_before the clock is NOT advanced to the bound afterwards:
  // it stays at the last fired event so a later rollback/commit sees the
  // true execution point and barrier injections at >= now() stay legal.
  SpecResult run_speculative_before(TimePoint bound);

  // Tie-break sequence minted by the most recent schedule_* call. A
  // DeadlineTimer records it so a rollback can re-seat its physical shot
  // with the identical (time, seq) key.
  std::uint64_t last_scheduled_seq() const { return last_scheduled_seq_; }

  // --- Adaptive repartitioning support ----------------------------------
  //
  // Per-entity fired-event counts, harvested from the owner bits of
  // runtime stamps. The measured weights drive the adaptive partitioner;
  // counting is off unless enabled (one branch + indexed add per event).
  void enable_entity_fire_counts() { count_entity_fires_ = true; }
  const std::vector<std::uint64_t>& entity_fires() const {
    return entity_fires_;
  }
  void reset_entity_fires() {
    std::fill(entity_fires_.begin(), entity_fires_.end(), 0);
  }

  // Returns true if the event was pending and is now cancelled.
  bool cancel(EventId id);
  bool is_pending(EventId id) const;

  // Runs events until the queue drains or stop() is called.
  void run();
  // Runs events with time <= deadline; leaves later events queued and
  // advances now() to the deadline.
  void run_until(TimePoint deadline);
  // Runs events with time strictly < horizon; leaves events at or after
  // the horizon queued and advances now() to the horizon. The parallel
  // engine's safe windows are exclusive so every event at exactly the
  // horizon — local or injected at the barrier — executes in the next
  // window, in merged stamp order.
  void run_until_before(TimePoint horizon);
  // Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  // Earliest pending live event time, or nullopt when none. Lazily pops
  // cancelled stale entries encountered at the front so the reported
  // minimum is never a cancelled shot (an under-estimate here would
  // shrink the parallel engine's safe horizon but a stale *earlier* than
  // every live event would stall it at a fake deadline).
  std::optional<TimePoint> next_deadline();

  std::size_t pending_count() const { return live_count_; }
  std::uint64_t processed_count() const { return processed_; }
  // Entries in the pending-event set, including lazily-cancelled stales —
  // the population the backend actually pays for. pending_count() <=
  // queued_count(); the gap is the stale load cancellation churn creates.
  std::size_t queued_count() const { return queue_->size(); }

 private:
  template <typename F>
  EventId schedule_with_seq(TimePoint t, std::uint64_t seq, F&& f) {
    std::uint32_t index = acquire_slot(t);
    Slot& s = slot(index);
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      s.cb = std::forward<F>(f);
      TCPPR_CHECK(static_cast<bool>(s.cb));
    } else {
      s.cb.emplace(std::forward<F>(f));
    }
    ++live_count_;
    last_scheduled_seq_ = seq;
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(s.generation) << 32) | index;
    queue_->push(QueuedEvent{t, seq, packed});
    return EventId{packed};
  }

  // Attributes a fired runtime stamp to its owner entity (build-time
  // stamps carry no owner and are skipped).
  void note_entity_fire(std::uint64_t seq) {
    if (seq < (std::uint64_t{1} << (kStampOpBits + kStampEntityBits))) return;
    const auto entity = static_cast<std::uint32_t>(
        (seq >> kStampOpBits) & ((1u << kStampEntityBits) - 1));
    if (entity >= entity_fires_.size()) entity_fires_.resize(entity + 1, 0);
    ++entity_fires_[entity];
  }

  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;
  // Slots live in fixed-size chunks with stable addresses: growing the
  // arena never relocates live callbacks (a relocation would be an
  // indirect call per slot), and a burst of 10^5 events costs a handful of
  // chunk allocations instead of log2(n) vector regrowths. Chunks are raw
  // 64-byte-aligned storage; a slot is placement-constructed the first
  // time its index is handed out, so allocating a chunk never touches its
  // 64 KiB up front.
  static constexpr std::uint32_t kChunkShift = 10;  // 1024 slots per chunk
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

  // A slot is exactly one cache line: 56-byte SBO callback + generation +
  // free-list link. `live` is implicit — a slot is live iff its callback
  // is engaged.
  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kFreeListEnd;
  };
  static_assert(sizeof(Slot) == 64);

  static constexpr std::uint32_t slot_of(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed);
  }
  static constexpr std::uint32_t generation_of(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed >> 32);
  }

  Slot& slot(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSlots - 1)];
  }
  const Slot& slot(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSlots - 1)];
  }

  bool is_live(std::uint64_t packed) const {
    const std::uint32_t index = slot_of(packed);
    if (index >= slot_count_) return false;
    const Slot& s = slot(index);
    return s.generation == generation_of(packed) && static_cast<bool>(s.cb);
  }

  // Pops a slot off the free list (or grows the arena) after validating
  // the schedule time; the caller fills in the callback.
  std::uint32_t acquire_slot(TimePoint t);
  // Validates the delay and converts it to an absolute time.
  TimePoint delay_to_time(Duration d) const;
  // Returns the slot to the free list and invalidates outstanding ids.
  void release_slot(std::uint32_t index);
  // Executes the event's callback in place and frees its slot.
  void fire(const QueuedEvent& event);

  // Active run-loop bound, mirrored here so would_fire_next() can refuse
  // ops the hosting loop would not reach: run() clears it, run_until(d) is
  // inclusive at d, run_until_before(h) is exclusive at h.
  enum class RunLimit : std::uint8_t { kNone, kInclusive, kExclusive };

  TimePoint now_;
  bool stopped_ = false;
  RunLimit run_limit_ = RunLimit::kNone;
  TimePoint run_limit_time_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stamping_ = false;
  struct StampSlot {
    std::int64_t time_ns;
    std::uint32_t count;
  };
  std::vector<StampSlot> stamp_slots_;  // indexed by owner entity (node id)
  std::uint64_t current_event_seq_ = 0;
  std::size_t live_count_ = 0;
  std::size_t safe_count_ = 0;  // live events marked replay-safe
  std::uint64_t last_scheduled_seq_ = 0;
  std::uint64_t last_exec_seq_ = 0;  // furthest executed key (spec runs)
  bool count_entity_fires_ = false;
  std::vector<std::uint64_t> entity_fires_;
  std::unique_ptr<EventQueue> queue_;
  std::vector<Slot*> chunks_;  // raw aligned storage, lazily constructed
  std::uint32_t slot_count_ = 0;  // high-water mark of constructed slots
  std::uint32_t free_head_ = kFreeListEnd;
};

// RAII one-shot timer bound to a scheduler: rescheduling cancels the
// previous shot; destruction cancels the pending shot.
class Timer {
 public:
  explicit Timer(Scheduler& sched) : sched_(&sched), id_{} {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // Re-points the timer at another scheduler (LP shard adoption). Only
  // legal while no shot is pending — a pending id would dangle into the
  // old scheduler's arena.
  void rebind(Scheduler& sched) {
    TCPPR_CHECK(!id_.valid());
    sched_ = &sched;
  }
  // Sets the owner entity stamped onto every shot (the timer's node).
  // Required before scheduling on a stamped shard; a no-op otherwise.
  void set_stamp_entity(std::uint32_t entity) { stamp_entity_ = entity; }

  template <typename F>
  void schedule_at(TimePoint t, F&& f) {
    cancel();
    id_ = sched_->schedule_at_for(t, stamp_entity_, std::forward<F>(f));
  }
  template <typename F>
  void schedule_in(Duration d, F&& f) {
    cancel();
    id_ = sched_->schedule_in_for(d, stamp_entity_, std::forward<F>(f));
  }
  void cancel() {
    // GCC 12 reports a spurious -Wmaybe-uninitialized for id_ when this is
    // inlined into deeply nested test bodies; id_ is initialized in every
    // constructor path. Still reproduces with the slot-arena EventId
    // (verified against GCC 12.2), so the suppression is gated on exactly
    // that major version — revisit when the toolchain moves past 12.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
    if (id_.valid()) {
      sched_->cancel(id_);
      id_ = EventId{};
    }
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic pop
#endif
  }
  bool pending() const { return id_.valid() && sched_->is_pending(id_); }

  // Rollback support: the scheduler's pending set was cleared wholesale
  // (Scheduler::restore), so drop the now-meaningless id without a cancel
  // round. Raw Timer shots are not regenerable — the all_pending_replay_safe
  // gate guarantees none was pending at the checkpoint.
  void reset_for_restore() { id_ = EventId{}; }

  // Mid-run shard migration: re-point with the old id already stale (the
  // previous shard's pending set was destroyed). The migration gate
  // guarantees no shot was pending.
  void rebind_for_migration(Scheduler& sched) {
    id_ = EventId{};
    sched_ = &sched;
  }

  // Checkpoint visitor: a raw Timer carries no serializable shot (the
  // speculation gate guarantees none is pending when a checkpoint is
  // taken), so saving just asserts that and restoring drops the stale id.
  void state(util::StateIO& io) {
    if (io.saving()) {
      TCPPR_CHECK(!pending());
    } else {
      reset_for_restore();
    }
  }

 private:
  Scheduler* sched_;
  EventId id_{};
  std::uint32_t stamp_entity_ = 0;
};

// Coalesced deadline timer: a fixed callback armed against a movable
// deadline, designed for the TCP pattern "re-arm on every ack". A plain
// Timer turns each re-arm into cancel + schedule; with lazy cancellation
// every cancel leaves a stale entry in the pending-event set, so a flow
// re-arming per ack carries O(acks-per-RTT) stale entries instead of one.
// DeadlineTimer keeps at most ONE physical event alive and never cancels
// it when the deadline moves later (the overwhelmingly common direction —
// deadlines track the head-of-line send time, which only advances): the
// old shot fires early, notices the target moved, and silently reschedules
// itself at the current target. Only a deadline moving *earlier* (rare:
// e.g. an RTT-estimate decay) pays a cancel. Net effect: pending-event
// population scales with flows, not packets-in-flight, and the callback
// still runs at exactly the armed deadline.
class DeadlineTimer {
 public:
  template <typename F>
  DeadlineTimer(Scheduler& sched, F&& f)
      : sched_(&sched), cb_(std::forward<F>(f)) {}
  ~DeadlineTimer() { cancel(); }
  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  // Re-points at another scheduler; only legal while disarmed with no
  // physical shot in flight (LP shard adoption happens before the run).
  void rebind(Scheduler& sched) {
    TCPPR_CHECK(!armed_ && !id_.valid());
    sched_ = &sched;
  }
  // Sets the owner entity stamped onto every shot (the timer's node).
  void set_stamp_entity(std::uint32_t entity) { stamp_entity_ = entity; }

  // Arms (or re-arms) the callback to run at `deadline`. Clamped to now()
  // if in the past. Keeps the in-flight physical event whenever it already
  // fires at or before the new deadline.
  void arm(TimePoint deadline) {
    target_ = deadline;
    armed_ = true;
    if (id_.valid()) {
      if (scheduled_at_ <= deadline) return;  // early shot defers on fire
      sched_->cancel(id_);
    }
    schedule_physical(deadline);
  }

  // Hard cancel: the physical event is removed (lazily, like Timer), so
  // a cancelled DeadlineTimer holds no live event and cannot fire.
  void cancel() {
    armed_ = false;
    if (id_.valid()) {
      sched_->cancel(id_);
      id_ = EventId{};
    }
  }

  // Logical armed state: true iff the callback will run (at deadline()).
  bool armed() const { return armed_; }
  TimePoint deadline() const { return target_; }
  // True while a physical scheduler event exists (for tests; one per armed
  // timer by construction).
  bool physically_scheduled() const {
    return id_.valid() && sched_->is_pending(id_);
  }

  // Checkpoint/restore + shard migration. The physical shot is regenerated
  // from (scheduled_at, shot_seq) via schedule_at_stamped, so a replayed
  // or migrated run keeps the byte-identical (time, seq) execution key.
  struct SavedState {
    bool armed = false;
    bool has_shot = false;
    TimePoint scheduled_at;
    TimePoint target;
    std::uint64_t shot_seq = 0;
  };
  SavedState save() const {
    return SavedState{armed_, id_.valid(), scheduled_at_, target_, shot_seq_};
  }
  // Only legal after Scheduler::restore() (rollback) or a migration drain
  // cleared the pending set — the stale id is dropped, not cancelled.
  void restore(const SavedState& st) {
    id_ = EventId{};
    armed_ = st.armed;
    target_ = st.target;
    scheduled_at_ = st.scheduled_at;
    shot_seq_ = st.shot_seq;
    if (st.has_shot) {
      id_ = sched_->schedule_at_stamped(scheduled_at_, shot_seq_,
                                        [this] { on_fire(); });
      sched_->mark_replay_safe(id_);
    }
  }
  // Re-points at the shard that now owns this timer's node; pair with
  // save()/restore() across the migration barrier.
  void rebind_for_migration(Scheduler& sched) {
    id_ = EventId{};
    sched_ = &sched;
  }

  // Checkpoint visitor: restore re-seats the physical shot, so the owning
  // scheduler must already be restored (clock + stamp state) when this
  // runs in restore direction.
  void state(util::StateIO& io) {
    SavedState st = save();
    io.pod(st);
    if (!io.saving()) restore(st);
  }

 private:
  void schedule_physical(TimePoint t) {
    scheduled_at_ = std::max(t, sched_->now());
    id_ = sched_->schedule_at_for(scheduled_at_, stamp_entity_,
                                  [this] { on_fire(); });
    shot_seq_ = sched_->last_scheduled_seq();
    sched_->mark_replay_safe(id_);
  }
  void on_fire() {
    id_ = EventId{};
    if (target_ > sched_->now()) {
      // Deferred: the deadline moved later after this shot was scheduled.
      schedule_physical(target_);
      return;
    }
    armed_ = false;  // before cb_ so the callback may re-arm
    cb_();
  }

  Scheduler* sched_;
  Scheduler::Callback cb_;
  EventId id_{};
  TimePoint scheduled_at_;  // time of the physical event behind id_
  TimePoint target_;        // armed deadline (>= scheduled_at_ when live)
  std::uint64_t shot_seq_ = 0;  // (time, seq) key of the physical shot
  bool armed_ = false;
  std::uint32_t stamp_entity_ = 0;
};

}  // namespace tcppr::sim
