#include "sim/scheduler.hpp"

#include <new>
#include <utility>

#include "util/check.hpp"

namespace tcppr::sim {

Scheduler::Scheduler(SchedulerBackend backend) {
  switch (backend) {
    case SchedulerBackend::kBinaryHeap:
      queue_ = std::make_unique<HeapQueue>();
      break;
    case SchedulerBackend::kCalendarQueue:
      queue_ = std::make_unique<CalendarQueue>();
      break;
    case SchedulerBackend::kTimingWheel:
      queue_ = std::make_unique<TimingWheelQueue>();
      break;
  }
  TCPPR_CHECK(queue_ != nullptr);
}

Scheduler::~Scheduler() {
  for (std::uint32_t i = 0; i < slot_count_; ++i) slot(i).~Slot();
  for (Slot* chunk : chunks_) {
    ::operator delete(chunk, std::align_val_t{64});
  }
}

std::uint32_t Scheduler::acquire_slot(TimePoint t) {
  TCPPR_CHECK(t >= now_);
  std::uint32_t index;
  if (free_head_ != kFreeListEnd) {
    index = free_head_;
    free_head_ = slot(index).next_free;
  } else {
    TCPPR_CHECK(slot_count_ < kFreeListEnd);
    if (slot_count_ == chunks_.size() * kChunkSlots) {
      chunks_.push_back(static_cast<Slot*>(::operator new(
          sizeof(Slot) * kChunkSlots, std::align_val_t{64})));
    }
    index = slot_count_++;
    ::new (static_cast<void*>(&slot(index))) Slot();
  }
  slot(index).next_free = 0;  // replay-safe flag, cleared until marked
  return index;
}

TimePoint Scheduler::delay_to_time(Duration d) const {
  TCPPR_CHECK(d >= Duration::zero());
  return now_ + d;
}

void Scheduler::release_slot(std::uint32_t index) {
  Slot& s = slot(index);
  if (s.next_free == 1) --safe_count_;
  s.cb.reset();
  if (++s.generation == 0) s.generation = 1;  // keep packed ids non-zero
  s.next_free = free_head_;
  free_head_ = index;
  --live_count_;
}

bool Scheduler::cancel(EventId id) {
  if (!is_live(id.value)) return false;
  release_slot(slot_of(id.value));
  return true;
}

bool Scheduler::is_pending(EventId id) const { return is_live(id.value); }

void Scheduler::fire(const QueuedEvent& event) {
  const std::uint32_t index = slot_of(event.id);
  Slot& s = slot(index);
  // Invalidate outstanding ids before invoking, but keep the slot off the
  // free list until the callback returns: chunk addresses are stable, so
  // the callback runs in place, and new events it schedules can never be
  // handed this slot while it executes.
  if (++s.generation == 0) s.generation = 1;
  if (s.next_free == 1) {
    --safe_count_;
    s.next_free = 0;
  }
  --live_count_;
  ++processed_;
  now_ = event.time;
  current_event_seq_ = event.seq;
  last_exec_seq_ = event.seq;
  if (count_entity_fires_) note_entity_fire(event.seq);
  s.cb();
  current_event_seq_ = 0;
  s.cb.reset();
  s.next_free = free_head_;
  free_head_ = index;
}

bool Scheduler::would_fire_next(TimePoint t, std::uint64_t seq) {
  if (stopped_) return false;
  switch (run_limit_) {
    case RunLimit::kNone:
      break;
    case RunLimit::kInclusive:
      if (t > run_limit_time_) return false;
      break;
    case RunLimit::kExclusive:
      if (t >= run_limit_time_) return false;
      break;
  }
  for (;;) {
    if (live_count_ == 0) return true;
    const auto next = queue_->peek_min();
    if (!next) return true;
    if (!is_live(next->id)) {
      queue_->pop_min();
      continue;
    }
    return t < next->time || (t == next->time && seq < next->seq);
  }
}

void Scheduler::run() {
  stopped_ = false;
  run_limit_ = RunLimit::kNone;
  while (!stopped_) {
    if (live_count_ == 0) {
      // Everything still queued is a cancelled stale; popping each one
      // through the sift machinery would be wasted work.
      queue_->clear();
      break;
    }
    const auto event = queue_->pop_min();
    if (!event) break;
    if (!is_live(event->id)) continue;  // cancelled: stale queue entry
    fire(*event);
  }
}

void Scheduler::run_until(TimePoint deadline) {
  stopped_ = false;
  run_limit_ = RunLimit::kInclusive;
  run_limit_time_ = deadline;
  while (!stopped_) {
    if (live_count_ == 0) {
      queue_->clear();
      break;
    }
    const auto next = queue_->peek_min();
    if (!next) break;
    if (!is_live(next->id)) {
      // Cancelled: drop the stale entry even when it lies past the
      // deadline; peeking it again every window would be wasted work.
      queue_->pop_min();
      continue;
    }
    if (next->time > deadline) break;  // stays queued — peek, don't pop
    const auto event = queue_->pop_min();
    fire(*event);
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_until_before(TimePoint horizon) {
  stopped_ = false;
  run_limit_ = RunLimit::kExclusive;
  run_limit_time_ = horizon;
  while (!stopped_) {
    if (live_count_ == 0) {
      queue_->clear();
      break;
    }
    const auto next = queue_->peek_min();
    if (!next) break;
    if (!is_live(next->id)) {
      queue_->pop_min();
      continue;
    }
    if (next->time >= horizon) break;  // exclusive: horizon events wait
    const auto event = queue_->pop_min();
    fire(*event);
  }
  if (now_ < horizon) now_ = horizon;
}

Scheduler::SpecResult Scheduler::run_speculative_before(TimePoint bound) {
  stopped_ = false;
  run_limit_ = RunLimit::kExclusive;
  run_limit_time_ = bound;
  SpecResult result;
  while (!stopped_) {
    if (live_count_ == 0) {
      queue_->clear();
      break;
    }
    const auto next = queue_->peek_min();
    if (!next) break;
    if (!is_live(next->id)) {
      queue_->pop_min();
      continue;
    }
    if (next->time >= bound) break;
    const auto event = queue_->pop_min();
    fire(*event);
    ++result.events;
    // A batched event may have advanced the clock past its own key while
    // draining pump ops (advance_batched_op tracks it in last_exec_seq_);
    // the furthest executed key is what the commit fixpoint compares
    // stragglers against.
    result.last_time = now_;
    result.last_seq = last_exec_seq_;
  }
  // Deliberately no `now_ = bound` here: the clock stays at the last fired
  // event so rollback restores an honest execution point and barrier
  // injections at >= now() remain legal.
  return result;
}

void Scheduler::restore(
    const Checkpoint& cp,
    const std::vector<std::pair<std::int64_t, std::uint32_t>>& slots) {
  // Destroy every pending event — live or lazily-cancelled stale — and
  // rebuild the free list from scratch. Generations bump so every
  // outstanding EventId goes stale instead of resolving to a reused slot.
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    Slot& s = slot(i);
    s.cb.reset();
    if (++s.generation == 0) s.generation = 1;
  }
  free_head_ = kFreeListEnd;
  for (std::uint32_t i = slot_count_; i-- > 0;) {
    Slot& s = slot(i);
    s.next_free = free_head_;
    free_head_ = i;
  }
  queue_->clear();
  live_count_ = 0;
  safe_count_ = 0;
  now_ = cp.now;
  next_seq_ = cp.next_seq;
  processed_ = cp.processed;
  current_event_seq_ = 0;
  stamp_slots_.clear();
  stamp_slots_.reserve(cp.stamp_slot_count);
  for (std::size_t i = 0; i < cp.stamp_slot_count; ++i) {
    stamp_slots_.push_back(StampSlot{slots[i].first, slots[i].second});
  }
}

std::optional<TimePoint> Scheduler::next_deadline() {
  if (live_count_ == 0) {
    queue_->clear();
    return std::nullopt;
  }
  for (;;) {
    const auto next = queue_->peek_min();
    if (!next) return std::nullopt;
    if (is_live(next->id)) return next->time;
    queue_->pop_min();
  }
}

}  // namespace tcppr::sim
