#include "sim/scheduler.hpp"

#include <utility>

#include "util/check.hpp"

namespace tcppr::sim {

Scheduler::Scheduler(SchedulerBackend backend) {
  switch (backend) {
    case SchedulerBackend::kBinaryHeap:
      queue_ = std::make_unique<BinaryHeapQueue>();
      break;
    case SchedulerBackend::kCalendarQueue:
      queue_ = std::make_unique<CalendarQueue>();
      break;
  }
  TCPPR_CHECK(queue_ != nullptr);
}

EventId Scheduler::schedule_at(TimePoint t, Callback cb) {
  TCPPR_CHECK(t >= now_);
  TCPPR_CHECK(cb != nullptr);
  const std::uint64_t id = next_id_++;
  queue_->push(QueuedEvent{t, next_seq_++, id});
  live_.emplace(id, std::move(cb));
  return EventId{id};
}

EventId Scheduler::schedule_in(Duration d, Callback cb) {
  TCPPR_CHECK(d >= Duration::zero());
  return schedule_at(now_ + d, std::move(cb));
}

bool Scheduler::cancel(EventId id) { return live_.erase(id.value) > 0; }

bool Scheduler::is_pending(EventId id) const {
  return live_.contains(id.value);
}

bool Scheduler::pop_next(QueuedEvent& out) {
  while (auto event = queue_->pop_min()) {
    if (live_.contains(event->id)) {
      out = *event;
      return true;
    }
  }
  return false;
}

void Scheduler::run() {
  stopped_ = false;
  QueuedEvent e;
  while (!stopped_ && pop_next(e)) {
    now_ = e.time;
    auto it = live_.find(e.id);
    Callback cb = std::move(it->second);
    live_.erase(it);
    ++processed_;
    cb();
  }
}

void Scheduler::run_until(TimePoint deadline) {
  stopped_ = false;
  QueuedEvent e;
  while (!stopped_ && pop_next(e)) {
    if (e.time > deadline) {
      // Too far: put it back (it keeps its original insertion order key).
      queue_->push(e);
      break;
    }
    now_ = e.time;
    auto it = live_.find(e.id);
    Callback cb = std::move(it->second);
    live_.erase(it);
    ++processed_;
    cb();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace tcppr::sim
