// Deterministic random number generation for simulations.
//
// xoshiro256** seeded through splitmix64. Every simulation object that
// needs randomness gets its own Rng (via fork()), so adding a random draw
// in one component never perturbs the sequence seen by another — a classic
// source of non-reproducibility in event simulators.
#pragma once

#include <cstdint>

namespace tcppr::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Derives an independent stream; deterministic in (parent seed, salt).
  Rng fork(std::uint64_t salt) const;

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Standard normal via Box-Muller (two uniform draws per call; no cached
  // spare, so the stream position is a pure function of the call count).
  double normal();
  // Log-normal: exp(mu + sigma * N(0,1)). The workload layer uses it for
  // think times (heavy right tail, strictly positive).
  double lognormal(double mu, double sigma);
  // Pareto with the given shape (> 0) and scale (minimum value, > 0),
  // sampled by inverse CDF. Heavy-tailed flow sizes; shape <= 2 gives the
  // infinite-variance mice/elephants regime measured on real links.
  double pareto(double shape, double scale);
  bool bernoulli(double p);
  // Samples an index from an unnormalized weight vector of size n.
  int categorical(const double* weights, int n);

 private:
  std::uint64_t s_[4];
};

}  // namespace tcppr::sim
