// Deterministic random number generation for simulations.
//
// xoshiro256** seeded through splitmix64. Every simulation object that
// needs randomness gets its own Rng (via fork()), so adding a random draw
// in one component never perturbs the sequence seen by another — a classic
// source of non-reproducibility in event simulators.
#pragma once

#include <cstdint>

namespace tcppr::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Derives an independent stream; deterministic in (parent seed, salt).
  Rng fork(std::uint64_t salt) const;

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  bool bernoulli(double p);
  // Samples an index from an unnormalized weight vector of size n.
  int categorical(const double* weights, int n);

 private:
  std::uint64_t s_[4];
};

}  // namespace tcppr::sim
