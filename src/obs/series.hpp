// Time-series sample model and export sinks for the flow-state
// observability layer (src/obs). The packet tracer (src/trace) answers
// "what happened to packet X"; this layer answers "what did flow Y's
// estimators do over time" — the cwnd / ewrtt / mxrtt / queue-occupancy
// series the paper's figures are drawn from.
//
// A Sample is one (time, metric, flow-label, value) observation. Metrics
// are interned by the MetricRegistry (obs/registry.hpp); sinks resolve
// metric ids back to names through the registry they are attached to.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tcppr::obs {

class MetricRegistry;

// Small dense id handed out by MetricRegistry::intern.
using MetricId = std::uint16_t;

enum class MetricKind : std::uint8_t {
  kGauge,    // instantaneous value (cwnd, queue occupancy, ...)
  kCounter,  // monotone running total (drops declared, retransmissions, ...)
};

struct Sample {
  sim::TimePoint time;
  MetricId metric = 0;
  net::FlowId flow = net::kInvalidFlow;  // label; kInvalidFlow = unlabeled
  double value = 0;
};

class SeriesSink {
 public:
  virtual ~SeriesSink() = default;
  virtual void record(const Sample& sample) = 0;
  // File-backed sinks override; in-memory sinks are always ok and flushed.
  virtual void flush() {}
  virtual bool ok() const { return true; }

 protected:
  friend class MetricRegistry;
  // Set by MetricRegistry::add_sink so record() can resolve metric names.
  const MetricRegistry* registry_ = nullptr;
};

// Keeps every sample in memory; query helpers for tests and examples.
class MemorySeriesSink final : public SeriesSink {
 public:
  void record(const Sample& sample) override { samples_.push_back(sample); }

  const std::vector<Sample>& samples() const { return samples_; }
  // The (time_seconds, value) series of one named metric, optionally
  // restricted to one flow label.
  std::vector<std::pair<double, double>> series(
      std::string_view metric, net::FlowId flow = net::kInvalidFlow) const;
  std::size_t count(std::string_view metric) const;
  void clear() { samples_.clear(); }

 private:
  std::vector<Sample> samples_;
};

// One CSV row per sample: `time,metric,flow,value` with a header line.
// Times are printed in fixed nanosecond precision and values with %.10g,
// so identical runs produce byte-identical files (golden-file testable).
class CsvSeriesSink final : public SeriesSink {
 public:
  explicit CsvSeriesSink(const std::string& path);
  ~CsvSeriesSink() override;

  CsvSeriesSink(const CsvSeriesSink&) = delete;
  CsvSeriesSink& operator=(const CsvSeriesSink&) = delete;

  void record(const Sample& sample) override;
  void flush() override;
  bool ok() const override { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  bool header_written_ = false;
};

// One JSON object per line: {"t":..,"metric":"..","flow":..,"v":..}.
// Machine-friendly counterpart of the CSV sink (jq / pandas pipelines).
class NdjsonSink final : public SeriesSink {
 public:
  explicit NdjsonSink(const std::string& path);
  ~NdjsonSink() override;

  NdjsonSink(const NdjsonSink&) = delete;
  NdjsonSink& operator=(const NdjsonSink&) = delete;

  void record(const Sample& sample) override;
  void flush() override;
  bool ok() const override { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace tcppr::obs
