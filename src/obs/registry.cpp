#include "obs/registry.hpp"

#include <limits>

#include "util/check.hpp"

namespace tcppr::obs {

MetricId MetricRegistry::intern(std::string_view name, MetricKind kind) {
  TCPPR_CHECK(!name.empty());
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    TCPPR_CHECK(kinds_[it->second] == kind);
    return it->second;
  }
  TCPPR_CHECK(names_.size() < std::numeric_limits<MetricId>::max());
  const MetricId id = static_cast<MetricId>(names_.size());
  names_.emplace_back(name);
  kinds_.push_back(kind);
  by_name_.emplace(names_.back(), id);
  return id;
}

const std::string& MetricRegistry::name(MetricId id) const {
  TCPPR_CHECK(id < names_.size());
  return names_[id];
}

MetricKind MetricRegistry::kind(MetricId id) const {
  TCPPR_CHECK(id < kinds_.size());
  return kinds_[id];
}

const FlowMetrics& MetricRegistry::flow_metrics() {
  if (!flow_metrics_) {
    FlowMetrics m;
    m.cwnd = intern("cwnd", MetricKind::kGauge);
    m.ssthresh = intern("ssthresh", MetricKind::kGauge);
    m.ewrtt = intern("ewrtt", MetricKind::kGauge);
    m.mxrtt = intern("mxrtt", MetricKind::kGauge);
    m.rto = intern("rto", MetricKind::kGauge);
    m.outstanding = intern("outstanding", MetricKind::kGauge);
    m.dup_credits = intern("dup_credits", MetricKind::kGauge);
    m.backoff = intern("backoff", MetricKind::kGauge);
    m.rcv_next = intern("rcv_next", MetricKind::kGauge);
    m.ooo_buffered = intern("ooo_buffered", MetricKind::kGauge);
    m.drops_declared = intern("drops_declared", MetricKind::kCounter);
    m.retransmissions = intern("retransmissions", MetricKind::kCounter);
    m.extreme_loss = intern("extreme_loss", MetricKind::kCounter);
    m.out_of_order = intern("out_of_order", MetricKind::kCounter);
    flow_metrics_ = m;
  }
  return *flow_metrics_;
}

void MetricRegistry::add_sink(SeriesSink* sink) {
  TCPPR_CHECK(sink != nullptr);
  sink->registry_ = this;
  sinks_.push_back(sink);
}

void MetricRegistry::emit(sim::TimePoint t, MetricId metric, net::FlowId flow,
                          double value) {
  Sample s;
  s.time = t;
  s.metric = metric;
  s.flow = flow;
  s.value = value;
  ++samples_;
  for (SeriesSink* sink : sinks_) sink->record(s);
}

void MetricRegistry::set(sim::TimePoint t, MetricId metric, net::FlowId flow,
                         double value) {
  if (!active()) return;
  TCPPR_DCHECK(kind(metric) == MetricKind::kGauge);
  if (aggregate_only_) flow = net::kInvalidFlow;
  values_[{metric, flow}] = value;
  emit(t, metric, flow, value);
}

void MetricRegistry::add(sim::TimePoint t, MetricId metric, net::FlowId flow,
                         double delta) {
  if (!active()) return;
  TCPPR_DCHECK(kind(metric) == MetricKind::kCounter);
  if (aggregate_only_) flow = net::kInvalidFlow;
  const double total = (values_[{metric, flow}] += delta);
  emit(t, metric, flow, total);
}

void MetricRegistry::retire_flow(net::FlowId flow) {
  // One ordered-map range erase per metric id: the table is keyed
  // (metric, flow), so a flow's entries are scattered one per metric.
  for (MetricId m = 0; m < names_.size(); ++m) {
    values_.erase({m, flow});
  }
}

std::optional<double> MetricRegistry::last(MetricId metric,
                                           net::FlowId flow) const {
  const auto it = values_.find({metric, flow});
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

double MetricRegistry::total(MetricId metric, net::FlowId flow) const {
  return last(metric, flow).value_or(0.0);
}

}  // namespace tcppr::obs
