// Probe handles that connect protocol endpoints and link queues to a
// MetricRegistry.
//
// FlowProbe is a value-type handle held by every sender/receiver. Default-
// constructed it is disabled; call sites guard each emission with
// `if (probe_)`, so an uninstrumented run pays exactly one predictable
// branch per probed event (the same discipline as trace::Tracer::active()).
//
// QueueProbe periodically samples one link's queue occupancy (packets and
// bytes) plus its cumulative drop/throughput counters, driven by the
// scheduler. It exists only when observability is attached, so the
// uninstrumented simulation schedules nothing.
#pragma once

#include <string>

#include "obs/registry.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::net {
class Link;
}

namespace tcppr::obs {

class FlowProbe {
 public:
  FlowProbe() = default;
  FlowProbe(MetricRegistry& registry, net::FlowId flow)
      : reg_(&registry), flow_(flow), m_(registry.flow_metrics()) {}

  // True when samples would actually be recorded. Emission methods assume
  // the caller checked this first.
  explicit operator bool() const { return reg_ != nullptr && reg_->active(); }

  net::FlowId flow() const { return flow_; }

  // Gauges.
  void cwnd(sim::TimePoint t, double v) const { reg_->set(t, m_.cwnd, flow_, v); }
  void ssthresh(sim::TimePoint t, double v) const {
    reg_->set(t, m_.ssthresh, flow_, v);
  }
  void ewrtt(sim::TimePoint t, double seconds) const {
    reg_->set(t, m_.ewrtt, flow_, seconds);
  }
  void mxrtt(sim::TimePoint t, double seconds) const {
    reg_->set(t, m_.mxrtt, flow_, seconds);
  }
  void rto(sim::TimePoint t, double seconds) const {
    reg_->set(t, m_.rto, flow_, seconds);
  }
  void outstanding(sim::TimePoint t, std::size_t n) const {
    reg_->set(t, m_.outstanding, flow_, static_cast<double>(n));
  }
  void dup_credits(sim::TimePoint t, int n) const {
    reg_->set(t, m_.dup_credits, flow_, n);
  }
  void backoff(sim::TimePoint t, bool in_backoff) const {
    reg_->set(t, m_.backoff, flow_, in_backoff ? 1.0 : 0.0);
  }
  void rcv_next(sim::TimePoint t, double v) const {
    reg_->set(t, m_.rcv_next, flow_, v);
  }
  void ooo_buffered(sim::TimePoint t, std::size_t n) const {
    reg_->set(t, m_.ooo_buffered, flow_, static_cast<double>(n));
  }

  // Counters.
  void drop_declared(sim::TimePoint t) const {
    reg_->add(t, m_.drops_declared, flow_);
  }
  void retransmission(sim::TimePoint t) const {
    reg_->add(t, m_.retransmissions, flow_);
  }
  void extreme_loss(sim::TimePoint t) const {
    reg_->add(t, m_.extreme_loss, flow_);
  }
  void out_of_order(sim::TimePoint t) const {
    reg_->add(t, m_.out_of_order, flow_);
  }

 private:
  MetricRegistry* reg_ = nullptr;
  net::FlowId flow_ = net::kInvalidFlow;
  FlowMetrics m_;
};

// Samples one link queue every `interval`: occupancy in packets and bytes
// (gauges) plus cumulative drops, dequeued bytes, and the link's
// loss-model drops (counters exported as monotone gauges, enabling
// byte-accurate utilization readouts between any two sample points).
// Metric names carry the queue identity, e.g. "queue.pkts[1->2]".
class QueueProbe {
 public:
  QueueProbe(sim::Scheduler& sched, MetricRegistry& registry,
             const net::Link& link, sim::Duration interval,
             std::string label = {});

  // Samples immediately, then every interval until stop().
  void start();
  void stop() { timer_.cancel(); }
  const std::string& label() const { return label_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  MetricRegistry& reg_;
  const net::Link& link_;
  sim::Duration interval_;
  std::string label_;
  MetricId pkts_;
  MetricId bytes_;
  MetricId drops_;
  MetricId bytes_out_;
  MetricId loss_drops_;
  sim::Timer timer_;
};

}  // namespace tcppr::obs
