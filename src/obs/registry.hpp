// MetricRegistry: the hub of the flow-state observability layer.
//
// Metrics are named counters or gauges; every emission carries a per-flow
// label (net::FlowId, or kInvalidFlow for unlabeled series such as queue
// occupancy, whose identity lives in the metric name instead). Names are
// interned into dense MetricIds once, so the emission path never hashes a
// string. Samples fan out to any number of SeriesSinks; the registry also
// keeps the last value / running total per (metric, flow) for programmatic
// queries.
//
// Overhead discipline (same as trace::Tracer): with no sink attached,
// active() is false and every probe call is one predictable branch — no
// sample is built, nothing is stored, nothing is allocated. Probe call
// sites guard with `if (probe_)` (obs/probe.hpp), so the disabled cost is
// a single well-predicted test per instrumented event.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/series.hpp"

namespace tcppr::obs {

// Pre-interned ids for the standard per-flow probe points (obs/probe.hpp).
struct FlowMetrics {
  // Gauges.
  MetricId cwnd = 0;
  MetricId ssthresh = 0;
  MetricId ewrtt = 0;        // seconds (TCP-PR eq. 1 decaying max)
  MetricId mxrtt = 0;        // seconds (beta * ewrtt / backoff override)
  MetricId rto = 0;          // seconds (RFC 6298 estimators)
  MetricId outstanding = 0;  // unacknowledged segments
  MetricId dup_credits = 0;  // TCP-PR dupack window credits
  MetricId backoff = 0;      // 1 while in extreme-loss backoff, else 0
  MetricId rcv_next = 0;     // receiver in-order point
  MetricId ooo_buffered = 0;  // receiver segments buffered above rcv_next
  // Counters.
  MetricId drops_declared = 0;  // sender loss declarations (timer or dupack)
  MetricId retransmissions = 0;
  MetricId extreme_loss = 0;  // TCP-PR §3.2 resets / coarse timeouts
  MetricId out_of_order = 0;  // receiver out-of-order arrivals
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Returns the id for `name`, interning it on first use. Re-interning an
  // existing name returns the original id (the kind must match).
  MetricId intern(std::string_view name, MetricKind kind);
  const std::string& name(MetricId id) const;
  MetricKind kind(MetricId id) const;
  std::size_t metric_count() const { return names_.size(); }

  // The standard per-flow probe metrics, interned on first request.
  const FlowMetrics& flow_metrics();

  void add_sink(SeriesSink* sink);
  bool active() const { return !sinks_.empty(); }

  // Aggregate-only mode: every emission's flow label collapses to
  // kInvalidFlow before it is stored or fanned out. Counters keep summing
  // correctly (the running total becomes the all-flows total); gauges
  // become last-writer-wins. This is the churn-scale mode: the
  // (metric, flow) value table stays O(metrics) instead of O(metrics x
  // flows-ever-created), which is what makes observability affordable when
  // flows arrive and depart by the thousands per second.
  void set_aggregate_only(bool on) { aggregate_only_ = on; }
  bool aggregate_only() const { return aggregate_only_; }

  // Drops every stored (metric, flow) value for a departed flow. Without
  // this the value table grows by one entry per metric per flow ever
  // labeled — the per-flow leak a churning workload turns into unbounded
  // memory. Call on flow teardown (the workload engine does); sinks that
  // already wrote the flow's samples are unaffected.
  void retire_flow(net::FlowId flow);

  // Entries in the (metric, flow) value table — the regression surface for
  // the churn leak: bounded by metrics x live flows when teardown retires
  // flows, by metrics alone in aggregate-only mode.
  std::size_t tracked_series() const { return values_.size(); }

  // Gauge: record the instantaneous value. No-op when no sink is attached.
  void set(sim::TimePoint t, MetricId metric, net::FlowId flow, double value);
  // Counter: add `delta` to the running total and record the new total.
  void add(sim::TimePoint t, MetricId metric, net::FlowId flow,
           double delta = 1.0);

  // Last recorded value of a gauge / running total of a counter.
  std::optional<double> last(MetricId metric,
                             net::FlowId flow = net::kInvalidFlow) const;
  double total(MetricId metric, net::FlowId flow = net::kInvalidFlow) const;
  std::uint64_t samples_recorded() const { return samples_; }

 private:
  void emit(sim::TimePoint t, MetricId metric, net::FlowId flow, double value);

  std::vector<std::string> names_;
  std::vector<MetricKind> kinds_;
  // Transparent comparator so interning probes with a string_view key.
  std::map<std::string, MetricId, std::less<>> by_name_;
  std::vector<SeriesSink*> sinks_;
  std::map<std::pair<MetricId, net::FlowId>, double> values_;
  bool aggregate_only_ = false;
  std::uint64_t samples_ = 0;
  std::optional<FlowMetrics> flow_metrics_;
};

}  // namespace tcppr::obs
