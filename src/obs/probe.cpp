#include "obs/probe.hpp"

#include "net/link.hpp"
#include "util/check.hpp"

namespace tcppr::obs {

QueueProbe::QueueProbe(sim::Scheduler& sched, MetricRegistry& registry,
                       const net::Link& link, sim::Duration interval,
                       std::string label)
    : sched_(sched),
      reg_(registry),
      link_(link),
      interval_(interval),
      label_(std::move(label)),
      timer_(sched) {
  TCPPR_CHECK(interval_ > sim::Duration::zero());
  if (label_.empty()) {
    label_ = std::to_string(link_.from()) + "->" + std::to_string(link_.to());
  }
  pkts_ = reg_.intern("queue.pkts[" + label_ + "]", MetricKind::kGauge);
  bytes_ = reg_.intern("queue.bytes[" + label_ + "]", MetricKind::kGauge);
  drops_ = reg_.intern("queue.drops[" + label_ + "]", MetricKind::kGauge);
  bytes_out_ =
      reg_.intern("queue.bytes_dequeued[" + label_ + "]", MetricKind::kGauge);
  loss_drops_ =
      reg_.intern("link.loss_drops[" + label_ + "]", MetricKind::kGauge);
}

void QueueProbe::start() {
  tick();
}

void QueueProbe::tick() {
  const sim::TimePoint now = sched_.now();
  const net::Queue& q = link_.queue();
  reg_.set(now, pkts_, net::kInvalidFlow,
           static_cast<double>(q.length_packets()));
  reg_.set(now, bytes_, net::kInvalidFlow,
           static_cast<double>(q.length_bytes()));
  reg_.set(now, drops_, net::kInvalidFlow,
           static_cast<double>(q.stats().dropped));
  reg_.set(now, bytes_out_, net::kInvalidFlow,
           static_cast<double>(q.stats().bytes_dequeued));
  reg_.set(now, loss_drops_, net::kInvalidFlow,
           static_cast<double>(link_.stats().loss_model_lost));
  timer_.schedule_in(interval_, [this] { tick(); });
}

}  // namespace tcppr::obs
