#include "obs/series.hpp"

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace tcppr::obs {

std::vector<std::pair<double, double>> MemorySeriesSink::series(
    std::string_view metric, net::FlowId flow) const {
  std::vector<std::pair<double, double>> out;
  if (registry_ == nullptr) return out;
  for (const Sample& s : samples_) {
    if (registry_->name(s.metric) != metric) continue;
    if (flow != net::kInvalidFlow && s.flow != flow) continue;
    out.emplace_back(s.time.as_seconds(), s.value);
  }
  return out;
}

std::size_t MemorySeriesSink::count(std::string_view metric) const {
  if (registry_ == nullptr) return 0;
  std::size_t n = 0;
  for (const Sample& s : samples_) {
    if (registry_->name(s.metric) == metric) ++n;
  }
  return n;
}

CsvSeriesSink::CsvSeriesSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

CsvSeriesSink::~CsvSeriesSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvSeriesSink::record(const Sample& sample) {
  if (file_ == nullptr) return;
  if (!header_written_) {
    std::fputs("time,metric,flow,value\n", file_);
    header_written_ = true;
  }
  TCPPR_DCHECK(registry_ != nullptr);  // add_sink sets it
  // Nanosecond-exact time keeps identical runs byte-identical.
  std::fprintf(file_, "%.9f,%s,%d,%.10g\n", sample.time.as_seconds(),
               registry_->name(sample.metric).c_str(), sample.flow,
               sample.value);
}

void CsvSeriesSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

NdjsonSink::NdjsonSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

NdjsonSink::~NdjsonSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void NdjsonSink::record(const Sample& sample) {
  if (file_ == nullptr) return;
  TCPPR_DCHECK(registry_ != nullptr);
  // Metric names are interned identifiers (no quotes/backslashes), so no
  // JSON escaping is needed.
  std::fprintf(file_, "{\"t\":%.9f,\"metric\":\"%s\",\"flow\":%d,\"v\":%.10g}\n",
               sample.time.as_seconds(),
               registry_->name(sample.metric).c_str(), sample.flow,
               sample.value);
}

void NdjsonSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace tcppr::obs
