// Shared helpers for the figure-reproduction harnesses: flag parsing and
// aligned table printing.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace tcppr::bench {

struct Options {
  bool quick = false;       // reduced sweep for smoke runs
  std::uint64_t seed = 1;
  bool ablate_snapshot = false;  // fig6 ablation switch
  bool extended = false;         // fig6: include the extension variants
  int jobs = 1;                  // worker threads for independent cells

  static Options parse(int argc, char** argv) {
    Options opts;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        opts.quick = true;
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        opts.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        opts.jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
        if (opts.jobs < 1) opts.jobs = 1;
      } else if (std::strcmp(argv[i], "--ablate-snapshot") == 0) {
        opts.ablate_snapshot = true;
      } else if (std::strcmp(argv[i], "--extended") == 0) {
        opts.extended = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --quick (reduced sweep)  --seed N  --jobs N (parallel "
            "cells)  --ablate-snapshot  --extended\n");
      }
    }
    return opts;
  }
};

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const char* title) {
  print_rule();
  std::printf("%s\n", title);
  print_rule();
}

}  // namespace tcppr::bench
