// Shared helpers for the figure-reproduction harnesses: flag parsing,
// aligned table printing, and per-cell time-series capture (src/obs).
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenarios.hpp"
#include "obs/registry.hpp"
#include "obs/series.hpp"

namespace tcppr::bench {

struct Options {
  bool quick = false;       // reduced sweep for smoke runs
  std::uint64_t seed = 1;
  bool ablate_snapshot = false;  // fig6 ablation switch
  bool extended = false;         // fig6: include the extension variants
  int jobs = 1;                  // worker threads for independent cells
  std::string ts_out;            // time-series output stem ("" = disabled)
  double ts_interval_s = 0.1;    // queue sampling interval

  static Options parse(int argc, char** argv) {
    Options opts;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        opts.quick = true;
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        opts.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        opts.jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
        if (opts.jobs < 1) opts.jobs = 1;
      } else if (std::strcmp(argv[i], "--ablate-snapshot") == 0) {
        opts.ablate_snapshot = true;
      } else if (std::strcmp(argv[i], "--extended") == 0) {
        opts.extended = true;
      } else if (std::strcmp(argv[i], "--ts-out") == 0 && i + 1 < argc) {
        opts.ts_out = argv[++i];
      } else if (std::strcmp(argv[i], "--ts-interval") == 0 && i + 1 < argc) {
        opts.ts_interval_s = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --quick (reduced sweep)  --seed N  --jobs N (parallel "
            "cells)  --ablate-snapshot  --extended  --ts-out FILE "
            "(per-cell time series; cell tag spliced before the extension)  "
            "--ts-interval S\n");
      }
    }
    return opts;
  }
};

// One cell's observability attachment: the registry plus the file sink it
// writes through. Must outlive the scenario run it is attached to.
struct SeriesCapture {
  obs::MetricRegistry registry;
  std::unique_ptr<obs::SeriesSink> sink;
};

// Splices `tag` into opts.ts_out before the extension: ("fig2.csv",
// "dumbbell_n4") -> "fig2_dumbbell_n4.csv". Cells run in parallel, so each
// needs its own file.
inline std::string series_path_for_cell(const Options& opts,
                                        const std::string& tag) {
  const std::size_t dot = opts.ts_out.find_last_of('.');
  if (dot == std::string::npos || dot == 0) return opts.ts_out + "_" + tag;
  return opts.ts_out.substr(0, dot) + "_" + tag + opts.ts_out.substr(dot);
}

// When --ts-out is set, attaches a time-series capture to `scenario`
// writing `<stem>_<tag><ext>` (NDJSON when the extension is .ndjson, CSV
// otherwise) and returns it; returns nullptr when capture is disabled.
inline std::unique_ptr<SeriesCapture> attach_series_capture(
    harness::Scenario& scenario, const Options& opts, const std::string& tag) {
  if (opts.ts_out.empty()) return nullptr;
  auto capture = std::make_unique<SeriesCapture>();
  const std::string path = series_path_for_cell(opts, tag);
  const bool ndjson =
      path.size() > 7 && path.rfind(".ndjson") == path.size() - 7;
  if (ndjson) {
    capture->sink = std::make_unique<obs::NdjsonSink>(path);
  } else {
    capture->sink = std::make_unique<obs::CsvSeriesSink>(path);
  }
  if (!capture->sink->ok()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return nullptr;
  }
  capture->registry.add_sink(capture->sink.get());
  scenario.attach_observability(capture->registry,
                                sim::Duration::seconds(opts.ts_interval_s));
  return capture;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const char* title) {
  print_rule();
  std::printf("%s\n", title);
  print_rule();
}

}  // namespace tcppr::bench
