// Figure 6 reproduction: throughput of TCP-PR against the reordering
// mitigation schemes under multi-path routing, for epsilon in
// {0, 1, 4, 10, 500} and link propagation delays of 10 ms (left plot) and
// 60 ms (right plot). One flow at a time, no cross traffic, 10 Mbps links,
// 100-packet queues — exactly the paper's setup.
//
// Paper expectation: at eps=500 (single path) everyone is equal; as eps
// drops toward 0 (uniform multi-path) TCP-PR's throughput grows toward the
// aggregate of all paths while the dupthresh-based schemes collapse; TD-FR
// is the only competitive alternative at 10 ms but collapses at 60 ms.
//
// --ablate-snapshot additionally prints TCP-PR with the cwnd-snapshot rule
// ablated (halving the current window instead of cwnd(n)).
#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"

namespace {

using namespace tcppr;
using harness::MeasurementWindow;
using harness::MultipathConfig;
using harness::TcpVariant;

MeasurementWindow window(double delay_ms, bool quick) {
  MeasurementWindow w;
  // The 60 ms mesh has an aggregate BDP of >2000 packets; congestion
  // avoidance needs time to converge after slow start, as it would in the
  // paper's ns-2 runs.
  const double total = quick ? 60.0 : (delay_ms > 30 ? 200.0 : 120.0);
  w.total = sim::Duration::seconds(total);
  w.measured = sim::Duration::seconds(quick ? 30.0 : 60.0);
  return w;
}

// One (delay, variant, epsilon) cell of the figure; result filled by a
// worker.
struct Cell {
  double delay_ms = 0;
  TcpVariant variant = TcpVariant::kTcpPr;
  double epsilon = 0;
  bool ablate = false;
  double goodput_mbps = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = tcppr::bench::Options::parse(argc, argv);
  std::vector<double> epsilons = {0, 1, 4, 10, 500};
  std::vector<TcpVariant> variants = {
      TcpVariant::kTcpPr,  TcpVariant::kTdFr,   TcpVariant::kDsackNm,
      TcpVariant::kIncByOne, TcpVariant::kIncByN, TcpVariant::kEwma};
  if (opts.extended) {
    // Beyond the paper's Figure 6 set: the remaining library variants.
    variants.push_back(TcpVariant::kSack);
    variants.push_back(TcpVariant::kNewReno);
    variants.push_back(TcpVariant::kReno);
    variants.push_back(TcpVariant::kTahoe);
    variants.push_back(TcpVariant::kEifel);
    variants.push_back(TcpVariant::kDoor);
  }
  if (opts.quick) {
    epsilons = {0, 10, 500};
  }

  // Enumerate cells in print order, run them (possibly on worker threads —
  // each owns its scheduler/network/rng), then print sequentially.
  std::vector<Cell> cells;
  for (const double delay_ms : {10.0, 60.0}) {
    for (const TcpVariant v : variants) {
      for (const double eps : epsilons) {
        cells.push_back(Cell{delay_ms, v, eps, false, 0});
      }
    }
    if (opts.ablate_snapshot) {
      for (const double eps : epsilons) {
        cells.push_back(Cell{delay_ms, TcpVariant::kTcpPr, eps, true, 0});
      }
    }
  }
  harness::parallel_for(
      opts.jobs, static_cast<int>(cells.size()), [&](int i) {
        Cell& cell = cells[static_cast<std::size_t>(i)];
        MultipathConfig config;
        config.variant = cell.variant;
        config.epsilon = cell.epsilon;
        config.link_delay = sim::Duration::millis(cell.delay_ms);
        if (cell.ablate) config.pr.ablate_halve_current_cwnd = true;
        config.seed = opts.seed;
        std::unique_ptr<bench::SeriesCapture> capture;
        const auto result = run_multipath_cell(
            config, window(cell.delay_ms, opts.quick),
            [&](harness::Scenario& scenario) {
              char tag[64];
              std::snprintf(tag, sizeof(tag), "d%.0f_%s_eps%.0f%s",
                            cell.delay_ms, to_string(cell.variant),
                            cell.epsilon, cell.ablate ? "_ablate" : "");
              capture = bench::attach_series_capture(scenario, opts, tag);
            });
        cell.goodput_mbps = result.goodput_bps / 1e6;
      });

  std::size_t next = 0;
  for (const double delay_ms : {10.0, 60.0}) {
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 6 (%s): goodput in Mbps, link delay %.0f ms",
                  delay_ms < 30 ? "left" : "right", delay_ms);
    bench::print_header(title);
    std::printf("%-10s", "variant");
    for (const double eps : epsilons) std::printf("  eps=%-6.0f", eps);
    std::printf("\n");
    for (const TcpVariant v : variants) {
      std::printf("%-10s", to_string(v));
      for (std::size_t e = 0; e < epsilons.size(); ++e) {
        std::printf("  %-10.2f", cells[next++].goodput_mbps);
      }
      std::printf("\n");
    }
    if (opts.ablate_snapshot) {
      std::printf("%-10s", "pr-ablate");
      for (std::size_t e = 0; e < epsilons.size(); ++e) {
        std::printf("  %-10.2f", cells[next++].goodput_mbps);
      }
      std::printf("   <- snapshot rule ablated\n");
    }
  }
  tcppr::bench::print_rule();
  std::printf(
      "paper shape: all equal at eps=500; TCP-PR rises toward the multi-\n"
      "path aggregate as eps->0 while dupthresh schemes collapse; TD-FR\n"
      "competitive only on the 10 ms (left) topology.\n");
  return 0;
}
