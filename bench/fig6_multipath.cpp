// Figure 6 reproduction: throughput of TCP-PR against the reordering
// mitigation schemes under multi-path routing, for epsilon in
// {0, 1, 4, 10, 500} and link propagation delays of 10 ms (left plot) and
// 60 ms (right plot). One flow at a time, no cross traffic, 10 Mbps links,
// 100-packet queues — exactly the paper's setup.
//
// Paper expectation: at eps=500 (single path) everyone is equal; as eps
// drops toward 0 (uniform multi-path) TCP-PR's throughput grows toward the
// aggregate of all paths while the dupthresh-based schemes collapse; TD-FR
// is the only competitive alternative at 10 ms but collapses at 60 ms.
//
// --ablate-snapshot additionally prints TCP-PR with the cwnd-snapshot rule
// ablated (halving the current window instead of cwnd(n)).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace tcppr;
using harness::MeasurementWindow;
using harness::MultipathConfig;
using harness::TcpVariant;

MeasurementWindow window(double delay_ms, bool quick) {
  MeasurementWindow w;
  // The 60 ms mesh has an aggregate BDP of >2000 packets; congestion
  // avoidance needs time to converge after slow start, as it would in the
  // paper's ns-2 runs.
  const double total = quick ? 60.0 : (delay_ms > 30 ? 200.0 : 120.0);
  w.total = sim::Duration::seconds(total);
  w.measured = sim::Duration::seconds(quick ? 30.0 : 60.0);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = tcppr::bench::Options::parse(argc, argv);
  std::vector<double> epsilons = {0, 1, 4, 10, 500};
  std::vector<TcpVariant> variants = {
      TcpVariant::kTcpPr,  TcpVariant::kTdFr,   TcpVariant::kDsackNm,
      TcpVariant::kIncByOne, TcpVariant::kIncByN, TcpVariant::kEwma};
  if (opts.extended) {
    // Beyond the paper's Figure 6 set: the remaining library variants.
    variants.push_back(TcpVariant::kSack);
    variants.push_back(TcpVariant::kNewReno);
    variants.push_back(TcpVariant::kReno);
    variants.push_back(TcpVariant::kTahoe);
    variants.push_back(TcpVariant::kEifel);
    variants.push_back(TcpVariant::kDoor);
  }
  if (opts.quick) {
    epsilons = {0, 10, 500};
  }

  for (const double delay_ms : {10.0, 60.0}) {
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 6 (%s): goodput in Mbps, link delay %.0f ms",
                  delay_ms < 30 ? "left" : "right", delay_ms);
    bench::print_header(title);
    std::printf("%-10s", "variant");
    for (const double eps : epsilons) std::printf("  eps=%-6.0f", eps);
    std::printf("\n");
    for (const TcpVariant v : variants) {
      std::printf("%-10s", to_string(v));
      for (const double eps : epsilons) {
        MultipathConfig config;
        config.variant = v;
        config.epsilon = eps;
        config.link_delay = sim::Duration::millis(delay_ms);
        config.seed = opts.seed;
        const auto cell =
            run_multipath_cell(config, window(delay_ms, opts.quick));
        std::printf("  %-10.2f", cell.goodput_bps / 1e6);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    if (opts.ablate_snapshot) {
      std::printf("%-10s", "pr-ablate");
      for (const double eps : epsilons) {
        MultipathConfig config;
        config.variant = TcpVariant::kTcpPr;
        config.epsilon = eps;
        config.link_delay = sim::Duration::millis(delay_ms);
        config.pr.ablate_halve_current_cwnd = true;
        config.seed = opts.seed;
        const auto cell =
            run_multipath_cell(config, window(delay_ms, opts.quick));
        std::printf("  %-10.2f", cell.goodput_bps / 1e6);
        std::fflush(stdout);
      }
      std::printf("   <- snapshot rule ablated\n");
    }
  }
  tcppr::bench::print_rule();
  std::printf(
      "paper shape: all equal at eps=500; TCP-PR rises toward the multi-\n"
      "path aggregate as eps->0 while dupthresh schemes collapse; TD-FR\n"
      "competitive only on the 10 ms (left) topology.\n");
  return 0;
}
