// Figure 4 reproduction: TCP-SACK mean normalized throughput while
// competing with TCP-PR, over a grid of TCP-PR parameters (alpha, beta),
// on the dumbbell and parking-lot topologies (32 SACK + 32 PR flows in the
// paper; scaled via --quick).
//
// Paper expectation: values near 1 everywhere except beta = 1, where
// TCP-SACK gains an advantage (TCP-PR's timeout margin is too tight and it
// spuriously backs off).
#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"

namespace {

using namespace tcppr;
using harness::MeasurementWindow;
using harness::TcpVariant;

MeasurementWindow window() {
  MeasurementWindow w;
  w.total = sim::Duration::seconds(100);
  w.measured = sim::Duration::seconds(60);
  return w;
}

// One (topology, alpha, beta) grid cell; result filled by a worker.
struct Cell {
  bool parking_lot = false;
  double alpha = 0;
  double beta = 0;
  double sack_mean_normalized = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = tcppr::bench::Options::parse(argc, argv);
  std::vector<double> alphas = {0.25, 0.5, 0.75, 0.9, 0.995};
  std::vector<double> betas = {1.0, 2.0, 3.0, 5.0, 7.0, 10.0};
  int per_side = 16;  // 32 total PR + SACK... 16+16 keeps runtime sane
  if (opts.quick) {
    alphas = {0.5, 0.995};
    betas = {1.0, 3.0};
    per_side = 8;
  }

  // Enumerate the grid, run cells (possibly in parallel — each owns its
  // scheduler/network/rng), then print in enumeration order.
  std::vector<Cell> cells;
  for (const bool parking_lot : {false, true}) {
    for (const double alpha : alphas) {
      for (const double beta : betas) {
        cells.push_back(Cell{parking_lot, alpha, beta, 0});
      }
    }
  }
  harness::parallel_for(
      opts.jobs, static_cast<int>(cells.size()), [&](int i) {
        Cell& cell = cells[static_cast<std::size_t>(i)];
        harness::RunResult result;
        if (cell.parking_lot) {
          harness::ParkingLotConfig config;
          config.pr_flows = per_side;
          config.sack_flows = per_side;
          config.pr.alpha = cell.alpha;
          config.pr.beta = cell.beta;
          config.seed = opts.seed;
          auto scenario = harness::make_parking_lot(config);
          const auto capture = bench::attach_series_capture(
              *scenario, opts,
              "parkinglot_a" + std::to_string(cell.alpha) + "_b" +
                  std::to_string(cell.beta));
          result = run_scenario(*scenario, window());
        } else {
          harness::DumbbellConfig config;
          config.pr_flows = per_side;
          config.sack_flows = per_side;
          config.pr.alpha = cell.alpha;
          config.pr.beta = cell.beta;
          config.seed = opts.seed;
          auto scenario = harness::make_dumbbell(config);
          const auto capture = bench::attach_series_capture(
              *scenario, opts,
              "dumbbell_a" + std::to_string(cell.alpha) + "_b" +
                  std::to_string(cell.beta));
          result = run_scenario(*scenario, window());
        }
        cell.sack_mean_normalized = result.mean_normalized(TcpVariant::kSack);
      });

  std::size_t next = 0;
  for (const bool parking_lot : {false, true}) {
    bench::print_header(
        parking_lot
            ? "Figure 4 (right): parking-lot SACK mean normalized throughput"
            : "Figure 4 (left): dumbbell SACK mean normalized throughput");
    std::printf("%8s", "alpha\\beta");
    for (const double beta : betas) std::printf(" %8.1f", beta);
    std::printf("\n");
    for (const double alpha : alphas) {
      std::printf("%8.4f", alpha);
      for (std::size_t b = 0; b < betas.size(); ++b) {
        std::printf(" %8.3f", cells[next++].sack_mean_normalized);
      }
      std::printf("\n");
    }
  }
  tcppr::bench::print_rule();
  std::printf(
      "paper shape: ~1 across the grid; >1 (SACK advantage) at beta=1.\n");
  return 0;
}
