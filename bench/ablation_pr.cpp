// Ablation bench for the TCP-PR design choices called out in DESIGN.md §5
// and the reconstruction decisions of §6.1. Each row disables exactly one
// mechanism and reruns two canonical workloads:
//   - multipath: one flow, Figure 5 mesh, eps=0, 10 ms links (the paper's
//     headline scenario);
//   - dumbbell: 8 PR + 8 SACK flows sharing one bottleneck (the fairness
//     scenario), reporting TCP-PR's mean normalized throughput.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "routing/multipath.hpp"

namespace {

using namespace tcppr;
using harness::MeasurementWindow;
using harness::TcpVariant;

struct Ablation {
  const char* name;
  std::function<void(core::TcpPrConfig&)> apply;
};

MeasurementWindow window(double total, double measured) {
  MeasurementWindow w;
  w.total = sim::Duration::seconds(total);
  w.measured = sim::Duration::seconds(measured);
  return w;
}

// RTT-spike workload: the route spends 4 s on a 10 ms-per-link path, then
// 1 s on an 8x slower one, repeatedly. A decaying-max ewrtt keeps the
// timeout above the spike RTT between spikes; a mean-based estimator sinks
// toward the common-case RTT and declares the spike packets dropped every
// cycle. Returns retransmissions (all spurious: window capped below any
// loss point).
std::uint64_t flap_spurious_rtx(const core::TcpPrConfig& pr, double seconds) {
  auto scenario = std::make_unique<harness::Scenario>();
  net::Network& nw = scenario->network;
  const auto src = nw.add_node();
  const auto dst = nw.add_node();
  net::LinkConfig fast;
  fast.bandwidth_bps = 10e6;
  fast.delay = sim::Duration::millis(10);
  net::LinkConfig slow = fast;
  slow.delay = sim::Duration::millis(80);
  routing::PathSet paths;
  paths.src = src;
  paths.dst = dst;
  const auto ra = nw.add_node();
  nw.add_duplex_link(src, ra, fast);
  nw.add_duplex_link(ra, dst, fast);
  const auto rb = nw.add_node();
  nw.add_duplex_link(src, rb, slow);
  nw.add_duplex_link(rb, dst, slow);
  // 4 s on the fast path, 1 s on the slow one per cycle (the flap policy
  // cycles round-robin; repeating the fast path skews the duty cycle).
  const std::vector<net::NodeId> fast_path{src, ra, dst};
  const std::vector<net::NodeId> slow_path{src, rb, dst};
  paths.paths = {fast_path, fast_path, fast_path, fast_path, slow_path};
  paths.costs = {20, 20, 20, 20, 160};
  nw.compute_static_routes();
  auto policy = std::make_unique<routing::RouteFlapPolicy>(
      scenario->sched, paths, sim::Duration::seconds(1));
  nw.node(src).set_source_routing_policy(policy.get());
  scenario->policies.push_back(std::move(policy));
  tcp::TcpConfig tcp_config;
  tcp_config.max_cwnd = 40;
  scenario->add_flow(TcpVariant::kTcpPr, src, dst, 1, tcp_config, pr,
                     sim::TimePoint::origin());
  scenario->sched.run_until(sim::TimePoint::from_seconds(seconds));
  return scenario->senders[0]->stats().retransmissions;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = tcppr::bench::Options::parse(argc, argv);
  const double mp_total = opts.quick ? 40 : 120;
  const double mp_measured = opts.quick ? 20 : 60;
  const double db_total = opts.quick ? 60 : 100;
  const double db_measured = opts.quick ? 30 : 60;

  const std::vector<Ablation> ablations = {
      {"baseline", [](core::TcpPrConfig&) {}},
      {"halve-current-cwnd",
       [](core::TcpPrConfig& c) { c.ablate_halve_current_cwnd = true; }},
      {"no-memorize",
       [](core::TcpPrConfig& c) { c.ablate_no_memorize = true; }},
      {"mean-ewrtt",
       [](core::TcpPrConfig& c) { c.ablate_mean_ewrtt = true; }},
      {"no-restamp",
       [](core::TcpPrConfig& c) { c.restamp_on_congestion_event = false; }},
      {"no-dupack-credit",
       [](core::TcpPrConfig& c) { c.dupack_window_credit = false; }},
      {"no-burst-rule",
       [](core::TcpPrConfig& c) { c.extreme_loss_on_burst_count = false; }},
      {"no-lost-rtx-rule",
       [](core::TcpPrConfig& c) {
         c.extreme_loss_on_lost_retransmission = false;
       }},
      {"no-extreme-loss",
       [](core::TcpPrConfig& c) { c.enable_extreme_loss_handling = false; }},
  };

  const double flap_seconds = opts.quick ? 20 : 60;

  bench::print_header("TCP-PR ablations (DESIGN.md §5/§6.1)");
  std::printf("%-22s %12s %8s %8s | %12s %8s | %9s\n", "ablation",
              "mpath Mbps", "rtx", "extreme", "fair mean(PR)", "loss%",
              "flap rtx");
  for (const auto& ablation : ablations) {
    // Multipath eps=0.
    harness::MultipathConfig mp;
    mp.variant = TcpVariant::kTcpPr;
    mp.epsilon = 0;
    mp.seed = opts.seed;
    ablation.apply(mp.pr);
    const auto cell =
        run_multipath_cell(mp, window(mp_total, mp_measured));

    // Fairness dumbbell.
    harness::DumbbellConfig db;
    db.pr_flows = 8;
    db.sack_flows = 8;
    db.seed = opts.seed;
    ablation.apply(db.pr);
    auto scenario = harness::make_dumbbell(db);
    const auto fair = run_scenario(*scenario, window(db_total, db_measured));

    // RTT-spike robustness.
    core::TcpPrConfig flap_pr;
    ablation.apply(flap_pr);
    const auto flap_rtx = flap_spurious_rtx(flap_pr, flap_seconds);

    std::printf("%-22s %12.2f %8llu %8llu | %12.3f %7.2f%% | %9llu\n",
                ablation.name, cell.goodput_bps / 1e6,
                static_cast<unsigned long long>(cell.retransmissions),
                static_cast<unsigned long long>(cell.timeouts),
                fair.mean_normalized(TcpVariant::kTcpPr),
                100 * fair.loss_rate,
                static_cast<unsigned long long>(flap_rtx));
    std::fflush(stdout);
  }
  bench::print_rule();
  std::printf(
      "reading guide: no-dupack-credit craters fairness (mean(PR) well\n"
      "below 1); no-memorize, no-restamp and mean-ewrtt fire spurious\n"
      "retransmissions at every RTT spike (flap column); the multipath\n"
      "column is transient-heavy in --quick runs.\n");
  return 0;
}
