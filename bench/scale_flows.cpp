// Many-flow scale benchmarks (google-benchmark): how simulation cost grows
// with the live flow count, per scheduler backend.
//
// Two layers:
//   - BM_ScaleFlowsScheduler: the classic hold-model event-queue benchmark
//     sized like an N-flow run (one pending deadline timer per flow plus a
//     few in-flight packet events). Scheduler-bound by construction, so it
//     isolates the backend: the binary heap pays O(log N) per operation
//     against a live population of N, the calendar queue and timing wheel
//     are amortized O(1).
//   - BM_ScaleFlowsDumbbell: end-to-end many-flow dumbbell simulation
//     (make_many_flows), where TCP processing and packet forwarding dilute
//     the event-queue share.
//
// Second benchmark argument selects the backend: 0 = heap, 1 = calendar,
// 2 = wheel.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstdint>
#include <functional>

#include "harness/parallel_run.hpp"
#include "harness/scenarios.hpp"
#include "net/link_pump.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "workload/workload.hpp"

namespace {

using namespace tcppr;

// Process peak resident set in bytes (ru_maxrss is kB on Linux). Monotone
// over the process lifetime, so RSS-gated rows must run before any larger
// benchmark in this file (registration order = file order) — and
// bench_engine.py re-measures each row in a fresh subprocess anyway.
std::size_t peak_rss_bytes() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

sim::SchedulerBackend backend_arg(const benchmark::State& state) {
  switch (state.range(1)) {
    case 1:
      return sim::SchedulerBackend::kCalendarQueue;
    case 2:
      return sim::SchedulerBackend::kTimingWheel;
    default:
      return sim::SchedulerBackend::kBinaryHeap;
  }
}

// Hold model over a live population of N "flows": each pop reschedules
// itself a pseudo-random interval ahead, holding the population constant —
// the steady state of N flows each keeping a drop-deadline timer armed.
// Intervals span 100 us .. 100 ms, the RTT-to-RTO band the TCP stacks
// actually schedule in.
void BM_ScaleFlowsScheduler(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const auto backend = backend_arg(state);
  constexpr int kOpsPerIteration = 200000;
  for (auto _ : state) {
    sim::Scheduler sched(backend);
    sim::Rng rng(99);
    int fired = 0;
    std::function<void()> hold = [&] {
      if (++fired < kOpsPerIteration) {
        sched.schedule_in(
            sim::Duration::micros(
                100 + static_cast<std::int64_t>(rng.uniform(0.0, 1e5))),
            [&hold] { hold(); });
      }
    };
    for (int i = 0; i < flows; ++i) {
      sched.schedule_in(
          sim::Duration::micros(
              100 + static_cast<std::int64_t>(rng.uniform(0.0, 1e5))),
          [&hold] { hold(); });
    }
    sched.run();
    benchmark::DoNotOptimize(sched.processed_count());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIteration);
}
BENCHMARK(BM_ScaleFlowsScheduler)
    ->ArgsProduct({{16, 256, 1024, 4096}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

// End-to-end: N-flow dumbbell for two simulated seconds. Bottleneck
// bandwidth scales with N (constant per-flow share), so the event rate —
// and the live timer population — grow linearly with the flow count.
// Third argument toggles the batched hot path (0 = per-packet events,
// 1 = link-pump carrier events); the events_per_packet counter reports
// scheduler events per delivered packet, the metric batching collapses.
void BM_ScaleFlowsDumbbell(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const bool batching = state.range(2) != 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    harness::ManyFlowsConfig config;
    config.flows = flows;
    config.backend = backend_arg(state);
    // Sampled once at Network construction (inside make_many_flows);
    // restore the process default right after the build.
    net::set_hot_path_batching(batching);
    auto scenario = harness::make_many_flows(config);
    net::set_hot_path_batching(true);
    scenario->sched.run_until(sim::TimePoint::from_seconds(2));
    events = scenario->sched.processed_count();
    delivered = scenario->network.conservation().delivered_to_agent;
    benchmark::DoNotOptimize(events);
  }
  state.counters["events_per_packet"] =
      delivered ? static_cast<double>(events) / static_cast<double>(delivered)
                : 0.0;
}
BENCHMARK(BM_ScaleFlowsDumbbell)
    ->ArgNames({"flows", "backend", "batch"})
    ->ArgsProduct({{16, 256, 1024}, {0, 1, 2}, {1}})
    ->Unit(benchmark::kMillisecond);

// Unbatched reference rows (heap backend): the batched/unbatched gap at
// the same flow count is the end-to-end win the tentpole claims, recorded
// side by side in BENCH_engine.json.
BENCHMARK(BM_ScaleFlowsDumbbell)
    ->ArgNames({"flows", "backend", "batch"})
    ->ArgsProduct({{16, 256, 1024}, {0}, {0}})
    ->Unit(benchmark::kMillisecond);

// 4096 flows is the ceiling the builder supports; one backend pair plus
// the unbatched reference is enough to extend the scaling curve without a
// combinatorial blowup in bench time.
BENCHMARK(BM_ScaleFlowsDumbbell)
    ->ArgNames({"flows", "backend", "batch"})
    ->Args({4096, 0, 1})
    ->Args({4096, 2, 1})
    ->Args({4096, 0, 0})
    ->Unit(benchmark::kMillisecond);

// Sequential-vs-parallel rows: the same N-flow dumbbell through the
// parallel harness at 1/2/4/8 LPs (heap backend). lps:1 is the canonical
// stamped one-shard run — its gap to BM_ScaleFlowsDumbbell is the pure
// stamping overhead; lps >= 2 adds threads. Speedup only materializes with
// as many cores as LPs; the regression gate skips lps > 1 rows on
// single-core runners (tools/bench_check.py).
void BM_ScaleFlowsParallel(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const int lps = static_cast<int>(state.range(1));
  std::uint64_t realized = 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    harness::ManyFlowsConfig config;
    config.flows = flows;
    auto scenario = harness::make_many_flows(config);
    harness::ParallelRunConfig pc;
    pc.lps = lps;
    harness::ParallelSim psim(*scenario, pc);
    psim.run_until(sim::TimePoint::from_seconds(2));
    realized = static_cast<std::uint64_t>(psim.lp_count());
    events = psim.events_processed();
    delivered = scenario->network.conservation().delivered_to_agent;
    benchmark::DoNotOptimize(events);
  }
  state.counters["lps"] = static_cast<double>(realized);
  state.counters["events_per_packet"] =
      delivered ? static_cast<double>(events) / static_cast<double>(delivered)
                : 0.0;
}
BENCHMARK(BM_ScaleFlowsParallel)
    ->ArgNames({"flows", "lps"})
    ->ArgsProduct({{256, 1024, 4096}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// Engine-mode rows: the low-lookahead clustered mesh (4096 flows over 4
// clusters whose only cuttable edges are 100 us ring links) through the
// parallel harness, per engine mode. On this plant the conservative
// barrier is the bottleneck — the safe window is a fraction of an RTT —
// so bounded optimism is where the speedup lives; the mode:0 row is the
// baseline the bench gate measures it against (same-run ratio, no machine
// calibration). mode: 0 = conservative, 1 = adaptive repartitioning,
// 2 = bounded optimism, 3 = both.
void BM_ScaleFlowsEngine(benchmark::State& state) {
  const int lps = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  std::uint64_t realized = 0;
  std::uint64_t windows = 0;
  std::uint64_t spec_windows = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t repartitions = 0;
  for (auto _ : state) {
    harness::ClusteredMeshConfig config;
    config.clusters = 4;
    config.flows = 4096;
    // Short stagger: flow-start actions are raw events that gate
    // speculation, so front-load them and let the steady state dominate.
    config.max_start_stagger = sim::Duration::millis(20);
    auto scenario = harness::make_clustered_mesh(config);
    harness::ParallelRunConfig pc;
    pc.lps = lps;
    pc.min_cut_lookahead = config.min_cut_lookahead();
    pc.adaptive = mode == 1 || mode == 3;
    pc.optimistic = mode == 2 || mode == 3;
    // Wide speculation window: each spec window pays one full-world
    // snapshot per LP, so W must cover enough simulated time to amortize
    // it. The mesh has no cross-cluster flows in this row, so stragglers
    // never materialize and W stays pinned at the cap.
    pc.engine.w_init = sim::Duration::millis(50);
    pc.engine.w_max = sim::Duration::millis(50);
    harness::ParallelSim psim(*scenario, pc);
    psim.run_until(sim::TimePoint::from_seconds(2));
    realized = static_cast<std::uint64_t>(psim.lp_count());
    windows = psim.windows();
    spec_windows = psim.spec_windows();
    rollbacks = psim.rollbacks();
    repartitions = psim.repartitions();
    benchmark::DoNotOptimize(windows);
  }
  state.counters["lps"] = static_cast<double>(realized);
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["spec_windows"] = static_cast<double>(spec_windows);
  state.counters["rollbacks"] = static_cast<double>(rollbacks);
  state.counters["repartitions"] = static_cast<double>(repartitions);
}
BENCHMARK(BM_ScaleFlowsEngine)
    ->ArgNames({"lps", "mode"})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Unit(benchmark::kMillisecond);

// Churn sweep: the dynamic flow lifecycle engine (src/workload) on a
// dumbbell whose bandwidth scales with the arrival rate (constant
// per-flow share), two simulated seconds per iteration. Flows arrive,
// transfer 2-4 segments and genuinely depart — the steady-state cost is
// dominated by lifecycle turnover (sender/receiver setup + teardown, slot
// quarantine, idle-lease sweeps), not by any single flow's transfer.
// Counters: wall-clock churn throughput (arrivals and scheduler events
// per second, machine-dependent — gated against the baseline with the
// machine-speed factor) and the steady-state slab footprint per live
// flow-id slot (machine-independent — gated at a hard byte ceiling).
void BM_ScaleFlowsChurn(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t events = 0;
  std::size_t slab = 0;
  std::size_t slots = 0;
  for (auto _ : state) {
    harness::DumbbellConfig cfg;
    cfg.pr_flows = 0;
    cfg.sack_flows = 0;
    cfg.bottleneck_bw_bps = 40e6 * rate / 1000.0;
    cfg.access_bw_bps = 4 * cfg.bottleneck_bw_bps;
    cfg.bottleneck_queue = 500;
    cfg.access_queue = 1000;
    auto scenario = harness::make_dumbbell(cfg);
    workload::WorkloadConfig wc;
    wc.kind = workload::WorkloadKind::kPoisson;
    wc.arrival_rate = rate;
    wc.min_segments = 2;
    wc.max_segments = 4;  // mice: offered load stays under the bottleneck
    wc.quarantine = sim::Duration::millis(300);
    wc.reap_idle = sim::Duration::millis(150);
    wc.reap_sweep = sim::Duration::millis(50);
    wc.max_concurrent = 8192;
    wc.id_slots = 1 << 15;
    workload::WorkloadEngine engine(*scenario, wc);
    engine.start();
    scenario->sched.run_until(sim::TimePoint::from_seconds(2));
    const workload::WorkloadStats ws = engine.stats();
    arrivals = ws.arrivals;
    completed = ws.completed;
    events = scenario->sched.processed_count();
    slab = engine.slab_bytes();
    slots = engine.slots_in_use();
    benchmark::DoNotOptimize(arrivals);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(arrivals));
  state.counters["arrivals_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(arrivals),
      benchmark::Counter::kIsRate);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(events),
      benchmark::Counter::kIsRate);
  state.counters["completed_frac"] =
      arrivals > 0
          ? static_cast<double>(completed) / static_cast<double>(arrivals)
          : 0.0;
  state.counters["bytes_per_slot"] =
      slots > 0 ? static_cast<double>(slab) / static_cast<double>(slots) : 0.0;
  state.counters["peak_rss_bytes"] = static_cast<double>(peak_rss_bytes());
}
BENCHMARK(BM_ScaleFlowsChurn)
    ->ArgNames({"rate"})
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The top-end scale row (ROADMAP / ISSUE 9): 2^20 concurrent flows on the
// fan-in/fan-out dumbbell with the tuned million-flow on/off workload —
// a ~2 s ramp to saturation plus a 1-simulated-second steady-state
// window, one iteration (the run is minutes, not microseconds). Gated on
// its machine-independent memory columns (peak_concurrent, bytes_per_slot,
// peak_rss_bytes — tools/bench_check.py); events_per_sec and
// completed_frac ride along as recorded context. Excluded from the
// PR-gating bench job (bench_engine.py --skip-1m); nightly runs it.
void BM_ScaleFlows1M(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  workload::WorkloadStats ws;
  std::uint64_t events = 0;
  std::size_t slab = 0;
  std::size_t slots = 0;
  for (auto _ : state) {
    harness::FanDumbbellConfig fc = harness::million_fan_config(flows);
    auto scenario = harness::make_fan_dumbbell(fc);
    workload::WorkloadConfig wc = workload::million_workload_config(flows);
    workload::WorkloadEngine engine(*scenario, wc);
    engine.start();
    scenario->sched.run_until(sim::TimePoint::from_seconds(3));
    ws = engine.stats();
    events = scenario->sched.processed_count();
    slab = engine.slab_bytes();
    slots = engine.slots_in_use();
    benchmark::DoNotOptimize(events);
  }
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(events),
      benchmark::Counter::kIsRate);
  state.counters["peak_concurrent"] = static_cast<double>(ws.peak_active);
  state.counters["completed_frac"] =
      ws.arrivals > 0
          ? static_cast<double>(ws.completed) / static_cast<double>(ws.arrivals)
          : 0.0;
  state.counters["bytes_per_slot"] =
      slots > 0 ? static_cast<double>(slab) / static_cast<double>(slots) : 0.0;
  state.counters["slab_bytes"] = static_cast<double>(slab);
  state.counters["peak_rss_bytes"] = static_cast<double>(peak_rss_bytes());
}
BENCHMARK(BM_ScaleFlows1M)
    ->ArgNames({"flows"})
    ->Arg(1 << 20)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

BENCHMARK_MAIN();
