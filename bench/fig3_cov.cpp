// Figure 3 reproduction: coefficient of variation of normalized throughput
// as a function of packet loss rate, for TCP-PR and TCP-SACK flows sharing
// dumbbell and parking-lot topologies.
//
// As in the paper, the loss rate is varied by shrinking the bottleneck
// bandwidth (more flows contending for less capacity = more drops); each
// bandwidth point runs several seeds and reports each run's CoV plus the
// per-point mean. Paper expectation: PR and SACK CoV curves overlap and
// grow mildly with loss.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "stats/metrics.hpp"

namespace {

using namespace tcppr;
using harness::MeasurementWindow;
using harness::TcpVariant;

MeasurementWindow window() {
  MeasurementWindow w;
  w.total = sim::Duration::seconds(100);
  w.measured = sim::Duration::seconds(60);
  return w;
}

struct Point {
  double loss_percent = 0;
  double cov_pr = 0;
  double cov_sack = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = tcppr::bench::Options::parse(argc, argv);
  // Bottleneck bandwidths chosen to sweep the paper's ~4-13% loss range
  // with 32+32 flows.
  std::vector<double> bandwidths_mbps = {12, 9, 7, 5, 3.5, 2.5};
  int seeds = 10;
  int flows_per_side = 16;
  if (opts.quick) {
    bandwidths_mbps = {9, 3.5};
    seeds = 3;
    flows_per_side = 8;
  }

  for (const bool parking_lot : {false, true}) {
    bench::print_header(parking_lot
                            ? "Figure 3 (right): parking-lot CoV vs loss"
                            : "Figure 3 (left): dumbbell CoV vs loss");
    std::printf("%-10s %8s %10s %10s\n", "bandwidth", "loss", "CoV(PR)",
                "CoV(SACK)");
    for (const double bw : bandwidths_mbps) {
      std::vector<double> losses, covs_pr, covs_sack;
      for (int s = 0; s < seeds; ++s) {
        harness::RunResult result;
        if (parking_lot) {
          harness::ParkingLotConfig config;
          config.pr_flows = flows_per_side;
          config.sack_flows = flows_per_side;
          config.chain_bw_bps = bw * 1e6;
          config.seed = opts.seed + 97 * s;
          auto scenario = harness::make_parking_lot(config);
          result = run_scenario(*scenario, window());
        } else {
          harness::DumbbellConfig config;
          config.pr_flows = flows_per_side;
          config.sack_flows = flows_per_side;
          config.bottleneck_bw_bps = bw * 1e6;
          config.seed = opts.seed + 97 * s;
          auto scenario = harness::make_dumbbell(config);
          result = run_scenario(*scenario, window());
        }
        losses.push_back(100.0 * result.loss_rate);
        covs_pr.push_back(result.cov(TcpVariant::kTcpPr));
        covs_sack.push_back(result.cov(TcpVariant::kSack));
        std::printf("%7.1f M  %7.2f%% %10.3f %10.3f   (seed %d)\n", bw,
                    losses.back(), covs_pr.back(), covs_sack.back(), s);
      }
      std::printf("%7.1f M  %7.2f%% %10.3f %10.3f   <- mean of %d runs\n",
                  bw, stats::mean(losses), stats::mean(covs_pr),
                  stats::mean(covs_sack), seeds);
    }
  }
  tcppr::bench::print_rule();
  std::printf(
      "paper shape: CoV of TCP-PR and TCP-SACK track each other at every\n"
      "loss rate on both topologies.\n");
  return 0;
}
