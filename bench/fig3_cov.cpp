// Figure 3 reproduction: coefficient of variation of normalized throughput
// as a function of packet loss rate, for TCP-PR and TCP-SACK flows sharing
// dumbbell and parking-lot topologies.
//
// As in the paper, the loss rate is varied by shrinking the bottleneck
// bandwidth (more flows contending for less capacity = more drops); each
// bandwidth point runs several seeds and reports each run's CoV plus the
// per-point mean. Paper expectation: PR and SACK CoV curves overlap and
// grow mildly with loss.
#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "stats/metrics.hpp"

namespace {

using namespace tcppr;
using harness::MeasurementWindow;
using harness::TcpVariant;

MeasurementWindow window() {
  MeasurementWindow w;
  w.total = sim::Duration::seconds(100);
  w.measured = sim::Duration::seconds(60);
  return w;
}

// One (topology, bandwidth, seed) simulation; results filled by a worker.
struct Cell {
  bool parking_lot = false;
  double bw_mbps = 0;
  int seed_index = 0;
  double loss_percent = 0;
  double cov_pr = 0;
  double cov_sack = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = tcppr::bench::Options::parse(argc, argv);
  // Bottleneck bandwidths chosen to sweep the paper's ~4-13% loss range
  // with 32+32 flows.
  std::vector<double> bandwidths_mbps = {12, 9, 7, 5, 3.5, 2.5};
  int seeds = 10;
  int flows_per_side = 16;
  if (opts.quick) {
    bandwidths_mbps = {9, 3.5};
    seeds = 3;
    flows_per_side = 8;
  }

  // Enumerate every cell up front, run them (possibly on worker threads —
  // each owns its scheduler/network/rng), then print from the main thread
  // in enumeration order so output is identical for any --jobs value.
  std::vector<Cell> cells;
  for (const bool parking_lot : {false, true}) {
    for (const double bw : bandwidths_mbps) {
      for (int s = 0; s < seeds; ++s) {
        cells.push_back(Cell{parking_lot, bw, s, 0, 0, 0});
      }
    }
  }
  harness::parallel_for(
      opts.jobs, static_cast<int>(cells.size()), [&](int i) {
        Cell& cell = cells[static_cast<std::size_t>(i)];
        harness::RunResult result;
        if (cell.parking_lot) {
          harness::ParkingLotConfig config;
          config.pr_flows = flows_per_side;
          config.sack_flows = flows_per_side;
          config.chain_bw_bps = cell.bw_mbps * 1e6;
          config.seed = opts.seed + 97 * cell.seed_index;
          auto scenario = harness::make_parking_lot(config);
          const auto capture = bench::attach_series_capture(
              *scenario, opts,
              "parkinglot_bw" + std::to_string(cell.bw_mbps) + "_s" +
                  std::to_string(cell.seed_index));
          result = run_scenario(*scenario, window());
        } else {
          harness::DumbbellConfig config;
          config.pr_flows = flows_per_side;
          config.sack_flows = flows_per_side;
          config.bottleneck_bw_bps = cell.bw_mbps * 1e6;
          config.seed = opts.seed + 97 * cell.seed_index;
          auto scenario = harness::make_dumbbell(config);
          const auto capture = bench::attach_series_capture(
              *scenario, opts,
              "dumbbell_bw" + std::to_string(cell.bw_mbps) + "_s" +
                  std::to_string(cell.seed_index));
          result = run_scenario(*scenario, window());
        }
        cell.loss_percent = 100.0 * result.loss_rate;
        cell.cov_pr = result.cov(TcpVariant::kTcpPr);
        cell.cov_sack = result.cov(TcpVariant::kSack);
      });

  std::size_t next = 0;
  for (const bool parking_lot : {false, true}) {
    bench::print_header(parking_lot
                            ? "Figure 3 (right): parking-lot CoV vs loss"
                            : "Figure 3 (left): dumbbell CoV vs loss");
    std::printf("%-10s %8s %10s %10s\n", "bandwidth", "loss", "CoV(PR)",
                "CoV(SACK)");
    for (const double bw : bandwidths_mbps) {
      std::vector<double> losses, covs_pr, covs_sack;
      for (int s = 0; s < seeds; ++s) {
        const Cell& cell = cells[next++];
        losses.push_back(cell.loss_percent);
        covs_pr.push_back(cell.cov_pr);
        covs_sack.push_back(cell.cov_sack);
        std::printf("%7.1f M  %7.2f%% %10.3f %10.3f   (seed %d)\n", bw,
                    cell.loss_percent, cell.cov_pr, cell.cov_sack, s);
      }
      std::printf("%7.1f M  %7.2f%% %10.3f %10.3f   <- mean of %d runs\n",
                  bw, stats::mean(losses), stats::mean(covs_pr),
                  stats::mean(covs_sack), seeds);
    }
  }
  tcppr::bench::print_rule();
  std::printf(
      "paper shape: CoV of TCP-PR and TCP-SACK track each other at every\n"
      "loss rate on both topologies.\n");
  return 0;
}
