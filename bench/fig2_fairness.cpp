// Figure 2 reproduction: fairness of TCP-PR competing with TCP-SACK.
//
// For each total flow count n (half TCP-PR, half TCP-SACK, common source
// and destination), over the dumbbell and parking-lot topologies, prints
// the per-flow normalized throughput range and the mean normalized
// throughput of each protocol — the series plotted in Figure 2.
// Paper expectation: both means stay ~1 across all flow counts.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace tcppr;
using harness::MeasurementWindow;
using harness::RunResult;
using harness::TcpVariant;

MeasurementWindow window() {
  MeasurementWindow w;
  w.total = sim::Duration::seconds(100);
  w.measured = sim::Duration::seconds(60);
  return w;
}

void report(const char* topology, int flows, const RunResult& result) {
  const auto norm = result.normalized();
  const auto [lo, hi] = std::minmax_element(norm.begin(), norm.end());
  std::printf(
      "%-12s %5d  %10.3f %12.3f %11.3f %11.3f %9.2f%%\n", topology, flows,
      result.mean_normalized(TcpVariant::kTcpPr),
      result.mean_normalized(TcpVariant::kSack), *lo, *hi,
      100.0 * result.loss_rate);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = tcppr::bench::Options::parse(argc, argv);
  std::vector<int> counts = {4, 8, 16, 32, 64};
  if (opts.quick) counts = {4, 16};

  bench::print_header(
      "Figure 2: TCP-PR vs TCP-SACK fairness (alpha=0.995, beta=3)");
  std::printf("%-12s %5s  %10s %12s %11s %11s %10s\n", "topology", "flows",
              "mean(PR)", "mean(SACK)", "min(T_i)", "max(T_i)", "loss");

  for (const int n : counts) {
    harness::DumbbellConfig dumbbell;
    dumbbell.pr_flows = n / 2;
    dumbbell.sack_flows = n - n / 2;
    dumbbell.seed = opts.seed;
    dumbbell.pr.alpha = 0.995;
    dumbbell.pr.beta = 3.0;
    auto scenario = harness::make_dumbbell(dumbbell);
    const auto capture = bench::attach_series_capture(
        *scenario, opts, "dumbbell_n" + std::to_string(n));
    report("dumbbell", n, run_scenario(*scenario, window()));
  }
  for (const int n : counts) {
    harness::ParkingLotConfig lot;
    lot.pr_flows = n / 2;
    lot.sack_flows = n - n / 2;
    lot.seed = opts.seed;
    lot.pr.alpha = 0.995;
    lot.pr.beta = 3.0;
    auto scenario = harness::make_parking_lot(lot);
    const auto capture = bench::attach_series_capture(
        *scenario, opts, "parkinglot_n" + std::to_string(n));
    report("parking-lot", n, run_scenario(*scenario, window()));
  }
  bench::print_rule();
  std::printf(
      "paper shape: mean normalized throughput ~1 for both protocols at\n"
      "every flow count, on both topologies.\n");
  return 0;
}
