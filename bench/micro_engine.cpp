// Micro-benchmarks (google-benchmark): the cost centers that Remark 1 of
// the paper discusses — the Newton iteration for alpha^(1/cwnd) — plus the
// event engine and an end-to-end simulation-throughput measurement.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/tcp_pr.hpp"
#include "harness/experiment.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace tcppr;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sched.schedule_at(sim::TimePoint::from_seconds(i * 1e-6), [] {});
    }
    sched.run();
    benchmark::DoNotOptimize(sched.processed_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::vector<sim::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(
          sched.schedule_at(sim::TimePoint::from_seconds(i * 1e-6), [] {}));
    }
    for (const auto id : ids) sched.cancel(id);
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerCancel);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(1);
  double acc = 0;
  for (auto _ : state) {
    acc += rng.uniform();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

// Remark 1: the per-ACK cost TCP-PR adds over Reno is the two-iteration
// Newton solve. Compare it against libm's pow.
void BM_NewtonAlphaRoot(benchmark::State& state) {
  double cwnd = 1.0;
  double acc = 0;
  for (auto _ : state) {
    cwnd = cwnd >= 1000 ? 1.0 : cwnd + 1.37;
    acc += core::TcpPrSender::newton_alpha_root(0.995, cwnd, 2);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NewtonAlphaRoot);

void BM_ExactPow(benchmark::State& state) {
  double cwnd = 1.0;
  double acc = 0;
  for (auto _ : state) {
    cwnd = cwnd >= 1000 ? 1.0 : cwnd + 1.37;
    acc += std::pow(0.995, 1.0 / cwnd);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ExactPow);

// End-to-end: simulated seconds per wall second for a loaded dumbbell.
void BM_DumbbellSimulation(benchmark::State& state) {
  for (auto _ : state) {
    harness::DumbbellConfig config;
    config.pr_flows = static_cast<int>(state.range(0)) / 2;
    config.sack_flows = static_cast<int>(state.range(0)) / 2;
    auto scenario = harness::make_dumbbell(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(10));
    benchmark::DoNotOptimize(scenario->sched.processed_count());
  }
}
BENCHMARK(BM_DumbbellSimulation)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// TCP-PR vs SACK sender processing cost on the same workload.
void BM_MultipathSenderCost(benchmark::State& state) {
  const auto variant = state.range(0) == 0 ? harness::TcpVariant::kTcpPr
                                           : harness::TcpVariant::kSack;
  for (auto _ : state) {
    harness::MultipathConfig config;
    config.variant = variant;
    config.epsilon = 0;
    auto scenario = harness::make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(5));
    benchmark::DoNotOptimize(scenario->sched.processed_count());
  }
}
BENCHMARK(BM_MultipathSenderCost)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
