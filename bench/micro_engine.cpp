// Micro-benchmarks (google-benchmark): the cost centers that Remark 1 of
// the paper discusses — the Newton iteration for alpha^(1/cwnd) — plus the
// event engine and an end-to-end simulation-throughput measurement.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "core/tcp_pr.hpp"
#include "harness/experiment.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace tcppr;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sched.schedule_at(sim::TimePoint::from_seconds(i * 1e-6), [] {});
    }
    sched.run();
    benchmark::DoNotOptimize(sched.processed_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::vector<sim::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(
          sched.schedule_at(sim::TimePoint::from_seconds(i * 1e-6), [] {}));
    }
    for (const auto id : ids) sched.cancel(id);
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerCancel);

// Timer churn against a live population: randomized cancel + reschedule,
// the access pattern TCP RTO restarts generate. Unlike
// BM_SchedulerScheduleRun the pushes are not monotone, so the heap backend
// runs in full heap mode rather than the sorted-append fast path.
// Arg: 0 = binary heap, 1 = calendar queue.
void BM_SchedulerChurnBackend(benchmark::State& state) {
  const auto backend = state.range(0) == 0
                           ? sim::SchedulerBackend::kBinaryHeap
                           : sim::SchedulerBackend::kCalendarQueue;
  constexpr int kLive = 4096;
  constexpr int kChurn = 100000;
  for (auto _ : state) {
    sim::Scheduler sched(backend);
    sim::Rng rng(1234);
    std::vector<sim::EventId> live;
    live.reserve(kLive);
    for (int i = 0; i < kLive; ++i) {
      live.push_back(sched.schedule_at(
          sim::TimePoint::from_seconds(rng.uniform(0.0, 1.0)), [] {}));
    }
    for (int i = 0; i < kChurn; ++i) {
      const auto slot = rng.uniform_int(kLive);
      sched.cancel(live[slot]);
      live[slot] = sched.schedule_at(
          sim::TimePoint::from_seconds(rng.uniform(0.0, 1.0)), [] {});
    }
    sched.run();
    benchmark::DoNotOptimize(sched.processed_count());
  }
  state.SetItemsProcessed(state.iterations() * kChurn);
}
BENCHMARK(BM_SchedulerChurnBackend)->Arg(0)->Arg(1);

// Steady-state forwarding: a burst of packets crossing a three-hop chain
// with no transport on top. Exercises the per-hop path in isolation —
// queue discipline, link serialization, packet-pool recycling, inline
// header storage.
void BM_PacketForwardLoop(benchmark::State& state) {
  struct Sink : net::Agent {
    std::uint64_t received = 0;
    void deliver(net::Packet&&) override { ++received; }
  };
  constexpr int kPackets = 10000;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched);
    const net::NodeId a = net.add_node();
    const net::NodeId b = net.add_node();
    const net::NodeId c = net.add_node();
    const net::NodeId d = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    cfg.delay = sim::Duration::micros(10);
    cfg.queue_limit_packets = kPackets + 1;
    net.add_link(a, b, cfg);
    net.add_link(b, c, cfg);
    net.add_link(c, d, cfg);
    net.compute_static_routes();
    Sink sink;
    net.node(d).attach_agent(/*flow=*/1, &sink);
    for (int i = 0; i < kPackets; ++i) {
      net::Packet pkt;
      pkt.uid = net.allocate_uid();
      pkt.src = a;
      pkt.dst = d;
      pkt.size_bytes = 1000;
      pkt.type = net::PacketType::kTcpData;
      pkt.tcp.flow = 1;
      pkt.tcp.seq = i;
      net.node(a).originate(std::move(pkt));
    }
    sched.run();
    benchmark::DoNotOptimize(sink.received);
  }
  state.SetItemsProcessed(state.iterations() * kPackets * 3);
}
BENCHMARK(BM_PacketForwardLoop)->Unit(benchmark::kMillisecond);

// The same three-hop forwarding burst with the batched hot path toggled:
// Arg 0 = unbatched (per-packet scheduler events), 1 = batched (link-pump
// carrier events, batched queue ops). The events_per_packet counter is the
// headline metric — carrier events amortize across whole delivery runs, so
// the batched row drops well below one scheduler event per delivered
// packet while the unbatched row pays several.
void BM_BatchDelivery(benchmark::State& state) {
  struct Sink : net::Agent {
    std::uint64_t received = 0;
    void deliver(net::Packet&&) override { ++received; }
  };
  const bool batching = state.range(0) != 0;
  constexpr int kPackets = 10000;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    // The mode is sampled once at Network construction; restore the
    // process default immediately so nothing else inherits it.
    net::set_hot_path_batching(batching);
    sim::Scheduler sched;
    net::Network net(sched);
    net::set_hot_path_batching(true);
    const net::NodeId a = net.add_node();
    const net::NodeId b = net.add_node();
    const net::NodeId c = net.add_node();
    const net::NodeId d = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    cfg.delay = sim::Duration::micros(10);
    cfg.queue_limit_packets = kPackets + 1;
    net.add_link(a, b, cfg);
    net.add_link(b, c, cfg);
    net.add_link(c, d, cfg);
    net.compute_static_routes();
    Sink sink;
    net.node(d).attach_agent(/*flow=*/1, &sink);
    for (int i = 0; i < kPackets; ++i) {
      net::Packet pkt;
      pkt.uid = net.allocate_uid();
      pkt.src = a;
      pkt.dst = d;
      pkt.size_bytes = 1000;
      pkt.type = net::PacketType::kTcpData;
      pkt.tcp.flow = 1;
      pkt.tcp.seq = i;
      net.node(a).originate(std::move(pkt));
    }
    sched.run();
    events = sched.processed_count();
    delivered = sink.received;
    benchmark::DoNotOptimize(sink.received);
  }
  state.SetItemsProcessed(state.iterations() * kPackets * 3);
  state.counters["events_per_packet"] =
      delivered ? static_cast<double>(events) / static_cast<double>(delivered)
                : 0.0;
}
BENCHMARK(BM_BatchDelivery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The forwarding burst of BM_PacketForwardLoop with reordering telemetry:
// Arg 0 = taps compiled in but not attached (the one-branch-when-off cost
// every deployment pays), 1 = a ReorderTap attached to every link (the
// in-order sketch update per delivery). Paired with BM_PacketForwardLoop
// by tools/bench_check.py: /0 must track the untapped loop and /1 must
// stay within a small constant factor of /0.
void BM_TelemetryTap(benchmark::State& state) {
  struct Sink : net::Agent {
    std::uint64_t received = 0;
    void deliver(net::Packet&&) override { ++received; }
  };
  const bool tapped = state.range(0) != 0;
  constexpr int kPackets = 10000;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched);
    const net::NodeId a = net.add_node();
    const net::NodeId b = net.add_node();
    const net::NodeId c = net.add_node();
    const net::NodeId d = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    cfg.delay = sim::Duration::micros(10);
    cfg.queue_limit_packets = kPackets + 1;
    net.add_link(a, b, cfg);
    net.add_link(b, c, cfg);
    net.add_link(c, d, cfg);
    net.compute_static_routes();
    std::unique_ptr<telemetry::Telemetry> taps;
    if (tapped) {
      taps = std::make_unique<telemetry::Telemetry>(net,
                                                    telemetry::TelemetryConfig{});
    }
    Sink sink;
    net.node(d).attach_agent(/*flow=*/1, &sink);
    for (int i = 0; i < kPackets; ++i) {
      net::Packet pkt;
      pkt.uid = net.allocate_uid();
      pkt.src = a;
      pkt.dst = d;
      pkt.size_bytes = 1000;
      pkt.type = net::PacketType::kTcpData;
      pkt.tcp.flow = 1;
      pkt.tcp.seq = i;
      net.node(a).originate(std::move(pkt));
    }
    sched.run();
    if (taps != nullptr) {
      benchmark::DoNotOptimize(taps->aggregate().data_packets);
    }
    benchmark::DoNotOptimize(sink.received);
  }
  state.SetItemsProcessed(state.iterations() * kPackets * 3);
}
BENCHMARK(BM_TelemetryTap)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(1);
  double acc = 0;
  for (auto _ : state) {
    acc += rng.uniform();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

// Remark 1: the per-ACK cost TCP-PR adds over Reno is the two-iteration
// Newton solve. Compare it against libm's pow.
void BM_NewtonAlphaRoot(benchmark::State& state) {
  double cwnd = 1.0;
  double acc = 0;
  for (auto _ : state) {
    cwnd = cwnd >= 1000 ? 1.0 : cwnd + 1.37;
    acc += core::TcpPrSender::newton_alpha_root(0.995, cwnd, 2);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NewtonAlphaRoot);

void BM_ExactPow(benchmark::State& state) {
  double cwnd = 1.0;
  double acc = 0;
  for (auto _ : state) {
    cwnd = cwnd >= 1000 ? 1.0 : cwnd + 1.37;
    acc += std::pow(0.995, 1.0 / cwnd);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ExactPow);

// End-to-end: simulated seconds per wall second for a loaded dumbbell.
void BM_DumbbellSimulation(benchmark::State& state) {
  for (auto _ : state) {
    harness::DumbbellConfig config;
    config.pr_flows = static_cast<int>(state.range(0)) / 2;
    config.sack_flows = static_cast<int>(state.range(0)) / 2;
    auto scenario = harness::make_dumbbell(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(10));
    benchmark::DoNotOptimize(scenario->sched.processed_count());
  }
}
BENCHMARK(BM_DumbbellSimulation)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// TCP-PR vs SACK sender processing cost on the same workload.
void BM_MultipathSenderCost(benchmark::State& state) {
  const auto variant = state.range(0) == 0 ? harness::TcpVariant::kTcpPr
                                           : harness::TcpVariant::kSack;
  for (auto _ : state) {
    harness::MultipathConfig config;
    config.variant = variant;
    config.epsilon = 0;
    auto scenario = harness::make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(5));
    benchmark::DoNotOptimize(scenario->sched.processed_count());
  }
}
BENCHMARK(BM_MultipathSenderCost)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
