// Backend equivalence: every scheduler backend (binary heap, calendar
// queue, timing wheel) must produce byte-identical delivery streams. The
// DeliveryHasher digest over (time, flow, endpoints, seq, size, is_ack) is
// the witness: equal hashes mean the backends agree on every delivery the
// simulation made, in order.
//
// Two matrices:
//   - 12 variants x 3 paper topologies x 3 backends (clean links), and
//   - 200 fuzz seeds (faulty links, random topologies) heap vs wheel,
//     sharded into 8 parameterized cases so ctest -j spreads the work.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/scenarios.hpp"
#include "validate/fuzzer.hpp"

namespace tcppr::validate {
namespace {

constexpr sim::SchedulerBackend kBackends[] = {
    sim::SchedulerBackend::kBinaryHeap,
    sim::SchedulerBackend::kCalendarQueue,
    sim::SchedulerBackend::kTimingWheel,
};

const char* backend_name(sim::SchedulerBackend backend) {
  switch (backend) {
    case sim::SchedulerBackend::kBinaryHeap:
      return "heap";
    case sim::SchedulerBackend::kCalendarQueue:
      return "calendar";
    case sim::SchedulerBackend::kTimingWheel:
      return "wheel";
  }
  return "?";
}

FuzzResult run_on(FuzzCase c, sim::SchedulerBackend backend) {
  c.backend = backend;
  return run_fuzz_case(c);
}

class VariantBackendEquivalence
    : public testing::TestWithParam<harness::TcpVariant> {};

TEST_P(VariantBackendEquivalence, AllTopologiesHashIdentically) {
  const FuzzCase::Topology topologies[] = {
      FuzzCase::Topology::kDumbbell,
      FuzzCase::Topology::kParkingLot,
      FuzzCase::Topology::kMultipath,
  };
  for (const auto topology : topologies) {
    FuzzCase c;
    c.topology = topology;
    c.flows = 1;
    c.variants = {GetParam()};
    c.duration_s = 2.0;
    const FuzzResult reference = run_on(c, kBackends[0]);
    EXPECT_TRUE(reference.ok)
        << to_string(topology) << ": " << reference.first_violation;
    EXPECT_GT(reference.delivered, 0u) << to_string(topology);
    for (std::size_t i = 1; i < std::size(kBackends); ++i) {
      const FuzzResult other = run_on(c, kBackends[i]);
      EXPECT_EQ(other.delivery_hash, reference.delivery_hash)
          << to_string(topology) << " on " << backend_name(kBackends[i])
          << " diverged from heap";
      EXPECT_EQ(other.delivered, reference.delivered)
          << to_string(topology) << " on " << backend_name(kBackends[i]);
    }
  }
}

std::string variant_test_name(
    const testing::TestParamInfo<harness::TcpVariant>& info) {
  std::string name = harness::to_string(info.param);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantBackendEquivalence,
                         testing::ValuesIn(harness::all_variants()),
                         variant_test_name);

// 200 fuzz seeds, heap vs wheel, in 8 shards of 25 seeds each. The fuzz
// sampler exercises faulty links (loss, jitter, flaps, reconfiguration)
// and all four topologies, so this covers interleavings the clean matrix
// above cannot reach.
class FuzzSeedBackendEquivalence : public testing::TestWithParam<int> {};

TEST_P(FuzzSeedBackendEquivalence, WheelMatchesHeap) {
  constexpr int kSeedsPerShard = 25;
  const std::uint64_t first =
      1 + static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard;
  for (std::uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    const FuzzCase c = sample_fuzz_case(seed);
    const FuzzResult heap = run_on(c, sim::SchedulerBackend::kBinaryHeap);
    const FuzzResult wheel = run_on(c, sim::SchedulerBackend::kTimingWheel);
    EXPECT_EQ(wheel.delivery_hash, heap.delivery_hash)
        << "seed " << seed << " (" << describe(c) << ")";
    EXPECT_EQ(wheel.delivered, heap.delivered) << "seed " << seed;
    EXPECT_EQ(wheel.ok, heap.ok) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds1To200, FuzzSeedBackendEquivalence,
                         testing::Range(0, 8));

}  // namespace
}  // namespace tcppr::validate
