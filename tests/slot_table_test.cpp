// SlotTable unit tests: the O(1) flow-id slot lifecycle (quarantine FIFO,
// generation guards, slab budget) proven directly at the 2^20 id-space
// size — no transport objects involved, so the full-size cases are cheap
// enough to run under every preset including sanitizers.
#include "workload/slot_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tcppr::workload {
namespace {

constexpr std::int64_t kQuarantineNs = 2'000'000'000;  // 2 s
constexpr std::int32_t kMillion = 1 << 20;

TEST(SlotTable, AllocatesFreshSlotsInOrder) {
  SlotTable t(16, kQuarantineNs);
  for (std::int32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(t.allocate(0), i);
    EXPECT_TRUE(t.active(static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(t.allocate(0), -1);  // exhausted
  EXPECT_EQ(t.active_count(), 16u);
  EXPECT_EQ(t.size(), 16u);
}

TEST(SlotTable, QuarantineBlocksReuseUntilCooldown) {
  SlotTable t(1, kQuarantineNs);
  ASSERT_EQ(t.allocate(0), 0);
  t.release(0, 1'000);
  // Still cooling: the only slot is unavailable until quarantine elapses.
  EXPECT_EQ(t.allocate(1'000 + kQuarantineNs - 1), -1);
  EXPECT_EQ(t.allocate(1'000 + kQuarantineNs), 0);
}

TEST(SlotTable, RecyclesInFifoOrder) {
  // Released slots must come back coolest-first: release 3,1,2 and after
  // the cool-down the ready order (LIFO pop over a FIFO graduation) makes
  // the most recently graduated slot pop first — but graduation order
  // itself must be release order.
  SlotTable t(4, kQuarantineNs);
  for (int i = 0; i < 4; ++i) ASSERT_EQ(t.allocate(0), i);
  t.release(3, 100);
  t.release(1, 200);
  t.release(2, 300);
  // All three cooled by now; they graduate 3, 1, 2 and pop LIFO: 2, 1, 3.
  const std::int64_t later = 300 + kQuarantineNs;
  EXPECT_EQ(t.allocate(later), 2);
  EXPECT_EQ(t.allocate(later), 1);
  EXPECT_EQ(t.allocate(later), 3);
  EXPECT_EQ(t.allocate(later), -1);  // slot 0 still active
}

TEST(SlotTable, PartialCooldownGraduatesOnlyTheFront) {
  SlotTable t(2, kQuarantineNs);
  ASSERT_EQ(t.allocate(0), 0);
  ASSERT_EQ(t.allocate(0), 1);
  t.release(0, 0);
  t.release(1, kQuarantineNs / 2);
  // At t = kQuarantineNs only slot 0 has cooled; slot 1 is mid-quarantine.
  EXPECT_EQ(t.allocate(kQuarantineNs), 0);
  EXPECT_EQ(t.allocate(kQuarantineNs), -1);
  EXPECT_EQ(t.allocate(kQuarantineNs / 2 + kQuarantineNs), 1);
}

TEST(SlotTable, GenerationBumpsOnEveryAllocation) {
  // The incarnation guard: a (slot, generation) pair captured by an
  // in-flight event must go stale the moment the slot is recycled.
  SlotTable t(1, /*quarantine_ns=*/0);
  ASSERT_EQ(t.allocate(0), 0);
  const std::uint32_t gen1 = t.generation(0);
  t.release(0, 0);
  EXPECT_EQ(t.generation(0), gen1) << "release must not bump the generation "
                                      "(in-flight events still compare)";
  ASSERT_EQ(t.allocate(1), 0);
  const std::uint32_t gen2 = t.generation(0);
  EXPECT_EQ(gen2, gen1 + 1);
  // Forced collision loop: every recycle distinguishes its incarnation.
  std::uint32_t prev = gen2;
  for (int i = 0; i < 1000; ++i) {
    t.release(0, i);
    ASSERT_EQ(t.allocate(i), 0);
    ASSERT_EQ(t.generation(0), prev + 1);
    prev = t.generation(0);
  }
}

TEST(SlotTable, MillionSlotsAllocateRecycleAndStayInBudget) {
  // The 2^20 id space end to end: fill, release everything, verify the
  // quarantine FIFO recycles after cooldown at full size, and the slab
  // stays inside the per-slot byte budget. Every operation is O(1), so
  // this runs in well under a second even under sanitizers.
  SlotTable t(kMillion, kQuarantineNs);
  for (std::int32_t i = 0; i < kMillion; ++i) {
    ASSERT_EQ(t.allocate(0), i);
  }
  EXPECT_EQ(t.allocate(0), -1);
  EXPECT_EQ(t.active_count(), static_cast<std::size_t>(kMillion));

  // Release in slot order at staggered times.
  for (std::int32_t i = 0; i < kMillion; ++i) {
    t.release(static_cast<std::uint32_t>(i), i);
  }
  EXPECT_EQ(t.active_count(), 0u);
  EXPECT_EQ(t.cooling_count(), static_cast<std::size_t>(kMillion));

  // Half cooled: allocations drain the FIFO front (oldest releases) only.
  const std::int64_t half = kMillion / 2 + kQuarantineNs - 1;
  std::vector<std::uint32_t> got;
  for (;;) {
    const std::int32_t s = t.allocate(half);
    if (s < 0) break;
    got.push_back(static_cast<std::uint32_t>(s));
    ASSERT_EQ(t.generation(static_cast<std::uint32_t>(s)), 2u);
  }
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kMillion / 2));
  for (const std::uint32_t s : got) {
    EXPECT_LT(s, static_cast<std::uint32_t>(kMillion / 2));
  }

  // Everything cooled: the rest recycles too.
  const std::int64_t later = kMillion + kQuarantineNs;
  std::size_t rest = 0;
  while (t.allocate(later) >= 0) ++rest;
  EXPECT_EQ(rest, static_cast<std::size_t>(kMillion) - got.size());
  EXPECT_EQ(t.active_count(), static_cast<std::size_t>(kMillion));

  // Slab budget at full occupancy: vector capacity growth can at most
  // double the per-slot arrays, and each non-active slot adds one queue
  // entry (none here — everything is active).
  EXPECT_LE(t.slab_bytes(),
            2 * t.size() * SlotTable::kSlabBytesPerSlot + (1u << 16));
}

TEST(SlotTable, SlabBytesCountQueues) {
  SlotTable t(1024, kQuarantineNs);
  for (int i = 0; i < 1024; ++i) ASSERT_GE(t.allocate(0), 0);
  const std::size_t active_slab = t.slab_bytes();
  for (int i = 0; i < 1024; ++i) t.release(static_cast<std::uint32_t>(i), 0);
  EXPECT_GT(t.slab_bytes(), active_slab);  // cooling FIFO entries counted
  EXPECT_LE(t.slab_bytes(),
            2 * t.size() * (SlotTable::kSlabBytesPerSlot + sizeof(uint32_t)) +
                (1u << 16));
}

}  // namespace
}  // namespace tcppr::workload
