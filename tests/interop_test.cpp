// Cross-feature interoperability tests: sender variants against
// non-default receiver configurations (no SACK, delayed ACKs), RED
// bottlenecks, and mixed-variant sharing.
#include <gtest/gtest.h>

#include <memory>

#include "core/tcp_pr.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sack.hpp"
#include "test_util.hpp"

namespace tcppr {
namespace {

using harness::TcpVariant;
using testutil::PathFixture;

// Builds a flow with a custom receiver configuration.
tcp::SenderBase* add_flow_with_receiver(PathFixture& f, TcpVariant variant,
                                        net::FlowId flow,
                                        tcp::ReceiverConfig rc,
                                        tcp::TcpConfig tc = {}) {
  f.receivers.push_back(
      std::make_unique<tcp::Receiver>(*f.network, f.dst, f.src, flow, rc));
  f.senders.push_back(harness::make_sender(variant, *f.network, f.src, f.dst,
                                           flow, tc, core::TcpPrConfig{}));
  return f.senders.back().get();
}

TEST(Interop, SackSenderFallsBackToDupacksWithoutSackOption) {
  // Receiver with SACK generation disabled: the sender must still detect
  // loss via duplicate-ACK counting.
  PathFixture f;
  tcp::ReceiverConfig rc;
  rc.generate_sack = false;
  rc.generate_dsack = false;
  tcp::TcpConfig tc;
  tc.max_cwnd = 30;
  auto* sender = add_flow_with_receiver(f, TcpVariant::kSack, 1, rc, tc);
  int dropped = 0;
  f.fwd->set_drop_filter([&](const net::Packet& pkt) {
    if (pkt.type == net::PacketType::kTcpData && pkt.tcp.seq == 50 &&
        dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  sender->start();
  f.run_for(10);
  EXPECT_EQ(sender->stats().fast_retransmits, 1u);
  EXPECT_EQ(sender->stats().timeouts, 0u);
  EXPECT_GT(sender->stats().segments_acked, 1000);
}

TEST(Interop, TcpPrWorksWithDelayedAckReceiver) {
  PathFixture f;
  tcp::ReceiverConfig rc;
  rc.delayed_ack = true;
  tcp::TcpConfig tc;
  tc.max_cwnd = 30;
  auto* sender = add_flow_with_receiver(f, TcpVariant::kTcpPr, 1, rc, tc);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(500));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(30);
  EXPECT_TRUE(done);
  EXPECT_EQ(sender->stats().retransmissions, 0u);
}

TEST(Interop, DelayedAcksSlowSlowStartButNotThroughput) {
  const auto acked = [](bool delack) {
    PathFixture f;
    tcp::ReceiverConfig rc;
    rc.delayed_ack = delack;
    tcp::TcpConfig tc;
    tc.max_cwnd = 60;
    auto* sender = add_flow_with_receiver(f, TcpVariant::kTcpPr, 1, rc, tc);
    sender->start();
    f.run_for(20);
    return sender->stats().segments_acked;
  };
  const auto with = acked(true);
  const auto without = acked(false);
  // Both saturate the 10 Mbps bottleneck eventually.
  EXPECT_GT(with, 0.85 * static_cast<double>(without));
}

TEST(Interop, TcpPrOverRedBottleneck) {
  // RED drops early and randomly rather than in tail bursts; TCP-PR's
  // timer detection must still converge to the available rate.
  sim::Scheduler sched;
  net::Network network(sched);
  const auto a = network.add_node();
  const auto r = network.add_node();
  const auto b = network.add_node();
  net::LinkConfig access;
  access.bandwidth_bps = 1e9;
  access.delay = sim::Duration::millis(1);
  network.add_duplex_link(a, r, access);
  net::RedQueue::Params red;
  red.limit_packets = 100;
  red.min_thresh = 10;
  red.max_thresh = 40;
  network.add_link_with_queue(
      r, b, 10e6, sim::Duration::millis(10),
      std::make_unique<net::RedQueue>(red, sim::Rng(3)));
  net::LinkConfig back;
  back.bandwidth_bps = 10e6;
  back.delay = sim::Duration::millis(10);
  network.add_link(b, r, back);
  network.compute_static_routes();

  tcp::Receiver receiver(network, b, a, 1);
  core::TcpPrSender sender(network, a, b, 1);
  sender.start();
  sched.run_until(sim::TimePoint::from_seconds(30));
  const double goodput =
      static_cast<double>(receiver.stats().goodput_bytes) * 8 / 30.0;
  EXPECT_GT(goodput, 5e6);
  EXPECT_GT(sender.stats().cwnd_halvings, 3u);  // RED kept trimming it
  // RED sometimes drops a retransmission chain, which escalates to the
  // coarse backoff exactly as a NewReno RTO would; it must stay rare.
  EXPECT_LT(sender.stats().extreme_loss_events, 10u);
}

TEST(Interop, MixedVariantsShareOneBottleneck) {
  // One flow of each major variant on the same queue: everyone gets a
  // non-trivial share, nobody starves.
  PathFixture f;
  std::vector<tcp::SenderBase*> senders;
  net::FlowId flow = 1;
  for (const TcpVariant v :
       {TcpVariant::kTcpPr, TcpVariant::kSack, TcpVariant::kNewReno,
        TcpVariant::kTdFr, TcpVariant::kIncByN}) {
    senders.push_back(f.add_flow(v, flow++));
  }
  for (auto* s : senders) s->start();
  f.run_for(60);
  double total = 0;
  for (auto* s : senders) {
    total += static_cast<double>(s->stats().segments_acked);
  }
  for (auto* s : senders) {
    const double share =
        static_cast<double>(s->stats().segments_acked) / total;
    EXPECT_GT(share, 0.05) << s->algorithm();
    EXPECT_LT(share, 0.55) << s->algorithm();
  }
}

TEST(Interop, TwoPrFlowsConvergeToEqualShares) {
  PathFixture f;
  auto* a = f.add_flow(TcpVariant::kTcpPr, 1);
  auto* b = f.add_flow(TcpVariant::kTcpPr, 2);
  a->start();
  // Late joiner must still converge (AIMD).
  f.sched.schedule_at(sim::TimePoint::from_seconds(5),
                      [&] { b->start(); });
  f.run_for(120);
  const auto a1 = a->stats().bytes_newly_acked;
  const auto b1 = b->stats().bytes_newly_acked;
  f.run_for(60);
  const double a_rate = static_cast<double>(a->stats().bytes_newly_acked - a1);
  const double b_rate = static_cast<double>(b->stats().bytes_newly_acked - b1);
  EXPECT_NEAR(a_rate / (a_rate + b_rate), 0.5, 0.15);
}

TEST(Interop, ZeroLengthTransferCompletesImmediately) {
  PathFixture f;
  auto* sender = f.add_flow(TcpVariant::kTcpPr, 1);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(0));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(1);
  // Nothing to send and nothing outstanding; no packets were emitted.
  EXPECT_EQ(sender->stats().data_packets_sent, 0u);
  EXPECT_TRUE(done);
  EXPECT_TRUE(sender->complete());
}

TEST(Interop, SingleSegmentTransfer) {
  for (const TcpVariant v : harness::all_variants()) {
    PathFixture f;
    auto* sender = f.add_flow(v, 1);
    sender->set_data_source(std::make_unique<tcp::FixedDataSource>(1));
    bool done = false;
    sender->set_completion_callback([&] { done = true; });
    sender->start();
    f.run_for(5);
    EXPECT_TRUE(done) << harness::to_string(v);
  }
}

}  // namespace
}  // namespace tcppr
