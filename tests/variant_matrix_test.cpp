// Variant x topology matrix: every implemented sender runs on each of the
// paper's three topologies under the invariant checker. Each cell must
// finish with zero violations and nonzero goodput — the broad correctness
// net behind the per-variant unit tests.
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "validate/invariants.hpp"

namespace tcppr::validate {
namespace {

using harness::TcpVariant;

// Short windows keep the 36-cell matrix fast; reordering, loss and
// recovery all happen well within a few seconds at these bandwidths.
harness::MeasurementWindow short_window() {
  harness::MeasurementWindow w;
  w.total = sim::Duration::seconds(8);
  w.measured = sim::Duration::seconds(4);
  return w;
}

void run_cell(harness::Scenario& scenario, TcpVariant variant,
              const char* topology) {
  InvariantChecker checker(scenario);
  checker.start();
  const auto result = run_scenario(scenario, short_window());
  checker.finalize();

  EXPECT_TRUE(checker.ok()) << topology << "/" << to_string(variant) << ":\n"
                            << checker.report();
  EXPECT_GT(checker.sweeps(), 1u);
  ASSERT_FALSE(result.flows.empty());
  EXPECT_GT(result.flows[0].goodput_bps, 0.0)
      << topology << "/" << to_string(variant) << " made no progress";
}

TEST(VariantMatrix, DumbbellAllVariantsClean) {
  for (const TcpVariant variant : harness::all_variants()) {
    harness::DumbbellConfig config;
    config.pr_flows = 0;
    config.sack_flows = 0;
    auto scenario = harness::make_dumbbell(config);
    scenario->add_flow(variant, scenario->src_host, scenario->dst_host,
                       /*flow=*/1, config.tcp, config.pr,
                       sim::TimePoint::origin());
    run_cell(*scenario, variant, "dumbbell");
  }
}

TEST(VariantMatrix, ParkingLotAllVariantsClean) {
  for (const TcpVariant variant : harness::all_variants()) {
    harness::ParkingLotConfig config;
    config.pr_flows = 0;
    config.sack_flows = 0;
    auto scenario = harness::make_parking_lot(config);
    scenario->add_flow(variant, scenario->src_host, scenario->dst_host,
                       /*flow=*/1, config.tcp, config.pr,
                       sim::TimePoint::origin());
    run_cell(*scenario, variant, "parking-lot");
  }
}

TEST(VariantMatrix, MultipathAllVariantsClean) {
  for (const TcpVariant variant : harness::all_variants()) {
    harness::MultipathConfig config;
    config.variant = variant;
    config.epsilon = 1;  // moderate path randomization: persistent reordering
    auto scenario = harness::make_multipath(config);
    run_cell(*scenario, variant, "multipath");
  }
}

}  // namespace
}  // namespace tcppr::validate
