// Randomized model-based test for the scheduler: a long random sequence of
// schedule / cancel / run_until operations executed against both backends
// and checked against a naive reference model (sorted vector + linear
// scan). Any divergence in execution order, fired set, or clock is a bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::sim {
namespace {

struct ModelEvent {
  std::int64_t time_ns;
  std::uint64_t seq;
  int tag;
  bool cancelled = false;
};

class Model {
 public:
  void schedule(std::int64_t time_ns, int tag) {
    events_.push_back(ModelEvent{time_ns, next_seq_++, tag});
  }
  // Cancels the live (unfired, uncancelled) event with the given tag.
  bool cancel(int tag) {
    for (auto& e : events_) {
      if (e.tag == tag && !e.cancelled && !fired_.count(e.tag)) {
        e.cancelled = true;
        return true;
      }
    }
    return false;
  }
  // Fires everything with time <= deadline in (time, seq) order.
  std::vector<int> run_until(std::int64_t deadline_ns) {
    std::vector<ModelEvent*> due;
    for (auto& e : events_) {
      if (!e.cancelled && !fired_.count(e.tag) && e.time_ns <= deadline_ns) {
        due.push_back(&e);
      }
    }
    std::sort(due.begin(), due.end(), [](const ModelEvent* a,
                                         const ModelEvent* b) {
      if (a->time_ns != b->time_ns) return a->time_ns < b->time_ns;
      return a->seq < b->seq;
    });
    std::vector<int> order;
    for (const auto* e : due) {
      fired_.insert(e->tag);
      order.push_back(e->tag);
    }
    return order;
  }
  // Tags of all live (unfired, uncancelled) events.
  std::vector<int> live_tags() const {
    std::vector<int> tags;
    for (const auto& e : events_) {
      if (!e.cancelled && !fired_.count(e.tag)) tags.push_back(e.tag);
    }
    return tags;
  }
  std::size_t live_count() const { return live_tags().size(); }

 private:
  std::vector<ModelEvent> events_;
  std::set<int> fired_;
  std::uint64_t next_seq_ = 0;
};

class SchedulerFuzz : public ::testing::TestWithParam<
                          std::tuple<SchedulerBackend, std::uint64_t>> {};

TEST_P(SchedulerFuzz, MatchesReferenceModel) {
  const auto [backend, seed] = GetParam();
  Rng rng(seed);
  Scheduler sched(backend);
  Model model;
  std::vector<int> fired;            // scheduler-side execution order
  std::vector<EventId> ids;          // tag -> EventId (index = tag)
  std::int64_t clock_ns = 0;
  int next_tag = 0;

  for (int op = 0; op < 3000; ++op) {
    const double u = rng.uniform();
    if (u < 0.50) {
      // Schedule at a random future time (clustered near the clock).
      const std::int64_t delta =
          static_cast<std::int64_t>(rng.uniform(0, 5e7));  // up to 50 ms
      const std::int64_t t = clock_ns + delta;
      const int tag = next_tag++;
      ids.push_back(sched.schedule_at(TimePoint::origin() +
                                          Duration::nanos(t),
                                      [&fired, tag] { fired.push_back(tag); }));
      model.schedule(t, tag);
    } else if (u < 0.55) {
      // Monotone burst: a run of nondecreasing times, the pattern the heap
      // backend's sorted-append fast path targets; the next random
      // schedule/cancel exercises the exit back to heap mode.
      std::int64_t t = clock_ns;
      const int burst = 1 + static_cast<int>(rng.uniform_int(30));
      for (int i = 0; i < burst; ++i) {
        t += static_cast<std::int64_t>(rng.uniform(0, 1e6));  // up to 1 ms
        const int tag = next_tag++;
        ids.push_back(sched.schedule_at(
            TimePoint::origin() + Duration::nanos(t),
            [&fired, tag] { fired.push_back(tag); }));
        model.schedule(t, tag);
      }
    } else if (u < 0.72 && next_tag > 0) {
      // Cancel a random tag (may already be fired/cancelled; both sides
      // must agree on whether the cancel "took"), then re-check the stale
      // id: a successful cancel must leave it dead even after slot reuse.
      const int tag = static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(next_tag)));
      const bool a = sched.cancel(ids[static_cast<std::size_t>(tag)]);
      const bool b = model.cancel(tag);
      ASSERT_EQ(a, b) << "cancel divergence on tag " << tag << " op " << op;
      ASSERT_FALSE(sched.is_pending(ids[static_cast<std::size_t>(tag)]));
      ASSERT_FALSE(sched.cancel(ids[static_cast<std::size_t>(tag)]));
    } else if (u < 0.745 && next_tag > 0) {
      // Cancel-sweep: kill every live event so the next run hits the
      // dead-queue fast path (live_count == 0 with stales still queued).
      for (const int tag : model.live_tags()) {
        ASSERT_TRUE(sched.cancel(ids[static_cast<std::size_t>(tag)]));
        ASSERT_TRUE(model.cancel(tag));
      }
      ASSERT_EQ(sched.pending_count(), 0u);
    } else {
      // Advance time and fire.
      clock_ns += static_cast<std::int64_t>(rng.uniform(0, 2e7));
      const std::size_t before = fired.size();
      sched.run_until(TimePoint::origin() + Duration::nanos(clock_ns));
      const auto expected = model.run_until(clock_ns);
      ASSERT_EQ(fired.size() - before, expected.size()) << "op " << op;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(fired[before + i], expected[i]) << "op " << op;
      }
    }
    ASSERT_EQ(sched.pending_count(), model.live_count()) << "op " << op;
  }
  // Drain and compare the tail.
  const std::size_t before = fired.size();
  sched.run();
  const auto expected = model.run_until(std::numeric_limits<std::int64_t>::max());
  ASSERT_EQ(fired.size() - before, expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fired[before + i], expected[i]);
  }
}

std::string fuzz_case_name(
    const ::testing::TestParamInfo<SchedulerFuzz::ParamType>& info) {
  const auto [backend, seed] = info.param;
  const char* name = backend == SchedulerBackend::kBinaryHeap ? "heap_"
                     : backend == SchedulerBackend::kCalendarQueue
                         ? "calendar_"
                         : "wheel_";
  return std::string(name) + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndSeeds, SchedulerFuzz,
    ::testing::Combine(::testing::Values(SchedulerBackend::kBinaryHeap,
                                         SchedulerBackend::kCalendarQueue,
                                         SchedulerBackend::kTimingWheel),
                       ::testing::Values(1u, 22u, 333u, 4444u)),
    fuzz_case_name);

}  // namespace
}  // namespace tcppr::sim
