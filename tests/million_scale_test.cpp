// Scale tests for the million-flow row (ISSUE 9): the fan-dumbbell plant
// plus the on/off million workload, proven end-to-end at 2^16 on every
// preset and at the full 2^20 under the `MillionScale` tag. The tag is
// what CI tiers on: the sanitize preset excludes `MillionScale` (see
// CMakePresets.json) and runs only the 2^16 variant; the TSan preset's
// include filter never selects either. Expect the 2^20 case to take tens
// of seconds and ~8 GB RSS in a RelWithDebInfo build — it is the gate
// that the simulator genuinely sustains a million concurrent flows, not a
// benchmark.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>

#include "harness/scenarios.hpp"
#include "workload/workload.hpp"

namespace tcppr::workload {
namespace {

struct ScaleRun {
  std::unique_ptr<harness::Scenario> s;
  std::unique_ptr<WorkloadEngine> engine;
};

ScaleRun make_scale_run(int flows) {
  ScaleRun r;
  r.s = harness::make_fan_dumbbell(harness::million_fan_config(flows));
  r.engine =
      std::make_unique<WorkloadEngine>(*r.s, million_workload_config(flows));
  r.engine->start();
  return r;
}

// Runs in quarter-second steps until steady-state concurrency pins at the
// population cap (plus one extra step so completed mice churn through the
// quarantine FIFO), failing if the ramp has not pinned by `max_sim_s`.
// Stepping instead of one long run_until keeps the full-size test's wall
// clock at the ramp time actually needed, not the worst-case bound.
void ramp_until_pinned(ScaleRun& r, std::size_t flows, double max_sim_s) {
  double t = 0.0;
  while (t < max_sim_s && r.engine->stats().peak_active < flows) {
    t += 0.25;
    r.s->sched.run_until(sim::TimePoint::from_seconds(t));
  }
  ASSERT_EQ(r.engine->stats().peak_active, flows)
      << "concurrency failed to pin at the population cap within "
      << max_sim_s << " simulated seconds";
  r.s->sched.run_until(sim::TimePoint::from_seconds(t + 0.5));
}

void expect_scale_invariants(const ScaleRun& r, std::size_t flows) {
  const WorkloadStats stats = r.engine->stats();
  // Concurrency pinned exactly at the cap: the on/off population exceeds
  // max_concurrent, so active saturates at the configured ceiling.
  EXPECT_EQ(stats.peak_active, flows);
  // Instantaneous concurrency sits at the cap bar the handful of slots
  // mid-recycle between a completion and the next restart claiming it.
  EXPECT_LE(stats.active, flows);
  EXPECT_GE(stats.active, flows - flows / 16);
  // Mice in the Pareto tail complete, recycle their id slots and restart.
  EXPECT_GT(stats.completed, 0u);
  // Receiver-side demux conservation: every receiver ever created is
  // accounted for as closed, idle-reaped, or still live.
  EXPECT_EQ(stats.receivers_created,
            stats.receivers_closed + stats.receivers_reaped +
                r.engine->live_receivers());
  EXPECT_EQ(stats.stray_packets, 0u);

  // Slab high-water: the id space materialized stays inside id_slots and
  // the bookkeeping honours the per-slot byte budget (the factor of two is
  // vector capacity growth; the static_assert on kSlabBytesPerSlot keeps
  // the true per-slot footprint inside 64 bytes — this is the same bound
  // bench_check.py gates as bytes_per_slot <= 128 on the 1M bench row).
  const std::size_t slots = r.engine->slots_in_use();
  EXPECT_GE(slots, flows);
  EXPECT_LE(slots, static_cast<std::size_t>(
                       million_workload_config(static_cast<int>(flows))
                           .id_slots));
  EXPECT_LE(r.engine->slab_bytes(), 2 * slots * 64 + (1u << 16));
}

// Locks the preset pair down: the capacity model in DESIGN.md §4.9 only
// holds if the workload population, id space, reap cadence and plant
// bandwidth keep their relationships.
TEST(WorkloadScale, MillionPresetRelationshipsHold) {
  const int flows = 1 << 20;
  const WorkloadConfig wc = million_workload_config(flows);
  EXPECT_EQ(wc.kind, WorkloadKind::kOnOff);
  EXPECT_EQ(wc.max_concurrent, flows);
  // Population above the cap so steady-state concurrency pins at the cap.
  EXPECT_GT(wc.onoff_sources, wc.max_concurrent);
  // Id space covers concurrency plus a quarantine's worth of cooling slots.
  EXPECT_GE(wc.id_slots, flows + flows / 2);
  // Chunked-reaper worst case (1.5 * reap_idle + reap_sweep) must stay
  // inside the quarantine or a recycled slot could find the previous
  // incarnation's receiver still attached.
  EXPECT_LT(3 * wc.reap_idle.as_nanos() / 2 + wc.reap_sweep.as_nanos(),
            wc.quarantine.as_nanos());

  const harness::FanDumbbellConfig fc = harness::million_fan_config(flows);
  EXPECT_EQ(fc.flows, flows);
  EXPECT_EQ(fc.backend, sim::SchedulerBackend::kTimingWheel);
  // Per-flow bandwidth share keeps each flow near cwnd 1-2 so the event
  // rate floor stays at flows / RTT.
  EXPECT_GT(fc.per_flow_bw_bps, 0.0);
  EXPECT_LT(fc.per_flow_bw_bps *
                (fc.bottleneck_delay.as_nanos() / 1e9) /
                (8.0 * fc.tcp.segment_bytes),
            4.0);
}

// The ECMP fan races data segments against kTcpClose across different
// relay paths, so some receivers outlive their close (ghosts). The
// clock-hand reaper must reclaim them within its bounded per-sweep budget
// — observable as receivers_reaped > 0 with conservation intact.
TEST(WorkloadScale, ChunkedReaperReclaimsGhostReceivers) {
  ScaleRun r = make_scale_run(4096);
  r.s->sched.run_until(sim::TimePoint::from_seconds(8));
  const WorkloadStats stats = r.engine->stats();
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.receivers_reaped, 0u);
  EXPECT_EQ(stats.receivers_created,
            stats.receivers_closed + stats.receivers_reaped +
                r.engine->live_receivers());
  EXPECT_EQ(stats.stray_packets, 0u);
}

// 2^16 end-to-end variant: runs on every preset (including sanitizers).
TEST(WorkloadScale, FanDumbbell64kPinsConcurrencyWithinSlabBudget) {
  constexpr std::size_t kFlows = 1 << 16;
  ScaleRun r = make_scale_run(kFlows);
  ramp_until_pinned(r, kFlows, /*max_sim_s=*/4.0);
  expect_scale_invariants(r, kFlows);
}

// The full 2^20 row (tagged: release-tier presets only). One million
// concurrent flows, slab high-water at a million occupied slots.
TEST(MillionScale, FanDumbbellMillionPinsConcurrencyWithinSlabBudget) {
  constexpr std::size_t kFlows = 1 << 20;
  ScaleRun r = make_scale_run(kFlows);
  ramp_until_pinned(r, kFlows, /*max_sim_s=*/4.0);
  expect_scale_invariants(r, kFlows);
}

}  // namespace
}  // namespace tcppr::workload
