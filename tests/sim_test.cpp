// Unit tests for the discrete-event engine: time arithmetic, RNG, the
// scheduler's ordering/cancellation semantics, and the Timer wrapper.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tcppr::sim {
namespace {

TEST(Time, DurationConversions) {
  EXPECT_EQ(Duration::seconds(1.5).as_nanos(), 1'500'000'000);
  EXPECT_EQ(Duration::millis(2).as_nanos(), 2'000'000);
  EXPECT_EQ(Duration::micros(3).as_nanos(), 3'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(0.25).as_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::millis(10).as_millis(), 10.0);
}

TEST(Time, DurationArithmetic) {
  const Duration a = Duration::millis(10);
  const Duration b = Duration::millis(5);
  EXPECT_EQ((a + b).as_nanos(), Duration::millis(15).as_nanos());
  EXPECT_EQ((a - b).as_nanos(), Duration::millis(5).as_nanos());
  EXPECT_EQ((a * 2.0).as_nanos(), Duration::millis(20).as_nanos());
  EXPECT_EQ((2.0 * a).as_nanos(), Duration::millis(20).as_nanos());
  EXPECT_EQ((a / 2.0).as_nanos(), Duration::millis(5).as_nanos());
  EXPECT_LT(b, a);
  EXPECT_EQ(Duration::zero().as_nanos(), 0);
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::seconds(2);
  EXPECT_DOUBLE_EQ(t1.as_seconds(), 2.0);
  EXPECT_EQ((t1 - t0).as_nanos(), Duration::seconds(2).as_nanos());
  EXPECT_EQ((t1 - Duration::seconds(1)).as_nanos(),
            Duration::seconds(1).as_nanos());
  EXPECT_LT(t0, t1);
}

TEST(Time, SaturatingAddAtMax) {
  const TimePoint m = TimePoint::max();
  EXPECT_EQ(m + Duration::seconds(10), TimePoint::max());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForksAreIndependentStreams) {
  Rng base(7);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIntRange) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.uniform_int(10)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(17);
  const double w[3] = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.categorical(w, 3)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(TimePoint::from_seconds(3), [&] { order.push_back(3); });
  sched.schedule_at(TimePoint::from_seconds(1), [&] { order.push_back(1); });
  sched.schedule_at(TimePoint::from_seconds(2), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now().as_seconds(), 3.0);
}

TEST(Scheduler, TiesBreakFifo) {
  Scheduler sched;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_seconds(1);
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  const EventId id =
      sched.schedule_at(TimePoint::from_seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sched.is_pending(id));
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.is_pending(id));
  EXPECT_FALSE(sched.cancel(id));  // second cancel is a no-op
  sched.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, RunUntilLeavesLaterEvents) {
  Scheduler sched;
  int count = 0;
  sched.schedule_at(TimePoint::from_seconds(1), [&] { ++count; });
  sched.schedule_at(TimePoint::from_seconds(5), [&] { ++count; });
  sched.run_until(TimePoint::from_seconds(2));
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sched.now().as_seconds(), 2.0);
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.run_until(TimePoint::from_seconds(10));
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sched.now().as_seconds(), 10.0);
}

TEST(Scheduler, RunUntilAlternatingWindowsBothBackends) {
  // Regression for run_until popping past the deadline: the loop must peek
  // before popping so an event beyond the window stays queued and fires in
  // a later window — on both backends (the old pop-then-reinsert scheme
  // broke FIFO tie order on the calendar queue).
  for (const auto backend : {SchedulerBackend::kBinaryHeap,
                             SchedulerBackend::kCalendarQueue}) {
    Scheduler sched(backend);
    std::vector<int> fired;
    for (int i = 1; i <= 8; ++i) {
      sched.schedule_at(TimePoint::from_seconds(i),
                        [&fired, i] { fired.push_back(i); });
    }
    sched.run_until(TimePoint::from_seconds(0.5));  // window before any event
    EXPECT_TRUE(fired.empty());
    EXPECT_EQ(sched.pending_count(), 8u);
    sched.run_until(TimePoint::from_seconds(2.5));
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    sched.run_until(TimePoint::from_seconds(2.75));  // empty window
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    sched.run_until(TimePoint::from_seconds(6));  // deadline is inclusive
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4, 5, 6}));
    sched.run_until(TimePoint::from_seconds(100));
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(sched.pending_count(), 0u);
    EXPECT_DOUBLE_EQ(sched.now().as_seconds(), 100.0);
  }
}

TEST(Scheduler, RunUntilWithInterleavedCancels) {
  // Cancelling events that lie beyond the current window must neither fire
  // them later nor disturb the survivors' order.
  for (const auto backend : {SchedulerBackend::kBinaryHeap,
                             SchedulerBackend::kCalendarQueue}) {
    Scheduler sched(backend);
    std::vector<int> fired;
    std::vector<EventId> ids;
    for (int i = 1; i <= 6; ++i) {
      ids.push_back(sched.schedule_at(TimePoint::from_seconds(i),
                                      [&fired, i] { fired.push_back(i); }));
    }
    sched.cancel(ids[3]);  // t=4, beyond the first window
    sched.run_until(TimePoint::from_seconds(2.5));
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    sched.cancel(ids[4]);  // t=5
    sched.run_until(TimePoint::from_seconds(10));
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 6}));
  }
}

TEST(Scheduler, StaleIdAcrossSlotReuseIsRejected) {
  Scheduler sched;
  bool first_ran = false;
  bool second_ran = false;
  const EventId a =
      sched.schedule_at(TimePoint::from_seconds(1), [&] { first_ran = true; });
  EXPECT_TRUE(sched.cancel(a));
  // The freed slot is handed to the next event (LIFO free list); the stale
  // id must not alias the new occupant.
  const EventId b =
      sched.schedule_at(TimePoint::from_seconds(2), [&] { second_ran = true; });
  EXPECT_EQ(static_cast<std::uint32_t>(a.value),
            static_cast<std::uint32_t>(b.value));  // same slot...
  EXPECT_NE(a.value, b.value);                     // ...new generation
  EXPECT_FALSE(sched.is_pending(a));
  EXPECT_FALSE(sched.cancel(a));  // must not cancel the new occupant
  EXPECT_TRUE(sched.is_pending(b));
  sched.run();
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
}

TEST(Scheduler, StaleIdAfterFireIsRejected) {
  Scheduler sched;
  int ran = 0;
  const EventId a =
      sched.schedule_at(TimePoint::from_seconds(1), [&] { ++ran; });
  sched.run();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(sched.is_pending(a));
  // A later event reuses the fired slot; the old id must not cancel it.
  sched.schedule_at(TimePoint::from_seconds(2), [&] { ++ran; });
  EXPECT_FALSE(sched.cancel(a));
  sched.run();
  EXPECT_EQ(ran, 2);
}

TEST(Scheduler, ManyReusesKeepIdsUnique) {
  // Hammer one slot through schedule/cancel cycles; every id must be
  // distinct and only the latest one live.
  Scheduler sched;
  EventId prev{};
  for (int i = 0; i < 1000; ++i) {
    const EventId id = sched.schedule_at(TimePoint::from_seconds(1), [] {});
    EXPECT_NE(id, prev);
    EXPECT_FALSE(sched.is_pending(prev));
    EXPECT_TRUE(sched.is_pending(id));
    EXPECT_TRUE(sched.cancel(id));
    prev = id;
  }
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sched.schedule_in(Duration::seconds(1), chain);
    }
  };
  sched.schedule_in(Duration::seconds(1), chain);
  sched.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sched.now().as_seconds(), 5.0);
}

TEST(Scheduler, StopHaltsProcessing) {
  Scheduler sched;
  int count = 0;
  sched.schedule_at(TimePoint::from_seconds(1), [&] {
    ++count;
    sched.stop();
  });
  sched.schedule_at(TimePoint::from_seconds(2), [&] { ++count; });
  sched.run();
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, ProcessedCount) {
  Scheduler sched;
  for (int i = 0; i < 7; ++i) {
    sched.schedule_at(TimePoint::from_seconds(i + 1), [] {});
  }
  sched.run();
  EXPECT_EQ(sched.processed_count(), 7u);
}

TEST(Timer, RescheduleCancelsPrevious) {
  Scheduler sched;
  Timer timer(sched);
  int fired = 0;
  timer.schedule_at(TimePoint::from_seconds(1), [&] { fired = 1; });
  timer.schedule_at(TimePoint::from_seconds(2), [&] { fired = 2; });
  sched.run();
  EXPECT_EQ(fired, 2);
}

TEST(Timer, CancelAndPending) {
  Scheduler sched;
  Timer timer(sched);
  bool ran = false;
  timer.schedule_in(Duration::seconds(1), [&] { ran = true; });
  EXPECT_TRUE(timer.pending());
  timer.cancel();
  EXPECT_FALSE(timer.pending());
  sched.run();
  EXPECT_FALSE(ran);
}

TEST(Timer, DestructorCancels) {
  Scheduler sched;
  bool ran = false;
  {
    Timer timer(sched);
    timer.schedule_in(Duration::seconds(1), [&] { ran = true; });
  }
  sched.run();
  EXPECT_FALSE(ran);
}

TEST(DeadlineTimer, FiresOnceAtTheDeadline) {
  Scheduler sched;
  int fired = 0;
  TimePoint fire_time;
  DeadlineTimer timer(sched, [&] {
    ++fired;
    fire_time = sched.now();
  });
  timer.arm(TimePoint::origin() + Duration::millis(10));
  EXPECT_TRUE(timer.armed());
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(fire_time.as_nanos(), Duration::millis(10).as_nanos());
  EXPECT_FALSE(timer.armed());
}

TEST(DeadlineTimer, MonotoneRearmsKeepOnePhysicalEvent) {
  // The coalescing contract: pushing the deadline out must not touch the
  // scheduler (no cancel, no new event, no stale queue entry). This is
  // what keeps the pending-event population O(flows) when every ACK
  // advances a flow's drop deadline.
  Scheduler sched;
  int fired = 0;
  DeadlineTimer timer(sched, [&] { ++fired; });
  timer.arm(TimePoint::origin() + Duration::millis(1));
  const std::size_t one_event = sched.queued_count();
  for (int i = 2; i <= 1000; ++i) {
    timer.arm(TimePoint::origin() + Duration::millis(i));
  }
  EXPECT_EQ(sched.queued_count(), one_event);
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now().as_nanos(), Duration::millis(1000).as_nanos());
}

TEST(DeadlineTimer, EarlyShotDefersWithoutFiring) {
  // arm(later) leaves the physical event parked at the earlier time; when
  // it goes off before the logical deadline, the callback must not run —
  // the timer re-schedules itself at the target instead.
  Scheduler sched;
  int fired = 0;
  DeadlineTimer timer(sched, [&] { ++fired; });
  timer.arm(TimePoint::origin() + Duration::millis(10));
  timer.arm(TimePoint::origin() + Duration::millis(50));
  sched.run_until(TimePoint::origin() + Duration::millis(20));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(timer.armed());
  sched.run_until(TimePoint::origin() + Duration::millis(60));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(DeadlineTimer, RearmEarlierFiresAtTheNewDeadline) {
  Scheduler sched;
  int fired = 0;
  TimePoint fire_time;
  DeadlineTimer timer(sched, [&] {
    ++fired;
    fire_time = sched.now();
  });
  timer.arm(TimePoint::origin() + Duration::millis(50));
  timer.arm(TimePoint::origin() + Duration::millis(10));
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(fire_time.as_nanos(), Duration::millis(10).as_nanos());
}

TEST(DeadlineTimer, CancelPreventsFire) {
  Scheduler sched;
  int fired = 0;
  DeadlineTimer timer(sched, [&] { ++fired; });
  timer.arm(TimePoint::origin() + Duration::millis(5));
  timer.cancel();
  EXPECT_FALSE(timer.armed());
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(DeadlineTimer, CallbackMayRearm) {
  Scheduler sched;
  int fired = 0;
  std::optional<DeadlineTimer> timer;
  timer.emplace(sched, [&] {
    ++fired;
    if (fired < 3) timer->arm(sched.now() + Duration::millis(5));
  });
  timer->arm(TimePoint::origin() + Duration::millis(5));
  sched.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sched.now().as_nanos(), Duration::millis(15).as_nanos());
}

TEST(DeadlineTimer, DestructorCancels) {
  Scheduler sched;
  bool ran = false;
  {
    DeadlineTimer timer(sched, [&] { ran = true; });
    timer.arm(TimePoint::origin() + Duration::millis(1));
  }
  sched.run();
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace tcppr::sim
