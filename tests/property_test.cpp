// Parameterized property-style suites (TEST_P): invariants that must hold
// across sweeps of seeds, parameters, and variants.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/tcp_pr.hpp"
#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace tcppr {
namespace {

using harness::MeasurementWindow;
using harness::MultipathConfig;
using harness::TcpVariant;

// ---- Newton approximation across the (alpha, cwnd) grid -----------------

class NewtonGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(NewtonGrid, CloseToExactPower) {
  const auto [alpha, cwnd] = GetParam();
  const double exact = std::pow(alpha, 1.0 / cwnd);
  const double approx = core::TcpPrSender::newton_alpha_root(alpha, cwnd, 2);
  // Two Newton steps from x=1 are tight near alpha~1 (the operating range,
  // footnote 5) and only approximate for aggressive alpha.
  EXPECT_NEAR(approx, exact, alpha >= 0.9 ? 2e-4 : 5e-3);
  // Result must always stay a valid decay factor.
  EXPECT_GT(approx, 0.0);
  EXPECT_LE(approx, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaCwndSweep, NewtonGrid,
    ::testing::Combine(::testing::Values(0.5, 0.8, 0.9, 0.95, 0.99, 0.995,
                                         0.9995),
                       ::testing::Values(1.0, 2.0, 3.0, 8.0, 25.0, 100.0,
                                         1000.0)));

// ---- every variant transfers correctly on a clean path ------------------

class CleanTransfer : public ::testing::TestWithParam<TcpVariant> {};

TEST_P(CleanTransfer, DeliversAllSegmentsInOrder) {
  testutil::PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;
  auto* sender = f.add_flow(GetParam(), 1, config);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(300));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(30);
  EXPECT_TRUE(done) << harness::to_string(GetParam());
  EXPECT_EQ(f.receiver()->rcv_next(), 300);
  EXPECT_EQ(sender->stats().retransmissions, 0u);
}

TEST_P(CleanTransfer, CompletesDespiteRandomLoss) {
  testutil::PathFixture f;
  auto* sender = f.add_flow(GetParam(), 1);
  f.fwd->set_loss_model(0.03, sim::Rng(11));
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(1000));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(200);
  EXPECT_TRUE(done) << harness::to_string(GetParam());
  EXPECT_EQ(f.receiver()->rcv_next(), 1000);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, CleanTransfer,
    ::testing::ValuesIn(harness::all_variants()),
    [](const ::testing::TestParamInfo<TcpVariant>& info) {
      std::string name = harness::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Every variant must also survive an ACK-path outage (cumulative ACKs
// recover the state once connectivity returns).
class AckOutage : public ::testing::TestWithParam<TcpVariant> {};

TEST_P(AckOutage, RecoversAfterReverseOutage) {
  testutil::PathFixture f;
  auto* sender = f.add_flow(GetParam(), 1);
  f.sched.schedule_at(sim::TimePoint::from_seconds(2.0), [&] {
    f.rev->set_down(true);
  });
  f.sched.schedule_at(sim::TimePoint::from_seconds(5.0), [&] {
    f.rev->set_down(false);
  });
  sender->start();
  f.run_for(40);
  EXPECT_GT(sender->stats().segments_acked, 2000)
      << harness::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, AckOutage,
    ::testing::Values(TcpVariant::kTcpPr, TcpVariant::kSack,
                      TcpVariant::kNewReno, TcpVariant::kTahoe,
                      TcpVariant::kTdFr, TcpVariant::kIncByN,
                      TcpVariant::kDoor),
    [](const ::testing::TestParamInfo<TcpVariant>& info) {
      std::string name = harness::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- TCP-PR reordering immunity across epsilon and seeds ----------------

class PrMultipathSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(PrMultipathSweep, NoDuplicatesEverReachTheReceiver) {
  const auto [epsilon, seed] = GetParam();
  MultipathConfig config;
  config.variant = TcpVariant::kTcpPr;
  config.epsilon = epsilon;
  config.seed = seed;
  config.tcp.max_cwnd = 50;  // below the loss point: reordering only
  auto scenario = harness::make_multipath(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(12));
  // With no losses possible, a duplicate at the receiver could only come
  // from a spurious timer-detected "drop": there must be none, at any
  // reordering intensity.
  const auto& rs = scenario->receivers[0]->stats();
  const auto& ss = scenario->senders[0]->stats();
  EXPECT_EQ(rs.duplicates, 0u) << "eps=" << epsilon << " seed=" << seed;
  EXPECT_EQ(ss.retransmissions, 0u) << "eps=" << epsilon << " seed=" << seed;
  EXPECT_GT(ss.segments_acked, 2000) << "eps=" << epsilon << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonSeedGrid, PrMultipathSweep,
    ::testing::Combine(::testing::Values(0.0, 1.0, 4.0, 10.0, 500.0),
                       ::testing::Values(1u, 2u, 3u)));

// ---- alpha/beta robustness (the Figure 4 claim, miniature) --------------

class PrParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PrParamSweep, PrStillFunctionsAcrossParameterRanges) {
  const auto [alpha, beta] = GetParam();
  MultipathConfig config;
  config.variant = TcpVariant::kTcpPr;
  config.epsilon = 0;
  config.pr.alpha = alpha;
  config.pr.beta = beta;
  auto scenario = harness::make_multipath(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(10));
  // Functional across the whole grid: meaningful forward progress.
  EXPECT_GT(scenario->senders[0]->stats().segments_acked, 1000)
      << "alpha=" << alpha << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBetaGrid, PrParamSweep,
    ::testing::Combine(::testing::Values(0.25, 0.75, 0.995),
                       ::testing::Values(1.5, 3.0, 10.0)));

// ---- deterministic replay across the scenario space ---------------------

class ReplayDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayDeterminism, IdenticalSeedsIdenticalTrajectories) {
  const auto run = [&] {
    MultipathConfig config;
    config.variant = TcpVariant::kTcpPr;
    config.epsilon = 1.0;
    config.seed = GetParam();
    auto scenario = harness::make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(8));
    return std::make_tuple(scenario->sched.processed_count(),
                           scenario->senders[0]->stats().segments_acked,
                           scenario->receivers[0]->stats().out_of_order);
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminism,
                         ::testing::Values(1u, 42u, 1234567u));

// ---- RNG statistical sanity over stream ids ----------------------------

class RngStreams : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStreams, MeanOfUniformNearHalf) {
  sim::Rng rng = sim::Rng(99).fork(GetParam());
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(StreamIds, RngStreams,
                         ::testing::Values(0u, 1u, 7u, 1000u, 999999u));

}  // namespace
}  // namespace tcppr
