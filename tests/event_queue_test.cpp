// Tests for the pending-event set backends: calendar queue correctness,
// randomized equivalence against the binary heap, and backend-independent
// simulation results.
#include <gtest/gtest.h>

#include <vector>

#include "core/tcp_pr.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sack.hpp"

namespace tcppr::sim {
namespace {

QueuedEvent ev(double seconds, std::uint64_t seq) {
  return QueuedEvent{TimePoint::from_seconds(seconds), seq, seq + 1};
}

TEST(CalendarQueue, PopsInTimeOrder) {
  CalendarQueue q;
  q.push(ev(3.0, 1));
  q.push(ev(1.0, 2));
  q.push(ev(2.0, 3));
  EXPECT_EQ(q.pop_min()->seq, 2u);
  EXPECT_EQ(q.pop_min()->seq, 3u);
  EXPECT_EQ(q.pop_min()->seq, 1u);
  EXPECT_FALSE(q.pop_min().has_value());
}

TEST(CalendarQueue, TiesBreakByInsertionSeq) {
  CalendarQueue q;
  for (std::uint64_t i = 10; i > 0; --i) q.push(ev(1.0, i));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(q.pop_min()->seq, i);
  }
}

TEST(CalendarQueue, HandlesSparseHorizons) {
  CalendarQueue q;
  q.push(ev(0.001, 1));
  q.push(ev(1000.0, 2));  // far beyond one "year" of buckets
  q.push(ev(0.002, 3));
  EXPECT_EQ(q.pop_min()->seq, 1u);
  EXPECT_EQ(q.pop_min()->seq, 3u);
  EXPECT_EQ(q.pop_min()->seq, 2u);
}

TEST(CalendarQueue, GrowsAndShrinksWithLoad) {
  CalendarQueue q;
  const std::size_t initial = q.bucket_count();
  for (std::uint64_t i = 0; i < 10000; ++i) {
    q.push(ev(0.001 * static_cast<double>(i % 997), i));
  }
  EXPECT_GT(q.bucket_count(), initial);
  double last = -1;
  for (int i = 0; i < 10000; ++i) {
    const auto e = q.pop_min();
    ASSERT_TRUE(e.has_value());
    EXPECT_GE(e->time.as_seconds(), last);
    last = e->time.as_seconds();
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(HeapQueue, MonotonePushesStayInSortedRun) {
  // Nondecreasing (time, seq) pushes keep the array a flat sorted run —
  // the O(1) append fast path — and pops stream from the front without
  // leaving the mode.
  HeapQueue q;
  EXPECT_TRUE(q.in_sorted_run());
  for (int i = 0; i < 100; ++i) q.push(ev(i * 0.001, static_cast<std::uint64_t>(i)));
  EXPECT_TRUE(q.in_sorted_run());
  q.push(ev(0.099, 200));  // equal time, later seq: still in order
  EXPECT_TRUE(q.in_sorted_run());
  EXPECT_EQ(q.pop_min()->seq, 0u);
  EXPECT_EQ(q.pop_min()->seq, 1u);
  EXPECT_TRUE(q.in_sorted_run());
  EXPECT_EQ(q.size(), 99u);
}

TEST(HeapQueue, OutOfOrderPushLeavesSortedRunAndReentersWhenDrained) {
  HeapQueue q;
  for (int i = 0; i < 10; ++i) {
    q.push(ev(1.0 + i, static_cast<std::uint64_t>(i)));
  }
  EXPECT_TRUE(q.in_sorted_run());
  q.push(ev(0.5, 100));  // earlier than the tail: exits sorted mode
  EXPECT_FALSE(q.in_sorted_run());
  EXPECT_EQ(q.pop_min()->seq, 100u);  // heap mode still pops in time order
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(q.pop_min()->seq, i);
  EXPECT_FALSE(q.pop_min().has_value());
  EXPECT_TRUE(q.in_sorted_run());  // drained: back on the fast path
  q.push(ev(2.0, 200));
  q.push(ev(1.0, 201));  // exercises the exit again after re-entry
  EXPECT_FALSE(q.in_sorted_run());
  EXPECT_EQ(q.pop_min()->seq, 201u);
  EXPECT_EQ(q.pop_min()->seq, 200u);
}

TEST(HeapQueue, ClearEmptiesAndRestoresSortedMode) {
  HeapQueue q;
  for (int i = 10; i > 0; --i) {
    q.push(ev(i, static_cast<std::uint64_t>(10 - i)));  // descending: heap mode
  }
  EXPECT_FALSE(q.in_sorted_run());
  q.clear();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.in_sorted_run());
  EXPECT_FALSE(q.pop_min().has_value());
  q.push(ev(1.0, 1));
  EXPECT_EQ(q.pop_min()->seq, 1u);
}

TEST(TimingWheelQueue, PopsInTimeOrder) {
  TimingWheelQueue q;
  q.push(ev(3.0, 1));
  q.push(ev(1.0, 2));
  q.push(ev(2.0, 3));
  EXPECT_EQ(q.pop_min()->seq, 2u);
  EXPECT_EQ(q.pop_min()->seq, 3u);
  EXPECT_EQ(q.pop_min()->seq, 1u);
  EXPECT_FALSE(q.pop_min().has_value());
}

TEST(TimingWheelQueue, TiesBreakByInsertionSeq) {
  // Same-time events share a one-tick level-0 bucket; FIFO must hold even
  // when the bucket was filled out of seq order and survived a cascade.
  TimingWheelQueue q;
  q.push(ev(10.0, 100));  // forces the 1.0s events through a cascade later
  for (std::uint64_t i = 1; i <= 10; ++i) q.push(ev(1.0, i));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(q.pop_min()->seq, i);
  }
  EXPECT_EQ(q.pop_min()->seq, 100u);
}

TEST(TimingWheelQueue, CascadeRedistributesAcrossLevels) {
  // 1.0s = 10^9 ns needs byte 3 (level 3): popping it is an extract-min
  // cascade — the minimum comes straight out of the level-3 bucket and the
  // position advances to its time, so the adjacent-tick sibling re-files
  // at level 0 in the same step.
  TimingWheelQueue q;
  q.push(ev(1.0, 1));
  q.push(ev(1.0 + 1e-9, 2));  // adjacent tick, same high-level bucket
  EXPECT_EQ(q.cascades(), 0u);
  EXPECT_EQ(q.pop_min()->seq, 1u);
  EXPECT_EQ(q.cascades(), 1u);
  // The sibling was re-filed relative to the new position; popping it is a
  // direct level-0 hit, no further cascade.
  EXPECT_EQ(q.pop_min()->seq, 2u);
  EXPECT_EQ(q.cascades(), 1u);
}

TEST(TimingWheelQueue, OverflowBeyondHorizonSpillsAndMigrates) {
  // The wheel horizon is 2^48 ns (~78 h). Events beyond it go to the
  // sorted overflow run and migrate into the wheel once it drains.
  TimingWheelQueue q;
  const double horizon_s =
      static_cast<double>(TimingWheelQueue::kHorizonNs) * 1e-9;
  q.push(ev(horizon_s + 7.0, 1));
  q.push(ev(horizon_s + 3.0, 2));
  q.push(ev(horizon_s + 3.0, 3));  // FIFO tie inside the overflow run
  q.push(ev(1.0, 4));
  EXPECT_EQ(q.overflow_size(), 3u);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop_min()->seq, 4u);
  EXPECT_EQ(q.pop_min()->seq, 2u);  // wheel drained: overflow migrated
  EXPECT_EQ(q.overflow_size(), 0u);
  EXPECT_EQ(q.pop_min()->seq, 3u);
  EXPECT_EQ(q.pop_min()->seq, 1u);
  EXPECT_FALSE(q.pop_min().has_value());
}

TEST(TimingWheelQueue, PushBehindPositionReseats) {
  // Popping advances the wheel position; the standalone structure must
  // still accept earlier pushes (the scheduler's run_until pops stale
  // entries past its deadline, so this can happen in real runs).
  TimingWheelQueue q;
  q.push(ev(5.0, 1));
  EXPECT_EQ(q.pop_min()->seq, 1u);  // position is now at 5.0s
  EXPECT_EQ(q.reseats(), 0u);
  q.push(ev(2.0, 2));  // behind the position: full re-seat
  EXPECT_EQ(q.reseats(), 1u);
  q.push(ev(3.0, 3));
  EXPECT_EQ(q.pop_min()->seq, 2u);
  EXPECT_EQ(q.pop_min()->seq, 3u);
  EXPECT_FALSE(q.pop_min().has_value());
}

TEST(TimingWheelQueue, PeekDoesNotPerturbOrdering) {
  // peek_min is non-mutating: no cascade, no position advance. A push
  // earlier than a peeked minimum must still pop first without a re-seat.
  TimingWheelQueue q;
  q.push(ev(4.0, 1));
  ASSERT_TRUE(q.peek_min().has_value());
  EXPECT_EQ(q.peek_min()->seq, 1u);
  q.push(ev(1.0, 2));  // earlier than the peeked min
  EXPECT_EQ(q.reseats(), 0u);
  EXPECT_EQ(q.peek_min()->seq, 2u);
  EXPECT_EQ(q.pop_min()->seq, 2u);
  EXPECT_EQ(q.pop_min()->seq, 1u);
}

TEST(TimingWheelQueue, ClearEmptiesWheelAndOverflow) {
  TimingWheelQueue q;
  const double horizon_s =
      static_cast<double>(TimingWheelQueue::kHorizonNs) * 1e-9;
  for (std::uint64_t i = 0; i < 50; ++i) q.push(ev(0.01 * i, i));
  q.push(ev(horizon_s + 1.0, 1000));
  EXPECT_EQ(q.size(), 51u);
  q.clear();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.overflow_size(), 0u);
  EXPECT_FALSE(q.pop_min().has_value());
  q.push(ev(1.0, 1));
  EXPECT_EQ(q.pop_min()->seq, 1u);
}

TEST(EventQueueEquivalence, RandomizedAcrossAllBackends) {
  // Interleaved pushes and pops with random times: all backends must
  // produce the identical pop sequence.
  Rng rng(12345);
  for (int round = 0; round < 5; ++round) {
    HeapQueue heap;
    CalendarQueue calendar;
    TimingWheelQueue wheel;
    std::uint64_t seq = 0;
    double clock = 0;
    for (int op = 0; op < 4000; ++op) {
      const bool push = heap.empty() || rng.uniform() < 0.55;
      if (push) {
        // Mix of near-future, clustered and far-future times.
        double t = clock;
        const double u = rng.uniform();
        if (u < 0.6) {
          t += rng.uniform(0.0, 0.01);
        } else if (u < 0.9) {
          t += rng.uniform(0.0, 1.0);
        } else {
          t += rng.uniform(0.0, 300.0);
        }
        const QueuedEvent e{TimePoint::from_seconds(t), seq, seq + 1};
        ++seq;
        heap.push(e);
        calendar.push(e);
        wheel.push(e);
      } else {
        const auto a = heap.pop_min();
        const auto b = calendar.pop_min();
        const auto c = wheel.pop_min();
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        ASSERT_TRUE(c.has_value());
        ASSERT_EQ(a->seq, b->seq) << "round " << round << " op " << op;
        ASSERT_EQ(a->seq, c->seq) << "round " << round << " op " << op;
        ASSERT_EQ(a->time.as_nanos(), b->time.as_nanos());
        ASSERT_EQ(a->time.as_nanos(), c->time.as_nanos());
        clock = a->time.as_seconds();  // times only move forward
      }
      ASSERT_EQ(heap.size(), calendar.size());
      ASSERT_EQ(heap.size(), wheel.size());
    }
    // Drain all three.
    for (;;) {
      const auto a = heap.pop_min();
      const auto b = calendar.pop_min();
      const auto c = wheel.pop_min();
      ASSERT_EQ(a.has_value(), b.has_value());
      ASSERT_EQ(a.has_value(), c.has_value());
      if (!a.has_value()) break;
      ASSERT_EQ(a->seq, b->seq);
      ASSERT_EQ(a->seq, c->seq);
    }
  }
}

TEST(SchedulerBackend, CalendarRunsEventsInOrder) {
  Scheduler sched(SchedulerBackend::kCalendarQueue);
  std::vector<int> order;
  sched.schedule_at(TimePoint::from_seconds(3), [&] { order.push_back(3); });
  sched.schedule_at(TimePoint::from_seconds(1), [&] { order.push_back(1); });
  sched.schedule_at(TimePoint::from_seconds(2), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerBackend, CancellationWorksOnCalendar) {
  Scheduler sched(SchedulerBackend::kCalendarQueue);
  bool ran = false;
  const EventId id =
      sched.schedule_at(TimePoint::from_seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_FALSE(ran);
}

TEST(SchedulerBackend, FullSimulationIdenticalAcrossBackends) {
  // The strongest equivalence check: a complete TCP simulation produces
  // bit-identical results regardless of the pending-event structure.
  // (The harness builds its own scheduler, so replicate a small scenario
  // manually on each backend.)
  const auto run = [](SchedulerBackend backend) {
    Scheduler sched(backend);
    net::Network network(sched);
    const auto a = network.add_node();
    const auto r = network.add_node();
    const auto b = network.add_node();
    net::LinkConfig access;
    access.bandwidth_bps = 1e8;
    network.add_duplex_link(a, r, access);
    net::LinkConfig bottleneck;
    bottleneck.bandwidth_bps = 5e6;
    bottleneck.delay = sim::Duration::millis(15);
    bottleneck.queue_limit_packets = 40;
    network.add_duplex_link(r, b, bottleneck);
    network.compute_static_routes();
    tcp::Receiver recv(network, b, a, 1);
    core::TcpPrSender pr(network, a, b, 1);
    tcp::Receiver recv2(network, b, a, 2);
    tcp::SackSender sack(network, a, b, 2);
    pr.start();
    sack.start();
    sched.run_until(TimePoint::from_seconds(30));
    return std::make_tuple(sched.processed_count(),
                           pr.stats().segments_acked,
                           sack.stats().segments_acked,
                           pr.stats().retransmissions,
                           sack.stats().retransmissions);
  };
  const auto heap_result = run(SchedulerBackend::kBinaryHeap);
  EXPECT_EQ(heap_result, run(SchedulerBackend::kCalendarQueue));
  EXPECT_EQ(heap_result, run(SchedulerBackend::kTimingWheel));
}

}  // namespace
}  // namespace tcppr::sim
