// Tests for the packet tracing subsystem: sink fan-out, record content,
// agreement with link statistics, and the ns-2-style file format.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "app/sources.hpp"
#include "net/network.hpp"
#include "tcp/receiver.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace tcppr::trace {
namespace {

using harness::TcpVariant;
using testutil::PathFixture;

TEST(Trace, EventTypeNames) {
  EXPECT_STREQ(to_string(EventType::kEnqueue), "enqueue");
  EXPECT_STREQ(to_string(EventType::kQueueDrop), "queue-drop");
  EXPECT_STREQ(to_string(EventType::kDeliver), "deliver");
}

TEST(Trace, RecordsOriginationAndDelivery) {
  PathFixture f;
  MemoryTrace memory;
  f.network->add_trace_sink(&memory);
  auto* sender = f.add_flow(TcpVariant::kTcpPr, 1);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(10));
  sender->start();
  f.run_for(5);
  // 10 data packets + 10 ACKs originated; each delivered once.
  EXPECT_EQ(memory.count(EventType::kOriginate), 20u);
  EXPECT_EQ(memory.count(EventType::kDeliver), 20u);
  EXPECT_EQ(memory.count(EventType::kQueueDrop), 0u);
}

TEST(Trace, EnqueueDequeueBalance) {
  PathFixture f;
  MemoryTrace memory;
  f.network->add_trace_sink(&memory);
  auto* sender = f.add_flow(TcpVariant::kSack, 1);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(50));
  sender->start();
  f.run_for(10);
  // Nothing dropped: every enqueue eventually dequeues.
  EXPECT_EQ(memory.count(EventType::kEnqueue),
            memory.count(EventType::kDequeue));
  EXPECT_GT(memory.count(EventType::kEnqueue), 100u);  // multiple hops
}

TEST(Trace, QueueDropsMatchLinkStats) {
  PathFixture f(1e6, sim::Duration::millis(10), /*queue_limit=*/5);
  MemoryTrace memory;
  f.network->add_trace_sink(&memory);
  auto* sender = f.add_flow(TcpVariant::kReno, 1);
  sender->start();
  f.run_for(10);
  EXPECT_EQ(memory.count(EventType::kQueueDrop),
            f.fwd->queue().stats().dropped + f.rev->queue().stats().dropped);
  EXPECT_GT(memory.count(EventType::kQueueDrop), 0u);
}

TEST(Trace, LossModelDropsTraced) {
  PathFixture f;
  MemoryTrace memory;
  f.network->add_trace_sink(&memory);
  f.fwd->set_loss_model(0.1, sim::Rng(3));
  auto* sender = f.add_flow(TcpVariant::kSack, 1);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(300));
  sender->start();
  f.run_for(60);
  EXPECT_EQ(memory.count(EventType::kLossDrop), f.fwd->stats().lost);
  EXPECT_GT(memory.count(EventType::kLossDrop), 0u);
}

TEST(Trace, RecordsCarryFlowAndSeq) {
  PathFixture f;
  MemoryTrace memory;
  f.network->add_trace_sink(&memory);
  auto* sender = f.add_flow(TcpVariant::kTcpPr, 7);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(3));
  sender->start();
  f.run_for(2);
  const auto data_originations = memory.select([](const Record& r) {
    return r.type == EventType::kOriginate && !r.is_ack;
  });
  ASSERT_EQ(data_originations.size(), 3u);
  EXPECT_EQ(data_originations[0].flow, 7);
  EXPECT_EQ(data_originations[0].seq, 0);
  EXPECT_EQ(data_originations[2].seq, 2);
  EXPECT_EQ(data_originations[0].size_bytes, 1040u);
}

TEST(Trace, MultipleSinksAllFed) {
  PathFixture f;
  MemoryTrace a;
  MemoryTrace b;
  f.network->add_trace_sink(&a);
  f.network->add_trace_sink(&b);
  auto* sender = f.add_flow(TcpVariant::kSack, 1);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(5));
  sender->start();
  f.run_for(2);
  EXPECT_EQ(a.records().size(), b.records().size());
  EXPECT_GT(a.records().size(), 0u);
}

TEST(Trace, FileTraceWritesParsableLines) {
  const std::string path = "/tmp/tcppr_trace_test.tr";
  {
    PathFixture f;
    FileTrace file(path);
    ASSERT_TRUE(file.ok());
    f.network->add_trace_sink(&file);
    auto* sender = f.add_flow(TcpVariant::kTcpPr, 1);
    sender->set_data_source(std::make_unique<tcp::FixedDataSource>(5));
    sender->start();
    f.run_for(2);
    file.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    std::istringstream ss(line);
    char op;
    double time;
    int from, to;
    std::string proto;
    unsigned bytes;
    int flow;
    long long seq;
    unsigned long long uid;
    ss >> op >> time >> from >> to >> proto >> bytes >> flow >> seq >> uid;
    ASSERT_FALSE(ss.fail()) << "unparsable: " << line;
    EXPECT_TRUE(proto == "tcp" || proto == "ack");
    EXPECT_GE(time, 0.0);
  }
  EXPECT_GT(lines, 10);
  std::remove(path.c_str());
}

TEST(Trace, InactiveTracerCostsNothingVisible) {
  // No sinks attached: simulation behaves identically (event counts).
  const auto run = [](bool traced) {
    PathFixture f;
    MemoryTrace memory;
    if (traced) f.network->add_trace_sink(&memory);
    auto* sender = f.add_flow(TcpVariant::kSack, 1);
    sender->set_data_source(std::make_unique<tcp::FixedDataSource>(100));
    sender->start();
    f.run_for(10);
    return f.sched.processed_count();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace tcppr::trace
