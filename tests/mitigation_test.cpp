// Tests for the Blanton-Allman mitigation senders and Eifel: spurious
// retransmission detection under real persistent reordering (multi-path
// scenario) and the dupthresh adjustment policies.
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "tcp/eifel.hpp"
#include "tcp/mitigation.hpp"
#include "tcp/sack.hpp"

namespace tcppr::tcp {
namespace {

using harness::MultipathConfig;
using harness::TcpVariant;

std::unique_ptr<harness::Scenario> run_multipath(TcpVariant variant,
                                                 double epsilon,
                                                 double seconds,
                                                 std::uint64_t seed = 1,
                                                 double max_cwnd = 1e7) {
  MultipathConfig config;
  config.variant = variant;
  config.epsilon = epsilon;
  config.seed = seed;
  config.tcp.max_cwnd = max_cwnd;
  auto scenario = harness::make_multipath(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(seconds));
  return scenario;
}

TEST(Mitigation, PlainSackSuffersUnderReordering) {
  // Window capped below the loss point: any retransmission is spurious.
  auto scenario = run_multipath(TcpVariant::kSack, 0.0, 10, 1, 50);
  const auto& stats = scenario->senders[0]->stats();
  // Plain SACK misreads reordering as loss: spurious fast retransmits and
  // a collapsed window keep goodput far below the ~40 Mbps available.
  EXPECT_GE(stats.fast_retransmits + stats.timeouts, 3u);
  EXPECT_GT(scenario->receivers[0]->stats().duplicates, 0u);
  const double goodput_bps =
      scenario->receivers[0]->stats().goodput_bytes * 8.0 / 10.0;
  EXPECT_LT(goodput_bps, 15e6);
}

TEST(Mitigation, DsackNmDetectsSpuriousRetransmits) {
  auto scenario = run_multipath(TcpVariant::kDsackNm, 0.0, 10);
  EXPECT_GT(scenario->senders[0]->stats().spurious_retransmits_detected, 5u);
}

TEST(Mitigation, DsackNmKeepsDupthreshAtDefault) {
  auto scenario = run_multipath(TcpVariant::kDsackNm, 0.0, 10);
  auto* sender = dynamic_cast<SackSender*>(scenario->senders[0].get());
  ASSERT_NE(sender, nullptr);
  EXPECT_DOUBLE_EQ(sender->raw_dupthresh(), 3.0);
}

TEST(Mitigation, IncByOneRaisesDupthresh) {
  auto scenario = run_multipath(TcpVariant::kIncByOne, 0.0, 10);
  auto* sender = dynamic_cast<SackSender*>(scenario->senders[0].get());
  ASSERT_NE(sender, nullptr);
  EXPECT_GT(sender->raw_dupthresh(), 3.0);
}

TEST(Mitigation, IncByNRaisesDupthreshFasterThanIncByOne) {
  auto inc1 = run_multipath(TcpVariant::kIncByOne, 0.0, 6);
  auto incn = run_multipath(TcpVariant::kIncByN, 0.0, 6);
  auto* s1 = dynamic_cast<SackSender*>(inc1->senders[0].get());
  auto* sn = dynamic_cast<SackSender*>(incn->senders[0].get());
  // Inc-by-N jumps toward the observed extent immediately; after the same
  // few spurious events it should be at least as high.
  EXPECT_GE(sn->raw_dupthresh() + 1.0, s1->raw_dupthresh());
}

TEST(Mitigation, EwmaTracksReorderingExtent) {
  auto scenario = run_multipath(TcpVariant::kEwma, 0.0, 10);
  auto* sender =
      dynamic_cast<MitigationSender*>(scenario->senders[0].get());
  ASSERT_NE(sender, nullptr);
  EXPECT_NE(sender->ewma_extent(), 3.0);  // moved off its initial value
}

TEST(Mitigation, MitigationsReduceSpuriousRetransmissionsOverTime) {
  // With dupthresh adaptation, the retransmission *rate* should be lower
  // than plain SACK's under identical reordering.
  auto plain = run_multipath(TcpVariant::kSack, 0.0, 15);
  auto adapted = run_multipath(TcpVariant::kIncByN, 0.0, 15);
  EXPECT_LT(adapted->senders[0]->stats().retransmissions,
            plain->senders[0]->stats().retransmissions);
}

TEST(Mitigation, NoSpuriousEventsWithoutReordering) {
  for (const TcpVariant v : {TcpVariant::kDsackNm, TcpVariant::kIncByOne,
                             TcpVariant::kIncByN, TcpVariant::kEwma}) {
    // Window capped below the path BDP: no losses, no reordering.
    auto scenario = run_multipath(v, 500.0, 10, 1, 30);
    EXPECT_EQ(scenario->senders[0]->stats().spurious_retransmits_detected, 0u)
        << to_string(v);
    EXPECT_EQ(scenario->senders[0]->stats().retransmissions, 0u)
        << to_string(v);
  }
}

TEST(Mitigation, UndoRestoresSsthreshAfterSpuriousEvent) {
  // Capped window, pure reordering: every recovery is spurious, so the
  // DSACK undo must keep ssthresh pinned at the cap while plain SACK's
  // ssthresh stays crushed.
  auto undo = run_multipath(TcpVariant::kDsackNm, 0.0, 12, 1, 50);
  auto plain = run_multipath(TcpVariant::kSack, 0.0, 12, 1, 50);
  auto* undo_sender = dynamic_cast<SackSender*>(undo->senders[0].get());
  auto* plain_sender = dynamic_cast<SackSender*>(plain->senders[0].get());
  ASSERT_NE(undo_sender, nullptr);
  ASSERT_GT(undo_sender->stats().spurious_retransmits_detected, 0u);
  EXPECT_GT(undo_sender->ssthresh(), plain_sender->ssthresh());
}

TEST(Eifel, DetectsSpuriousViaTimestamps) {
  auto scenario = run_multipath(TcpVariant::kEifel, 0.0, 10);
  EXPECT_GT(scenario->senders[0]->stats().spurious_retransmits_detected, 0u);
}

TEST(Eifel, OutperformsPlainSackUnderReordering) {
  auto eifel = run_multipath(TcpVariant::kEifel, 0.0, 12);
  auto plain = run_multipath(TcpVariant::kSack, 0.0, 12);
  EXPECT_GT(eifel->receivers[0]->stats().goodput_bytes,
            plain->receivers[0]->stats().goodput_bytes);
}

TEST(Eifel, QuietOnCleanPath) {
  auto scenario = run_multipath(TcpVariant::kEifel, 500.0, 10);
  EXPECT_EQ(scenario->senders[0]->stats().spurious_retransmits_detected, 0u);
}

}  // namespace
}  // namespace tcppr::tcp
