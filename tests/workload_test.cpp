// Tests for the flow lifecycle engine (src/workload): dynamic arrivals,
// genuine departures, slot recycling under quarantine, steady-state memory
// at churn scale, and byte-identical delivery streams across the parallel
// engine and the batched/unbatched hot paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "harness/parallel_run.hpp"
#include "harness/scenarios.hpp"
#include "net/link_pump.hpp"
#include "obs/series.hpp"
#include "validate/determinism.hpp"
#include "workload/workload.hpp"

namespace tcppr::workload {
namespace {

using harness::Scenario;

std::unique_ptr<Scenario> make_churn_dumbbell(double bottleneck_bw_bps) {
  harness::DumbbellConfig cfg;
  cfg.pr_flows = 0;
  cfg.sack_flows = 0;
  cfg.bottleneck_bw_bps = bottleneck_bw_bps;
  cfg.access_bw_bps = 4 * bottleneck_bw_bps;
  cfg.bottleneck_queue = 500;
  cfg.access_queue = 1000;
  return harness::make_dumbbell(cfg);
}

// A mice-heavy Poisson workload whose quarantine is short enough that the
// slot table recycles many times over within a test-sized run.
WorkloadConfig mice_config(double arrival_rate) {
  WorkloadConfig wc;
  wc.kind = WorkloadKind::kPoisson;
  wc.arrival_rate = arrival_rate;
  wc.min_segments = 2;
  wc.max_segments = 16;
  wc.quarantine = sim::Duration::millis(300);
  wc.reap_idle = sim::Duration::millis(150);
  wc.reap_sweep = sim::Duration::millis(50);
  return wc;
}

TEST(Workload, ParseKindRoundTrips) {
  WorkloadKind kind;
  EXPECT_TRUE(parse_workload_kind("poisson", &kind));
  EXPECT_EQ(kind, WorkloadKind::kPoisson);
  EXPECT_TRUE(parse_workload_kind("web", &kind));
  EXPECT_EQ(kind, WorkloadKind::kWeb);
  EXPECT_TRUE(parse_workload_kind("onoff", &kind));
  EXPECT_EQ(kind, WorkloadKind::kOnOff);
  EXPECT_FALSE(parse_workload_kind("bulk", &kind));
  EXPECT_STREQ(to_string(WorkloadKind::kWeb), "web");
}

TEST(Workload, FlowsArriveCompleteAndGenuinelyDepart) {
  auto s = make_churn_dumbbell(50e6);
  const std::size_t src_agents = s->network.node(s->src_host).agent_count();
  const std::size_t dst_agents = s->network.node(s->dst_host).agent_count();

  WorkloadEngine engine(*s, mice_config(500));
  engine.start();
  s->sched.run_until(sim::TimePoint::from_seconds(5));
  const WorkloadStats mid = engine.stats();
  EXPECT_GT(mid.arrivals, 2000u);
  EXPECT_GT(mid.completed, mid.arrivals * 9 / 10);
  EXPECT_GT(mid.mean_completion_s(), 0.0);
  EXPECT_LT(mid.mean_completion_s(), 2.0);
  // Departure is real: live transport state tracks concurrency, not the
  // total ever created.
  EXPECT_LT(mid.active, 200u);
  EXPECT_EQ(mid.receivers_created,
            mid.receivers_closed + mid.receivers_reaped +
                engine.live_receivers());

  // Stop arrivals and drain: every sender and receiver must detach.
  engine.stop();
  s->sched.run_until(sim::TimePoint::from_seconds(8));
  const WorkloadStats end = engine.stats();
  EXPECT_EQ(end.active, 0u);
  EXPECT_EQ(s->network.node(s->src_host).agent_count(), src_agents);
  EXPECT_EQ(s->network.node(s->dst_host).agent_count(), dst_agents);
}

// The satellite-1 regression: 10k+ churned flows through one engine must
// leave the scheduler, the packet pool, and the slot table at steady state
// — every per-flow resource is reclaimed, nothing scales with the number
// of flows ever created. This is also the ISSUE acceptance run: 10
// simulated seconds at >= 10k arrivals/sec with a bounded bytes-per-slot
// budget.
TEST(WorkloadChurn, TenSecondsAtTenThousandArrivalsPerSecondStaysBounded) {
  auto s = make_churn_dumbbell(400e6);
  WorkloadConfig wc = mice_config(10000);
  wc.max_segments = 4;  // mice: keep offered load under the bottleneck
  wc.max_concurrent = 8192;
  wc.id_slots = 1 << 15;
  WorkloadEngine engine(*s, wc);
  engine.start();
  s->sched.run_until(sim::TimePoint::from_seconds(10));

  const WorkloadStats mid = engine.stats();
  ASSERT_GE(mid.arrivals, 95000u);
  EXPECT_GT(mid.completed, mid.arrivals * 9 / 10);
  EXPECT_EQ(mid.rejected, 0u);

  // Steady state: the slot table holds active + cooling flows, an order
  // of magnitude below the number of flows ever created...
  EXPECT_LT(engine.slots_in_use(), mid.arrivals / 6);
  // ...and the bookkeeping honours the per-slot byte budget (the slabs
  // plus a constant-ish slack for the recycling queues and monitor pool).
  // The factor of two is vector growth: capacity may run up to double the
  // high-water slot count; the static_assert on kSlabBytesPerSlot keeps
  // the true per-slot footprint inside 64 bytes.
  EXPECT_LE(engine.slab_bytes(),
            2 * engine.slots_in_use() * 64 + (1u << 16));

  engine.stop();
  s->sched.run_until(sim::TimePoint::from_seconds(12));
  const WorkloadStats end = engine.stats();
  EXPECT_EQ(end.active, 0u);
  // Scheduler population is O(live state), not O(flows ever created):
  // after the drain only stale cancelled shots and idle-timer leftovers
  // remain.
  EXPECT_EQ(s->sched.pending_count(), 0u);
  EXPECT_LT(s->sched.queued_count(), 4096u);
  // Packet pool: no packet of any departed flow is still checked out (the
  // pool's storage is a high-water mark and never shrinks — steady state
  // means every slot is back on the free list).
  EXPECT_EQ(s->network.packet_pool()->allocated(),
            s->network.packet_pool()->idle());
}

TEST(WorkloadChurn, SlotRecyclingRespectsQuarantine) {
  auto s = make_churn_dumbbell(50e6);
  WorkloadConfig wc = mice_config(1000);
  wc.id_slots = 64;  // force heavy recycling
  wc.max_concurrent = 64;
  WorkloadEngine engine(*s, wc);
  engine.start();
  s->sched.run_until(sim::TimePoint::from_seconds(5));
  const WorkloadStats stats = engine.stats();
  // Far more flows than slots: recycling worked (rejects are allowed when
  // every slot is cooling, but most arrivals must land).
  EXPECT_GT(stats.arrivals, 3 * 64u);
  EXPECT_EQ(engine.slots_in_use(), 64u);
  EXPECT_GT(stats.completed, 0u);
}

TEST(Workload, DeterministicForSeedAndSensitiveToSeed) {
  const auto digest = [](std::uint64_t seed) {
    auto s = make_churn_dumbbell(50e6);
    validate::DeliveryHasher hasher;
    s->network.add_trace_sink(&hasher);
    WorkloadConfig wc = mice_config(800);
    wc.seed = seed;
    WorkloadEngine engine(*s, wc);
    engine.start();
    s->sched.run_until(sim::TimePoint::from_seconds(3));
    return hasher.hash();
  };
  EXPECT_EQ(digest(7), digest(7));
  EXPECT_NE(digest(7), digest(8));
}

// ---------------------------------------------------------------------------
// Parallel / batching equivalence: the churn acceptance criterion. A
// churning run must produce a byte-identical delivery stream at every LP
// count and on both hot paths; the canonical baseline is the stamped
// one-shard batched run.

struct ChurnDigest {
  std::uint64_t hash = 0;
  std::uint64_t delivered = 0;
  std::uint64_t completed = 0;
};

ChurnDigest run_churn(WorkloadKind kind, int lps, bool batching) {
  net::set_hot_path_batching(batching);
  auto s = make_churn_dumbbell(100e6);
  validate::DeliveryHasher hasher;
  s->network.add_trace_sink(&hasher);
  WorkloadConfig wc = mice_config(2000);
  wc.kind = kind;
  if (kind == WorkloadKind::kOnOff) wc.onoff_sources = 64;
  const auto end = sim::TimePoint::from_seconds(2);
  ChurnDigest out;
  if (lps == 0) {  // legacy sequential scheduler
    WorkloadEngine engine(*s, wc);
    engine.start();
    s->sched.run_until(end);
    out.completed = engine.stats().completed;
  } else {
    harness::ParallelRunConfig pc;
    pc.lps = lps;
    harness::ParallelSim psim(*s, pc);
    WorkloadEngine engine(*s, wc, &psim);
    engine.start();
    psim.run_until(end);
    out.completed = engine.stats().completed;
  }
  net::set_hot_path_batching(true);  // restore the process default
  out.hash = hasher.hash();
  out.delivered = hasher.delivered();
  return out;
}

class ChurnEquivalence : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(ChurnEquivalence, DigestIdenticalAcrossParAndBatching) {
  const WorkloadKind kind = GetParam();
  const ChurnDigest base = run_churn(kind, /*lps=*/1, /*batching=*/true);
  ASSERT_GT(base.delivered, 0u);
  ASSERT_GT(base.completed, 0u);
  for (const int lps : {1, 2, 4}) {
    for (const bool batching : {true, false}) {
      if (lps == 1 && batching) continue;  // the baseline itself
      const ChurnDigest d = run_churn(kind, lps, batching);
      EXPECT_EQ(d.hash, base.hash)
          << to_string(kind) << " lps=" << lps << " batching=" << batching;
      EXPECT_EQ(d.delivered, base.delivered)
          << to_string(kind) << " lps=" << lps << " batching=" << batching;
      EXPECT_EQ(d.completed, base.completed)
          << to_string(kind) << " lps=" << lps << " batching=" << batching;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ChurnEquivalence,
                         ::testing::Values(WorkloadKind::kPoisson,
                                           WorkloadKind::kWeb,
                                           WorkloadKind::kOnOff));

// ---------------------------------------------------------------------------
// Observability under churn: the registry leak regression.

TEST(WorkloadObs, RegistryRetiresDepartedFlowsUnderChurn) {
  auto s = make_churn_dumbbell(50e6);
  obs::MetricRegistry registry;
  obs::MemorySeriesSink sink;
  registry.add_sink(&sink);
  WorkloadEngine engine(*s, mice_config(800));
  engine.set_metric_registry(registry);
  engine.start();
  s->sched.run_until(sim::TimePoint::from_seconds(5));
  const WorkloadStats mid = engine.stats();
  ASSERT_GT(mid.arrivals, 2000u);
  ASSERT_GT(registry.samples_recorded(), 0u);
  // The leak this guards against: one (metric, flow) entry per flow ever
  // created, i.e. >= arrivals. With teardown retiring flows the table is
  // bounded by live flows (plus in-transit closes).
  EXPECT_LT(registry.tracked_series(),
            registry.metric_count() * (mid.active + 64));

  engine.stop();
  s->sched.run_until(sim::TimePoint::from_seconds(8));
  // Fully drained: only unlabeled (kInvalidFlow) series remain.
  EXPECT_LE(registry.tracked_series(), registry.metric_count());
}

TEST(WorkloadObs, AggregateOnlyKeepsValueTableAtMetricCount) {
  auto s = make_churn_dumbbell(50e6);
  obs::MetricRegistry registry;
  obs::MemorySeriesSink sink;
  registry.add_sink(&sink);
  registry.set_aggregate_only(true);
  WorkloadEngine engine(*s, mice_config(800));
  engine.set_metric_registry(registry);
  engine.start();
  s->sched.run_until(sim::TimePoint::from_seconds(3));
  ASSERT_GT(engine.stats().arrivals, 1000u);
  ASSERT_GT(registry.samples_recorded(), 0u);
  EXPECT_LE(registry.tracked_series(), registry.metric_count());
  // Values still accrue across flows in aggregate mode (the dumbbell path
  // is clean, so use the receive-point gauge — it advances on every flow).
  const auto& fm = registry.flow_metrics();
  EXPECT_GT(registry.total(fm.rcv_next), 0.0);
}

// ---------------------------------------------------------------------------
// Workload kinds

TEST(Workload, WebMixProducesMiceAndElephants) {
  auto s = make_churn_dumbbell(50e6);
  WorkloadConfig wc = mice_config(500);
  wc.kind = WorkloadKind::kWeb;
  wc.elephant_fraction = 0.05;
  wc.max_segments = 2048;
  WorkloadEngine engine(*s, wc);
  engine.start();
  s->sched.run_until(sim::TimePoint::from_seconds(5));
  const WorkloadStats stats = engine.stats();
  EXPECT_GT(stats.arrivals, 1500u);
  EXPECT_GT(stats.completed, stats.arrivals / 2);
  // Aggregate reorder telemetry folds live + departed flows.
  EXPECT_GT(engine.reorder_stats().total(), 1000u);
}

TEST(Workload, OnOffPopulationAlternatesTransfersAndThink) {
  auto s = make_churn_dumbbell(50e6);
  WorkloadConfig wc = mice_config(0);  // rate ignored for on/off
  wc.kind = WorkloadKind::kOnOff;
  wc.onoff_sources = 16;
  WorkloadEngine engine(*s, wc);
  engine.start();
  s->sched.run_until(sim::TimePoint::from_seconds(10));
  const WorkloadStats stats = engine.stats();
  // Each source cycles transfer -> think -> transfer; with a median think
  // time of exp(-0.7) ~ 0.5 s every source completes several rounds.
  EXPECT_GT(stats.arrivals, 16u * 4);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_LE(stats.active, 16u);
}

}  // namespace
}  // namespace tcppr::workload
