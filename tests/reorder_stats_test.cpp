// Tests for the RFC 4737-style reordering metrics and their wiring into
// the receiver's data tap.
#include <gtest/gtest.h>

#include "harness/scenarios.hpp"
#include "stats/reorder.hpp"

namespace tcppr::stats {
namespace {

TEST(ReorderMonitor, InOrderStreamIsClean) {
  ReorderMonitor m;
  for (net::SeqNo s = 0; s < 100; ++s) m.on_arrival(s);
  EXPECT_EQ(m.total(), 100u);
  EXPECT_EQ(m.reordered(), 0u);
  EXPECT_DOUBLE_EQ(m.reordered_fraction(), 0.0);
  EXPECT_EQ(m.max_buffer_occupancy(), 0u);
}

TEST(ReorderMonitor, SingleSwapCountsOneReordered) {
  ReorderMonitor m;
  m.on_arrival(0);
  m.on_arrival(2);
  m.on_arrival(1);  // reordered, extent 1
  m.on_arrival(3);
  EXPECT_EQ(m.reordered(), 1u);
  EXPECT_EQ(m.max_extent(), 1);
  EXPECT_DOUBLE_EQ(m.mean_extent(), 1.0);
  EXPECT_DOUBLE_EQ(m.reordered_fraction(), 0.25);
}

TEST(ReorderMonitor, ExtentTracksDisplacement) {
  ReorderMonitor m;
  m.on_arrival(9);  // first packet, max_seen 9
  m.on_arrival(0);  // extent 9
  EXPECT_EQ(m.max_extent(), 9);
  const auto& hist = m.extent_histogram();
  EXPECT_EQ(hist[9], 1u);
}

TEST(ReorderMonitor, HistogramTailBucketAbsorbsLargeExtents) {
  ReorderMonitor m(8);
  m.on_arrival(1000);
  m.on_arrival(0);  // extent 1000 >> 8 buckets
  EXPECT_EQ(m.extent_histogram().back(), 1u);
}

TEST(ReorderMonitor, BufferOccupancyModelsResequencing) {
  ReorderMonitor m;
  // Arrivals 3,1,2,0: buffer holds {3},{1,3},{1,2,3} then drains.
  m.on_arrival(3);
  m.on_arrival(1);
  m.on_arrival(2);
  EXPECT_EQ(m.max_buffer_occupancy(), 3u);
  m.on_arrival(0);
  EXPECT_EQ(m.max_buffer_occupancy(), 3u);  // drained, peak unchanged
}

TEST(ReorderMonitor, DuplicatesDoNotGrowBuffer) {
  ReorderMonitor m;
  m.on_arrival(1);
  m.on_arrival(1);
  m.on_arrival(1);
  EXPECT_EQ(m.max_buffer_occupancy(), 1u);
  EXPECT_EQ(m.reordered(), 2u);  // duplicates count as reordered arrivals
}

TEST(ReorderMonitor, ResetClearsStateForRecycledFlowId) {
  // The churn bug this guards: a monitor kept across flow departure (or a
  // pooled monitor reattached to a recycled flow id) still carries the old
  // flow's max_seen_ high-water mark. The new flow restarts at seq 0 —
  // below that mark — so without reset() every early segment would count
  // as a huge reordering.
  ReorderMonitor m;
  for (net::SeqNo s = 0; s < 1000; ++s) m.on_arrival(s);  // clean old flow
  EXPECT_EQ(m.reordered(), 0u);

  // Restarted / recycled flow without reset: in-order arrivals misread as
  // massive reordering (this is the miscount, shown, not asserted as API).
  ReorderMonitor stale = m;
  stale.on_arrival(0);
  stale.on_arrival(1);
  EXPECT_EQ(stale.reordered(), 2u);  // both misclassified
  EXPECT_GE(stale.max_extent(), 900);

  m.reset();
  for (net::SeqNo s = 0; s < 100; ++s) m.on_arrival(s);
  EXPECT_EQ(m.total(), 100u);
  EXPECT_EQ(m.reordered(), 0u);
  EXPECT_EQ(m.max_extent(), 0);
  EXPECT_EQ(m.max_buffer_occupancy(), 0u);
}

TEST(ReorderMonitor, MergeIntoSumsCountersAndMaxesMaxima) {
  ReorderMonitor a;
  a.on_arrival(0);
  a.on_arrival(2);
  a.on_arrival(1);  // 3 arrivals, 1 reordered, extent 1
  ReorderMonitor b;
  b.on_arrival(5);
  b.on_arrival(0);  // 2 arrivals, 1 reordered, extent 5
  ReorderMonitor agg;
  a.merge_into(agg);
  b.merge_into(agg);
  EXPECT_EQ(agg.total(), 5u);
  EXPECT_EQ(agg.reordered(), 2u);
  EXPECT_EQ(agg.max_extent(), 5);
  EXPECT_DOUBLE_EQ(agg.mean_extent(), 3.0);
  EXPECT_EQ(agg.extent_histogram()[1], 1u);
  EXPECT_EQ(agg.extent_histogram()[5], 1u);
  EXPECT_EQ(agg.max_buffer_occupancy(), 1u);
}

TEST(ReorderMonitor, MergeFoldsOversizedExtentsIntoTailBucket) {
  ReorderMonitor fine;  // 64 buckets
  fine.on_arrival(40);
  fine.on_arrival(0);  // extent 40
  ReorderMonitor coarse(8);
  fine.merge_into(coarse);
  EXPECT_EQ(coarse.extent_histogram().back(), 1u);
  EXPECT_EQ(coarse.total(), 2u);
}

TEST(ReorderMonitor, WiredToReceiverTapOnMultipath) {
  harness::MultipathConfig config;
  config.variant = harness::TcpVariant::kTcpPr;
  config.epsilon = 0;
  config.tcp.max_cwnd = 50;
  auto scenario = harness::make_multipath(config);
  ReorderMonitor monitor;
  scenario->receivers[0]->set_data_tap(
      [&](const net::Packet& pkt) { monitor.on_arrival(pkt.tcp.seq); });
  scenario->sched.run_until(sim::TimePoint::from_seconds(10));
  EXPECT_GT(monitor.total(), 1000u);
  EXPECT_GT(monitor.reordered_fraction(), 0.1);
  EXPECT_GT(monitor.max_extent(), 3);
  EXPECT_GT(monitor.max_buffer_occupancy(), 3u);
  // The monitor's independent buffer model agrees with the receiver's own
  // out-of-order buffering high-water behaviour in order of magnitude.
  EXPECT_LE(monitor.max_buffer_occupancy(), 200u);
}

TEST(ReorderMonitor, ShortestPathHasNoReordering) {
  harness::MultipathConfig config;
  config.variant = harness::TcpVariant::kTcpPr;
  config.epsilon = 500;
  config.tcp.max_cwnd = 20;
  auto scenario = harness::make_multipath(config);
  ReorderMonitor monitor;
  scenario->receivers[0]->set_data_tap(
      [&](const net::Packet& pkt) { monitor.on_arrival(pkt.tcp.seq); });
  scenario->sched.run_until(sim::TimePoint::from_seconds(10));
  EXPECT_GT(monitor.total(), 1000u);
  EXPECT_EQ(monitor.reordered(), 0u);
}

}  // namespace
}  // namespace tcppr::stats
