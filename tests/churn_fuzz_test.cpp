// Fuzzed churn equivalence: randomized scenarios with the workload
// engine's dynamic flow lifecycle forced ON must stay engine-invariant.
// workload_test.cpp proves the property on the hand-built churn dumbbell;
// these suites extend it to fuzz-sampled topologies, fault processes and
// variant mixes — receiver reaping, slot quarantine and mid-stream resume
// interleaved with loss, jitter, flaps and reconfiguration.
//
// Two suites, mirroring batch_equivalence_test.cpp:
//   - batched vs unbatched over churning fuzz seeds (same backend/LP
//     count on both sides; only `batching` differs), and
//   - par {1,2,4} vs the stamped single-shard baseline (par_lps=1 is the
//     canonical tie order the parallel engine reproduces).
#include <gtest/gtest.h>

#include <cstdint>

#include "validate/fuzzer.hpp"

namespace tcppr::validate {
namespace {

// Forces the churn dimension on without disturbing the rest of the
// sampled case: seeds whose draw left churn off get a deterministic
// kind/rate derived from the seed itself.
FuzzCase churning_case(std::uint64_t seed) {
  FuzzCase c = sample_fuzz_case(seed);
  if (c.churn_rate <= 0) {
    c.churn_rate = 200.0 + 50.0 * static_cast<double>(seed % 8);
    c.churn_kind = static_cast<int>(seed % 3);
  }
  c.duration_s = std::min(c.duration_s, 4.0);
  return c;
}

class ChurnFuzzBatchEquivalence : public testing::TestWithParam<int> {};

TEST_P(ChurnFuzzBatchEquivalence, BatchedMatchesUnbatched) {
  constexpr int kSeedsPerShard = 6;
  const std::uint64_t first =
      301 + static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard;
  for (std::uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    FuzzCase c = churning_case(seed);
    c.par_lps = seed % 3 == 0 ? 2 : 0;
    FuzzCase unbatched = c;
    unbatched.batching = false;
    const FuzzResult ref = run_fuzz_case(unbatched);
    c.batching = true;
    const FuzzResult batched = run_fuzz_case(c);
    EXPECT_EQ(batched.delivery_hash, ref.delivery_hash)
        << "seed " << seed << " (" << describe(c) << ")";
    EXPECT_EQ(batched.delivered, ref.delivered) << "seed " << seed;
    EXPECT_EQ(batched.ok, ref.ok) << "seed " << seed;
    EXPECT_TRUE(ref.ok) << "seed " << seed << ": " << ref.first_violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds301To324, ChurnFuzzBatchEquivalence,
                         testing::Range(0, 4));

class ChurnFuzzParEquivalence : public testing::TestWithParam<int> {};

TEST_P(ChurnFuzzParEquivalence, ParMatchesStampedBaseline) {
  constexpr int kSeedsPerShard = 4;
  const std::uint64_t first =
      401 + static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard;
  for (std::uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    FuzzCase c = churning_case(seed);
    c.par_lps = 1;
    const FuzzResult ref = run_fuzz_case(c);
    EXPECT_TRUE(ref.ok) << "seed " << seed << ": " << ref.first_violation;
    EXPECT_GT(ref.delivered, 0u) << "seed " << seed;
    for (const int lps : {2, 4}) {
      FuzzCase t = c;
      t.par_lps = lps;
      const FuzzResult r = run_fuzz_case(t);
      EXPECT_EQ(r.delivery_hash, ref.delivery_hash)
          << "seed " << seed << " lps=" << lps << " (" << describe(t) << ")";
      EXPECT_EQ(r.delivered, ref.delivered)
          << "seed " << seed << " lps=" << lps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds401To416, ChurnFuzzParEquivalence,
                         testing::Range(0, 4));

}  // namespace
}  // namespace tcppr::validate
