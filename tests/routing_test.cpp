// Unit tests for graph algorithms and the multi-path routing policies —
// in particular the ε-parameterized path distribution of Section 5.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "harness/scenarios.hpp"
#include "net/network.hpp"
#include "routing/graph.hpp"
#include "routing/multipath.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::routing {
namespace {

TEST(Graph, ShortestPathPicksLowerCost) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 0.5);
  g.add_edge(2, 3, 0.5);
  const auto path = g.shortest_path(0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<net::NodeId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(g.path_cost(*path), 1.0);
}

TEST(Graph, UnreachableReturnsNullopt) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(g.shortest_path(0, 2).has_value());
}

TEST(Graph, ShortestPathTreeDistances) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 1.0);
  const auto tree = g.shortest_paths(0);
  EXPECT_DOUBLE_EQ(tree.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 4.0);
}

TEST(Graph, DisjointPathsFindsParallelRoutes) {
  // Two node-disjoint routes 0-1-5 and 0-2-3-5 plus a shared-node variant.
  Graph g(6);
  const auto duplex = [&](net::NodeId a, net::NodeId b, double c) {
    g.add_edge(a, b, c);
    g.add_edge(b, a, c);
  };
  duplex(0, 1, 1);
  duplex(1, 5, 1);
  duplex(0, 2, 1);
  duplex(2, 3, 1);
  duplex(3, 5, 1);
  const auto paths = g.node_disjoint_paths(0, 5);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].size(), 3u);  // shortest first
  EXPECT_EQ(paths[1].size(), 4u);
}

TEST(Graph, DisjointPathsStopOnDirectEdge) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  const auto paths = g.node_disjoint_paths(0, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<net::NodeId>{0, 1}));
}

PathSet two_paths() {
  PathSet set;
  set.src = 0;
  set.dst = 3;
  set.paths = {{0, 1, 3}, {0, 2, 3}};
  set.costs = {2.0, 4.0};
  return set;
}

TEST(MultipathSelector, EpsilonZeroIsUniform) {
  MultipathSelector sel(two_paths(), 0.0, sim::Rng(1));
  int first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto choice = sel.choose_route(3);
    ASSERT_TRUE(choice.has_value());
    if (choice->path_id == 0) ++first;
  }
  EXPECT_NEAR(first / static_cast<double>(n), 0.5, 0.02);
}

TEST(MultipathSelector, LargeEpsilonIsShortestPath) {
  MultipathSelector sel(two_paths(), 500.0, sim::Rng(1));
  for (int i = 0; i < 5000; ++i) {
    const auto choice = sel.choose_route(3);
    ASSERT_TRUE(choice.has_value());
    EXPECT_EQ(choice->path_id, 0);
  }
}

TEST(MultipathSelector, IntermediateEpsilonPrefersShorter) {
  MultipathSelector sel(two_paths(), 1.0, sim::Rng(1));
  int first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sel.choose_route(3)->path_id == 0) ++first;
  }
  // Weight ratio exp(0) : exp(-1) -> p(short) = 1/(1+e^-1) ~ 0.731.
  EXPECT_NEAR(first / static_cast<double>(n), 1.0 / (1.0 + std::exp(-1.0)),
              0.02);
}

TEST(MultipathSelector, OtherDestinationsFallThrough) {
  MultipathSelector sel(two_paths(), 0.0, sim::Rng(1));
  EXPECT_FALSE(sel.choose_route(7).has_value());
}

TEST(MultipathSelector, RouteExcludesSource) {
  MultipathSelector sel(two_paths(), 500.0, sim::Rng(1));
  const auto choice = sel.choose_route(3);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->route, (net::RouteVec{1, 3}));
}

TEST(MultipathSelector, PicksAreCounted) {
  MultipathSelector sel(two_paths(), 0.0, sim::Rng(1));
  for (int i = 0; i < 100; ++i) sel.choose_route(3);
  EXPECT_EQ(sel.picks()[0] + sel.picks()[1], 100u);
}

TEST(RouteFlapPolicy, AlternatesOverTime) {
  sim::Scheduler sched;
  RouteFlapPolicy policy(sched, two_paths(), sim::Duration::seconds(1));
  EXPECT_EQ(policy.choose_route(3)->path_id, 0);
  sched.run_until(sim::TimePoint::from_seconds(1.5));
  EXPECT_EQ(policy.choose_route(3)->path_id, 1);
  sched.run_until(sim::TimePoint::from_seconds(2.5));
  EXPECT_EQ(policy.choose_route(3)->path_id, 0);
}

TEST(PathSetDisjoint, FromNetworkMatchesTopology) {
  sim::Scheduler sched;
  net::Network network(sched);
  const auto s = network.add_node();
  const auto d = network.add_node();
  net::LinkConfig cfg;
  // Two disjoint relay paths with 1 and 2 relays.
  auto r1 = network.add_node();
  network.add_duplex_link(s, r1, cfg);
  network.add_duplex_link(r1, d, cfg);
  auto r2a = network.add_node();
  auto r2b = network.add_node();
  network.add_duplex_link(s, r2a, cfg);
  network.add_duplex_link(r2a, r2b, cfg);
  network.add_duplex_link(r2b, d, cfg);
  const PathSet set = PathSet::disjoint_paths(network, s, d);
  ASSERT_EQ(set.paths.size(), 2u);
  EXPECT_EQ(set.paths[0].size(), 3u);
  EXPECT_EQ(set.paths[1].size(), 4u);
  EXPECT_LT(set.costs[0], set.costs[1]);
}

TEST(MultipathScenario, ReorderingActuallyHappens) {
  // End-to-end sanity: with epsilon 0 the receiver must observe
  // out-of-order arrivals; with epsilon 500 it must not.
  using namespace tcppr::harness;
  for (const double eps : {0.0, 500.0}) {
    MultipathConfig config;
    config.variant = TcpVariant::kTcpPr;
    config.epsilon = eps;
    config.tcp.max_cwnd = 20;  // below BDP: no losses, reordering only
    auto scenario = make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(5));
    const auto& rs = scenario->receivers[0]->stats();
    if (eps == 0.0) {
      EXPECT_GT(rs.out_of_order, 50u) << "eps=" << eps;
    } else {
      EXPECT_EQ(rs.out_of_order, 0u) << "eps=" << eps;
    }
  }
}

}  // namespace
}  // namespace tcppr::routing
