// Mutation self-test for the validation layer: deliberately corrupt the
// simulation through test-only knobs and assert the InvariantChecker
// actually reports a violation. A checker that cannot catch a planted bug
// proves nothing when it reports a clean run.
#include <gtest/gtest.h>

#include <string>

#include "validate/fuzzer.hpp"
#include "validate/invariants.hpp"

namespace tcppr::validate {
namespace {

FuzzCase base_case() {
  FuzzCase c;
  c.seed = 7;
  c.topology = FuzzCase::Topology::kDumbbell;
  c.flows = 1;
  c.variants = {harness::TcpVariant::kSack};
  c.duration_s = 3.0;
  return c;
}

TEST(ValidateSelfTest, BaselineIsClean) {
  const FuzzResult r = run_fuzz_case(base_case());
  EXPECT_TRUE(r.ok) << r.first_violation;
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.delivered, 0u);
}

TEST(ValidateSelfTest, CorruptedTransitAccountingIsCaught) {
  FuzzCase c = base_case();
  c.corrupt_transit_for_test = true;
  const FuzzResult r = run_fuzz_case(c);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.violations, 0u);
  EXPECT_NE(r.first_violation.find("conservation"), std::string::npos)
      << r.first_violation;
}

TEST(ValidateSelfTest, CorruptedDeliveryHashIsCaught) {
  FuzzCase c = base_case();
  c.corrupt_delivery_for_test = true;
  const FuzzResult r = run_fuzz_case(c);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.violations, 0u);
  EXPECT_NE(r.first_violation.find("checksum"), std::string::npos)
      << r.first_violation;
}

TEST(ValidateSelfTest, CorruptedTelemetrySketchIsCaught) {
  FuzzCase c = base_case();
  c.telemetry = true;
  c.corrupt_telemetry_for_test = true;
  const FuzzResult r = run_fuzz_case(c);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.violations, 0u);
  EXPECT_NE(r.first_violation.find("telemetry"), std::string::npos)
      << r.first_violation;
}

TEST(ValidateSelfTest, ParallelOptimisticBaselineIsClean) {
  FuzzCase c = base_case();
  c.par_lps = 2;
  c.engine_mode = 2;  // optimistic
  const FuzzResult r = run_fuzz_case(c);
  EXPECT_TRUE(r.ok) << r.first_violation;
  EXPECT_EQ(r.delivery_hash, run_fuzz_case(base_case()).delivery_hash);
}

TEST(ValidateSelfTest, CorruptedSnapshotRestoreIsCaught) {
  // The knob claims the LP hosting a validating receiver as
  // straggler-hit at the first speculative settle and flips its delivery
  // hash during the rollback restore — a stand-in for a snapshot that
  // does not round-trip. The checker must flag the checksum divergence.
  FuzzCase c = base_case();
  c.par_lps = 2;
  c.engine_mode = 2;  // optimistic: the knob needs a speculative window
  c.corrupt_snapshot_for_test = true;
  const FuzzResult r = run_fuzz_case(c);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.violations, 0u);
  EXPECT_NE(r.first_violation.find("checksum"), std::string::npos)
      << r.first_violation;
}

TEST(ValidateSelfTest, MinimizerDisablesEngineModeFirst) {
  // A failure that has nothing to do with the parallel engine mode: the
  // minimizer's first accepted simplification must drop the case back to
  // conservative barriers.
  FuzzCase c = base_case();
  c.par_lps = 2;
  c.engine_mode = 2;
  c.corrupt_transit_for_test = true;
  const FuzzCase min = minimize_fuzz_case(c, /*max_runs=*/10);
  EXPECT_FALSE(run_fuzz_case(min).ok);
  EXPECT_EQ(min.engine_mode, 0);
}

TEST(ValidateSelfTest, MinimizerDisablesTelemetryFirst) {
  // A failure that has nothing to do with telemetry: the minimizer's first
  // accepted simplification must strip the telemetry dimension.
  FuzzCase c = base_case();
  c.corrupt_transit_for_test = true;
  c.telemetry = true;
  const FuzzCase min = minimize_fuzz_case(c, /*max_runs=*/10);
  EXPECT_FALSE(run_fuzz_case(min).ok);
  EXPECT_FALSE(min.telemetry);
}

TEST(ValidateSelfTest, MinimizerPreservesFailure) {
  FuzzCase c = base_case();
  c.corrupt_transit_for_test = true;
  // Add removable complexity for the minimizer to strip.
  c.flows = 2;
  c.variants = {harness::TcpVariant::kSack, harness::TcpVariant::kReno};
  c.loss_rate = 0.01;
  c.jitter_ms = 5;
  const FuzzCase min = minimize_fuzz_case(c, /*max_runs=*/20);
  EXPECT_FALSE(run_fuzz_case(min).ok);
  EXPECT_EQ(min.flows, 1);
  EXPECT_EQ(min.loss_rate, 0.0);
  EXPECT_EQ(min.jitter_ms, 0.0);
}

TEST(ValidateSelfTest, SampleFuzzCaseIsPure) {
  for (const std::uint64_t seed : {1ull, 17ull, 400ull}) {
    const FuzzCase a = sample_fuzz_case(seed);
    const FuzzCase b = sample_fuzz_case(seed);
    EXPECT_EQ(describe(a), describe(b));
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(ValidateSelfTest, FuzzCampaignSmoke) {
  // A handful of seeds, single-threaded: exercises the campaign driver
  // end to end (the long campaign runs in CI, non-gating).
  EXPECT_EQ(run_fuzz_campaign(/*first_seed=*/1, /*count=*/5, /*jobs=*/1,
                              /*quiet=*/true),
            0);
}

}  // namespace
}  // namespace tcppr::validate
