// Unit tests for the batched hot-path building blocks: the PacketBatch
// carrier, the PacketPool bulk alloc/free API (generation-tag safety
// across bulk cycles), the queue batch operations, and the link-level
// op-order invariant on jittered lossy links (the loss lottery runs at
// transmission completion, strictly after that hop's next-transmission
// mint — regression for the stamped schedule-op ordering).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/link_pump.hpp"
#include "net/network.hpp"
#include "net/packet_batch.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::net {
namespace {

Packet make_packet(NodeId dst, std::uint32_t bytes, FlowId flow = 1) {
  Packet pkt;
  pkt.dst = dst;
  pkt.size_bytes = bytes;
  pkt.tcp.flow = flow;
  return pkt;
}

TEST(PacketBatch, PushIndexAndSeq) {
  PacketBatch batch;
  EXPECT_TRUE(batch.empty());
  for (int i = 0; i < 3; ++i) {
    Packet pkt = make_packet(0, 100);
    pkt.tcp.seq = i;
    batch.push(std::move(pkt), static_cast<std::uint64_t>(1000 + i));
  }
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batch[i].tcp.seq, static_cast<SeqNo>(i));
    EXPECT_EQ(batch.seq(i), 1000 + i);
  }
}

TEST(PacketBatch, GrowsPastInlineCapacityAndMoves) {
  PacketBatch batch;
  const std::size_t n = PacketBatch::kInline * 3 + 1;
  for (std::size_t i = 0; i < n; ++i) {
    Packet pkt = make_packet(0, 100);
    pkt.tcp.seq = static_cast<SeqNo>(i);
    batch.push(std::move(pkt), i);
  }
  ASSERT_EQ(batch.size(), n);
  // Move (heap case) and verify contents survive.
  PacketBatch moved = std::move(batch);
  EXPECT_EQ(batch.size(), 0u);
  ASSERT_EQ(moved.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(moved[i].tcp.seq, static_cast<SeqNo>(i));
    EXPECT_EQ(moved.seq(i), i);
  }
  // Move the inline case too.
  PacketBatch small;
  small.push(make_packet(2, 40), 7);
  PacketBatch small_moved = std::move(small);
  EXPECT_EQ(small.size(), 0u);
  ASSERT_EQ(small_moved.size(), 1u);
  EXPECT_EQ(small_moved[0].dst, 2);
  EXPECT_EQ(small_moved.seq(0), 7u);
  // And pushing into the moved-from batch works again.
  small.push(make_packet(3, 50));
  EXPECT_EQ(small.size(), 1u);
}

TEST(PacketPool, BulkAllocFreeRecyclesSlots) {
  auto pool = PacketPool::create();
  PacketPool::Ref refs[16];
  pool->alloc_n(16, refs);
  EXPECT_EQ(pool->allocated(), 16u);
  EXPECT_EQ(pool->idle(), 0u);
  for (const auto& r : refs) EXPECT_TRUE(pool->current(r));
  pool->free_n(refs, 16);
  EXPECT_EQ(pool->idle(), 16u);
  // A second cycle reuses the same slots, no new storage.
  PacketPool::Ref again[16];
  pool->alloc_n(16, again);
  EXPECT_EQ(pool->allocated(), 16u);
  pool->free_n(again, 16);
}

TEST(PacketPool, GenerationTagsInvalidateStaleRefsAcrossBulkCycles) {
  auto pool = PacketPool::create();
  PacketPool::Ref first[4];
  pool->alloc_n(4, first);
  pool->free_n(first, 4);
  // The slots were recycled: the old refs must now read as stale, and the
  // fresh refs for the same physical slots as current.
  PacketPool::Ref second[4];
  pool->alloc_n(4, second);
  for (const auto& r : first) EXPECT_FALSE(pool->current(r));
  for (const auto& r : second) EXPECT_TRUE(pool->current(r));
  // adopt() binds a bulk slot to a PooledPacket whose destruction releases
  // it — bumping the generation exactly like free_n.
  const PacketPool::Ref kept = second[0];
  {
    PooledPacket p = pool->adopt(second[0], make_packet(1, 100));
    EXPECT_EQ(p->dst, 1);
  }
  EXPECT_FALSE(pool->current(kept));
  pool->free_n(second + 1, 3);
}

TEST(PacketPool, MixedSingleAndBulkCyclesStaySafe) {
  auto pool = PacketPool::create();
  PooledPacket single = pool->make(make_packet(1, 100));
  PacketPool::Ref refs[8];
  pool->alloc_n(8, refs);
  // The single allocation's slot must not be handed out by the bulk API.
  std::vector<PooledPacket> adopted;
  for (auto& r : refs) adopted.push_back(pool->adopt(r, make_packet(2, 50)));
  for (auto& p : adopted) EXPECT_NE(p.get(), single.get());
  adopted.clear();
  for (const auto& r : refs) EXPECT_FALSE(pool->current(r));
  EXPECT_EQ(*&single->dst, 1);
}

TEST(DropTailQueue, BatchEnqueueAcceptsPrefixDropsOverflow) {
  DropTailQueue q(5);
  PacketBatch batch;
  for (int i = 0; i < 8; ++i) {
    Packet pkt = make_packet(0, 100);
    pkt.tcp.seq = i;
    batch.push(std::move(pkt));
  }
  EXPECT_EQ(q.enqueue_batch(batch, 0, batch.size()), 5u);
  EXPECT_EQ(q.stats().enqueued, 5u);
  EXPECT_EQ(q.stats().dropped, 3u);
  EXPECT_EQ(q.length_packets(), 5u);
  EXPECT_EQ(q.length_bytes(), 500u);
  // FIFO order is preserved.
  for (int i = 0; i < 5; ++i) {
    auto pkt = q.dequeue();
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->tcp.seq, i);
  }
}

TEST(DropTailQueue, BatchDequeueDrainsInOrder) {
  DropTailQueue q(10);
  for (int i = 0; i < 6; ++i) {
    Packet pkt = make_packet(0, 100 + i);
    pkt.tcp.seq = i;
    ASSERT_TRUE(q.enqueue(std::move(pkt)));
  }
  PacketBatch out;
  EXPECT_EQ(q.dequeue_batch(4, out), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].tcp.seq, static_cast<SeqNo>(i));
  }
  EXPECT_EQ(q.length_packets(), 2u);
  // Asking for more than remains returns what's there.
  PacketBatch rest;
  EXPECT_EQ(q.dequeue_batch(10, rest), 2u);
  EXPECT_EQ(q.stats().dequeued, 6u);
}

TEST(DropTailQueue, ByteCappedBatchEnqueueMatchesPerPacket) {
  // With a byte cap the bulk fast path is ineligible; the base-class
  // fallback must behave exactly like per-packet enqueue.
  DropTailQueue bulk(10, /*limit_bytes=*/350);
  DropTailQueue ref(10, /*limit_bytes=*/350);
  PacketBatch batch;
  for (int i = 0; i < 5; ++i) {
    batch.push(make_packet(0, 100));
    ref.enqueue(make_packet(0, 100));
  }
  bulk.enqueue_batch(batch, 0, batch.size());
  EXPECT_EQ(bulk.stats().enqueued, ref.stats().enqueued);
  EXPECT_EQ(bulk.stats().dropped, ref.stats().dropped);
  EXPECT_EQ(bulk.length_bytes(), ref.length_bytes());
}

TEST(RedQueue, BatchEnqueueKeepsPerPacketLottery) {
  // RED inherits the per-packet default (the drop lottery consumes RNG
  // per packet): batch enqueue must leave the same queue state as the
  // same arrivals fed one at a time.
  RedQueue::Params params;
  params.limit_packets = 100;
  params.min_thresh = 5;
  params.max_thresh = 15;
  params.weight = 0.5;
  RedQueue batched_q(params, sim::Rng(7));
  RedQueue ref_q(params, sim::Rng(7));
  PacketBatch batch;
  for (int i = 0; i < 50; ++i) {
    batch.push(make_packet(0, 100));
    ref_q.enqueue(make_packet(0, 100));
  }
  batched_q.enqueue_batch(batch, 0, batch.size());
  EXPECT_EQ(batched_q.stats().enqueued, ref_q.stats().enqueued);
  EXPECT_EQ(batched_q.stats().dropped, ref_q.stats().dropped);
  EXPECT_EQ(batched_q.length_packets(), ref_q.length_packets());
}

// --- Link op-order regression (jitter + loss lottery) -----------------

// Collects the exact arrival sequence at the far node.
class RecordingAgent final : public Agent {
 public:
  void deliver(Packet&& pkt) override {
    arrivals.push_back({pkt.tcp.seq, pkt.hops});
  }
  std::vector<std::pair<SeqNo, int>> arrivals;
};

// One jittered, lossy link driven to saturation. The invariant under
// test: per (node, instant), the scheduler op minted for the *next*
// transmission precedes the op minted for the completed packet's
// delivery — the loss lottery (and jitter draw) sit between the two, so
// any swap reorders the RNG stream and the delivery schedule. The
// batched pump replays exactly that mint order; with TCPPR_DCHECK on,
// Link::complete_packet asserts the delivery mint lands after the
// stamped next-tx op. Equal arrival sequences batched vs unbatched are
// the observable witness.
std::vector<std::pair<SeqNo, int>> run_jittered_lossy(bool batching) {
  set_hot_path_batching(batching);
  sim::Scheduler sched;
  sched.enable_seq_stamping();
  Network network(sched);
  set_hot_path_batching(true);  // restore the process default
  const NodeId a = network.add_node();
  const NodeId b = network.add_node();
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.delay = sim::Duration::millis(5);
  cfg.queue_limit_packets = 1000;
  Link& ab = network.add_link(a, b, cfg);
  network.compute_static_routes();
  ab.set_loss_model(0.2, sim::Rng(42));
  ab.set_jitter(sim::Duration::millis(8), sim::Rng(43));

  RecordingAgent agent;
  network.node(b).attach_agent(/*flow=*/1, &agent);
  for (int i = 0; i < 400; ++i) {
    Packet pkt = make_packet(b, 500);
    pkt.tcp.seq = i;
    network.node(a).originate(std::move(pkt));
  }
  sched.run();
  network.node(b).detach_agent(1);
  return agent.arrivals;
}

TEST(LinkOpOrder, JitteredLossyDeliverySequenceMatchesUnbatched) {
  const auto unbatched = run_jittered_lossy(false);
  const auto batched = run_jittered_lossy(true);
  // Losses happened (the lottery ran) and jitter reordered arrivals
  // (the merge-sorted ring actually exercised), yet the sequences agree
  // exactly.
  ASSERT_FALSE(unbatched.empty());
  EXPECT_LT(unbatched.size(), 400u);
  bool reordered = false;
  for (std::size_t i = 1; i < unbatched.size(); ++i) {
    if (unbatched[i].first < unbatched[i - 1].first) reordered = true;
  }
  EXPECT_TRUE(reordered);
  EXPECT_EQ(batched, unbatched);
}

}  // namespace
}  // namespace tcppr::net
