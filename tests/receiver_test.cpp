// Unit tests for the TCP receiver: cumulative ACKs, duplicate ACKs, SACK
// block construction/merging, DSACK on duplicates, delayed ACKs, and
// reordering statistics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/sources.hpp"
#include "net/network.hpp"
#include "tcp/receiver.hpp"

namespace tcppr::tcp {
namespace {

class ReceiverFixture : public ::testing::Test {
 protected:
  explicit ReceiverFixture() { build({}); }

  void build(ReceiverConfig config) {
    receiver.reset();
    sink.reset();
    network = std::make_unique<net::Network>(sched);
    a = network->add_node();
    b = network->add_node();
    net::LinkConfig cfg;
    network->add_duplex_link(a, b, cfg);
    network->compute_static_routes();
    sink = std::make_unique<app::PacketSink>(*network, a, kFlow);
    receiver =
        std::make_unique<Receiver>(*network, b, a, kFlow, config);
    receiver->set_ack_tap([this](const net::Packet& ack) {
      acks.push_back(ack);
    });
  }

  void data(net::SeqNo seq) {
    net::Packet pkt;
    pkt.uid = network->allocate_uid();
    pkt.src = a;
    pkt.dst = b;
    pkt.size_bytes = 1040;
    pkt.type = net::PacketType::kTcpData;
    pkt.tcp.flow = kFlow;
    pkt.tcp.seq = seq;
    pkt.tcp.ts_value = sched.now().as_seconds();
    receiver->deliver(std::move(pkt));
  }

  static constexpr net::FlowId kFlow = 1;
  sim::Scheduler sched;
  std::unique_ptr<net::Network> network;
  net::NodeId a{}, b{};
  std::unique_ptr<app::PacketSink> sink;
  std::unique_ptr<Receiver> receiver;
  std::vector<net::Packet> acks;
};

TEST_F(ReceiverFixture, InOrderCumulativeAcks) {
  for (int i = 0; i < 5; ++i) data(i);
  ASSERT_EQ(acks.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(acks[i].tcp.ack, i + 1);
  EXPECT_EQ(receiver->rcv_next(), 5);
  EXPECT_TRUE(acks.back().tcp.sack.empty());
}

TEST_F(ReceiverFixture, HoleProducesDuplicateAcks) {
  data(0);
  data(2);
  data(3);
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(acks[1].tcp.ack, 1);  // duplicate cumulative ACK
  EXPECT_EQ(acks[2].tcp.ack, 1);
  EXPECT_EQ(receiver->ooo_buffered(), 2u);
}

TEST_F(ReceiverFixture, FillingHoleAdvancesPastBuffered) {
  data(0);
  data(2);
  data(3);
  data(1);  // fills the hole
  EXPECT_EQ(acks.back().tcp.ack, 4);
  EXPECT_EQ(receiver->ooo_buffered(), 0u);
}

TEST_F(ReceiverFixture, SackBlocksDescribeAboveWindow) {
  data(0);
  data(2);
  data(3);
  data(5);
  const auto& sack = acks.back().tcp.sack;
  ASSERT_EQ(sack.size(), 2u);
  // Most recent block first (RFC 2018): [5,6) then [2,4).
  EXPECT_EQ(sack[0].begin, 5);
  EXPECT_EQ(sack[0].end, 6);
  EXPECT_EQ(sack[1].begin, 2);
  EXPECT_EQ(sack[1].end, 4);
}

TEST_F(ReceiverFixture, SackBlocksMerge) {
  data(0);
  data(2);
  data(4);
  data(3);  // joins [2,3) and [4,5) into [2,5)
  const auto& sack = acks.back().tcp.sack;
  ASSERT_EQ(sack.size(), 1u);
  EXPECT_EQ(sack[0].begin, 2);
  EXPECT_EQ(sack[0].end, 5);
}

TEST_F(ReceiverFixture, AtMostThreeSackBlocks) {
  data(0);
  data(2);
  data(4);
  data(6);
  data(8);
  data(10);
  EXPECT_LE(acks.back().tcp.sack.size(), 3u);
}

TEST_F(ReceiverFixture, SackRetiredByCumulativeAdvance) {
  data(0);
  data(2);
  data(1);
  EXPECT_TRUE(acks.back().tcp.sack.empty());
  EXPECT_EQ(acks.back().tcp.ack, 3);
}

TEST_F(ReceiverFixture, DuplicateSegmentTriggersDsack) {
  data(0);
  data(1);
  data(1);  // duplicate
  ASSERT_TRUE(acks.back().tcp.dsack.has_value());
  EXPECT_EQ(acks.back().tcp.dsack->begin, 1);
  EXPECT_EQ(acks.back().tcp.dsack->end, 2);
  EXPECT_EQ(receiver->stats().duplicates, 1u);
}

TEST_F(ReceiverFixture, DuplicateAboveWindowAlsoDsacked) {
  data(0);
  data(5);
  data(5);
  ASSERT_TRUE(acks.back().tcp.dsack.has_value());
  EXPECT_EQ(acks.back().tcp.dsack->begin, 5);
}

TEST_F(ReceiverFixture, NoDsackWhenDisabled) {
  ReceiverConfig config;
  config.generate_dsack = false;
  build(config);
  data(0);
  data(0);
  EXPECT_FALSE(acks.back().tcp.dsack.has_value());
}

TEST_F(ReceiverFixture, NoSackWhenDisabled) {
  ReceiverConfig config;
  config.generate_sack = false;
  build(config);
  data(0);
  data(2);
  EXPECT_TRUE(acks.back().tcp.sack.empty());
}

TEST_F(ReceiverFixture, TimestampEcho) {
  sched.run_until(sim::TimePoint::from_seconds(1.25));
  data(0);
  EXPECT_DOUBLE_EQ(acks.back().tcp.ts_echo, 1.25);
}

TEST_F(ReceiverFixture, ReorderStatsTrackExtent) {
  data(0);
  data(4);  // extent 3 (expected 1, got 4)
  data(2);
  EXPECT_EQ(receiver->stats().out_of_order, 2u);
  EXPECT_EQ(receiver->stats().max_reorder_extent, 3);
}

TEST_F(ReceiverFixture, GoodputCountsInOrderBytesOnly) {
  data(0);
  data(5);
  EXPECT_EQ(receiver->stats().goodput_bytes, 1000u);
  data(1);
  EXPECT_EQ(receiver->stats().goodput_bytes, 2000u);
}

TEST_F(ReceiverFixture, DelayedAckEverySecondSegment) {
  ReceiverConfig config;
  config.delayed_ack = true;
  build(config);
  data(0);
  EXPECT_EQ(acks.size(), 0u);  // withheld
  data(1);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].tcp.ack, 2);
}

TEST_F(ReceiverFixture, DelayedAckTimesOut) {
  ReceiverConfig config;
  config.delayed_ack = true;
  build(config);
  data(0);
  EXPECT_EQ(acks.size(), 0u);
  sched.run_until(sched.now() + sim::Duration::millis(150));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].tcp.ack, 1);
}

TEST_F(ReceiverFixture, DelayedAckBypassedByOutOfOrder) {
  ReceiverConfig config;
  config.delayed_ack = true;
  build(config);
  data(0);
  data(2);  // out of order: must ACK immediately
  ASSERT_GE(acks.size(), 1u);
  EXPECT_EQ(acks.back().tcp.ack, 1);
}

TEST_F(ReceiverFixture, AcksAreRoutedToSender) {
  data(0);
  sched.run();
  EXPECT_EQ(sink->packets(), 1u);  // the ACK arrived at node a
}

TEST_F(ReceiverFixture, IgnoresStrayAcks) {
  net::Packet stray;
  stray.type = net::PacketType::kTcpAck;
  stray.tcp.flow = kFlow;
  receiver->deliver(std::move(stray));
  EXPECT_EQ(receiver->stats().data_packets_received, 0u);
}

}  // namespace
}  // namespace tcppr::tcp
