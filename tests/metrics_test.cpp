// Unit tests for the fairness metrics (Section 4 definitions).
#include <gtest/gtest.h>

#include "stats/flow_stats.hpp"
#include "stats/metrics.hpp"

namespace tcppr::stats {
namespace {

TEST(Metrics, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(variance({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1, 3}), 1.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Metrics, NormalizedThroughputAveragesToOne) {
  const auto norm = normalized_throughput({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(mean(norm), 1.0);
  EXPECT_DOUBLE_EQ(norm[0], 0.4);
  EXPECT_DOUBLE_EQ(norm[3], 1.6);
}

TEST(Metrics, NormalizedThroughputEqualSharesAllOne) {
  for (const double v : normalized_throughput({5, 5, 5})) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(Metrics, NormalizedThroughputZeroInput) {
  const auto norm = normalized_throughput({0, 0});
  EXPECT_DOUBLE_EQ(norm[0], 0.0);
}

TEST(Metrics, MeanOfSubset) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3, 4}, {0, 3}), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({1, 2}, {}), 0.0);
}

TEST(Metrics, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({5, 5, 5}), 0.0);
  // {1,3}: mean 2, std 1 -> CoV 0.5.
  EXPECT_DOUBLE_EQ(coefficient_of_variation({1, 3}), 0.5);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
}

TEST(Metrics, JainIndex) {
  EXPECT_DOUBLE_EQ(jain_index({1, 1, 1, 1}), 1.0);
  // One flow hogging everything among n flows -> 1/n.
  EXPECT_DOUBLE_EQ(jain_index({1, 0, 0, 0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_index({}), 0.0);
}

TEST(GaugeSampler, SamplesAtInterval) {
  sim::Scheduler sched;
  double value = 0;
  GaugeSampler sampler(sched, sim::Duration::seconds(1),
                       [&] { return value; });
  sched.schedule_at(sim::TimePoint::from_seconds(2.5), [&] { value = 10; });
  sampler.start();
  sched.run_until(sim::TimePoint::from_seconds(5.1));
  sampler.stop();
  ASSERT_GE(sampler.samples().size(), 5u);
  EXPECT_DOUBLE_EQ(sampler.samples()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(sampler.samples()[4].value, 10.0);
}

TEST(GaugeSampler, RateOverWindow) {
  sim::Scheduler sched;
  // Gauge = 100 * t: rate 100/s.
  GaugeSampler sampler(sched, sim::Duration::millis(100),
                       [&] { return 100.0 * sched.now().as_seconds(); });
  sampler.start();
  sched.run_until(sim::TimePoint::from_seconds(10));
  EXPECT_NEAR(sampler.rate_over(sim::TimePoint::from_seconds(2),
                                sim::TimePoint::from_seconds(8)),
              100.0, 1e-6);
}

TEST(GaugeSampler, RateWithoutSamplesIsZero) {
  sim::Scheduler sched;
  GaugeSampler sampler(sched, sim::Duration::seconds(1), [] { return 1.0; });
  EXPECT_DOUBLE_EQ(sampler.rate_over(sim::TimePoint::origin(),
                                     sim::TimePoint::from_seconds(1)),
                   0.0);
}

TEST(WindowCounter, Delta) {
  WindowCounter counter;
  counter.mark_start(100);
  EXPECT_DOUBLE_EQ(counter.delta(250), 150.0);
}

}  // namespace
}  // namespace tcppr::stats
