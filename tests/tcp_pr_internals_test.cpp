// Quantitative unit tests on TCP-PR's internals: the ewrtt estimator's
// decay law (Section 3.1's "alpha is a memory factor in units of RTTs"),
// mxrtt behaviour, jitter-link robustness, and configuration validation.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "core/tcp_pr.hpp"
#include "test_util.hpp"

namespace tcppr::core {
namespace {

using harness::TcpVariant;
using testutil::PathFixture;

TcpPrSender* add_pr(PathFixture& f, tcp::TcpConfig tc = {},
                    TcpPrConfig pr = {}) {
  return dynamic_cast<TcpPrSender*>(
      f.add_flow(TcpVariant::kTcpPr, 1, tc, pr));
}

TEST(Ewrtt, DecaysAtAlphaPerRttAfterSpike) {
  // Run on a clean path until ewrtt stabilizes, then observe the decay
  // over a known time span: ewrtt(t + k RTT) ~ alpha^k * spike while the
  // max stays below it.
  PathFixture f(10e6, sim::Duration::millis(20));
  tcp::TcpConfig tc;
  tc.max_cwnd = 20;  // fixed window -> fixed RTT, fixed ack rate
  TcpPrConfig pr;
  pr.alpha = 0.9;  // fast decay so the test is short
  auto* sender = add_pr(f, tc, pr);
  sender->start();
  f.run_for(10);
  const double base = sender->ewrtt_seconds();
  ASSERT_GT(base, 0.0);

  // Inject an RTT spike: raise the forward propagation delay briefly.
  f.fwd->set_prop_delay(sim::Duration::millis(200));
  f.sched.schedule_at(f.sched.now() + sim::Duration::millis(500), [&] {
    f.fwd->set_prop_delay(sim::Duration::millis(20));
  });
  f.run_for(0.7);
  const double spiked = sender->ewrtt_seconds();
  // Spike was absorbed; it must be visibly above the base RTT...
  EXPECT_GT(spiked, base + 0.1);
  // ...and with alpha = 0.9 it must decay back toward the base within a
  // couple of seconds (~45 RTTs: 0.9^45 ~ 0.9%), never dropping below it.
  f.run_for(0.4);
  const double mid = sender->ewrtt_seconds();
  EXPECT_LT(mid, spiked);  // decaying...
  EXPECT_GT(mid, base);    // ...but not instantly
  f.run_for(3);
  const double later = sender->ewrtt_seconds();
  EXPECT_NEAR(later, base, 0.005);  // fully decayed back to the max RTT
}

TEST(Ewrtt, MaxNeverBelowLatestSample) {
  PathFixture f;
  tcp::TcpConfig tc;
  tc.max_cwnd = 20;
  auto* sender = add_pr(f, tc);
  sender->start();
  f.run_for(5);
  // RTT on this fixture is ~22.9 ms (1 + 10 ms one-way, plus
  // serialization); the decaying max can never sit below one real RTT.
  EXPECT_GE(sender->ewrtt_seconds(), 0.0225);
}

TEST(Mxrtt, InitialTimeoutBeforeFirstSample) {
  PathFixture f;
  TcpPrConfig pr;
  pr.initial_timeout = sim::Duration::seconds(2.5);
  auto* sender = add_pr(f, {}, pr);
  EXPECT_DOUBLE_EQ(sender->mxrtt().as_seconds(), 2.5);
}

TEST(Mxrtt, ScalesWithBeta) {
  for (const double beta : {1.5, 3.0, 8.0}) {
    PathFixture f;
    tcp::TcpConfig tc;
    tc.max_cwnd = 20;
    TcpPrConfig pr;
    pr.beta = beta;
    auto* sender = add_pr(f, tc, pr);
    sender->start();
    f.run_for(5);
    EXPECT_NEAR(sender->mxrtt().as_seconds(),
                beta * sender->ewrtt_seconds(), 1e-9);
  }
}

TEST(Mxrtt, BackoffIsCappedAtMax) {
  PathFixture f;
  TcpPrConfig pr;
  pr.max_backoff = sim::Duration::seconds(8);
  auto* sender = add_pr(f, {}, pr);
  f.fwd->set_drop_filter([](const net::Packet&) { return true; });
  sender->start();
  f.run_for(120);
  ASSERT_TRUE(sender->in_backoff());
  EXPECT_LE(sender->mxrtt().as_seconds(), 8.0 + 1e-9);
}

TEST(JitterLink, CausesReorderingThatTcpPrIgnores) {
  PathFixture f(10e6, sim::Duration::millis(10));
  tcp::TcpConfig tc;
  tc.max_cwnd = 30;
  auto* sender = add_pr(f, tc);
  // +-0..20 ms of per-packet delivery jitter on a 10 ms link: heavy
  // in-path reordering, zero loss.
  f.fwd->set_jitter(sim::Duration::millis(20), sim::Rng(9));
  sender->start();
  f.run_for(15);
  EXPECT_GT(f.receiver()->stats().out_of_order, 500u);
  EXPECT_EQ(sender->stats().retransmissions, 0u);
  EXPECT_EQ(f.receiver()->stats().duplicates, 0u);
  EXPECT_GT(sender->stats().segments_acked, 5000);
}

TEST(JitterLink, SackRetransmitsSpuriouslyUnderSameJitter) {
  PathFixture f(10e6, sim::Duration::millis(10));
  tcp::TcpConfig tc;
  tc.max_cwnd = 30;
  auto* sender = f.add_flow(TcpVariant::kSack, 1, tc);
  f.fwd->set_jitter(sim::Duration::millis(20), sim::Rng(9));
  sender->start();
  f.run_for(15);
  EXPECT_GT(sender->stats().retransmissions, 10u);
  EXPECT_GT(f.receiver()->stats().duplicates, 10u);
}

TEST(Config, RejectsInvalidParameters) {
  PathFixture f;
  TcpPrConfig bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_DEATH(
      {
        core::TcpPrSender sender(*f.network, f.src, f.dst, 99,
                                 tcp::TcpConfig{}, bad_alpha);
      },
      "alpha");
  TcpPrConfig bad_beta;
  bad_beta.beta = 0.5;
  EXPECT_DEATH(
      {
        core::TcpPrSender sender(*f.network, f.src, f.dst, 99,
                                 tcp::TcpConfig{}, bad_beta);
      },
      "beta");
}

TEST(Observers, ExposeListSizes) {
  PathFixture f;
  tcp::TcpConfig tc;
  tc.max_cwnd = 10;
  auto* sender = add_pr(f, tc);
  sender->start();
  f.run_for(2);
  EXPECT_GT(sender->outstanding(), 0u);
  EXPECT_LE(sender->outstanding(), 10u);
  EXPECT_EQ(sender->memorize_size(), 0u);      // no losses
  EXPECT_EQ(sender->pending_retransmits(), 0u);
  EXPECT_EQ(sender->burst_drop_count(), 0);
}

TEST(ExtremeLoss, DropCountsDoNotLeakAcrossEpisodes) {
  // Regression for the drop-count lifecycle: the §3.2 reset forgets the
  // episode wholesale, so per-segment drop counts must not survive it.
  // Before the fix, a segment that lost two transmissions during an
  // episode kept its count across the reset and needed only one more
  // declared drop afterwards to spuriously re-enter extreme loss.
  PathFixture f;
  tcp::TcpConfig tc;
  tc.max_cwnd = 20;
  auto* sender = add_pr(f, tc);
  sender->start();
  f.run_for(3);  // warm up: estimator converged, window open

  // Victims picked on the fly: the next new segment `a` and its successor.
  // `a` loses three transmissions — the extreme-loss trigger. `a + 1`
  // loses four: two declared (and counted) inside the episode, the fourth
  // declared after the reset, where it must count as a fresh first drop.
  SeqNo victim = -1;
  std::map<SeqNo, int> tx_seen;
  f.fwd->set_drop_filter([&](const net::Packet& p) {
    if (p.type != net::PacketType::kTcpData) return false;
    if (victim < 0 && !p.tcp.is_retransmission) victim = p.tcp.seq;
    if (p.tcp.seq == victim) return tx_seen[p.tcp.seq]++ < 3;
    if (victim >= 0 && p.tcp.seq == victim + 1) {
      return tx_seen[p.tcp.seq]++ < 4;
    }
    return false;
  });
  f.run_for(12);
  f.fwd->set_drop_filter(nullptr);
  f.run_for(3);

  EXPECT_EQ(sender->stats().extreme_loss_events, 1u);
  EXPECT_FALSE(sender->in_backoff());
  EXPECT_GT(sender->stats().segments_acked, 3000);
}

TEST(DropTailBytes, ByteCapDropsIndependentlyOfPacketCap) {
  net::DropTailQueue q(1000, /*limit_bytes=*/2500);
  net::Packet big;
  big.size_bytes = 1000;
  EXPECT_TRUE(q.enqueue(net::Packet{big}));
  EXPECT_TRUE(q.enqueue(net::Packet{big}));
  EXPECT_FALSE(q.enqueue(net::Packet{big}));  // would exceed 2500 bytes
  net::Packet small;
  small.size_bytes = 400;
  EXPECT_TRUE(q.enqueue(std::move(small)));   // still fits
  EXPECT_EQ(q.length_bytes(), 2400u);
}

}  // namespace
}  // namespace tcppr::core
