// Tests for the many-flow scale workload (make_many_flows) and the
// O(flows) pending-event contract that the per-flow deadline-timer
// coalescing provides.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "harness/scenarios.hpp"
#include "validate/determinism.hpp"

namespace tcppr::harness {
namespace {

int count_variant(const Scenario& s, TcpVariant v) {
  return static_cast<int>(std::count(s.variants.begin(), s.variants.end(), v));
}

TEST(ManyFlows, DumbbellBuilderScalesWithFlowCount) {
  ManyFlowsConfig cfg;
  cfg.flows = 64;
  auto s = make_many_flows(cfg);
  ASSERT_EQ(s->senders.size(), 64u);
  ASSERT_EQ(s->receivers.size(), 64u);
  ASSERT_EQ(s->variants.size(), 64u);
  // pr_fraction = 0.5 interleaves the two variants evenly.
  EXPECT_EQ(count_variant(*s, TcpVariant::kTcpPr), 32);
  EXPECT_EQ(count_variant(*s, TcpVariant::kSack), 32);
  // Per-flow bottleneck share is constant: the bottleneck scales with N.
  ASSERT_FALSE(s->bottlenecks.empty());
  EXPECT_DOUBLE_EQ(s->bottlenecks.front()->bandwidth_bps(),
                   cfg.bottleneck_bw_per_flow_bps * 64);
}

TEST(ManyFlows, PrFractionControlsTheVariantMix) {
  ManyFlowsConfig cfg;
  cfg.flows = 40;
  cfg.pr_fraction = 0.25;
  auto s = make_many_flows(cfg);
  EXPECT_EQ(count_variant(*s, TcpVariant::kTcpPr), 10);
  EXPECT_EQ(count_variant(*s, TcpVariant::kSack), 30);
}

TEST(ManyFlows, RandomGraphBuilderCreatesRequestedFlows) {
  ManyFlowsConfig cfg;
  cfg.topology = ManyFlowsConfig::Topology::kRandomGraph;
  cfg.flows = 32;
  cfg.graph_nodes = 16;
  auto s = make_many_flows(cfg);
  ASSERT_EQ(s->senders.size(), 32u);
  ASSERT_EQ(s->receivers.size(), 32u);
  EXPECT_FALSE(s->bottlenecks.empty());
}

TEST(ManyFlows, ShortRunDeliversIdenticallyAcrossBackends) {
  const sim::SchedulerBackend backends[] = {
      sim::SchedulerBackend::kBinaryHeap,
      sim::SchedulerBackend::kCalendarQueue,
      sim::SchedulerBackend::kTimingWheel,
  };
  std::uint64_t hashes[3] = {};
  std::uint64_t delivered[3] = {};
  for (int i = 0; i < 3; ++i) {
    ManyFlowsConfig cfg;
    cfg.flows = 48;
    cfg.backend = backends[i];
    auto s = make_many_flows(cfg);
    validate::DeliveryHasher hasher;
    s->network.add_trace_sink(&hasher);
    s->sched.run_until(sim::TimePoint::from_seconds(3));
    hashes[i] = hasher.hash();
    delivered[i] = hasher.delivered();
  }
  EXPECT_GT(delivered[0], 0u);
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(delivered[0], delivered[2]);
}

TEST(ManyFlows, PendingEventPopulationIsLinearInFlows) {
  // The timer-coalescing contract at workload scale: with one armed
  // deadline timer per flow (instead of one stale queue entry per ACK),
  // the peak pending-event population stays a small constant per flow —
  // measured ~3 (armed timers plus in-flight packet arrivals plus
  // bottleneck serialization). A per-ACK stale-entry regression multiplies
  // this several-fold and breaks the 6-per-flow ceiling.
  for (const int flows : {64, 192}) {
    ManyFlowsConfig cfg;
    cfg.flows = flows;
    auto s = make_many_flows(cfg);
    std::size_t max_queued = 0;
    std::function<void()> probe = [&] {
      max_queued = std::max(max_queued, s->sched.queued_count());
      s->sched.schedule_in(sim::Duration::millis(20), [&] { probe(); });
    };
    s->sched.schedule_in(sim::Duration::millis(20), [&] { probe(); });
    s->sched.run_until(sim::TimePoint::from_seconds(5));
    EXPECT_LE(max_queued, static_cast<std::size_t>(6 * flows + 64))
        << "flows=" << flows;
    EXPECT_GT(max_queued, static_cast<std::size_t>(flows))
        << "flows=" << flows << " (probe saw implausibly few events)";
  }
}

}  // namespace
}  // namespace tcppr::harness
