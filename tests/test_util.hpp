// Shared fixtures: a two-host network with one router hop, a TCP flow of a
// chosen variant, and helpers to run the simulation for a while.
#pragma once

#include <memory>

#include "core/tcp_pr.hpp"
#include "harness/scenarios.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender_base.hpp"

namespace tcppr::testutil {

// src --(access)-- router --(bottleneck)-- dst, all owned together.
struct PathFixture {
  explicit PathFixture(double bottleneck_bps = 10e6,
                       sim::Duration delay = sim::Duration::millis(10),
                       std::size_t queue_limit = 100) {
    network = std::make_unique<net::Network>(sched);
    src = network->add_node();
    router = network->add_node();
    dst = network->add_node();
    net::LinkConfig access;
    access.bandwidth_bps = 1e9;
    access.delay = sim::Duration::millis(1);
    access.queue_limit_packets = 10000;
    network->add_duplex_link(src, router, access);
    net::LinkConfig bn;
    bn.bandwidth_bps = bottleneck_bps;
    bn.delay = delay;
    bn.queue_limit_packets = queue_limit;
    auto [fwd_link, rev_link] = network->add_duplex_link(router, dst, bn);
    fwd = fwd_link;
    rev = rev_link;
    network->compute_static_routes();
  }

  // Creates receiver + sender for the variant; sender not yet started.
  tcp::SenderBase* add_flow(harness::TcpVariant variant, net::FlowId flow,
                            tcp::TcpConfig tcp_config = {},
                            core::TcpPrConfig pr_config = {}) {
    tcp::ReceiverConfig rc;
    rc.segment_bytes = tcp_config.segment_bytes;
    receivers.push_back(std::make_unique<tcp::Receiver>(*network, dst, src,
                                                        flow, rc));
    senders.push_back(harness::make_sender(variant, *network, src, dst, flow,
                                           tcp_config, pr_config));
    return senders.back().get();
  }

  tcp::Receiver* receiver(std::size_t i = 0) { return receivers[i].get(); }

  void run_for(double seconds) {
    sched.run_until(sched.now() + sim::Duration::seconds(seconds));
  }

  sim::Scheduler sched;
  std::unique_ptr<net::Network> network;
  net::NodeId src{}, router{}, dst{};
  net::Link* fwd = nullptr;  // router -> dst (bottleneck, data direction)
  net::Link* rev = nullptr;  // dst -> router (ACK direction)
  std::vector<std::unique_ptr<tcp::Receiver>> receivers;
  std::vector<std::unique_ptr<tcp::SenderBase>> senders;
};

}  // namespace tcppr::testutil
