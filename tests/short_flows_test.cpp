// Tests for the short-flow workload generator and flow-completion-time
// measurements under reordering.
#include <gtest/gtest.h>

#include "harness/short_flows.hpp"
#include "test_util.hpp"

namespace tcppr::harness {
namespace {

TEST(ShortFlows, SpawnsAndCompletesFlows) {
  testutil::PathFixture f;
  ShortFlowPool::Config config;
  config.mean_interarrival_s = 0.2;
  config.min_segments = 5;
  config.max_segments = 20;
  config.seed = 3;
  ShortFlowPool pool(*f.network, f.src, f.dst, config);
  pool.start();
  f.run_for(30);
  pool.stop();
  EXPECT_GT(pool.flows_started(), 100u);
  EXPECT_GT(pool.flows_completed(), 90u);
  EXPECT_EQ(pool.completion_times().size(), pool.flows_completed());
  EXPECT_GT(pool.mean_completion_time(), 0.0);
  EXPECT_LT(pool.mean_completion_time(), 5.0);
}

TEST(ShortFlows, RespectsConcurrencyCap) {
  testutil::PathFixture f(1e5);  // slow bottleneck: flows pile up
  ShortFlowPool::Config config;
  config.mean_interarrival_s = 0.05;
  config.max_concurrent = 10;
  ShortFlowPool pool(*f.network, f.src, f.dst, config);
  pool.start();
  for (int i = 1; i <= 20; ++i) {
    f.run_for(1);
    EXPECT_LE(pool.flows_active(), 10u);
  }
  pool.stop();
}

TEST(ShortFlows, DeterministicForSeed) {
  const auto run = [](std::uint64_t seed) {
    testutil::PathFixture f;
    ShortFlowPool::Config config;
    config.seed = seed;
    ShortFlowPool pool(*f.network, f.src, f.dst, config);
    pool.start();
    f.run_for(20);
    return pool.completion_times();  // exact timings, not just counts
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(ShortFlows, ReorderingInflatesSackMiceButNotPrMice) {
  // Flow completion time on the multipath mesh: SACK mice suffer from
  // spurious retransmissions and RTO stalls; TCP-PR mice do not.
  const auto mean_fct = [](TcpVariant v) {
    MultipathConfig mc;
    mc.variant = v;  // the bulk flow is irrelevant; do not start it
    auto scenario = make_multipath(mc);
    ShortFlowPool::Config config;
    config.variant = v;
    config.mean_interarrival_s = 0.4;
    config.min_segments = 10;
    config.max_segments = 30;
    config.seed = 5;
    ShortFlowPool pool(scenario->network, scenario->src_host,
                       scenario->dst_host, config);
    pool.start();
    scenario->sched.run_until(sim::TimePoint::from_seconds(60));
    pool.stop();
    EXPECT_GT(pool.flows_completed(), 50u);
    return pool.mean_completion_time();
  };
  const double pr = mean_fct(TcpVariant::kTcpPr);
  const double sack = mean_fct(TcpVariant::kSack);
  EXPECT_LT(pr, sack);
}

TEST(ShortFlows, BackgroundMiceCoexistWithBulkFlow) {
  testutil::PathFixture f;
  auto* bulk = f.add_flow(TcpVariant::kTcpPr, 1);
  ShortFlowPool::Config config;
  config.mean_interarrival_s = 0.5;
  ShortFlowPool pool(*f.network, f.src, f.dst, config);
  bulk->start();
  pool.start();
  f.run_for(30);
  pool.stop();
  EXPECT_GT(bulk->stats().segments_acked, 10000);
  EXPECT_GT(pool.flows_completed(), 30u);
}

}  // namespace
}  // namespace tcppr::harness
