// Tests for the short-flow workload generator and flow-completion-time
// measurements under reordering.
#include <gtest/gtest.h>

#include "harness/short_flows.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace tcppr::harness {
namespace {

TEST(ShortFlows, SpawnsAndCompletesFlows) {
  testutil::PathFixture f;
  ShortFlowPool::Config config;
  config.mean_interarrival_s = 0.2;
  config.min_segments = 5;
  config.max_segments = 20;
  config.seed = 3;
  ShortFlowPool pool(*f.network, f.src, f.dst, config);
  pool.start();
  f.run_for(30);
  pool.stop();
  EXPECT_GT(pool.flows_started(), 100u);
  EXPECT_GT(pool.flows_completed(), 90u);
  EXPECT_EQ(pool.completion_times().size(), pool.flows_completed());
  EXPECT_GT(pool.mean_completion_time(), 0.0);
  EXPECT_LT(pool.mean_completion_time(), 5.0);
}

TEST(ShortFlows, RespectsConcurrencyCap) {
  testutil::PathFixture f(1e5);  // slow bottleneck: flows pile up
  ShortFlowPool::Config config;
  config.mean_interarrival_s = 0.05;
  config.max_concurrent = 10;
  ShortFlowPool pool(*f.network, f.src, f.dst, config);
  pool.start();
  for (int i = 1; i <= 20; ++i) {
    f.run_for(1);
    EXPECT_LE(pool.flows_active(), 10u);
  }
  pool.stop();
}

TEST(ShortFlows, DeterministicForSeed) {
  const auto run = [](std::uint64_t seed) {
    testutil::PathFixture f;
    ShortFlowPool::Config config;
    config.seed = seed;
    ShortFlowPool pool(*f.network, f.src, f.dst, config);
    pool.start();
    f.run_for(20);
    return pool.completion_times();  // exact timings, not just counts
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(ShortFlows, ReorderingInflatesSackMiceButNotPrMice) {
  // Flow completion time on the multipath mesh: SACK mice suffer from
  // spurious retransmissions and RTO stalls; TCP-PR mice do not.
  const auto mean_fct = [](TcpVariant v) {
    MultipathConfig mc;
    mc.variant = v;  // the bulk flow is irrelevant; do not start it
    auto scenario = make_multipath(mc);
    ShortFlowPool::Config config;
    config.variant = v;
    config.mean_interarrival_s = 0.4;
    config.min_segments = 10;
    config.max_segments = 30;
    config.seed = 5;
    ShortFlowPool pool(scenario->network, scenario->src_host,
                       scenario->dst_host, config);
    pool.start();
    scenario->sched.run_until(sim::TimePoint::from_seconds(60));
    pool.stop();
    EXPECT_GT(pool.flows_completed(), 50u);
    return pool.mean_completion_time();
  };
  const double pr = mean_fct(TcpVariant::kTcpPr);
  const double sack = mean_fct(TcpVariant::kSack);
  EXPECT_LT(pr, sack);
}

// Stops the scheduler on the delivery event that completes a transfer:
// the sender's completion callback runs inside that same event and
// schedules its zero-delay finish, so when run_until returns the finish
// is still queued — the exact window the teardown bug lived in.
class StopOnFinalAck final : public trace::TraceSink {
 public:
  StopOnFinalAck(sim::Scheduler& sched, net::SeqNo total)
      : sched_(sched), total_(total) {}
  void record(const trace::Record& r) override {
    if (r.type == trace::EventType::kDeliver && r.is_ack &&
        r.seq >= total_) {
      triggered_ = true;
      sched_.stop();
    }
  }
  bool triggered() const { return triggered_; }

 private:
  sim::Scheduler& sched_;
  net::SeqNo total_;
  bool triggered_ = false;
};

TEST(ShortFlows, DestroyingPoolWithDeferredTeardownPendingIsSafe) {
  // Regression: flow completion defers its per-flow teardown through a
  // zero-delay scheduler event that used to capture the raw pool pointer.
  // A pool destroyed while that event is queued had the scheduler fire
  // into freed memory; the liveness sentinel makes the event a no-op.
  testutil::PathFixture f;
  StopOnFinalAck stopper(f.sched, 5);
  f.network->add_trace_sink(&stopper);
  {
    ShortFlowPool::Config config;
    config.mean_interarrival_s = 0.05;
    config.min_segments = 5;  // fixed size: ack == 5 completes any flow
    config.max_segments = 5;
    ShortFlowPool pool(*f.network, f.src, f.dst, config);
    pool.start();
    f.run_for(30);  // returns early, at the first completion
    ASSERT_TRUE(stopper.triggered());
    EXPECT_EQ(pool.flows_completed(), 0u);  // finish still queued
  }
  // The stranded finish event fires against the destroyed pool.
  f.run_for(1);
}

TEST(ShortFlows, BackgroundMiceCoexistWithBulkFlow) {
  testutil::PathFixture f;
  auto* bulk = f.add_flow(TcpVariant::kTcpPr, 1);
  ShortFlowPool::Config config;
  config.mean_interarrival_s = 0.5;
  ShortFlowPool pool(*f.network, f.src, f.dst, config);
  bulk->start();
  pool.start();
  f.run_for(30);
  pool.stop();
  EXPECT_GT(bulk->stats().segments_acked, 10000);
  EXPECT_GT(pool.flows_completed(), 30u);
}

}  // namespace
}  // namespace tcppr::harness
