// Tests for the flow-state observability layer (src/obs): registry
// semantics, sink output formats (golden CSV), the no-sink zero-cost
// discipline, and the end-to-end mxrtt-envelope series on a live flow.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <string>

#include "core/tcp_pr.hpp"
#include "net/link_flapper.hpp"
#include "net/network.hpp"
#include "obs/probe.hpp"
#include "obs/registry.hpp"
#include "obs/series.hpp"
#include "test_util.hpp"

// Program-wide operator new replacement, counting every heap allocation so
// the zero-allocation test below can assert the disabled observability
// path never touches the allocator. Replacements must have external
// linkage; the counter itself stays internal.
static std::atomic<std::uint64_t> g_heap_allocations{0};

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tcppr::obs {
namespace {

using sim::TimePoint;

TEST(MetricRegistry, InternsOnceAndTracksLastAndTotal) {
  MetricRegistry reg;
  const MetricId cwnd = reg.intern("cwnd", MetricKind::kGauge);
  const MetricId drops = reg.intern("drops", MetricKind::kCounter);
  EXPECT_EQ(reg.intern("cwnd", MetricKind::kGauge), cwnd);
  EXPECT_EQ(reg.metric_count(), 2u);
  EXPECT_EQ(reg.name(cwnd), "cwnd");
  EXPECT_EQ(reg.kind(drops), MetricKind::kCounter);

  MemorySeriesSink sink;
  reg.add_sink(&sink);
  reg.set(TimePoint::from_seconds(1), cwnd, 1, 4.0);
  reg.set(TimePoint::from_seconds(2), cwnd, 1, 8.0);
  reg.add(TimePoint::from_seconds(2), drops, 1);
  reg.add(TimePoint::from_seconds(3), drops, 1);
  reg.add(TimePoint::from_seconds(3), drops, 2);  // separate flow label
  EXPECT_EQ(reg.last(cwnd, 1), 8.0);
  EXPECT_EQ(reg.total(drops, 1), 2.0);
  EXPECT_EQ(reg.total(drops, 2), 1.0);
  EXPECT_EQ(reg.samples_recorded(), 5u);
  // Counters record their running total, per flow label.
  const auto drop_series = sink.series("drops", 1);
  ASSERT_EQ(drop_series.size(), 2u);
  EXPECT_EQ(drop_series[0].second, 1.0);
  EXPECT_EQ(drop_series[1].second, 2.0);
}

TEST(CsvSeriesSink, GoldenFile) {
  // Hand-driven samples with exactly representable times and values: the
  // emitted bytes are part of the sink's contract (downstream plotting
  // scripts parse them), so compare against the literal expected file.
  const std::string path = "obs_csv_golden_test.csv";
  MetricRegistry reg;
  const MetricId cwnd = reg.intern("cwnd", MetricKind::kGauge);
  const MetricId drops = reg.intern("drops", MetricKind::kCounter);
  {
    CsvSeriesSink sink(path);
    ASSERT_TRUE(sink.ok());
    reg.add_sink(&sink);
    reg.set(TimePoint::from_seconds(0), cwnd, 1, 1.0);
    reg.set(TimePoint::from_seconds(0.1), cwnd, 1, 2.5);
    reg.add(TimePoint::from_seconds(0.25), drops, 2);
    reg.set(TimePoint::from_seconds(1.0 / 3), cwnd, 2, 1e-9);
    reg.add(TimePoint::from_seconds(0.5), drops, 2);
    sink.flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[256];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents,
            "time,metric,flow,value\n"
            "0.000000000,cwnd,1,1\n"
            "0.100000000,cwnd,1,2.5\n"
            "0.250000000,drops,2,1\n"
            "0.333333333,cwnd,2,1e-09\n"
            "0.500000000,drops,2,2\n");
}

TEST(MetricRegistry, UnattachedRecordsNothingAndAllocatesNothing) {
  MetricRegistry reg;
  // Interning (including the standard flow metrics) allocates; do all of
  // it before taking the allocation snapshot, as real endpoints do at
  // set_metric_registry time.
  const FlowMetrics m = reg.flow_metrics();
  FlowProbe probe(reg, /*flow=*/1);
  ASSERT_FALSE(reg.active());
  ASSERT_FALSE(static_cast<bool>(probe));

  const std::uint64_t before = g_heap_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    const TimePoint t = TimePoint::from_seconds(0.001 * i);
    // The guarded call-site pattern every endpoint uses...
    if (probe) probe.cwnd(t, 42.0);
    if (probe) probe.drop_declared(t);
    // ...and the raw registry path a direct caller would hit.
    reg.set(t, m.cwnd, 1, 42.0);
    reg.add(t, m.drops_declared, 1);
  }
  EXPECT_EQ(g_heap_allocations.load(), before);
  EXPECT_EQ(reg.samples_recorded(), 0u);
  EXPECT_EQ(reg.last(m.cwnd, 1), std::nullopt);
  EXPECT_EQ(reg.total(m.drops_declared, 1), 0.0);
}

TEST(Series, MxrttEnvelopeTracksRttSpikeOnLiveFlow) {
  // End-to-end: a TCP-PR flow instrumented through set_metric_registry
  // plus a QueueProbe on the bottleneck. The mxrtt series must hold the
  // beta * ewrtt envelope before the spike, absorb an injected RTT spike,
  // and decay back afterwards (eq. 1 / Section 3.1).
  testutil::PathFixture f(10e6, sim::Duration::millis(20));
  tcp::TcpConfig tc;
  tc.max_cwnd = 20;
  core::TcpPrConfig pr;
  pr.alpha = 0.9;  // fast decay keeps the test short
  auto* sender = f.add_flow(harness::TcpVariant::kTcpPr, 1, tc, pr);

  MetricRegistry reg;
  MemorySeriesSink sink;
  reg.add_sink(&sink);
  sender->set_metric_registry(reg);
  f.receiver()->set_metric_registry(reg);
  QueueProbe queue_probe(f.sched, reg, *f.fwd, sim::Duration::millis(100));
  queue_probe.start();

  sender->start();
  f.run_for(10);
  const auto pre_ew = sink.series("ewrtt", 1);
  ASSERT_FALSE(pre_ew.empty());
  const double base = pre_ew.back().second;
  ASSERT_GT(base, 0.0);

  // RTT spike: +180 ms of forward propagation delay for half a second.
  f.fwd->set_prop_delay(sim::Duration::millis(200));
  f.sched.schedule_at(f.sched.now() + sim::Duration::millis(500), [&] {
    f.fwd->set_prop_delay(sim::Duration::millis(20));
  });
  f.run_for(5);

  const auto ew = sink.series("ewrtt", 1);
  const auto mx = sink.series("mxrtt", 1);
  ASSERT_EQ(ew.size(), mx.size());  // emitted pairwise per ACK
  ASSERT_GT(ew.size(), 100u);

  double peak_ew = 0;
  for (std::size_t i = 0; i < ew.size(); ++i) {
    // Envelope: mxrtt >= beta * ewrtt always (the backoff override only
    // raises it above the beta envelope, never below).
    EXPECT_GE(mx[i].second + 1e-9, 3.0 * ew[i].second);
    // Before the spike there is no backoff: exactly beta * ewrtt.
    if (ew[i].first < 9.9) {
      EXPECT_NEAR(mx[i].second, 3.0 * ew[i].second, 1e-9);
    }
    if (ew[i].first > 10.0) peak_ew = std::max(peak_ew, ew[i].second);
  }
  EXPECT_GT(peak_ew, base + 0.1);            // the spike was absorbed...
  EXPECT_NEAR(ew.back().second, base, 0.02);  // ...and decayed back

  // The queue probe sampled the bottleneck throughout: one sample per
  // 100 ms for occupancy, and a monotone dequeued-bytes counter that ends
  // positive (the flow moved data through this queue).
  const auto pkts = sink.series("queue.pkts[1->2]");
  EXPECT_GT(pkts.size(), 100u);
  const auto bytes_out = sink.series("queue.bytes_dequeued[1->2]");
  ASSERT_GT(bytes_out.size(), 100u);
  for (std::size_t i = 1; i < bytes_out.size(); ++i) {
    EXPECT_GE(bytes_out[i].second, bytes_out[i - 1].second);
  }
  EXPECT_GT(bytes_out.back().second, 1e6);

  // The receiver side reported its in-order point as a gauge.
  const auto rcv = sink.series("rcv_next", 1);
  ASSERT_FALSE(rcv.empty());
  EXPECT_GT(rcv.back().second, 1000.0);
}

TEST(ObsExport, FlapperTransitionsDownTimeAndLossDrops) {
  // LinkFlapper outage accounting and the link's loss-model drops are
  // exported as metrics: drive traffic over a flapping, lossy link and
  // read both back through a series sink.
  sim::Scheduler sched;
  net::Network network(sched);
  const auto a = network.add_node();
  const auto b = network.add_node();
  network.add_duplex_link(a, b, {});
  network.compute_static_routes();
  net::Link* ab = network.find_link(a, b);
  ab->set_loss_model(0.5, sim::Rng(7));

  MetricRegistry reg;
  MemorySeriesSink sink;
  reg.add_sink(&sink);

  net::LinkFlapper::Config fc;
  fc.mean_up = sim::Duration::millis(50);
  fc.mean_down = sim::Duration::millis(20);
  fc.seed = 3;
  net::LinkFlapper flapper(sched, {ab}, fc);
  flapper.set_metric_registry(&reg, "ab");
  QueueProbe probe(sched, reg, *ab, sim::Duration::millis(10), "ab");
  probe.start();
  flapper.start();

  for (int i = 0; i < 200; ++i) {
    sched.schedule_at(sim::TimePoint::from_seconds(0.005 * i), [&network, a, b] {
      net::Packet p;
      p.dst = b;
      p.size_bytes = 1000;
      p.tcp.flow = 1;
      network.node(a).originate(std::move(p));
    });
  }
  sched.run_until(sim::TimePoint::from_seconds(1.0));
  flapper.stop();
  probe.stop();
  sched.run();

  EXPECT_GT(flapper.transitions(), 0u);
  EXPECT_GT(flapper.down_time(), sim::Duration::zero());

  const auto transitions = sink.series("flap.transitions[ab]");
  ASSERT_FALSE(transitions.empty());
  EXPECT_EQ(transitions.back().second,
            static_cast<double>(flapper.transitions()));
  const auto down_time = sink.series("flap.down_time_s[ab]");
  ASSERT_FALSE(down_time.empty());
  EXPECT_DOUBLE_EQ(down_time.back().second, flapper.down_time().as_seconds());

  ASSERT_GT(ab->stats().loss_model_lost, 0u);
  const auto loss = sink.series("link.loss_drops[ab]");
  ASSERT_FALSE(loss.empty());
  EXPECT_EQ(loss.back().second,
            static_cast<double>(ab->stats().loss_model_lost));
}

}  // namespace
}  // namespace tcppr::obs
