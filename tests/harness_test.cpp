// Tests for the scenario builders and the experiment runner: topology
// wiring, variant naming, measurement-window arithmetic, and the summary
// metrics the figures are built from.
#include <gtest/gtest.h>

#include <cstring>

#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"

namespace tcppr::harness {
namespace {

TEST(VariantNames, RoundTrip) {
  for (const TcpVariant v :
       {TcpVariant::kTcpPr, TcpVariant::kSack, TcpVariant::kReno,
        TcpVariant::kNewReno, TcpVariant::kTdFr, TcpVariant::kDsackNm,
        TcpVariant::kIncByOne, TcpVariant::kIncByN, TcpVariant::kEwma,
        TcpVariant::kEifel}) {
    EXPECT_GT(std::strlen(to_string(v)), 0u);
  }
}

TEST(MakeSender, AlgorithmNameMatchesVariant) {
  sim::Scheduler sched;
  net::Network network(sched);
  const auto a = network.add_node();
  const auto b = network.add_node();
  network.add_duplex_link(a, b, {});
  network.compute_static_routes();
  const auto check = [&](TcpVariant v, const char* name, net::FlowId flow) {
    const auto sender =
        make_sender(v, network, a, b, flow, tcp::TcpConfig{}, core::TcpPrConfig{});
    EXPECT_STREQ(sender->algorithm(), name);
  };
  check(TcpVariant::kTcpPr, "tcp-pr", 1);
  check(TcpVariant::kSack, "sack", 2);
  check(TcpVariant::kReno, "reno", 3);
  check(TcpVariant::kNewReno, "newreno", 4);
  check(TcpVariant::kTdFr, "td-fr", 5);
  check(TcpVariant::kDsackNm, "dsack-nm", 6);
  check(TcpVariant::kIncByOne, "inc-by-1", 7);
  check(TcpVariant::kIncByN, "inc-by-n", 8);
  check(TcpVariant::kEwma, "ewma", 9);
  check(TcpVariant::kEifel, "eifel", 10);
}

TEST(Dumbbell, BuildsRequestedFlows) {
  DumbbellConfig config;
  config.pr_flows = 3;
  config.sack_flows = 2;
  auto scenario = make_dumbbell(config);
  EXPECT_EQ(scenario->senders.size(), 5u);
  EXPECT_EQ(scenario->receivers.size(), 5u);
  int pr = 0;
  for (const TcpVariant v : scenario->variants) {
    if (v == TcpVariant::kTcpPr) ++pr;
  }
  EXPECT_EQ(pr, 3);
  ASSERT_EQ(scenario->bottlenecks.size(), 1u);
}

TEST(Dumbbell, FlowsActuallyTransferData) {
  DumbbellConfig config;
  config.pr_flows = 1;
  config.sack_flows = 1;
  auto scenario = make_dumbbell(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(10));
  for (const auto& sender : scenario->senders) {
    EXPECT_GT(sender->stats().segments_acked, 100);
  }
}

TEST(ParkingLot, BuildsCrossTraffic) {
  ParkingLotConfig config;
  config.pr_flows = 1;
  config.sack_flows = 1;
  auto scenario = make_parking_lot(config);
  EXPECT_EQ(scenario->senders.size(), 2u);
  EXPECT_EQ(scenario->cross_senders.size(), 6u);
  EXPECT_EQ(scenario->bottlenecks.size(), 3u);
}

TEST(ParkingLot, CrossTrafficMovesThroughChain) {
  ParkingLotConfig config;
  config.pr_flows = 1;
  config.sack_flows = 0;
  auto scenario = make_parking_lot(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(15));
  for (const auto& cross : scenario->cross_senders) {
    EXPECT_GT(cross->stats().segments_acked, 50);
  }
  // Main flow competes with cross traffic but still progresses.
  EXPECT_GT(scenario->senders[0]->stats().segments_acked, 500);
}

TEST(ParkingLot, NoCrossTrafficOption) {
  ParkingLotConfig config;
  config.with_cross_traffic = false;
  auto scenario = make_parking_lot(config);
  EXPECT_TRUE(scenario->cross_senders.empty());
}

TEST(Multipath, PathCountMatchesConfig) {
  MultipathConfig config;
  config.path_count = 3;
  auto scenario = make_multipath(config);
  // Nodes: src + dst + 1+2+3 relays = 8.
  EXPECT_EQ(scenario->network.node_count(), 8);
  EXPECT_EQ(scenario->senders.size(), 1u);
}

TEST(Multipath, Epsilon500UsesShortestPathOnly) {
  MultipathConfig config;
  config.epsilon = 500;
  auto scenario = make_multipath(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(5));
  auto* policy = dynamic_cast<routing::MultipathSelector*>(
      scenario->policies[0].get());
  ASSERT_NE(policy, nullptr);
  const auto& picks = policy->picks();
  for (std::size_t i = 1; i < picks.size(); ++i) {
    EXPECT_EQ(picks[i], 0u) << "path " << i;
  }
  EXPECT_GT(picks[0], 100u);
}

TEST(Multipath, EpsilonZeroSpreadsAcrossAllPaths) {
  MultipathConfig config;
  config.epsilon = 0;
  auto scenario = make_multipath(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(10));
  auto* policy = dynamic_cast<routing::MultipathSelector*>(
      scenario->policies[0].get());
  const auto& picks = policy->picks();
  for (std::size_t i = 0; i < picks.size(); ++i) {
    EXPECT_GT(picks[i], 100u) << "path " << i;
  }
}

TEST(RunScenario, MeasuresTrailingWindowOnly) {
  DumbbellConfig config;
  config.pr_flows = 1;
  config.sack_flows = 1;
  auto scenario = make_dumbbell(config);
  MeasurementWindow window;
  window.total = sim::Duration::seconds(20);
  window.measured = sim::Duration::seconds(10);
  const RunResult result = run_scenario(*scenario, window);
  EXPECT_EQ(result.flows.size(), 2u);
  EXPECT_DOUBLE_EQ(result.measure_seconds, 10.0);
  for (const auto& flow : result.flows) {
    EXPECT_GT(flow.throughput_bps, 0.0);
    // Two flows on a 15 Mbps bottleneck: each well below the capacity.
    EXPECT_LT(flow.throughput_bps, 15e6);
  }
  // The batched engine coalesces the per-packet hot path into carrier
  // events, so the count sits far below the per-packet total — but a 20 s
  // two-flow run still fires a healthy number of them.
  EXPECT_GT(result.events, 100u);
}

TEST(RunScenario, NormalizedMetricsConsistent) {
  DumbbellConfig config;
  config.pr_flows = 2;
  config.sack_flows = 2;
  auto scenario = make_dumbbell(config);
  MeasurementWindow window;
  window.total = sim::Duration::seconds(30);
  window.measured = sim::Duration::seconds(15);
  const RunResult result = run_scenario(*scenario, window);
  const double pr = result.mean_normalized(TcpVariant::kTcpPr);
  const double sack = result.mean_normalized(TcpVariant::kSack);
  // Weighted mean of the two protocol means is exactly 1.
  EXPECT_NEAR((pr * 2 + sack * 2) / 4.0, 1.0, 1e-9);
  EXPECT_EQ(result.count(TcpVariant::kTcpPr), 2);
  EXPECT_EQ(result.count(TcpVariant::kSack), 2);
  EXPECT_GE(result.cov(TcpVariant::kTcpPr), 0.0);
}

TEST(RunMultipathCell, ReturnsPopulatedCell) {
  MultipathConfig config;
  config.variant = TcpVariant::kTcpPr;
  config.epsilon = 0;
  MeasurementWindow window;
  window.total = sim::Duration::seconds(15);
  window.measured = sim::Duration::seconds(10);
  const MultipathCell cell = run_multipath_cell(config, window);
  EXPECT_EQ(cell.variant, TcpVariant::kTcpPr);
  // With 4 paths of 10 Mbps each under uniform spraying, goodput must
  // exceed what any single path could carry.
  EXPECT_GT(cell.goodput_bps, 11e6);
}

TEST(Dumbbell, SameSeedReproducesExactly) {
  const auto run = [] {
    DumbbellConfig config;
    config.pr_flows = 2;
    config.sack_flows = 2;
    config.seed = 77;
    auto scenario = make_dumbbell(config);
    MeasurementWindow window;
    window.total = sim::Duration::seconds(15);
    window.measured = sim::Duration::seconds(5);
    return run_scenario(*scenario, window);
  };
  const RunResult a = run();
  const RunResult b = run();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].throughput_bps, b.flows[i].throughput_bps);
  }
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace tcppr::harness
