// Tests for TCP-PR itself: the Newton approximation of alpha^(1/cwnd), the
// decaying-max ewrtt estimator, Table 1's window dynamics, memorize-list
// burst handling, the Section 3.2 extreme-loss backoff, and the headline
// property — immunity to persistent reordering of data and ACKs.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "core/tcp_pr.hpp"
#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "test_util.hpp"

namespace tcppr::core {
namespace {

using harness::TcpVariant;
using testutil::PathFixture;

void drop_first_tx_of(net::Link* link, std::set<net::SeqNo> targets) {
  auto counts = std::make_shared<std::map<net::SeqNo, int>>();
  link->set_drop_filter([counts, targets](const net::Packet& pkt) {
    if (pkt.type != net::PacketType::kTcpData) return false;
    if (!targets.contains(pkt.tcp.seq)) return false;
    return ++(*counts)[pkt.tcp.seq] == 1;
  });
}

TcpPrSender* add_pr(PathFixture& f, tcp::TcpConfig tcp_config = {},
                    TcpPrConfig pr_config = {}) {
  auto* sender = dynamic_cast<TcpPrSender*>(
      f.add_flow(TcpVariant::kTcpPr, 1, tcp_config, pr_config));
  EXPECT_NE(sender, nullptr);
  return sender;
}

// ---- Newton approximation (footnote 5) ---------------------------------

TEST(Newton, ExactForCwndOne) {
  EXPECT_DOUBLE_EQ(TcpPrSender::newton_alpha_root(0.995, 1.0, 2), 0.995);
  EXPECT_DOUBLE_EQ(TcpPrSender::newton_alpha_root(0.5, 0.5, 2), 0.5);
}

TEST(Newton, TwoIterationsCloseToExact) {
  for (const double alpha : {0.9, 0.95, 0.99, 0.995, 0.9995}) {
    for (const double cwnd : {2.0, 5.0, 17.0, 64.0, 300.0}) {
      const double exact = std::pow(alpha, 1.0 / cwnd);
      const double approx = TcpPrSender::newton_alpha_root(alpha, cwnd, 2);
      EXPECT_NEAR(approx, exact, 1e-4)
          << "alpha=" << alpha << " cwnd=" << cwnd;
    }
  }
}

TEST(Newton, ConvergesMonotonicallyWithIterations) {
  const double alpha = 0.995;
  const double cwnd = 10;
  const double exact = std::pow(alpha, 1.0 / cwnd);
  double prev_err = 1;
  for (int n = 1; n <= 4; ++n) {
    const double err =
        std::abs(TcpPrSender::newton_alpha_root(alpha, cwnd, n) - exact);
    EXPECT_LE(err, prev_err + 1e-15);
    prev_err = err;
  }
}

TEST(Newton, PerRttDecayIndependentOfCwnd) {
  // (alpha^(1/cwnd))^cwnd == alpha: the memory per RTT is cwnd-invariant.
  for (const double cwnd : {1.0, 4.0, 32.0, 128.0}) {
    const double per_ack = TcpPrSender::newton_alpha_root(0.995, cwnd, 2);
    EXPECT_NEAR(std::pow(per_ack, cwnd), 0.995, 2e-3) << cwnd;
  }
}

// ---- basic operation ----------------------------------------------------

TEST(TcpPr, CompletesFixedTransferWithoutLossCleanly) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 20;  // keep slow start below the queue limit
  auto* sender = add_pr(f, config);
  sender->set_data_source(std::make_unique<tcp::FixedDataSource>(500));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(30);
  EXPECT_TRUE(done);
  EXPECT_EQ(sender->stats().retransmissions, 0u);
  EXPECT_EQ(sender->stats().cwnd_halvings, 0u);
  EXPECT_EQ(f.receiver()->stats().duplicates, 0u);
  EXPECT_EQ(sender->outstanding(), 0u);
}

TEST(TcpPr, StartsInSlowStartThenMovesToCongestionAvoidance) {
  PathFixture f;
  auto* sender = add_pr(f);
  sender->start();
  EXPECT_EQ(sender->mode(), TcpPrSender::Mode::kSlowStart);
  f.run_for(20);  // slow start overflows the queue eventually -> CA
  EXPECT_EQ(sender->mode(), TcpPrSender::Mode::kCongestionAvoidance);
  EXPECT_GE(sender->stats().cwnd_halvings, 1u);
}

TEST(TcpPr, SlowStartGrowsExponentially) {
  PathFixture f(100e6, sim::Duration::millis(50));
  auto* sender = add_pr(f);
  sender->start();
  f.run_for(0.55);  // ~5 RTTs
  EXPECT_GE(sender->cwnd(), 16.0);
}

TEST(TcpPr, EwrttTracksRoundTripTime) {
  PathFixture f(10e6, sim::Duration::millis(40));
  tcp::TcpConfig config;
  config.max_cwnd = 10;
  auto* sender = add_pr(f, config);
  sender->start();
  f.run_for(10);
  // Path RTT: 2*(1+40)ms propagation + serialization; ewrtt must sit at the
  // observed maximum, comfortably above the propagation floor.
  EXPECT_GT(sender->ewrtt_seconds(), 0.082);
  EXPECT_LT(sender->ewrtt_seconds(), 0.2);
  EXPECT_NEAR(sender->mxrtt().as_seconds(), 3 * sender->ewrtt_seconds(),
              1e-9);
}

TEST(TcpPr, SingleLossDetectedByTimerAndRepaired) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;
  auto* sender = add_pr(f, config);
  drop_first_tx_of(f.fwd, {40});
  sender->start();
  f.run_for(15);
  EXPECT_GE(sender->stats().retransmissions, 1u);
  EXPECT_EQ(sender->stats().cwnd_halvings, 1u);
  EXPECT_EQ(sender->stats().extreme_loss_events, 0u);
  EXPECT_GT(sender->stats().segments_acked, 2000);
}

TEST(TcpPr, SingleLossDoesNotTriggerExtremeBackoff) {
  // Regression guard for the cumulative-ACK stall artifact: an ordinary
  // loss must never look like an "extreme loss" (Section 3.2).
  PathFixture f;
  auto* sender = add_pr(f);
  drop_first_tx_of(f.fwd, {40, 500, 2000});
  sender->start();
  f.run_for(20);
  EXPECT_EQ(sender->stats().extreme_loss_events, 0u);
  EXPECT_FALSE(sender->in_backoff());
}

TEST(TcpPr, BurstOfDropsCausesSingleHalving) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 40;
  auto* sender = add_pr(f, config);
  drop_first_tx_of(f.fwd, {60, 61, 62, 63});
  sender->start();
  f.run_for(15);
  EXPECT_EQ(sender->stats().cwnd_halvings, 1u);
  EXPECT_GE(sender->stats().retransmissions, 4u);
}

TEST(TcpPr, AblationNoMemorizeHalvesPerDrop) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 40;
  TcpPrConfig pr;
  pr.ablate_no_memorize = true;
  pr.enable_extreme_loss_handling = false;
  auto* sender = add_pr(f, config, pr);
  drop_first_tx_of(f.fwd, {60, 61, 62, 63});
  sender->start();
  f.run_for(15);
  EXPECT_GE(sender->stats().cwnd_halvings, 2u);
}

TEST(TcpPr, ExtremeLossEntersBackoffAndRecovers) {
  PathFixture f;
  auto* sender = add_pr(f);
  f.sched.schedule_at(sim::TimePoint::from_seconds(2.0), [&] {
    f.fwd->set_drop_filter([](const net::Packet&) { return true; });
  });
  f.sched.schedule_at(sim::TimePoint::from_seconds(8.0), [&] {
    f.fwd->set_drop_filter(nullptr);
  });
  sender->start();
  f.run_for(40);
  EXPECT_GE(sender->stats().extreme_loss_events, 1u);
  EXPECT_FALSE(sender->in_backoff());       // outage over, resumed
  EXPECT_GT(sender->stats().segments_acked, 3000);
}

TEST(TcpPr, BackoffDoublesMxrttDuringOutage) {
  PathFixture f;
  auto* sender = add_pr(f);
  f.sched.schedule_at(sim::TimePoint::from_seconds(2.0), [&] {
    f.fwd->set_drop_filter([](const net::Packet&) { return true; });
  });
  sender->start();
  f.run_for(30);  // outage never lifts
  ASSERT_TRUE(sender->in_backoff());
  // mxrtt floor is 1 s and must have doubled at least twice.
  EXPECT_GE(sender->mxrtt().as_seconds(), 4.0);
  EXPECT_EQ(sender->cwnd(), 1.0);
  EXPECT_EQ(sender->mode(), TcpPrSender::Mode::kSlowStart);
}

TEST(TcpPr, RobustToHeavyAckLoss) {
  PathFixture f;
  auto* sender = add_pr(f);
  f.rev->set_loss_model(0.3, sim::Rng(5));
  sender->start();
  f.run_for(20);
  EXPECT_GT(sender->stats().segments_acked, 5000);
  EXPECT_EQ(sender->stats().extreme_loss_events, 0u);
}

TEST(TcpPr, SnapshotHalvingUsesCwndAtSendTime) {
  // With the snapshot rule, halving lands at cwnd(n)/2 even though cwnd
  // grew between the send and the (delayed) detection; the ablated variant
  // halves the inflated current value and ends up with a larger window.
  const auto final_cwnd = [](bool ablate) {
    PathFixture f(10e6, sim::Duration::millis(10));
    tcp::TcpConfig config;
    TcpPrConfig pr;
    pr.ablate_halve_current_cwnd = ablate;
    auto* sender = dynamic_cast<TcpPrSender*>(f.add_flow(
        TcpVariant::kTcpPr, 1, config, pr));
    drop_first_tx_of(f.fwd, {100});
    sender->start();
    // Stop shortly after the first halving.
    double cwnd_after = 0;
    sender->set_cwnd_listener([&](sim::TimePoint, double w) {
      if (sender->stats().cwnd_halvings == 1 && cwnd_after == 0) {
        cwnd_after = w;
      }
    });
    f.run_for(5);
    return cwnd_after;
  };
  const double faithful = final_cwnd(false);
  const double ablated = final_cwnd(true);
  ASSERT_GT(faithful, 0);
  ASSERT_GT(ablated, 0);
  // cwnd kept growing during the detection delay, so halving the current
  // value gives a strictly larger post-loss window.
  EXPECT_GT(ablated, faithful);
}

// ---- the headline property: reordering immunity -------------------------

TEST(TcpPr, NoSpuriousRetransmissionsUnderPersistentReordering) {
  harness::MultipathConfig config;
  config.variant = TcpVariant::kTcpPr;
  config.epsilon = 0;
  config.tcp.max_cwnd = 100;  // below the loss point: reordering only
  auto scenario = harness::make_multipath(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(20));
  const auto& stats = scenario->senders[0]->stats();
  const auto& rstats = scenario->receivers[0]->stats();
  EXPECT_GT(rstats.out_of_order, 1000u);  // reordering really is persistent
  // beta=3 gives ample margin over the path-RTT spread: zero unnecessary
  // retransmissions despite heavy reordering of data and ACKs.
  EXPECT_EQ(stats.retransmissions, 0u);
  EXPECT_EQ(rstats.duplicates, 0u);
}

TEST(TcpPr, OutperformsSackUnderFullMultipath) {
  const auto goodput = [](TcpVariant v) {
    harness::MultipathConfig config;
    config.variant = v;
    config.epsilon = 0;
    auto scenario = harness::make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(20));
    return scenario->receivers[0]->stats().goodput_bytes;
  };
  const auto pr = goodput(TcpVariant::kTcpPr);
  const auto sack = goodput(TcpVariant::kSack);
  EXPECT_GT(pr, 2 * sack);
}

TEST(TcpPr, MatchesSackOnSinglePath) {
  const auto goodput = [](TcpVariant v) {
    harness::MultipathConfig config;
    config.variant = v;
    config.epsilon = 500;  // shortest path only
    auto scenario = harness::make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(20));
    return static_cast<double>(
        scenario->receivers[0]->stats().goodput_bytes);
  };
  const double pr = goodput(TcpVariant::kTcpPr);
  const double sack = goodput(TcpVariant::kSack);
  EXPECT_NEAR(pr / sack, 1.0, 0.15);
}

TEST(TcpPr, ReorderedAcksDoNotHurt) {
  // ACK reordering only (data on one path): goodput must match the
  // fully-ordered baseline.
  const auto goodput = [](bool reorder_acks) {
    harness::MultipathConfig config;
    config.variant = TcpVariant::kTcpPr;
    config.epsilon = reorder_acks ? 0.0 : 500.0;
    config.multipath_acks = true;
    auto scenario = harness::make_multipath(config);
    if (reorder_acks) {
      // Pin data to the shortest path; leave ACKs on the epsilon=0 policy.
      scenario->network.node(scenario->src_host)
          .set_source_routing_policy(nullptr);
    }
    scenario->sched.run_until(sim::TimePoint::from_seconds(15));
    return static_cast<double>(
        scenario->receivers[0]->stats().goodput_bytes);
  };
  EXPECT_NEAR(goodput(true) / goodput(false), 1.0, 0.2);
}

TEST(TcpPr, LiteralNoRestampVariantStillRuns) {
  // The literal Table-1 reading (no re-stamp) must remain available and
  // functional, if less efficient after losses.
  PathFixture f;
  TcpPrConfig pr;
  pr.restamp_on_congestion_event = false;
  auto* sender = add_pr(f, {}, pr);
  drop_first_tx_of(f.fwd, {40});
  sender->start();
  f.run_for(10);
  EXPECT_GT(sender->stats().segments_acked, 500);
  EXPECT_GE(sender->stats().retransmissions, 1u);
}

TEST(TcpPr, AblatedMeanEwrttUnderestimatesSpikes) {
  // Feed both estimators the same multipath run; the mean-based ablation
  // must sit below the decaying max.
  const auto ewrtt = [](bool ablate) {
    harness::MultipathConfig config;
    config.variant = TcpVariant::kTcpPr;
    config.epsilon = 0;
    config.pr.ablate_mean_ewrtt = ablate;
    auto scenario = harness::make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(10));
    auto* sender = dynamic_cast<TcpPrSender*>(scenario->senders[0].get());
    return sender->ewrtt_seconds();
  };
  EXPECT_LT(ewrtt(true), ewrtt(false));
}

}  // namespace
}  // namespace tcppr::core
