// Tests for the extension substrates that create reordering without
// multi-path routing: the DiffServ-style priority queue, per-hop ECMP
// spreading, and the MANET link-outage model.
#include <gtest/gtest.h>

#include <memory>

#include "app/sources.hpp"
#include "net/link_flapper.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"
#include "test_util.hpp"

namespace tcppr::net {
namespace {

Packet pkt_of(FlowId flow, SeqNo seq, std::uint32_t bytes = 100) {
  Packet pkt;
  pkt.size_bytes = bytes;
  pkt.tcp.flow = flow;
  pkt.tcp.seq = seq;
  return pkt;
}

TEST(PriorityQueue, StrictPriorityOrdering) {
  // Band by flow id: flow 0 -> band 0 (high), flow 1 -> band 1.
  PriorityQueue q(2, 10,
                  [](const Packet& p) { return p.tcp.flow == 0 ? 0 : 1; });
  ASSERT_TRUE(q.enqueue(pkt_of(1, 100)));
  ASSERT_TRUE(q.enqueue(pkt_of(1, 101)));
  ASSERT_TRUE(q.enqueue(pkt_of(0, 200)));
  // High-priority packet overtakes the two waiting low-priority ones.
  EXPECT_EQ(q.dequeue()->tcp.seq, 200);
  EXPECT_EQ(q.dequeue()->tcp.seq, 100);
  EXPECT_EQ(q.dequeue()->tcp.seq, 101);
}

TEST(PriorityQueue, PerBandLimits) {
  PriorityQueue q(2, 2, [](const Packet& p) { return p.tcp.flow; });
  EXPECT_TRUE(q.enqueue(pkt_of(0, 1)));
  EXPECT_TRUE(q.enqueue(pkt_of(0, 2)));
  EXPECT_FALSE(q.enqueue(pkt_of(0, 3)));  // band 0 full
  EXPECT_TRUE(q.enqueue(pkt_of(1, 4)));   // band 1 still open
  EXPECT_EQ(q.band_length(0), 2u);
  EXPECT_EQ(q.band_length(1), 1u);
  EXPECT_EQ(q.length_packets(), 3u);
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(PriorityQueue, ReordersAFlowMarkedIntoTwoBands) {
  // DiffServ reordering within one flow: odd segments marked high
  // priority overtake even ones queued behind them.
  PriorityQueue q(2, 100,
                  [](const Packet& p) { return p.tcp.seq % 2 == 1 ? 0 : 1; });
  for (SeqNo s = 0; s < 6; ++s) ASSERT_TRUE(q.enqueue(pkt_of(1, s)));
  std::vector<SeqNo> out;
  while (auto p = q.dequeue()) out.push_back(p->tcp.seq);
  EXPECT_EQ(out, (std::vector<SeqNo>{1, 3, 5, 0, 2, 4}));
}

TEST(PriorityQueue, EndToEndDiffServReordering) {
  // A bottleneck with per-packet random marking reorders a TCP-PR flow;
  // TCP-PR must not retransmit anything.
  sim::Scheduler sched;
  Network network(sched);
  const auto a = network.add_node();
  const auto r = network.add_node();
  const auto b = network.add_node();
  LinkConfig access;
  access.bandwidth_bps = 1e9;
  network.add_duplex_link(a, r, access);
  // Forward direction: priority queue with probabilistic marking.
  auto rng = std::make_shared<sim::Rng>(7);
  auto queue = std::make_unique<PriorityQueue>(
      2, 200, [rng](const Packet&) { return rng->bernoulli(0.3) ? 0 : 1; });
  network.add_link_with_queue(r, b, 5e6, sim::Duration::millis(10),
                              std::move(queue));
  LinkConfig back;
  back.bandwidth_bps = 5e6;
  back.delay = sim::Duration::millis(10);
  network.add_link(b, r, back);  // ACK return path: b -> r -> a
  network.compute_static_routes();

  tcp::ReceiverConfig rc;
  tcp::Receiver recv(network, b, a, 1, rc);
  tcp::TcpConfig tc;
  tc.max_cwnd = 30;
  core::TcpPrSender sender(network, a, b, 1, tc);
  sender.start();
  sched.run_until(sim::TimePoint::from_seconds(10));
  EXPECT_GT(recv.stats().out_of_order, 100u);  // reordering happened
  EXPECT_EQ(sender.stats().retransmissions, 0u);
  EXPECT_EQ(recv.stats().duplicates, 0u);
  EXPECT_GT(sender.stats().segments_acked, 2000);
}

TEST(PriorityQueue, PerBandStatsAttributeDropsAndBytes) {
  PriorityQueue q(2, 2, [](const Packet& p) { return p.tcp.flow; });
  ASSERT_TRUE(q.enqueue(pkt_of(0, 1, 100)));
  ASSERT_TRUE(q.enqueue(pkt_of(0, 2, 100)));
  ASSERT_FALSE(q.enqueue(pkt_of(0, 3, 100)));  // band 0 full
  ASSERT_TRUE(q.enqueue(pkt_of(1, 4, 300)));
  EXPECT_EQ(q.band_stats(0).enqueued, 2u);
  EXPECT_EQ(q.band_stats(0).dropped, 1u);
  EXPECT_EQ(q.band_stats(0).bytes_dropped, 100u);
  EXPECT_EQ(q.band_stats(1).enqueued, 1u);
  EXPECT_EQ(q.band_stats(1).dropped, 0u);
  EXPECT_EQ(q.band_stats(1).bytes_enqueued, 300u);
  // Drain: dequeues attribute to the band each packet left from.
  while (q.dequeue()) {
  }
  EXPECT_EQ(q.band_stats(0).dequeued, 2u);
  EXPECT_EQ(q.band_stats(0).bytes_dequeued, 200u);
  EXPECT_EQ(q.band_stats(1).dequeued, 1u);
  EXPECT_EQ(q.band_stats(1).bytes_dequeued, 300u);
  // Aggregates equal the sum of the bands.
  EXPECT_EQ(q.stats().dequeued, 3u);
  EXPECT_EQ(q.stats().bytes_dequeued, 500u);
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(QueueStats, BytesDequeuedTrackedByAllDisciplines) {
  DropTailQueue droptail(10);
  ASSERT_TRUE(droptail.enqueue(pkt_of(1, 1, 120)));
  ASSERT_TRUE(droptail.enqueue(pkt_of(1, 2, 80)));
  droptail.dequeue();
  EXPECT_EQ(droptail.stats().bytes_dequeued, 120u);
  droptail.dequeue();
  EXPECT_EQ(droptail.stats().bytes_dequeued, 200u);

  RedQueue red(RedQueue::Params{}, sim::Rng(1));
  ASSERT_TRUE(red.enqueue(pkt_of(1, 1, 250)));
  red.dequeue();
  EXPECT_EQ(red.stats().bytes_dequeued, 250u);

  PriorityQueue prio(2, 10, [](const Packet&) { return 0; });
  ASSERT_TRUE(prio.enqueue(pkt_of(1, 1, 60)));
  prio.dequeue();
  EXPECT_EQ(prio.stats().bytes_dequeued, 60u);
}

TEST(RedQueue, IdlePeriodDecaysAverage) {
  // Regression: the EWMA average must keep decaying while the queue sits
  // empty (Floyd & Jacobson idle adjustment). Before the fix the average
  // froze at its busy-period value and early-dropped the first burst after
  // an idle spell.
  RedQueue::Params params;
  params.weight = 0.2;  // fast EWMA so a handful of packets moves avg
  sim::Scheduler sched;
  RedQueue timed(params, sim::Rng(1));
  // 8 Mbps drain rate: one 500-byte idle packet every 0.5 ms.
  timed.set_time_source(&sched, 8e6);
  RedQueue untimed(params, sim::Rng(1));  // no clock: pre-fix behaviour

  for (SeqNo s = 0; s < 8; ++s) {
    ASSERT_TRUE(timed.enqueue(pkt_of(1, s)));
    ASSERT_TRUE(untimed.enqueue(pkt_of(1, s)));
  }
  while (timed.dequeue()) {
  }
  while (untimed.dequeue()) {
  }
  const double avg_busy = timed.average_queue();
  ASSERT_GT(avg_busy, 2.0);
  ASSERT_DOUBLE_EQ(untimed.average_queue(), avg_busy);

  // One idle second is 2000 small-packet transmission times; by the next
  // arrival the average must have decayed to nothing.
  sched.run_until(sim::TimePoint::from_seconds(1.0));
  ASSERT_TRUE(timed.enqueue(pkt_of(1, 100)));
  ASSERT_TRUE(untimed.enqueue(pkt_of(1, 100)));
  EXPECT_LT(timed.average_queue(), 0.05);
  // Without a time source the stale average persists.
  EXPECT_GT(untimed.average_queue(), avg_busy * 0.5);
}

TEST(Ecmp, SpreadsPacketsAcrossNextHops) {
  // Diamond: 0 -> {1, 2} -> 3 with per-hop ECMP at node 0.
  sim::Scheduler sched;
  Network network(sched);
  const auto n0 = network.add_node();
  const auto n1 = network.add_node();
  const auto n2 = network.add_node();
  const auto n3 = network.add_node();
  LinkConfig cfg;
  network.add_duplex_link(n0, n1, cfg);
  network.add_duplex_link(n0, n2, cfg);
  network.add_duplex_link(n1, n3, cfg);
  network.add_duplex_link(n2, n3, cfg);
  network.compute_static_routes();
  network.node(n0).set_ecmp_next_hops(n3, {n1, n2}, sim::Rng(5));

  app::PacketSink sink(network, n3, 1);
  for (int i = 0; i < 1000; ++i) {
    // Spaced out so queues never overflow; only routing is under test.
    sched.schedule_at(sim::TimePoint::from_seconds(0.001 * i), [&] {
      Packet pkt;
      pkt.dst = n3;
      pkt.size_bytes = 100;
      pkt.tcp.flow = 1;
      network.node(n0).originate(std::move(pkt));
    });
  }
  sched.run();
  EXPECT_EQ(sink.packets(), 1000u);
  const auto via_n1 = network.node(n1).stats().forwarded;
  const auto via_n2 = network.node(n2).stats().forwarded;
  EXPECT_EQ(via_n1 + via_n2, 1000u);
  EXPECT_GT(via_n1, 350u);
  EXPECT_GT(via_n2, 350u);
}

TEST(Ecmp, UnequalDelayPathsReorderTraffic) {
  sim::Scheduler sched;
  Network network(sched);
  const auto n0 = network.add_node();
  const auto n1 = network.add_node();
  const auto n2 = network.add_node();
  const auto n3 = network.add_node();
  LinkConfig fast;
  fast.delay = sim::Duration::millis(2);
  LinkConfig slow;
  slow.delay = sim::Duration::millis(30);
  network.add_duplex_link(n0, n1, fast);
  network.add_duplex_link(n1, n3, fast);
  network.add_duplex_link(n0, n2, slow);
  network.add_duplex_link(n2, n3, slow);
  network.compute_static_routes();
  network.node(n0).set_ecmp_next_hops(n3, {n1, n2}, sim::Rng(5));

  tcp::Receiver recv(network, n3, n0, 1);
  tcp::TcpConfig tc;
  tc.max_cwnd = 20;
  core::TcpPrSender sender(network, n0, n3, 1, tc);
  sender.start();
  sched.run_until(sim::TimePoint::from_seconds(5));
  EXPECT_GT(recv.stats().out_of_order, 50u);
  EXPECT_EQ(recv.stats().duplicates, 0u);  // TCP-PR stays calm
}

TEST(LinkFlapper, TogglesLinks) {
  sim::Scheduler sched;
  Network network(sched);
  const auto a = network.add_node();
  const auto b = network.add_node();
  LinkConfig cfg;
  auto [ab, ba] = network.add_duplex_link(a, b, cfg);
  LinkFlapper::Config fc;
  fc.mean_up = sim::Duration::millis(100);
  fc.mean_down = sim::Duration::millis(100);
  LinkFlapper flapper(sched, {ab, ba}, fc);
  flapper.start();
  sched.run_until(sim::TimePoint::from_seconds(10));
  EXPECT_GT(flapper.transitions(), 20u);
  flapper.stop();
  EXPECT_FALSE(ab->is_down());
  EXPECT_FALSE(ba->is_down());
}

TEST(LinkFlapper, DownLinkDropsTraffic) {
  sim::Scheduler sched;
  Network network(sched);
  const auto a = network.add_node();
  const auto b = network.add_node();
  LinkConfig cfg;
  auto [ab, ba] = network.add_duplex_link(a, b, cfg);
  (void)ba;
  network.compute_static_routes();
  ab->set_down(true);
  app::PacketSink sink(network, b, 1);
  Packet pkt;
  pkt.dst = b;
  pkt.size_bytes = 100;
  pkt.tcp.flow = 1;
  network.node(a).originate(std::move(pkt));
  sched.run();
  EXPECT_EQ(sink.packets(), 0u);
  EXPECT_EQ(ab->stats().lost, 1u);
}

TEST(LinkFlapper, TcpSurvivesOutages) {
  testutil::PathFixture f;
  auto* sender = f.add_flow(harness::TcpVariant::kTcpPr, 1);
  LinkFlapper::Config fc;
  fc.mean_up = sim::Duration::seconds(2);
  fc.mean_down = sim::Duration::millis(300);
  fc.seed = 3;
  LinkFlapper flapper(f.sched, {f.fwd, f.rev}, fc);
  flapper.start();
  sender->start();
  f.run_for(40);
  flapper.stop();
  f.run_for(10);
  // Makes real progress despite repeated outages.
  EXPECT_GT(sender->stats().segments_acked, 5000);
}

}  // namespace
}  // namespace tcppr::net
