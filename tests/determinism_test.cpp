// Determinism oracle: the FNV-1a hash of the delivered-packet event stream
// must be identical across reruns of the same seed, unaffected by an
// attached invariant checker, and identical per cell whether a sweep runs
// on one worker thread or four.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/scenarios.hpp"
#include "validate/determinism.hpp"
#include "validate/fuzzer.hpp"
#include "validate/invariants.hpp"

namespace tcppr::validate {
namespace {

struct RunDigest {
  std::uint64_t hash = 0;
  std::uint64_t delivered = 0;
};

// 16-flow dumbbell (8 TCP-PR + 8 SACK), hashed; optionally checked.
RunDigest run_dumbbell16(std::uint64_t seed, bool with_checker) {
  harness::DumbbellConfig config;
  config.pr_flows = 8;
  config.sack_flows = 8;
  config.seed = seed;
  auto scenario = harness::make_dumbbell(config);

  DeliveryHasher hasher;
  scenario->network.add_trace_sink(&hasher);
  std::unique_ptr<InvariantChecker> checker;
  if (with_checker) {
    checker = std::make_unique<InvariantChecker>(*scenario);
    checker->start();
  }

  harness::MeasurementWindow window;
  window.total = sim::Duration::seconds(6);
  window.measured = sim::Duration::seconds(3);
  run_scenario(*scenario, window);
  if (checker) {
    checker->finalize();
    EXPECT_TRUE(checker->ok()) << checker->report();
  }
  return {hasher.hash(), hasher.delivered()};
}

TEST(Determinism, SameSeedSameDeliveryStream) {
  const RunDigest a = run_dumbbell16(42, /*with_checker=*/false);
  const RunDigest b = run_dumbbell16(42, /*with_checker=*/false);
  EXPECT_GT(a.delivered, 0u);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.delivered, b.delivered);
}

TEST(Determinism, DifferentSeedDifferentDeliveryStream) {
  const RunDigest a = run_dumbbell16(42, /*with_checker=*/false);
  const RunDigest b = run_dumbbell16(43, /*with_checker=*/false);
  EXPECT_NE(a.hash, b.hash);
}

TEST(Determinism, CheckerDoesNotPerturbTheRun) {
  // The checker only reads simulation state between events; attaching it
  // must leave the delivered-packet stream bit-identical.
  const RunDigest plain = run_dumbbell16(42, /*with_checker=*/false);
  const RunDigest checked = run_dumbbell16(42, /*with_checker=*/true);
  EXPECT_EQ(plain.hash, checked.hash);
  EXPECT_EQ(plain.delivered, checked.delivered);
}

// Figure-3-style sweep cells hashed per cell; the per-cell stream must not
// depend on how many worker threads execute the sweep.
std::vector<std::uint64_t> sweep_hashes(int jobs) {
  const double epsilons[] = {0, 1, 4};
  constexpr int kCells = 3;
  std::vector<std::uint64_t> hashes(kCells, 0);
  std::vector<DeliveryHasher> hashers(kCells);
  harness::parallel_for(jobs, kCells, [&](int i) {
    harness::MultipathConfig config;
    config.variant = harness::TcpVariant::kTcpPr;
    config.epsilon = epsilons[i];
    harness::MeasurementWindow window;
    window.total = sim::Duration::seconds(5);
    window.measured = sim::Duration::seconds(2);
    run_multipath_cell(config, window, [&](harness::Scenario& s) {
      s.network.add_trace_sink(&hashers[static_cast<std::size_t>(i)]);
    });
    hashes[static_cast<std::size_t>(i)] =
        hashers[static_cast<std::size_t>(i)].hash();
  });
  return hashes;
}

TEST(Determinism, SweepHashesIndependentOfJobCount) {
  const std::vector<std::uint64_t> serial = sweep_hashes(1);
  const std::vector<std::uint64_t> threaded = sweep_hashes(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "cell " << i;
    EXPECT_NE(serial[i], util::kFnvOffsetBasis) << "cell " << i << " empty";
  }
}

TEST(Determinism, FuzzCaseHashesAreReproducible) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const FuzzCase c = sample_fuzz_case(seed);
    const FuzzResult a = run_fuzz_case(c);
    const FuzzResult b = run_fuzz_case(c);
    EXPECT_EQ(a.delivery_hash, b.delivery_hash) << "seed " << seed;
    EXPECT_EQ(a.delivered, b.delivered) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tcppr::validate
