// Unit tests for the network substrate: queues, links (serialization and
// propagation timing), node forwarding, and Network route computation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/sources.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"

namespace tcppr::net {
namespace {

Packet make_packet(NodeId dst, std::uint32_t bytes, FlowId flow = 1) {
  Packet pkt;
  pkt.dst = dst;
  pkt.size_bytes = bytes;
  pkt.tcp.flow = flow;
  return pkt;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10);
  for (int i = 0; i < 5; ++i) {
    Packet pkt = make_packet(0, 100);
    pkt.tcp.seq = i;
    EXPECT_TRUE(q.enqueue(std::move(pkt)));
  }
  for (int i = 0; i < 5; ++i) {
    auto pkt = q.dequeue();
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->tcp.seq, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(0, 100)));
  }
  EXPECT_FALSE(q.enqueue(make_packet(0, 100)));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 3u);
  EXPECT_EQ(q.length_packets(), 3u);
  // Draining one opens a slot again.
  q.dequeue();
  EXPECT_TRUE(q.enqueue(make_packet(0, 100)));
}

TEST(DropTailQueue, ByteAccounting) {
  DropTailQueue q(10);
  ASSERT_TRUE(q.enqueue(make_packet(0, 100)));
  ASSERT_TRUE(q.enqueue(make_packet(0, 250)));
  EXPECT_EQ(q.length_bytes(), 350u);
  q.dequeue();
  EXPECT_EQ(q.length_bytes(), 250u);
}

TEST(RedQueue, AcceptsBelowMinThreshold) {
  RedQueue::Params params;
  params.limit_packets = 50;
  params.min_thresh = 10;
  params.max_thresh = 30;
  RedQueue q(params, sim::Rng(1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(0, 100)));
  }
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(RedQueue, DropsProbabilisticallyWhenCongested) {
  RedQueue::Params params;
  params.limit_packets = 100;
  params.min_thresh = 5;
  params.max_thresh = 15;
  params.weight = 0.5;  // fast-moving average for the test
  RedQueue q(params, sim::Rng(1));
  int dropped = 0;
  for (int i = 0; i < 200; ++i) {
    if (!q.enqueue(make_packet(0, 100))) ++dropped;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_LT(q.length_packets(), 101u);
}

TEST(RedQueue, HardLimitEnforced) {
  RedQueue::Params params;
  params.limit_packets = 10;
  params.min_thresh = 100;  // early drops effectively off
  params.max_thresh = 200;
  RedQueue q(params, sim::Rng(1));
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    if (q.enqueue(make_packet(0, 100))) ++accepted;
  }
  EXPECT_LE(accepted, 10);
}

class TwoNodeFixture : public ::testing::Test {
 protected:
  TwoNodeFixture() : network(sched) {
    a = network.add_node();
    b = network.add_node();
    LinkConfig cfg;
    cfg.bandwidth_bps = 8e6;  // 1 byte/us
    cfg.delay = sim::Duration::millis(10);
    cfg.queue_limit_packets = 100;
    auto [ab_link, ba_link] = network.add_duplex_link(a, b, cfg);
    ab = ab_link;
    ba = ba_link;
    network.compute_static_routes();
    sink = std::make_unique<app::PacketSink>(network, b, 1);
  }

  sim::Scheduler sched;
  Network network;
  NodeId a{}, b{};
  Link* ab = nullptr;
  Link* ba = nullptr;
  std::unique_ptr<app::PacketSink> sink;
};

TEST_F(TwoNodeFixture, DeliversWithSerializationPlusPropagation) {
  // 1000 bytes at 8 Mbps = 1 ms serialization; +10 ms propagation.
  network.node(a).originate(make_packet(b, 1000));
  sched.run();
  EXPECT_EQ(sink->packets(), 1u);
  EXPECT_NEAR(sched.now().as_seconds(), 0.011, 1e-9);
}

TEST_F(TwoNodeFixture, BackToBackPacketsSerialize) {
  for (int i = 0; i < 3; ++i) network.node(a).originate(make_packet(b, 1000));
  sched.run();
  EXPECT_EQ(sink->packets(), 3u);
  // Last packet: 3 ms serialization (pipelined) + 10 ms propagation.
  EXPECT_NEAR(sched.now().as_seconds(), 0.013, 1e-9);
}

TEST_F(TwoNodeFixture, QueueOverflowDrops) {
  // 100-packet queue + 1 in transmission: flooding 200 drops the excess.
  for (int i = 0; i < 200; ++i) {
    network.node(a).originate(make_packet(b, 1000));
  }
  sched.run();
  EXPECT_EQ(sink->packets(), 101u);
  EXPECT_EQ(ab->queue().stats().dropped, 99u);
}

TEST_F(TwoNodeFixture, LossModelDropsFraction) {
  ab->set_loss_model(0.5, sim::Rng(9));
  // Spaced out so the queue never overflows (only loss-model drops).
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_at(sim::TimePoint::from_seconds(0.001 * i),
                      [&] { network.node(a).originate(make_packet(b, 100)); });
  }
  sched.run();
  EXPECT_GT(sink->packets(), 400u);
  EXPECT_LT(sink->packets(), 600u);
  EXPECT_EQ(sink->packets() + ab->stats().lost, 1000u);
}

TEST_F(TwoNodeFixture, DropFilterIsDeterministic) {
  ab->set_drop_filter([](const Packet& pkt) { return pkt.tcp.seq == 2; });
  for (int i = 0; i < 5; ++i) {
    Packet pkt = make_packet(b, 100);
    pkt.tcp.seq = i;
    network.node(a).originate(std::move(pkt));
  }
  sched.run();
  EXPECT_EQ(sink->packets(), 4u);
  EXPECT_EQ(ab->stats().lost, 1u);
}

TEST_F(TwoNodeFixture, NoAgentCountsUnroutable) {
  network.node(a).originate(make_packet(b, 100, /*flow=*/99));
  sched.run();
  EXPECT_EQ(network.node(b).stats().unroutable, 1u);
}

TEST(Network, ForwardsAcrossChain) {
  sim::Scheduler sched;
  Network network(sched);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(network.add_node());
  LinkConfig cfg;
  for (int i = 0; i + 1 < 5; ++i) {
    network.add_duplex_link(nodes[i], nodes[i + 1], cfg);
  }
  network.compute_static_routes();
  app::PacketSink sink(network, nodes[4], 1);
  network.node(nodes[0]).originate(make_packet(nodes[4], 500));
  sched.run();
  EXPECT_EQ(sink.packets(), 1u);
  // Three intermediate routers forwarded it.
  EXPECT_EQ(network.node(nodes[1]).stats().forwarded, 1u);
  EXPECT_EQ(network.node(nodes[3]).stats().forwarded, 1u);
}

TEST(Network, SourceRouteOverridesTables) {
  sim::Scheduler sched;
  Network network(sched);
  // Diamond: 0 -> {1 short, 2 long} -> 3.
  const NodeId n0 = network.add_node();
  const NodeId n1 = network.add_node();
  const NodeId n2 = network.add_node();
  const NodeId n3 = network.add_node();
  LinkConfig fast;
  fast.delay = sim::Duration::millis(1);
  LinkConfig slow;
  slow.delay = sim::Duration::millis(50);
  network.add_duplex_link(n0, n1, fast);
  network.add_duplex_link(n1, n3, fast);
  network.add_duplex_link(n0, n2, slow);
  network.add_duplex_link(n2, n3, slow);
  network.compute_static_routes();
  app::PacketSink sink(network, n3, 1);

  // Shortest-path routing would go through n1; force the n2 path.
  Packet pkt = make_packet(n3, 100);
  pkt.source_route = {n2, n3};
  network.node(n0).originate(std::move(pkt));
  sched.run();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(network.node(n2).stats().forwarded, 1u);
  EXPECT_EQ(network.node(n1).stats().forwarded, 0u);
}

TEST(Network, HopCountIncrements) {
  sim::Scheduler sched;
  Network network(sched);
  const NodeId n0 = network.add_node();
  const NodeId n1 = network.add_node();
  const NodeId n2 = network.add_node();
  LinkConfig cfg;
  network.add_duplex_link(n0, n1, cfg);
  network.add_duplex_link(n1, n2, cfg);
  network.compute_static_routes();

  class HopRecorder final : public Agent {
   public:
    void deliver(Packet&& pkt) override { hops = pkt.hops; }
    int hops = -1;
  } recorder;
  network.node(n2).attach_agent(1, &recorder);
  network.node(n0).originate(make_packet(n2, 100));
  sched.run();
  EXPECT_EQ(recorder.hops, 2);
  network.node(n2).detach_agent(1);
}

TEST(Network, TotalDropsAggregates) {
  sim::Scheduler sched;
  Network network(sched);
  const NodeId n0 = network.add_node();
  const NodeId n1 = network.add_node();
  LinkConfig cfg;
  cfg.queue_limit_packets = 1;
  cfg.bandwidth_bps = 1e3;  // slow: immediate queue build-up
  network.add_duplex_link(n0, n1, cfg);
  network.compute_static_routes();
  app::PacketSink sink(network, n1, 1);
  for (int i = 0; i < 10; ++i) {
    network.node(n0).originate(make_packet(n1, 100));
  }
  sched.run();
  EXPECT_EQ(network.total_drops(), 10u - sink.packets());
}

TEST(CbrSource, SendsAtConfiguredRate) {
  sim::Scheduler sched;
  Network network(sched);
  const NodeId n0 = network.add_node();
  const NodeId n1 = network.add_node();
  LinkConfig cfg;
  cfg.bandwidth_bps = 100e6;
  network.add_duplex_link(n0, n1, cfg);
  network.compute_static_routes();
  app::PacketSink sink(network, n1, 5);
  app::CbrSource::Config cc;
  cc.rate_bps = 800e3;  // 100 pkt/s at 1000 B
  cc.packet_bytes = 1000;
  app::CbrSource cbr(network, n0, n1, 5, cc);
  cbr.start();
  sched.run_until(sim::TimePoint::from_seconds(1.0));
  cbr.stop();
  sched.run();
  EXPECT_NEAR(static_cast<double>(sink.packets()), 100.0, 2.0);
}

}  // namespace
}  // namespace tcppr::net
