// Behavioural tests for the SACK sender (scoreboard/pipe recovery) and
// TD-FR's timer-deferred fast retransmit.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "tcp/sack.hpp"
#include "tcp/tdfr.hpp"
#include "test_util.hpp"

namespace tcppr::tcp {
namespace {

using harness::TcpVariant;
using testutil::PathFixture;

void drop_first_tx_of(net::Link* link, std::set<net::SeqNo> targets) {
  auto counts = std::make_shared<std::map<net::SeqNo, int>>();
  link->set_drop_filter([counts, targets](const net::Packet& pkt) {
    if (pkt.type != net::PacketType::kTcpData) return false;
    if (!targets.contains(pkt.tcp.seq)) return false;
    return ++(*counts)[pkt.tcp.seq] == 1;
  });
}

TEST(Sack, CompletesFixedTransferCleanly) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;  // below the queue limit: no self-induced losses
  auto* sender = f.add_flow(TcpVariant::kSack, 1, config);
  sender->set_data_source(std::make_unique<FixedDataSource>(500));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(30);
  EXPECT_TRUE(done);
  EXPECT_EQ(sender->stats().retransmissions, 0u);
}

TEST(Sack, SingleLossRecoveredBySingleRetransmit) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;
  auto* sender = f.add_flow(TcpVariant::kSack, 1, config);
  drop_first_tx_of(f.fwd, {30});
  sender->start();
  f.run_for(10);
  EXPECT_EQ(sender->stats().fast_retransmits, 1u);
  EXPECT_EQ(sender->stats().retransmissions, 1u);
  EXPECT_EQ(sender->stats().timeouts, 0u);
}

TEST(Sack, MultipleLossesOneWindowOneHalving) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 40;
  auto* sack =
      dynamic_cast<SackSender*>(f.add_flow(TcpVariant::kSack, 1, config));
  drop_first_tx_of(f.fwd, {50, 52, 54, 56});
  sack->start();
  f.run_for(15);
  EXPECT_EQ(sack->stats().cwnd_halvings, 1u);
  EXPECT_EQ(sack->stats().timeouts, 0u);
  EXPECT_GE(sack->stats().retransmissions, 4u);
  EXPECT_GT(sack->stats().segments_acked, 1000);
}

TEST(Sack, PipeNeverWildlyExceedsWindow) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 60;
  auto* sack =
      dynamic_cast<SackSender*>(f.add_flow(TcpVariant::kSack, 1, config));
  f.fwd->set_loss_model(0.05, sim::Rng(3));
  sack->start();
  // Invariants sampled during the run: pipe can transiently exceed cwnd
  // right after a halving, but can never exceed the sequence range in
  // flight, and the range itself stays near the window.
  for (int i = 1; i <= 100; ++i) {
    f.sched.schedule_at(sim::TimePoint::from_seconds(0.2 * i), [&] {
      const double range =
          static_cast<double>(sack->snd_nxt() - sack->snd_una());
      EXPECT_LE(sack->pipe(), range + 1e-9);
      EXPECT_GE(sack->pipe(), 0.0);
    });
  }
  f.run_for(21);
}

TEST(Sack, TimeoutOnTotalOutageThenRecovery) {
  PathFixture f;
  auto* sender = f.add_flow(TcpVariant::kSack, 1);
  f.sched.schedule_at(sim::TimePoint::from_seconds(1.0), [&] {
    f.fwd->set_drop_filter([](const net::Packet&) { return true; });
  });
  f.sched.schedule_at(sim::TimePoint::from_seconds(7.0), [&] {
    f.fwd->set_drop_filter(nullptr);
  });
  sender->start();
  f.run_for(30);
  EXPECT_GE(sender->stats().timeouts, 1u);
  EXPECT_GT(sender->stats().segments_acked, 1000);
}

TEST(Sack, ReorderingCausesSpuriousRetransmits) {
  // A 25 ms jitter link (implemented by alternating path delay via two
  // routes is not available here, so use the multipath harness instead) —
  // here we simply check the dupthresh gap rule fires under induced
  // reordering created by delaying one segment through drop+later arrival.
  PathFixture f;
  auto* sender = f.add_flow(TcpVariant::kSack, 1);
  drop_first_tx_of(f.fwd, {30});
  sender->start();
  f.run_for(5);
  // The retransmitted segment arrives once: no duplicate at the receiver.
  EXPECT_EQ(f.receiver()->stats().duplicates, 0u);
}

TEST(Sack, EffectiveDupthreshClampedByWindow) {
  PathFixture f;
  tcp::TcpConfig config;
  config.dupthresh = 100;  // absurd: must clamp to cwnd-1
  auto* sack =
      dynamic_cast<SackSender*>(f.add_flow(TcpVariant::kSack, 1, config));
  sack->start();
  f.run_for(0.1);
  EXPECT_LE(sack->effective_dupthresh(),
            static_cast<int>(sack->cwnd()) + 1);
  EXPECT_GE(sack->effective_dupthresh(), 3);
}

TEST(TdFr, NoFastRetransmitBeforeWaitExpires) {
  PathFixture f(10e6, sim::Duration::millis(40));
  auto* tdfr = dynamic_cast<TdFrSender*>(f.add_flow(TcpVariant::kTdFr, 1));
  drop_first_tx_of(f.fwd, {30});
  tdfr->start();
  f.run_for(10);
  // The drop is eventually repaired (timer path), and only once.
  EXPECT_EQ(tdfr->stats().fast_retransmits, 1u);
  EXPECT_EQ(tdfr->stats().timeouts, 0u);
  EXPECT_GT(tdfr->stats().segments_acked, 500);
}

TEST(TdFr, PersistentProgressCancelsWait) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;
  auto* tdfr =
      dynamic_cast<TdFrSender*>(f.add_flow(TcpVariant::kTdFr, 1, config));
  tdfr->start();
  f.run_for(10);
  // No losses: no recovery episodes at all.
  EXPECT_EQ(tdfr->stats().fast_retransmits, 0u);
  EXPECT_EQ(tdfr->stats().retransmissions, 0u);
}

TEST(TdFr, SlowerRepairThanNewReno) {
  // TD-FR rides on NewReno, so against a NewReno baseline the trajectories
  // are identical up to the drop; the deferred retransmit must then repair
  // the hole measurably later (>= srtt/2 past the first dupack instead of
  // at the third dupack).
  const auto repair_time = [](TcpVariant v) {
    PathFixture f(10e6, sim::Duration::millis(30));
    tcp::TcpConfig config;
    config.max_cwnd = 30;
    auto* sender = f.add_flow(v, 1, config);
    drop_first_tx_of(f.fwd, {100});
    sender->start();
    while (f.receiver()->rcv_next() <= 100 &&
           f.sched.now() < sim::TimePoint::from_seconds(10)) {
      f.run_for(0.001);
    }
    return f.sched.now().as_seconds();
  };
  const double t_newreno = repair_time(TcpVariant::kNewReno);
  const double t_tdfr = repair_time(TcpVariant::kTdFr);
  // srtt/2 here is ~31 ms; allow the dupack spacing it skips.
  EXPECT_GT(t_tdfr, t_newreno + 0.01);
  EXPECT_LT(t_tdfr, t_newreno + 1.0);  // but far quicker than an RTO
}

}  // namespace
}  // namespace tcppr::tcp
