// Batch equivalence: the batched hot path (link-pump carrier events,
// batched queue ops, ACK trains, send-bursts) must be an engine-level
// optimization only — the delivery stream it produces has to be
// byte-identical to the unbatched engine's. The DeliveryHasher digest
// over (time, flow, endpoints, seq, size, is_ack) is the witness.
//
// Two matrices, mirroring backend_equivalence_test.cpp:
//   - 12 variants x 3 paper topologies: unbatched heap reference vs
//     batched on all 3 backends and batched parallel at 1/2/4/8 LPs, and
//   - 200 fuzz seeds (faulty links, random topologies) batched vs
//     unbatched, with calendar/wheel and parallel coverage sprinkled in,
//     sharded into 8 parameterized cases so ctest -j spreads the work.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/scenarios.hpp"
#include "validate/fuzzer.hpp"

namespace tcppr::validate {
namespace {

constexpr sim::SchedulerBackend kBackends[] = {
    sim::SchedulerBackend::kBinaryHeap,
    sim::SchedulerBackend::kCalendarQueue,
    sim::SchedulerBackend::kTimingWheel,
};

const char* backend_name(sim::SchedulerBackend backend) {
  switch (backend) {
    case sim::SchedulerBackend::kBinaryHeap:
      return "heap";
    case sim::SchedulerBackend::kCalendarQueue:
      return "calendar";
    case sim::SchedulerBackend::kTimingWheel:
      return "wheel";
  }
  return "?";
}

FuzzResult run_batched(FuzzCase c, sim::SchedulerBackend backend,
                       int par_lps = 0) {
  c.batching = true;
  c.backend = backend;
  c.par_lps = par_lps;
  return run_fuzz_case(c);
}

FuzzResult run_unbatched(FuzzCase c) {
  c.batching = false;
  c.backend = sim::SchedulerBackend::kBinaryHeap;
  c.par_lps = 0;
  return run_fuzz_case(c);
}

class VariantBatchEquivalence
    : public testing::TestWithParam<harness::TcpVariant> {};

TEST_P(VariantBatchEquivalence, AllTopologiesHashIdentically) {
  const FuzzCase::Topology topologies[] = {
      FuzzCase::Topology::kDumbbell,
      FuzzCase::Topology::kParkingLot,
      FuzzCase::Topology::kMultipath,
  };
  for (const auto topology : topologies) {
    FuzzCase c;
    c.topology = topology;
    c.flows = 1;
    c.variants = {GetParam()};
    c.duration_s = 2.0;
    const FuzzResult reference = run_unbatched(c);
    EXPECT_TRUE(reference.ok)
        << to_string(topology) << ": " << reference.first_violation;
    EXPECT_GT(reference.delivered, 0u) << to_string(topology);
    for (const auto backend : kBackends) {
      const FuzzResult batched = run_batched(c, backend);
      EXPECT_EQ(batched.delivery_hash, reference.delivery_hash)
          << to_string(topology) << " batched on " << backend_name(backend)
          << " diverged from the unbatched engine";
      EXPECT_EQ(batched.delivered, reference.delivered)
          << to_string(topology) << " batched on " << backend_name(backend);
      EXPECT_TRUE(batched.ok)
          << to_string(topology) << " batched on " << backend_name(backend)
          << ": " << batched.first_violation;
    }
    // Parallel runs compare against the unbatched *stamped* canonical
    // baseline (par_lps=1), not the legacy sequential run: stamped tie
    // order is keyed by owner node, which legitimately differs from
    // insertion order on multipath (pre-existing, batching-independent —
    // the same baseline parallel_engine_test uses).
    FuzzCase pc = c;
    pc.batching = false;
    pc.par_lps = 1;
    const FuzzResult par_reference = run_fuzz_case(pc);
    EXPECT_TRUE(par_reference.ok)
        << to_string(topology) << ": " << par_reference.first_violation;
    for (const int lps : {1, 2, 4, 8}) {
      const FuzzResult batched =
          run_batched(c, sim::SchedulerBackend::kBinaryHeap, lps);
      EXPECT_EQ(batched.delivery_hash, par_reference.delivery_hash)
          << to_string(topology) << " batched at " << lps
          << " LPs diverged from the unbatched engine";
      EXPECT_EQ(batched.delivered, par_reference.delivered)
          << to_string(topology) << " batched at " << lps << " LPs";
    }
  }
}

std::string variant_test_name(
    const testing::TestParamInfo<harness::TcpVariant>& info) {
  std::string name = harness::to_string(info.param);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantBatchEquivalence,
                         testing::ValuesIn(harness::all_variants()),
                         variant_test_name);

// 200 fuzz seeds, batched vs unbatched, in 8 shards of 25 seeds each.
// The fuzz sampler exercises faulty links (loss, jitter, flaps,
// reconfiguration) and all four topologies — interleavings the clean
// matrix above cannot reach. Both sides of each comparison share the
// backend and LP count (rotated per seed for calendar/wheel/parallel
// coverage); only `batching` differs.
class FuzzSeedBatchEquivalence : public testing::TestWithParam<int> {};

TEST_P(FuzzSeedBatchEquivalence, BatchedMatchesUnbatched) {
  constexpr int kSeedsPerShard = 25;
  const std::uint64_t first =
      1 + static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard;
  for (std::uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    FuzzCase c = sample_fuzz_case(seed);
    c.backend = kBackends[seed % 3];
    c.par_lps = seed % 4 == 0 ? 4 : 0;
    FuzzCase unbatched = c;
    unbatched.batching = false;
    const FuzzResult ref = run_fuzz_case(unbatched);
    c.batching = true;
    const FuzzResult batched = run_fuzz_case(c);
    EXPECT_EQ(batched.delivery_hash, ref.delivery_hash)
        << "seed " << seed << " (" << describe(c) << ")";
    EXPECT_EQ(batched.delivered, ref.delivered) << "seed " << seed;
    EXPECT_EQ(batched.ok, ref.ok) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds1To200, FuzzSeedBatchEquivalence,
                         testing::Range(0, 8));

}  // namespace
}  // namespace tcppr::validate
