// Differential cross-validation for the telemetry sketches, and the
// zero-interference guarantee that makes them safe to deploy:
//
//   1. Sketch vs exact: run_fuzz_case with c.telemetry=true attaches taps
//      with the exact per-flow baseline and the InvariantChecker asserts
//      the declared error bounds every sweep. 200+ cells: 12 variants x
//      3 paper topologies x {1,2,4} LPs, plus 200 fuzz seeds rotated over
//      {heap, wheel} x {batched, unbatched}.
//   2. Hash identity: for the same case, the DeliveryHasher digest with
//      telemetry on must be byte-identical to the digest with telemetry
//      off. Observation must not perturb the simulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/scenarios.hpp"
#include "validate/fuzzer.hpp"

namespace tcppr::validate {
namespace {

FuzzResult run_with_telemetry(FuzzCase c, bool telemetry) {
  c.telemetry = telemetry;
  return run_fuzz_case(c);
}

// 12 variants x 3 paper topologies x {1, 2, 4} LPs, telemetry + exact
// baseline on, checker sweeps asserting the bounds throughout. Named
// *Parallel* so the TSan preset's ctest filter picks the matrix up.
class VariantTelemetryParallelMatrix
    : public testing::TestWithParam<harness::TcpVariant> {};

TEST_P(VariantTelemetryParallelMatrix, BoundsHoldAcrossTopologiesAndLps) {
  const FuzzCase::Topology topologies[] = {
      FuzzCase::Topology::kDumbbell,
      FuzzCase::Topology::kParkingLot,
      FuzzCase::Topology::kMultipath,
  };
  for (const auto topology : topologies) {
    FuzzCase c;
    c.topology = topology;
    c.flows = 1;
    c.variants = {GetParam()};
    c.duration_s = 2.0;
    c.telemetry = true;
    for (const int lps : {0, 1, 2, 4}) {  // 0 = legacy sequential engine
      c.par_lps = lps;
      const FuzzResult r = run_fuzz_case(c);
      EXPECT_TRUE(r.ok) << to_string(topology) << " at " << lps
                        << " LPs: " << r.first_violation;
      EXPECT_GT(r.delivered, 0u) << to_string(topology);
    }
  }
}

std::string variant_test_name(
    const testing::TestParamInfo<harness::TcpVariant>& info) {
  std::string name = harness::to_string(info.param);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantTelemetryParallelMatrix,
                         testing::ValuesIn(harness::all_variants()),
                         variant_test_name);

// 200 fuzz seeds with telemetry + exact baseline forced on, rotated over
// {heap, wheel} x {batched, unbatched} so every engine mode feeds the taps.
// Sharded into 8 parameterized cases so ctest -j spreads the work. The
// checker cross-validates sketch vs exact at every sweep; r.ok is the
// verdict.
class FuzzSeedTelemetryDifferential : public testing::TestWithParam<int> {};

TEST_P(FuzzSeedTelemetryDifferential, SketchMatchesExactWithinBounds) {
  constexpr int kSeedsPerShard = 25;
  const std::uint64_t first =
      1 + static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard;
  for (std::uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    FuzzCase c = sample_fuzz_case(seed);
    c.telemetry = true;
    c.backend = seed % 2 == 0 ? sim::SchedulerBackend::kBinaryHeap
                              : sim::SchedulerBackend::kTimingWheel;
    c.batching = seed % 4 < 2;
    const FuzzResult r = run_fuzz_case(c);
    EXPECT_TRUE(r.ok) << "seed " << seed << " (" << describe(c)
                      << "): " << r.first_violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds1To200, FuzzSeedTelemetryDifferential,
                         testing::Range(0, 8));

// Telemetry on vs off over the same case must produce byte-identical
// delivery streams: taps observe, they never perturb. Covers the clean
// paper topologies, faulty fuzz seeds, batched + unbatched, and the
// parallel engine's cross-shard injection path.
TEST(TelemetryHashIdentity, PaperTopologiesAllEngineModes) {
  const FuzzCase::Topology topologies[] = {
      FuzzCase::Topology::kDumbbell,
      FuzzCase::Topology::kParkingLot,
      FuzzCase::Topology::kMultipath,
  };
  for (const auto topology : topologies) {
    for (const bool batching : {true, false}) {
      for (const int lps : {0, 2, 4}) {
        FuzzCase c;
        c.topology = topology;
        c.flows = 2;
        c.variants = {harness::TcpVariant::kSack, harness::TcpVariant::kTcpPr};
        c.duration_s = 2.0;
        c.batching = batching;
        c.par_lps = lps;
        const FuzzResult off = run_with_telemetry(c, false);
        const FuzzResult on = run_with_telemetry(c, true);
        EXPECT_EQ(on.delivery_hash, off.delivery_hash)
            << to_string(topology) << " batching=" << batching << " lps="
            << lps << ": telemetry perturbed the delivery stream";
        EXPECT_EQ(on.delivered, off.delivered) << to_string(topology);
        EXPECT_TRUE(on.ok) << on.first_violation;
      }
    }
  }
}

TEST(TelemetryHashIdentity, FuzzSeedsWithFaults) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FuzzCase c = sample_fuzz_case(seed);
    const FuzzResult off = run_with_telemetry(c, false);
    const FuzzResult on = run_with_telemetry(c, true);
    EXPECT_EQ(on.delivery_hash, off.delivery_hash)
        << "seed " << seed << " (" << describe(c) << ")";
    EXPECT_EQ(on.delivered, off.delivered) << "seed " << seed;
    EXPECT_EQ(on.ok, off.ok) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tcppr::validate
