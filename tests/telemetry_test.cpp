// Golden-value tests for the link-tap reordering detectors (src/telemetry):
// hand-computed permutations through the sketch and the exact monitor, slot
// contention/eviction/retirement mechanics, count-min and heavy-reorderer
// behaviour, and the churn test — taps hold a constant byte budget while
// thousands of flows arrive and depart, each folded into the aggregate
// exactly once.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "harness/scenarios.hpp"
#include "stats/reorder.hpp"
#include "telemetry/reorder_tap.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/workload.hpp"

namespace tcppr::telemetry {
namespace {

TapConfig exact_config() {
  TapConfig cfg;
  cfg.exact_baseline = true;
  return cfg;
}

void feed(ReorderTap& tap, net::FlowId flow,
          const std::vector<net::SeqNo>& seqs) {
  for (const net::SeqNo s : seqs) tap.observe(flow, s);
}

// Sketch totals == hand-computed truth == exact-baseline totals. Every
// golden case runs on a collision-free tap, where the sketch must BE exact.
void expect_golden(const std::vector<net::SeqNo>& seqs,
                   std::uint64_t reordered, std::uint64_t displacement_sum,
                   net::SeqNo max_displacement) {
  ReorderTap tap(exact_config());
  feed(tap, /*flow=*/1, seqs);
  const ReorderTap::Totals t = tap.totals();
  EXPECT_EQ(t.data_packets, seqs.size());
  EXPECT_EQ(t.reordered, reordered);
  EXPECT_EQ(t.displacement_sum, displacement_sum);
  EXPECT_EQ(t.max_displacement, max_displacement);
  EXPECT_EQ(t.collisions, 0u);
  const ReorderTap::ExactTotals ex = tap.exact_totals();
  EXPECT_EQ(ex.total, seqs.size());
  EXPECT_EQ(ex.reordered, reordered);
  EXPECT_EQ(ex.extent_sum, static_cast<double>(displacement_sum));
  EXPECT_EQ(ex.max_extent, max_displacement);
}

TEST(ReorderTapGolden, IdentityPermutationIsClean) {
  std::vector<net::SeqNo> seqs(64);
  std::iota(seqs.begin(), seqs.end(), 0);
  expect_golden(seqs, /*reordered=*/0, /*displacement_sum=*/0,
                /*max_displacement=*/0);
}

TEST(ReorderTapGolden, AdjacentSwap) {
  // 0 2 1 3: the 1 arrives after the 2 — one event, displacement 1.
  expect_golden({0, 2, 1, 3}, 1, 1, 1);
}

TEST(ReorderTapGolden, KRotation) {
  // Rotation by k: k..n-1 then 0..k-1. The tail is one late burst — every
  // element displaced by (n-1) - i against the running max n-1.
  const net::SeqNo n = 16, k = 5;
  std::vector<net::SeqNo> seqs;
  for (net::SeqNo s = k; s < n; ++s) seqs.push_back(s);
  for (net::SeqNo s = 0; s < k; ++s) seqs.push_back(s);
  std::uint64_t sum = 0;
  for (net::SeqNo s = 0; s < k; ++s) {
    sum += static_cast<std::uint64_t>(n - 1 - s);
  }
  expect_golden(seqs, static_cast<std::uint64_t>(k), sum, n - 1);
}

TEST(ReorderTapGolden, ReversedBurst) {
  // In-order prefix 0..7, then 15..8: the 15 extends the max, the other
  // seven trail it by 1..7.
  std::vector<net::SeqNo> seqs = {0, 1, 2, 3, 4, 5, 6, 7};
  for (net::SeqNo s = 15; s >= 8; --s) seqs.push_back(s);
  expect_golden(seqs, 7, 1 + 2 + 3 + 4 + 5 + 6 + 7, 7);
}

TEST(ReorderTapGolden, IstrateAlmostSorted) {
  // Istrate's almost-sorted permutations: identity perturbed by disjoint
  // adjacent transpositions. Each swap is one unit-displacement event and
  // the restoration buffer never holds more than one segment.
  const std::vector<net::SeqNo> seqs = {1, 0, 3, 2, 5, 4, 7, 6, 8, 9};
  expect_golden(seqs, 4, 4, 1);

  ReorderTap tap(exact_config());
  feed(tap, 1, seqs);
  ASSERT_EQ(tap.exact_flows().size(), 1u);
  const stats::ReorderMonitor& mon = tap.exact_flows().begin()->second;
  EXPECT_TRUE(mon.complete());
  EXPECT_EQ(mon.max_buffer_occupancy(), 1u);
  // Displacement-density histogram: four unit displacements in bucket 1
  // ([1,2)), nothing anywhere else.
  const auto& hist = tap.displacement_histogram();
  EXPECT_EQ(hist[1], 4u);
  for (std::size_t b = 0; b < ReorderTap::kHistBuckets; ++b) {
    if (b != 1) EXPECT_EQ(hist[b], 0u) << "bucket " << b;
  }
}

TEST(ReorderTapGolden, DuplicateOfMaxCountsWithZeroDisplacement) {
  // A duplicate of the running max is "reordered" with extent 0 (matches
  // stats::ReorderMonitor) and lands in histogram bucket 0.
  ReorderTap tap(exact_config());
  feed(tap, 1, {0, 1, 1});
  const ReorderTap::Totals t = tap.totals();
  EXPECT_EQ(t.reordered, 1u);
  EXPECT_EQ(t.displacement_sum, 0u);
  EXPECT_EQ(t.max_displacement, 0);
  EXPECT_EQ(tap.displacement_histogram()[0], 1u);
}

TEST(ReorderTap, OnDeliverTracksDataAndCountsTheRest) {
  ReorderTap tap;
  net::Packet data;
  data.type = net::PacketType::kTcpData;
  data.tcp.flow = 3;
  data.tcp.seq = 0;
  tap.on_deliver(data);
  data.tcp.seq = 2;
  tap.on_deliver(data);
  data.tcp.seq = 1;
  tap.on_deliver(data);
  net::Packet ack;
  ack.type = net::PacketType::kTcpAck;
  ack.tcp.flow = 3;
  tap.on_deliver(ack);
  const ReorderTap::Totals t = tap.totals();
  EXPECT_EQ(t.data_packets, 3u);
  EXPECT_EQ(t.other_packets, 1u);
  EXPECT_EQ(t.reordered, 1u);
  EXPECT_EQ(t.displacement_sum, 1u);
}

TEST(ReorderTap, CountMinAndHeavyListBracketDetectedEvents) {
  ReorderTap tap(exact_config());
  // Flow 1: 10 reorder events (alternating high/low). Flow 2: 2 events.
  std::vector<net::SeqNo> heavy_seqs;
  for (net::SeqNo i = 0; i < 10; ++i) {
    heavy_seqs.push_back(2 * i + 1);
    heavy_seqs.push_back(2 * i);  // trails the new max by 1
  }
  feed(tap, 1, heavy_seqs);
  feed(tap, 2, {1, 0, 3, 2});
  const ReorderTap::Totals t = tap.totals();
  ASSERT_EQ(t.reordered, 12u);
  // Count-min never under-estimates a flow and never exceeds the tap-wide
  // detected total.
  EXPECT_GE(tap.cms_estimate(1), 10u);
  EXPECT_LE(tap.cms_estimate(1), t.reordered);
  EXPECT_GE(tap.cms_estimate(2), 2u);
  const auto heavy = tap.heavy_reorderers();
  ASSERT_GE(heavy.size(), 2u);
  EXPECT_EQ(heavy.front().flow, 1);  // heaviest first
  EXPECT_GE(heavy.front().estimate, 10u);
}

TEST(ReorderTap, SlotContentionNeverOverReports) {
  // 2 slots, 16 flows: collisions are unavoidable. Whatever the slot table
  // does under contention, the declared bounds hold against exact.
  TapConfig cfg = exact_config();
  cfg.flow_slots = 2;
  cfg.max_tenure = 2;
  ReorderTap tap(cfg);
  for (net::FlowId f = 1; f <= 16; ++f) {
    feed(tap, f, {0, 2, 1, 3});  // one reorder event per fully-tracked flow
  }
  const ReorderTap::Totals t = tap.totals();
  const ReorderTap::ExactTotals ex = tap.exact_totals();
  EXPECT_EQ(t.data_packets, 64u);
  EXPECT_EQ(ex.total, 64u);
  EXPECT_GT(t.collisions, 0u);
  EXPECT_LE(t.reordered, ex.reordered);
  EXPECT_LE(static_cast<double>(t.displacement_sum), ex.extent_sum);
  EXPECT_LE(t.max_displacement, ex.max_extent);
  EXPECT_EQ(t.folded_flows, t.evictions + t.retired_folds);
}

TEST(ReorderTap, TenureEvictionFoldsTheResident) {
  // max_tenure=1: the first colliding packet evicts the resident, whose
  // counters must survive in the folded aggregate.
  TapConfig cfg;
  cfg.flow_slots = 1;  // rounds to 2
  cfg.max_tenure = 1;
  ReorderTap tap(cfg);
  for (net::FlowId f = 1; f <= 8 && tap.totals().evictions == 0; ++f) {
    feed(tap, f, {0, 2, 1});  // one unit-displacement event each
  }
  const ReorderTap::Totals t = tap.totals();
  ASSERT_GT(t.evictions, 0u);
  // Folding moved counts, it didn't lose them: every fully-tracked flow's
  // event is still in the totals.
  EXPECT_EQ(t.reordered * 1, t.displacement_sum);
  EXPECT_EQ(t.folded_flows, t.evictions);
}

TEST(ReorderTap, RetireFoldsExactlyOnceAndIsIdempotent) {
  ReorderTap tap(exact_config());
  feed(tap, 5, {0, 3, 1, 2});  // two events: displacements 2 and 1
  const ReorderTap::Totals before = tap.totals();
  EXPECT_EQ(before.reordered, 2u);

  tap.retire_flow(5);
  tap.retire_flow(5);  // sender- and receiver-side teardown both report
  const ReorderTap::Totals after = tap.totals();
  EXPECT_EQ(after.reordered, before.reordered);
  EXPECT_EQ(after.displacement_sum, before.displacement_sum);
  EXPECT_EQ(after.max_displacement, before.max_displacement);
  EXPECT_EQ(after.retired_folds, 1u);
  EXPECT_EQ(after.evictions, 0u);
  EXPECT_EQ(tap.exact_retired_folds(), 1u);
  EXPECT_TRUE(tap.exact_flows().empty());
  // The exact side folded into the departed aggregate, not the void.
  const ReorderTap::ExactTotals ex = tap.exact_totals();
  EXPECT_EQ(ex.total, 4u);
  EXPECT_EQ(ex.reordered, 2u);
  // Retiring a flow the tap never saw is a no-op.
  tap.retire_flow(77);
  EXPECT_EQ(tap.totals().retired_folds, 1u);
}

TEST(ReorderTap, SketchBytesAreFixedAtConstruction) {
  TapConfig cfg;
  cfg.flow_slots = 64;
  cfg.cms_width = 512;
  ReorderTap tap(cfg);
  const std::size_t bytes = tap.sketch_bytes();
  EXPECT_GT(bytes, 0u);
  // 10k flows, several packets each: the sketch footprint must not move.
  for (net::FlowId f = 1; f <= 10000; ++f) {
    tap.observe(f, 1);
    tap.observe(f, 0);
  }
  EXPECT_EQ(tap.sketch_bytes(), bytes);
  EXPECT_EQ(tap.totals().data_packets, 20000u);
}

TEST(ReorderMonitor, OccupancyHistogramCountsPerArrival) {
  stats::ReorderMonitor mon(16);
  // 0: buffer empty (bucket 0). 2: one buffered (bucket 1). 1: gap filled,
  // buffer drains to empty (bucket 0).
  mon.on_arrival(0);
  mon.on_arrival(2);
  mon.on_arrival(1);
  const auto& occ = mon.occupancy_histogram();
  EXPECT_EQ(occ[0], 2u);
  EXPECT_EQ(occ[1], 1u);
  EXPECT_TRUE(mon.complete());
  EXPECT_EQ(mon.buffered_now(), 0u);
  EXPECT_EQ(mon.max_seen(), 2);
  EXPECT_EQ(mon.extent_sum(), 1.0);
  // Completeness implication: no open gap => the buffer never held more
  // than max_extent distinct segments.
  EXPECT_LE(mon.max_buffer_occupancy(),
            static_cast<std::size_t>(mon.max_extent()));

  stats::ReorderMonitor agg(16);
  mon.merge_into(agg);
  EXPECT_EQ(agg.occupancy_histogram()[0], 2u);
  EXPECT_EQ(agg.occupancy_histogram()[1], 1u);
  mon.reset();
  EXPECT_EQ(mon.occupancy_histogram()[0], 0u);
}

// ---------------------------------------------------------------------------
// Churn: taps under thousands of departing flows.

TEST(TelemetryChurn, TapsHoldByteBudgetAndFoldDeparturesExactlyOnce) {
  harness::DumbbellConfig cfg;
  cfg.pr_flows = 0;
  cfg.sack_flows = 0;
  cfg.bottleneck_bw_bps = 50e6;
  cfg.access_bw_bps = 200e6;
  cfg.bottleneck_queue = 500;
  cfg.access_queue = 1000;
  auto s = harness::make_dumbbell(cfg);

  TelemetryConfig tc;
  tc.tap.exact_baseline = true;
  Telemetry telemetry(s->network, tc);
  const std::size_t bytes_before = telemetry.sketch_bytes_per_tap();

  workload::WorkloadConfig wc;
  wc.kind = workload::WorkloadKind::kPoisson;
  wc.arrival_rate = 800;
  wc.min_segments = 2;
  wc.max_segments = 16;
  wc.quarantine = sim::Duration::millis(300);
  wc.reap_idle = sim::Duration::millis(150);
  wc.reap_sweep = sim::Duration::millis(50);
  workload::WorkloadEngine engine(*s, wc);
  engine.set_telemetry(&telemetry);
  engine.start();
  s->sched.run_until(sim::TimePoint::from_seconds(5));
  engine.stop();
  s->sched.run_until(sim::TimePoint::from_seconds(8));

  const workload::WorkloadStats ws = engine.stats();
  ASSERT_GT(ws.arrivals, 2000u);
  ASSERT_EQ(ws.active, 0u);

  // Constant memory at steady state: the sketch footprint is exactly what
  // it was before the first flow existed.
  EXPECT_EQ(telemetry.sketch_bytes_per_tap(), bytes_before);
  // Departures fanned out to the taps.
  EXPECT_GT(telemetry.retire_calls(), 0u);

  const ReorderTap::Totals agg = telemetry.aggregate();
  EXPECT_GT(agg.data_packets, 0u);
  EXPECT_GT(agg.retired_folds, 0u);
  EXPECT_EQ(agg.folded_flows, agg.evictions + agg.retired_folds);

  for (std::size_t i = 0; i < telemetry.tap_count(); ++i) {
    const ReorderTap& tap = telemetry.tap(i);
    const ReorderTap::Totals t = tap.totals();
    const ReorderTap::ExactTotals ex = tap.exact_totals();
    // Declared bounds hold through thousands of fold cycles.
    EXPECT_EQ(t.data_packets, ex.total) << "tap " << i;
    EXPECT_LE(t.reordered, ex.reordered) << "tap " << i;
    EXPECT_LE(static_cast<double>(t.displacement_sum), ex.extent_sum)
        << "tap " << i;
    // Exactly-once folding on the ground-truth side too: the exact map
    // holds only never-retired flows (static scenario flows, stragglers
    // whose close was still in flight), never an entry per flow ever seen.
    EXPECT_LT(tap.exact_flows().size(), 64u) << "tap " << i;
    // Every data packet the taps on the forward path saw is in the folded
    // + live exact totals exactly once (total is conserved by merge).
    EXPECT_EQ(ex.total, t.data_packets) << "tap " << i;
  }
}

}  // namespace
}  // namespace tcppr::telemetry
