// Tests for the Tahoe baseline and the TCP-DOOR related-work variant.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "harness/scenarios.hpp"
#include "tcp/door.hpp"
#include "tcp/tahoe.hpp"
#include "test_util.hpp"

namespace tcppr::tcp {
namespace {

using harness::TcpVariant;
using testutil::PathFixture;

void drop_first_tx_of(net::Link* link, std::set<net::SeqNo> targets) {
  auto counts = std::make_shared<std::map<net::SeqNo, int>>();
  link->set_drop_filter([counts, targets](const net::Packet& pkt) {
    if (pkt.type != net::PacketType::kTcpData) return false;
    if (!targets.contains(pkt.tcp.seq)) return false;
    return ++(*counts)[pkt.tcp.seq] == 1;
  });
}

TEST(Tahoe, CompletesCleanTransfer) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;
  auto* sender = f.add_flow(TcpVariant::kTahoe, 1, config);
  sender->set_data_source(std::make_unique<FixedDataSource>(300));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(20);
  EXPECT_TRUE(done);
  EXPECT_EQ(sender->stats().retransmissions, 0u);
}

TEST(Tahoe, LossSendsWindowBackToOne) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;
  auto* tahoe =
      dynamic_cast<TahoeSender*>(f.add_flow(TcpVariant::kTahoe, 1, config));
  ASSERT_NE(tahoe, nullptr);
  double cwnd_after_fr = -1;
  tahoe->set_cwnd_listener([&](sim::TimePoint, double w) {
    if (tahoe->stats().fast_retransmits == 1 && cwnd_after_fr < 0) {
      cwnd_after_fr = w;
    }
  });
  drop_first_tx_of(f.fwd, {50});
  tahoe->start();
  f.run_for(5);
  ASSERT_EQ(tahoe->stats().fast_retransmits, 1u);
  EXPECT_DOUBLE_EQ(cwnd_after_fr, 1.0);  // Tahoe: no fast recovery
  EXPECT_FALSE(tahoe->in_fast_recovery());
}

TEST(Tahoe, SlowerThanRenoAfterLoss) {
  const auto acked = [](TcpVariant v) {
    PathFixture f;
    tcp::TcpConfig config;
    config.max_cwnd = 30;
    auto* sender = f.add_flow(v, 1, config);
    drop_first_tx_of(f.fwd, {50, 300, 600});
    sender->start();
    f.run_for(10);
    return sender->stats().segments_acked;
  };
  EXPECT_LT(acked(TcpVariant::kTahoe), acked(TcpVariant::kReno));
}

TEST(Door, CleanPathBehavesLikeNewReno) {
  const auto run = [](TcpVariant v) {
    PathFixture f;
    tcp::TcpConfig config;
    config.max_cwnd = 30;
    auto* sender = f.add_flow(v, 1, config);
    sender->set_data_source(std::make_unique<FixedDataSource>(400));
    sender->start();
    f.run_for(20);
    return sender->stats().segments_acked;
  };
  EXPECT_EQ(run(TcpVariant::kDoor), run(TcpVariant::kNewReno));
}

TEST(Door, DetectsOutOfOrderEvents) {
  harness::MultipathConfig config;
  config.variant = TcpVariant::kDoor;
  config.epsilon = 0;
  config.tcp.max_cwnd = 50;
  auto scenario = harness::make_multipath(config);
  scenario->sched.run_until(sim::TimePoint::from_seconds(10));
  auto* door = dynamic_cast<DoorSender*>(scenario->senders[0].get());
  ASSERT_NE(door, nullptr);
  EXPECT_GT(door->ooo_events(), 100u);
}

TEST(Door, BeatsNewRenoUnderReordering) {
  const auto goodput = [](TcpVariant v) {
    harness::MultipathConfig config;
    config.variant = v;
    config.epsilon = 0;
    config.tcp.max_cwnd = 100;
    auto scenario = harness::make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(15));
    return scenario->receivers[0]->stats().goodput_bytes;
  };
  EXPECT_GT(goodput(TcpVariant::kDoor), goodput(TcpVariant::kNewReno));
}

TEST(Door, StillLosesToTcpPrUnderPersistentReordering) {
  // DOOR recovers from occasional reordering but, per the paper's thesis,
  // ordering-based detection keeps misfiring when reordering never stops.
  const auto goodput = [](TcpVariant v) {
    harness::MultipathConfig config;
    config.variant = v;
    config.epsilon = 0;
    config.tcp.max_cwnd = 100;
    auto scenario = harness::make_multipath(config);
    scenario->sched.run_until(sim::TimePoint::from_seconds(15));
    return scenario->receivers[0]->stats().goodput_bytes;
  };
  EXPECT_GT(goodput(TcpVariant::kTcpPr), goodput(TcpVariant::kDoor));
}

TEST(Door, InstantRecoveryRestoresWindow) {
  // Force a spurious-looking reduction via reordering and check the
  // recorded OOO response restored cwnd at least once: observable as DOOR
  // reaching clearly higher cwnd than plain NewReno in the same scenario.
  const auto peak_cwnd = [](TcpVariant v) {
    harness::MultipathConfig config;
    config.variant = v;
    config.epsilon = 1.0;
    config.tcp.max_cwnd = 200;
    auto scenario = harness::make_multipath(config);
    double peak = 0;
    scenario->senders[0]->set_cwnd_listener(
        [&](sim::TimePoint, double w) { peak = std::max(peak, w); });
    scenario->sched.run_until(sim::TimePoint::from_seconds(12));
    return peak;
  };
  EXPECT_GE(peak_cwnd(TcpVariant::kDoor), peak_cwnd(TcpVariant::kNewReno));
}

}  // namespace
}  // namespace tcppr::tcp
