// Cross-module integration tests: end-to-end reproductions (scaled down)
// of the paper's qualitative claims, exercised through the public API the
// way the benches do.
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "test_util.hpp"

namespace tcppr {
namespace {

using harness::DumbbellConfig;
using harness::MeasurementWindow;
using harness::MultipathConfig;
using harness::ParkingLotConfig;
using harness::RunResult;
using harness::TcpVariant;

MeasurementWindow short_window(double total, double measured) {
  MeasurementWindow w;
  w.total = sim::Duration::seconds(total);
  w.measured = sim::Duration::seconds(measured);
  return w;
}

TEST(Integration, DumbbellFairnessPrVsSack) {
  // Scaled-down Figure 2: equal numbers of PR and SACK flows must end up
  // with mean normalized throughput near 1 for both protocols.
  DumbbellConfig config;
  config.pr_flows = 4;
  config.sack_flows = 4;
  config.seed = 3;
  auto scenario = harness::make_dumbbell(config);
  const RunResult result = run_scenario(*scenario, short_window(60, 30));
  EXPECT_NEAR(result.mean_normalized(TcpVariant::kTcpPr), 1.0, 0.35);
  EXPECT_NEAR(result.mean_normalized(TcpVariant::kSack), 1.0, 0.35);
  EXPECT_GT(result.loss_rate, 0.0);  // the bottleneck was actually loaded
}

TEST(Integration, DumbbellBandwidthFullyUtilized) {
  DumbbellConfig config;
  config.pr_flows = 2;
  config.sack_flows = 2;
  auto scenario = harness::make_dumbbell(config);
  const RunResult result = run_scenario(*scenario, short_window(40, 20));
  double total = 0;
  for (const auto& flow : result.flows) total += flow.throughput_bps;
  EXPECT_GT(total, 0.85 * config.bottleneck_bw_bps);
  EXPECT_LT(total, 1.05 * config.bottleneck_bw_bps);
}

TEST(Integration, PrOnlyDumbbellSharesEqually) {
  DumbbellConfig config;
  config.pr_flows = 4;
  config.sack_flows = 0;
  auto scenario = harness::make_dumbbell(config);
  const RunResult result = run_scenario(*scenario, short_window(60, 30));
  EXPECT_LT(result.cov(TcpVariant::kTcpPr), 0.5);
}

TEST(Integration, ParkingLotFairness) {
  ParkingLotConfig config;
  config.pr_flows = 2;
  config.sack_flows = 2;
  config.seed = 11;
  auto scenario = harness::make_parking_lot(config);
  const RunResult result = run_scenario(*scenario, short_window(60, 30));
  EXPECT_NEAR(result.mean_normalized(TcpVariant::kTcpPr), 1.0, 0.45);
  EXPECT_NEAR(result.mean_normalized(TcpVariant::kSack), 1.0, 0.45);
}

TEST(Integration, MultipathOrderingFigure6Shape) {
  // The qualitative Figure 6 ordering at epsilon=0, 10 ms links:
  // TCP-PR clearly on top; the mitigations clearly above plain SACK.
  const auto cell = [](TcpVariant v) {
    MultipathConfig config;
    config.variant = v;
    config.epsilon = 0;
    return run_multipath_cell(config, MeasurementWindow{
        sim::Duration::seconds(30), sim::Duration::seconds(20)});
  };
  const double pr = cell(TcpVariant::kTcpPr).goodput_bps;
  const double sack = cell(TcpVariant::kSack).goodput_bps;
  const double incn = cell(TcpVariant::kIncByN).goodput_bps;
  EXPECT_GT(pr, 2.0 * sack);
  EXPECT_GT(pr, incn);
  EXPECT_GT(incn, sack);
}

TEST(Integration, MultipathEpsilon500AllEquivalent) {
  // Single-path routing: every variant reaches the same single-link rate.
  std::vector<double> rates;
  for (const TcpVariant v : {TcpVariant::kTcpPr, TcpVariant::kSack,
                             TcpVariant::kTdFr, TcpVariant::kIncByN}) {
    MultipathConfig config;
    config.variant = v;
    config.epsilon = 500;
    // Long enough that slow-start transients do not dominate the window.
    const auto cell = run_multipath_cell(
        config, MeasurementWindow{sim::Duration::seconds(60),
                                  sim::Duration::seconds(30)});
    rates.push_back(cell.goodput_bps);
  }
  for (const double r : rates) {
    EXPECT_NEAR(r / rates[0], 1.0, 0.15);
  }
  // And each saturates most of the 10 Mbps path.
  EXPECT_GT(rates[0], 8e6);
}

TEST(Integration, TdFrDegradesWithLongerDelay) {
  // Figure 6's right plot: TD-FR's usefulness collapses at 60 ms link
  // delays while TCP-PR holds up. Measured at eps=4 (mild multi-path),
  // where TD-FR is at its best, and eps=0 for the TCP-PR comparison.
  const auto goodput = [](TcpVariant v, double eps, double delay_ms) {
    MultipathConfig config;
    config.variant = v;
    config.epsilon = eps;
    config.link_delay = sim::Duration::millis(delay_ms);
    // The 60 ms mesh has a huge aggregate BDP; measure after convergence.
    return run_multipath_cell(
               config, MeasurementWindow{sim::Duration::seconds(120),
                                         sim::Duration::seconds(40)})
        .goodput_bps;
  };
  const double tdfr_10 = goodput(TcpVariant::kTdFr, 4, 10);
  const double tdfr_60 = goodput(TcpVariant::kTdFr, 4, 60);
  EXPECT_LT(tdfr_60, 0.5 * tdfr_10);  // latency guts TD-FR
  const double tdfr_60_full = goodput(TcpVariant::kTdFr, 0, 60);
  const double pr_60_full = goodput(TcpVariant::kTcpPr, 0, 60);
  EXPECT_GT(pr_60_full, 2.0 * tdfr_60_full);  // and PR keeps a clear lead
}

TEST(Integration, RouteFlapReordering) {
  // Extension scenario: route flapping between two unequal paths; TCP-PR
  // must beat plain SACK.
  const auto goodput = [](TcpVariant variant) {
    auto scenario = std::make_unique<harness::Scenario>();
    net::Network& nw = scenario->network;
    const auto src = nw.add_node();
    const auto dst = nw.add_node();
    net::LinkConfig link;
    link.bandwidth_bps = 10e6;
    link.delay = sim::Duration::millis(10);
    // Path A: one relay; path B: three relays.
    routing::PathSet paths;
    paths.src = src;
    paths.dst = dst;
    net::NodeId prev = src;
    std::vector<net::NodeId> pa{src};
    for (int i = 0; i < 1; ++i) {
      const auto r = nw.add_node();
      nw.add_duplex_link(prev, r, link);
      pa.push_back(r);
      prev = r;
    }
    nw.add_duplex_link(prev, dst, link);
    pa.push_back(dst);
    prev = src;
    std::vector<net::NodeId> pb{src};
    for (int i = 0; i < 3; ++i) {
      const auto r = nw.add_node();
      nw.add_duplex_link(prev, r, link);
      pb.push_back(r);
      prev = r;
    }
    nw.add_duplex_link(prev, dst, link);
    pb.push_back(dst);
    paths.paths = {pa, pb};
    paths.costs = {2, 4};
    nw.compute_static_routes();
    auto policy = std::make_unique<routing::RouteFlapPolicy>(
        scenario->sched, paths, sim::Duration::millis(200));
    nw.node(src).set_source_routing_policy(policy.get());
    scenario->policies.push_back(std::move(policy));
    scenario->add_flow(variant, src, dst, 1, tcp::TcpConfig{},
                       core::TcpPrConfig{}, sim::TimePoint::origin());
    scenario->sched.run_until(sim::TimePoint::from_seconds(20));
    return static_cast<double>(
        scenario->receivers[0]->stats().goodput_bytes);
  };
  EXPECT_GT(goodput(TcpVariant::kTcpPr), 1.2 * goodput(TcpVariant::kSack));
}

TEST(Integration, ManyFlowsDumbbellStaysStable) {
  // Stress: 16 + 16 flows; conservation and stability checks.
  DumbbellConfig config;
  config.pr_flows = 16;
  config.sack_flows = 16;
  auto scenario = harness::make_dumbbell(config);
  const RunResult result = run_scenario(*scenario, short_window(50, 20));
  double total = 0;
  for (const auto& flow : result.flows) {
    total += flow.throughput_bps;
    // Receiver can never have delivered more than the sender sent.
    EXPECT_LE(flow.receiver.goodput_bytes / 1000,
              flow.sender.data_packets_sent);
  }
  EXPECT_LT(total, 1.05 * config.bottleneck_bw_bps);
  EXPECT_GT(total, 0.7 * config.bottleneck_bw_bps);
}

}  // namespace
}  // namespace tcppr
