// Behavioural tests for the Reno and NewReno senders on a controlled
// source-router-destination path with deterministic drop injection.
#include <gtest/gtest.h>

#include <map>

#include "tcp/reno.hpp"
#include "test_util.hpp"

namespace tcppr::tcp {
namespace {

using harness::TcpVariant;
using testutil::PathFixture;

// Drops the first transmission of each sequence number in `seqs`.
void drop_first_tx_of(net::Link* link, std::initializer_list<net::SeqNo> seqs) {
  auto counts = std::make_shared<std::map<net::SeqNo, int>>();
  std::set<net::SeqNo> targets(seqs);
  link->set_drop_filter([counts, targets](const net::Packet& pkt) {
    if (pkt.type != net::PacketType::kTcpData) return false;
    if (!targets.contains(pkt.tcp.seq)) return false;
    return ++(*counts)[pkt.tcp.seq] == 1;
  });
}

TEST(Reno, CompletesFixedTransferWithoutLoss) {
  PathFixture f;
  auto* sender = f.add_flow(TcpVariant::kReno, 1);
  sender->set_data_source(std::make_unique<FixedDataSource>(200));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(30);
  EXPECT_TRUE(done);
  EXPECT_EQ(sender->stats().segments_acked, 200);
  EXPECT_EQ(sender->stats().retransmissions, 0u);
  EXPECT_EQ(f.receiver()->stats().duplicates, 0u);
}

TEST(Reno, SlowStartDoublesWindowPerRtt) {
  PathFixture f(100e6, sim::Duration::millis(50));
  auto* sender = f.add_flow(TcpVariant::kReno, 1);
  sender->start();
  // ~5 RTTs of ~102ms: cwnd should have grown far beyond initial.
  f.run_for(0.55);
  EXPECT_GE(sender->cwnd(), 16.0);
}

TEST(Reno, FastRetransmitOnTripleDupack) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;  // below the queue limit: no self-induced losses
  auto* sender = f.add_flow(TcpVariant::kReno, 1, config);
  drop_first_tx_of(f.fwd, {30});
  sender->start();
  f.run_for(10);
  EXPECT_EQ(sender->stats().fast_retransmits, 1u);
  EXPECT_EQ(sender->stats().timeouts, 0u);
  EXPECT_EQ(sender->stats().retransmissions, 1u);
  // The flow keeps making progress after recovery.
  EXPECT_GT(sender->stats().segments_acked, 100);
}

TEST(Reno, WindowHalvedAfterLoss) {
  PathFixture f;
  auto* reno = dynamic_cast<RenoSender*>(f.add_flow(TcpVariant::kReno, 1));
  ASSERT_NE(reno, nullptr);
  double cwnd_before_loss = 0;
  reno->set_cwnd_listener([&](sim::TimePoint, double w) {
    if (reno->stats().fast_retransmits == 0) cwnd_before_loss = w;
  });
  drop_first_tx_of(f.fwd, {50});
  reno->start();
  f.run_for(5);
  ASSERT_EQ(reno->stats().fast_retransmits, 1u);
  EXPECT_LT(reno->ssthresh(), cwnd_before_loss);
}

TEST(Reno, TimeoutWhenAllAcksLost) {
  PathFixture f;
  auto* sender = f.add_flow(TcpVariant::kReno, 1);
  // Black-hole the data path entirely after 1 s.
  f.sched.schedule_at(sim::TimePoint::from_seconds(1.0), [&] {
    f.fwd->set_drop_filter([](const net::Packet&) { return true; });
  });
  f.sched.schedule_at(sim::TimePoint::from_seconds(6.0), [&] {
    f.fwd->set_drop_filter(nullptr);
  });
  sender->start();
  f.run_for(20);
  EXPECT_GE(sender->stats().timeouts, 1u);
  // Recovers and finishes more data after the outage.
  EXPECT_GT(sender->stats().segments_acked, 500);
}

TEST(Reno, ExponentialBackoffUnderPersistentOutage) {
  PathFixture f;
  auto* reno = dynamic_cast<RenoSender*>(f.add_flow(TcpVariant::kReno, 1));
  f.fwd->set_drop_filter([](const net::Packet&) { return true; });
  reno->start();
  f.run_for(30);
  EXPECT_GE(reno->stats().timeouts, 3u);
  EXPECT_GE(reno->rto_estimator().backoff_multiplier(), 8);
}

TEST(Reno, RecoversFromAckPathLoss) {
  PathFixture f;
  auto* sender = f.add_flow(TcpVariant::kReno, 1);
  f.rev->set_loss_model(0.2, sim::Rng(5));  // drop 20% of ACKs
  sender->start();
  f.run_for(20);
  // Cumulative ACKs make ACK loss mostly harmless.
  EXPECT_GT(sender->stats().segments_acked, 5000);
}

TEST(NewReno, HandlesMultipleDropsInOneWindowWithoutTimeout) {
  PathFixture f;
  auto* sender = f.add_flow(TcpVariant::kNewReno, 1);
  drop_first_tx_of(f.fwd, {40, 42, 44});
  sender->start();
  f.run_for(15);
  EXPECT_EQ(sender->stats().timeouts, 0u);
  EXPECT_GE(sender->stats().retransmissions, 3u);
  EXPECT_GT(sender->stats().segments_acked, 1000);
}

TEST(NewReno, SingleHalvingForBurstInOneWindow) {
  PathFixture f;
  tcp::TcpConfig config;
  config.max_cwnd = 30;
  auto* sender = f.add_flow(TcpVariant::kNewReno, 1, config);
  drop_first_tx_of(f.fwd, {60, 61, 62});
  sender->start();
  f.run_for(10);
  EXPECT_EQ(sender->stats().cwnd_halvings, 1u);
}

TEST(NewReno, CompletesUnderRandomLoss) {
  PathFixture f;
  auto* sender = f.add_flow(TcpVariant::kNewReno, 1);
  f.fwd->set_loss_model(0.02, sim::Rng(7));
  sender->set_data_source(std::make_unique<FixedDataSource>(2000));
  bool done = false;
  sender->set_completion_callback([&] { done = true; });
  sender->start();
  f.run_for(120);
  EXPECT_TRUE(done);
  EXPECT_EQ(f.receiver()->rcv_next(), 2000);
}

}  // namespace
}  // namespace tcppr::tcp
