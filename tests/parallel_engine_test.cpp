// Parallel execution mode: the only property that matters is that the
// parallel run is *byte-identical* to the one-shard run. Every test here
// builds the same scenario several times — through harness::ParallelSim at
// different LP counts, plus (where event ties permit) the legacy
// sequential scheduler — and compares the DeliveryHasher digest (an
// order-sensitive FNV fold over every delivery event), so a single
// reordered, missing or duplicated delivery fails the run.
//
// Baselines: the canonical trajectory is the stamped single-shard run
// (lps = 1) — stamp order is partition-independent, so every LP count must
// reproduce it exactly. The legacy unstamped scheduler coincides with it
// except when two nodes schedule same-target-time events within the same
// nanosecond; topologies with distinct per-hop delays (dumbbell) are free
// of such coincidences and also assert canonical == legacy, while
// equal-delay topologies (multipath) compare against the canonical run
// only.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "harness/parallel_run.hpp"
#include "harness/partition.hpp"
#include "harness/scenarios.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "validate/determinism.hpp"
#include "validate/fuzzer.hpp"
#include "validate/invariants.hpp"

namespace tcppr {
namespace {

using harness::ParallelRunConfig;
using harness::ParallelSim;
using harness::Scenario;
using harness::TcpVariant;
using validate::DeliveryHasher;

struct RunDigest {
  std::uint64_t hash = 0;
  std::uint64_t delivered = 0;
  int realized_lps = 1;
};

// Runs `scenario` to `end` and digests its delivery stream; lps == 0 runs
// the legacy sequential scheduler, lps >= 1 runs through ParallelSim
// (stamped shards; one shard still sequential).
RunDigest run_and_digest(std::unique_ptr<Scenario> scenario,
                         sim::TimePoint end, int lps) {
  RunDigest out;
  DeliveryHasher hasher;
  scenario->network.add_trace_sink(&hasher);
  if (lps == 0) {
    scenario->sched.run_until(end);
  } else {
    ParallelRunConfig pc;
    pc.lps = lps;
    ParallelSim psim(*scenario, pc);
    out.realized_lps = psim.lp_count();
    psim.run_until(end);
  }
  out.hash = hasher.hash();
  out.delivered = hasher.delivered();
  return out;
}

// ---------------------------------------------------------------------------
// Scheduler::next_deadline across backends

TEST(NextDeadline, AgreesAcrossBackendsOnRandomizedSchedule) {
  const sim::SchedulerBackend backends[] = {
      sim::SchedulerBackend::kBinaryHeap,
      sim::SchedulerBackend::kCalendarQueue,
      sim::SchedulerBackend::kTimingWheel,
  };
  std::vector<std::unique_ptr<sim::Scheduler>> scheds;
  for (const auto b : backends) {
    scheds.push_back(std::make_unique<sim::Scheduler>(b));
  }

  // Same randomized schedule into all three; some events cancelled, some
  // events schedule more events (exercising the lazy stale-skip inside
  // next_deadline and deadlines discovered mid-run).
  sim::Rng rng(7);
  std::vector<std::int64_t> times;
  std::vector<std::size_t> cancel_picks;
  for (int i = 0; i < 300; ++i) {
    times.push_back(static_cast<std::int64_t>(rng.uniform(0.0, 5e8)));
    if (i % 7 == 0) cancel_picks.push_back(static_cast<std::size_t>(i));
  }
  int fired[3] = {0, 0, 0};
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::vector<sim::EventId> ids;
    for (const auto t : times) {
      ids.push_back(scheds[s]->schedule_at(
          sim::TimePoint::from_nanos(t), [&fired, s] { ++fired[s]; }));
    }
    for (const auto pick : cancel_picks) scheds[s]->cancel(ids[pick]);
  }

  // Drain in lockstep: deadlines must agree before every step.
  for (;;) {
    const std::optional<sim::TimePoint> d0 = scheds[0]->next_deadline();
    for (std::size_t s = 1; s < scheds.size(); ++s) {
      const auto ds = scheds[s]->next_deadline();
      ASSERT_EQ(d0.has_value(), ds.has_value());
      if (d0) {
        ASSERT_EQ(d0->as_nanos(), ds->as_nanos());
      }
    }
    if (!d0) break;
    for (auto& sched : scheds) sched->run_until(*d0);
  }
  EXPECT_EQ(fired[0], fired[1]);
  EXPECT_EQ(fired[0], fired[2]);
  EXPECT_EQ(fired[0], 300 - static_cast<int>(cancel_picks.size()));
}

// ---------------------------------------------------------------------------
// Partitioner

TEST(Partition, DumbbellSplitsAcrossPositiveLookaheadCuts) {
  harness::DumbbellConfig cfg;
  auto s = harness::make_dumbbell(cfg);
  harness::PartitionConfig pc;
  pc.target_lps = 2;
  const harness::Partition part(s->network, pc);
  ASSERT_EQ(part.lp_count(), 2);
  EXPECT_FALSE(part.cut_links().empty());
  for (const net::Link* cut : part.cut_links()) {
    EXPECT_GT(cut->prop_delay().as_nanos(), 0);
    EXPECT_NE(part.lp_of(cut->from()), part.lp_of(cut->to()));
  }
}

TEST(Partition, ZeroDelayLinksAreNeverCut) {
  Scenario s;
  net::Network& nw = s.network;
  const auto a = nw.add_node();
  const auto b = nw.add_node();
  const auto c = nw.add_node();
  net::LinkConfig zero;
  zero.bandwidth_bps = 10e6;
  zero.delay = sim::Duration::zero();
  nw.add_duplex_link(a, b, zero);
  net::LinkConfig pos = zero;
  pos.delay = sim::Duration::millis(5);
  nw.add_duplex_link(b, c, pos);
  nw.compute_static_routes();

  harness::PartitionConfig pc;
  pc.target_lps = 3;
  const harness::Partition part(nw, pc);
  EXPECT_EQ(part.lp_of(a), part.lp_of(b));  // contracted
  EXPECT_EQ(part.lp_count(), 2);
}

TEST(Partition, SingleLpFallbackWhenNoCutExists) {
  Scenario s;
  net::Network& nw = s.network;
  const auto a = nw.add_node();
  const auto b = nw.add_node();
  net::LinkConfig zero;
  zero.bandwidth_bps = 10e6;
  zero.delay = sim::Duration::zero();
  nw.add_duplex_link(a, b, zero);
  nw.compute_static_routes();

  harness::PartitionConfig pc;
  pc.target_lps = 4;
  const harness::Partition part(nw, pc);
  EXPECT_EQ(part.lp_count(), 1);
  EXPECT_TRUE(part.cut_links().empty());

  // And ParallelSim degrades to the sequential scheduler.
  ParallelRunConfig rc;
  rc.lps = 4;
  ParallelSim psim(s, rc);
  EXPECT_FALSE(psim.parallel());
  psim.run_until(sim::TimePoint::from_seconds(0.1));
}

// ---------------------------------------------------------------------------
// Variant x topology equivalence matrix

enum class Topo { kDumbbell, kParkingLot, kMultipath };

std::unique_ptr<Scenario> build_topo(Topo topo, TcpVariant variant) {
  switch (topo) {
    case Topo::kDumbbell: {
      harness::DumbbellConfig cfg;
      cfg.pr_flows = 0;
      cfg.sack_flows = 0;
      auto s = harness::make_dumbbell(cfg);
      // Two flows of the variant under test plus one SACK competitor.
      s->add_flow(variant, s->src_host, s->dst_host, 1, cfg.tcp, cfg.pr,
                  sim::TimePoint::origin());
      s->add_flow(variant, s->src_host, s->dst_host, 2, cfg.tcp, cfg.pr,
                  sim::TimePoint::from_seconds(0.2));
      s->add_flow(TcpVariant::kSack, s->src_host, s->dst_host, 3, cfg.tcp,
                  cfg.pr, sim::TimePoint::from_seconds(0.4));
      return s;
    }
    case Topo::kParkingLot: {
      harness::ParkingLotConfig cfg;
      cfg.pr_flows = 0;
      cfg.sack_flows = 0;
      cfg.with_cross_traffic = true;
      auto s = harness::make_parking_lot(cfg);
      s->add_flow(variant, s->src_host, s->dst_host, 50, cfg.tcp, cfg.pr,
                  sim::TimePoint::origin());
      return s;
    }
    case Topo::kMultipath: {
      harness::MultipathConfig cfg;
      cfg.variant = variant;
      cfg.epsilon = 1;
      return harness::make_multipath(cfg);
    }
  }
  return nullptr;
}

class ParallelMatrix
    : public ::testing::TestWithParam<std::tuple<TcpVariant, Topo>> {};

TEST_P(ParallelMatrix, ParallelDigestMatchesCanonicalOneShardRun) {
  const auto [variant, topo] = GetParam();
  const auto end = sim::TimePoint::from_seconds(3.0);
  const RunDigest seq = run_and_digest(build_topo(topo, variant), end, 1);
  ASSERT_GT(seq.delivered, 0u);
  if (topo != Topo::kMultipath) {
    // Distinct per-hop delays: no same-nanosecond cross-node ties, so the
    // canonical run must also equal the legacy sequential scheduler.
    const RunDigest legacy = run_and_digest(build_topo(topo, variant), end, 0);
    EXPECT_EQ(seq.hash, legacy.hash) << "canonical vs legacy";
    EXPECT_EQ(seq.delivered, legacy.delivered);
  }
  for (const int lps : {2, 4}) {
    const RunDigest par = run_and_digest(build_topo(topo, variant), end, lps);
    EXPECT_GT(par.realized_lps, 1) << "partition degenerated";
    EXPECT_EQ(par.delivered, seq.delivered) << "lps=" << lps;
    EXPECT_EQ(par.hash, seq.hash) << "lps=" << lps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParallelMatrix,
    ::testing::Combine(::testing::ValuesIn(harness::all_variants()),
                       ::testing::Values(Topo::kDumbbell, Topo::kParkingLot,
                                         Topo::kMultipath)));

// ---------------------------------------------------------------------------
// Many-flow scale path

TEST(ParallelManyFlows, DumbbellDigestMatchesSequentialAtEveryLpCount) {
  const auto make = [] {
    harness::ManyFlowsConfig cfg;
    cfg.flows = 64;
    cfg.seed = 3;
    return harness::make_many_flows(cfg);
  };
  const auto end = sim::TimePoint::from_seconds(2.0);
  const RunDigest seq = run_and_digest(make(), end, 0);  // legacy sequential
  ASSERT_GT(seq.delivered, 0u);
  for (const int lps : {1, 2, 4, 8}) {
    const RunDigest par = run_and_digest(make(), end, lps);
    EXPECT_EQ(par.hash, seq.hash) << "lps=" << lps;
    EXPECT_EQ(par.delivered, seq.delivered) << "lps=" << lps;
  }
}

TEST(ParallelManyFlows, RandomGraphDigestMatchesCanonicalOneShardRun) {
  const auto make = [] {
    harness::ManyFlowsConfig cfg;
    cfg.topology = harness::ManyFlowsConfig::Topology::kRandomGraph;
    cfg.flows = 32;
    cfg.seed = 11;
    return harness::make_many_flows(cfg);
  };
  const auto end = sim::TimePoint::from_seconds(2.0);
  const RunDigest seq = run_and_digest(make(), end, 1);
  ASSERT_GT(seq.delivered, 0u);
  for (const int lps : {2, 4}) {
    const RunDigest par = run_and_digest(make(), end, lps);
    EXPECT_GT(par.realized_lps, 1);
    EXPECT_EQ(par.hash, seq.hash) << "lps=" << lps;
    EXPECT_EQ(par.delivered, seq.delivered) << "lps=" << lps;
  }
}

// ---------------------------------------------------------------------------
// Invariants under parallel execution (conservation swept at barriers)

TEST(ParallelInvariants, CheckerIsCleanAtBarriersAndTeardown) {
  harness::DumbbellConfig cfg;
  cfg.pr_flows = 2;
  cfg.sack_flows = 2;
  auto s = harness::make_dumbbell(cfg);
  validate::InvariantChecker checker(*s);
  ParallelRunConfig pc;
  pc.lps = 4;
  ParallelSim psim(*s, pc);
  ASSERT_TRUE(psim.parallel());
  psim.set_checker(&checker);
  psim.run_until(sim::TimePoint::from_seconds(3.0));
  checker.finalize();
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.sweeps(), 1u);
  EXPECT_GT(psim.windows(), 0u);
  EXPECT_GT(psim.exchanged(), 0u);
}

// ---------------------------------------------------------------------------
// Fuzz equivalence: sampled adversarial cases (loss, jitter, flapping,
// mid-run reconfiguration, all four topologies) must digest identically
// at 2 and 4 LPs. The full 100-seed campaign lives in the fuzz test
// below; a reduced sweep keeps the default ctest run fast.

void expect_seed_equivalent(std::uint64_t seed, int lps) {
  validate::FuzzCase c = validate::sample_fuzz_case(seed);
  c.par_lps = 1;  // canonical one-shard baseline (ties keyed by node)
  const validate::FuzzResult seq = validate::run_fuzz_case(c);
  EXPECT_TRUE(seq.ok) << "seed " << seed << ": " << seq.first_violation;
  c.par_lps = lps;
  const validate::FuzzResult par = validate::run_fuzz_case(c);
  EXPECT_TRUE(par.ok) << "seed " << seed << " lps " << lps << ": "
                      << par.first_violation;
  EXPECT_EQ(par.delivery_hash, seq.delivery_hash)
      << "seed " << seed << " lps " << lps << " ("
      << validate::describe(c) << ")";
  EXPECT_EQ(par.delivered, seq.delivered) << "seed " << seed;
}

TEST(ParallelFuzz, HundredSeedsMatchSequentialAtTwoAndFourLps) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    expect_seed_equivalent(seed, seed % 2 == 0 ? 2 : 4);
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping at first divergent seed " << seed;
    }
  }
}

}  // namespace
}  // namespace tcppr
