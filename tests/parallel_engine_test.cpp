// Parallel execution mode: the only property that matters is that the
// parallel run is *byte-identical* to the one-shard run. Every test here
// builds the same scenario several times — through harness::ParallelSim at
// different LP counts, plus (where event ties permit) the legacy
// sequential scheduler — and compares the DeliveryHasher digest (an
// order-sensitive FNV fold over every delivery event), so a single
// reordered, missing or duplicated delivery fails the run.
//
// Baselines: the canonical trajectory is the stamped single-shard run
// (lps = 1) — stamp order is partition-independent, so every LP count must
// reproduce it exactly. The legacy unstamped scheduler coincides with it
// except when two nodes schedule same-target-time events within the same
// nanosecond; topologies with distinct per-hop delays (dumbbell) are free
// of such coincidences and also assert canonical == legacy, while
// equal-delay topologies (multipath) compare against the canonical run
// only.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "harness/parallel_run.hpp"
#include "harness/partition.hpp"
#include "harness/scenarios.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "validate/determinism.hpp"
#include "validate/fuzzer.hpp"
#include "validate/invariants.hpp"

namespace tcppr {
namespace {

using harness::ParallelRunConfig;
using harness::ParallelSim;
using harness::Scenario;
using harness::TcpVariant;
using validate::DeliveryHasher;

struct RunDigest {
  std::uint64_t hash = 0;
  std::uint64_t delivered = 0;
  int realized_lps = 1;
  std::uint64_t windows = 0;
  std::uint64_t spec_windows = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t repartitions = 0;
};

enum class Mode { kConservative, kAdaptive, kOptimistic, kAdaptiveOptimistic };

ParallelRunConfig mode_config(Mode mode, int lps) {
  ParallelRunConfig pc;
  pc.lps = lps;
  pc.adaptive = mode == Mode::kAdaptive || mode == Mode::kAdaptiveOptimistic;
  pc.optimistic =
      mode == Mode::kOptimistic || mode == Mode::kAdaptiveOptimistic;
  return pc;
}

// Runs `scenario` to `end` and digests its delivery stream; lps == 0 runs
// the legacy sequential scheduler, lps >= 1 runs through ParallelSim
// (stamped shards; one shard still sequential).
RunDigest run_and_digest(std::unique_ptr<Scenario> scenario,
                         sim::TimePoint end, int lps,
                         Mode mode = Mode::kConservative) {
  RunDigest out;
  DeliveryHasher hasher;
  scenario->network.add_trace_sink(&hasher);
  if (lps == 0) {
    scenario->sched.run_until(end);
  } else {
    ParallelSim psim(*scenario, mode_config(mode, lps));
    out.realized_lps = psim.lp_count();
    psim.run_until(end);
    out.windows = psim.windows();
    out.spec_windows = psim.spec_windows();
    out.rollbacks = psim.rollbacks();
    out.repartitions = psim.repartitions();
  }
  out.hash = hasher.hash();
  out.delivered = hasher.delivered();
  return out;
}

// ---------------------------------------------------------------------------
// Scheduler::next_deadline across backends

TEST(NextDeadline, AgreesAcrossBackendsOnRandomizedSchedule) {
  const sim::SchedulerBackend backends[] = {
      sim::SchedulerBackend::kBinaryHeap,
      sim::SchedulerBackend::kCalendarQueue,
      sim::SchedulerBackend::kTimingWheel,
  };
  std::vector<std::unique_ptr<sim::Scheduler>> scheds;
  for (const auto b : backends) {
    scheds.push_back(std::make_unique<sim::Scheduler>(b));
  }

  // Same randomized schedule into all three; some events cancelled, some
  // events schedule more events (exercising the lazy stale-skip inside
  // next_deadline and deadlines discovered mid-run).
  sim::Rng rng(7);
  std::vector<std::int64_t> times;
  std::vector<std::size_t> cancel_picks;
  for (int i = 0; i < 300; ++i) {
    times.push_back(static_cast<std::int64_t>(rng.uniform(0.0, 5e8)));
    if (i % 7 == 0) cancel_picks.push_back(static_cast<std::size_t>(i));
  }
  int fired[3] = {0, 0, 0};
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::vector<sim::EventId> ids;
    for (const auto t : times) {
      ids.push_back(scheds[s]->schedule_at(
          sim::TimePoint::from_nanos(t), [&fired, s] { ++fired[s]; }));
    }
    for (const auto pick : cancel_picks) scheds[s]->cancel(ids[pick]);
  }

  // Drain in lockstep: deadlines must agree before every step.
  for (;;) {
    const std::optional<sim::TimePoint> d0 = scheds[0]->next_deadline();
    for (std::size_t s = 1; s < scheds.size(); ++s) {
      const auto ds = scheds[s]->next_deadline();
      ASSERT_EQ(d0.has_value(), ds.has_value());
      if (d0) {
        ASSERT_EQ(d0->as_nanos(), ds->as_nanos());
      }
    }
    if (!d0) break;
    for (auto& sched : scheds) sched->run_until(*d0);
  }
  EXPECT_EQ(fired[0], fired[1]);
  EXPECT_EQ(fired[0], fired[2]);
  EXPECT_EQ(fired[0], 300 - static_cast<int>(cancel_picks.size()));
}

// ---------------------------------------------------------------------------
// Partitioner

TEST(Partition, DumbbellSplitsAcrossPositiveLookaheadCuts) {
  harness::DumbbellConfig cfg;
  auto s = harness::make_dumbbell(cfg);
  harness::PartitionConfig pc;
  pc.target_lps = 2;
  const harness::Partition part(s->network, pc);
  ASSERT_EQ(part.lp_count(), 2);
  EXPECT_FALSE(part.cut_links().empty());
  for (const net::Link* cut : part.cut_links()) {
    EXPECT_GT(cut->prop_delay().as_nanos(), 0);
    EXPECT_NE(part.lp_of(cut->from()), part.lp_of(cut->to()));
  }
}

TEST(Partition, ZeroDelayLinksAreNeverCut) {
  Scenario s;
  net::Network& nw = s.network;
  const auto a = nw.add_node();
  const auto b = nw.add_node();
  const auto c = nw.add_node();
  net::LinkConfig zero;
  zero.bandwidth_bps = 10e6;
  zero.delay = sim::Duration::zero();
  nw.add_duplex_link(a, b, zero);
  net::LinkConfig pos = zero;
  pos.delay = sim::Duration::millis(5);
  nw.add_duplex_link(b, c, pos);
  nw.compute_static_routes();

  harness::PartitionConfig pc;
  pc.target_lps = 3;
  const harness::Partition part(nw, pc);
  EXPECT_EQ(part.lp_of(a), part.lp_of(b));  // contracted
  EXPECT_EQ(part.lp_count(), 2);
}

TEST(Partition, SingleLpFallbackWhenNoCutExists) {
  Scenario s;
  net::Network& nw = s.network;
  const auto a = nw.add_node();
  const auto b = nw.add_node();
  net::LinkConfig zero;
  zero.bandwidth_bps = 10e6;
  zero.delay = sim::Duration::zero();
  nw.add_duplex_link(a, b, zero);
  nw.compute_static_routes();

  harness::PartitionConfig pc;
  pc.target_lps = 4;
  const harness::Partition part(nw, pc);
  EXPECT_EQ(part.lp_count(), 1);
  EXPECT_TRUE(part.cut_links().empty());

  // And ParallelSim degrades to the sequential scheduler.
  ParallelRunConfig rc;
  rc.lps = 4;
  ParallelSim psim(s, rc);
  EXPECT_FALSE(psim.parallel());
  psim.run_until(sim::TimePoint::from_seconds(0.1));
}

// ---------------------------------------------------------------------------
// Variant x topology equivalence matrix

enum class Topo { kDumbbell, kParkingLot, kMultipath };

std::unique_ptr<Scenario> build_topo(Topo topo, TcpVariant variant) {
  switch (topo) {
    case Topo::kDumbbell: {
      harness::DumbbellConfig cfg;
      cfg.pr_flows = 0;
      cfg.sack_flows = 0;
      auto s = harness::make_dumbbell(cfg);
      // Two flows of the variant under test plus one SACK competitor.
      s->add_flow(variant, s->src_host, s->dst_host, 1, cfg.tcp, cfg.pr,
                  sim::TimePoint::origin());
      s->add_flow(variant, s->src_host, s->dst_host, 2, cfg.tcp, cfg.pr,
                  sim::TimePoint::from_seconds(0.2));
      s->add_flow(TcpVariant::kSack, s->src_host, s->dst_host, 3, cfg.tcp,
                  cfg.pr, sim::TimePoint::from_seconds(0.4));
      return s;
    }
    case Topo::kParkingLot: {
      harness::ParkingLotConfig cfg;
      cfg.pr_flows = 0;
      cfg.sack_flows = 0;
      cfg.with_cross_traffic = true;
      auto s = harness::make_parking_lot(cfg);
      s->add_flow(variant, s->src_host, s->dst_host, 50, cfg.tcp, cfg.pr,
                  sim::TimePoint::origin());
      return s;
    }
    case Topo::kMultipath: {
      harness::MultipathConfig cfg;
      cfg.variant = variant;
      cfg.epsilon = 1;
      return harness::make_multipath(cfg);
    }
  }
  return nullptr;
}

class ParallelMatrix
    : public ::testing::TestWithParam<std::tuple<TcpVariant, Topo>> {};

TEST_P(ParallelMatrix, ParallelDigestMatchesCanonicalOneShardRun) {
  const auto [variant, topo] = GetParam();
  const auto end = sim::TimePoint::from_seconds(3.0);
  const RunDigest seq = run_and_digest(build_topo(topo, variant), end, 1);
  ASSERT_GT(seq.delivered, 0u);
  if (topo != Topo::kMultipath) {
    // Distinct per-hop delays: no same-nanosecond cross-node ties, so the
    // canonical run must also equal the legacy sequential scheduler.
    const RunDigest legacy = run_and_digest(build_topo(topo, variant), end, 0);
    EXPECT_EQ(seq.hash, legacy.hash) << "canonical vs legacy";
    EXPECT_EQ(seq.delivered, legacy.delivered);
  }
  for (const int lps : {2, 4}) {
    const RunDigest par = run_and_digest(build_topo(topo, variant), end, lps);
    EXPECT_GT(par.realized_lps, 1) << "partition degenerated";
    EXPECT_EQ(par.delivered, seq.delivered) << "lps=" << lps;
    EXPECT_EQ(par.hash, seq.hash) << "lps=" << lps;
  }
}

TEST_P(ParallelMatrix, OptimisticDigestMatchesCanonicalOneShardRun) {
  const auto [variant, topo] = GetParam();
  const auto end = sim::TimePoint::from_seconds(3.0);
  const RunDigest seq = run_and_digest(build_topo(topo, variant), end, 1);
  ASSERT_GT(seq.delivered, 0u);
  for (const int lps : {2, 4, 8}) {
    const RunDigest par =
        run_and_digest(build_topo(topo, variant), end, lps, Mode::kOptimistic);
    EXPECT_GT(par.realized_lps, 1) << "partition degenerated";
    EXPECT_EQ(par.delivered, seq.delivered)
        << "optimistic lps=" << lps << " (" << par.spec_windows
        << " spec windows, " << par.rollbacks << " rollbacks)";
    EXPECT_EQ(par.hash, seq.hash) << "optimistic lps=" << lps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParallelMatrix,
    ::testing::Combine(::testing::ValuesIn(harness::all_variants()),
                       ::testing::Values(Topo::kDumbbell, Topo::kParkingLot,
                                         Topo::kMultipath)));

// ---------------------------------------------------------------------------
// Many-flow scale path

TEST(ParallelManyFlows, DumbbellDigestMatchesSequentialAtEveryLpCount) {
  const auto make = [] {
    harness::ManyFlowsConfig cfg;
    cfg.flows = 64;
    cfg.seed = 3;
    return harness::make_many_flows(cfg);
  };
  const auto end = sim::TimePoint::from_seconds(2.0);
  const RunDigest seq = run_and_digest(make(), end, 0);  // legacy sequential
  ASSERT_GT(seq.delivered, 0u);
  for (const int lps : {1, 2, 4, 8}) {
    const RunDigest par = run_and_digest(make(), end, lps);
    EXPECT_EQ(par.hash, seq.hash) << "lps=" << lps;
    EXPECT_EQ(par.delivered, seq.delivered) << "lps=" << lps;
  }
}

TEST(ParallelManyFlows, RandomGraphDigestMatchesCanonicalOneShardRun) {
  const auto make = [] {
    harness::ManyFlowsConfig cfg;
    cfg.topology = harness::ManyFlowsConfig::Topology::kRandomGraph;
    cfg.flows = 32;
    cfg.seed = 11;
    return harness::make_many_flows(cfg);
  };
  const auto end = sim::TimePoint::from_seconds(2.0);
  const RunDigest seq = run_and_digest(make(), end, 1);
  ASSERT_GT(seq.delivered, 0u);
  for (const int lps : {2, 4}) {
    const RunDigest par = run_and_digest(make(), end, lps);
    EXPECT_GT(par.realized_lps, 1);
    EXPECT_EQ(par.hash, seq.hash) << "lps=" << lps;
    EXPECT_EQ(par.delivered, seq.delivered) << "lps=" << lps;
  }
}

// ---------------------------------------------------------------------------
// Bounded-optimism engine policy: scripted stragglers drive W adaptation.
// The hooks lie about rollbacks (nothing is restored — the shards only run
// self-rescheduling ticks whose effects don't matter) so the test isolates
// the engine's multiplicative-decrease / additive-increase control loop.

struct ScriptedOptimism {
  std::vector<std::unique_ptr<sim::Scheduler>> scheds;
  std::vector<sim::Scheduler*> shards;
  std::vector<std::function<void()>> ticks;
  sim::ParallelEngine::Hooks hooks;
  sim::ParallelEngine::EngineConfig config;

  explicit ScriptedOptimism(int scripted_rollbacks_per_settle) {
    for (int i = 0; i < 2; ++i) {
      scheds.push_back(std::make_unique<sim::Scheduler>());
      shards.push_back(scheds.back().get());
    }
    ticks.resize(2);
    for (int i = 0; i < 2; ++i) {
      sim::Scheduler* s = shards[static_cast<std::size_t>(i)];
      auto& tick = ticks[static_cast<std::size_t>(i)];
      tick = [s, &tick] {
        s->schedule_at(s->now() + sim::Duration::micros(100), tick);
      };
      s->schedule_at(sim::TimePoint::from_nanos(100000), tick);
    }
    hooks.exchange = [] { return std::uint64_t{0}; };
    hooks.can_speculate = [] { return true; };
    hooks.snapshot = [](int) {};
    hooks.settle = [scripted_rollbacks_per_settle](
                       sim::TimePoint, sim::TimePoint,
                       const std::vector<sim::Scheduler::SpecResult>&) {
      return scripted_rollbacks_per_settle;
    };
    config.optimistic = true;
  }

  std::vector<sim::ParallelEngine::CutEdge> cuts() const {
    return {{0, sim::Duration::millis(1)}, {1, sim::Duration::millis(1)}};
  }
};

TEST(BoundedOptimism, PersistentStragglersCollapseWToFloor) {
  ScriptedOptimism rig(/*scripted_rollbacks_per_settle=*/1);
  sim::ParallelEngine engine(rig.shards, rig.cuts(), rig.hooks, rig.config);
  engine.run_until(sim::TimePoint::from_seconds(0.05));
  ASSERT_GT(engine.spec_windows(), 3u);
  EXPECT_EQ(engine.rollback_windows(), engine.spec_windows());
  EXPECT_EQ(engine.rollbacks(), engine.spec_windows());
  // Every settle reported a straggler: W must have halved its way down to
  // the floor and stayed there.
  EXPECT_EQ(engine.current_w().as_nanos(), rig.config.w_min.as_nanos());
}

TEST(BoundedOptimism, CleanWindowsGrowWToCap) {
  ScriptedOptimism rig(/*scripted_rollbacks_per_settle=*/0);
  sim::ParallelEngine engine(rig.shards, rig.cuts(), rig.hooks, rig.config);
  engine.run_until(sim::TimePoint::from_seconds(0.05));
  ASSERT_GT(engine.spec_windows(), 3u);
  EXPECT_EQ(engine.rollbacks(), 0u);
  EXPECT_GT(engine.current_w().as_nanos(), rig.config.w_init.as_nanos());
  EXPECT_LE(engine.current_w().as_nanos(), rig.config.w_max.as_nanos());
}

// ---------------------------------------------------------------------------
// Clustered mesh: the low-lookahead plant. Cut lookahead is 100us against
// millisecond-scale speculation windows, so cross-cluster traffic lands
// inside speculated legs — real stragglers, real rollbacks — while a
// cross-free mesh speculates cleanly.

RunDigest run_mesh(const harness::ClusteredMeshConfig& cfg, sim::TimePoint end,
                   int lps, Mode mode) {
  auto scenario = harness::make_clustered_mesh(cfg);
  RunDigest out;
  DeliveryHasher hasher;
  scenario->network.add_trace_sink(&hasher);
  ParallelRunConfig pc = mode_config(mode, lps);
  pc.min_cut_lookahead = cfg.min_cut_lookahead();
  // Test-speed adaptive policy: decide early, on modest evidence.
  pc.repartition_cooldown = 8;
  pc.repartition_min_events = 5000;
  ParallelSim psim(*scenario, pc);
  out.realized_lps = psim.lp_count();
  psim.run_until(end);
  out.windows = psim.windows();
  out.spec_windows = psim.spec_windows();
  out.rollbacks = psim.rollbacks();
  out.repartitions = psim.repartitions();
  out.hash = hasher.hash();
  out.delivered = hasher.delivered();
  return out;
}

harness::ClusteredMeshConfig mesh_config(int cross_flows,
                                         double hot_scale = 1.0) {
  harness::ClusteredMeshConfig cfg;
  cfg.clusters = 4;
  cfg.flows = 64;
  cfg.cross_flows = cross_flows;
  cfg.hot_cluster_bw_scale = hot_scale;
  cfg.max_start_stagger = sim::Duration::seconds(0.3);
  return cfg;
}

TEST(ClusteredMesh, ConservativeDigestMatchesCanonicalOneShardRun) {
  const auto end = sim::TimePoint::from_seconds(1.0);
  const RunDigest seq =
      run_mesh(mesh_config(2), end, 1, Mode::kConservative);
  ASSERT_GT(seq.delivered, 0u);
  for (const int lps : {2, 4}) {
    const RunDigest par =
        run_mesh(mesh_config(2), end, lps, Mode::kConservative);
    EXPECT_EQ(par.realized_lps, lps);
    EXPECT_EQ(par.hash, seq.hash) << "lps=" << lps;
    EXPECT_EQ(par.delivered, seq.delivered) << "lps=" << lps;
  }
}

TEST(ClusteredMesh, CleanSpeculationCommitsAndCutsBarrierCount) {
  const auto end = sim::TimePoint::from_seconds(1.0);
  const RunDigest cons =
      run_mesh(mesh_config(0), end, 4, Mode::kConservative);
  const RunDigest opt = run_mesh(mesh_config(0), end, 4, Mode::kOptimistic);
  ASSERT_GT(opt.delivered, 0u);
  EXPECT_EQ(opt.hash, cons.hash);
  EXPECT_EQ(opt.delivered, cons.delivered);
  EXPECT_GT(opt.spec_windows, 0u);
  // No cross traffic: every speculated event commits...
  EXPECT_EQ(opt.rollbacks, 0u);
  // ...and committed speculation advances the safe horizon in W-sized
  // strides instead of lookahead-sized ones. (The start-stagger prefix
  // cannot speculate — raw flow-start events are pending — so the full
  // run shows less than the steady-state stride ratio.)
  EXPECT_LT(opt.windows * 2, cons.windows)
      << "spec_windows=" << opt.spec_windows << " windows=" << opt.windows
      << " cons=" << cons.windows;
}

TEST(ClusteredMesh, InjectedStragglersRollBackAndReplayIdentically) {
  const auto end = sim::TimePoint::from_seconds(1.0);
  const RunDigest seq = run_mesh(mesh_config(4), end, 1, Mode::kConservative);
  ASSERT_GT(seq.delivered, 0u);
  for (const int lps : {2, 4}) {
    const RunDigest opt = run_mesh(mesh_config(4), end, lps, Mode::kOptimistic);
    // Cross flows land deliveries inside speculated legs: stragglers must
    // actually have fired the rollback path for this test to mean anything.
    EXPECT_GT(opt.spec_windows, 0u) << "lps=" << lps;
    EXPECT_GT(opt.rollbacks, 0u) << "lps=" << lps;
    EXPECT_EQ(opt.hash, seq.hash) << "lps=" << lps;
    EXPECT_EQ(opt.delivered, seq.delivered) << "lps=" << lps;
  }
}

TEST(ClusteredMesh, AdaptiveRepartitionRebalancesHotClusterIdentically) {
  const auto end = sim::TimePoint::from_seconds(1.0);
  // Cluster 0 runs 8x the bandwidth of the others: invisible to the
  // static host-count weights (2 LPs get two clusters each), obvious to
  // the measured fire counts (the hot LP carries ~8/11 of the load).
  const RunDigest seq =
      run_mesh(mesh_config(0, 8.0), end, 1, Mode::kConservative);
  ASSERT_GT(seq.delivered, 0u);
  const RunDigest ada = run_mesh(mesh_config(0, 8.0), end, 2, Mode::kAdaptive);
  EXPECT_GE(ada.repartitions, 1u);
  EXPECT_EQ(ada.hash, seq.hash);
  EXPECT_EQ(ada.delivered, seq.delivered);
}

TEST(ClusteredMesh, AdaptivePlusOptimisticDigestMatchesCanonicalRun) {
  const auto end = sim::TimePoint::from_seconds(1.0);
  const RunDigest seq =
      run_mesh(mesh_config(2, 4.0), end, 1, Mode::kConservative);
  ASSERT_GT(seq.delivered, 0u);
  for (const int lps : {2, 4}) {
    const RunDigest both =
        run_mesh(mesh_config(2, 4.0), end, lps, Mode::kAdaptiveOptimistic);
    EXPECT_GT(both.spec_windows, 0u) << "lps=" << lps;
    EXPECT_EQ(both.hash, seq.hash) << "lps=" << lps;
    EXPECT_EQ(both.delivered, seq.delivered) << "lps=" << lps;
  }
}

// ---------------------------------------------------------------------------
// Invariants under parallel execution (conservation swept at barriers)

TEST(ParallelInvariants, CheckerIsCleanAtBarriersAndTeardown) {
  harness::DumbbellConfig cfg;
  cfg.pr_flows = 2;
  cfg.sack_flows = 2;
  auto s = harness::make_dumbbell(cfg);
  validate::InvariantChecker checker(*s);
  ParallelRunConfig pc;
  pc.lps = 4;
  ParallelSim psim(*s, pc);
  ASSERT_TRUE(psim.parallel());
  psim.set_checker(&checker);
  psim.run_until(sim::TimePoint::from_seconds(3.0));
  checker.finalize();
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.sweeps(), 1u);
  EXPECT_GT(psim.windows(), 0u);
  EXPECT_GT(psim.exchanged(), 0u);
}

// ---------------------------------------------------------------------------
// Fuzz equivalence: sampled adversarial cases (loss, jitter, flapping,
// mid-run reconfiguration, all four topologies) must digest identically
// at 2 and 4 LPs. The full 100-seed campaign lives in the fuzz test
// below; a reduced sweep keeps the default ctest run fast.

void expect_seed_equivalent(std::uint64_t seed, int lps) {
  validate::FuzzCase c = validate::sample_fuzz_case(seed);
  const int sampled_mode = c.engine_mode;
  c.par_lps = 1;  // canonical one-shard baseline (ties keyed by node)
  c.engine_mode = 0;  // ... under conservative barriers
  const validate::FuzzResult seq = validate::run_fuzz_case(c);
  EXPECT_TRUE(seq.ok) << "seed " << seed << ": " << seq.first_violation;
  c.par_lps = lps;
  // The threaded run keeps the sampled engine mode, so the sweep also
  // pits adaptive repartitioning and bounded optimism (~1/3 of seeds
  // each) against the conservative canonical hash.
  c.engine_mode = sampled_mode;
  const validate::FuzzResult par = validate::run_fuzz_case(c);
  EXPECT_TRUE(par.ok) << "seed " << seed << " lps " << lps << ": "
                      << par.first_violation;
  EXPECT_EQ(par.delivery_hash, seq.delivery_hash)
      << "seed " << seed << " lps " << lps << " ("
      << validate::describe(c) << ")";
  EXPECT_EQ(par.delivered, seq.delivered) << "seed " << seed;
}

TEST(ParallelFuzz, AdaptiveMigrationRehomesInFlightDeliveriesOnNewCuts) {
  // Regression: seed 46 samples a lossy, jittered random graph whose
  // mid-run repartition cuts a link while its delivery ring holds packets
  // in flight. Those entries must re-home into the destination shard's
  // injected ring under their original (at, seq) keys — left on the
  // source shard they deliver cross-shard from the wrong LP and the
  // trajectory diverges.
  validate::FuzzCase c = validate::sample_fuzz_case(46);
  c.par_lps = 1;
  c.engine_mode = 0;
  const validate::FuzzResult seq = validate::run_fuzz_case(c);
  ASSERT_TRUE(seq.ok) << seq.first_violation;
  for (const int mode : {1, 3}) {
    c.par_lps = 2;
    c.engine_mode = mode;
    const validate::FuzzResult par = validate::run_fuzz_case(c);
    EXPECT_TRUE(par.ok) << "mode " << mode << ": " << par.first_violation;
    EXPECT_EQ(par.delivery_hash, seq.delivery_hash) << "mode " << mode;
    EXPECT_EQ(par.delivered, seq.delivered) << "mode " << mode;
  }
}

TEST(ParallelFuzz, HundredSeedsMatchSequentialAtTwoAndFourLps) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    expect_seed_equivalent(seed, seed % 2 == 0 ? 2 : 4);
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping at first divergent seed " << seed;
    }
  }
}

}  // namespace
}  // namespace tcppr
