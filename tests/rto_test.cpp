// Unit tests for the RFC 2988 RTO estimator.
#include <gtest/gtest.h>

#include "tcp/rto.hpp"

namespace tcppr::tcp {
namespace {

using sim::Duration;

TEST(RtoEstimator, InitialValueBeforeSamples) {
  RtoEstimator rto;
  EXPECT_FALSE(rto.has_sample());
  EXPECT_EQ(rto.rto().as_nanos(), Duration::seconds(3).as_nanos());
}

TEST(RtoEstimator, FirstSampleSetsSrttAndVar) {
  RtoEstimator rto;
  rto.add_sample(Duration::millis(100));
  EXPECT_TRUE(rto.has_sample());
  EXPECT_EQ(rto.srtt().as_nanos(), Duration::millis(100).as_nanos());
  EXPECT_EQ(rto.rttvar().as_nanos(), Duration::millis(50).as_nanos());
  // srtt + 4*rttvar = 300ms, clamped up to the 1s floor.
  EXPECT_EQ(rto.rto().as_nanos(), Duration::seconds(1).as_nanos());
}

TEST(RtoEstimator, ConvergesToSteadyRtt) {
  RtoEstimator rto;
  for (int i = 0; i < 100; ++i) rto.add_sample(Duration::millis(80));
  EXPECT_NEAR(rto.srtt().as_seconds(), 0.080, 1e-3);
  EXPECT_NEAR(rto.rttvar().as_seconds(), 0.0, 1e-3);
}

TEST(RtoEstimator, VariabilityRaisesRto) {
  RtoEstimator::Params params;
  params.min = Duration::millis(1);  // observe the raw formula
  RtoEstimator rto(params);
  for (int i = 0; i < 50; ++i) {
    rto.add_sample(Duration::millis(i % 2 == 0 ? 50 : 250));
  }
  // srtt ~150ms; rttvar ~100ms; rto ~550ms.
  EXPECT_GT(rto.rto().as_seconds(), 0.3);
}

TEST(RtoEstimator, BackoffDoublesAndResets) {
  RtoEstimator rto;
  rto.add_sample(Duration::millis(100));
  const double base = rto.rto().as_seconds();
  rto.back_off();
  EXPECT_DOUBLE_EQ(rto.rto().as_seconds(), 2 * base);
  rto.back_off();
  EXPECT_DOUBLE_EQ(rto.rto().as_seconds(), 4 * base);
  rto.reset_backoff();
  EXPECT_DOUBLE_EQ(rto.rto().as_seconds(), base);
}

TEST(RtoEstimator, MaxClampsBackoff) {
  RtoEstimator rto;
  rto.add_sample(Duration::millis(100));
  for (int i = 0; i < 20; ++i) rto.back_off();
  EXPECT_LE(rto.rto().as_seconds(), 64.0 + 1e-9);
}

TEST(RtoEstimator, MinFloorApplies) {
  RtoEstimator rto;
  for (int i = 0; i < 10; ++i) rto.add_sample(Duration::millis(1));
  EXPECT_EQ(rto.rto().as_nanos(), Duration::seconds(1).as_nanos());
}

TEST(RtoEstimator, MinFloorAppliesBeforeAnySample) {
  // Regression: a configured (or rounded) `initial` below `min` must still
  // be floored — RFC 6298 applies the minimum to every computed RTO, not
  // only to post-sample ones.
  RtoEstimator::Params params;
  params.initial = Duration::millis(200);
  RtoEstimator rto(params);
  EXPECT_FALSE(rto.has_sample());
  EXPECT_EQ(rto.rto().as_nanos(), params.min.as_nanos());
}

TEST(RtoEstimator, BackoffScalesTheFlooredValue) {
  // Regression: backoff must multiply the floored RTO, so the result never
  // dips below min regardless of clamp ordering, and a backed-off cheap
  // path (tiny srtt) yields 2*min, not 2*(srtt + 4*rttvar).
  RtoEstimator rto;
  for (int i = 0; i < 10; ++i) rto.add_sample(Duration::millis(1));
  rto.back_off();
  EXPECT_EQ(rto.rto().as_nanos(), (rto.params().min * 2.0).as_nanos());
  rto.back_off();
  EXPECT_EQ(rto.rto().as_nanos(), (rto.params().min * 4.0).as_nanos());
}

}  // namespace
}  // namespace tcppr::tcp
