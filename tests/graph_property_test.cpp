// Randomized property tests for the routing substrate: Dijkstra against a
// Bellman-Ford reference on random graphs, and structural properties of
// the node-disjoint path enumeration.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "routing/graph.hpp"
#include "sim/random.hpp"

namespace tcppr::routing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> bellman_ford(const Graph& g, net::NodeId src) {
  const int n = g.node_count();
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  dist[static_cast<std::size_t>(src)] = 0;
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (net::NodeId u = 0; u < n; ++u) {
      if (dist[static_cast<std::size_t>(u)] == kInf) continue;
      for (const auto& e : g.edges_from(u)) {
        const double nd = dist[static_cast<std::size_t>(u)] + e.cost;
        if (nd < dist[static_cast<std::size_t>(e.to)]) {
          dist[static_cast<std::size_t>(e.to)] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

Graph random_graph(sim::Rng& rng, int nodes, double edge_prob) {
  Graph g(nodes);
  for (net::NodeId a = 0; a < nodes; ++a) {
    for (net::NodeId b = 0; b < nodes; ++b) {
      if (a != b && rng.uniform() < edge_prob) {
        g.add_edge(a, b, rng.uniform(0.1, 10.0));
      }
    }
  }
  return g;
}

class GraphRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphRandom, DijkstraMatchesBellmanFord) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = 3 + static_cast<int>(rng.uniform_int(20));
    const Graph g = random_graph(rng, nodes, 0.25);
    const net::NodeId src =
        static_cast<net::NodeId>(rng.uniform_int(
            static_cast<std::uint64_t>(nodes)));
    const auto tree = g.shortest_paths(src);
    const auto reference = bellman_ford(g, src);
    for (int v = 0; v < nodes; ++v) {
      if (reference[static_cast<std::size_t>(v)] == kInf) {
        EXPECT_EQ(tree.dist[static_cast<std::size_t>(v)], kInf);
      } else {
        EXPECT_NEAR(tree.dist[static_cast<std::size_t>(v)],
                    reference[static_cast<std::size_t>(v)], 1e-9)
            << "node " << v << " trial " << trial;
      }
    }
  }
}

TEST_P(GraphRandom, ShortestPathIsConnectedAndCostConsistent) {
  sim::Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = 4 + static_cast<int>(rng.uniform_int(15));
    const Graph g = random_graph(rng, nodes, 0.3);
    const auto src = static_cast<net::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(nodes)));
    const auto dst = static_cast<net::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(nodes)));
    const auto path = g.shortest_path(src, dst);
    if (!path) continue;
    ASSERT_GE(path->size(), 1u);
    EXPECT_EQ(path->front(), src);
    EXPECT_EQ(path->back(), dst);
    // The walk must follow existing edges; path_cost checks that
    // internally (it aborts on a missing edge) and the total must agree
    // with the distance map.
    const auto tree = g.shortest_paths(src);
    EXPECT_NEAR(g.path_cost(*path),
                tree.dist[static_cast<std::size_t>(dst)], 1e-9);
  }
}

TEST_P(GraphRandom, DisjointPathsShareNoInteriorNodes) {
  sim::Rng rng(GetParam() ^ 0x123456);
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = 6 + static_cast<int>(rng.uniform_int(14));
    const Graph g = random_graph(rng, nodes, 0.3);
    const net::NodeId src = 0;
    const net::NodeId dst = nodes - 1;
    const auto paths = g.node_disjoint_paths(src, dst);
    std::set<net::NodeId> interior_seen;
    double prev_cost = 0;
    for (const auto& path : paths) {
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), dst);
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(interior_seen.insert(path[i]).second)
            << "interior node " << path[i] << " reused, trial " << trial;
      }
      // Greedy extraction yields non-decreasing costs.
      const double cost = g.path_cost(path);
      EXPECT_GE(cost + 1e-9, prev_cost);
      prev_cost = cost;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRandom,
                         ::testing::Values(7u, 99u, 2025u));

}  // namespace
}  // namespace tcppr::routing
