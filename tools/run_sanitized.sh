#!/usr/bin/env bash
# Configure, build, and run the full test suite under ASan + UBSan (the
# `sanitize` CMake preset, building into build-sanitize/). Any sanitizer
# report fails the run: -fno-sanitize-recover=all aborts on the first
# diagnostic, and halt_on_error catches anything ASan would merely log.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset sanitize
cmake --build --preset sanitize -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"
ctest --preset sanitize -j "$(nproc)" "$@"
